// Paper use case §V-B: analyze hardware heterogeneity and a hidden
// concurrency anomaly in a NAS-LU run across three clusters (Table II
// case C, Figure 4).
//
//   ./examples/lu_heterogeneous [--scale 0.004] [--p 0.15]
//
// The overview separates the clusters: Graphene (homogeneous IB), Graphite
// (heterogeneous 10 GbE) and Griffon (rupture at 34.5 s caused by machines
// hidden from the user sharing the switches).
#include <cstdio>

#include "analysis/disruption.hpp"
#include "analysis/phases.hpp"
#include "common/cli.hpp"
#include "core/aggregator.hpp"
#include "model/builder.hpp"
#include "viz/spatiotemporal_view.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace stagg;

  Cli cli("lu_heterogeneous", "NAS-LU heterogeneity analysis (paper §V-B)");
  cli.option("scale", "0.004", "event-rate scale vs the paper's 218M events")
      .option("p", "0.15", "aggregation strength in [0,1]")
      .option("svg", "lu_overview.svg", "output SVG path");
  if (!cli.parse(argc, argv)) return 1;

  GeneratedScenario g = generate_scenario(scenario_c(), cli.get_double("scale"));
  std::printf("generated case C: %llu events, %zu processes, %zu clusters\n",
              static_cast<unsigned long long>(g.trace.event_count()),
              g.trace.resource_count(),
              g.hierarchy->nodes_at_depth(1).size());

  const MicroscopicModel model =
      build_model(g.trace, *g.hierarchy, {.slice_count = 30});
  SpatiotemporalAggregator aggregator(model);
  const AggregationResult result = aggregator.run(cli.get_double("p"));

  ViewOptions view;
  view.min_row_px = 2.0;  // 700 rows: visual aggregation engages
  const ViewStats stats =
      save_overview(result, aggregator.cube(), cli.get("svg"), view);
  std::printf("overview written to %s\n"
              "  data aggregates   : %zu\n"
              "  visual aggregates : %zu (diagonal %zu = coherent rows, "
              "cross %zu = heterogeneous rows)\n\n",
              cli.get("svg").c_str(), stats.data_aggregates,
              stats.visual_aggregates, stats.diagonal_marks,
              stats.cross_marks);

  std::printf("phases:\n%s\n",
              format_phases(detect_phases(result, aggregator.cube(),
                                          {.quorum = 0.5}))
                  .c_str());

  // Per-cluster disruption summary (Figure 4's reading).
  const auto disruptions =
      detect_disruptions(result, aggregator.cube(), {.group_depth = 1});
  const Hierarchy& h = *g.hierarchy;
  for (const NodeId cluster : h.nodes_at_depth(1)) {
    const auto& node = h.node(cluster);
    std::size_t count = 0;
    for (const auto& d : disruptions) {
      if (d.leaf >= node.first_leaf &&
          d.leaf < node.first_leaf + node.leaf_count) {
        ++count;
      }
    }
    std::printf("cluster %-10s %4d processes, %zu deviating rows (%.0f%%)\n",
                node.name.c_str(), node.leaf_count, count,
                100.0 * static_cast<double>(count) / node.leaf_count);
  }
  std::printf("\nexpected per the paper: graphene ~0%%, graphite high "
              "(heterogeneous hardware), griffon localized around 34.5s.\n");
  return 0;
}
