// Trace format conversion tool: Pajé dump / CSV / binary / chunk file,
// with statistics.
//
//   ./examples/trace_convert input.paje output.stgt
//   ./examples/trace_convert input.stgt output.csv --stats
//   ./examples/trace_convert input.stgt output.stgc        # chunk file
//   ./examples/trace_convert input.paje output --chunk-file
//
// Formats are selected by extension: .paje/.pjdump (pj_dump states),
// .csv (stagg CSV), .stgc (columnar chunk file, reopens zero-copy via
// mmap; --chunk-file forces it for any output name), anything else =
// stagg binary (record format; chunk-file inputs are auto-detected by
// magic either way).  Run without arguments to see a self-contained demo
// (generates, converts, reports).
#include <cstdio>

#include "common/cli.hpp"
#include "common/string_util.hpp"
#include "trace/binary_io.hpp"
#include "trace/csv_io.hpp"
#include "trace/paje_io.hpp"
#include "trace/trace_stats.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace stagg;

bool has_ext(const std::string& path, const char* ext) {
  return path.ends_with(ext);
}

Trace load(const std::string& path) {
  if (has_ext(path, ".paje") || has_ext(path, ".pjdump")) {
    PajeReadStats stats;
    Trace t = read_paje_dump(path, &stats);
    std::printf("paje: %llu states, %llu non-state records skipped\n",
                static_cast<unsigned long long>(stats.state_records),
                static_cast<unsigned long long>(stats.skipped_records));
    return t;
  }
  if (has_ext(path, ".csv")) return read_csv_trace(path);
  // read_binary_trace sniffs the magic: STGT records are streamed in,
  // STGC chunk files come back as a facade over the mmapped store.
  return read_binary_trace(path);
}

std::uint64_t store(Trace& trace, const std::string& path, bool chunk_file) {
  if (has_ext(path, ".paje") || has_ext(path, ".pjdump")) {
    return write_paje_dump(trace, path);
  }
  if (has_ext(path, ".csv")) return write_csv_trace(trace, path);
  if (chunk_file || has_ext(path, ".stgc")) {
    return write_chunk_file(*trace.store(), path);
  }
  return write_binary_trace(trace, path);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("trace_convert",
          "convert traces between paje/csv/binary/chunk-file");
  cli.flag("stats", "print trace statistics after loading");
  cli.flag("chunk-file",
           "write the output as a columnar chunk file (STGC, reopens "
           "zero-copy) regardless of its extension");
  if (!cli.parse(argc, argv)) return 1;

  std::string in, out;
  if (cli.positional().size() >= 2) {
    in = cli.positional()[0];
    out = cli.positional()[1];
  } else {
    // Demo mode: generate a small case-A trace and convert it through all
    // four formats — including a chunk file reopened zero-copy.
    std::printf("demo mode: generating a small case-A trace\n");
    GeneratedScenario g = generate_scenario(scenario_a(), 1.0 / 512.0);
    const auto bin = write_binary_trace(g.trace, "demo.stgt");
    const auto csv = write_csv_trace(g.trace, "demo.csv");
    const auto paje = write_paje_dump(g.trace, "demo.paje");
    const auto stgc = write_chunk_file(*g.trace.store(), "demo.stgc");
    std::printf(
        "wrote demo.stgt (%s), demo.csv (%s), demo.paje (%s), demo.stgc "
        "(%s)\n",
        format_bytes(bin).c_str(), format_bytes(csv).c_str(),
        format_bytes(paje).c_str(), format_bytes(stgc).c_str());
    const auto mapped = read_binary_trace_store("demo.stgc");
    std::printf("demo.stgc reopened zero-copy: %llu states, %s resident of "
                "%s total chunk bytes\n",
                static_cast<unsigned long long>(mapped->state_count()),
                format_bytes(mapped->resident_chunk_bytes()).c_str(),
                format_bytes(mapped->spilled_chunk_bytes() +
                             mapped->resident_chunk_bytes())
                    .c_str());
    in = "demo.paje";
    out = "demo_roundtrip.stgt";
  }

  Trace trace = load(in);
  if (cli.get_flag("stats") || cli.positional().empty()) {
    const TraceStats st = compute_stats(trace);
    std::printf("%s", format_stats(st).c_str());
  }
  const auto bytes = store(trace, out, cli.get_flag("chunk-file"));
  std::printf("wrote %s (%s)\n", out.c_str(), format_bytes(bytes).c_str());
  return 0;
}
