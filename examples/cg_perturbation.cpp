// Paper use case §V-A: detect the network-concurrency perturbation in a
// NAS-CG run (Table II case A, Figure 1).
//
//   ./examples/cg_perturbation [--scale 0.03125] [--p 0.25] [--svg out.svg]
//
// Generates the case-A workload, aggregates it, renders the Figure 1
// overview and prints the analysis report with the list of perturbed
// processes — the result the paper highlights as impossible to obtain with
// summary statistics.
#include <cstdio>

#include "analysis/report.hpp"
#include "common/cli.hpp"
#include "core/aggregator.hpp"
#include "model/builder.hpp"
#include "trace/binary_io.hpp"
#include "viz/spatiotemporal_view.hpp"
#include "workload/nas_cg.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace stagg;

  Cli cli("cg_perturbation", "NAS-CG perturbation analysis (paper §V-A)");
  cli.option("scale", "0.03125", "event-rate scale vs the paper's trace")
      .option("p", "0.1", "aggregation strength in [0,1]")
      .option("slices", "30", "microscopic time slices (paper: 30)")
      .option("svg", "cg_overview.svg", "output SVG path")
      .option("save-trace", "", "also write the trace to this .stgt file");
  if (!cli.parse(argc, argv)) return 1;

  GeneratedScenario g = generate_scenario(scenario_a(), cli.get_double("scale"));
  std::printf("generated case A: %llu events, %zu processes\n",
              static_cast<unsigned long long>(g.trace.event_count()),
              g.trace.resource_count());

  if (const std::string path = cli.get("save-trace"); !path.empty()) {
    const auto bytes = write_binary_trace(g.trace, path);
    std::printf("trace written to %s (%llu bytes)\n", path.c_str(),
                static_cast<unsigned long long>(bytes));
  }

  const MicroscopicModel model = build_model(
      g.trace, *g.hierarchy,
      {.slice_count = static_cast<std::int32_t>(cli.get_int("slices"))});
  SpatiotemporalAggregator aggregator(model);
  const AggregationResult result = aggregator.run(cli.get_double("p"));

  const ViewStats stats =
      save_overview(result, aggregator.cube(), cli.get("svg"), {});
  std::printf("overview written to %s (%zu data aggregates)\n\n",
              cli.get("svg").c_str(), stats.data_aggregates);

  const AnalysisReport report =
      analyze(g.trace, result, aggregator.cube(), {});
  std::printf("%s\n", format_report(report).c_str());

  // Ground truth from the generator, for comparison.
  CgWorkloadOptions opt;
  opt.event_scale = cli.get_double("scale");
  const auto injected = cg_perturbed_leaves(*g.hierarchy, opt);
  std::printf("ground truth: %zu processes were perturbed by the generator\n",
              injected.size());
  return 0;
}
