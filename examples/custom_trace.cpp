// Analyzing your own traces: load a CSV or binary trace file, rebuild the
// platform hierarchy from the resource paths, aggregate and report.
//
//   ./examples/custom_trace mytrace.csv --p 0.3 --slices 30
//
// Without an argument, the example writes a small demo CSV first and then
// analyzes it, so it runs standalone.  The resource paths in the file
// ("site/machine/core") define the hierarchy: every '/'-separated prefix
// becomes an internal node.
#include <cstdio>
#include <map>

#include "analysis/report.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "core/aggregator.hpp"
#include "model/builder.hpp"
#include "trace/csv_io.hpp"
#include "trace/binary_io.hpp"
#include "viz/spatiotemporal_view.hpp"

namespace {

using namespace stagg;

/// Builds a hierarchy from slash-separated resource paths.  All paths must
/// share the same root segment.
Hierarchy hierarchy_from_paths(const std::vector<std::string>& paths) {
  if (paths.empty()) throw InvalidArgument("trace has no resources");
  const auto root_name = std::string(split(paths[0], '/')[0]);
  HierarchyBuilder builder(root_name);
  std::map<std::string, NodeId> by_path;
  by_path[root_name] = 0;
  for (const auto& path : paths) {
    const auto parts = split(path, '/');
    if (std::string(parts[0]) != root_name) {
      throw InvalidArgument("resource '" + path +
                            "' does not share the root '" + root_name + "'");
    }
    std::string prefix = root_name;
    NodeId parent = 0;
    for (std::size_t k = 1; k < parts.size(); ++k) {
      prefix += '/';
      prefix += parts[k];
      const auto it = by_path.find(prefix);
      if (it == by_path.end()) {
        const NodeId id = builder.add(parent, std::string(parts[k]));
        by_path[prefix] = id;
        parent = id;
      } else {
        parent = it->second;
      }
    }
  }
  return builder.finish();
}

void write_demo_csv(const std::string& path) {
  Trace demo;
  for (const char* core : {"core0", "core1"}) {
    for (const char* machine : {"m0", "m1", "m2"}) {
      demo.add_resource(std::string("site/") + machine + "/" + core);
    }
  }
  for (ResourceId r = 0; r < 6; ++r) {
    demo.add_state(r, "MPI_Init", 0, seconds(0.5));
    for (double t = 0.5; t < 4.0; t += 0.2) {
      // Machine m2 stalls in MPI_Wait halfway through the run.
      const bool stalled = r >= 4 && t >= 2.0 && t < 3.0;
      demo.add_state(r, stalled ? "MPI_Wait" : "Compute", seconds(t),
                     seconds(t + 0.2));
    }
  }
  write_csv_trace(demo, path);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("custom_trace", "aggregate a user-supplied trace file");
  cli.option("p", "0.3", "aggregation strength in [0,1]")
      .option("slices", "30", "microscopic time slices")
      .option("svg", "custom_overview.svg", "output SVG path");
  if (!cli.parse(argc, argv)) return 1;

  std::string path;
  if (cli.positional().empty()) {
    path = "demo_trace.csv";
    write_demo_csv(path);
    std::printf("no input given; wrote and analyzing demo trace %s\n",
                path.c_str());
  } else {
    path = cli.positional()[0];
  }

  Trace trace = path.ends_with(".csv") ? read_csv_trace(path)
                                       : read_binary_trace(path);
  std::printf("loaded %s: %llu events, %zu resources\n", path.c_str(),
              static_cast<unsigned long long>(trace.event_count()),
              trace.resource_count());

  const Hierarchy hierarchy = hierarchy_from_paths(trace.resource_paths());
  const MicroscopicModel model = build_model(
      trace, hierarchy,
      {.slice_count = static_cast<std::int32_t>(cli.get_int("slices"))});
  SpatiotemporalAggregator aggregator(model);
  const AggregationResult result = aggregator.run(cli.get_double("p"));

  save_overview(result, aggregator.cube(), cli.get("svg"), {});
  std::printf("overview written to %s\n\n", cli.get("svg").c_str());

  const AnalysisReport report =
      analyze(trace, result, aggregator.cube(),
              {.disruptions = {.group_depth = 1}});
  std::printf("%s", format_report(report).c_str());
  return 0;
}
