// Example: monitoring a live trace through a sliding aggregation window.
//
// A synthetic MPI workload is streamed into a SlidingWindowSession: every
// "tick" delivers the newly produced events and slides the 60-slice window
// forward, and the session re-aggregates incrementally — only the columns
// touching the appended suffix are recomputed, everything else is spliced
// from the previous state.  For each tick the example prints the optimal
// partition size per trade-off parameter and the incremental advance time
// next to what a from-scratch re-aggregation of the same window costs.
#include <cstdio>
#include <utility>
#include <vector>

#include "common/stopwatch.hpp"
#include "core/sliding_window.hpp"
#include "hierarchy/hierarchy.hpp"
#include "model/builder.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace stagg;

  // 16-process platform, two states whose balance drifts over time so the
  // optimal aggregation level changes as the window moves.
  const Hierarchy h = make_balanced_hierarchy(2, 4);
  const double stream_span_s = 140.0;
  const auto programmer = [&](LeafId leaf) {
    ResourceProgram p;
    p.phases.push_back(
        {0.0, 70.0,
         StatePattern{{{"compute", 0.05, 0.2}, {"send", 0.02, 0.3}}}});
    // Second half: every fourth process starts blocking on waits.
    p.phases.push_back(
        {70.0, stream_span_s,
         StatePattern{{{"compute", 0.05, 0.2},
                       {"wait", leaf % 4 == 0 ? 0.12 : 0.01, 0.5},
                       {"send", 0.02, 0.3}}}});
    return p;
  };
  Trace full = generate_trace(h, programmer, 7);
  full.seal();

  // The session starts over the first 60 s; later events form the stream.
  const TimeNs window_end0 = seconds(60.0);
  Trace initial;
  for (const auto& name : full.states().names()) {
    (void)initial.states().intern(name);
  }
  std::vector<std::pair<ResourceId, StateInterval>> stream;
  for (ResourceId r = 0; r < static_cast<ResourceId>(full.resource_count());
       ++r) {
    initial.add_resource(full.resource_path(r));
    for (const auto& s : full.intervals(r)) {
      if (s.begin < window_end0) {
        initial.add_state(r, s.state, s.begin, s.end);
      } else {
        stream.emplace_back(r, s);
      }
    }
  }

  const std::vector<double> ps = {0.2, 0.5, 0.8};
  SlidingWindowSession session(h, std::move(initial),
                               TimeGrid(0, window_end0, 60), ps);

  std::printf("sliding 60-slice window over a %.0f s stream "
              "(16 processes, 3 probes)\n\n", stream_span_s);
  std::printf("tick   window          areas(p=0.2/0.5/0.8)   incremental | "
              "from-scratch\n");

  std::size_t next = 0;
  for (int tick = 1; tick <= 18; ++tick) {
    const std::int32_t k = 4;  // slide 4 slices (= 4 s) per tick
    const TimeNs horizon =
        session.window().end() + session.window().uniform_dt_ns() * k;
    while (next < stream.size() && stream[next].second.begin < horizon) {
      const auto& [r, s] = stream[next];
      session.append(r, s.state, s.begin, s.end);
      ++next;
    }
    Stopwatch inc_watch;
    const auto& results = session.slide(k);
    const double inc_s = inc_watch.seconds();

    Stopwatch scratch_watch;
    const auto scratch = session.run_from_scratch();
    const double scratch_s = scratch_watch.seconds();
    const bool ok = scratch.size() == results.size() &&
                    scratch[1].optimal_pic == results[1].optimal_pic;

    std::printf("%3d    [%5.1f, %5.1f)s   %5zu /%5zu /%5zu     %9s | %s%s\n",
                tick, to_seconds(session.window().begin()),
                to_seconds(session.window().end()),
                results[0].partition.size(), results[1].partition.size(),
                results[2].partition.size(),
                format_seconds(inc_s).c_str(),
                format_seconds(scratch_s).c_str(),
                ok ? "" : "   MISMATCH!");
  }

  std::printf("\nEvery advance recomputed only the %d appended columns "
              "(plus any staged-event suffix); all results are "
              "bit-identical to the from-scratch runs.\n", 4);
  return 0;
}
