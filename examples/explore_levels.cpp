// Interactive-style exploration of aggregation levels: the paper's slider
// (§I: "sliding the aggregation strength among a set of significant
// values") as a batch tool.
//
//   ./examples/explore_levels [--scale 0.03125] [--epsilon 0.001]
//
// Finds all significant p plateaus of a case-A run, prints one quality row
// per level and renders the overview of each to level_<k>.svg.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/aggregator.hpp"
#include "core/dichotomy.hpp"
#include "model/builder.hpp"
#include "viz/spatiotemporal_view.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace stagg;

  Cli cli("explore_levels", "enumerate significant aggregation levels");
  cli.option("scale", "0.03125", "event-rate scale for the case-A workload")
      .option("epsilon", "0.001", "p-resolution of the dichotomic search")
      .option("max-runs", "256", "cap on aggregation runs")
      .flag("svg", "write one overview SVG per level");
  if (!cli.parse(argc, argv)) return 1;

  GeneratedScenario g = generate_scenario(scenario_a(), cli.get_double("scale"));
  const MicroscopicModel model =
      build_model(g.trace, *g.hierarchy, {.slice_count = 30});
  SpatiotemporalAggregator aggregator(model);

  DichotomyOptions opt;
  opt.epsilon = cli.get_double("epsilon");
  opt.max_runs = static_cast<std::size_t>(cli.get_int("max-runs"));
  const DichotomyResult levels = find_significant_levels(aggregator, opt);

  std::printf("found %zu significant levels with %zu aggregation runs\n\n",
              levels.levels.size(), levels.runs);
  TextTable table({"#", "p range", "areas", "reduction", "gain", "loss"});
  for (std::size_t k = 0; k < levels.levels.size(); ++k) {
    const auto& level = levels.levels[k];
    const auto& q = level.result.quality;
    char range[48], red[16], gain[16], loss[16];
    std::snprintf(range, sizeof range, "[%.3f, %.3f]", level.p_min,
                  level.p_max);
    std::snprintf(red, sizeof red, "%.1f%%",
                  q.complexity_reduction() * 100.0);
    std::snprintf(gain, sizeof gain, "%.1f%%", q.gain_fraction() * 100.0);
    std::snprintf(loss, sizeof loss, "%.1f%%", q.loss_fraction() * 100.0);
    table.add_row({std::to_string(k), range,
                   std::to_string(level.result.partition.size()), red, gain,
                   loss});
    if (cli.get_flag("svg")) {
      const std::string path = "level_" + std::to_string(k) + ".svg";
      save_overview(level.result, aggregator.cube(), path, {});
    }
  }
  std::printf("%s\n", table.str().c_str());
  if (cli.get_flag("svg")) {
    std::printf("one overview SVG written per level (level_<k>.svg)\n");
  }
  std::printf("reading guide: move down the table for simpler views (higher\n"
              "complexity reduction) at the price of higher information "
              "loss.\n");
  return 0;
}
