// Example: one live trace stream, several concurrent analysis views,
// bounded resident memory.
//
// A monitoring service rarely wants a single window: the on-call view
// watches the last 30 s at fine slices, the capacity view keeps two
// minutes at coarse slices, and a per-cluster view scopes to one subtree.
// With a SessionManager they all read ONE immutable chunked TraceStore —
// the event bytes are paid once — while each session keeps its own
// incremental DP state and probe set.
//
// The manager also gets a *memory budget*: after every advance, the
// coldest sealed chunks are spilled to an append-only chunk file and
// mmapped back, so the anonymous-heap footprint stays capped while the
// results remain bit-identical — the shape that serves traces larger
// than RAM.
#include <cstdio>
#include <string>

#include "core/session_manager.hpp"
#include "hierarchy/hierarchy.hpp"
#include "trace/trace.hpp"
#include "workload/stream_split.hpp"
#include "workload/synthetic.hpp"

using namespace stagg;

int main() {
  // Platform: 2 clusters x 8 ranks.
  const Hierarchy platform = make_balanced_hierarchy(2, /*fanout=*/4);
  // Scope hierarchy: cluster 0 only (same leaf paths as the platform).
  HierarchyBuilder scope_builder("root");
  const NodeId c0 = scope_builder.add(0, "n0_0");
  scope_builder.add_many(c0, "n1_", 4);
  const Hierarchy cluster0 = scope_builder.finish();

  // A synthetic mixed workload spanning 90 s.
  const double span_s = 90.0;
  Trace trace = generate_trace(
      platform,
      [&](LeafId leaf) {
        ResourceProgram p;
        p.phases.push_back(
            {0.0, span_s,
             StatePattern{{{"compute", 0.05, 0.25},
                           {"mpi_wait", leaf % 4 == 0 ? 0.05 : 0.01, 0.5},
                           {"io", 0.02, 0.4}}}});
        return p;
      },
      /*seed=*/2024);
  trace.seal();

  // Keep the first 40 s as "already ingested"; stream the rest live.
  TraceSplit split = split_trace_at(trace, seconds(40.0));
  split.initial.seal();

  // One store, three very different sessions.
  SessionManager manager(platform, split.initial.store());
  SessionSpec oncall;  // fine slices, last 32 s, balanced probes
  oncall.window = TimeGrid(seconds(8.0), seconds(40.0), 64);
  oncall.ps = {0.25, 0.5, 0.75};
  SessionSpec capacity;  // coarse slices, a long look-back
  capacity.window = TimeGrid(0, seconds(40.0), 20);
  capacity.ps = {0.5};
  SessionSpec cluster_view;  // cluster 0 only
  cluster_view.window = TimeGrid(seconds(10.0), seconds(40.0), 30);
  cluster_view.ps = {0.4, 0.8};
  cluster_view.hierarchy = &cluster0;
  manager.add_session(oncall);
  manager.add_session(capacity);
  manager.add_session(cluster_view);

  // Cap resident chunk bytes at a quarter of the initial store: cold
  // chunks spill to multi_session.chunks and map back on selection.
  manager.set_memory_budget(manager.store_bytes() / 4, "multi_session.chunks");

  std::printf("shared store: %zu resources, %llu states, %.2f MiB — read by "
              "%zu sessions, %.2f MiB resident budget\n\n",
              manager.store().resource_count(),
              static_cast<unsigned long long>(manager.store().state_count()),
              manager.store_bytes() / 1048576.0, manager.session_count(),
              manager.memory_budget() / 1048576.0);

  // Live loop: every 5 s of trace time, deliver the burst and advance all
  // sessions to the new frontier (each by whole slices of its own width).
  std::size_t next = 0;
  for (TimeNs frontier = seconds(45.0); frontier <= seconds(85.0);
       frontier += seconds(5.0)) {
    for (; next < split.future.size() && split.future[next].second.begin < frontier;
         ++next) {
      const auto& [r, s] = split.future[next];
      manager.append(r, s.state, s.begin, s.end);
    }
    manager.advance_to(frontier);

    std::printf("t = %2.0f s | store %.2f MiB (%.2f resident + %.2f "
                "spilled)\n",
                to_seconds(frontier), manager.store_bytes() / 1048576.0,
                manager.resident_chunk_bytes() / 1048576.0,
                manager.store().spilled_chunk_bytes() / 1048576.0);
    static const char* names[] = {"on-call ", "capacity", "cluster0"};
    for (std::size_t i = 0; i < manager.session_count(); ++i) {
      const auto& session = manager.session(i);
      const auto& results = session.results();
      std::printf("  %s [%5.1f, %5.1f) s :", names[i],
                  to_seconds(session.window().begin()),
                  to_seconds(session.window().end()));
      for (const auto& res : results) {
        std::printf("  p=%.2f -> %zu areas", res.p,
                    res.partition.areas().size());
      }
      std::printf("\n");
    }
  }
  std::remove("multi_session.chunks");
  return 0;
}
