// Example: live ingest of a NAS-LU trace through the staged pipeline.
//
// A 48-core NAS-LU workload (the paper's heterogeneous-rupture scenario)
// is replayed round by round into an IngestPipeline: parse workers shard
// the incoming records, the seal worker appends and seals each round's
// chunk at its watermark, and the advance worker slides the session
// windows over the sealed data — all connected by bounded queues, so a
// slow consumer back-pressures the producer instead of buffering without
// limit.  The producer never waits for analysis: after each submit it
// samples the pipeline and prints the watermark lag (how far the sealed
// frontier has run ahead of the advanced one) and the queue depths, then
// blocks once at the end for the final round.
#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "core/ingest_pipeline.hpp"
#include "core/session_manager.hpp"
#include "hierarchy/platform.hpp"
#include "workload/nas_lu.hpp"
#include "workload/stream_split.hpp"

int main() {
  using namespace stagg;

  // The paper's NAS-LU scenario: 48 cores of the Grid'5000 Nancy site,
  // with an event divisor keeping the replay light enough for a demo.
  const PlatformSpec platform = grid5000_nancy().scaled_to(48);
  const Hierarchy h = platform.build_hierarchy();
  LuWorkloadOptions lu;
  lu.event_scale = 1.0 / 256.0;
  lu.span_s = 65.0;
  Trace whole = [&] {
    Trace t = generate_lu_trace(h, platform, lu);
    t.seal();
    return t;
  }();

  // One 26 s / 40-slice analysis window; everything after the initial
  // horizon arrives live, 2.5 s of trace per round.
  const TimeGrid window(0, seconds(26.0), 40);
  const TimeNs dt = seconds(2.5);
  const TimeNs horizon = window.end() + dt;
  TraceSplit split = split_trace_at(whole, horizon);
  split.initial.seal();

  SessionManager manager(h, split.initial.store());
  SessionSpec spec;
  spec.window = window;
  spec.ps = {0.25, 0.5, 0.75};
  manager.add_session(spec);

  IngestPipelineOptions options;
  options.parse_workers = 4;
  IngestPipeline pipeline(manager, options);

  std::printf("NAS-LU live ingest: %zu leaves, %zu-slice window, 4 parse "
              "workers\n\n",
              h.leaf_count(), static_cast<std::size_t>(window.slice_count()));
  std::printf("%5s  %9s  %9s  %7s  %27s\n", "round", "requested",
              "advanced", "lag", "queue depths (shard/batch/wm)");

  const TimeNs last = seconds(lu.span_s);
  std::size_t next = 0;
  int round = 0;
  for (TimeNs frontier = horizon + dt; frontier - dt < last;
       frontier += dt, ++round) {
    std::vector<EventRecord> batch;
    for (; next < split.future.size() &&
           split.future[next].second.begin < frontier;
         ++next) {
      const auto& [resource, s] = split.future[next];
      batch.push_back({resource, s.state, s.begin, s.end});
    }
    pipeline.submit_records(std::move(batch));
    pipeline.advance_watermark(frontier);

    // Sample, don't wait: the lag shows how far analysis trails intake.
    const TimeNs advanced = pipeline.advanced();
    const IngestPipelineStats stats = pipeline.stats();
    std::size_t shard_depth = 0;
    for (const BoundedQueueStats& q : stats.shard_queues) {
      shard_depth += q.depth;
    }
    std::printf("%5d  %7.1f s  %7.1f s  %5.1f s  %13zu / %zu / %zu\n",
                round, to_seconds(frontier), to_seconds(advanced),
                to_seconds(frontier - advanced), shard_depth,
                stats.batch_queue.depth, stats.watermark_queue.depth);
  }

  // Block once for the tail, then read the final aggregation.
  const TimeNs final_frontier = horizon + dt * round;
  pipeline.wait_until_advanced(final_frontier);
  pipeline.close();

  const IngestPipelineStats stats = pipeline.stats();
  std::printf("\n%d rounds, %llu records parsed, %llu sealed, %llu rounds "
              "advanced\n",
              round,
              static_cast<unsigned long long>(stats.records_parsed),
              static_cast<unsigned long long>(stats.records_sealed),
              static_cast<unsigned long long>(stats.rounds_advanced));

  const auto& session = manager.session(0);
  std::printf("final window [%.1f, %.1f) s:", to_seconds(session.window().begin()),
              to_seconds(session.window().end()));
  for (const auto& res : session.results()) {
    std::printf("  p=%.2f -> %zu areas", res.p, res.partition.areas().size());
  }
  std::printf("\n");
  return 0;
}
