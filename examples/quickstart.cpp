// Quickstart: the whole public API in ~60 lines.
//
//   1. describe the platform as a hierarchy,
//   2. record (or load) a trace,
//   3. build the microscopic model d_x(s,t),
//   4. run the spatiotemporal aggregation,
//   5. look at the result (ASCII here; SVG in the other examples).
//
// Build and run:   ./examples/quickstart
#include <cstdio>

#include "core/aggregator.hpp"
#include "hierarchy/hierarchy.hpp"
#include "model/builder.hpp"
#include "trace/trace.hpp"
#include "viz/ascii_view.hpp"

int main() {
  using namespace stagg;

  // 1. A tiny platform: one node with two machines of two cores each.
  HierarchyBuilder builder("node");
  const NodeId m0 = builder.add(0, "m0");
  const NodeId m1 = builder.add(0, "m1");
  builder.add(m0, "core0");
  builder.add(m0, "core1");
  builder.add(m1, "core0");
  builder.add(m1, "core1");
  const Hierarchy hierarchy = builder.finish();

  // 2. A trace: everyone initializes, then machine m0 computes while
  //    machine m1 mostly waits; core1 of m1 recovers halfway through.
  Trace trace;
  for (std::size_t s = 0; s < hierarchy.leaf_count(); ++s) {
    trace.add_resource(hierarchy.path(hierarchy.leaf_node(
        static_cast<LeafId>(s))));
  }
  for (ResourceId r = 0; r < 4; ++r) {
    trace.add_state(r, "MPI_Init", 0, seconds(1.0));
  }
  for (double t = 1.0; t < 10.0; t += 0.5) {
    trace.add_state(0, "Compute", seconds(t), seconds(t + 0.5));
    trace.add_state(1, "Compute", seconds(t), seconds(t + 0.5));
    trace.add_state(2, "MPI_Wait", seconds(t), seconds(t + 0.5));
    trace.add_state(3, t < 5.0 ? "MPI_Wait" : "Compute", seconds(t),
                    seconds(t + 0.5));
  }

  // 3. Microscopic model: 20 uniform time slices of the trace window.
  const MicroscopicModel model =
      build_model(trace, hierarchy, {.slice_count = 20});

  // 4. Aggregation.  p balances simplicity (1) against accuracy (0).
  SpatiotemporalAggregator aggregator(model);
  const AggregationResult result = aggregator.run(0.25);

  // 5. Inspect.
  std::printf("partition: %zu areas over %zu microscopic cells\n",
              result.partition.size(), result.quality.microscopic_count);
  std::printf("quality:   %s\n\n", format_quality(result.quality).c_str());
  std::printf("%s", render_ascii(result, aggregator.cube(), {}).c_str());
  std::printf("\nareas:\n%s", result.partition.to_string(hierarchy).c_str());
  return 0;
}
