#include "core/temporal.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"
#include "workload/fixtures.hpp"

namespace stagg {
namespace {

SequenceAggregator make_sequence(std::vector<double> values,
                                 std::int32_t states = 1) {
  std::vector<double> durations(values.size() / states, 1.0);
  return SequenceAggregator(std::move(values), std::move(durations), states);
}

/// Exhaustive optimal interval partition via bitmask over cut positions.
double exhaustive_best(const SequenceAggregator& seq, double p) {
  const std::int32_t n = seq.length();
  double best = -std::numeric_limits<double>::infinity();
  for (std::uint32_t mask = 0; mask < (1u << (n - 1)); ++mask) {
    double total = 0.0;
    SliceId start = 0;
    for (SliceId t = 0; t < n; ++t) {
      const bool cut_after = t == n - 1 || (mask >> t) & 1u;
      if (cut_after) {
        const AreaMeasures m = seq.interval_measures(start, t);
        total += pic(p, m.gain, m.loss);
        start = t + 1;
      }
    }
    best = std::max(best, total);
  }
  return best;
}

TEST(SequenceAggregator, RejectsBadInputs) {
  EXPECT_THROW(SequenceAggregator({}, {}, 1), InvalidArgument);
  EXPECT_THROW(SequenceAggregator({1.0, 2.0}, {1.0}, 1), InvalidArgument);
  auto seq = make_sequence({0.5, 0.5});
  EXPECT_THROW((void)seq.run(2.0), InvalidArgument);
}

TEST(SequenceAggregator, HomogeneousSequenceMergesFully) {
  const auto seq = make_sequence({0.4, 0.4, 0.4, 0.4, 0.4});
  const auto r = seq.run(0.5);
  ASSERT_EQ(r.intervals.size(), 1u);
  EXPECT_EQ(r.intervals[0].i, 0);
  EXPECT_EQ(r.intervals[0].j, 4);
  EXPECT_NEAR(r.measures.loss, 0.0, 1e-12);
}

TEST(SequenceAggregator, StepFunctionCutsAtTheStep) {
  // Strongly contrasted halves: at accuracy-leaning p the DP must cut at
  // the boundary.
  const auto seq = make_sequence({0.9, 0.9, 0.9, 0.1, 0.1, 0.1});
  const auto r = seq.run(0.1);
  ASSERT_EQ(r.intervals.size(), 2u);
  EXPECT_EQ(r.intervals[0].j, 2);
  EXPECT_EQ(r.intervals[1].i, 3);
  EXPECT_NEAR(r.measures.loss, 0.0, 1e-12);
}

TEST(SequenceAggregator, IntervalsCoverInOrder) {
  const auto seq =
      make_sequence({0.1, 0.9, 0.3, 0.7, 0.2, 0.8, 0.5, 0.5});
  for (const double p : {0.0, 0.3, 0.7, 1.0}) {
    const auto r = seq.run(p);
    SliceId expect = 0;
    for (const auto& iv : r.intervals) {
      EXPECT_EQ(iv.i, expect);
      EXPECT_LE(iv.i, iv.j);
      expect = iv.j + 1;
    }
    EXPECT_EQ(expect, seq.length());
  }
}

TEST(SequenceAggregator, MatchesExhaustiveSearch) {
  // Random-ish sequences, two states, against the 2^(T-1) enumeration.
  const std::vector<double> values = {0.1, 0.8, 0.2, 0.7, 0.9, 0.05,
                                      0.3, 0.6, 0.4, 0.5, 0.15, 0.75};
  const auto seq = make_sequence(values, 2);  // T = 6, X = 2
  for (const double p : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    const auto r = seq.run(p);
    EXPECT_NEAR(r.optimal_pic, exhaustive_best(seq, p), 1e-10) << "p=" << p;
  }
}

TEST(SequenceAggregator, OptimalPicEqualsSummedMeasures) {
  const auto seq = make_sequence({0.2, 0.9, 0.1, 0.6, 0.3, 0.8, 0.4});
  const auto r = seq.run(0.4);
  EXPECT_NEAR(r.optimal_pic, pic(0.4, r.measures.gain, r.measures.loss),
              1e-10);
}

TEST(SequenceAggregator, WeightedDurationsChangeAggregation) {
  // Same values, very unequal durations: the aggregate proportion is
  // duration-weighted (Eq. 1), so interval measures must differ from the
  // uniform case.
  SequenceAggregator uniform({0.9, 0.1}, {1.0, 1.0}, 1);
  SequenceAggregator skewed({0.9, 0.1}, {10.0, 0.1}, 1);
  const auto mu = uniform.interval_measures(0, 1);
  const auto ms = skewed.interval_measures(0, 1);
  EXPECT_GT(std::abs(mu.loss - ms.loss), 1e-6);
}

TEST(SequenceAggregator, SpatiallyAggregatedFromCube) {
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 2, .slices = 6, .states = 2, .seed = 7});
  const DataCube cube(om.model);
  const auto seq = SequenceAggregator::spatially_aggregated(cube);
  EXPECT_EQ(seq.length(), 6);
  EXPECT_EQ(seq.state_count(), 2);
  // The whole-window aggregate of the sequence equals the cube's root
  // measures restricted to the "sequence individuals = slices" view: at
  // minimum the run must produce a covering partition.
  const auto r = seq.run(0.5);
  SliceId expect = 0;
  for (const auto& iv : r.intervals) {
    EXPECT_EQ(iv.i, expect);
    expect = iv.j + 1;
  }
  EXPECT_EQ(expect, 6);
}

}  // namespace
}  // namespace stagg
