// End-to-end pipeline tests: generator -> trace file -> reader -> model ->
// aggregation -> analysis, mirroring the paper's Table II processing chain.
#include <gtest/gtest.h>

#include <filesystem>

#include "analysis/phases.hpp"
#include "core/aggregator.hpp"
#include "core/dichotomy.hpp"
#include "model/builder.hpp"
#include "trace/binary_io.hpp"
#include "trace/csv_io.hpp"
#include "trace/trace_stats.hpp"
#include "viz/spatiotemporal_view.hpp"
#include "workload/scenarios.hpp"

namespace stagg {
namespace {

namespace fs = std::filesystem;

class Pipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "stagg_pipeline";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (dir_ / name).string();
  }
  fs::path dir_;
};

TEST_F(Pipeline, CaseAThroughBinaryFile) {
  GeneratedScenario g = generate_scenario(scenario_a(), 1.0 / 128.0);
  const std::string path = file("caseA.stgt");
  write_binary_trace(g.trace, path);

  Trace loaded = read_binary_trace(path);
  EXPECT_EQ(loaded.state_count(), g.trace.state_count());

  const MicroscopicModel model =
      build_model(loaded, *g.hierarchy, {.slice_count = 30});
  model.validate();

  SpatiotemporalAggregator agg(model);
  const AggregationResult r = agg.run(0.3);
  EXPECT_TRUE(r.partition.is_valid(*g.hierarchy, 30));
  // The overview is a real reduction: far fewer areas than microscopic
  // cells, and far fewer than one per trace state.
  EXPECT_LT(r.partition.size(), 64u * 30u / 2u);
  EXPECT_GE(r.quality.complexity_reduction(), 0.5);

  const auto phases = detect_phases(r, agg.cube());
  EXPECT_GE(phases.size(), 2u);
  EXPECT_EQ(phases[0].mode_name, "MPI_Init");
}

TEST_F(Pipeline, BinaryAndCsvPathsProduceIdenticalModels) {
  GeneratedScenario g = generate_scenario(scenario_a(), 1.0 / 512.0);
  write_binary_trace(g.trace, file("t.stgt"));
  write_csv_trace(g.trace, file("t.csv"));

  Trace from_bin = read_binary_trace(file("t.stgt"));
  Trace from_csv = read_csv_trace(file("t.csv"));
  const MicroscopicModel a =
      build_model(from_bin, *g.hierarchy, {.slice_count = 30});
  const MicroscopicModel b =
      build_model(from_csv, *g.hierarchy, {.slice_count = 30});
  ASSERT_EQ(a.raw().size(), b.raw().size());
  for (std::size_t i = 0; i < a.raw().size(); ++i) {
    ASSERT_NEAR(a.raw()[i], b.raw()[i], 1e-12);
  }
}

TEST_F(Pipeline, StreamingBuildMatchesInMemoryOnScenario) {
  GeneratedScenario g = generate_scenario(scenario_a(), 1.0 / 256.0);
  const std::string path = file("s.stgt");
  write_binary_trace(g.trace, path);
  const MicroscopicModel mem =
      build_model(g.trace, *g.hierarchy, {.slice_count = 30});
  const MicroscopicModel str =
      build_model_streaming(path, *g.hierarchy, {.slice_count = 30});
  for (std::size_t i = 0; i < mem.raw().size(); ++i) {
    ASSERT_NEAR(mem.raw()[i], str.raw()[i], 1e-9);
  }
}

TEST_F(Pipeline, ModelMassEqualsTraceBusyTimeWithinWindow) {
  GeneratedScenario g = generate_scenario(scenario_a(), 1.0 / 256.0);
  const TraceStats stats = compute_stats(g.trace);
  const MicroscopicModel model =
      build_model(g.trace, *g.hierarchy, {.slice_count = 30});
  // Busy time clipped to [0, 9.5 s]; generated states may spill slightly
  // past the window, so mass <= busy and close to it.
  EXPECT_LE(model.total_mass(), to_seconds(stats.busy_time) + 1e-6);
  EXPECT_GT(model.total_mass(), to_seconds(stats.busy_time) * 0.95);
}

TEST_F(Pipeline, DichotomyThenRenderAtEachLevel) {
  GeneratedScenario g = generate_scenario(scenario_a(), 1.0 / 256.0);
  const MicroscopicModel model =
      build_model(g.trace, *g.hierarchy, {.slice_count = 30});
  SpatiotemporalAggregator agg(model);
  const DichotomyResult levels =
      find_significant_levels(agg, {.epsilon = 0.05, .max_runs = 64});
  EXPECT_GE(levels.levels.size(), 2u);
  for (const auto& level : levels.levels) {
    const ViewLayout layout = layout_overview(level.result, agg.cube(), {});
    EXPECT_GT(layout.tiles.size(), 0u);
  }
}

TEST_F(Pipeline, AggregationIsFasterThanModelBuildAtScale) {
  // The paper's headline performance fact (Table II): aggregation (<1-2 s)
  // is orders of magnitude cheaper than reading/describing the trace.  At
  // test scale we only assert the ordering, not absolute times.
  GeneratedScenario g = generate_scenario(scenario_a(), 1.0 / 32.0);
  const auto t0 = std::chrono::steady_clock::now();
  const MicroscopicModel model =
      build_model(g.trace, *g.hierarchy, {.slice_count = 30});
  const auto t1 = std::chrono::steady_clock::now();
  SpatiotemporalAggregator agg(model);  // includes cube build
  const auto r = agg.run(0.5);
  (void)r;
  const auto t2 = std::chrono::steady_clock::now();
  // Aggregation (cube + DP) should not dwarf the microscopic description;
  // allow a generous factor to stay robust on loaded CI machines.
  const auto micro = t1 - t0;
  const auto aggregation = t2 - t1;
  EXPECT_LT(aggregation, micro * 50);
}

}  // namespace
}  // namespace stagg
