#include "model/time_grid.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace stagg {
namespace {

TEST(TimeGrid, BoundariesExactAtEnds) {
  const TimeGrid g(seconds(1.0), seconds(10.0), 30);
  EXPECT_EQ(g.slice_begin(0), seconds(1.0));
  EXPECT_EQ(g.slice_end(29), seconds(10.0));
  // Slices tile the window with no gaps.
  for (SliceId t = 1; t < 30; ++t) {
    EXPECT_EQ(g.slice_end(t - 1), g.slice_begin(t));
  }
}

TEST(TimeGrid, NoCumulativeDrift) {
  // A span that does not divide evenly: boundaries must still be monotone
  // and the summed durations equal the window exactly.
  const TimeGrid g(0, 1'000'000'007, 30);
  TimeNs total = 0;
  for (SliceId t = 0; t < 30; ++t) {
    EXPECT_LT(g.slice_begin(t), g.slice_end(t));
    total += g.slice_end(t) - g.slice_begin(t);
  }
  EXPECT_EQ(total, 1'000'000'007);
}

TEST(TimeGrid, SliceOfRoundTrips) {
  const TimeGrid g(0, seconds(3.0), 30);
  for (SliceId t = 0; t < 30; ++t) {
    EXPECT_EQ(g.slice_of(g.slice_begin(t)), t);
    EXPECT_EQ(g.slice_of(g.slice_end(t) - 1), t);
  }
}

TEST(TimeGrid, SliceOfClamps) {
  const TimeGrid g(seconds(1.0), seconds(2.0), 10);
  EXPECT_EQ(g.slice_of(0), 0);
  EXPECT_EQ(g.slice_of(seconds(5.0)), 9);
}

TEST(TimeGrid, OverlapFullInsideOutside) {
  const TimeGrid g(0, seconds(10.0), 10);  // 1 s slices
  // Interval spanning slices 2..4 partially.
  EXPECT_DOUBLE_EQ(g.overlap_s(seconds(2.5), seconds(4.5), 2), 0.5);
  EXPECT_DOUBLE_EQ(g.overlap_s(seconds(2.5), seconds(4.5), 3), 1.0);
  EXPECT_DOUBLE_EQ(g.overlap_s(seconds(2.5), seconds(4.5), 4), 0.5);
  EXPECT_DOUBLE_EQ(g.overlap_s(seconds(2.5), seconds(4.5), 5), 0.0);
  EXPECT_DOUBLE_EQ(g.overlap_s(seconds(2.5), seconds(4.5), 0), 0.0);
}

TEST(TimeGrid, IntervalDuration) {
  const TimeGrid g(0, seconds(30.0), 30);
  EXPECT_NEAR(g.interval_duration_s(0, 29), 30.0, 1e-9);
  EXPECT_NEAR(g.interval_duration_s(5, 9), 5.0, 1e-9);
  EXPECT_NEAR(g.slice_duration_s(7), 1.0, 1e-9);
}

TEST(TimeGrid, InvalidConstruction) {
  EXPECT_THROW(TimeGrid(0, 100, 0), InvalidArgument);
  EXPECT_THROW(TimeGrid(100, 100, 5), InvalidArgument);
  EXPECT_THROW(TimeGrid(200, 100, 5), InvalidArgument);
}

}  // namespace
}  // namespace stagg
