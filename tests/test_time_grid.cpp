#include "model/time_grid.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace stagg {
namespace {

TEST(TimeGrid, BoundariesExactAtEnds) {
  const TimeGrid g(seconds(1.0), seconds(10.0), 30);
  EXPECT_EQ(g.slice_begin(0), seconds(1.0));
  EXPECT_EQ(g.slice_end(29), seconds(10.0));
  // Slices tile the window with no gaps.
  for (SliceId t = 1; t < 30; ++t) {
    EXPECT_EQ(g.slice_end(t - 1), g.slice_begin(t));
  }
}

TEST(TimeGrid, NoCumulativeDrift) {
  // A span that does not divide evenly: boundaries must still be monotone
  // and the summed durations equal the window exactly.
  const TimeGrid g(0, 1'000'000'007, 30);
  TimeNs total = 0;
  for (SliceId t = 0; t < 30; ++t) {
    EXPECT_LT(g.slice_begin(t), g.slice_end(t));
    total += g.slice_end(t) - g.slice_begin(t);
  }
  EXPECT_EQ(total, 1'000'000'007);
}

TEST(TimeGrid, SliceOfRoundTrips) {
  const TimeGrid g(0, seconds(3.0), 30);
  for (SliceId t = 0; t < 30; ++t) {
    EXPECT_EQ(g.slice_of(g.slice_begin(t)), t);
    EXPECT_EQ(g.slice_of(g.slice_end(t) - 1), t);
  }
}

TEST(TimeGrid, SliceOfClamps) {
  const TimeGrid g(seconds(1.0), seconds(2.0), 10);
  EXPECT_EQ(g.slice_of(0), 0);
  EXPECT_EQ(g.slice_of(seconds(5.0)), 9);
}

TEST(TimeGrid, OverlapFullInsideOutside) {
  const TimeGrid g(0, seconds(10.0), 10);  // 1 s slices
  // Interval spanning slices 2..4 partially.
  EXPECT_DOUBLE_EQ(g.overlap_s(seconds(2.5), seconds(4.5), 2), 0.5);
  EXPECT_DOUBLE_EQ(g.overlap_s(seconds(2.5), seconds(4.5), 3), 1.0);
  EXPECT_DOUBLE_EQ(g.overlap_s(seconds(2.5), seconds(4.5), 4), 0.5);
  EXPECT_DOUBLE_EQ(g.overlap_s(seconds(2.5), seconds(4.5), 5), 0.0);
  EXPECT_DOUBLE_EQ(g.overlap_s(seconds(2.5), seconds(4.5), 0), 0.0);
}

TEST(TimeGrid, IntervalDuration) {
  const TimeGrid g(0, seconds(30.0), 30);
  EXPECT_NEAR(g.interval_duration_s(0, 29), 30.0, 1e-9);
  EXPECT_NEAR(g.interval_duration_s(5, 9), 5.0, 1e-9);
  EXPECT_NEAR(g.slice_duration_s(7), 1.0, 1e-9);
}

TEST(TimeGrid, SliceOfExactEdgeOnNonDivisibleSpan) {
  // Regression: span 10 / count 3 gives edges {0, 3, 6, 10}; the plain
  // floor((time - begin) * count / span) maps the edge timestamp 3 to
  // slice 0 (3 * 3 / 10 = 0).  An event starting exactly on a slice edge
  // must land in the slice *starting* there, never the one before.
  const TimeGrid g(0, 10, 3);
  ASSERT_EQ(g.slice_begin(1), 3);
  EXPECT_EQ(g.slice_of(3), 1);
  for (SliceId t = 0; t < 3; ++t) {
    EXPECT_EQ(g.slice_of(g.slice_begin(t)), t) << "t=" << t;
    EXPECT_EQ(g.slice_of(g.slice_end(t) - 1), t) << "t=" << t;
  }
  // Sweep awkward spans: the round trip must hold on the edges of every
  // *non-empty* slice (span < count produces zero-width slices, which by
  // the half-open convention contain no timestamp at all — their edge
  // belongs to the next non-empty slice).
  for (const TimeNs span : {7LL, 101LL, 999'999'937LL}) {
    for (const std::int32_t count : {3, 13, 30}) {
      const TimeGrid grid(5, 5 + span, count);
      for (SliceId t = 0; t < count; ++t) {
        if (grid.slice_begin(t) == grid.slice_end(t)) continue;
        EXPECT_EQ(grid.slice_of(grid.slice_begin(t)), t)
            << "span=" << span << " count=" << count << " t=" << t;
        EXPECT_EQ(grid.slice_of(grid.slice_end(t) - 1), t)
            << "span=" << span << " count=" << count << " t=" << t;
      }
    }
  }
}

TEST(TimeGrid, DerivedWindowsMatchFreshGridsToZeroUlp) {
  // Satellite regression: 10^3 slides (with interleaved extensions and
  // contractions) derived step by step must produce slice edges that are
  // *bit-identical* (0 ULP, both the integer edges and the double
  // durations) to a grid built from scratch over the same span — edges are
  // always recomputed from the window origin, never accumulated.
  const TimeNs dt = 1'000'000;  // 1 ms slices
  TimeGrid g(seconds(2.0), seconds(2.0) + dt * 96, 96);
  for (int step = 0; step < 1000; ++step) {
    const int k = 1 + step % 3;
    if (step % 7 == 3 && g.slice_count() < 160) {
      g = g.extended(k);
    } else if (step % 7 == 5 && g.slice_count() > k + 32) {
      g = g.contracted(k);
    } else {
      g = g.advanced(k);
    }
    const TimeGrid fresh(g.begin(), g.end(), g.slice_count());
    ASSERT_EQ(g.uniform_dt_ns(), dt);
    for (SliceId t = 0; t < g.slice_count(); ++t) {
      ASSERT_EQ(g.slice_begin(t), fresh.slice_begin(t))
          << "step=" << step << " t=" << t;
      ASSERT_EQ(g.slice_end(t), fresh.slice_end(t))
          << "step=" << step << " t=" << t;
      // Double-typed durations too: bit-equality, not tolerance.
      ASSERT_EQ(g.slice_duration_s(t), fresh.slice_duration_s(t))
          << "step=" << step << " t=" << t;
    }
  }
}

TEST(TimeGrid, DerivedWindowHelpersValidate) {
  const TimeGrid uneven(0, 10, 3);  // no uniform dt
  EXPECT_EQ(uneven.uniform_dt_ns(), 0);
  EXPECT_THROW((void)uneven.advanced(1), InvalidArgument);
  EXPECT_THROW((void)uneven.extended(1), InvalidArgument);
  EXPECT_THROW((void)uneven.contracted(1), InvalidArgument);

  const TimeGrid g(0, 100, 10);
  EXPECT_EQ(g.uniform_dt_ns(), 10);
  EXPECT_THROW((void)g.extended(-1), InvalidArgument);
  EXPECT_THROW((void)g.contracted(10), InvalidArgument);
  EXPECT_THROW((void)g.contracted(-1), InvalidArgument);
  const TimeGrid back = g.advanced(-2);
  EXPECT_EQ(back.begin(), -20);
  EXPECT_EQ(back.end(), 80);
  EXPECT_EQ(g.contracted(9).slice_count(), 1);
}

TEST(TimeGrid, InvalidConstruction) {
  EXPECT_THROW(TimeGrid(0, 100, 0), InvalidArgument);
  EXPECT_THROW(TimeGrid(100, 100, 5), InvalidArgument);
  EXPECT_THROW(TimeGrid(200, 100, 5), InvalidArgument);
}

}  // namespace
}  // namespace stagg
