#include <gtest/gtest.h>

#include "core/aggregator.hpp"
#include "core/baselines.hpp"
#include "viz/ascii_view.hpp"
#include "viz/gantt.hpp"
#include "viz/spatiotemporal_view.hpp"
#include "viz/svg.hpp"
#include "viz/timeline_view.hpp"
#include "viz/treemap.hpp"
#include "workload/fixtures.hpp"

namespace stagg {
namespace {

TEST(Color, HexFormatting) {
  EXPECT_EQ((Rgba{255, 0, 16, 255}.hex_rgb()), "#ff0010");
}

TEST(Color, WellKnownMpiStates) {
  ASSERT_NE(StateColorMap::well_known("MPI_Init"), nullptr);
  ASSERT_NE(StateColorMap::well_known("MPI_Wait"), nullptr);
  EXPECT_EQ(StateColorMap::well_known("NotAState"), nullptr);
  // Figure 1's reading: init yellow-ish (high R+G), wait red-ish.
  const Rgba init = *StateColorMap::well_known("MPI_Init");
  EXPECT_GT(static_cast<int>(init.r) + init.g, 2 * init.b);
}

TEST(Color, MapAssignsDistinctFallbacks) {
  StateRegistry reg;
  reg.intern("custom_a");
  reg.intern("custom_b");
  reg.intern("MPI_Send");
  const StateColorMap map(reg);
  EXPECT_NE(map.color(0), map.color(1));
  EXPECT_EQ(map.color(2), *StateColorMap::well_known("MPI_Send"));
}

TEST(Color, BlendOverWhite) {
  const Rgba c = blend_over_white({0, 0, 0, 255}, 0.5);
  EXPECT_NEAR(c.r, 127, 1);
  const Rgba full = blend_over_white({10, 20, 30, 255}, 1.0);
  EXPECT_EQ(full.r, 10);
}

TEST(Svg, DocumentStructure) {
  SvgCanvas svg(100, 50);
  svg.rect(1, 2, 3, 4, {255, 0, 0, 255}, 0.5, true);
  svg.line(0, 0, 10, 10, {0, 0, 0, 255});
  svg.text(5, 5, "a<b");
  const std::string s = svg.str();
  EXPECT_NE(s.find("<svg"), std::string::npos);
  EXPECT_NE(s.find("</svg>"), std::string::npos);
  EXPECT_NE(s.find("fill=\"#ff0000\""), std::string::npos);
  EXPECT_NE(s.find("fill-opacity"), std::string::npos);
  EXPECT_NE(s.find("a&lt;b"), std::string::npos);
  EXPECT_EQ(svg.element_count(), 3u);
}

class ViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    om_ = make_figure3_model();
    agg_.emplace(om_->model);
    result_ = agg_->run(0.35);
  }
  std::optional<OwnedModel> om_;
  std::optional<SpatiotemporalAggregator> agg_;
  AggregationResult result_;
};

TEST_F(ViewTest, NoVisualAggregationWhenRowsAreTall) {
  ViewOptions opt;
  opt.min_row_px = 0.0;  // disabled
  const ViewLayout layout = layout_overview(result_, agg_->cube(), opt);
  EXPECT_EQ(layout.stats.data_aggregates, result_.partition.size());
  EXPECT_EQ(layout.stats.visual_aggregates, 0u);
  EXPECT_EQ(layout.tiles.size(), result_.partition.size());
}

TEST_F(ViewTest, TilesCoverPlotExactly) {
  ViewOptions opt;
  opt.min_row_px = 0.0;
  opt.draw_legend = false;
  opt.draw_axis = false;
  const ViewLayout layout = layout_overview(result_, agg_->cube(), opt);
  double area = 0.0;
  for (const auto& t : layout.tiles) area += t.w * t.h;
  EXPECT_NEAR(area, layout.plot_w * layout.plot_h,
              layout.plot_w * layout.plot_h * 1e-6);
}

TEST_F(ViewTest, VisualAggregationKicksInUnderBudget) {
  ViewOptions opt;
  opt.height_px = 30.0;  // 12 rows in <30 px -> rows ~2 px
  opt.min_row_px = 6.0;  // leaves and single rows are sub-threshold
  opt.draw_axis = false;
  const ViewLayout layout = layout_overview(result_, agg_->cube(), opt);
  EXPECT_GT(layout.stats.visual_aggregates, 0u);
  EXPECT_GT(layout.stats.hidden_aggregates, 0u);
  EXPECT_EQ(layout.stats.visual_aggregates,
            layout.stats.diagonal_marks + layout.stats.cross_marks);
  // Fig. 3.f behaviour: heterogeneous SC rows produce crosses.
  EXPECT_GT(layout.stats.cross_marks, 0u);
}

TEST_F(ViewTest, AlphaWithinPaperBounds) {
  const ViewLayout layout = layout_overview(result_, agg_->cube(), {});
  for (const auto& t : layout.tiles) {
    if (t.mode == kNoState) continue;
    // alpha = rho_max / sum rho in [1/|X|, 1].
    EXPECT_GE(t.alpha, 1.0 / 2 - 1e-9);
    EXPECT_LE(t.alpha, 1.0 + 1e-9);
  }
}

TEST_F(ViewTest, RenderAndSaveProducesSvg) {
  const SvgCanvas svg = render_overview(result_, agg_->cube(), {});
  EXPECT_GT(svg.element_count(), result_.partition.size());
  const std::string path = "/tmp/stagg_view_test.svg";
  const ViewStats stats = save_overview(result_, agg_->cube(), path, {});
  EXPECT_GT(stats.data_aggregates, 0u);
  std::remove(path.c_str());
}

TEST_F(ViewTest, AsciiRenderShowsCutsAndModes) {
  const std::string s = render_ascii(result_, agg_->cube(), {});
  EXPECT_NE(s.find('|'), std::string::npos);   // temporal cuts
  EXPECT_NE(s.find("S/SA"), std::string::npos);  // leaf paths
  // 12 rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 12);
}

TEST_F(ViewTest, AsciiClipsRows) {
  AsciiOptions opt;
  opt.max_rows = 3;
  const std::string s = render_ascii(result_, agg_->cube(), opt);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

TEST(GanttTest, StatsCountSubpixelObjects) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  // 1000 states over 10 s rendered at 100 px: each ~0.1 px wide.
  for (int k = 0; k < 1000; ++k) {
    t.add_state(r, "s", seconds(k * 0.01), seconds(k * 0.01 + 0.008));
  }
  GanttOptions opt;
  opt.width_px = 100.0;
  const GanttStats stats = gantt_stats(t, opt);
  EXPECT_EQ(stats.objects_total, 1000u);
  EXPECT_EQ(stats.objects_subpixel, 1000u);
  EXPECT_NEAR(stats.subpixel_fraction(), 1.0, 1e-12);
  EXPECT_GT(stats.mean_objects_per_column, 5.0);
}

TEST(GanttTest, WideStatesAreNotSubpixel) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  t.add_state(r, "s", 0, seconds(5.0));
  t.add_state(r, "s", seconds(5.0), seconds(10.0));
  GanttOptions opt;
  opt.width_px = 100.0;
  const GanttStats stats = gantt_stats(t, opt);
  EXPECT_EQ(stats.objects_subpixel, 0u);
  EXPECT_EQ(stats.objects_total, 2u);
}

TEST(GanttTest, WindowRestrictsObjects) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  for (int k = 0; k < 70; ++k) {
    t.add_state(r, "s", seconds(k * 1.0), seconds(k * 1.0 + 0.9));
  }
  GanttOptions opt;
  opt.window_begin = 0;
  opt.window_end = seconds(10.0);  // 1/7 of the trace, as Fig. 2
  const GanttStats stats = gantt_stats(t, opt);
  EXPECT_EQ(stats.objects_total, 10u);
}

TEST(GanttTest, ObjectBudgetDropsRest) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  for (int k = 0; k < 100; ++k) {
    t.add_state(r, "s", seconds(k * 0.1), seconds(k * 0.1 + 0.05));
  }
  GanttOptions opt;
  opt.object_budget = 30;
  const auto rendering = render_gantt(t, opt);
  EXPECT_EQ(rendering.stats.objects_drawn, 30u);
  EXPECT_EQ(rendering.stats.objects_dropped, 70u);
}

TEST(TreemapTest, CellAreasProportionalToLeafCounts) {
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 3, .slices = 4, .states = 2, .seed = 12});
  const DataCube cube(om.model);
  const auto spatial = HierarchyAggregator::temporally_aggregated(cube);
  const auto r = spatial.run(0.0);  // microscopic: 9 leaves
  TreemapOptions opt;
  opt.padding_px = 0.0;
  const auto cells = layout_treemap(r, cube, opt);
  ASSERT_EQ(cells.size(), r.parts.size());
  double total = 0.0;
  for (const auto& c : cells) total += c.w * c.h;
  EXPECT_NEAR(total, opt.width_px * opt.height_px, 1.0);
  // Equal-weight leaves -> roughly equal cells (fidelity G5).
  const double expected = total / static_cast<double>(cells.size());
  for (const auto& c : cells) {
    EXPECT_NEAR(c.w * c.h, expected, expected * 0.01);
  }
}

TEST(TreemapTest, RendersSvg) {
  const OwnedModel om = make_random_model(
      {.levels = 1, .fanout = 4, .slices = 4, .states = 2, .seed = 2});
  const DataCube cube(om.model);
  const auto spatial = HierarchyAggregator::temporally_aggregated(cube);
  const SvgCanvas svg = render_treemap(spatial.run(0.5), cube);
  EXPECT_GT(svg.element_count(), 0u);
}

TEST(TimelineTest, RendersStackedColumns) {
  const OwnedModel om = make_random_model(
      {.levels = 1, .fanout = 4, .slices = 8, .states = 3, .seed = 4});
  const DataCube cube(om.model);
  const auto seq = SequenceAggregator::spatially_aggregated(cube);
  const SvgCanvas svg = render_timeline(seq.run(0.5), cube);
  EXPECT_GT(svg.element_count(), 0u);
}

}  // namespace
}  // namespace stagg
