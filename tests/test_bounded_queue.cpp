// BoundedQueue suite: the backpressure primitive under the staged ingest
// pipeline.  Blocking pushes must throttle producers while the queue is
// full (never drop), close() must unblock everyone and still drain what
// was accepted, and per-producer FIFO order must survive MPSC stress.
#include "common/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

namespace stagg {
namespace {

TEST(BoundedQueue, FifoAndCounters) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_EQ(q.depth(), 0u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_FALSE(q.try_push(99)) << "full queue must refuse try_push";
  for (int i = 0; i < 4; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
  const BoundedQueueStats s = q.stats();
  EXPECT_EQ(s.capacity, 4u);
  EXPECT_EQ(s.depth, 0u);
  EXPECT_EQ(s.high_water, 4u);
  EXPECT_EQ(s.pushed, 4u);
  EXPECT_EQ(s.blocked_pushes, 0u);
}

TEST(BoundedQueue, CapacityFloorsAtOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.push(7));
  EXPECT_FALSE(q.try_push(8));
}

TEST(BoundedQueue, FullPushBlocksUntilPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks: queue is full
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load()) << "push must block while full";
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_GE(q.stats().blocked_pushes, 1u);
}

TEST(BoundedQueue, EmptyPopBlocksUntilPush) {
  BoundedQueue<int> q(2);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    const auto v = q.pop();  // blocks: queue is empty
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42);
    popped.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(popped.load()) << "pop must block while empty";
  EXPECT_TRUE(q.push(42));
  consumer.join();
  EXPECT_TRUE(popped.load());
}

TEST(BoundedQueue, CloseDrainsAcceptedItemsThenSignalsEnd) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.push(i));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(99)) << "closed queue refuses new items";
  for (int i = 0; i < 3; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value()) << "close must not drop accepted items";
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.pop().has_value()) << "drained + closed ends the stream";
  q.close();  // idempotent
}

TEST(BoundedQueue, CloseUnblocksBlockedProducerAndConsumer) {
  BoundedQueue<int> full(1);
  ASSERT_TRUE(full.push(1));
  std::thread producer([&] { EXPECT_FALSE(full.push(2)); });
  BoundedQueue<int> empty(1);
  std::thread consumer([&] { EXPECT_FALSE(empty.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  full.close();
  empty.close();
  producer.join();
  consumer.join();
}

TEST(BoundedQueue, MpscStressPreservesPerProducerOrder) {
  constexpr std::size_t kProducers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<std::pair<std::size_t, int>> q(8);  // small: force blocking
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push({p, i}));
      }
    });
  }
  std::vector<int> next(kProducers, 0);
  std::size_t total = 0;
  while (total < kProducers * kPerProducer) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    const auto [p, i] = *v;
    EXPECT_EQ(i, next[p]) << "per-producer FIFO order violated";
    next[p] = i + 1;
    ++total;
  }
  for (auto& t : producers) t.join();
  const BoundedQueueStats s = q.stats();
  EXPECT_EQ(s.pushed, kProducers * static_cast<std::uint64_t>(kPerProducer));
  EXPECT_LE(s.high_water, s.capacity) << "depth must stay bounded";
  EXPECT_EQ(s.depth, 0u);
}

}  // namespace
}  // namespace stagg
