// Chunk-compression suite: per-codec property tests over the columnar
// codecs (delta family, gap-from-prev-end, dictionary RLE/bitpack), the
// cheapest-codec selection, and the streaming ColumnsDecoder.
//
// The load-bearing properties:
//   * Round trip — encode_columns followed by a streaming decode yields
//     the exact input interval sequence, for random sorted columns and
//     for every adversarial shape the issue names (constant columns,
//     max-delta jumps at the int64 range limits, hundreds of states,
//     single-interval chunks).
//   * Never larger — the raw fallback bounds encoded_bytes() by the raw
//     column bytes, whatever the input.
//   * Loud rejection — malformed encoded streams (truncation, trailing
//     bytes, dictionary/run inconsistencies, an end column claiming the
//     begin-only gap codec) throw TraceFormatError instead of decoding
//     garbage.
#include "trace/compression.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "trace/trace_store.hpp"

namespace stagg {
namespace {

constexpr std::size_t kRawBytesPerInterval = 8 + 8 + 4;

std::vector<StateInterval> decode_all(const ColumnsCoding& coding) {
  ColumnsDecoder decoder(coding);
  std::vector<StateInterval> out;
  StateInterval s{};
  while (decoder.next(s)) out.push_back(s);
  return out;
}

/// Encodes the (sorted) intervals, asserts the never-larger bound and
/// that a streaming decode reproduces them bit-exactly, and returns the
/// encoding for codec-choice assertions.
EncodedColumns round_trip(const std::vector<StateInterval>& intervals,
                          const std::string& context) {
  std::vector<TimeNs> begins;
  std::vector<TimeNs> ends;
  std::vector<StateId> states;
  for (const StateInterval& s : intervals) {
    begins.push_back(s.begin);
    ends.push_back(s.end);
    states.push_back(s.state);
  }
  EncodedColumns enc = encode_columns(begins, ends, states);
  EXPECT_EQ(enc.count, intervals.size()) << context;
  EXPECT_LE(enc.encoded_bytes(), intervals.size() * kRawBytesPerInterval)
      << context << ": raw fallback must bound the encoded size";
  EXPECT_EQ(enc.first, intervals.front()) << context;
  EXPECT_EQ(enc.last, intervals.back()) << context;
  TimeNs min_end = ends[0];
  TimeNs max_end = ends[0];
  for (const TimeNs e : ends) {
    min_end = std::min(min_end, e);
    max_end = std::max(max_end, e);
  }
  EXPECT_EQ(enc.min_end, min_end) << context;
  EXPECT_EQ(enc.max_end, max_end) << context;

  const std::vector<StateInterval> got = decode_all(enc.coding());
  EXPECT_EQ(got.size(), intervals.size()) << context;
  if (got.size() != intervals.size()) return enc;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], intervals[i])
        << context << " interval " << i << " (begin "
        << time_codec_name(enc.begin_codec) << ", end "
        << time_codec_name(enc.end_codec) << ", state "
        << state_codec_name(enc.state_codec) << ")";
  }
  return enc;
}

std::vector<StateInterval> make_sorted_intervals(std::uint64_t seed,
                                                 std::size_t n,
                                                 std::int32_t state_count,
                                                 TimeNs span) {
  SplitMix64 mix(seed);
  std::vector<StateInterval> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto b = static_cast<TimeNs>(mix.next() % static_cast<std::uint64_t>(span));
    TimeNs d = static_cast<TimeNs>(mix.next() % 50000);
    if (mix.next() % 8 == 0) d = 0;
    out.push_back({b, b + d,
                   static_cast<StateId>(mix.next() %
                                        static_cast<std::uint64_t>(state_count))});
  }
  std::sort(out.begin(), out.end(), interval_key_less);
  return out;
}

// ---------------------------------------------------------------------------
// Primitives.
// ---------------------------------------------------------------------------

TEST(Compression, ZigzagRoundTripsIncludingRangeLimits) {
  const std::int64_t values[] = {0,
                                 1,
                                 -1,
                                 63,
                                 -64,
                                 1234567891011,
                                 -1234567891011,
                                 std::numeric_limits<std::int64_t>::max(),
                                 std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : values) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v) << v;
  }
  // Small magnitudes must map to small codes (the point of zigzag).
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
}

TEST(Compression, VarintSizeMatchesEmittedBytes) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ull << 35) - 1,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : values) {
    std::vector<std::uint8_t> buf;
    put_varint(buf, v);
    EXPECT_EQ(buf.size(), varint_size(v)) << v;
    EXPECT_LE(buf.size(), 10u) << v;
  }
}

// ---------------------------------------------------------------------------
// Round-trip properties.
// ---------------------------------------------------------------------------

TEST(Compression, RandomSortedColumnsRoundTrip) {
  for (const std::uint64_t seed : {0x01ull, 0xBEEFull, 0x5EEDull}) {
    for (const std::size_t n : {1, 2, 7, 100, 1000}) {
      round_trip(make_sorted_intervals(seed, n, 3, 1000000),
                 "seed " + std::to_string(seed) + " n " + std::to_string(n));
    }
  }
}

TEST(Compression, ConstantColumnsCollapseToConstCodecs) {
  // 500 identical intervals: both time columns are constant streams and
  // the dictionary is singular — the whole chunk must encode to a
  // handful of bytes.
  const std::vector<StateInterval> intervals(500,
                                             StateInterval{1000, 2500, 7});
  const EncodedColumns enc = round_trip(intervals, "constant columns");
  EXPECT_EQ(enc.begin_codec, TimeCodec::kConst);
  EXPECT_EQ(enc.end_codec, TimeCodec::kConst);
  EXPECT_NE(enc.state_codec, StateCodec::kRaw);
  EXPECT_LT(enc.encoded_bytes(), 32u)
      << "500 identical intervals must collapse to a few varints";
}

TEST(Compression, MaxDeltaJumpsAtInt64RangeLimitsRoundTrip) {
  // Sorted begins touching both int64 range limits: consecutive deltas
  // overflow int64 but the wrap-around uint64 arithmetic must round-trip
  // them bit-exactly through every delta-family codec candidate.
  constexpr TimeNs kMin = std::numeric_limits<TimeNs>::min();
  constexpr TimeNs kMax = std::numeric_limits<TimeNs>::max();
  const std::vector<StateInterval> intervals = {
      {kMin, kMin, 0},         {kMin, kMax, 1},          {kMin + 1, kMin + 1, 0},
      {-1, kMax - 1, 2},       {0, 0, 0},                {0, kMax, 1},
      {kMax - 5, kMax, 2},     {kMax, kMax, 0},
  };
  round_trip(intervals, "int64 range limits");

  // And a two-interval chunk whose single delta is the full uint64 span.
  round_trip({{kMin, kMin, 0}, {kMax, kMax, 0}}, "full-span jump");
}

TEST(Compression, HundredsOfStatesRoundTrip) {
  // |X| in the hundreds: the dictionary codecs must stay correct when
  // the dictionary is large (bit width 9) and still never beat the raw
  // bound; timing stays compressible.
  const std::vector<StateInterval> random =
      make_sorted_intervals(0xD1C7, 2000, 400, 500000);
  round_trip(random, "400 states, random");

  // Dictionary == one entry per interval (worst dictionary density).
  std::vector<StateInterval> distinct;
  for (std::int32_t i = 0; i < 300; ++i) {
    distinct.push_back({i * 10, i * 10 + 5, i});
  }
  round_trip(distinct, "300 distinct states");
}

TEST(Compression, SingleIntervalChunkRoundTrips) {
  const EncodedColumns enc =
      round_trip({{123456789, 987654321, 5}}, "single interval");
  EXPECT_LE(enc.encoded_bytes(), 20u);
}

TEST(Compression, GaplessTracePicksGapCodecAndCompressesHard) {
  // Contiguous per-resource intervals (begin[i] == end[i-1]) with a
  // constant duration and two alternating states: the shape the gap
  // codec exists for — about one byte per begin, a constant end column,
  // a bit-packed state column.
  std::vector<StateInterval> intervals;
  TimeNs t = 1000000;
  for (int i = 0; i < 512; ++i) {
    intervals.push_back({t, t + 250, i % 2});
    t += 250;
  }
  const EncodedColumns enc = round_trip(intervals, "gapless trace");
  EXPECT_EQ(enc.begin_codec, TimeCodec::kGapFromPrevEnd);
  EXPECT_EQ(enc.end_codec, TimeCodec::kConst);
  // ~1 byte per begin after the varint first value.
  EXPECT_LE(enc.begin_bytes, intervals.size() + 10);
  EXPECT_GE(intervals.size() * kRawBytesPerInterval,
            5 * enc.encoded_bytes())
      << "gapless traces must compress at least 5x";
}

TEST(Compression, EncodeRejectsEmptyOrMismatchedColumns) {
  const std::vector<TimeNs> times = {1, 2};
  const std::vector<StateId> states = {0, 0};
  const std::vector<StateId> one_state = {0};
  EXPECT_THROW((void)encode_columns({}, {}, {}), InvalidArgument);
  EXPECT_THROW((void)encode_columns(times, times, one_state), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Malformed-stream rejection.
// ---------------------------------------------------------------------------

TEST(Compression, DecoderRejectsGapCodecOnEndColumn) {
  // The gap codec needs the previous *end* to decode a begin; an end
  // column claiming it is self-referential and must be rejected up
  // front (the v2 record reader relies on this).
  ColumnsCoding coding;
  coding.count = 1;
  coding.end_codec = TimeCodec::kGapFromPrevEnd;
  EXPECT_THROW((void)ColumnsDecoder(coding), TraceFormatError);
}

TEST(Compression, DecoderRejectsTruncatedAndTrailingSections) {
  const std::vector<StateInterval> intervals =
      make_sorted_intervals(0x7A, 200, 3, 100000);
  const EncodedColumns enc = round_trip(intervals, "baseline");
  ASSERT_NE(enc.begin_codec, TimeCodec::kRaw);

  // Truncated begin section: the decode loop must throw, not read past.
  {
    ColumnsCoding coding = enc.coding();
    coding.begin_section =
        coding.begin_section.first(coding.begin_section.size() - 1);
    EXPECT_THROW((void)decode_all(coding), TraceFormatError);
  }
  // Trailing garbage after the last state run: the post-decode drain
  // check must trip even though every interval decoded fine.
  {
    std::vector<std::uint8_t> padded(enc.coding().state_section.begin(),
                                     enc.coding().state_section.end());
    padded.push_back(0x00);
    ColumnsCoding coding = enc.coding();
    coding.state_section = padded;
    EXPECT_THROW((void)decode_all(coding), TraceFormatError);
  }
}

TEST(Compression, DecoderRejectsDictionaryAndRunInconsistencies) {
  // Handcrafted two-interval chunk: constant time columns (one varint
  // zero each) and a tampered dict-RLE state section.
  const std::vector<std::uint8_t> zero = {0x00};
  const auto make_coding = [&](const std::vector<std::uint8_t>& states) {
    ColumnsCoding c;
    c.count = 2;
    c.begin_codec = TimeCodec::kConst;
    c.end_codec = TimeCodec::kConst;
    c.state_codec = StateCodec::kDictRle;
    c.begin_section = zero;
    c.end_section = zero;
    c.state_section = states;
    return c;
  };
  // dict {7}; run references entry 5 of 1.
  EXPECT_THROW((void)decode_all(make_coding({0x01, 0x0E, 0x05, 0x02})),
               TraceFormatError);
  // dict {7}; run of length 3 in a 2-interval chunk.
  EXPECT_THROW((void)decode_all(make_coding({0x01, 0x0E, 0x00, 0x03})),
               TraceFormatError);
  // Empty dictionary.
  EXPECT_THROW((void)decode_all(make_coding({0x00, 0x00, 0x02})),
               TraceFormatError);
  // Overlong varint dictionary size (11 continuation bytes).
  EXPECT_THROW((void)decode_all(make_coding({0x80, 0x80, 0x80, 0x80, 0x80,
                                             0x80, 0x80, 0x80, 0x80, 0x7F})),
               TraceFormatError);
  // The untampered section decodes: dict {7}, one run of length 2.
  const std::vector<StateInterval> ok =
      decode_all(make_coding({0x01, 0x0E, 0x00, 0x02}));
  ASSERT_EQ(ok.size(), 2u);
  EXPECT_EQ(ok[0], (StateInterval{0, 0, 7}));
  EXPECT_EQ(ok[1], (StateInterval{0, 0, 7}));
}

TEST(Compression, DecoderScratchIsSmallAndCountsTheDictionary) {
  const std::vector<StateInterval> intervals =
      make_sorted_intervals(0x9C, 400, 200, 100000);
  const EncodedColumns enc = round_trip(intervals, "scratch baseline");
  ColumnsDecoder decoder(enc.coding());
  // The per-run cursor buffer: fixed object state plus the dictionary —
  // far below the decoded column bytes.
  EXPECT_GE(decoder.scratch_bytes(), sizeof(ColumnsDecoder));
  EXPECT_LT(decoder.scratch_bytes(),
            intervals.size() * kRawBytesPerInterval / 4);
}

}  // namespace
}  // namespace stagg
