#include "trace/paje_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace stagg {
namespace {

constexpr const char* kSample =
    "# pj_dump of a small run\n"
    "Container, 0, site, 0.000000, 9.500000, 9.500000, rennes\n"
    "Container, rennes, machine, 0.0, 9.5, 9.5, parapide-1\n"
    "State, rennes/parapide-1/rank0, STATE, 0.000000, 1.600000, 1.600000, 0, "
    "MPI_Init\n"
    "State, rennes/parapide-1/rank0, STATE, 1.600000, 1.600414, 0.000414, 0, "
    "MPI_Send\n"
    "State, rennes/parapide-1/rank1, STATE, 0.000000, 1.600000, 1.600000, 0, "
    "MPI_Init\n"
    "Variable, rennes/parapide-1, power, 0.0, 9.5, 9.5, 42.0\n"
    "Event, rennes/parapide-1/rank0, EVT, 2.0, interrupt\n";

TEST(PajeIo, ParsesStatesSkipsOtherRecords) {
  std::istringstream is(kSample);
  PajeReadStats stats;
  Trace t = read_paje_dump(is, "<sample>", &stats);
  EXPECT_EQ(stats.state_records, 3u);
  EXPECT_EQ(stats.skipped_records, 4u);  // 2 containers, 1 variable, 1 event
  EXPECT_EQ(stats.comment_lines, 1u);
  EXPECT_EQ(t.resource_count(), 2u);
  EXPECT_EQ(t.state_count(), 3u);
}

TEST(PajeIo, ConvertsSecondsToNanoseconds) {
  std::istringstream is(kSample);
  Trace t = read_paje_dump(is);
  const ResourceId r0 = t.find_resource("rennes/parapide-1/rank0");
  ASSERT_GE(r0, 0);
  const auto iv = t.intervals(r0);
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_EQ(iv[0].begin, 0);
  EXPECT_EQ(iv[0].end, seconds(1.6));
  EXPECT_EQ(iv[1].end - iv[1].begin, 414'000);  // 0.000414 s
}

TEST(PajeIo, StateNamesInterned) {
  std::istringstream is(kSample);
  Trace t = read_paje_dump(is);
  EXPECT_TRUE(t.states().find("MPI_Init").has_value());
  EXPECT_TRUE(t.states().find("MPI_Send").has_value());
  EXPECT_EQ(t.states().size(), 2u);
}

TEST(PajeIo, RejectsMalformedState) {
  std::istringstream missing("State, c, STATE, 1.0, 2.0\n");
  EXPECT_THROW((void)read_paje_dump(missing), TraceFormatError);
  std::istringstream reversed(
      "State, c, STATE, 5.0, 2.0, 3.0, 0, MPI_Send\n");
  EXPECT_THROW((void)read_paje_dump(reversed), TraceFormatError);
  std::istringstream bad_time(
      "State, c, STATE, x, 2.0, 2.0, 0, MPI_Send\n");
  EXPECT_THROW((void)read_paje_dump(bad_time), TraceFormatError);
}

TEST(PajeIo, ToleratesWhitespaceVariations) {
  std::istringstream is(
      "State,c/rank0,STATE,0.5,1.5,1.0,0,Compute\n"
      "State,   c/rank0 , STATE ,  2.0 , 3.0 , 1.0 , 0 ,  MPI_Wait \n");
  Trace t = read_paje_dump(is);
  EXPECT_EQ(t.state_count(), 2u);
  EXPECT_TRUE(t.states().find("MPI_Wait").has_value());
}

TEST(PajeIo, RoundTripThroughWriter) {
  std::istringstream is(kSample);
  Trace original = read_paje_dump(is);
  std::ostringstream os;
  write_paje_dump(original, os);
  std::istringstream back(os.str());
  Trace reread = read_paje_dump(back);
  ASSERT_EQ(reread.resource_count(), original.resource_count());
  ASSERT_EQ(reread.state_count(), original.state_count());
  for (ResourceId r = 0;
       r < static_cast<ResourceId>(original.resource_count()); ++r) {
    const auto a = original.intervals(r);
    const auto b = reread.intervals(r);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].begin, b[k].begin);
      EXPECT_EQ(a[k].end, b[k].end);
    }
  }
}

TEST(PajeIo, MissingFileThrows) {
  EXPECT_THROW((void)read_paje_dump("/nonexistent/x.paje"), IoError);
}

TEST(PajeIo, PercentHeaderLinesAreComments) {
  std::istringstream is(
      "%EventDef PajeDefineContainerType 0\n"
      "% Name string\n"
      "%EndEventDef\n"
      "State, c/r0, STATE, 0.0, 1.0, 1.0, 0, Compute\n");
  PajeReadStats stats;
  Trace t = read_paje_dump(is, "<hdr>", &stats);
  EXPECT_EQ(stats.comment_lines, 3u);
  EXPECT_EQ(t.state_count(), 1u);
}

}  // namespace
}  // namespace stagg
