#include "trace/paje_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace stagg {
namespace {

constexpr const char* kSample =
    "# pj_dump of a small run\n"
    "Container, 0, site, 0.000000, 9.500000, 9.500000, rennes\n"
    "Container, rennes, machine, 0.0, 9.5, 9.5, parapide-1\n"
    "State, rennes/parapide-1/rank0, STATE, 0.000000, 1.600000, 1.600000, 0, "
    "MPI_Init\n"
    "State, rennes/parapide-1/rank0, STATE, 1.600000, 1.600414, 0.000414, 0, "
    "MPI_Send\n"
    "State, rennes/parapide-1/rank1, STATE, 0.000000, 1.600000, 1.600000, 0, "
    "MPI_Init\n"
    "Variable, rennes/parapide-1, power, 0.0, 9.5, 9.5, 42.0\n"
    "Event, rennes/parapide-1/rank0, EVT, 2.0, interrupt\n";

TEST(PajeIo, ParsesStatesSkipsOtherRecords) {
  std::istringstream is(kSample);
  PajeReadStats stats;
  Trace t = read_paje_dump(is, "<sample>", &stats);
  EXPECT_EQ(stats.state_records, 3u);
  EXPECT_EQ(stats.skipped_records, 4u);  // 2 containers, 1 variable, 1 event
  EXPECT_EQ(stats.comment_lines, 1u);
  EXPECT_EQ(t.resource_count(), 2u);
  EXPECT_EQ(t.state_count(), 3u);
}

TEST(PajeIo, ConvertsSecondsToNanoseconds) {
  std::istringstream is(kSample);
  Trace t = read_paje_dump(is);
  const ResourceId r0 = t.find_resource("rennes/parapide-1/rank0");
  ASSERT_GE(r0, 0);
  const auto iv = t.intervals(r0);
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_EQ(iv[0].begin, 0);
  EXPECT_EQ(iv[0].end, seconds(1.6));
  EXPECT_EQ(iv[1].end - iv[1].begin, 414'000);  // 0.000414 s
}

TEST(PajeIo, StateNamesInterned) {
  std::istringstream is(kSample);
  Trace t = read_paje_dump(is);
  EXPECT_TRUE(t.states().find("MPI_Init").has_value());
  EXPECT_TRUE(t.states().find("MPI_Send").has_value());
  EXPECT_EQ(t.states().size(), 2u);
}

TEST(PajeIo, RejectsMalformedState) {
  std::istringstream missing("State, c, STATE, 1.0, 2.0\n");
  EXPECT_THROW((void)read_paje_dump(missing), TraceFormatError);
  std::istringstream reversed(
      "State, c, STATE, 5.0, 2.0, 3.0, 0, MPI_Send\n");
  EXPECT_THROW((void)read_paje_dump(reversed), TraceFormatError);
  std::istringstream bad_time(
      "State, c, STATE, x, 2.0, 2.0, 0, MPI_Send\n");
  EXPECT_THROW((void)read_paje_dump(bad_time), TraceFormatError);
}

TEST(PajeIo, ToleratesWhitespaceVariations) {
  std::istringstream is(
      "State,c/rank0,STATE,0.5,1.5,1.0,0,Compute\n"
      "State,   c/rank0 , STATE ,  2.0 , 3.0 , 1.0 , 0 ,  MPI_Wait \n");
  Trace t = read_paje_dump(is);
  EXPECT_EQ(t.state_count(), 2u);
  EXPECT_TRUE(t.states().find("MPI_Wait").has_value());
}

TEST(PajeIo, RoundTripThroughWriter) {
  std::istringstream is(kSample);
  Trace original = read_paje_dump(is);
  std::ostringstream os;
  write_paje_dump(original, os);
  std::istringstream back(os.str());
  Trace reread = read_paje_dump(back);
  ASSERT_EQ(reread.resource_count(), original.resource_count());
  ASSERT_EQ(reread.state_count(), original.state_count());
  for (ResourceId r = 0;
       r < static_cast<ResourceId>(original.resource_count()); ++r) {
    const auto a = original.intervals(r);
    const auto b = reread.intervals(r);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].begin, b[k].begin);
      EXPECT_EQ(a[k].end, b[k].end);
    }
  }
}

TEST(PajeIo, MissingFileThrows) {
  EXPECT_THROW((void)read_paje_dump("/nonexistent/x.paje"), IoError);
}

TEST(PajeIo, WriterRejectsCommaInNames) {
  // The format has no escaping; a comma-bearing name must be rejected at
  // write time instead of producing a file the reader mis-parses.
  Trace bad_path;
  const ResourceId r = bad_path.add_resource("site/machine,0/rank0");
  bad_path.add_state(r, "Compute", 0, seconds(1.0));
  std::ostringstream os;
  EXPECT_THROW(write_paje_dump(bad_path, os), TraceFormatError);

  Trace bad_state;
  const ResourceId r2 = bad_state.add_resource("site/rank0");
  bad_state.add_state(r2, "MPI_Send,sync", 0, seconds(1.0));
  std::ostringstream os2;
  EXPECT_THROW(write_paje_dump(bad_state, os2), TraceFormatError);
}

TEST(PajeIo, ReaderRejectsStateRecordWithEmbeddedComma) {
  // A comma inside the container name shifts every field right (9 fields);
  // the reader must reject instead of parsing garbage.
  std::istringstream is(
      "State, site/machine,0/rank0, STATE, 0.0, 1.0, 1.0, 0, Compute\n");
  EXPECT_THROW((void)read_paje_dump(is), TraceFormatError);
}

TEST(PajeIo, RejectsNonFiniteAndOverflowingTimestamps) {
  // |t| * 1e9 beyond int64 (or non-finite t) would make llround UB.
  std::istringstream huge(
      "State, c/r0, STATE, 0.0, 1e300, 1e300, 0, Compute\n");
  EXPECT_THROW((void)read_paje_dump(huge), TraceFormatError);
  std::istringstream inf_time(
      "State, c/r0, STATE, 0.0, inf, inf, 0, Compute\n");
  EXPECT_THROW((void)read_paje_dump(inf_time), TraceFormatError);
  std::istringstream nan_time(
      "State, c/r0, STATE, nan, nan, 0.0, 0, Compute\n");
  EXPECT_THROW((void)read_paje_dump(nan_time), TraceFormatError);
  // Just under the cap still parses (~291 years in nanoseconds).
  std::istringstream big_ok(
      "State, c/r0, STATE, 0.0, 9.1e9, 9.1e9, 0, Compute\n");
  const Trace t = read_paje_dump(big_ok);
  EXPECT_EQ(t.state_count(), 1u);
}

TEST(PajeIo, ErrorMessagesCarryLineContext) {
  std::istringstream is(
      "# header\n"
      "State, c/r0, STATE, 0.0, 1.0, 1.0, 0, Compute\n"
      "State, c/r0, STATE, 2.0, 1e300, 1e300, 0, Compute\n");
  try {
    (void)read_paje_dump(is, "<ctx>");
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("<ctx>:3"), std::string::npos)
        << e.what();
  }
}

TEST(PajeIo, PercentHeaderLinesAreComments) {
  std::istringstream is(
      "%EventDef PajeDefineContainerType 0\n"
      "% Name string\n"
      "%EndEventDef\n"
      "State, c/r0, STATE, 0.0, 1.0, 1.0, 0, Compute\n");
  PajeReadStats stats;
  Trace t = read_paje_dump(is, "<hdr>", &stats);
  EXPECT_EQ(stats.comment_lines, 3u);
  EXPECT_EQ(t.state_count(), 1u);
}

}  // namespace
}  // namespace stagg
