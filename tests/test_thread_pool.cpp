#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace stagg {
namespace {

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelForBlocked, CoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_blocked(pool, hits.size(), 7,
                       [&](std::size_t b, std::size_t e) {
                         for (std::size_t i = b; i < e; ++i) ++hits[i];
                       });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForBlocked, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_blocked(pool, 0, 8,
                       [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForBlocked, PropagatesBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for_blocked(pool, 100, 10,
                           [](std::size_t b, std::size_t) {
                             if (b >= 50) throw std::runtime_error("half");
                           }),
      std::runtime_error);
}

TEST(ParallelFor, ComputesSameAsSequential) {
  std::vector<double> out(257, 0.0);
  parallel_for(out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<double>(i) * 2.0);
  }
}

TEST(ParallelFor, GrainLargerThanRangeRunsInline) {
  std::vector<int> out(5, 0);
  parallel_for(out.size(), [&](std::size_t i) { out[i] = 1; },
               /*grain=*/100);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 5);
}

}  // namespace
}  // namespace stagg
