#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace stagg {
namespace {

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelForBlocked, CoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_blocked(pool, hits.size(), 7,
                       [&](std::size_t b, std::size_t e) {
                         for (std::size_t i = b; i < e; ++i) ++hits[i];
                       });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForBlocked, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_blocked(pool, 0, 8,
                       [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForBlocked, PropagatesBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for_blocked(pool, 100, 10,
                           [](std::size_t b, std::size_t) {
                             if (b >= 50) throw std::runtime_error("half");
                           }),
      std::runtime_error);
}

TEST(ParallelFor, ComputesSameAsSequential) {
  std::vector<double> out(257, 0.0);
  parallel_for(out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<double>(i) * 2.0);
  }
}

TEST(ParallelFor, GrainLargerThanRangeRunsInline) {
  std::vector<int> out(5, 0);
  parallel_for(out.size(), [&](std::size_t i) { out[i] = 1; },
               /*grain=*/100);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 5);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  // Shutdown is a drain, not a drop: tasks already queued when the pool
  // is destroyed must all run before the workers join.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i) {
      (void)pool.submit([&ran] { ++ran; });
    }
  }  // ~ThreadPool: must not deadlock, must not leak queued tasks
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, DestructorDrainsWithNestedHelpers) {
  // Queued tasks that themselves help (nested parallel_for_blocked runs
  // try_run_one on the waiting thread) while the destructor races: a
  // 1-worker pool forces the nested waves through help-while-waiting,
  // and destruction must still drain everything without deadlock.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 8; ++i) {
      (void)pool.submit([&pool, &ran] {
        parallel_for_blocked(pool, 32, 1,
                             [&ran](std::size_t b, std::size_t e) {
                               ran += static_cast<int>(e - b);
                             });
      });
    }
  }
  EXPECT_EQ(ran.load(), 8 * 32);
}

TEST(ThreadPool, ConcurrentTryRunOneCallerDoesNotStarveShutdown) {
  // An external helper hammering try_run_one while work is queued and the
  // owner shuts down: every queued task runs exactly once (the counter
  // totals), whether a helper stole it or a worker drained it.  The
  // helper stops before the pool dies — external callers own that
  // lifetime edge — but keeps stealing right up to the final join.
  std::atomic<int> ran{0};
  std::atomic<bool> stop_helper{false};
  auto pool = std::make_unique<ThreadPool>(1);
  std::thread helper([&pool, &stop_helper] {
    while (!stop_helper.load(std::memory_order_acquire)) {
      if (!pool->try_run_one()) std::this_thread::yield();
    }
  });
  std::vector<std::future<void>> futures;
  futures.reserve(256);
  for (int i = 0; i < 256; ++i) {
    futures.push_back(pool->submit([&ran] { ++ran; }));
  }
  for (auto& f : futures) f.get();  // no task may be lost or run twice
  EXPECT_EQ(ran.load(), 256);
  stop_helper.store(true, std::memory_order_release);
  helper.join();
  pool.reset();  // drain + join with nothing queued: must return
  EXPECT_EQ(ran.load(), 256);
}

}  // namespace
}  // namespace stagg
