// Structural reproduction of paper Figure 3: the artificial 12-resource,
// 20-slice, 2-state trace and the behaviours the figure illustrates.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/aggregator.hpp"
#include "core/baselines.hpp"
#include "core/dichotomy.hpp"
#include "workload/fixtures.hpp"

namespace stagg {
namespace {

class Figure3 : public ::testing::Test {
 protected:
  void SetUp() override {
    om_ = make_figure3_model();
    om_->model.validate();
  }
  std::optional<OwnedModel> om_;
};

TEST_F(Figure3, Dimensions) {
  EXPECT_EQ(om_->hierarchy->leaf_count(), 12u);
  EXPECT_EQ(om_->model.slice_count(), 20);
  EXPECT_EQ(om_->model.state_count(), 2);
  // 240 microscopic spatiotemporal areas (paper §III-A).
  EXPECT_EQ(om_->hierarchy->leaf_count() *
                static_cast<std::size_t>(om_->model.slice_count()),
            240u);
}

TEST_F(Figure3, TwoStatesAreComplementary) {
  // Fig. 3.a: intensity encodes rho1 = 1 - rho2.
  for (LeafId s = 0; s < 12; ++s) {
    for (SliceId t = 0; t < 20; ++t) {
      const double total = om_->model.proportion(s, t, 0) +
                           om_->model.proportion(s, t, 1);
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
  }
}

TEST_F(Figure3, SpatiotemporalBeatsCartesianProduct) {
  // The core §III-D claim: patterns like "T(1,2) homogeneous in time,
  // heterogeneous in space" cannot be captured by P(S) x P(T).
  SpatiotemporalAggregator agg(om_->model);
  bool strictly_better_somewhere = false;
  for (const double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const auto st = agg.run(p);
    const auto cart = cartesian_aggregation(agg.cube(), p);
    const auto cart_eval = agg.evaluate(cart.partition, p);
    EXPECT_GE(st.optimal_pic, cart_eval.optimal_pic - 1e-9);
    if (st.optimal_pic > cart_eval.optimal_pic + 1e-6) {
      strictly_better_somewhere = true;
    }
  }
  EXPECT_TRUE(strictly_better_somewhere);
}

TEST_F(Figure3, OptimalPartitionIsNotACartesianProduct) {
  // At a mid-range p the optimum mixes per-cluster temporal partitions
  // (Fig. 3.d), which no product partition can express: different leaves
  // must end up with different temporal cut sets.
  SpatiotemporalAggregator agg(om_->model);
  const auto r = agg.run(0.35);
  std::vector<std::vector<SliceId>> cut_sets;
  for (LeafId s = 0; s < 12; ++s) {
    std::vector<SliceId> cuts;
    for (const auto& a : r.partition.row_of_leaf(*om_->hierarchy, s)) {
      if (a.time.i > 0) cuts.push_back(a.time.i);
    }
    std::sort(cuts.begin(), cuts.end());
    cut_sets.push_back(std::move(cuts));
  }
  const bool all_same = std::all_of(
      cut_sets.begin(), cut_sets.end(),
      [&](const std::vector<SliceId>& c) { return c == cut_sets[0]; });
  EXPECT_FALSE(all_same)
      << "optimum degenerated to a product partition at p=0.35";
}

TEST_F(Figure3, FullyHomogeneousSliceMergesSpatially) {
  // T(8) (slice 7) is fully homogeneous: at any p the area covering it on
  // any leaf must span the whole hierarchy root or at least not split
  // resources apart *within* slice 7 alone... verified via zero loss of
  // the root aggregate on that slice.
  const DataCube cube(om_->model);
  EXPECT_NEAR(cube.measures(om_->hierarchy->root(), 7, 7).loss, 0.0, 1e-9);
}

TEST_F(Figure3, SbClusterIsFullyHomogeneousLate) {
  // SB over slices 8..19 is homogeneous in space and time -> zero loss.
  const DataCube cube(om_->model);
  const NodeId sb = om_->hierarchy->find("S/SB");
  ASSERT_NE(sb, kNoNode);
  EXPECT_NEAR(cube.measures(sb, 8, 19).loss, 0.0, 1e-9);
}

TEST_F(Figure3, SaRecoversItsThreeTemporalRegimes) {
  // SA over slices 8..19 has regimes [8,11], [12,15], [16,19]; an
  // accuracy-leaning run must place cuts at 12 and 16 on SA rows.
  SpatiotemporalAggregator agg(om_->model);
  const auto r = agg.run(0.2);
  const auto row = r.partition.row_of_leaf(*om_->hierarchy, 0);  // s in SA
  std::vector<SliceId> cuts;
  for (const auto& a : row) {
    if (a.time.i > 0) cuts.push_back(a.time.i);
  }
  EXPECT_TRUE(std::find(cuts.begin(), cuts.end(), 12) != cuts.end())
      << "missing SA cut at slice 12";
  EXPECT_TRUE(std::find(cuts.begin(), cuts.end(), 16) != cuts.end())
      << "missing SA cut at slice 16";
}

TEST_F(Figure3, NestedLevelsAppearAsPGrows) {
  // Fig. 3.d (p_d) vs Fig. 3.e (p_e > p_d): higher p gives fewer areas.
  SpatiotemporalAggregator agg(om_->model);
  const auto fine = agg.run(0.2);
  const auto coarse = agg.run(0.8);
  EXPECT_GT(fine.partition.size(), coarse.partition.size());
  EXPECT_TRUE(fine.partition.is_valid(*om_->hierarchy, 20));
  EXPECT_TRUE(coarse.partition.is_valid(*om_->hierarchy, 20));
}

TEST_F(Figure3, QualityNumbersAreConsistent) {
  SpatiotemporalAggregator agg(om_->model);
  const auto r = agg.run(0.4);
  EXPECT_EQ(r.quality.microscopic_count, 240u);
  EXPECT_EQ(r.quality.area_count, r.partition.size());
  EXPECT_GE(r.quality.complexity_reduction(), 0.0);
  EXPECT_LE(r.quality.loss_fraction(), 1.0 + 1e-9);
}

}  // namespace
}  // namespace stagg
