#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace stagg {
namespace {

TEST(Trace, ResourceRegistrationIsIdempotent) {
  Trace t;
  const ResourceId a = t.add_resource("root/a");
  const ResourceId b = t.add_resource("root/b");
  EXPECT_EQ(t.add_resource("root/a"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(t.resource_count(), 2u);
  EXPECT_EQ(t.find_resource("root/b"), b);
  EXPECT_EQ(t.find_resource("nope"), -1);
}

TEST(Trace, SealSortsIntervals) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  t.add_state(r, "s", 100, 200);
  t.add_state(r, "s", 0, 50);
  t.add_state(r, "s", 60, 90);
  t.seal();
  const auto iv = t.intervals(r);
  ASSERT_EQ(iv.size(), 3u);
  EXPECT_EQ(iv[0].begin, 0);
  EXPECT_EQ(iv[1].begin, 60);
  EXPECT_EQ(iv[2].begin, 100);
}

TEST(Trace, WindowFromEvents) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  t.add_state(r, "s", 50, 200);
  t.add_state(r, "s", 10, 40);
  t.seal();
  EXPECT_EQ(t.begin(), 10);
  EXPECT_EQ(t.end(), 200);
  EXPECT_EQ(t.span(), 190);
}

TEST(Trace, WindowOverrideSurvivesSeal) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  t.add_state(r, "s", 50, 200);
  t.set_window(0, 1000);
  t.seal();
  EXPECT_EQ(t.begin(), 0);
  EXPECT_EQ(t.end(), 1000);
  EXPECT_THROW(t.set_window(10, 5), InvalidArgument);
}

TEST(Trace, EventCountIsTwiceStates) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  t.add_state(r, "s", 0, 1);
  t.add_state(r, "s", 1, 2);
  t.add_state(r, "s", 2, 3);
  EXPECT_EQ(t.state_count(), 3u);
  EXPECT_EQ(t.event_count(), 6u);
}

TEST(Trace, AddStateValidation) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  const StateId x = t.states().intern("s");
  EXPECT_THROW(t.add_state(static_cast<ResourceId>(5), x, 0, 1),
               InvalidArgument);
  EXPECT_THROW(t.add_state(r, static_cast<StateId>(9), 0, 1),
               InvalidArgument);
  EXPECT_THROW(t.add_state(r, x, 10, 5), InvalidArgument);
  // Zero-length states are allowed (instantaneous call).
  t.add_state(r, x, 5, 5);
}

TEST(Trace, EmptyTraceWindow) {
  Trace t;
  t.seal();
  EXPECT_EQ(t.begin(), 0);
  EXPECT_EQ(t.end(), 0);
  EXPECT_EQ(t.state_count(), 0u);
}

TEST(Trace, AppendAfterSealUnsealsAndResorts) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  t.add_state(r, "s", 10, 20);
  t.seal();
  EXPECT_TRUE(t.sealed());
  t.add_state(r, "s", 0, 5);
  EXPECT_FALSE(t.sealed());
  t.seal();
  EXPECT_EQ(t.intervals(r)[0].begin, 0);
}

TEST(StateRegistryTest, InternAndFind) {
  StateRegistry reg;
  const StateId a = reg.intern("MPI_Send");
  const StateId b = reg.intern("MPI_Wait");
  EXPECT_EQ(reg.intern("MPI_Send"), a);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.name(b), "MPI_Wait");
  EXPECT_EQ(reg.find("MPI_Wait"), b);
  EXPECT_FALSE(reg.find("nope").has_value());
}

}  // namespace
}  // namespace stagg
