#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace stagg {
namespace {

TEST(Trace, ResourceRegistrationIsIdempotent) {
  Trace t;
  const ResourceId a = t.add_resource("root/a");
  const ResourceId b = t.add_resource("root/b");
  EXPECT_EQ(t.add_resource("root/a"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(t.resource_count(), 2u);
  EXPECT_EQ(t.find_resource("root/b"), b);
  EXPECT_EQ(t.find_resource("nope"), kInvalidResource);
}

TEST(Trace, SealSortsIntervals) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  t.add_state(r, "s", 100, 200);
  t.add_state(r, "s", 0, 50);
  t.add_state(r, "s", 60, 90);
  t.seal();
  const auto iv = t.intervals(r);
  ASSERT_EQ(iv.size(), 3u);
  EXPECT_EQ(iv[0].begin, 0);
  EXPECT_EQ(iv[1].begin, 60);
  EXPECT_EQ(iv[2].begin, 100);
}

TEST(Trace, WindowFromEvents) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  t.add_state(r, "s", 50, 200);
  t.add_state(r, "s", 10, 40);
  t.seal();
  EXPECT_EQ(t.begin(), 10);
  EXPECT_EQ(t.end(), 200);
  EXPECT_EQ(t.span(), 190);
}

TEST(Trace, WindowOverrideSurvivesSeal) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  t.add_state(r, "s", 50, 200);
  t.set_window(0, 1000);
  t.seal();
  EXPECT_EQ(t.begin(), 0);
  EXPECT_EQ(t.end(), 1000);
  EXPECT_THROW(t.set_window(10, 5), InvalidArgument);
}

TEST(Trace, EventCountIsTwiceStates) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  t.add_state(r, "s", 0, 1);
  t.add_state(r, "s", 1, 2);
  t.add_state(r, "s", 2, 3);
  EXPECT_EQ(t.state_count(), 3u);
  EXPECT_EQ(t.event_count(), 6u);
}

TEST(Trace, AddStateValidation) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  const StateId x = t.states().intern("s");
  EXPECT_THROW(t.add_state(static_cast<ResourceId>(5), x, 0, 1),
               InvalidArgument);
  EXPECT_THROW(t.add_state(r, static_cast<StateId>(9), 0, 1),
               InvalidArgument);
  EXPECT_THROW(t.add_state(r, x, 10, 5), InvalidArgument);
  // Zero-length states are allowed (instantaneous call).
  t.add_state(r, x, 5, 5);
}

TEST(Trace, EmptyTraceWindow) {
  Trace t;
  t.seal();
  EXPECT_EQ(t.begin(), 0);
  EXPECT_EQ(t.end(), 0);
  EXPECT_EQ(t.state_count(), 0u);
}

TEST(Trace, AppendAfterSealUnsealsAndResorts) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  t.add_state(r, "s", 10, 20);
  t.seal();
  EXPECT_TRUE(t.sealed());
  t.add_state(r, "s", 0, 5);
  EXPECT_FALSE(t.sealed());
  t.seal();
  EXPECT_EQ(t.intervals(r)[0].begin, 0);
}

TEST(Trace, EraseBeforeIsHalfOpen) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  t.add_state(r, "s", 0, 10);    // ends exactly at the cutoff: dropped
  t.add_state(r, "s", 0, 11);    // overlaps [10, inf): kept
  t.add_state(r, "s", 10, 10);   // zero-duration at the cutoff: dropped
  t.add_state(r, "s", 10, 12);   // starts at the cutoff: kept
  t.add_state(r, "s", 15, 16);   // strictly after: kept
  t.seal();
  t.erase_before(10);
  const auto iv = t.intervals(r);
  ASSERT_EQ(iv.size(), 3u);
  EXPECT_EQ(iv[0].end, 11);
  EXPECT_EQ(iv[1].begin, 10);
  EXPECT_EQ(iv[1].end, 12);
  EXPECT_EQ(iv[2].begin, 15);
  // Sortedness survives: a re-seal must not change the intervals, but it
  // re-derives the auto-computed window from the survivors (the erased
  // prefix must no longer stretch it back to 0).
  t.seal();
  EXPECT_EQ(t.intervals(r).size(), 3u);
  EXPECT_EQ(t.begin(), 0);  // interval [0, 11) survived
  t.erase_before(12);
  t.seal();
  ASSERT_EQ(t.intervals(r).size(), 1u);
  EXPECT_EQ(t.begin(), 15);
  EXPECT_EQ(t.end(), 16);
}

TEST(Trace, IncrementalSealMatchesFullSort) {
  // Appends interleaved with seals across several resources must yield the
  // same per-resource interval order as appending everything then sealing
  // once (the dirty-resource sort skips only untouched resources).
  SplitMix64 mix(42);
  Trace incremental;
  Trace batch;
  for (int r = 0; r < 4; ++r) {
    incremental.add_resource("r" + std::to_string(r));
    batch.add_resource("r" + std::to_string(r));
  }
  (void)incremental.states().intern("s");
  (void)batch.states().intern("s");
  for (int round = 0; round < 6; ++round) {
    for (int k = 0; k < 25; ++k) {
      const auto r = static_cast<ResourceId>(mix.next() % 4);
      const auto b = static_cast<TimeNs>(mix.next() % 1000);
      const auto d = static_cast<TimeNs>(mix.next() % 50);
      incremental.add_state(r, StateId{0}, b, b + d);
      batch.add_state(r, StateId{0}, b, b + d);
    }
    incremental.seal();  // sorts only the resources touched this round
  }
  incremental.seal();
  batch.seal();
  for (ResourceId r = 0; r < 4; ++r) {
    const auto a = incremental.intervals(r);
    const auto b = batch.intervals(r);
    ASSERT_EQ(a.size(), b.size()) << "r=" << r;
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k], b[k]) << "r=" << r << " k=" << k;
    }
  }
}

TEST(StateRegistryTest, InternAndFind) {
  StateRegistry reg;
  const StateId a = reg.intern("MPI_Send");
  const StateId b = reg.intern("MPI_Wait");
  EXPECT_EQ(reg.intern("MPI_Send"), a);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.name(b), "MPI_Wait");
  EXPECT_EQ(reg.find("MPI_Wait"), b);
  EXPECT_FALSE(reg.find("nope").has_value());
}

}  // namespace
}  // namespace stagg
