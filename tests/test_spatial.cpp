#include "core/spatial.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <limits>

#include "common/error.hpp"
#include "workload/fixtures.hpp"

namespace stagg {
namespace {

/// Exhaustive optimum over hierarchy-consistent antichains.
double exhaustive_best(const HierarchyAggregator& agg, const Hierarchy& h,
                       double p) {
  // best(n) = max(pIC of n aggregated, sum over children of best(child)).
  // That recursion *is* the DP, so enumerate instead: every antichain is a
  // set of nodes; recursively expand "keep or split" and track the max.
  std::function<double(NodeId)> best = [&](NodeId n) -> double {
    const AreaMeasures m = agg.node_measures(n);
    double keep = pic(p, m.gain, m.loss);
    if (h.node(n).children.empty()) return keep;
    double split = 0.0;
    for (NodeId c : h.node(n).children) split += best(c);
    return std::max(keep, split);
  };
  return best(h.root());
}

TEST(HierarchyAggregatorTest, RejectsBadInputs) {
  const OwnedModel om = make_tiny_model();
  EXPECT_THROW(HierarchyAggregator(nullptr, {}, 1), InvalidArgument);
  EXPECT_THROW(HierarchyAggregator(om.hierarchy.get(), {1.0}, 1),
               InvalidArgument);
  HierarchyAggregator agg(om.hierarchy.get(), {0.5, 0.5}, 1);
  EXPECT_THROW((void)agg.run(-1.0), InvalidArgument);
}

TEST(HierarchyAggregatorTest, HomogeneousLeavesMergeToRoot) {
  const Hierarchy h = make_balanced_hierarchy(2, 3);  // 9 leaves
  std::vector<double> w(h.leaf_count(), 0.7);
  HierarchyAggregator agg(&h, std::move(w), 1);
  const auto r = agg.run(0.5);
  ASSERT_EQ(r.parts.size(), 1u);
  EXPECT_EQ(r.parts[0], h.root());
  EXPECT_NEAR(r.measures.loss, 0.0, 1e-12);
}

TEST(HierarchyAggregatorTest, ContrastedSubtreesStaySeparate) {
  const Hierarchy h = make_balanced_hierarchy(1, 2);  // root + 2 leaves
  HierarchyAggregator agg(&h, {0.95, 0.05}, 1);
  const auto r = agg.run(0.05);  // accuracy-leaning
  EXPECT_EQ(r.parts.size(), 2u);
  EXPECT_NEAR(r.measures.loss, 0.0, 1e-12);
}

TEST(HierarchyAggregatorTest, PartsFormAntichainCoveringLeaves) {
  const OwnedModel om = make_random_model(
      {.levels = 3, .fanout = 2, .slices = 4, .states = 2, .seed = 6});
  const DataCube cube(om.model);
  const auto agg = HierarchyAggregator::temporally_aggregated(cube);
  for (const double p : {0.0, 0.5, 1.0}) {
    const auto r = agg.run(p);
    std::vector<bool> covered(om.hierarchy->leaf_count(), false);
    for (NodeId n : r.parts) {
      const auto& node = om.hierarchy->node(n);
      for (LeafId s = node.first_leaf; s < node.first_leaf + node.leaf_count;
           ++s) {
        EXPECT_FALSE(covered[static_cast<std::size_t>(s)]);
        covered[static_cast<std::size_t>(s)] = true;
      }
    }
    for (const bool c : covered) EXPECT_TRUE(c);
  }
}

TEST(HierarchyAggregatorTest, MatchesExhaustiveSearch) {
  for (const std::uint64_t seed : {41ull, 42ull, 43ull}) {
    const OwnedModel om = make_random_model(
        {.levels = 3, .fanout = 2, .slices = 4, .states = 2, .seed = seed});
    const DataCube cube(om.model);
    const auto agg = HierarchyAggregator::temporally_aggregated(cube);
    for (const double p : {0.0, 0.3, 0.7, 1.0}) {
      const auto r = agg.run(p);
      EXPECT_NEAR(r.optimal_pic, exhaustive_best(agg, *om.hierarchy, p),
                  1e-10)
          << "seed=" << seed << " p=" << p;
    }
  }
}

TEST(HierarchyAggregatorTest, OptimalPicEqualsSummedMeasures) {
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 3, .slices = 5, .states = 2, .seed = 15});
  const DataCube cube(om.model);
  const auto agg = HierarchyAggregator::temporally_aggregated(cube);
  const auto r = agg.run(0.6);
  EXPECT_NEAR(r.optimal_pic, pic(0.6, r.measures.gain, r.measures.loss),
              1e-10);
}

}  // namespace
}  // namespace stagg
