#include "workload/scenarios.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace stagg {
namespace {

TEST(Scenarios, AllFourDefined) {
  const auto all = all_scenarios();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].id, "A");
  EXPECT_EQ(all[3].id, "D");
  // Paper process counts.
  EXPECT_EQ(all[0].processes, 64);
  EXPECT_EQ(all[1].processes, 512);
  EXPECT_EQ(all[2].processes, 700);
  EXPECT_EQ(all[3].processes, 900);
}

TEST(Scenarios, PaperNumbersTranscribed) {
  EXPECT_EQ(scenario_a().paper.events, 3'838'144u);
  EXPECT_EQ(scenario_b().paper.events, 49'149'440u);
  EXPECT_EQ(scenario_c().paper.events, 218'457'456u);
  EXPECT_EQ(scenario_d().paper.events, 177'376'729u);
  EXPECT_DOUBLE_EQ(scenario_c().paper.read_s, 2911.0);
}

TEST(Scenarios, GenerateCaseASmall) {
  const auto g = generate_scenario(scenario_a(), 1.0 / 256.0);
  EXPECT_EQ(g.hierarchy->leaf_count(), 64u);
  EXPECT_EQ(g.trace.resource_count(), 64u);
  EXPECT_GT(g.trace.state_count(), 0u);
  EXPECT_EQ(g.trace.begin(), 0);
  EXPECT_EQ(g.trace.end(), seconds(9.5));
}

TEST(Scenarios, GenerateCaseCSmallHasThreeClusters) {
  const auto g = generate_scenario(scenario_c(), 1.0 / 2048.0);
  EXPECT_EQ(g.hierarchy->leaf_count(), 700u);
  EXPECT_EQ(g.hierarchy->nodes_at_depth(1).size(), 3u);
}

TEST(Scenarios, ScaleControlsEventCount) {
  const auto small = generate_scenario(scenario_a(), 1.0 / 512.0);
  const auto larger = generate_scenario(scenario_a(), 1.0 / 128.0);
  EXPECT_GT(larger.trace.state_count(), small.trace.state_count() * 2);
}

TEST(Scenarios, DeterministicForSameSeed) {
  const auto a = generate_scenario(scenario_a(), 1.0 / 512.0, 9);
  const auto b = generate_scenario(scenario_a(), 1.0 / 512.0, 9);
  EXPECT_EQ(a.trace.state_count(), b.trace.state_count());
}

TEST(Scenarios, RejectsNonPositiveScale) {
  EXPECT_THROW((void)generate_scenario(scenario_a(), 0.0), InvalidArgument);
}

TEST(Scenarios, FullScaleEventCalibrationCaseA) {
  // At scale 1.0 case A must land within 2x of the paper's 3.8M events.
  // Run at 1/64 and extrapolate linearly to keep the test fast.
  const double scale = 1.0 / 64.0;
  const auto g = generate_scenario(scenario_a(), scale);
  const double extrapolated =
      static_cast<double>(g.trace.event_count()) / scale;
  const double paper = static_cast<double>(scenario_a().paper.events);
  EXPECT_GT(extrapolated, paper / 2.0);
  EXPECT_LT(extrapolated, paper * 2.0);
}

}  // namespace
}  // namespace stagg
