#include "metrics/information.hpp"

#include <gtest/gtest.h>

#include "metrics/quality.hpp"

namespace stagg {
namespace {

// Hand-checked two-cell area: proportions {1, 0.5}, uniform 1 s slices,
// one resource over two slices -> rho_agg = 0.75.
StateAreaSums two_cell_sums() {
  StateAreaSums s;
  s.sum_d = 1.5;
  s.sum_rho = 1.5;
  s.sum_rho_log = xlog2x(1.0) + xlog2x(0.5);  // 0 + (-0.5)
  return s;
}

TEST(Information, AggregatedProportion) {
  EXPECT_DOUBLE_EQ(aggregated_proportion(1.5, 1.0, 2.0), 0.75);
  EXPECT_DOUBLE_EQ(aggregated_proportion(0.0, 4.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(aggregated_proportion(1.0, 0.0, 0.0), 0.0);
}

TEST(Information, LossMatchesHandComputation) {
  const auto s = two_cell_sums();
  const double rho_agg = 0.75;
  // loss = sum rho log rho - sum_rho * log(rho_agg)
  //      = -0.5 - 1.5 * log2(0.75)
  const double expected = -0.5 - 1.5 * std::log2(0.75);
  EXPECT_NEAR(state_loss(s, rho_agg), expected, 1e-12);
  EXPECT_GT(state_loss(s, rho_agg), 0.0);
}

TEST(Information, GainMatchesHandComputation) {
  const auto s = two_cell_sums();
  const double rho_agg = 0.75;
  // gain = rho_agg log rho_agg - sum rho log rho
  const double expected = 0.75 * std::log2(0.75) - (-0.5);
  EXPECT_NEAR(state_gain(s, rho_agg), expected, 1e-12);
}

TEST(Information, HomogeneousAreaHasZeroLoss) {
  StateAreaSums s;
  s.sum_d = 1.2;
  s.sum_rho = 1.2;  // two cells at 0.6
  s.sum_rho_log = 2 * xlog2x(0.6);
  EXPECT_NEAR(state_loss(s, 0.6), 0.0, 1e-12);
}

TEST(Information, EmptyAreaHasZeroMeasures) {
  StateAreaSums s;  // all zero
  EXPECT_EQ(state_loss(s, 0.0), 0.0);
  EXPECT_EQ(state_gain(s, 0.0), 0.0);
}

TEST(Information, PicEndpoints) {
  // p = 0: pIC = -loss; p = 1: pIC = gain.
  EXPECT_DOUBLE_EQ(pic(0.0, 3.0, 2.0), -2.0);
  EXPECT_DOUBLE_EQ(pic(1.0, 3.0, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(pic(0.5, 3.0, 2.0), 0.5);
}

TEST(Information, SumsAndMeasuresAreAdditive) {
  StateAreaSums a{1.0, 0.5, -0.1};
  const StateAreaSums b{2.0, 0.25, -0.2};
  a += b;
  EXPECT_DOUBLE_EQ(a.sum_d, 3.0);
  EXPECT_DOUBLE_EQ(a.sum_rho, 0.75);
  EXPECT_DOUBLE_EQ(a.sum_rho_log, -0.30000000000000004);

  AreaMeasures m{1.0, 2.0};
  m += AreaMeasures{0.5, 0.25};
  EXPECT_DOUBLE_EQ(m.gain, 1.5);
  EXPECT_DOUBLE_EQ(m.loss, 2.25);
}

TEST(Quality, DerivedRatios) {
  PartitionQuality q;
  q.area_count = 56;
  q.microscopic_count = 240;
  q.gain = 30.0;
  q.max_gain = 100.0;
  q.loss = 5.0;
  q.max_loss = 50.0;
  EXPECT_NEAR(q.complexity_reduction(), 1.0 - 56.0 / 240.0, 1e-12);
  EXPECT_NEAR(q.gain_fraction(), 0.3, 1e-12);
  EXPECT_NEAR(q.loss_fraction(), 0.1, 1e-12);
}

TEST(Quality, ZeroDenominatorsAreSafe) {
  const PartitionQuality q;
  EXPECT_EQ(q.complexity_reduction(), 0.0);
  EXPECT_EQ(q.gain_fraction(), 0.0);
  EXPECT_EQ(q.loss_fraction(), 0.0);
}

TEST(Quality, FormatMentionsCounts) {
  PartitionQuality q;
  q.area_count = 15;
  q.microscopic_count = 240;
  const std::string s = format_quality(q);
  EXPECT_NE(s.find("15/240"), std::string::npos);
}

}  // namespace
}  // namespace stagg
