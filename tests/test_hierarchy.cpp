#include "hierarchy/hierarchy.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace stagg {
namespace {

Hierarchy make_sample() {
  // root -> {a -> {a0, a1}, b -> {b0, b1, b2}}
  HierarchyBuilder b("root");
  const NodeId a = b.add(0, "a");
  const NodeId bb = b.add(0, "b");
  b.add(a, "a0");
  b.add(a, "a1");
  b.add(bb, "b0");
  b.add(bb, "b1");
  b.add(bb, "b2");
  return b.finish();
}

TEST(Hierarchy, LeafCountAndNodeCount) {
  const Hierarchy h = make_sample();
  EXPECT_EQ(h.leaf_count(), 5u);
  EXPECT_EQ(h.node_count(), 8u);
  EXPECT_TRUE(h.validate());
}

TEST(Hierarchy, LeafRangesAreContiguousAndDfsOrdered) {
  const Hierarchy h = make_sample();
  const NodeId a = h.find("root/a");
  const NodeId bb = h.find("root/b");
  ASSERT_NE(a, kNoNode);
  ASSERT_NE(bb, kNoNode);
  EXPECT_EQ(h.node(a).first_leaf, 0);
  EXPECT_EQ(h.node(a).leaf_count, 2);
  EXPECT_EQ(h.node(bb).first_leaf, 2);
  EXPECT_EQ(h.node(bb).leaf_count, 3);
  EXPECT_EQ(h.node(h.root()).leaf_count, 5);
}

TEST(Hierarchy, PostOrderChildrenBeforeParents) {
  const Hierarchy h = make_sample();
  std::vector<bool> seen(h.node_count(), false);
  for (NodeId id : h.post_order()) {
    for (NodeId c : h.node(id).children) {
      EXPECT_TRUE(seen[static_cast<std::size_t>(c)]);
    }
    seen[static_cast<std::size_t>(id)] = true;
  }
  EXPECT_EQ(h.post_order().size(), h.node_count());
  EXPECT_EQ(h.post_order().back(), h.root());
}

TEST(Hierarchy, PathRoundTrip) {
  const Hierarchy h = make_sample();
  for (NodeId id = 0; id < static_cast<NodeId>(h.node_count()); ++id) {
    EXPECT_EQ(h.find(h.path(id)), id);
  }
  EXPECT_EQ(h.find("root/zzz"), kNoNode);
  EXPECT_EQ(h.find("wrongroot"), kNoNode);
  EXPECT_EQ(h.find(""), kNoNode);
}

TEST(Hierarchy, LeafNodeMapping) {
  const Hierarchy h = make_sample();
  for (LeafId s = 0; s < static_cast<LeafId>(h.leaf_count()); ++s) {
    const NodeId n = h.leaf_node(s);
    EXPECT_TRUE(h.is_leaf(n));
    EXPECT_EQ(h.node(n).first_leaf, s);
  }
}

TEST(Hierarchy, NodesAtDepth) {
  const Hierarchy h = make_sample();
  EXPECT_EQ(h.nodes_at_depth(0).size(), 1u);
  EXPECT_EQ(h.nodes_at_depth(1).size(), 2u);
  EXPECT_EQ(h.nodes_at_depth(2).size(), 5u);
  EXPECT_EQ(h.max_depth(), 2);
  // DFS layout order.
  const auto clusters = h.nodes_at_depth(1);
  EXPECT_EQ(h.node(clusters[0]).name, "a");
  EXPECT_EQ(h.node(clusters[1]).name, "b");
}

TEST(Hierarchy, AncestorAtDepth) {
  const Hierarchy h = make_sample();
  const NodeId b2 = h.find("root/b/b2");
  ASSERT_NE(b2, kNoNode);
  EXPECT_EQ(h.ancestor_at_depth(b2, 0), h.root());
  EXPECT_EQ(h.ancestor_at_depth(b2, 1), h.find("root/b"));
  EXPECT_EQ(h.ancestor_at_depth(b2, 2), b2);
  EXPECT_THROW((void)h.ancestor_at_depth(h.root(), 1), InvalidArgument);
}

TEST(HierarchyBuilder, BadParentThrows) {
  HierarchyBuilder b("root");
  EXPECT_THROW((void)b.add(99, "x"), InvalidArgument);
  EXPECT_THROW((void)b.add(-1, "x"), InvalidArgument);
}

TEST(HierarchyBuilder, AddMany) {
  HierarchyBuilder b("root");
  const auto ids = b.add_many(0, "leaf", 4);
  EXPECT_EQ(ids.size(), 4u);
  const Hierarchy h = b.finish();
  EXPECT_EQ(h.leaf_count(), 4u);
  EXPECT_EQ(h.node(ids[2]).name, "leaf2");
}

TEST(MakeBalanced, ShapeAndCounts) {
  const Hierarchy h = make_balanced_hierarchy(3, 2);
  EXPECT_EQ(h.leaf_count(), 8u);
  EXPECT_EQ(h.node_count(), 1u + 2 + 4 + 8);
  EXPECT_EQ(h.max_depth(), 3);
  EXPECT_TRUE(h.validate());
}

TEST(MakeBalanced, ZeroLevelsIsSingleLeafRoot) {
  const Hierarchy h = make_balanced_hierarchy(0, 4);
  EXPECT_EQ(h.leaf_count(), 1u);
  EXPECT_TRUE(h.is_leaf(h.root()));
}

TEST(MakeBalanced, InvalidArgs) {
  EXPECT_THROW((void)make_balanced_hierarchy(-1, 2), InvalidArgument);
  EXPECT_THROW((void)make_balanced_hierarchy(2, 0), InvalidArgument);
}

TEST(MakeFlat, Shape) {
  const Hierarchy h = make_flat_hierarchy(6);
  EXPECT_EQ(h.leaf_count(), 6u);
  EXPECT_EQ(h.max_depth(), 1);
  EXPECT_TRUE(h.validate());
  EXPECT_THROW((void)make_flat_hierarchy(0), InvalidArgument);
}

}  // namespace
}  // namespace stagg
