#include "core/cube.hpp"

#include <gtest/gtest.h>

#include "common/math.hpp"
#include "core/brute_force.hpp"
#include "workload/fixtures.hpp"

namespace stagg {
namespace {

TEST(DataCube, SumsMatchNaiveOnRandomModel) {
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 3, .slices = 7, .states = 3, .seed = 11});
  const DataCube cube(om.model);
  const Hierarchy& h = *om.hierarchy;

  for (NodeId node = 0; node < static_cast<NodeId>(h.node_count()); ++node) {
    const auto& n = h.node(node);
    for (SliceId i = 0; i < 7; ++i) {
      for (SliceId j = i; j < 7; ++j) {
        for (StateId x = 0; x < 3; ++x) {
          double sum_d = 0, sum_rho = 0, sum_rholog = 0;
          for (LeafId s = n.first_leaf; s < n.first_leaf + n.leaf_count;
               ++s) {
            for (SliceId t = i; t <= j; ++t) {
              const double d = om.model.duration(s, t, x);
              sum_d += d;
              const double rho = d / om.model.grid().slice_duration_s(t);
              sum_rho += rho;
              sum_rholog += xlog2x(rho);
            }
          }
          const auto got = cube.sums(node, i, j, x);
          EXPECT_NEAR(got.sum_d, sum_d, 1e-9);
          EXPECT_NEAR(got.sum_rho, sum_rho, 1e-9);
          EXPECT_NEAR(got.sum_rho_log, sum_rholog, 1e-9);
        }
      }
    }
  }
}

TEST(DataCube, MeasuresMatchNaiveImplementation) {
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 2, .slices = 6, .states = 2, .seed = 3});
  const DataCube cube(om.model);
  const Hierarchy& h = *om.hierarchy;
  for (NodeId node = 0; node < static_cast<NodeId>(h.node_count()); ++node) {
    for (SliceId i = 0; i < 6; ++i) {
      for (SliceId j = i; j < 6; ++j) {
        const AreaMeasures fast = cube.measures(node, i, j);
        const AreaMeasures slow =
            naive_area_measures(om.model, Area{node, {i, j}});
        EXPECT_NEAR(fast.gain, slow.gain, 1e-8);
        EXPECT_NEAR(fast.loss, slow.loss, 1e-8);
      }
    }
  }
}

TEST(DataCube, AggregatedProportionIsMeanOfLeafProportions) {
  // Uniform slices: Eq. 1 reduces to the plain mean over the area cells.
  const OwnedModel om = make_tiny_model();  // leaf0: {1,0}; leaf1: {1,1}
  const DataCube cube(om.model);
  const NodeId root = om.hierarchy->root();
  EXPECT_NEAR(cube.aggregated_proportion(root, 0, 1, 0), 0.75, 1e-12);
  EXPECT_NEAR(cube.aggregated_proportion(root, 0, 0, 0), 1.0, 1e-12);
  EXPECT_NEAR(cube.aggregated_proportion(root, 1, 1, 0), 0.5, 1e-12);
}

TEST(DataCube, HomogeneousAreaHasZeroLoss) {
  const OwnedModel om = make_tiny_model();
  const DataCube cube(om.model);
  // Slice 0: both leaves fully busy -> homogeneous.
  const NodeId root = om.hierarchy->root();
  EXPECT_NEAR(cube.measures(root, 0, 0).loss, 0.0, 1e-12);
  // Whole window: heterogeneous -> positive loss.
  EXPECT_GT(cube.measures(root, 0, 1).loss, 0.0);
}

TEST(DataCube, LeafCellsHaveZeroGainAndLoss) {
  const OwnedModel om = make_random_model(
      {.levels = 1, .fanout = 4, .slices = 5, .states = 2, .seed = 9});
  const DataCube cube(om.model);
  for (LeafId s = 0; s < 4; ++s) {
    const NodeId leaf = om.hierarchy->leaves()[static_cast<std::size_t>(s)];
    for (SliceId t = 0; t < 5; ++t) {
      const AreaMeasures m = cube.measures(leaf, t, t);
      EXPECT_NEAR(m.gain, 0.0, 1e-12);
      EXPECT_NEAR(m.loss, 0.0, 1e-12);
    }
  }
}

TEST(DataCube, LossIsNonNegativeOnUniformGrids) {
  const OwnedModel om = make_random_model(
      {.levels = 3, .fanout = 2, .slices = 9, .states = 3, .seed = 17});
  const DataCube cube(om.model);
  const Hierarchy& h = *om.hierarchy;
  for (NodeId node = 0; node < static_cast<NodeId>(h.node_count()); ++node) {
    for (SliceId i = 0; i < 9; ++i) {
      for (SliceId j = i; j < 9; ++j) {
        EXPECT_GE(cube.measures(node, i, j).loss, -1e-9);
      }
    }
  }
}

TEST(DataCube, IntervalDuration) {
  const OwnedModel om = make_random_model({.slices = 10, .seed = 1});
  const DataCube cube(om.model);
  EXPECT_NEAR(cube.interval_duration_s(0, 9), 10.0, 1e-9);
  EXPECT_NEAR(cube.interval_duration_s(3, 5), 3.0, 1e-9);
}

TEST(DataCube, ModeFindsDominantState) {
  const OwnedModel om = make_tiny_model();
  const DataCube cube(om.model);
  const auto mode = cube.mode(om.hierarchy->root(), 0, 1);
  EXPECT_EQ(mode.state, 0);  // only one state
  EXPECT_NEAR(mode.proportion, 0.75, 1e-12);
  EXPECT_NEAR(mode.proportion_sum, 0.75, 1e-12);
}

TEST(DataCube, MemoryEstimateIsPositive) {
  const OwnedModel om = make_random_model({.slices = 4, .seed = 2});
  const DataCube cube(om.model);
  EXPECT_GT(cube.memory_bytes(), 0u);
}

}  // namespace
}  // namespace stagg
