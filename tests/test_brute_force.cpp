// Direct tests of the exhaustive oracle (core/brute_force): since the main
// aggregator is validated *against* it, the oracle itself needs independent
// grounding — enumeration counts against closed forms, every enumerated
// partition valid and distinct, naive measures against hand computations.
#include "core/brute_force.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "core/baselines.hpp"
#include "workload/fixtures.hpp"

namespace stagg {
namespace {

TEST(BruteForce, EveryEnumeratedPartitionIsValidAndDistinct) {
  const Hierarchy h = make_balanced_hierarchy(2, 2);
  const auto all = enumerate_partitions(h, 3);
  std::set<std::uint64_t> signatures;
  for (const auto& p : all) {
    EXPECT_TRUE(p.is_valid(h, 3));
    EXPECT_TRUE(signatures.insert(p.signature()).second)
        << "duplicate partition in enumeration";
  }
}

TEST(BruteForce, EnumerationContainsTheNamedPartitions) {
  const Hierarchy h = make_balanced_hierarchy(2, 2);
  const auto all = enumerate_partitions(h, 3);
  const auto contains = [&](const Partition& p) {
    const std::uint64_t sig = p.signature();
    for (const auto& q : all) {
      if (q.signature() == sig) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(make_full_partition(h, 3)));
  EXPECT_TRUE(contains(make_microscopic_partition(h, 3)));
  EXPECT_TRUE(contains(make_uniform_partition(h, 3, 1, 3)));
}

TEST(BruteForce, EnumerationLimitThrows) {
  const Hierarchy h = make_balanced_hierarchy(2, 2);
  EXPECT_THROW((void)enumerate_partitions(h, 4, /*limit=*/100), BudgetError);
}

TEST(BruteForce, NaiveMeasuresOnTinyModelByHand) {
  // Tiny model: leaf0 rho = {1, 0}, leaf1 rho = {1, 1}, one state, 1 s
  // slices.  Root x [0,1]: rho_agg = 3/4.
  const OwnedModel om = make_tiny_model();
  const Area root_all{om.hierarchy->root(), {0, 1}};
  const AreaMeasures m = naive_area_measures(om.model, root_all);
  // sum_rho_log = 0 (all rho in {0,1}); loss = -sum_rho*log2(3/4).
  const double expected_loss = -3.0 * std::log2(0.75);
  const double expected_gain = 0.75 * std::log2(0.75);
  EXPECT_NEAR(m.loss, expected_loss, 1e-12);
  EXPECT_NEAR(m.gain, expected_gain, 1e-12);
}

TEST(BruteForce, NaivePicAdditiveOverParts) {
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 2, .slices = 3, .states = 2, .seed = 44});
  const Partition micro =
      make_microscopic_partition(*om.hierarchy, 3);
  // Microscopic areas all have zero gain/loss -> pIC = 0 at any p.
  EXPECT_NEAR(naive_partition_pic(om.model, micro, 0.3), 0.0, 1e-12);
  const Partition full = make_full_partition(*om.hierarchy, 3);
  const AreaMeasures root = naive_area_measures(
      om.model, Area{om.hierarchy->root(), {0, 2}});
  EXPECT_NEAR(naive_partition_pic(om.model, full, 0.3),
              pic(0.3, root.gain, root.loss), 1e-12);
}

TEST(BruteForce, OptimumIsAtLeastAnyNamedPartition) {
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 2, .slices = 3, .states = 2, .seed = 9});
  const double p = 0.5;
  const BruteForceResult best = brute_force_optimum(om.model, p);
  for (const Partition& candidate :
       {make_full_partition(*om.hierarchy, 3),
        make_microscopic_partition(*om.hierarchy, 3),
        make_uniform_partition(*om.hierarchy, 3, 1, 3)}) {
    EXPECT_GE(best.optimal_pic,
              naive_partition_pic(om.model, candidate, p) - 1e-12);
  }
  EXPECT_TRUE(best.partition.is_valid(*om.hierarchy, 3));
}

TEST(BruteForce, PZeroOptimumHasZeroLoss) {
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 2, .slices = 3, .states = 2, .seed = 5});
  const BruteForceResult best = brute_force_optimum(om.model, 0.0);
  EXPECT_NEAR(best.optimal_pic, 0.0, 1e-9);  // -loss maximized at 0
}

TEST(BruteForce, MemoizationConsistentAcrossCalls) {
  const Hierarchy h = make_balanced_hierarchy(2, 2);
  const auto a = enumerate_partitions(h, 3);
  const auto b = enumerate_partitions(h, 3);
  ASSERT_EQ(a.size(), b.size());
  std::set<std::uint64_t> sa, sb;
  for (const auto& p : a) sa.insert(p.signature());
  for (const auto& p : b) sb.insert(p.signature());
  EXPECT_EQ(sa, sb);
}

}  // namespace
}  // namespace stagg
