#include "common/math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace stagg {
namespace {

TEST(XLog2X, ZeroConvention) {
  EXPECT_EQ(xlog2x(0.0), 0.0);
  EXPECT_EQ(xlog2x(-0.0), 0.0);
}

TEST(XLog2X, KnownValues) {
  EXPECT_DOUBLE_EQ(xlog2x(1.0), 0.0);
  EXPECT_DOUBLE_EQ(xlog2x(0.5), -0.5);
  EXPECT_DOUBLE_EQ(xlog2x(2.0), 2.0);
  EXPECT_DOUBLE_EQ(xlog2x(0.25), 0.25 * -2.0);
}

TEST(XLog2X, ContinuousNearZero) {
  // x log2 x -> 0 as x -> 0+.
  EXPECT_NEAR(xlog2x(1e-12), 0.0, 1e-10);
}

TEST(SafeLog2, GuardsNonPositive) {
  EXPECT_EQ(safe_log2(0.0), 0.0);
  EXPECT_EQ(safe_log2(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_log2(8.0), 3.0);
}

TEST(SafeDiv, ZeroOverZero) {
  EXPECT_EQ(safe_div(0.0, 0.0), 0.0);
  EXPECT_EQ(safe_div(5.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_div(1.0, 4.0), 0.25);
}

TEST(KahanSum, CompensatesSmallTerms) {
  KahanSum s(1e16);
  for (int i = 0; i < 10'000'000 / 10; ++i) s.add(1.0);
  // Naive summation would lose every 1.0 against 1e16.
  EXPECT_DOUBLE_EQ(s.value(), 1e16 + 1e6);
}

TEST(KahanSum, MatchesExactForSmallInputs) {
  KahanSum s;
  s += 0.1;
  s += 0.2;
  s += 0.3;
  EXPECT_NEAR(s.value(), 0.6, 1e-15);
}

TEST(CompensatedSum, EmptyIsZero) {
  EXPECT_EQ(compensated_sum({}), 0.0);
}

TEST(ShannonEntropy, UniformIsLogN) {
  const std::vector<double> u(8, 1.0);
  EXPECT_NEAR(shannon_entropy(u), 3.0, 1e-12);
}

TEST(ShannonEntropy, DegenerateIsZero) {
  const std::vector<double> d = {1.0, 0.0, 0.0};
  EXPECT_EQ(shannon_entropy(d), 0.0);
  EXPECT_EQ(shannon_entropy(std::vector<double>{}), 0.0);
  EXPECT_EQ(shannon_entropy(std::vector<double>{0.0, 0.0}), 0.0);
}

TEST(ShannonEntropy, UnnormalizedInputEqualsNormalized) {
  const std::vector<double> a = {1.0, 3.0};
  const std::vector<double> b = {0.25, 0.75};
  EXPECT_NEAR(shannon_entropy(a), shannon_entropy(b), 1e-12);
}

TEST(KlDivergence, SelfIsZero) {
  const std::vector<double> p = {0.2, 0.3, 0.5};
  EXPECT_NEAR(kl_divergence(p, p), 0.0, 1e-12);
}

TEST(KlDivergence, NonNegative) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(0.01, 1.0);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<double> p(6), q(6);
    for (int i = 0; i < 6; ++i) {
      p[static_cast<std::size_t>(i)] = u(rng);
      q[static_cast<std::size_t>(i)] = u(rng);
    }
    EXPECT_GE(kl_divergence(p, q), -1e-12);
  }
}

TEST(KlDivergence, InfiniteWhenSupportMismatch) {
  const std::vector<double> p = {0.5, 0.5};
  const std::vector<double> q = {1.0, 0.0};
  EXPECT_TRUE(std::isinf(kl_divergence(p, q)));
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(LogLogSlope, RecoversPowerLaw) {
  std::vector<double> x, y;
  for (double v : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    x.push_back(v);
    y.push_back(3.5 * v * v * v);  // cubic
  }
  EXPECT_NEAR(loglog_slope(x, y), 3.0, 1e-9);
}

TEST(LogLogSlope, DegenerateInputs) {
  EXPECT_EQ(loglog_slope({}, {}), 0.0);
  const std::vector<double> one = {2.0};
  EXPECT_EQ(loglog_slope(one, one), 0.0);
}

TEST(AlmostEqual, RelativeAndAbsolute) {
  EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(almost_equal(1.0, 1.001));
  EXPECT_TRUE(almost_equal(0.0, 1e-13));
}

TEST(RelDiff, Symmetric) {
  EXPECT_DOUBLE_EQ(rel_diff(2.0, 1.0), rel_diff(1.0, 2.0));
  EXPECT_EQ(rel_diff(0.0, 0.0), 0.0);
}

}  // namespace
}  // namespace stagg
