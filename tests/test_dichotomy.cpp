#include "core/dichotomy.hpp"

#include <gtest/gtest.h>

#include "workload/fixtures.hpp"

namespace stagg {
namespace {

TEST(Dichotomy, FindsMultipleLevelsOnStructuredModel) {
  OwnedModel om = make_figure3_model();
  SpatiotemporalAggregator agg(om.model);
  const DichotomyResult r = find_significant_levels(agg);
  // The Fig. 3 trace has several distinct description levels (the paper
  // shows at least two: 3.d and 3.e).
  EXPECT_GE(r.levels.size(), 3u);
  EXPECT_GT(r.runs, 0u);
}

TEST(Dichotomy, LevelsSpanTheParameterRange) {
  OwnedModel om = make_figure3_model();
  SpatiotemporalAggregator agg(om.model);
  const DichotomyResult r = find_significant_levels(agg);
  ASSERT_FALSE(r.levels.empty());
  EXPECT_DOUBLE_EQ(r.levels.front().p_min, 0.0);
  EXPECT_DOUBLE_EQ(r.levels.back().p_max, 1.0);
  for (std::size_t k = 0; k + 1 < r.levels.size(); ++k) {
    EXPECT_LT(r.levels[k].p_max, r.levels[k + 1].p_min);
  }
}

TEST(Dichotomy, AreaCountWeaklyDecreasesWithP) {
  // Higher p = simpler representation: along the significant levels the
  // aggregate count must not increase (monotone coarsening).
  OwnedModel om = make_figure3_model();
  SpatiotemporalAggregator agg(om.model);
  const DichotomyResult r = find_significant_levels(agg);
  for (std::size_t k = 0; k + 1 < r.levels.size(); ++k) {
    EXPECT_GE(r.levels[k].result.partition.size(),
              r.levels[k + 1].result.partition.size())
        << "level " << k;
  }
}

TEST(Dichotomy, LastLevelIsFullAggregation) {
  OwnedModel om = make_figure3_model();
  SpatiotemporalAggregator agg(om.model);
  const DichotomyResult r = find_significant_levels(agg);
  EXPECT_EQ(r.levels.back().result.partition.size(), 1u);
}

TEST(Dichotomy, RespectsRunBudget) {
  OwnedModel om = make_figure3_model();
  SpatiotemporalAggregator agg(om.model);
  DichotomyOptions opt;
  opt.max_runs = 5;
  const DichotomyResult r = find_significant_levels(agg, opt);
  EXPECT_LE(r.runs, 5u);
}

TEST(Dichotomy, MaxRunsZeroReturnsEmptyResultWithoutThrowing) {
  OwnedModel om = make_figure3_model();
  SpatiotemporalAggregator agg(om.model);
  const DichotomyResult r =
      find_significant_levels(agg, {.epsilon = 1e-3, .max_runs = 0});
  EXPECT_EQ(r.runs, 0u);
  EXPECT_TRUE(r.levels.empty());
}

TEST(Dichotomy, MaxRunsOneReturnsPartialResultWithoutThrowing) {
  // The initial {0, 1} endpoint batch is truncated to the budget; the
  // search must return the single-probe partial result, not throw on the
  // unprobed endpoint.
  OwnedModel om = make_figure3_model();
  SpatiotemporalAggregator agg(om.model);
  const DichotomyResult r =
      find_significant_levels(agg, {.epsilon = 1e-3, .max_runs = 1});
  EXPECT_EQ(r.runs, 1u);
  ASSERT_EQ(r.levels.size(), 1u);
  EXPECT_DOUBLE_EQ(r.levels[0].p_min, 0.0);
  EXPECT_DOUBLE_EQ(r.levels[0].p_max, 0.0);
  EXPECT_TRUE(r.levels[0].result.partition.is_valid(*om.hierarchy, 20));
}

TEST(Dichotomy, MaxRunsTwoProbesExactlyBothEndpoints) {
  OwnedModel om = make_figure3_model();
  SpatiotemporalAggregator agg(om.model);
  const DichotomyResult r =
      find_significant_levels(agg, {.epsilon = 1e-3, .max_runs = 2});
  EXPECT_EQ(r.runs, 2u);
  // Fig. 3 has distinct partitions at p = 0 and p = 1, so the two endpoint
  // probes form two one-point plateaus spanning the range.
  ASSERT_EQ(r.levels.size(), 2u);
  EXPECT_DOUBLE_EQ(r.levels.front().p_min, 0.0);
  EXPECT_DOUBLE_EQ(r.levels.back().p_max, 1.0);
}

TEST(Dichotomy, HomogeneousModelHasOneLevel) {
  const OwnedModel om = make_random_model({.levels = 2,
                                           .fanout = 2,
                                           .slices = 6,
                                           .states = 2,
                                           .block_slices = 6,
                                           .block_leaves = 4,
                                           .seed = 5});
  SpatiotemporalAggregator agg(om.model);
  const DichotomyResult r = find_significant_levels(agg);
  ASSERT_EQ(r.levels.size(), 1u);
  EXPECT_EQ(r.levels[0].result.partition.size(), 1u);
  // Constant-signature interval: only the two endpoint probes needed.
  EXPECT_LE(r.runs, 3u);
}

TEST(Dichotomy, EpsilonControlsResolution) {
  OwnedModel om = make_figure3_model();
  SpatiotemporalAggregator agg(om.model);
  const auto coarse =
      find_significant_levels(agg, {.epsilon = 0.25, .max_runs = 256});
  const auto fine =
      find_significant_levels(agg, {.epsilon = 1e-3, .max_runs = 256});
  EXPECT_LE(coarse.runs, fine.runs);
  EXPECT_LE(coarse.levels.size(), fine.levels.size());
}

}  // namespace
}  // namespace stagg
