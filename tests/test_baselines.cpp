#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/aggregator.hpp"
#include "workload/fixtures.hpp"

namespace stagg {
namespace {

TEST(UniformPartition, GridShapeAndValidity) {
  const Hierarchy h = make_balanced_hierarchy(2, 3);  // 3 clusters x 3
  const Partition p = make_uniform_partition(h, 20, /*depth=*/1, /*k=*/4);
  EXPECT_TRUE(p.is_valid(h, 20));
  EXPECT_EQ(p.size(), 3u * 4u);  // Fig. 3.b: 3 clusters x 4 periods
}

TEST(UniformPartition, DepthZeroIsTemporalOnly) {
  const Hierarchy h = make_balanced_hierarchy(2, 2);
  const Partition p = make_uniform_partition(h, 10, 0, 5);
  EXPECT_TRUE(p.is_valid(h, 10));
  EXPECT_EQ(p.size(), 5u);
}

TEST(UniformPartition, LeafDepthIsMicroscopicWhenKEqualsT) {
  const Hierarchy h = make_balanced_hierarchy(1, 4);
  const Partition p = make_uniform_partition(h, 6, 99, 6);
  // depth beyond max -> leaves; k = T -> single slices.
  EXPECT_TRUE(p.is_valid(h, 6));
  EXPECT_EQ(p.size(), 4u * 6u);
}

TEST(UniformPartition, UnevenSlicesStillCover) {
  const Hierarchy h = make_flat_hierarchy(2);
  const Partition p = make_uniform_partition(h, 7, 1, 3);  // 7 into 3
  EXPECT_TRUE(p.is_valid(h, 7));
}

TEST(UniformPartition, RejectsBadK) {
  const Hierarchy h = make_flat_hierarchy(2);
  EXPECT_THROW((void)make_uniform_partition(h, 5, 1, 0), InvalidArgument);
  EXPECT_THROW((void)make_uniform_partition(h, 5, 1, 6), InvalidArgument);
  EXPECT_THROW((void)make_uniform_partition(h, 5, -1, 2), InvalidArgument);
}

TEST(Cartesian, ProductPartitionIsValid) {
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 3, .slices = 12, .states = 2, .seed = 19});
  const DataCube cube(om.model);
  const CartesianResult r = cartesian_aggregation(cube, 0.5);
  EXPECT_TRUE(r.partition.is_valid(*om.hierarchy, 12));
  EXPECT_EQ(r.partition.size(),
            r.spatial.parts.size() * r.temporal.intervals.size());
}

TEST(Cartesian, SpatiotemporalOptimumDominates) {
  // §III-D's argument: H(S) x I(T) products are a subset of A(S x T), so
  // the DP optimum is >= the Cartesian combination's pIC under the *full*
  // spatiotemporal measures.
  for (const std::uint64_t seed : {3ull, 23ull, 31ull}) {
    const OwnedModel om = make_random_model({.levels = 2,
                                             .fanout = 3,
                                             .slices = 10,
                                             .states = 2,
                                             .block_slices = 3,
                                             .block_leaves = 3,
                                             .seed = seed});
    SpatiotemporalAggregator agg(om.model);
    for (const double p : {0.2, 0.5, 0.8}) {
      const auto st = agg.run(p);
      const auto cart = cartesian_aggregation(agg.cube(), p);
      const auto cart_eval = agg.evaluate(cart.partition, p);
      EXPECT_GE(st.optimal_pic, cart_eval.optimal_pic - 1e-9)
          << "seed=" << seed << " p=" << p;
    }
  }
}

TEST(Cartesian, UniformGridNeverBeatsEither) {
  const OwnedModel om = make_random_model({.levels = 2,
                                           .fanout = 3,
                                           .slices = 12,
                                           .states = 2,
                                           .block_slices = 4,
                                           .block_leaves = 3,
                                           .seed = 77});
  SpatiotemporalAggregator agg(om.model);
  const double p = 0.5;
  const auto st = agg.run(p);
  const Partition uniform = make_uniform_partition(*om.hierarchy, 12, 1, 4);
  const auto uni_eval = agg.evaluate(uniform, p);
  EXPECT_GE(st.optimal_pic, uni_eval.optimal_pic - 1e-9);
}

TEST(MicroscopicAndFull, AreExtremePartitions) {
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 2, .slices = 5, .states = 2, .seed = 55});
  SpatiotemporalAggregator agg(om.model);
  const auto micro =
      agg.evaluate(make_microscopic_partition(*om.hierarchy, 5), 0.5);
  const auto full = agg.evaluate(make_full_partition(*om.hierarchy, 5), 0.5);
  EXPECT_NEAR(micro.measures.gain, 0.0, 1e-12);
  EXPECT_NEAR(micro.measures.loss, 0.0, 1e-12);
  EXPECT_GT(full.measures.gain, 0.0);
  EXPECT_GT(full.measures.loss, 0.0);
  EXPECT_EQ(micro.quality.area_count, 4u * 5u);
  EXPECT_EQ(full.quality.area_count, 1u);
}

}  // namespace
}  // namespace stagg
