// Tests of the YCbCr color machinery (§VI future work: "Solutions using
// different color spaces, as YCbCr, could be employed").
#include <gtest/gtest.h>

#include <cmath>

#include "viz/color.hpp"
#include "viz/spatiotemporal_view.hpp"
#include "core/aggregator.hpp"
#include "workload/fixtures.hpp"

namespace stagg {
namespace {

TEST(Ycbcr, RoundTripsRepresentativeColors) {
  for (const Rgba c : {Rgba{255, 0, 0, 255}, Rgba{0, 255, 0, 255},
                       Rgba{0, 0, 255, 255}, Rgba{240, 200, 0, 255},
                       Rgba{17, 93, 211, 255}, Rgba{128, 128, 128, 255}}) {
    const Rgba back = ycbcr_to_rgb(rgb_to_ycbcr(c));
    EXPECT_NEAR(back.r, c.r, 2);
    EXPECT_NEAR(back.g, c.g, 2);
    EXPECT_NEAR(back.b, c.b, 2);
  }
}

TEST(Ycbcr, GrayHasNeutralChroma) {
  const Ycbcr y = rgb_to_ycbcr({100, 100, 100, 255});
  EXPECT_NEAR(y.cb, 128.0, 0.5);
  EXPECT_NEAR(y.cr, 128.0, 0.5);
  EXPECT_NEAR(y.y, 100.0, 0.5);
}

TEST(Ycbcr, LumaOrdering) {
  // Yellow is perceptually brighter than blue at equal RGB magnitudes —
  // the reason §VI says opacity-based fading is hue-dependent.
  const double yellow = rgb_to_ycbcr({255, 255, 0, 255}).y;
  const double blue = rgb_to_ycbcr({0, 0, 255, 255}).y;
  EXPECT_GT(yellow, blue * 3.0);
}

TEST(ChromaFade, FullCertaintyIsIdentityish) {
  const Rgba c{205, 50, 40, 255};
  const Rgba faded = chroma_fade(c, 1.0);
  EXPECT_NEAR(faded.r, c.r, 2);
  EXPECT_NEAR(faded.g, c.g, 2);
  EXPECT_NEAR(faded.b, c.b, 2);
}

TEST(ChromaFade, ZeroCertaintyIsGrayWithSameLuma) {
  const Rgba c{205, 50, 40, 255};
  const Rgba faded = chroma_fade(c, 0.0);
  EXPECT_NEAR(faded.r, faded.g, 2);
  EXPECT_NEAR(faded.g, faded.b, 2);
  EXPECT_NEAR(rgb_to_ycbcr(faded).y, rgb_to_ycbcr(c).y, 2.0);
}

TEST(ChromaFade, PreservesLumaAtAnyStrength) {
  // The whole point of the YCbCr encoding: fading must not change the
  // perceived brightness, for any hue.
  for (const Rgba c : {Rgba{240, 200, 0, 255}, Rgba{60, 160, 60, 255},
                       Rgba{60, 100, 190, 255}}) {
    const double luma = rgb_to_ycbcr(c).y;
    for (const double k : {0.25, 0.5, 0.75}) {
      EXPECT_NEAR(rgb_to_ycbcr(chroma_fade(c, k)).y, luma, 2.5);
    }
  }
}

TEST(ChromaFade, ClampsCertainty) {
  const Rgba c{10, 200, 30, 255};
  EXPECT_EQ(chroma_fade(c, -1.0), chroma_fade(c, 0.0));
  EXPECT_EQ(chroma_fade(c, 2.0), chroma_fade(c, 1.0));
}

TEST(ChromaFadeView, RenderUsesOpaqueTiles) {
  OwnedModel om = make_figure3_model();
  SpatiotemporalAggregator agg(om.model);
  const auto result = agg.run(0.5);
  ViewOptions opt;
  opt.alpha_encoding = AlphaEncoding::kChromaFade;
  const SvgCanvas svg = render_overview(result, agg.cube(), opt);
  // Chroma encoding never emits fill-opacity (tiles are opaque).
  EXPECT_EQ(svg.str().find("fill-opacity"), std::string::npos);
  // Opacity encoding does, whenever some aggregate is mixed.
  ViewOptions classic;
  const SvgCanvas svg2 = render_overview(result, agg.cube(), classic);
  EXPECT_NE(svg2.str().find("fill-opacity"), std::string::npos);
}

}  // namespace
}  // namespace stagg
