#include "model/builder.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/error.hpp"
#include "common/math.hpp"
#include "trace/binary_io.hpp"

namespace stagg {
namespace {

namespace fs = std::filesystem;

Hierarchy two_machine_hierarchy() {
  HierarchyBuilder b("site");
  const NodeId m0 = b.add(0, "m0");
  const NodeId m1 = b.add(0, "m1");
  b.add(m0, "c0");
  b.add(m0, "c1");
  b.add(m1, "c0");
  b.add(m1, "c1");
  return b.finish();
}

Trace matching_trace(const Hierarchy& h) {
  Trace t;
  for (std::size_t s = 0; s < h.leaf_count(); ++s) {
    t.add_resource(h.path(h.leaf_node(static_cast<LeafId>(s))));
  }
  return t;
}

TEST(ModelBuilder, SingleStateFillsSlices) {
  const Hierarchy h = two_machine_hierarchy();
  Trace t = matching_trace(h);
  // Resource 0 in "busy" for the full 10 s window.
  t.add_state(0, "busy", 0, seconds(10.0));
  t.set_window(0, seconds(10.0));
  const MicroscopicModel m = build_model(t, h, {.slice_count = 10});
  for (SliceId tt = 0; tt < 10; ++tt) {
    EXPECT_NEAR(m.duration(0, tt, 0), 1.0, 1e-9);
    EXPECT_NEAR(m.proportion(0, tt, 0), 1.0, 1e-9);
    EXPECT_NEAR(m.duration(1, tt, 0), 0.0, 1e-12);
  }
  m.validate();
}

TEST(ModelBuilder, IntervalSplitAcrossSliceBoundary) {
  const Hierarchy h = two_machine_hierarchy();
  Trace t = matching_trace(h);
  // [1.5 s, 3.25 s) over 10 slices of 1 s.
  t.add_state(2, "busy", seconds(1.5), seconds(3.25));
  t.set_window(0, seconds(10.0));
  const MicroscopicModel m = build_model(t, h, {.slice_count = 10});
  EXPECT_NEAR(m.duration(2, 1, 0), 0.5, 1e-9);
  EXPECT_NEAR(m.duration(2, 2, 0), 1.0, 1e-9);
  EXPECT_NEAR(m.duration(2, 3, 0), 0.25, 1e-9);
  EXPECT_NEAR(m.duration(2, 0, 0), 0.0, 1e-12);
  EXPECT_NEAR(m.duration(2, 4, 0), 0.0, 1e-12);
}

TEST(ModelBuilder, MassConservationUnderClipping) {
  const Hierarchy h = two_machine_hierarchy();
  Trace t = matching_trace(h);
  // Overlaps the window at both ends: only [0, 10] s should be counted.
  t.add_state(1, "busy", seconds(-2.0), seconds(4.0));
  t.add_state(1, "busy", seconds(6.5), seconds(12.0));
  t.set_window(0, seconds(10.0));
  const MicroscopicModel m = build_model(t, h, {.slice_count = 30});
  EXPECT_NEAR(m.total_mass(), 4.0 + 3.5, 1e-9);
}

TEST(ModelBuilder, MatchByPathHandlesPermutedResources) {
  const Hierarchy h = two_machine_hierarchy();
  Trace t;
  // Register resources in reverse order.
  for (std::size_t s = h.leaf_count(); s-- > 0;) {
    t.add_resource(h.path(h.leaf_node(static_cast<LeafId>(s))));
  }
  t.add_state(0, "busy", 0, seconds(1.0));  // trace resource 0 = last leaf
  t.set_window(0, seconds(1.0));
  const MicroscopicModel m = build_model(t, h, {.slice_count = 1});
  const LeafId last = static_cast<LeafId>(h.leaf_count() - 1);
  EXPECT_NEAR(m.duration(last, 0, 0), 1.0, 1e-9);
  EXPECT_NEAR(m.duration(0, 0, 0), 0.0, 1e-12);
}

TEST(ModelBuilder, MatchByIndexIgnoresPaths) {
  const Hierarchy h = two_machine_hierarchy();
  Trace t;
  t.add_resource("whatever0");
  t.add_resource("whatever1");
  t.add_resource("whatever2");
  t.add_resource("whatever3");
  t.add_state(3, "busy", 0, seconds(1.0));
  t.set_window(0, seconds(1.0));
  const MicroscopicModel m =
      build_model(t, h, {.slice_count = 2, .match_by_path = false});
  EXPECT_NEAR(m.duration(3, 0, 0), 0.5, 1e-9);
}

TEST(ModelBuilder, ResourceCountMismatchThrows) {
  const Hierarchy h = two_machine_hierarchy();
  Trace t;
  t.add_resource("just/one");
  t.add_state(0, "busy", 0, 10);
  EXPECT_THROW((void)build_model(t, h, {}), DimensionError);
}

TEST(ModelBuilder, UnknownPathThrows) {
  const Hierarchy h = two_machine_hierarchy();
  Trace t;
  t.add_resource("site/m0/c0");
  t.add_resource("site/m0/c1");
  t.add_resource("site/m1/c0");
  t.add_resource("site/WRONG/c1");
  t.add_state(0, "busy", 0, 10);
  EXPECT_THROW((void)build_model(t, h, {}), DimensionError);
}

TEST(ModelBuilder, DuplicateLeafMappingThrows) {
  const Hierarchy h = two_machine_hierarchy();
  // Four resources but two map to the same leaf via distinct registration
  // is impossible through add_resource (paths are unique); check the
  // non-bijection detection through map_resources directly.
  const std::vector<std::string> paths = {"site/m0/c0", "site/m0/c0",
                                          "site/m1/c0", "site/m1/c1"};
  EXPECT_THROW((void)detail::map_resources(paths, h, true), DimensionError);
}

TEST(ModelBuilder, ExplicitWindowRestrictsModel) {
  const Hierarchy h = two_machine_hierarchy();
  Trace t = matching_trace(h);
  t.add_state(0, "busy", 0, seconds(10.0));
  ModelBuildOptions opt;
  opt.slice_count = 5;
  opt.window_begin = seconds(2.0);
  opt.window_end = seconds(4.0);
  const MicroscopicModel m = build_model(t, h, opt);
  EXPECT_EQ(m.grid().begin(), seconds(2.0));
  EXPECT_NEAR(m.total_mass(), 2.0, 1e-9);
}

TEST(ModelBuilder, EmptyTraceThrows) {
  const Hierarchy h = two_machine_hierarchy();
  Trace t = matching_trace(h);
  EXPECT_THROW((void)build_model(t, h, {}), InvalidArgument);
}

TEST(ModelBuilder, StreamingEqualsInMemory) {
  const Hierarchy h = two_machine_hierarchy();
  Trace t = matching_trace(h);
  for (int k = 0; k < 50; ++k) {
    t.add_state(k % 4, k % 2 ? "send" : "wait", seconds(0.13 * k),
                seconds(0.13 * k + 0.2));
  }
  t.set_window(0, seconds(8.0));

  const auto dir = fs::temp_directory_path() / "stagg_model_test";
  fs::create_directories(dir);
  const std::string path = (dir / "t.stgt").string();
  write_binary_trace(t, path);

  const MicroscopicModel a = build_model(t, h, {.slice_count = 16});
  const MicroscopicModel b = build_model_streaming(path, h, {.slice_count = 16});
  ASSERT_EQ(a.raw().size(), b.raw().size());
  for (std::size_t i = 0; i < a.raw().size(); ++i) {
    EXPECT_NEAR(a.raw()[i], b.raw()[i], 1e-12) << "tensor index " << i;
  }
  fs::remove_all(dir);
}

TEST(MicroscopicModelTest, ValidateRejectsOverlappingStates) {
  const Hierarchy h = two_machine_hierarchy();
  StateRegistry states;
  states.intern("a");
  MicroscopicModel m(&h, TimeGrid(0, seconds(2.0), 2), states);
  m.set_duration(0, 0, 0, 5.0);  // 5 s of state inside a 1 s slice
  EXPECT_THROW(m.validate(), DimensionError);
}

TEST(MicroscopicModelTest, ValidateRejectsNegativeDurations) {
  const Hierarchy h = two_machine_hierarchy();
  StateRegistry states;
  states.intern("a");
  MicroscopicModel m(&h, TimeGrid(0, seconds(2.0), 2), states);
  m.set_duration(0, 0, 0, -0.1);
  EXPECT_THROW(m.validate(), DimensionError);
}

TEST(MicroscopicModelTest, RequiresStates) {
  const Hierarchy h = two_machine_hierarchy();
  StateRegistry empty;
  EXPECT_THROW(MicroscopicModel(&h, TimeGrid(0, 10, 2), empty),
               InvalidArgument);
}

}  // namespace
}  // namespace stagg
