// Exhaustive oracle suite (ctest label `heavy`): the DP must equal the
// brute-force optimum, which enumerates every hierarchy-and-order-consistent
// partition and evaluates it with an independent implementation of Eq. 1-3.
//
// Split out of test_aggregator.cpp: the enumeration dominates the whole
// suite's wall time (~50 s), so it carries its own ctest TIMEOUT and runs
// in the Release CI job only — the fast aggregator tests stay in the
// default test run.
#include <gtest/gtest.h>

#include <tuple>

#include "core/aggregator.hpp"
#include "core/brute_force.hpp"
#include "workload/fixtures.hpp"

namespace stagg {
namespace {

using OracleParam = std::tuple<int /*seed*/, double /*p*/>;

class AggregatorOracle : public ::testing::TestWithParam<OracleParam> {};

TEST_P(AggregatorOracle, MatchesBruteForceOptimum) {
  const auto [seed, p] = GetParam();
  const OwnedModel om =
      make_random_model({.levels = 2,
                         .fanout = 2,
                         .slices = 4,
                         .states = 2,
                         .idle_fraction = 0.2,
                         .seed = static_cast<std::uint64_t>(seed)});
  SpatiotemporalAggregator agg(om.model);
  const AggregationResult fast = agg.run(p);
  const BruteForceResult slow = brute_force_optimum(om.model, p);

  EXPECT_GT(slow.partitions_examined, 100u);  // the oracle actually works
  EXPECT_NEAR(fast.optimal_pic, slow.optimal_pic, 1e-8)
      << "DP disagrees with exhaustive optimum";
  // The DP's partition must achieve the optimal value under the naive
  // evaluator too (the argmax may differ on exact ties).
  const double naive = naive_partition_pic(om.model, fast.partition, p);
  EXPECT_NEAR(naive, slow.optimal_pic, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPs, AggregatorOracle,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0)));

// Oracle over a deeper, narrower shape (3 levels, fanout 2, T = 3).
class AggregatorOracleDeep : public ::testing::TestWithParam<int> {};

TEST_P(AggregatorOracleDeep, MatchesBruteForceOptimum) {
  const OwnedModel om = make_random_model(
      {.levels = 3,
       .fanout = 2,
       .slices = 3,
       .states = 2,
       .seed = static_cast<std::uint64_t>(GetParam())});
  SpatiotemporalAggregator agg(om.model);
  for (const double p : {0.3, 0.6}) {
    const AggregationResult fast = agg.run(p);
    const BruteForceResult slow = brute_force_optimum(om.model, p);
    EXPECT_NEAR(fast.optimal_pic, slow.optimal_pic, 1e-8) << "p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregatorOracleDeep,
                         ::testing::Values(11, 12, 13, 14));

// The lane-batched run_many must agree with the exhaustive optimum too —
// one wide wave over a p-grid against the brute-force evaluator.
TEST(AggregatorOracleLanes, RunManyMatchesBruteForceAcrossAWave) {
  const OwnedModel om = make_random_model({.levels = 2,
                                           .fanout = 2,
                                           .slices = 4,
                                           .states = 2,
                                           .idle_fraction = 0.2,
                                           .seed = 3});
  SpatiotemporalAggregator agg(om.model);
  const double ps[] = {0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 0.9, 1.0};
  const std::vector<AggregationResult> sweep = agg.run_many(ps);
  for (std::size_t k = 0; k < sweep.size(); ++k) {
    const BruteForceResult slow = brute_force_optimum(om.model, ps[k]);
    EXPECT_NEAR(sweep[k].optimal_pic, slow.optimal_pic, 1e-8)
        << "p=" << ps[k];
  }
}

}  // namespace
}  // namespace stagg
