// Tests of the inspection API (§VI data retrieval), the JSON export and
// the partition diff.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/aggregator.hpp"
#include "core/baselines.hpp"
#include "core/inspect.hpp"
#include "core/json_export.hpp"
#include "core/partition_diff.hpp"
#include "workload/fixtures.hpp"

namespace stagg {
namespace {

class InspectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    om_ = make_figure3_model();
    agg_.emplace(om_->model);
    result_ = agg_->run(0.35);
  }
  std::optional<OwnedModel> om_;
  std::optional<SpatiotemporalAggregator> agg_;
  AggregationResult result_;
};

TEST_F(InspectTest, AreaDetailProportionsSumToOne) {
  // The Fig. 3 trace has rho1 + rho2 = 1 everywhere, and Eq. 1 preserves
  // the total over any aggregate.
  for (const auto& d : inspect_partition(agg_->cube(), result_.partition)) {
    double total = 0.0;
    for (const double rho : d.proportions) total += rho;
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_GE(d.alpha, 0.5 - 1e-9);  // |X| = 2 -> alpha in [1/2, 1]
    EXPECT_LE(d.alpha, 1.0 + 1e-9);
  }
}

TEST_F(InspectTest, DetailMatchesCubeMode) {
  const auto& area = result_.partition.areas()[0];
  const AreaDetail d = inspect_area(agg_->cube(), area);
  const auto mode = agg_->cube().mode(area.node, area.time.i, area.time.j);
  EXPECT_EQ(d.mode, mode.state);
  EXPECT_NEAR(d.mode_share, mode.proportion, 1e-12);
  EXPECT_EQ(d.node_path, om_->hierarchy->path(area.node));
  EXPECT_EQ(d.resources, om_->hierarchy->node(area.node).leaf_count);
}

TEST_F(InspectTest, AreaAtFindsTheCoveringArea) {
  // Probe every (leaf, slice-center): the returned area must contain it.
  for (LeafId s = 0; s < 12; s += 3) {
    for (double time_s : {0.5, 7.5, 15.5, 19.5}) {
      const auto d = area_at(agg_->cube(), result_.partition, s, time_s);
      ASSERT_TRUE(d.has_value()) << "leaf " << s << " t " << time_s;
      const auto& n = om_->hierarchy->node(d->area.node);
      EXPECT_GE(s, n.first_leaf);
      EXPECT_LT(s, n.first_leaf + n.leaf_count);
      EXPECT_LE(d->begin_s, time_s);
      EXPECT_GT(d->end_s, time_s);
    }
  }
}

TEST_F(InspectTest, AreaAtRejectsOutOfRangeProbes) {
  EXPECT_FALSE(area_at(agg_->cube(), result_.partition, 0, -1.0).has_value());
  EXPECT_FALSE(area_at(agg_->cube(), result_.partition, 0, 25.0).has_value());
  EXPECT_FALSE(area_at(agg_->cube(), result_.partition, 99, 1.0).has_value());
}

TEST_F(InspectTest, FormatMentionsModeAndPath) {
  const AreaDetail d = inspect_area(agg_->cube(), result_.partition.areas()[0]);
  const std::string s = format_area_detail(agg_->cube(), d);
  EXPECT_NE(s.find(d.node_path), std::string::npos);
  EXPECT_NE(s.find("<- mode"), std::string::npos);
}

TEST_F(InspectTest, JsonExportIsWellFormedEnough) {
  const std::string json = export_json(result_, agg_->cube());
  // Structural sanity: balanced braces/brackets, key fields present.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"format\": \"stagg-aggregation\""),
            std::string::npos);
  EXPECT_NE(json.find("\"areas\": ["), std::string::npos);
  EXPECT_NE(json.find("\"state1\""), std::string::npos);
  // One area object per partition area.
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"node\":"); pos != std::string::npos;
       pos = json.find("\"node\":", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, result_.partition.size());
}

TEST_F(InspectTest, JsonEscaping) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST_F(InspectTest, JsonFileExport) {
  const std::string path = "/tmp/stagg_export_test.json";
  export_json_file(result_, agg_->cube(), path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

// --- partition diff --------------------------------------------------------

TEST(PartitionDiffTest, IdenticalPartitions) {
  const OwnedModel om = make_figure3_model();
  const Partition p = make_uniform_partition(*om.hierarchy, 20, 1, 4);
  const PartitionDiff d = diff_partitions(*om.hierarchy, 20, p, p);
  EXPECT_TRUE(d.identical());
  EXPECT_DOUBLE_EQ(d.area_jaccard, 1.0);
  EXPECT_DOUBLE_EQ(d.cell_agreement, 1.0);
  EXPECT_TRUE(d.differing_leaves.empty());
}

TEST(PartitionDiffTest, DisjointExtremes) {
  const OwnedModel om = make_figure3_model();
  const Partition full = make_full_partition(*om.hierarchy, 20);
  const Partition micro = make_microscopic_partition(*om.hierarchy, 20);
  const PartitionDiff d = diff_partitions(*om.hierarchy, 20, full, micro);
  EXPECT_EQ(d.common_areas, 0u);
  EXPECT_DOUBLE_EQ(d.area_jaccard, 0.0);
  EXPECT_DOUBLE_EQ(d.cell_agreement, 0.0);
  EXPECT_EQ(d.differing_leaves.size(), 12u);
}

TEST(PartitionDiffTest, LocalizedChange) {
  const OwnedModel om = make_figure3_model();
  const Hierarchy& h = *om.hierarchy;
  // Two partitions differing only on cluster SC's rows.
  Partition a, b;
  a.add(h.find("S/SA"), 0, 19);
  a.add(h.find("S/SB"), 0, 19);
  a.add(h.find("S/SC"), 0, 19);
  b.add(h.find("S/SA"), 0, 19);
  b.add(h.find("S/SB"), 0, 19);
  b.add(h.find("S/SC"), 0, 9);
  b.add(h.find("S/SC"), 10, 19);
  const PartitionDiff d = diff_partitions(h, 20, a, b);
  EXPECT_EQ(d.common_areas, 2u);
  EXPECT_EQ(d.only_in_a, 1u);
  EXPECT_EQ(d.only_in_b, 2u);
  // Only SC's 4 leaves differ; 8 of 12 rows agree fully.
  EXPECT_EQ(d.differing_leaves.size(), 4u);
  EXPECT_NEAR(d.cell_agreement, 8.0 / 12.0, 1e-12);
  for (const LeafId s : d.differing_leaves) EXPECT_GE(s, 8);
}

TEST(PartitionDiffTest, RejectsInvalidInputs) {
  const OwnedModel om = make_figure3_model();
  Partition bad;
  bad.add(om.hierarchy->root(), 0, 5);  // does not cover
  const Partition good = make_full_partition(*om.hierarchy, 20);
  EXPECT_THROW((void)diff_partitions(*om.hierarchy, 20, bad, good),
               DimensionError);
}

TEST(PartitionDiffTest, DichotomyNeighborsOverlapHeavily) {
  // Adjacent significant levels share most of their structure.
  OwnedModel om = make_figure3_model();
  SpatiotemporalAggregator agg(om.model);
  const auto fine = agg.run(0.30);
  const auto coarse = agg.run(0.45);
  const PartitionDiff d =
      diff_partitions(*om.hierarchy, 20, fine.partition, coarse.partition);
  EXPECT_GT(d.area_jaccard, 0.3);
  EXPECT_GT(d.cell_agreement, 0.3);
}

}  // namespace
}  // namespace stagg
