#include "common/table.hpp"

#include <gtest/gtest.h>

namespace stagg {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.str();
  // Header, rule, two rows.
  EXPECT_NE(s.find("name    value"), std::string::npos);
  EXPECT_NE(s.find("longer  22"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, NoHeader) {
  TextTable t;
  t.add_row({"a", "b"});
  EXPECT_EQ(t.str(), "a  b\n");
}

TEST(TextTable, RaggedRows) {
  TextTable t;
  t.add_row({"a", "b", "c"});
  t.add_row({"only"});
  const std::string s = t.str();
  EXPECT_NE(s.find("only"), std::string::npos);
}

TEST(TextTable, ManualRule) {
  TextTable t;
  t.add_row({"a"});
  t.add_rule();
  t.add_row({"b"});
  const std::string s = t.str();
  EXPECT_NE(s.find('-'), std::string::npos);
}

}  // namespace
}  // namespace stagg
