#include "hierarchy/platform.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace stagg {
namespace {

TEST(Platform, RennesParapideMatchesCaseA) {
  const PlatformSpec p = grid5000_rennes_parapide();
  EXPECT_EQ(p.total_cores(), 64);
  EXPECT_EQ(p.total_machines(), 8);
  EXPECT_EQ(p.clusters.size(), 1u);
  EXPECT_EQ(p.clusters[0].interconnect, Interconnect::kInfinibandMT25418);
}

TEST(Platform, GrenobleMatchesCaseB) {
  const PlatformSpec p = grid5000_grenoble();
  EXPECT_EQ(p.total_cores(), 512);
  EXPECT_EQ(p.total_machines(), 9 + 24 + 31);
}

TEST(Platform, NancyMatchesCaseC) {
  const PlatformSpec p = grid5000_nancy();
  // 26*4 + 4*16 + 67*8 = 704 cores; the paper uses 700 of them.
  EXPECT_EQ(p.total_cores(), 704);
  EXPECT_EQ(p.clusters[1].interconnect, Interconnect::kEthernet10G);
}

TEST(Platform, RennesTripleMatchesCaseD) {
  const PlatformSpec p = grid5000_rennes_triple();
  // 38*8 + 21*8 + 18*24 = 904 cores; the paper uses 900.
  EXPECT_EQ(p.total_cores(), 904);
}

TEST(Platform, BuildHierarchyFullDepth) {
  const Hierarchy h = grid5000_rennes_parapide().build_hierarchy();
  EXPECT_EQ(h.leaf_count(), 64u);
  EXPECT_EQ(h.max_depth(), 3);  // site/cluster/machine/core
  EXPECT_TRUE(h.validate());
  EXPECT_NE(h.find("rennes/parapide/parapide-0/core0"), kNoNode);
  EXPECT_NE(h.find("rennes/parapide/parapide-7/core7"), kNoNode);
}

TEST(Platform, ProcessLimitTruncates) {
  const Hierarchy h = grid5000_nancy().build_hierarchy(700);
  EXPECT_EQ(h.leaf_count(), 700u);
  EXPECT_TRUE(h.validate());
  EXPECT_EQ(h.nodes_at_depth(1).size(), 3u);  // all clusters present
}

TEST(Platform, ScaledToKeepsClusterStructure) {
  const PlatformSpec p = grid5000_nancy().scaled_to(88);
  EXPECT_EQ(p.clusters.size(), 3u);
  for (const auto& c : p.clusters) EXPECT_GE(c.machines, 1);
  // The scale keeps cores-per-machine and shrinks machine counts.
  EXPECT_EQ(p.clusters[0].cores_per_machine, 4);
  EXPECT_EQ(p.clusters[1].cores_per_machine, 16);
  EXPECT_LT(p.total_cores(), 704);
}

TEST(Platform, ScaledToRejectsNonPositive) {
  EXPECT_THROW((void)grid5000_nancy().scaled_to(0), InvalidArgument);
}

TEST(Platform, InterconnectNames) {
  EXPECT_STREQ(to_string(Interconnect::kEthernet10G), "10G Ethernet");
  EXPECT_STREQ(to_string(Interconnect::kInfiniband20G), "Infiniband-20G");
}

}  // namespace
}  // namespace stagg
