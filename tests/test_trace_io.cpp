#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "trace/binary_io.hpp"
#include "trace/csv_io.hpp"

namespace stagg {
namespace {

namespace fs = std::filesystem;

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "stagg_io_test";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string file(const std::string& name) const {
    return (dir_ / name).string();
  }

  static Trace make_sample() {
    Trace t;
    const ResourceId r0 = t.add_resource("root/m0/c0");
    const ResourceId r1 = t.add_resource("root/m0/c1");
    t.add_state(r0, "MPI_Init", 0, seconds(1.0));
    t.add_state(r0, "MPI_Send", seconds(1.0), seconds(1.5));
    t.add_state(r1, "MPI_Init", 0, seconds(1.0));
    t.add_state(r1, "MPI_Wait", seconds(1.2), seconds(2.0));
    t.seal();
    return t;
  }

  static void expect_equal(Trace& a, Trace& b) {
    a.seal();
    b.seal();
    ASSERT_EQ(a.resource_count(), b.resource_count());
    EXPECT_EQ(a.begin(), b.begin());
    EXPECT_EQ(a.end(), b.end());
    EXPECT_TRUE(a.states() == b.states());
    for (ResourceId r = 0; r < static_cast<ResourceId>(a.resource_count());
         ++r) {
      EXPECT_EQ(a.resource_path(r), b.resource_path(r));
      const auto ia = a.intervals(r);
      const auto ib = b.intervals(r);
      ASSERT_EQ(ia.size(), ib.size());
      for (std::size_t k = 0; k < ia.size(); ++k) {
        EXPECT_EQ(ia[k], ib[k]);
      }
    }
  }

  fs::path dir_;
};

TEST_F(TraceIoTest, BinaryRoundTrip) {
  Trace t = make_sample();
  const auto bytes = write_binary_trace(t, file("a.stgt"));
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(fs::file_size(file("a.stgt")), bytes);
  Trace back = read_binary_trace(file("a.stgt"));
  expect_equal(t, back);
}

TEST_F(TraceIoTest, BinaryInfoOnly) {
  Trace t = make_sample();
  write_binary_trace(t, file("a.stgt"));
  const TraceFileInfo info = read_binary_trace_info(file("a.stgt"));
  EXPECT_EQ(info.resource_paths.size(), 2u);
  EXPECT_EQ(info.record_count, 4u);
  EXPECT_EQ(info.states.size(), 3u);
  EXPECT_EQ(info.window_begin, 0);
  EXPECT_EQ(info.window_end, seconds(2.0));
}

TEST_F(TraceIoTest, StreamingSeesAllRecords) {
  Trace t = make_sample();
  write_binary_trace(t, file("a.stgt"));
  std::size_t records = 0;
  TimeNs dur_sum = 0;
  stream_binary_trace(
      file("a.stgt"),
      [&](std::span<const TraceRecord> chunk) {
        records += chunk.size();
        for (const auto& rec : chunk) dur_sum += rec.interval.duration();
      },
      /*chunk_records=*/2);  // force multiple chunks
  EXPECT_EQ(records, 4u);
  EXPECT_EQ(dur_sum, seconds(1.0) + seconds(0.5) + seconds(1.0) +
                         seconds(0.8));
}

TEST_F(TraceIoTest, BinaryRejectsBadMagic) {
  std::ofstream os(file("bad.stgt"), std::ios::binary);
  os << "NOTATRACEFILE___________________";
  os.close();
  EXPECT_THROW((void)read_binary_trace(file("bad.stgt")), TraceFormatError);
}

TEST_F(TraceIoTest, BinaryRejectsTruncation) {
  Trace t = make_sample();
  write_binary_trace(t, file("a.stgt"));
  // Chop the last 10 bytes.
  const auto full = fs::file_size(file("a.stgt"));
  fs::resize_file(file("a.stgt"), full - 10);
  EXPECT_THROW((void)read_binary_trace(file("a.stgt")), TraceFormatError);
}

// Fuzzing regression (fuzz/corpus/regressions/chunk_file/
// huge_resource_count.bin): a 48-byte header declaring 2^32 resources used
// to reserve ~137 GB up front and die with an uncaught std::bad_alloc.
// The count must stay untrusted until the table entries parse — the file
// has none, so the read must fail as loud truncation at an offset, not
// as an allocation crash.
TEST_F(TraceIoTest, BinaryHugeResourceCountFailsLoudlyNotByAllocation) {
  std::ofstream os(file("huge.stgt"), std::ios::binary);
  os << "STGTRC01";
  const std::uint64_t resource_count = 1ull << 32;
  const std::uint64_t zero = 0;
  os.write(reinterpret_cast<const char*>(&resource_count), 8);
  os.write(reinterpret_cast<const char*>(&zero), 8);  // state_count
  os.write(reinterpret_cast<const char*>(&zero), 8);  // window_begin
  os.write(reinterpret_cast<const char*>(&zero), 8);  // window_end
  os.write(reinterpret_cast<const char*>(&zero), 8);  // record_count
  os.close();
  try {
    (void)read_binary_trace_store(file("huge.stgt"));
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
  }
}

TEST_F(TraceIoTest, MissingFileThrowsIoError) {
  EXPECT_THROW((void)read_binary_trace(file("missing.stgt")), IoError);
  EXPECT_THROW((void)read_csv_trace(file("missing.csv")), IoError);
}

TEST_F(TraceIoTest, CsvRoundTripFile) {
  Trace t = make_sample();
  const auto bytes = write_csv_trace(t, file("a.csv"));
  EXPECT_GT(bytes, 0u);
  Trace back = read_csv_trace(file("a.csv"));
  expect_equal(t, back);
}

TEST_F(TraceIoTest, CsvRoundTripStream) {
  Trace t = make_sample();
  std::ostringstream os;
  write_csv_trace(t, os);
  std::istringstream is(os.str());
  Trace back = read_csv_trace(is);
  expect_equal(t, back);
}

TEST_F(TraceIoTest, CsvWriterRejectsCommaInNames) {
  // Unquoted format: a comma in a resource path or state name would be
  // re-read as a field separator — the writer must throw, not corrupt the
  // roundtrip.
  Trace bad_path;
  const ResourceId r = bad_path.add_resource("root/m0,shard1/c0");
  bad_path.add_state(r, "Compute", 0, seconds(1.0));
  std::ostringstream os;
  EXPECT_THROW(write_csv_trace(bad_path, os), TraceFormatError);

  Trace bad_state;
  const ResourceId r2 = bad_state.add_resource("root/m0/c0");
  bad_state.add_state(r2, "Send,recv", 0, seconds(1.0));
  EXPECT_THROW((void)write_csv_trace(bad_state, file("bad.csv")),
               TraceFormatError);

  Trace newline_state;
  const ResourceId r3 = newline_state.add_resource("root/m0/c0");
  newline_state.add_state(r3, "Send\nrecv", 0, seconds(1.0));
  std::ostringstream os3;
  EXPECT_THROW(write_csv_trace(newline_state, os3), TraceFormatError);
}

TEST_F(TraceIoTest, CsvReaderRejectsRecordWithEmbeddedComma) {
  // What a comma-bearing name would have produced: six fields.
  std::istringstream is("STATE,root/m0,shard1/c0,x,0,10\n");
  EXPECT_THROW((void)read_csv_trace(is), TraceFormatError);
}

TEST_F(TraceIoTest, CsvRejectsMalformedRecords) {
  std::istringstream missing_fields("STATE,r,x,1\n");
  EXPECT_THROW((void)read_csv_trace(missing_fields), TraceFormatError);
  std::istringstream bad_kind("EVENT,r,x,1,2\n");
  EXPECT_THROW((void)read_csv_trace(bad_kind), TraceFormatError);
  std::istringstream bad_time("STATE,r,x,abc,2\n");
  EXPECT_THROW((void)read_csv_trace(bad_time), TraceFormatError);
  std::istringstream reversed("STATE,r,x,5,2\n");
  EXPECT_THROW((void)read_csv_trace(reversed), TraceFormatError);
}

TEST_F(TraceIoTest, CsvIgnoresCommentsAndBlankLines) {
  std::istringstream is(
      "# a comment\n\nSTATE,r,x,0,10\n   \n# another\nSTATE,r,y,10,20\n");
  Trace t = read_csv_trace(is);
  EXPECT_EQ(t.state_count(), 2u);
  EXPECT_EQ(t.states().size(), 2u);
}

TEST_F(TraceIoTest, BinaryIsSmallerThanCsv) {
  Trace t = make_sample();
  const auto bin = write_binary_trace(t, file("a.stgt"));
  const auto csv = write_csv_trace(t, file("a.csv"));
  EXPECT_LT(bin, csv);
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  Trace t;
  t.add_resource("only/resource");
  t.states().intern("unused");
  t.set_window(0, 100);
  write_binary_trace(t, file("empty.stgt"));
  Trace back = read_binary_trace(file("empty.stgt"));
  EXPECT_EQ(back.resource_count(), 1u);
  EXPECT_EQ(back.state_count(), 0u);
  EXPECT_EQ(back.end(), 100);
}

}  // namespace
}  // namespace stagg
