#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/error.hpp"

namespace stagg {
namespace {

Cli make_cli() {
  Cli cli("prog", "test program");
  cli.option("count", "10", "a number")
      .option("name", "dflt", "a string")
      .flag("verbose", "a flag");
  return cli;
}

TEST(Cli, DefaultsApply) {
  Cli cli = make_cli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("count"), 10);
  EXPECT_EQ(cli.get("name"), "dflt");
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, SpaceSeparatedValue) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--count", "42"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("count"), 42);
}

TEST(Cli, EqualsValue) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--name=hello", "--verbose"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get("name"), "hello");
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, PositionalArguments) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "input.trc", "--count=1", "out.svg"};
  ASSERT_TRUE(cli.parse(4, argv));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.trc");
  EXPECT_EQ(cli.positional()[1], "out.svg");
}

TEST(Cli, UnknownOptionFails) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(cli.parse(3, argv));
}

TEST(Cli, MissingValueFails) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--count"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, GetUndeclaredThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_THROW((void)cli.get("nothere"), InvalidArgument);
}

TEST(Cli, DoubleParsing) {
  Cli cli("p", "d");
  cli.option("scale", "0.5", "scale");
  const char* argv[] = {"p", "--scale", "0.03125"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("scale"), 0.03125);
}

TEST(EnvHelpers, FallbackAndParse) {
  ::unsetenv("STAGG_TEST_ENV");
  EXPECT_DOUBLE_EQ(env_double("STAGG_TEST_ENV", 2.5), 2.5);
  EXPECT_EQ(env_int("STAGG_TEST_ENV", 9), 9);
  ::setenv("STAGG_TEST_ENV", "0.125", 1);
  EXPECT_DOUBLE_EQ(env_double("STAGG_TEST_ENV", 2.5), 0.125);
  ::setenv("STAGG_TEST_ENV", "17", 1);
  EXPECT_EQ(env_int("STAGG_TEST_ENV", 9), 17);
  ::setenv("STAGG_TEST_ENV", "junk", 1);
  EXPECT_DOUBLE_EQ(env_double("STAGG_TEST_ENV", 2.5), 2.5);
  EXPECT_EQ(env_int("STAGG_TEST_ENV", 9), 9);
  ::unsetenv("STAGG_TEST_ENV");
}

}  // namespace
}  // namespace stagg
