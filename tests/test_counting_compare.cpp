// Tests of the search-space counting (§III-E combinatorics) and the
// cross-run comparison (§V-A methodology).
#include <gtest/gtest.h>

#include "analysis/compare_runs.hpp"
#include "common/error.hpp"
#include "core/brute_force.hpp"
#include "core/counting.hpp"
#include "model/builder.hpp"
#include "workload/nas_cg.hpp"
#include "workload/scenarios.hpp"

namespace stagg {
namespace {

TEST(Counting, IntervalPartitionsArePowersOfTwo) {
  EXPECT_EQ(count_interval_partitions(1).exact, 1u);
  EXPECT_EQ(count_interval_partitions(2).exact, 2u);
  EXPECT_EQ(count_interval_partitions(5).exact, 16u);
  EXPECT_EQ(count_interval_partitions(30).exact, 1u << 29);
  EXPECT_DOUBLE_EQ(count_interval_partitions(30).log2_value, 29.0);
  EXPECT_THROW((void)count_interval_partitions(0), InvalidArgument);
}

TEST(Counting, IntervalCountSaturatesGracefully) {
  const auto c = count_interval_partitions(100);
  EXPECT_TRUE(c.saturated);
  EXPECT_DOUBLE_EQ(c.log2_value, 99.0);
}

TEST(Counting, IntervalCountMatchesEnumeration) {
  // A single-node hierarchy (the root is the only resource) over T slices
  // only admits order-consistent partitions: the enumeration must find
  // exactly 2^(T-1).
  const Hierarchy h = make_balanced_hierarchy(0, 2);
  for (const std::int32_t slices : {2, 3, 4, 5}) {
    const auto all = enumerate_partitions(h, slices);
    EXPECT_EQ(all.size(), count_interval_partitions(slices).exact)
        << "T=" << slices;
  }
}

TEST(Counting, WrapperRootTriplesChoicesPerBlock) {
  // A root wrapping one leaf offers, per temporal block, the choice of
  // drawing it at the root or at the leaf level: 2 * 3^(T-1) partitions.
  const Hierarchy h = make_flat_hierarchy(1);
  std::size_t expected = 2;
  for (const std::int32_t slices : {1, 2, 3, 4}) {
    EXPECT_EQ(enumerate_partitions(h, slices).size(), expected)
        << "T=" << slices;
    expected *= 3;
  }
}

TEST(Counting, HierarchyCountFollowsRecurrence) {
  // f(leaf) = 1, f(node) = 1 + prod f(children).
  // Flat hierarchy of n leaves: f(root) = 2 (all leaves, or the root).
  EXPECT_EQ(count_hierarchy_partitions(make_flat_hierarchy(5)).exact, 2u);
  // Binary, 2 levels: f(mid) = 2, f(root) = 1 + 2*2 = 5.
  EXPECT_EQ(count_hierarchy_partitions(make_balanced_hierarchy(2, 2)).exact,
            5u);
  // 3 levels: f = 1 + 5*5 = 26.
  EXPECT_EQ(count_hierarchy_partitions(make_balanced_hierarchy(3, 2)).exact,
            26u);
  // Single leaf: 1.
  EXPECT_EQ(count_hierarchy_partitions(make_balanced_hierarchy(0, 2)).exact,
            1u);
}

TEST(Counting, BinaryGrowthBaseApproachesPaperConstant) {
  // The paper: |H(S)| = Theta(c^|S|) with c ~ 1.229 for complete binary
  // trees.  The per-leaf base converges from below.
  const double base = binary_tree_growth_base(16);
  EXPECT_GT(base, 1.22);
  EXPECT_LT(base, 1.23);
}

TEST(Counting, SpatiotemporalEnumerationOnTinyGrid) {
  // Hand-enumerated: flat 2-leaf hierarchy x 2 slices has exactly 8
  // hierarchy-and-order-consistent partitions (see the derivation in the
  // test comment history / EXPERIMENTS.md).
  const Hierarchy h = make_flat_hierarchy(2);
  EXPECT_EQ(enumerate_partitions(h, 2).size(), 8u);
}

TEST(Counting, DpCellsArePolynomial) {
  const Hierarchy h = make_balanced_hierarchy(3, 2);  // 15 nodes
  EXPECT_EQ(count_dp_cells(h, 30), 15u * (30u * 31u / 2u));
  // The contrast the paper draws: exponential search space, polynomial DP.
  const auto space = count_hierarchy_partitions(h);
  EXPECT_LT(space.exact, count_dp_cells(h, 30));  // tiny tree: still close
  const Hierarchy big = make_balanced_hierarchy(8, 2);
  EXPECT_GT(count_hierarchy_partitions(big).log2_value,
            std::log2(static_cast<double>(count_dp_cells(big, 30))));
}

// --- compare_runs ----------------------------------------------------------

class CompareRunsTest : public ::testing::Test {
 protected:
  struct Run {
    GeneratedScenario scenario;
    MicroscopicModel model;
    std::optional<SpatiotemporalAggregator> agg;
    AggregationResult result;
  };

  static Run make_run(std::int32_t perturbed, std::uint64_t seed) {
    Run run{generate_scenario(scenario_a(), 1.0 / 128.0, 42), {}, {}, {}};
    CgWorkloadOptions opt;
    opt.event_scale = 1.0 / 128.0;
    opt.perturbed_processes = perturbed;
    opt.seed = seed;
    Trace trace = generate_cg_trace(*run.scenario.hierarchy, opt);
    trace.set_window(0, seconds(9.5));
    run.scenario.trace = std::move(trace);
    run.model = build_model(run.scenario.trace, *run.scenario.hierarchy,
                            {.slice_count = 30});
    run.agg.emplace(run.model);
    run.result = run.agg->run(0.1);
    return run;
  }
};

TEST_F(CompareRunsTest, IdenticalRunsAgreeFully) {
  const Run a = make_run(0, 7);
  const RunComparison c =
      compare_runs(a.agg->cube(), a.result, a.agg->cube(), a.result);
  EXPECT_TRUE(c.structure.identical());
  EXPECT_DOUBLE_EQ(c.mode_agreement, 1.0);
  EXPECT_TRUE(c.divergent_boundaries.empty());
  EXPECT_TRUE(c.changed_rows.empty());
}

TEST_F(CompareRunsTest, PerturbedVsCleanLocalizesTheAnomaly) {
  const Run clean = make_run(0, 7);
  const Run dirty = make_run(26, 7);
  const RunComparison c = compare_runs(clean.agg->cube(), clean.result,
                                       dirty.agg->cube(), dirty.result);
  // The perturbation touches 26 of 64 rows; the comparison must flag a
  // nontrivial but bounded set of rows and keep most modes identical.
  EXPECT_GE(c.changed_rows.size(), 20u);
  EXPECT_LE(c.changed_rows.size(), 48u);
  EXPECT_GT(c.mode_agreement, 0.85);
  EXPECT_FALSE(c.structure.identical());
}

TEST_F(CompareRunsTest, DifferentSeedsMoveThePerturbation) {
  // §V-A: the anomaly "never [appears] at the same moment in the trace" —
  // with different seeds the perturbation window shifts, so comparing two
  // perturbed runs still shows structural differences near 3 s.
  const Run s1 = make_run(26, 1);
  const Run s2 = make_run(26, 2);
  const RunComparison c =
      compare_runs(s1.agg->cube(), s1.result, s2.agg->cube(), s2.result);
  EXPECT_FALSE(c.changed_rows.empty());
}

TEST_F(CompareRunsTest, DimensionMismatchThrows) {
  const Run a = make_run(0, 7);
  GeneratedScenario other = generate_scenario(scenario_a(), 1.0 / 128.0);
  const MicroscopicModel model =
      build_model(other.trace, *other.hierarchy, {.slice_count = 15});
  SpatiotemporalAggregator agg(model);
  const auto r = agg.run(0.1);
  EXPECT_THROW(
      (void)compare_runs(a.agg->cube(), a.result, agg.cube(), r),
      DimensionError);
}

TEST_F(CompareRunsTest, FormatSummarizes) {
  const Run clean = make_run(0, 7);
  const Run dirty = make_run(26, 7);
  const RunComparison c = compare_runs(clean.agg->cube(), clean.result,
                                       dirty.agg->cube(), dirty.result);
  const std::string s = format_comparison(c);
  EXPECT_NE(s.find("mode agreement"), std::string::npos);
  EXPECT_NE(s.find("changed rows"), std::string::npos);
}

}  // namespace
}  // namespace stagg
