// Stream-decode suite: the resumable record decoders behind the readers
// and the pipeline's parse workers.  Feeding a stream in chunks of ANY
// size — including one byte at a time, splitting lines and binary records
// mid-way — must produce exactly the records, stats and errors of a
// whole-buffer decode, and shard splitting must cover the text exactly
// once on line boundaries.
#include "trace/stream_decode.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace stagg {
namespace {

struct Collected {
  std::vector<std::string> resources;
  std::vector<std::string> states;
  std::vector<TimeNs> begins;
  std::vector<TimeNs> ends;

  bool operator==(const Collected&) const = default;
};

Collected decode_chunked(TextTraceFormat format, const std::string& text,
                         std::size_t chunk,
                         TextDecodeStats* stats = nullptr) {
  Collected got;
  TextTraceDecoder decoder(format, "<t>");
  const DecodedTextSink sink = [&got](const DecodedTextRecord& rec) {
    got.resources.emplace_back(rec.resource);
    got.states.emplace_back(rec.state);
    got.begins.push_back(rec.begin);
    got.ends.push_back(rec.end);
  };
  for (std::size_t i = 0; i < text.size(); i += chunk) {
    decoder.feed(std::string_view(text).substr(i, chunk), sink);
  }
  decoder.finish(sink);
  if (stats != nullptr) *stats = decoder.stats();
  return got;
}

const std::string kCsvText =
    "# stagg CSV state trace\n"
    "# window,0,9000\n"
    "STATE,node0,compute,0,1500\n"
    "STATE,node1,send,100,400\n"
    "\n"
    "STATE,node0,wait,1500,9000\n";  // no trailing newline handled below

TEST(TextTraceDecoder, EveryChunkSizeMatchesWholeBufferCsv) {
  TextDecodeStats whole_stats;
  const Collected whole =
      decode_chunked(TextTraceFormat::kCsv, kCsvText, kCsvText.size(),
                     &whole_stats);
  ASSERT_EQ(whole.resources.size(), 3u);
  EXPECT_EQ(whole_stats.records, 3u);
  EXPECT_EQ(whole_stats.comment_lines, 2u);
  for (std::size_t chunk = 1; chunk <= kCsvText.size(); ++chunk) {
    TextDecodeStats stats;
    const Collected got =
        decode_chunked(TextTraceFormat::kCsv, kCsvText, chunk, &stats);
    EXPECT_EQ(got, whole) << "chunk size " << chunk;
    EXPECT_EQ(stats.records, whole_stats.records) << "chunk size " << chunk;
    EXPECT_EQ(stats.comment_lines, whole_stats.comment_lines);
  }
}

TEST(TextTraceDecoder, UnterminatedLastLineNeedsFinish) {
  const std::string text = "STATE,n,s,0,5";  // no trailing newline
  Collected got;
  TextTraceDecoder decoder(TextTraceFormat::kCsv, "<t>");
  const DecodedTextSink sink = [&got](const DecodedTextRecord& rec) {
    got.resources.emplace_back(rec.resource);
  };
  decoder.feed(text, sink);
  EXPECT_TRUE(got.resources.empty()) << "partial line must wait for finish";
  decoder.finish(sink);
  ASSERT_EQ(got.resources.size(), 1u);
  EXPECT_EQ(got.resources[0], "n");
}

TEST(TextTraceDecoder, WindowCommentSurvivesChunkSplit) {
  for (std::size_t chunk = 1; chunk <= 8; ++chunk) {
    TextTraceDecoder decoder(TextTraceFormat::kCsv, "<t>");
    const DecodedTextSink sink = [](const DecodedTextRecord&) {};
    const std::string text = "# window,-250,7750\n";
    for (std::size_t i = 0; i < text.size(); i += chunk) {
      decoder.feed(std::string_view(text).substr(i, chunk), sink);
    }
    decoder.finish(sink);
    ASSERT_TRUE(decoder.has_window()) << "chunk size " << chunk;
    EXPECT_EQ(decoder.window_begin(), -250);
    EXPECT_EQ(decoder.window_end(), 7750);
  }
}

TEST(TextTraceDecoder, ErrorLineNumbersCountAcrossChunkBoundaries) {
  // The bad record sits on line 3; split the text so the line itself
  // straddles a feed boundary — the error must still name line 3.
  const std::string text =
      "STATE,n,s,0,5\n"
      "STATE,n,s,5,9\n"
      "STATE,n,s,9\n";  // 4 fields: malformed
  for (std::size_t chunk = 1; chunk <= text.size(); ++chunk) {
    TextTraceDecoder decoder(TextTraceFormat::kCsv, "<t>");
    const DecodedTextSink sink = [](const DecodedTextRecord&) {};
    try {
      for (std::size_t i = 0; i < text.size(); i += chunk) {
        decoder.feed(std::string_view(text).substr(i, chunk), sink);
      }
      decoder.finish(sink);
      FAIL() << "malformed record must throw (chunk " << chunk << ")";
    } catch (const TraceFormatError& e) {
      EXPECT_NE(std::string(e.what()).find("<t>:3"), std::string::npos)
          << "chunk size " << chunk << ": " << e.what();
    }
  }
}

TEST(TextTraceDecoder, PajeChunkedMatchesWholeBuffer) {
  const std::string text =
      "%EventDef PajeSetState\n"
      "# a comment\n"
      "\n"
      "Link, root, a, 0.1, 0.2, 0.1, x, y\n"
      "State, node0, STATE, 0.000000001, 1.5, 1.499999999, 0, compute\n"
      "State, node1, STATE, 0.25, 0.5, 0.25, 0, send\n";
  TextDecodeStats whole_stats;
  const Collected whole = decode_chunked(TextTraceFormat::kPaje, text,
                                         text.size(), &whole_stats);
  ASSERT_EQ(whole.resources.size(), 2u);
  EXPECT_EQ(whole_stats.records, 2u);
  EXPECT_EQ(whole_stats.skipped_records, 1u);   // the Link line
  EXPECT_EQ(whole_stats.comment_lines, 3u);     // %, #, blank
  EXPECT_EQ(whole.begins[0], 1);                // 1e-9 s rounds to 1 ns
  EXPECT_EQ(whole.ends[0], 1500000000);
  for (std::size_t chunk = 1; chunk < text.size(); chunk += 3) {
    TextDecodeStats stats;
    const Collected got =
        decode_chunked(TextTraceFormat::kPaje, text, chunk, &stats);
    EXPECT_EQ(got, whole) << "chunk size " << chunk;
    EXPECT_EQ(stats.records, whole_stats.records);
    EXPECT_EQ(stats.skipped_records, whole_stats.skipped_records);
    EXPECT_EQ(stats.comment_lines, whole_stats.comment_lines);
  }
}

TEST(SplitTextShards, CoversTextExactlyOnceOnLineBoundaries) {
  std::string text;
  for (int i = 0; i < 37; ++i) {
    text += "STATE,n" + std::to_string(i % 5) + ",s," + std::to_string(i) +
            "," + std::to_string(i + 1) + "\n";
  }
  for (std::size_t shards = 1; shards <= 8; ++shards) {
    const auto pieces = split_text_shards(text, shards);
    ASSERT_LE(pieces.size(), shards);
    ASSERT_GE(pieces.size(), 1u);
    std::string rejoined;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      if (i + 1 < pieces.size()) {
        ASSERT_FALSE(pieces[i].empty());
        EXPECT_EQ(pieces[i].back(), '\n')
            << "interior shards must end on a line boundary";
      }
      rejoined.append(pieces[i]);
    }
    EXPECT_EQ(rejoined, text) << shards << " shards must cover exactly once";
  }
  EXPECT_TRUE(split_text_shards("", 4).empty());
  const auto one = split_text_shards("no newline at all", 4);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], "no newline at all");
}

// --- STGT binary records -------------------------------------------------

std::vector<std::uint8_t> encode_records(
    const std::vector<StgtRecord>& records) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(records.size() * StgtRecordDecoder::kRecordBytes);
  for (const StgtRecord& rec : records) {
    const auto r = static_cast<std::uint32_t>(rec.resource);
    const auto x = static_cast<std::uint32_t>(rec.interval.state);
    std::uint8_t buf[StgtRecordDecoder::kRecordBytes];
    std::memcpy(buf, &r, 4);
    std::memcpy(buf + 4, &x, 4);
    std::memcpy(buf + 8, &rec.interval.begin, 8);
    std::memcpy(buf + 16, &rec.interval.end, 8);
    bytes.insert(bytes.end(), buf, buf + sizeof buf);
  }
  return bytes;
}

std::vector<StgtRecord> sample_records() {
  std::vector<StgtRecord> records;
  for (int i = 0; i < 9; ++i) {
    records.push_back(StgtRecord{static_cast<ResourceId>(i % 3),
                                 StateInterval{i * 10, i * 10 + 7,
                                               static_cast<StateId>(i % 2)}});
  }
  return records;
}

TEST(StgtRecordDecoder, AnySliceSizeMatchesWholeBuffer) {
  const auto want = sample_records();
  const auto bytes = encode_records(want);
  for (std::size_t chunk = 1; chunk <= bytes.size(); ++chunk) {
    std::vector<StgtRecord> got;
    StgtRecordDecoder decoder(3, 2, "<t>");
    const StgtRecordSink sink = [&got](const StgtRecord& r) {
      got.push_back(r);
    };
    for (std::size_t i = 0; i < bytes.size(); i += chunk) {
      const std::size_t n = std::min(chunk, bytes.size() - i);
      decoder.feed({bytes.data() + i, n}, sink);
    }
    decoder.finish();
    ASSERT_EQ(got.size(), want.size()) << "chunk size " << chunk;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].resource, want[i].resource);
      EXPECT_EQ(got[i].interval.begin, want[i].interval.begin);
      EXPECT_EQ(got[i].interval.end, want[i].interval.end);
      EXPECT_EQ(got[i].interval.state, want[i].interval.state);
    }
    EXPECT_EQ(decoder.records_decoded(), want.size());
  }
}

TEST(StgtRecordDecoder, TruncatedStreamFailsAtFinish) {
  const auto bytes = encode_records(sample_records());
  StgtRecordDecoder decoder(3, 2, "<t>");
  const StgtRecordSink sink = [](const StgtRecord&) {};
  decoder.feed({bytes.data(), bytes.size() - 5}, sink);
  EXPECT_THROW(decoder.finish(), TraceFormatError);
}

TEST(StgtRecordDecoder, UnknownIdsNameTheExactOffset) {
  auto records = sample_records();
  records[4].resource = 99;  // out of range (3 resources)
  const auto bytes = encode_records(records);
  StgtRecordDecoder decoder(3, 2, "<t>", /*base_offset=*/1000);
  const StgtRecordSink sink = [](const StgtRecord&) {};
  try {
    decoder.feed({bytes.data(), bytes.size()}, sink);
    FAIL() << "unknown resource id must throw";
  } catch (const TraceFormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown resource"), std::string::npos) << what;
    // Record 4 starts at base 1000 + 4 * 24 = 1096.
    EXPECT_NE(what.find("offset 1096"), std::string::npos) << what;
  }
}

TEST(StgtRecordDecoder, EndBeforeBeginRejected) {
  std::vector<StgtRecord> records = {
      StgtRecord{0, StateInterval{50, 10, 0}}};
  const auto bytes = encode_records(records);
  StgtRecordDecoder decoder(1, 1, "<t>");
  const StgtRecordSink sink = [](const StgtRecord&) {};
  EXPECT_THROW(decoder.feed({bytes.data(), bytes.size()}, sink),
               TraceFormatError);
}

}  // namespace
}  // namespace stagg
