#include "trace/trace_stats.hpp"

#include <gtest/gtest.h>

namespace stagg {
namespace {

Trace make_sample() {
  Trace t;
  const ResourceId r0 = t.add_resource("r0");
  const ResourceId r1 = t.add_resource("r1");
  t.add_state(r0, "send", 0, seconds(2.0));
  t.add_state(r0, "wait", seconds(2.0), seconds(3.0));
  t.add_state(r1, "send", 0, seconds(1.0));
  return t;
}

TEST(TraceStats, Counts) {
  Trace t = make_sample();
  const TraceStats st = compute_stats(t);
  EXPECT_EQ(st.state_count, 3u);
  EXPECT_EQ(st.event_count, 6u);
  EXPECT_EQ(st.resource_count, 2u);
  EXPECT_DOUBLE_EQ(st.mean_states_per_resource, 1.5);
  EXPECT_EQ(st.busy_time, seconds(4.0));
}

TEST(TraceStats, PerStateSortedByDuration) {
  Trace t = make_sample();
  const TraceStats st = compute_stats(t);
  ASSERT_EQ(st.per_state.size(), 2u);
  EXPECT_EQ(st.per_state[0].name, "send");  // 3 s total beats 1 s
  EXPECT_EQ(st.per_state[0].occurrences, 2u);
  EXPECT_NEAR(st.per_state[0].fraction_of_busy_time, 0.75, 1e-12);
  EXPECT_EQ(st.per_state[1].name, "wait");
}

TEST(TraceStats, DurationVectors) {
  Trace t = make_sample();
  t.seal();
  const auto vecs = state_duration_vectors(t);
  ASSERT_EQ(vecs.size(), 2u);
  const StateId send = *t.states().find("send");
  const StateId wait = *t.states().find("wait");
  EXPECT_DOUBLE_EQ(vecs[0][static_cast<std::size_t>(send)], 2.0);
  EXPECT_DOUBLE_EQ(vecs[0][static_cast<std::size_t>(wait)], 1.0);
  EXPECT_DOUBLE_EQ(vecs[1][static_cast<std::size_t>(send)], 1.0);
  EXPECT_DOUBLE_EQ(vecs[1][static_cast<std::size_t>(wait)], 0.0);
}

TEST(TraceStats, FormatContainsHeadlineNumbers) {
  Trace t = make_sample();
  const TraceStats st = compute_stats(t);
  const std::string s = format_stats(st);
  EXPECT_NE(s.find("resources:  2"), std::string::npos);
  EXPECT_NE(s.find("send"), std::string::npos);
}

TEST(TraceStats, EmptyTrace) {
  Trace t;
  const TraceStats st = compute_stats(t);
  EXPECT_EQ(st.state_count, 0u);
  EXPECT_EQ(st.busy_time, 0);
  EXPECT_EQ(st.mean_states_per_resource, 0.0);
}

}  // namespace
}  // namespace stagg
