// Randomized scalar-vs-SIMD equivalence of the kernel layer.
//
// Contract under test (common/simd.hpp): the scalar family simd::sc is
// the oracle, and every active wrapper op must be bit-identical to it on
// arbitrary bit patterns — including NaN/inf/denormal doubles and the
// int64/int32 range limits — at misaligned loads.  On a scalar-forced
// build the active types alias simd::sc and the wrapper suites pass by
// construction, which is exactly the point: the same binary contract
// holds at every dispatch level.
//
// On top of the wrappers, the three vectorized consumers are pinned to
// their scalar twins at odd sizes/tails:
//   * DataCube::measures_column_into vs measures_column_reference_into,
//   * the DP fold with AggregationOptions::use_simd on vs off vs the
//     kReference kernel at every lane width 1..8,
//   * the trace/codec_kernels.hpp pre-pass vs codec::ref, plus full
//     encode_columns round-trips at sizes straddling the vector width.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/aggregator.hpp"
#include "core/cube.hpp"
#include "trace/codec_kernels.hpp"
#include "trace/compression.hpp"
#include "workload/fixtures.hpp"

namespace stagg {
namespace {

/// Deterministic raw-bit stream; biased toward special values so NaN,
/// infinities, zeros and range limits show up in every run.
class BitFuzzer {
 public:
  explicit BitFuzzer(std::uint64_t seed) : mix_(seed) {}

  std::uint64_t u64() {
    const std::uint64_t r = mix_.next();
    switch (r & 15u) {
      case 0: return 0;
      case 1: return ~std::uint64_t{0};
      case 2: return std::uint64_t{1} << 63;  // int64 min / -0.0
      case 3: return 0x7FF8000000000000ull;   // quiet NaN
      case 4: return 0x7FF0000000000000ull;   // +inf
      case 5: return 1;                       // denormal / tiny int
      default: return mix_.next();
    }
  }
  double f64() {
    std::uint64_t bits = u64();
    double d;
    std::memcpy(&d, &bits, sizeof d);
    return d;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u64()); }

 private:
  SplitMix64 mix_;
};

template <typename T>
bool bytes_equal(const T& a, const T& b) {
  return std::memcmp(&a, &b, sizeof(T)) == 0;
}

/// Per-lane bitwise equality, except that any NaN matches any NaN: when
/// both operands of a multiply are NaNs, IEEE-754 leaves *which* payload
/// propagates unspecified, and the optimizer is free to commute the
/// scalar expression — so payload identity is not part of the contract.
/// Everything else (±0, infinities, denormals) still compares bitwise.
bool f64_lanes_equal(const double (&a)[4], const double (&b)[4]) {
  for (int i = 0; i < 4; ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) == 0) continue;
    if (std::isnan(a[i]) && std::isnan(b[i])) continue;
    return false;
  }
  return true;
}

constexpr int kTrials = 500;

TEST(SimdWrappers, F64x4MatchesScalarTwin) {
  BitFuzzer fz(0xF64);
  for (int trial = 0; trial < kTrials; ++trial) {
    // Misaligned source: loads start anywhere inside an 11-double pad.
    double buf[11];
    for (double& d : buf) d = fz.f64();
    const std::size_t off_a = trial % 4;
    const std::size_t off_b = (trial / 4) % 4;
    const simd::f64x4 a = simd::f64x4::load(buf + off_a);
    const simd::f64x4 b = simd::f64x4::load(buf + off_b + 4);
    const simd::sc::f64x4 sa = simd::sc::f64x4::load(buf + off_a);
    const simd::sc::f64x4 sb = simd::sc::f64x4::load(buf + off_b + 4);

    double got[4];
    double want[4];
    (a + b).store(got);
    (sa + sb).store(want);
    EXPECT_TRUE(f64_lanes_equal(got, want)) << "+ trial " << trial;
    (a - b).store(got);
    (sa - sb).store(want);
    EXPECT_TRUE(f64_lanes_equal(got, want)) << "- trial " << trial;
    (a * b).store(got);
    (sa * sb).store(want);
    EXPECT_TRUE(f64_lanes_equal(got, want)) << "* trial " << trial;
    (a / b).store(got);
    (sa / sb).store(want);
    EXPECT_TRUE(f64_lanes_equal(got, want)) << "/ trial " << trial;
    EXPECT_EQ(a.ge_mask(b), sa.ge_mask(sb)) << "ge trial " << trial;

    const simd::f64x4 c = simd::f64x4::broadcast(buf[0]);
    const simd::sc::f64x4 sc_c = simd::sc::f64x4::broadcast(buf[0]);
    c.store(got);
    sc_c.store(want);
    EXPECT_TRUE(f64_lanes_equal(got, want)) << "broadcast trial " << trial;
  }
}

TEST(SimdWrappers, I64x4MatchesScalarTwin) {
  BitFuzzer fz(0x164);
  for (int trial = 0; trial < kTrials; ++trial) {
    std::uint64_t buf[11];
    for (std::uint64_t& u : buf) u = fz.u64();
    const std::size_t off = trial % 4;
    const simd::i64x4 a = simd::i64x4::load(buf + off);
    const simd::i64x4 b = simd::i64x4::load(buf + off + 4);
    const simd::sc::i64x4 sa = simd::sc::i64x4::load(buf + off);
    const simd::sc::i64x4 sb = simd::sc::i64x4::load(buf + off + 4);

    std::uint64_t got[4];
    std::uint64_t want[4];
    (a + b).store(got);
    (sa + sb).store(want);
    EXPECT_TRUE(bytes_equal(got, want)) << "+ trial " << trial;
    (a - b).store(got);
    (sa - sb).store(want);
    EXPECT_TRUE(bytes_equal(got, want)) << "- trial " << trial;
    (a ^ b).store(got);
    (sa ^ sb).store(want);
    EXPECT_TRUE(bytes_equal(got, want)) << "^ trial " << trial;
    a.shl<1>().store(got);
    sa.shl<1>().store(want);
    EXPECT_TRUE(bytes_equal(got, want)) << "shl trial " << trial;
    a.shr<7>().store(got);
    sa.shr<7>().store(want);
    EXPECT_TRUE(bytes_equal(got, want)) << "shr trial " << trial;
    a.sign_mask().store(got);
    sa.sign_mask().store(want);
    EXPECT_TRUE(bytes_equal(got, want)) << "sign trial " << trial;
    a.min_s(b).store(got);
    sa.min_s(sb).store(want);
    EXPECT_TRUE(bytes_equal(got, want)) << "min trial " << trial;
    a.max_s(b).store(got);
    sa.max_s(sb).store(want);
    EXPECT_TRUE(bytes_equal(got, want)) << "max trial " << trial;
    EXPECT_EQ(a.eq_mask(b), sa.eq_mask(sb)) << "eq trial " << trial;
  }
}

TEST(SimdWrappers, I32x4AndI32x8MatchScalarTwins) {
  BitFuzzer fz(0x132);
  for (int trial = 0; trial < kTrials; ++trial) {
    std::int32_t buf[19];
    for (std::int32_t& v : buf) v = fz.i32();
    const std::size_t off = trial % 3;

    std::int32_t got4[4];
    std::int32_t want4[4];
    (simd::i32x4::load(buf + off) + simd::i32x4::load(buf + off + 4))
        .store(got4);
    (simd::sc::i32x4::load(buf + off) + simd::sc::i32x4::load(buf + off + 4))
        .store(want4);
    EXPECT_TRUE(bytes_equal(got4, want4)) << "i32x4 + trial " << trial;

    const simd::i32x8 a = simd::i32x8::load(buf + off);
    const simd::i32x8 b = simd::i32x8::load(buf + off + 8);
    const simd::sc::i32x8 sa = simd::sc::i32x8::load(buf + off);
    const simd::sc::i32x8 sb = simd::sc::i32x8::load(buf + off + 8);
    std::int32_t got8[8];
    std::int32_t want8[8];
    (a + b).store(got8);
    (sa + sb).store(want8);
    EXPECT_TRUE(bytes_equal(got8, want8)) << "i32x8 + trial " << trial;
    (a - b).store(got8);
    (sa - sb).store(want8);
    EXPECT_TRUE(bytes_equal(got8, want8)) << "i32x8 - trial " << trial;
    a.gt_mask(b).store(got8);
    sa.gt_mask(sb).store(want8);
    EXPECT_TRUE(bytes_equal(got8, want8)) << "i32x8 gt trial " << trial;
    EXPECT_EQ(a.eq_mask(b), sa.eq_mask(sb)) << "i32x8 eq trial " << trial;
  }
}

TEST(SimdWrappers, U8x32MatchesScalarTwin) {
  BitFuzzer fz(0x832);
  for (int trial = 0; trial < kTrials; ++trial) {
    std::uint8_t buf[67];
    for (std::uint8_t& v : buf) {
      // Narrow domain so equal byte pairs are common.
      v = static_cast<std::uint8_t>(fz.u64() & 3u);
    }
    const std::size_t off = trial % 3;
    const simd::u8x32 a = simd::u8x32::load(buf + off);
    const simd::u8x32 b = simd::u8x32::load(buf + off + 32);
    const simd::sc::u8x32 sa = simd::sc::u8x32::load(buf + off);
    const simd::sc::u8x32 sb = simd::sc::u8x32::load(buf + off + 32);
    EXPECT_EQ(a.eq_mask(b), sa.eq_mask(sb)) << "trial " << trial;
  }
}

TEST(SimdWrappers, AlignedVecIs64ByteAligned) {
  simd::AlignedVec<double> d(3);
  simd::AlignedVec<std::int32_t> i(5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(i.data()) % 64, 0u);
}

// --- Cube column kernel ----------------------------------------------------

TEST(SimdKernels, CubeColumnKernelMatchesReferenceTwin) {
  // |X| values straddling the f64x4 width: tails of 0..3 states.
  for (const std::int32_t states : {1, 3, 4, 5, 8, 17}) {
    const OwnedModel om = make_random_model({.levels = 2,
                                             .fanout = 3,
                                             .slices = 9,
                                             .states = states,
                                             .idle_fraction = 0.2,
                                             .seed = 1234u + states});
    const DataCube cube(om.model);
    const auto nodes = static_cast<NodeId>(om.hierarchy->node_count());
    std::vector<AreaMeasures> fast;
    std::vector<AreaMeasures> ref;
    for (NodeId node = 0; node < nodes; ++node) {
      for (SliceId j = 0; j < 9; ++j) {
        fast.assign(static_cast<std::size_t>(j) + 1, AreaMeasures{});
        ref.assign(static_cast<std::size_t>(j) + 1, AreaMeasures{});
        cube.measures_column_into(node, j, fast);
        cube.measures_column_reference_into(node, j, ref);
        for (SliceId i = 0; i <= j; ++i) {
          const auto k = static_cast<std::size_t>(i);
          EXPECT_EQ(fast[k].gain, ref[k].gain)
              << "|X|=" << states << " node " << node << " cell (" << i
              << ", " << j << ")";
          EXPECT_EQ(fast[k].loss, ref[k].loss)
              << "|X|=" << states << " node " << node << " cell (" << i
              << ", " << j << ")";
        }
      }
    }
  }
}

// --- DP fold ---------------------------------------------------------------

TEST(SimdKernels, DpFoldSimdOnOffAndReferenceAgreeAtEveryLaneWidth) {
  const OwnedModel om = make_random_model({.levels = 2,
                                           .fanout = 3,
                                           .slices = 11,
                                           .states = 5,
                                           .idle_fraction = 0.15,
                                           .seed = 4242});
  const std::vector<double> all_ps = {0.0, 0.1, 0.3, 0.45, 0.5,
                                      0.6, 0.75, 0.9};
  AggregationOptions ref_opt;
  ref_opt.kernel = DpKernel::kReference;
  SpatiotemporalAggregator ref_agg(om.model, ref_opt);
  const std::vector<AggregationResult> want = ref_agg.run_many(all_ps);

  for (std::size_t width = 1; width <= 8; ++width) {
    for (const bool use_simd : {true, false}) {
      AggregationOptions opt;
      opt.max_lanes = width;
      opt.use_simd = use_simd;
      SpatiotemporalAggregator agg(om.model, opt);
      const std::vector<AggregationResult> got = agg.run_many(all_ps);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t k = 0; k < got.size(); ++k) {
        EXPECT_EQ(got[k].optimal_pic, want[k].optimal_pic)
            << "W=" << width << " simd=" << use_simd << " p=" << all_ps[k];
        EXPECT_EQ(got[k].partition.signature(), want[k].partition.signature())
            << "W=" << width << " simd=" << use_simd << " p=" << all_ps[k];
        EXPECT_EQ(got[k].measures.gain, want[k].measures.gain);
        EXPECT_EQ(got[k].measures.loss, want[k].measures.loss);
      }
    }
  }
}

// --- Codec kernels ---------------------------------------------------------

TEST(SimdKernels, CodecKernelsMatchReferenceTwinsAtOddSizes) {
  BitFuzzer fz(0xC0DE);
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 31u, 64u,
                              65u, 127u}) {
    std::vector<std::int64_t> a(n);
    std::vector<std::int64_t> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<std::int64_t>(fz.u64());
      b[i] = static_cast<std::int64_t>(fz.u64());
    }
    std::vector<std::uint64_t> got(n);
    std::vector<std::uint64_t> want(n);

    codec::sub_columns(a.data(), b.data(), n, got.data());
    codec::ref::sub_columns(a.data(), b.data(), n, want.data());
    EXPECT_EQ(got, want) << "sub n=" << n;

    codec::delta_column(a.data(), n, got.data());
    codec::ref::delta_column(a.data(), n, want.data());
    EXPECT_EQ(got, want) << "delta n=" << n;

    // Second-order pass: delta over the delta stream, then zigzag.
    std::vector<std::uint64_t> src = want;
    codec::delta_u64(src.data(), n, got.data());
    codec::ref::delta_u64(src.data(), n, want.data());
    EXPECT_EQ(got, want) << "delta_u64 n=" << n;

    codec::zigzag_u64(got.data(), n);
    codec::ref::zigzag_u64(want.data(), n);
    EXPECT_EQ(got, want) << "zigzag n=" << n;

    EXPECT_EQ(codec::all_equal_u64(want.data(), n),
              codec::ref::all_equal_u64(want.data(), n));
    std::vector<std::uint64_t> same(n, 0xABCDu);
    EXPECT_TRUE(codec::all_equal_u64(same.data(), n));

    std::int64_t lo_got = 0;
    std::int64_t hi_got = 0;
    std::int64_t lo_want = 0;
    std::int64_t hi_want = 0;
    codec::minmax_i64(a.data(), n, lo_got, hi_got);
    codec::ref::minmax_i64(a.data(), n, lo_want, hi_want);
    EXPECT_EQ(lo_got, lo_want) << "min n=" << n;
    EXPECT_EQ(hi_got, hi_want) << "max n=" << n;
  }
}

TEST(SimdKernels, DictIndicesMatchLowerBoundAcrossDictSizes) {
  BitFuzzer fz(0xD1C7);
  // Both sides of the counting-compare cutoff, including exactly at it.
  for (const std::size_t dict_size :
       {1u, 2u, 7u, 63u, 64u, 65u, 200u}) {
    std::vector<std::int32_t> dict(dict_size);
    std::int32_t v = -500;
    for (std::size_t d = 0; d < dict_size; ++d) {
      v += 1 + static_cast<std::int32_t>(fz.u64() % 17u);
      dict[d] = v;
    }
    const std::size_t n = 203;  // odd: 8-wide blocks + a 3-element tail
    std::vector<std::int32_t> vals(n);
    for (std::size_t i = 0; i < n; ++i) {
      vals[i] = dict[fz.u64() % dict_size];
    }
    std::vector<std::int32_t> got(n);
    std::vector<std::int32_t> want(n);
    codec::dict_indices(vals.data(), n, dict.data(), dict_size, got.data());
    codec::ref::dict_indices(vals.data(), n, dict.data(), dict_size,
                             want.data());
    EXPECT_EQ(got, want) << "dict_size=" << dict_size;
  }
}

TEST(SimdKernels, EncodeColumnsRoundTripsAtVectorBoundarySizes) {
  // Sizes straddling every vector width the pre-pass uses (4-wide u64,
  // 8-wide i32) — tails, exact blocks, and n = 1.
  Rng rng(99);
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u,
                              17u, 33u, 100u}) {
    std::vector<TimeNs> begins(n);
    std::vector<TimeNs> ends(n);
    std::vector<StateId> states(n);
    TimeNs t = 1000;
    for (std::size_t i = 0; i < n; ++i) {
      t += rng.uniform_int(0, 500);
      begins[i] = t;
      ends[i] = t + rng.uniform_int(1, 900);
      states[i] = static_cast<StateId>(rng.uniform_int(0, 40));
    }
    const EncodedColumns enc = encode_columns(begins, ends, states);
    ColumnsDecoder dec(enc.coding());
    StateInterval s{};
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(dec.next(s)) << "n=" << n << " i=" << i;
      EXPECT_EQ(s.begin, begins[i]) << "n=" << n << " i=" << i;
      EXPECT_EQ(s.end, ends[i]) << "n=" << n << " i=" << i;
      EXPECT_EQ(s.state, states[i]) << "n=" << n << " i=" << i;
    }
    EXPECT_FALSE(dec.next(s)) << "n=" << n;
  }
}

}  // namespace
}  // namespace stagg
