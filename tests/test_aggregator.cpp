#include "core/aggregator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math.hpp"
#include "core/baselines.hpp"
#include "workload/fixtures.hpp"

namespace stagg {
namespace {

TEST(Aggregator, RejectsOutOfRangeP) {
  const OwnedModel om = make_tiny_model();
  SpatiotemporalAggregator agg(om.model);
  EXPECT_THROW((void)agg.run(-0.1), InvalidArgument);
  EXPECT_THROW((void)agg.run(1.1), InvalidArgument);
}

TEST(Aggregator, MemoryBudgetEnforced) {
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 4, .slices = 32, .states = 2, .seed = 1});
  AggregationOptions opt;
  opt.memory_budget_bytes = 16;  // absurdly small
  SpatiotemporalAggregator agg(om.model, opt);
  EXPECT_THROW((void)agg.run(0.5), BudgetError);
}

TEST(Aggregator, EstimateBytesMatchesTriangularCells) {
  // 10 nodes x tri(8) = 36 cells x (pIC 8 + pIC mirror 8 + count mirror 4 +
  // cut 4 + count 4 + cached (gain, loss) 16) = 44 bytes.
  EXPECT_EQ(SpatiotemporalAggregator::estimate_bytes(10, 8), 10u * 36u * 44u);
}

TEST(Aggregator, WorkingSetBytesIsBoundedByStaticEstimate) {
  const OwnedModel om = make_random_model(
      {.levels = 3, .fanout = 2, .slices = 12, .states = 2, .seed = 7});
  SpatiotemporalAggregator agg(om.model);
  const std::size_t precise = agg.working_set_bytes();
  const std::size_t upper = SpatiotemporalAggregator::estimate_bytes(
      om.hierarchy->node_count(), 12);
  EXPECT_GT(precise, 0u);
  // The instance accounting knows only two adjacent levels hold live
  // pIC/count matrices, so it must not exceed the whole-tree upper bound.
  EXPECT_LE(precise, upper);

  // The reference kernel's working set is the original whole-tree formula.
  AggregationOptions ref;
  ref.kernel = DpKernel::kReference;
  SpatiotemporalAggregator ref_agg(om.model, ref);
  const TriangularIndex tri(12);
  EXPECT_EQ(ref_agg.working_set_bytes(),
            om.hierarchy->node_count() * tri.size() * 16u);
}

TEST(Aggregator, RunManyMatchesRepeatedRuns) {
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 3, .slices = 10, .states = 2, .seed = 77});
  SpatiotemporalAggregator batched(om.model);
  SpatiotemporalAggregator repeated(om.model);
  const double ps[] = {0.0, 0.15, 0.5, 0.85, 1.0};
  const std::vector<AggregationResult> sweep = batched.run_many(ps);
  ASSERT_EQ(sweep.size(), 5u);
  for (std::size_t k = 0; k < sweep.size(); ++k) {
    const AggregationResult one = repeated.run(ps[k]);
    EXPECT_EQ(sweep[k].p, ps[k]);
    EXPECT_EQ(sweep[k].optimal_pic, one.optimal_pic) << "p=" << ps[k];
    EXPECT_EQ(sweep[k].partition.signature(), one.partition.signature());
  }
}

TEST(Aggregator, RunManyValidatesEveryParameterUpFront) {
  const OwnedModel om = make_tiny_model();
  SpatiotemporalAggregator agg(om.model);
  const double ps[] = {0.5, 1.5};
  EXPECT_THROW((void)agg.run_many(ps), InvalidArgument);
}

TEST(Aggregator, PZeroYieldsZeroLossPartition) {
  // At p = 0, pIC = -loss and the optimum has loss 0 (the microscopic
  // partition achieves it); with aggregate-wins tie-breaking the chosen
  // partition may be coarser but must still be lossless.
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 3, .slices = 8, .states = 2, .seed = 21});
  SpatiotemporalAggregator agg(om.model);
  const AggregationResult r = agg.run(0.0);
  EXPECT_NEAR(r.measures.loss, 0.0, 1e-9);
  EXPECT_NEAR(r.optimal_pic, 0.0, 1e-9);
  EXPECT_TRUE(r.partition.is_valid(*om.hierarchy, 8));
}

TEST(Aggregator, HomogeneousModelCollapsesToOneAreaAtPZero) {
  // A fully homogeneous model has zero loss everywhere; the coarsest
  // optimal partition is the single root area even at p = 0.
  const OwnedModel om = make_random_model({.levels = 2,
                                           .fanout = 2,
                                           .slices = 6,
                                           .states = 2,
                                           .block_slices = 6,
                                           .block_leaves = 4,
                                           .seed = 5});
  SpatiotemporalAggregator agg(om.model);
  const AggregationResult r = agg.run(0.0);
  EXPECT_EQ(r.partition.size(), 1u);
  EXPECT_EQ(r.partition.areas()[0].node, om.hierarchy->root());
}

TEST(Aggregator, PartitionAlwaysValid) {
  const OwnedModel om = make_random_model(
      {.levels = 3, .fanout = 2, .slices = 10, .states = 3, .seed = 33});
  SpatiotemporalAggregator agg(om.model);
  for (const double p : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const AggregationResult r = agg.run(p);
    EXPECT_TRUE(r.partition.is_valid(*om.hierarchy, 10)) << "p=" << p;
  }
}

TEST(Aggregator, OptimalPicEqualsPartitionPic) {
  // The DP's root value must equal the re-evaluated pIC of the extracted
  // partition (additivity of the criterion).
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 3, .slices = 9, .states = 2, .seed = 8});
  SpatiotemporalAggregator agg(om.model);
  for (const double p : {0.1, 0.5, 0.9}) {
    const AggregationResult r = agg.run(p);
    const double evaluated = pic(p, r.measures.gain, r.measures.loss);
    EXPECT_NEAR(r.optimal_pic, evaluated, 1e-9) << "p=" << p;
  }
}

TEST(Aggregator, ReusableAcrossRuns) {
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 2, .slices = 8, .states = 2, .seed = 4});
  SpatiotemporalAggregator agg(om.model);
  const auto r1 = agg.run(0.3);
  const auto r2 = agg.run(0.7);
  const auto r1_again = agg.run(0.3);
  EXPECT_EQ(r1.partition.signature(), r1_again.partition.signature());
  EXPECT_NEAR(r1.optimal_pic, r1_again.optimal_pic, 1e-12);
  // Typically different partitions at different p (not guaranteed, but
  // these seeds produce structure).
  (void)r2;
}

TEST(Aggregator, NormalizedRunsAreConsistent) {
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 3, .slices = 8, .states = 2, .seed = 14});
  AggregationOptions opt;
  opt.normalize = true;
  SpatiotemporalAggregator agg(om.model, opt);
  const AggregationResult r = agg.run(0.5);
  EXPECT_TRUE(r.partition.is_valid(*om.hierarchy, 8));
  // Normalized pIC at the root: p*gain/maxgain - (1-p)*loss/maxloss of the
  // chosen partition must equal the DP optimum.
  const AreaMeasures root = agg.cube().root_measures();
  const double expected = 0.5 * r.measures.gain / root.gain -
                          0.5 * r.measures.loss / root.loss;
  EXPECT_NEAR(r.optimal_pic, expected, 1e-9);
}

TEST(Aggregator, SequentialMatchesParallel) {
  const OwnedModel om = make_random_model(
      {.levels = 3, .fanout = 3, .slices = 12, .states = 2, .seed = 99});
  AggregationOptions seq;
  seq.parallel = false;
  SpatiotemporalAggregator a_seq(om.model, seq);
  SpatiotemporalAggregator a_par(om.model);
  for (const double p : {0.25, 0.75}) {
    const auto rs = a_seq.run(p);
    const auto rp = a_par.run(p);
    EXPECT_EQ(rs.partition.signature(), rp.partition.signature());
    EXPECT_NEAR(rs.optimal_pic, rp.optimal_pic, 1e-12);
  }
}

TEST(Aggregator, EvaluateScoresArbitraryPartition) {
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 2, .slices = 6, .states = 2, .seed = 2});
  SpatiotemporalAggregator agg(om.model);
  const Partition full = make_full_partition(*om.hierarchy, 6);
  const auto r = agg.evaluate(full, 0.5);
  const AreaMeasures root = agg.cube().root_measures();
  EXPECT_NEAR(r.measures.gain, root.gain, 1e-9);
  EXPECT_NEAR(r.measures.loss, root.loss, 1e-9);
  EXPECT_EQ(r.quality.area_count, 1u);
}

// The exhaustive brute-force oracle section lives in
// tests/test_aggregator_heavy.cpp (ctest label `heavy`): it dominates the
// suite's wall time and is run with a dedicated TIMEOUT in the Release CI
// job only.

TEST(Aggregator, LaneWidthEntersBudgetAccounting) {
  // An 8-lane wave needs ~8x the per-cell DP state of a solo run; a budget
  // that admits run(p) can legitimately reject a wide run_many.
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 4, .slices = 32, .states = 2, .seed = 6});
  AggregationOptions opt;
  SpatiotemporalAggregator probe(om.model, opt);
  const std::size_t solo = probe.working_set_bytes(1);
  const std::size_t wide = probe.working_set_bytes(8);
  EXPECT_GT(wide, solo);

  opt.memory_budget_bytes = (solo + wide) / 2;
  opt.max_lanes = 8;
  SpatiotemporalAggregator agg(om.model, opt);
  EXPECT_NO_THROW((void)agg.run(0.5));
  const double ps[] = {0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0};
  EXPECT_THROW((void)agg.run_many(ps), BudgetError);

  // Capping the lane width brings the same sweep back under the budget.
  opt.max_lanes = 1;
  SpatiotemporalAggregator narrow(om.model, opt);
  EXPECT_NO_THROW((void)narrow.run_many(ps));
}

TEST(Aggregator, EstimateBytesScalesPerLaneStateOnly) {
  // Per cell: 28 bytes of DP state per lane + the 16-byte shared measure
  // pair (which a whole wave reads once).
  EXPECT_EQ(SpatiotemporalAggregator::estimate_bytes(10, 8, 1),
            10u * 36u * (24u + 4u + 16u));
  EXPECT_EQ(SpatiotemporalAggregator::estimate_bytes(10, 8, 8),
            10u * 36u * (8u * 28u + 16u));
}

}  // namespace
}  // namespace stagg
