#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "trace/trace_stats.hpp"
#include "workload/nas_cg.hpp"
#include "workload/nas_lu.hpp"
#include "workload/synthetic.hpp"

namespace stagg {
namespace {

TEST(Synthetic, SolidPhaseEmitsOneState) {
  const Hierarchy h = make_flat_hierarchy(1);
  const auto programmer = [](LeafId) {
    ResourceProgram p;
    p.phases.push_back({0.0, 2.0, StatePattern::solid("MPI_Init")});
    return p;
  };
  Trace t = generate_trace(h, programmer, 1);
  EXPECT_EQ(t.state_count(), 1u);
  const auto iv = t.intervals(0);
  EXPECT_EQ(iv[0].begin, 0);
  EXPECT_EQ(iv[0].end, seconds(2.0));
}

TEST(Synthetic, CyclicPhaseFillsSpanWithoutOverlap) {
  const Hierarchy h = make_flat_hierarchy(1);
  const auto programmer = [](LeafId) {
    ResourceProgram p;
    p.phases.push_back(
        {0.0, 1.0,
         StatePattern{{{"a", 0.01, 0.3}, {"b", 0.02, 0.3}}}});
    return p;
  };
  Trace t = generate_trace(h, programmer, 7);
  const auto iv = t.intervals(0);
  ASSERT_GT(iv.size(), 10u);
  for (std::size_t k = 1; k < iv.size(); ++k) {
    EXPECT_GE(iv[k].begin, iv[k - 1].end);  // no overlap
  }
  EXPECT_LE(iv.back().end, seconds(1.0) + 1);  // clipped at phase end
}

TEST(Synthetic, DeterministicInSeed) {
  const Hierarchy h = make_flat_hierarchy(3);
  const auto programmer = [](LeafId) {
    ResourceProgram p;
    p.phases.push_back({0.0, 1.0, StatePattern{{{"a", 0.01, 0.5}}}});
    return p;
  };
  Trace t1 = generate_trace(h, programmer, 5);
  Trace t2 = generate_trace(h, programmer, 5);
  Trace t3 = generate_trace(h, programmer, 6);
  EXPECT_EQ(t1.state_count(), t2.state_count());
  for (ResourceId r = 0; r < 3; ++r) {
    const auto a = t1.intervals(r);
    const auto b = t2.intervals(r);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
  EXPECT_NE(t1.state_count(), t3.state_count());
}

TEST(Synthetic, PerturbationStretchesMatchingStates) {
  const Hierarchy h = make_flat_hierarchy(1);
  const auto programmer = [](LeafId) {
    ResourceProgram p;
    p.phases.push_back({0.0, 10.0, StatePattern{{{"send", 0.1, 0.0}}}});
    p.perturbations.push_back({4.0, 6.0, 10.0, {"send"}});
    return p;
  };
  Trace t = generate_trace(h, programmer, 1);
  // Inside [4, 6): 1 s states instead of 0.1 s.
  bool found_long = false;
  for (const auto& s : t.intervals(0)) {
    const double dur = to_seconds(s.duration());
    if (to_seconds(s.begin) >= 4.0 && to_seconds(s.begin) < 6.0) {
      if (dur > 0.5) found_long = true;
    } else if (to_seconds(s.begin) < 3.8) {
      EXPECT_LT(dur, 0.2);
    }
  }
  EXPECT_TRUE(found_long);
}

TEST(Synthetic, InvalidPhaseThrows) {
  const Hierarchy h = make_flat_hierarchy(1);
  const auto programmer = [](LeafId) {
    ResourceProgram p;
    p.phases.push_back({5.0, 5.0, StatePattern::solid("x")});
    return p;
  };
  EXPECT_THROW((void)generate_trace(h, programmer, 1), InvalidArgument);
}

// --- CG -------------------------------------------------------------------

class CgWorkload : public ::testing::Test {
 protected:
  void SetUp() override {
    hierarchy_ = grid5000_rennes_parapide().build_hierarchy();
    options_.event_scale = 1.0 / 64.0;  // keep tests fast
    trace_ = generate_cg_trace(hierarchy_, options_);
  }
  Hierarchy hierarchy_;
  CgWorkloadOptions options_;
  Trace trace_;
};

TEST_F(CgWorkload, HasSixtyFourResources) {
  EXPECT_EQ(trace_.resource_count(), 64u);
}

TEST_F(CgWorkload, InitPhaseIsSolidMpiInit) {
  const StateId init = *trace_.states().find("MPI_Init");
  for (ResourceId r = 0; r < 64; ++r) {
    const auto iv = trace_.intervals(r);
    ASSERT_FALSE(iv.empty());
    EXPECT_EQ(iv[0].state, init);
    EXPECT_EQ(iv[0].begin, 0);
    EXPECT_EQ(iv[0].end, seconds(1.6));
  }
}

TEST_F(CgWorkload, WaitRoleOnCoreZeroOfEachMachine) {
  const StateId wait = *trace_.states().find("MPI_Wait");
  const StateId send = *trace_.states().find("MPI_Send");
  const auto vectors = state_duration_vectors(trace_);
  for (std::size_t machine = 0; machine < 8; ++machine) {
    const std::size_t core0 = machine * 8;
    EXPECT_GT(vectors[core0][static_cast<std::size_t>(wait)],
              vectors[core0][static_cast<std::size_t>(send)])
        << "machine " << machine;
    // Other cores are send-dominated.
    EXPECT_GT(vectors[core0 + 1][static_cast<std::size_t>(send)],
              vectors[core0 + 1][static_cast<std::size_t>(wait)]);
  }
}

TEST_F(CgWorkload, PerturbedLeavesAreDeterministicAndCounted) {
  const auto a = cg_perturbed_leaves(hierarchy_, options_);
  const auto b = cg_perturbed_leaves(hierarchy_, options_);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 26u);
  // All distinct and in range.
  for (std::size_t k = 1; k < a.size(); ++k) EXPECT_LT(a[k - 1], a[k]);
  EXPECT_GE(a.front(), 0);
  EXPECT_LT(a.back(), 64);
}

TEST_F(CgWorkload, EventScaleControlsEventCount) {
  CgWorkloadOptions coarse = options_;
  coarse.event_scale = 1.0 / 128.0;
  Trace small = generate_cg_trace(hierarchy_, coarse);
  EXPECT_LT(small.state_count(), trace_.state_count());
  // Roughly halving the rate roughly halves the states (within 20%).
  const double ratio = static_cast<double>(small.state_count()) /
                       static_cast<double>(trace_.state_count());
  EXPECT_NEAR(ratio, 0.5, 0.2);
}

TEST_F(CgWorkload, DisablingPerturbationRemovesIt) {
  CgWorkloadOptions clean = options_;
  clean.perturbed_processes = 0;
  EXPECT_TRUE(cg_perturbed_leaves(hierarchy_, clean).empty());
}

// --- LU -------------------------------------------------------------------

class LuWorkload : public ::testing::Test {
 protected:
  void SetUp() override {
    platform_ = grid5000_nancy().scaled_to(120);  // small but 3 clusters
    hierarchy_ = platform_.build_hierarchy();
    options_.event_scale = 1.0 / 256.0;
    options_.span_s = 65.0;
    trace_ = generate_lu_trace(hierarchy_, platform_, options_);
  }
  PlatformSpec platform_;
  Hierarchy hierarchy_;
  LuWorkloadOptions options_;
  Trace trace_;
};

TEST_F(LuWorkload, AllClustersPresent) {
  EXPECT_EQ(hierarchy_.nodes_at_depth(1).size(), 3u);
  EXPECT_EQ(trace_.resource_count(), hierarchy_.leaf_count());
}

TEST_F(LuWorkload, GraphiteIsMoreHeterogeneousThanGraphene) {
  // Per-process MPI_Wait totals: variance across Graphite (Ethernet) must
  // exceed variance across Graphene (homogeneous IB cluster).
  const StateId wait = *trace_.states().find("MPI_Wait");
  const auto vectors = state_duration_vectors(trace_);
  const auto spread = [&](const char* cluster) {
    const NodeId n = hierarchy_.find(std::string("nancy/") + cluster);
    const auto& node = hierarchy_.node(n);
    double mean = 0.0;
    for (LeafId s = node.first_leaf; s < node.first_leaf + node.leaf_count;
         ++s) {
      mean += vectors[static_cast<std::size_t>(s)]
                     [static_cast<std::size_t>(wait)];
    }
    mean /= node.leaf_count;
    double var = 0.0;
    for (LeafId s = node.first_leaf; s < node.first_leaf + node.leaf_count;
         ++s) {
      const double d = vectors[static_cast<std::size_t>(s)]
                              [static_cast<std::size_t>(wait)] -
                       mean;
      var += d * d;
    }
    return var / node.leaf_count;
  };
  EXPECT_GT(spread("graphite"), spread("graphene") * 4.0);
}

TEST_F(LuWorkload, RuptureBlocksMachinesInGriffon) {
  // During [34.5, 37) s, the first machines of Griffon must hold one very
  // long blocked state.
  const NodeId griffon = hierarchy_.find("nancy/griffon");
  ASSERT_NE(griffon, kNoNode);
  const auto& cluster = hierarchy_.node(griffon);
  bool found_block = false;
  for (LeafId s = cluster.first_leaf;
       s < cluster.first_leaf + cluster.leaf_count; ++s) {
    for (const auto& iv : trace_.intervals(static_cast<ResourceId>(s))) {
      const double b = to_seconds(iv.begin);
      if (b >= 34.0 && b < 37.5 && to_seconds(iv.duration()) > 0.2) {
        found_block = true;
      }
    }
  }
  EXPECT_TRUE(found_block);
}

TEST_F(LuWorkload, InitPhaseCoversAllResources) {
  const StateId init = *trace_.states().find("MPI_Init");
  for (ResourceId r = 0; r < static_cast<ResourceId>(trace_.resource_count());
       ++r) {
    EXPECT_EQ(trace_.intervals(r)[0].state, init);
    EXPECT_EQ(trace_.intervals(r)[0].end, seconds(17.5));
  }
}

TEST_F(LuWorkload, MissingClusterInPlatformThrows) {
  PlatformSpec wrong = platform_;
  wrong.clusters[0].name = "renamed";
  EXPECT_THROW((void)generate_lu_trace(hierarchy_, wrong, options_),
               InvalidArgument);
}

}  // namespace
}  // namespace stagg
