#include "core/partition.hpp"

#include <gtest/gtest.h>

#include "core/baselines.hpp"

namespace stagg {
namespace {

Hierarchy sample_hierarchy() {
  HierarchyBuilder b("S");
  const NodeId a = b.add(0, "A");
  const NodeId c = b.add(0, "B");
  b.add_many(a, "a", 2);
  b.add_many(c, "b", 2);
  return b.finish();
}

TEST(PartitionTest, FullPartitionIsValid) {
  const Hierarchy h = sample_hierarchy();
  const Partition p = make_full_partition(h, 5);
  EXPECT_TRUE(p.is_valid(h, 5));
  EXPECT_EQ(p.size(), 1u);
}

TEST(PartitionTest, MicroscopicPartitionIsValid) {
  const Hierarchy h = sample_hierarchy();
  const Partition p = make_microscopic_partition(h, 5);
  EXPECT_TRUE(p.is_valid(h, 5));
  EXPECT_EQ(p.size(), 4u * 5u);
}

TEST(PartitionTest, OverlapIsInvalid) {
  const Hierarchy h = sample_hierarchy();
  Partition p;
  p.add(h.root(), 0, 4);
  p.add(h.find("S/A"), 0, 0);  // overlaps the root area
  EXPECT_FALSE(p.is_valid(h, 5));
}

TEST(PartitionTest, GapIsInvalid) {
  const Hierarchy h = sample_hierarchy();
  Partition p;
  p.add(h.find("S/A"), 0, 4);  // B never covered
  EXPECT_FALSE(p.is_valid(h, 5));
}

TEST(PartitionTest, OutOfRangeIntervalIsInvalid) {
  const Hierarchy h = sample_hierarchy();
  Partition p;
  p.add(h.root(), 0, 5);  // j == slices
  EXPECT_FALSE(p.is_valid(h, 5));
  Partition q;
  q.add(h.root(), 3, 1);  // i > j
  EXPECT_FALSE(q.is_valid(h, 5));
}

TEST(PartitionTest, SignatureIsOrderInvariant) {
  const Hierarchy h = sample_hierarchy();
  Partition p1;
  p1.add(h.find("S/A"), 0, 4);
  p1.add(h.find("S/B"), 0, 4);
  Partition p2;
  p2.add(h.find("S/B"), 0, 4);
  p2.add(h.find("S/A"), 0, 4);
  EXPECT_EQ(p1.signature(), p2.signature());
}

TEST(PartitionTest, SignatureDistinguishesPartitions) {
  const Hierarchy h = sample_hierarchy();
  const Partition full = make_full_partition(h, 5);
  const Partition micro = make_microscopic_partition(h, 5);
  EXPECT_NE(full.signature(), micro.signature());
  Partition split;
  split.add(h.root(), 0, 2);
  split.add(h.root(), 3, 4);
  EXPECT_NE(full.signature(), split.signature());
}

TEST(PartitionTest, TemporalCutSlices) {
  const Hierarchy h = sample_hierarchy();
  Partition p;
  p.add(h.root(), 0, 1);
  p.add(h.find("S/A"), 2, 4);
  p.add(h.find("S/B"), 2, 3);
  p.add(h.find("S/B"), 4, 4);
  const auto cuts = p.temporal_cut_slices();
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_EQ(cuts[0], 2);
  EXPECT_EQ(cuts[1], 4);
}

TEST(PartitionTest, RowOfLeafIsTimeOrdered) {
  const Hierarchy h = sample_hierarchy();
  Partition p;
  p.add(h.find("S/A"), 3, 4);
  p.add(h.root(), 0, 2);
  p.add(h.find("S/B"), 3, 4);
  const auto row = p.row_of_leaf(h, 0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0].time.i, 0);
  EXPECT_EQ(row[1].time.i, 3);
}

TEST(PartitionTest, CanonicalizeSortsBySpaceThenTime) {
  const Hierarchy h = sample_hierarchy();
  Partition p;
  p.add(h.find("S/B"), 0, 4);
  p.add(h.find("S/A"), 2, 4);
  p.add(h.find("S/A"), 0, 1);
  p.canonicalize(h);
  EXPECT_EQ(p.areas()[0].node, h.find("S/A"));
  EXPECT_EQ(p.areas()[0].time.i, 0);
  EXPECT_EQ(p.areas()[1].time.i, 2);
  EXPECT_EQ(p.areas()[2].node, h.find("S/B"));
}

TEST(TriangularIndexTest, PackedLayout) {
  const TriangularIndex tri(4);
  EXPECT_EQ(tri.size(), 10u);
  // Row-contiguous: (i, j) and (i, j+1) are adjacent.
  EXPECT_EQ(tri(0, 0), 0u);
  EXPECT_EQ(tri(0, 3), 3u);
  EXPECT_EQ(tri(1, 1), 4u);
  EXPECT_EQ(tri(3, 3), 9u);
  // All indices distinct and in range.
  std::vector<bool> seen(tri.size(), false);
  for (SliceId i = 0; i < 4; ++i) {
    for (SliceId j = i; j < 4; ++j) {
      const std::size_t idx = tri(i, j);
      ASSERT_LT(idx, tri.size());
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
}

TEST(PartitionTest, ToStringListsAreas) {
  const Hierarchy h = sample_hierarchy();
  Partition p;
  p.add(h.find("S/A"), 0, 4);
  p.add(h.find("S/B"), 0, 4);
  const std::string s = p.to_string(h);
  EXPECT_NE(s.find("S/A [0..4]"), std::string::npos);
  EXPECT_NE(s.find("S/B [0..4]"), std::string::npos);
}

}  // namespace
}  // namespace stagg
