#include "common/string_util.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace stagg {
namespace {

TEST(Split, BasicAndEmptyFields) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Split, SingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, TrailingSeparator) {
  const auto parts = split("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x y \t\r\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("STATE,abc", "STATE"));
  EXPECT_FALSE(starts_with("STA", "STATE"));
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(join({}, "/"), "");
  EXPECT_EQ(join({"x"}, "/"), "x");
}

TEST(WithThousands, TableTwoStyle) {
  EXPECT_EQ(with_thousands(3838144), "3,838,144");
  EXPECT_EQ(with_thousands(218457456), "218,457,456");
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(-1234567), "-1,234,567");
}

TEST(FormatBytes, Units) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(136'900'000), "136.9 MB");
  EXPECT_EQ(format_bytes(8'300'000'000ull), "8.3 GB");
}

TEST(ParseDouble, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(parse_double(" 3.5 ", "ctx"), 3.5);
  EXPECT_THROW((void)parse_double("3.5x", "ctx"), TraceFormatError);
  EXPECT_THROW((void)parse_double("", "ctx"), TraceFormatError);
}

TEST(ParseInt, ValidAndInvalid) {
  EXPECT_EQ(parse_int("-42", "ctx"), -42);
  EXPECT_EQ(parse_int(" 7 ", "ctx"), 7);
  EXPECT_THROW((void)parse_int("7.5", "ctx"), TraceFormatError);
  EXPECT_THROW((void)parse_int("abc", "ctx"), TraceFormatError);
}

}  // namespace
}  // namespace stagg
