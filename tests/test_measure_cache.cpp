// Equivalence suite for the measure cache and the cached wavefront kernel.
//
// The contract of the perf work is *exactness*: the MeasureCache holds
// bit-identical copies of DataCube::measures, and the cached wavefront DP
// (MeasureCache + column-major mirror + flat scans + arena reuse) produces
// bit-identical optimal pIC values and identical partition signatures to
// the reference per-cell-recomputation kernel, across a p-grid and
// randomized synthetic scenarios.  EXPECT_EQ on doubles is deliberate.
#include "core/measure_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/aggregator.hpp"
#include "core/baselines.hpp"
#include "core/dichotomy.hpp"
#include "workload/fixtures.hpp"

namespace stagg {
namespace {

std::vector<double> p_grid(std::size_t n) {
  std::vector<double> ps;
  ps.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    ps.push_back(static_cast<double>(k) / static_cast<double>(n - 1));
  }
  return ps;
}

TEST(MeasureCache, MatchesCubeMeasuresBitExactly) {
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 3, .slices = 14, .states = 3, .seed = 61});
  const DataCube cube(om.model);
  MeasureCache cache;
  cache.build(cube);
  ASSERT_TRUE(cache.built());
  const auto n_t = cube.slice_count();
  for (NodeId node = 0; node < static_cast<NodeId>(cube.hierarchy().node_count());
       ++node) {
    for (SliceId i = 0; i < n_t; ++i) {
      for (SliceId j = i; j < n_t; ++j) {
        const AreaMeasures direct = cube.measures(node, i, j);
        const AreaMeasures& cached = cache.at(node, i, j);
        EXPECT_EQ(direct.gain, cached.gain)
            << "node=" << node << " i=" << i << " j=" << j;
        EXPECT_EQ(direct.loss, cached.loss)
            << "node=" << node << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(MeasureCache, SerialAndParallelBuildsAreIdentical) {
  const OwnedModel om = make_random_model(
      {.levels = 3, .fanout = 2, .slices = 11, .states = 2, .seed = 9});
  const DataCube cube(om.model);
  MeasureCache serial, parallel;
  serial.build(cube, /*parallel=*/false);
  parallel.build(cube, /*parallel=*/true);
  for (NodeId node = 0;
       node < static_cast<NodeId>(cube.hierarchy().node_count()); ++node) {
    const auto a = serial.node_measures(node);
    const auto b = parallel.node_measures(node);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t c = 0; c < a.size(); ++c) {
      EXPECT_EQ(a[c].gain, b[c].gain);
      EXPECT_EQ(a[c].loss, b[c].loss);
    }
  }
}

TEST(MeasureCache, MemoryAccounting) {
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 2, .slices = 8, .states = 2, .seed = 3});
  const DataCube cube(om.model);
  const std::size_t nodes = cube.hierarchy().node_count();
  MeasureCache cache;
  EXPECT_EQ(cache.memory_bytes(), 0u);
  cache.build(cube);
  EXPECT_EQ(cache.memory_bytes(), MeasureCache::estimate_bytes(nodes, 8));
  EXPECT_EQ(cache.memory_bytes(), nodes * 36u * sizeof(AreaMeasures));
  cache.clear();
  EXPECT_FALSE(cache.built());
  EXPECT_EQ(cache.memory_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Kernel equivalence: cached wavefront vs reference per-cell recomputation.
// ---------------------------------------------------------------------------

void expect_kernels_equivalent(const OwnedModel& om,
                               std::span<const double> ps, bool normalize) {
  AggregationOptions cached_opt;
  cached_opt.normalize = normalize;
  AggregationOptions ref_opt = cached_opt;
  ref_opt.kernel = DpKernel::kReference;

  SpatiotemporalAggregator cached(om.model, cached_opt);
  SpatiotemporalAggregator reference(om.model, ref_opt);

  const std::vector<AggregationResult> fast = cached.run_many(ps);
  for (std::size_t k = 0; k < ps.size(); ++k) {
    const AggregationResult slow = reference.run(ps[k]);
    // Bit-identical criterion value and identical partition.
    EXPECT_EQ(fast[k].optimal_pic, slow.optimal_pic) << "p=" << ps[k];
    EXPECT_EQ(fast[k].partition.signature(), slow.partition.signature())
        << "p=" << ps[k];
    EXPECT_TRUE(fast[k].partition == slow.partition) << "p=" << ps[k];
    EXPECT_EQ(fast[k].measures.gain, slow.measures.gain) << "p=" << ps[k];
    EXPECT_EQ(fast[k].measures.loss, slow.measures.loss) << "p=" << ps[k];
  }
}

TEST(KernelEquivalence, Figure3TraceAcrossPGrid) {
  const OwnedModel om = make_figure3_model();
  expect_kernels_equivalent(om, p_grid(17), /*normalize=*/false);
}

TEST(KernelEquivalence, Figure3TraceNormalized) {
  const OwnedModel om = make_figure3_model();
  expect_kernels_equivalent(om, p_grid(9), /*normalize=*/true);
}

TEST(KernelEquivalence, RandomizedScenarios) {
  // Randomized shapes seeded via common/rng.hpp: structure (blocks), idle
  // cells, varying depth/fanout/state count.
  SplitMix64 mix(20260729ULL);
  for (int scenario = 0; scenario < 6; ++scenario) {
    const std::uint64_t seed = mix.next();
    const RandomModelOptions shape{
        .levels = 2 + scenario % 2,
        .fanout = 2 + scenario % 3,
        .slices = 7 + scenario * 2,
        .states = 2 + scenario % 3,
        .block_slices = 1 + scenario % 3,
        .block_leaves = 1 + scenario % 2,
        .idle_fraction = (scenario % 2) ? 0.15 : 0.0,
        .seed = seed,
    };
    const OwnedModel om = make_random_model(shape);
    expect_kernels_equivalent(om, p_grid(9), /*normalize=*/false);
  }
}

TEST(KernelEquivalence, WavefrontMatchesSerialCachedKernel) {
  // parallel=false disables both sibling parallelism and the wavefront;
  // the values must not depend on the sweep schedule.
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 4, .slices = 24, .states = 3, .seed = 123});
  AggregationOptions par_opt;
  AggregationOptions ser_opt;
  ser_opt.parallel = false;
  SpatiotemporalAggregator par(om.model, par_opt);
  SpatiotemporalAggregator ser(om.model, ser_opt);
  for (const double p : p_grid(7)) {
    const AggregationResult a = par.run(p);
    const AggregationResult b = ser.run(p);
    EXPECT_EQ(a.optimal_pic, b.optimal_pic) << "p=" << p;
    EXPECT_EQ(a.partition.signature(), b.partition.signature()) << "p=" << p;
  }
}

TEST(KernelEquivalence, ArenaReuseIsDeterministic) {
  // Repeated runs at the same p reuse pooled buffers holding stale values;
  // results must be bit-identical to the first (cold) run.
  const OwnedModel om = make_random_model(
      {.levels = 3, .fanout = 2, .slices = 13, .states = 2, .seed = 55});
  SpatiotemporalAggregator agg(om.model);
  const AggregationResult cold = agg.run(0.37);
  (void)agg.run(0.9);  // pollute the arena with another parameter's values
  const AggregationResult warm = agg.run(0.37);
  EXPECT_EQ(cold.optimal_pic, warm.optimal_pic);
  EXPECT_EQ(cold.partition.signature(), warm.partition.signature());
}

TEST(KernelEquivalence, EvaluateIdenticalBeforeAndAfterCacheBuild) {
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 3, .slices = 9, .states = 2, .seed = 31});
  SpatiotemporalAggregator agg(om.model);
  const Partition full = make_full_partition(*om.hierarchy, 9);
  const AggregationResult before = agg.evaluate(full, 0.4);  // cube path
  (void)agg.run(0.4);  // builds the measure cache
  ASSERT_TRUE(agg.measure_cache().built());
  const AggregationResult after = agg.evaluate(full, 0.4);  // cache path
  EXPECT_EQ(before.optimal_pic, after.optimal_pic);
  EXPECT_EQ(before.measures.gain, after.measures.gain);
  EXPECT_EQ(before.measures.loss, after.measures.loss);
}

// ---------------------------------------------------------------------------
// Lane batching: run_many evaluates probes in waves of max_lanes parameters
// sharing one DP sweep.  Any lane width, odd probe counts (remainder waves
// of width 1..7), duplicate parameters, and wave regrouping must all be
// bit-identical per probe to the reference kernel.
// ---------------------------------------------------------------------------

TEST(KernelEquivalence, LaneWidthSweepBitIdenticalToReference) {
  const OwnedModel om = make_random_model(
      {.levels = 3, .fanout = 2, .slices = 15, .states = 3, .seed = 402});
  AggregationOptions ref_opt;
  ref_opt.kernel = DpKernel::kReference;
  SpatiotemporalAggregator reference(om.model, ref_opt);

  // 9 probes with duplicates: an 8-lane wave plus a width-1 remainder, a
  // 4-lane config with a width-1 remainder, and the solo pre-lane sweep.
  const std::vector<double> ps = {0.0, 0.3, 0.3, 0.55, 0.55,
                                  0.7, 0.85, 1.0, 0.3};
  std::vector<AggregationResult> oracle;
  oracle.reserve(ps.size());
  for (const double p : ps) oracle.push_back(reference.run(p));

  // Width 0 stands for the PR 1 solo kernel (DpKernel::kCachedSolo), which
  // must stay bit-identical too — it is the lane-batching bench baseline.
  for (const std::size_t width : {std::size_t{0}, std::size_t{1},
                                  std::size_t{4}, std::size_t{8}}) {
    AggregationOptions opt;
    if (width == 0) {
      opt.kernel = DpKernel::kCachedSolo;
    } else {
      opt.max_lanes = width;
    }
    SpatiotemporalAggregator laned(om.model, opt);
    const std::vector<AggregationResult> fast = laned.run_many(ps);
    ASSERT_EQ(fast.size(), ps.size()) << "W=" << width;
    for (std::size_t k = 0; k < ps.size(); ++k) {
      EXPECT_EQ(fast[k].p, ps[k]) << "W=" << width;
      EXPECT_EQ(fast[k].optimal_pic, oracle[k].optimal_pic)
          << "W=" << width << " k=" << k << " p=" << ps[k];
      EXPECT_EQ(fast[k].partition.signature(),
                oracle[k].partition.signature())
          << "W=" << width << " k=" << k << " p=" << ps[k];
      EXPECT_EQ(fast[k].measures.gain, oracle[k].measures.gain)
          << "W=" << width << " k=" << k;
      EXPECT_EQ(fast[k].measures.loss, oracle[k].measures.loss)
          << "W=" << width << " k=" << k;
    }
  }
}

TEST(KernelEquivalence, WaveRegroupingDoesNotChangeResults) {
  // The same probes pushed through different wave shapes (8+3, 4+4+3,
  // 11 x 1) must agree bit-for-bit: lanes never interact.
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 3, .slices = 18, .states = 4,
       .idle_fraction = 0.1, .seed = 77});
  const std::vector<double> ps = p_grid(11);  // odd count
  std::vector<std::vector<AggregationResult>> runs;
  for (const std::size_t width : {std::size_t{8}, std::size_t{4},
                                  std::size_t{1}}) {
    AggregationOptions opt;
    opt.max_lanes = width;
    SpatiotemporalAggregator agg(om.model, opt);
    runs.push_back(agg.run_many(ps));
  }
  for (std::size_t k = 0; k < ps.size(); ++k) {
    EXPECT_EQ(runs[0][k].optimal_pic, runs[1][k].optimal_pic) << "k=" << k;
    EXPECT_EQ(runs[0][k].optimal_pic, runs[2][k].optimal_pic) << "k=" << k;
    EXPECT_EQ(runs[0][k].partition.signature(),
              runs[1][k].partition.signature()) << "k=" << k;
    EXPECT_EQ(runs[0][k].partition.signature(),
              runs[2][k].partition.signature()) << "k=" << k;
  }
}

TEST(KernelEquivalence, LanedNormalizedRunsMatchReference) {
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 4, .slices = 12, .states = 3, .seed = 19});
  AggregationOptions opt;
  opt.normalize = true;
  opt.max_lanes = 8;
  AggregationOptions ref_opt = opt;
  ref_opt.kernel = DpKernel::kReference;
  SpatiotemporalAggregator laned(om.model, opt);
  SpatiotemporalAggregator reference(om.model, ref_opt);
  const std::vector<double> ps = p_grid(7);  // one wave of 7 (odd width)
  const std::vector<AggregationResult> fast = laned.run_many(ps);
  for (std::size_t k = 0; k < ps.size(); ++k) {
    const AggregationResult slow = reference.run(ps[k]);
    EXPECT_EQ(fast[k].optimal_pic, slow.optimal_pic) << "p=" << ps[k];
    EXPECT_EQ(fast[k].partition.signature(), slow.partition.signature())
        << "p=" << ps[k];
  }
}

TEST(KernelEquivalence, RunAfterWideWaveReusesArenaBitIdentically) {
  // A wide wave leaves 8-lane-sized pooled buffers; a following solo run
  // (and a narrower wave) must resize and reuse them without value drift.
  const OwnedModel om = make_random_model(
      {.levels = 2, .fanout = 3, .slices = 13, .states = 2, .seed = 88});
  SpatiotemporalAggregator agg(om.model);
  SpatiotemporalAggregator fresh(om.model);
  const std::vector<double> wide = p_grid(8);
  (void)agg.run_many(wide);  // 8-lane wave pollutes the arena
  const AggregationResult warm = agg.run(0.42);
  const AggregationResult cold = fresh.run(0.42);
  EXPECT_EQ(warm.optimal_pic, cold.optimal_pic);
  EXPECT_EQ(warm.partition.signature(), cold.partition.signature());
}

TEST(KernelEquivalence, DichotomyFindsSameLevelsOnBothKernels) {
  const OwnedModel om = make_figure3_model();
  AggregationOptions ref_opt;
  ref_opt.kernel = DpKernel::kReference;
  SpatiotemporalAggregator cached(om.model);
  SpatiotemporalAggregator reference(om.model, ref_opt);
  const DichotomyResult a = find_significant_levels(cached);
  const DichotomyResult b = find_significant_levels(reference);
  ASSERT_EQ(a.levels.size(), b.levels.size());
  EXPECT_EQ(a.runs, b.runs);
  for (std::size_t k = 0; k < a.levels.size(); ++k) {
    EXPECT_EQ(a.levels[k].p_min, b.levels[k].p_min);
    EXPECT_EQ(a.levels[k].p_max, b.levels[k].p_max);
    EXPECT_EQ(a.levels[k].result.partition.signature(),
              b.levels[k].result.partition.signature());
  }
}

}  // namespace
}  // namespace stagg
