// Sharded engine suite: the oracle is bit-identity.  A ShardedTraceStore
// holding the same interval multiset as a monolithic TraceStore — under
// any partition, after any history of seal/evict/spill/compress — must
// produce the same bits through every view, model fold, partitioned
// DataCube/MeasureCache build and DP run, at every shard count including
// S = 1; and a SessionManager spanning shards must match the PR 4
// private-copy lockstep oracle round for round.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "common/contract.hpp"
#include "common/error.hpp"
#include "core/aggregator.hpp"
#include "core/ingest_pipeline.hpp"
#include "core/session_manager.hpp"
#include "core/sliding_window.hpp"
#include "hierarchy/hierarchy.hpp"
#include "hierarchy/shard_plan.hpp"
#include "model/builder.hpp"
#include "trace/sharded_store.hpp"
#include "trace/trace.hpp"
#include "trace/trace_view.hpp"
#include "workload/stream_split.hpp"
#include "workload/synthetic.hpp"

namespace stagg {
namespace {

constexpr std::array<std::size_t, 5> kShardCounts = {1, 2, 3, 4, 7};

void expect_results_equal(const std::vector<AggregationResult>& got,
                          const std::vector<AggregationResult>& want,
                          const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t k = 0; k < got.size(); ++k) {
    EXPECT_EQ(got[k].p, want[k].p) << context << " k=" << k;
    EXPECT_EQ(got[k].optimal_pic, want[k].optimal_pic)
        << context << " k=" << k << " p=" << got[k].p;
    EXPECT_EQ(got[k].partition.signature(), want[k].partition.signature())
        << context << " k=" << k << " p=" << got[k].p;
    EXPECT_EQ(got[k].measures.gain, want[k].measures.gain) << context;
    EXPECT_EQ(got[k].measures.loss, want[k].measures.loss) << context;
  }
}

Trace make_synthetic_trace(const Hierarchy& hierarchy, double span_s,
                           std::uint64_t seed) {
  const auto programmer = [span_s](LeafId leaf) {
    ResourceProgram p;
    const double split = span_s * 0.45;
    p.phases.push_back(
        {0.0, split,
         StatePattern{{{"compute", 0.04, 0.3}, {"send", 0.02, 0.4}}}});
    p.phases.push_back(
        {split, span_s,
         StatePattern{{{"compute", 0.05, 0.2},
                       {"wait", leaf % 3 == 0 ? 0.06 : 0.015, 0.5},
                       {"send", 0.02, 0.3}}}});
    return p;
  };
  return generate_trace(hierarchy, programmer, seed);
}

/// Lopsided tree: one deep narrow arm, one wide shallow arm, a lone leaf —
/// the frontier split has to cut subtrees of very different sizes.
Hierarchy make_irregular_hierarchy() {
  HierarchyBuilder b("root");
  const NodeId deep = b.add(0, "deep");
  const NodeId d0 = b.add(deep, "d0");
  const NodeId d00 = b.add(d0, "d00");
  b.add_many(d00, "dl", 5);
  b.add_many(d0, "dm", 2);
  const NodeId wide = b.add(0, "wide");
  b.add_many(wide, "wl", 9);
  b.add(0, "lone");
  return b.finish();
}

/// Re-shards a sealed store at S shards; returns the facade (which keeps
/// the plan alive through its shared_ptr).
std::shared_ptr<ShardedTraceStore> make_sharded(const Hierarchy& h,
                                                std::size_t shards,
                                                const TraceStore& source) {
  return std::make_shared<ShardedTraceStore>(
      h, std::make_shared<ShardPlan>(h, shards), source);
}

// --- ShardPlan ------------------------------------------------------------

void check_plan_invariants(const Hierarchy& h, std::size_t requested) {
  const ShardPlan plan(h, requested);
  const std::string ctx =
      "leaves=" + std::to_string(h.leaf_count()) +
      " requested=" + std::to_string(requested);
  ASSERT_NO_THROW(plan.audit()) << ctx;
  const std::size_t want =
      std::clamp<std::size_t>(requested, 1, h.leaf_count());
  EXPECT_EQ(plan.shard_count(), want) << ctx;
  EXPECT_EQ(plan.hierarchy(), &h) << ctx;

  // Leaf ranges partition [0, leaf_count) in order, none empty.
  LeafId expect_begin = 0;
  for (std::size_t k = 0; k < plan.shard_count(); ++k) {
    EXPECT_EQ(plan.leaf_begin(k), expect_begin) << ctx << " shard " << k;
    EXPECT_LT(plan.leaf_begin(k), plan.leaf_end(k)) << ctx << " shard " << k;
    for (LeafId leaf = plan.leaf_begin(k); leaf < plan.leaf_end(k); ++leaf) {
      EXPECT_EQ(plan.shard_of_leaf(leaf), k) << ctx << " leaf " << leaf;
    }
    expect_begin = plan.leaf_end(k);
  }
  EXPECT_EQ(static_cast<std::size_t>(expect_begin), h.leaf_count()) << ctx;

  // Ownership == leaf-interval containment; spine == boundary-crossing.
  // Owned children inherit their parent's shard (the fold partition's
  // no-cross-shard-reads guarantee).
  std::size_t owned_total = 0;
  for (std::size_t k = 0; k < plan.shard_count(); ++k) {
    owned_total += plan.owned_nodes(k).size();
    for (const NodeId id : plan.owned_nodes(k)) {
      EXPECT_EQ(plan.shard_of_node(id), static_cast<std::int32_t>(k)) << ctx;
      for (const NodeId child : h.node(id).children) {
        EXPECT_EQ(plan.shard_of_node(child), static_cast<std::int32_t>(k))
            << ctx << " child of node " << id;
      }
    }
  }
  for (const NodeId id : plan.spine_nodes()) {
    EXPECT_EQ(plan.shard_of_node(id), ShardPlan::kSpine) << ctx;
    const auto& n = h.node(id);
    const std::size_t first = plan.shard_of_leaf(n.first_leaf);
    const std::size_t last = plan.shard_of_leaf(
        static_cast<LeafId>(n.first_leaf + n.leaf_count - 1));
    EXPECT_NE(first, last) << ctx << " spine node " << id
                           << " fits one shard";
  }
  EXPECT_EQ(owned_total + plan.spine_nodes().size(), h.node_count()) << ctx;
  // S = 1 degenerates to the monolithic fold: everything owned, no spine.
  if (plan.shard_count() == 1) {
    EXPECT_TRUE(plan.spine_nodes().empty()) << ctx;
    EXPECT_EQ(plan.owned_nodes(0).size(), h.node_count()) << ctx;
  }
}

TEST(ShardPlan, InvariantsAcrossHierarchiesAndShardCounts) {
  const Hierarchy balanced = make_balanced_hierarchy(2, 4);   // 16 leaves
  const Hierarchy deep = make_balanced_hierarchy(3, 3);       // 27 leaves
  const Hierarchy irregular = make_irregular_hierarchy();     // 17 leaves
  const Hierarchy flat = make_flat_hierarchy(6);
  for (const Hierarchy* h : {&balanced, &deep, &irregular, &flat}) {
    for (const std::size_t s : kShardCounts) {
      check_plan_invariants(*h, s);
    }
    check_plan_invariants(*h, 0);                  // clamps to 1
    check_plan_invariants(*h, h->leaf_count());    // one leaf per shard
    check_plan_invariants(*h, h->leaf_count() + 5);  // clamps down
  }
}

// --- Partitioned cube/cache fold ------------------------------------------

TEST(ShardPlan, PartitionedAggregationBitIdenticalToFlat) {
  const Hierarchy h = make_balanced_hierarchy(2, 4);
  Trace trace = make_synthetic_trace(h, 20.0, 0xABCD);
  trace.seal();
  ModelBuildOptions build;
  build.slice_count = 24;
  const MicroscopicModel model = build_model(trace, h, build);
  const std::vector<double> ps = {0.0, 0.25, 0.5, 1.0};

  AggregationOptions ref_opt;
  ref_opt.kernel = DpKernel::kReference;
  SpatiotemporalAggregator reference(model, ref_opt);
  const auto want = reference.run_many(ps);

  for (const std::size_t s : kShardCounts) {
    const ShardPlan plan(h, s);
    for (const std::size_t lanes : {1u, 4u}) {
      AggregationOptions opt;
      opt.shard_plan = &plan;
      opt.max_lanes = lanes;
      SpatiotemporalAggregator sharded(model, opt);
      expect_results_equal(sharded.run_many(ps), want,
                           "S=" + std::to_string(s) +
                               " W=" + std::to_string(lanes));
    }
  }
}

// --- ShardedTraceStore ----------------------------------------------------

TEST(ShardedStore, ReshardPreservesTablesRoutesAndWindow) {
  const Hierarchy h = make_balanced_hierarchy(2, 4);
  Trace trace = make_synthetic_trace(h, 12.0, 0x7117);
  trace.seal();
  const TraceStore& source = *trace.store();
  for (const std::size_t s : kShardCounts) {
    const auto sharded = make_sharded(h, s, source);
    ASSERT_NO_THROW(sharded->audit()) << "S=" << s;
    ASSERT_EQ(sharded->resource_count(), source.resource_count());
    for (std::size_t r = 0; r < source.resource_count(); ++r) {
      const auto id = static_cast<ResourceId>(r);
      EXPECT_EQ(sharded->resource_path(id), source.resource_path(id));
      EXPECT_EQ(sharded->find_resource(source.resource_path(id)), id);
      // Leaf-path resources route by the plan, and every global id maps
      // to a live lane of its owning shard.
      const auto route = sharded->route(id);
      EXPECT_EQ(route.shard,
                sharded->plan().shard_of_leaf(static_cast<LeafId>(r)));
      EXPECT_LT(static_cast<std::size_t>(route.local),
                sharded->shard(route.shard).resource_count());
    }
    EXPECT_TRUE(sharded->states() == source.states()) << "S=" << s;
    EXPECT_TRUE(sharded->tails_sealed());
    EXPECT_EQ(sharded->begin(), source.begin());
    EXPECT_EQ(sharded->end(), source.end());
    EXPECT_EQ(sharded->state_count(), source.state_count());
  }
  EXPECT_THROW(ShardedTraceStore(h, nullptr, source), InvalidArgument);
}

/// Drives a monolithic store and an S-shard facade through the same
/// seeded history of ingest / seal / evict / compress / spill rounds and
/// asserts the model fold over every surviving window is bit-identical.
void run_randomized_history(std::size_t shards, std::uint64_t seed) {
  const Hierarchy h = make_balanced_hierarchy(2, 4);
  const auto n_leaves = static_cast<ResourceId>(h.leaf_count());
  const std::string spill =
      "test_shard_history_s" + std::to_string(shards) + ".spill";
  for (std::size_t k = 0; k < shards; ++k) {
    std::remove((shards == 1 ? spill : spill + ".s" + std::to_string(k))
                    .c_str());
  }

  auto mono = std::make_shared<TraceStore>();
  auto sharded = std::make_shared<ShardedTraceStore>(
      h, std::make_shared<ShardPlan>(h, shards));
  ASSERT_EQ(sharded->shard_count(), shards);
  for (LeafId leaf = 0; leaf < static_cast<LeafId>(h.leaf_count()); ++leaf) {
    const std::string path = h.path(h.leaf_node(leaf));
    ASSERT_EQ(mono->add_resource(path), static_cast<ResourceId>(leaf));
    ASSERT_EQ(sharded->add_resource(path), static_cast<ResourceId>(leaf));
  }
  for (const char* name : {"compute", "send", "wait"}) {
    ASSERT_EQ(static_cast<std::size_t>(sharded->intern_state(name)),
              static_cast<std::size_t>(mono->states().intern(name)));
  }
  sharded->enable_spill(spill);

  std::uint64_t rng = seed;
  const auto next = [&rng]() {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return rng >> 33;
  };

  TimeNs now = 0;
  TimeNs horizon = 0;  // highest evict cutoff so far; windows start here
  for (int round = 0; round < 8; ++round) {
    // Ingest a burst: mono appends serially, the facade buckets the same
    // batch per shard and appends in parallel.
    std::vector<EventRecord> batch;
    const std::size_t events = 40 + next() % 80;
    for (std::size_t e = 0; e < events; ++e) {
      EventRecord rec;
      rec.resource = static_cast<ResourceId>(next() % n_leaves);
      rec.state = static_cast<StateId>(next() % 3);
      rec.begin = now + static_cast<TimeNs>(next() % seconds(2.0));
      rec.end = rec.begin + 1 + static_cast<TimeNs>(next() % seconds(0.5));
      batch.push_back(rec);
    }
    now += seconds(2.0);
    for (const EventRecord& rec : batch) {
      mono->add_state(rec.resource, rec.state, rec.begin, rec.end);
    }
    sharded->ingest(batch);
    mono->seal_chunk();
    sharded->seal_chunk();

    switch (round % 4) {
      case 1: {  // fence eviction below a cutoff both stores share
        horizon = std::max<TimeNs>(horizon, now - seconds(3.0));
        mono->evict_before(horizon);
        sharded->evict_before(horizon);
        break;
      }
      case 2: {  // re-encode sealed chunks (kAuto round-trips via views)
        const ChunkCompression policy = round < 4 ? ChunkCompression::kAuto
                                                  : ChunkCompression::kNone;
        mono->set_compression(policy);
        sharded->set_compression(policy);
        break;
      }
      case 3: {  // spill the facade cold (results must not care)
        const std::size_t resident = sharded->resident_chunk_bytes();
        (void)sharded->spill_cold(resident / 2);
        const auto split = sharded->last_spill_split();
        const std::size_t sum =
            std::accumulate(split.begin(), split.end(), std::size_t{0});
        EXPECT_LE(sum, sharded->last_spill_budget()) << "round " << round;
        break;
      }
      default:
        break;
    }
    ASSERT_NO_THROW(sharded->audit()) << "round " << round;
    // begin() may legitimately differ after eviction (chunk granularity
    // differs, so different sub-horizon prefixes get unlinked); end() is
    // the max over live tails and must agree.
    EXPECT_EQ(sharded->end(), mono->end()) << "round " << round;

    // The oracle: fold a window over both stores and compare every
    // (leaf, slice, state) duration bit for bit.
    const TimeNs w_end = std::max<TimeNs>(now, horizon + 16);
    ModelBuildOptions build;
    build.slice_count = 16;
    build.window_begin = horizon;
    build.window_end = w_end;
    const MicroscopicModel want =
        build_model(TraceView(mono, horizon, w_end), h, build);
    const MicroscopicModel got =
        build_model(TraceView(sharded, horizon, w_end), h, build);
    ASSERT_EQ(got.slice_count(), want.slice_count());
    ASSERT_EQ(got.state_count(), want.state_count());
    for (LeafId leaf = 0; leaf < n_leaves; ++leaf) {
      for (SliceId t = 0; t < want.slice_count(); ++t) {
        for (StateId x = 0; x < want.state_count(); ++x) {
          ASSERT_EQ(got.duration(leaf, t, x), want.duration(leaf, t, x))
              << "round " << round << " leaf " << leaf << " t " << t
              << " x " << x;
        }
      }
    }
  }
  sharded.reset();
  for (std::size_t k = 0; k < shards; ++k) {
    std::remove((shards == 1 ? spill : spill + ".s" + std::to_string(k))
                    .c_str());
  }
}

TEST(ShardedStore, RandomizedHistoryFoldsBitIdenticalS1) {
  run_randomized_history(1, 0x51);
}
TEST(ShardedStore, RandomizedHistoryFoldsBitIdenticalS3) {
  run_randomized_history(3, 0x53);
}
TEST(ShardedStore, RandomizedHistoryFoldsBitIdenticalS4) {
  run_randomized_history(4, 0x54);
}

// --- Sessions over shards -------------------------------------------------

TEST(ShardedSession, BitIdenticalToMonolithicAcrossShardCountsAndLanes) {
  const Hierarchy h = make_balanced_hierarchy(2, 4);
  Trace trace = make_synthetic_trace(h, 30.0, 0xBEEF);
  trace.seal();
  const TimeGrid window(0, seconds(16.0), 16);
  const std::vector<double> ps = {0.25, 0.6};

  for (const std::size_t lanes : {1u, 4u}) {
    SlidingWindowOptions opt;
    opt.aggregation.max_lanes = lanes;
    for (const std::size_t s : kShardCounts) {
      const std::string ctx =
          "S=" + std::to_string(s) + " W=" + std::to_string(lanes);
      // Fresh monolithic reference per shard count: both sides run the
      // identical slide/extend/contract chain from the same start.
      auto mono_store = std::make_shared<TraceStore>(*trace.store());
      mono_store->seal_chunk();
      SlidingWindowSession mono(h, mono_store, window, ps, opt,
                                StoreOwnership::kShared);
      const auto sharded = make_sharded(h, s, *trace.store());
      SlidingWindowSession session(h, sharded, window, ps, opt);
      EXPECT_EQ(session.ownership(), StoreOwnership::kShared);
      EXPECT_EQ(session.sharded_store_ptr().get(), sharded.get());
      // The session adopts the facade's plan for its aggregator.
      EXPECT_EQ(session.aggregator().options().shard_plan, &sharded->plan());
      expect_results_equal(session.results(), mono.results(),
                           ctx + " initial");
      session.slide(3);
      mono.slide(3);
      expect_results_equal(session.results(), mono.results(), ctx + " slide");
      session.extend(2);
      mono.extend(2);
      expect_results_equal(session.results(), mono.results(),
                           ctx + " extend");
      session.contract(1);
      mono.contract(1);
      expect_results_equal(session.results(), mono.results(),
                           ctx + " contract");
      session.slide(2);
      mono.slide(2);
      expect_results_equal(session.results(), mono.results(),
                           ctx + " slide 2");
      expect_results_equal(session.results(),
                           session.run_from_scratch(DpKernel::kReference),
                           ctx + " vs kReference");
    }
  }
}

/// The PR 4 lockstep oracle, sharded edition: a SessionManager over an
/// S-shard store vs private-copy sessions, with live central ingest, a
/// scoped session, and the from-scratch reference oracles.
void run_sharded_lockstep(std::size_t shards, std::size_t lanes) {
  const std::int32_t fanout = 4;
  const Hierarchy full = make_balanced_hierarchy(2, fanout);  // 16 leaves
  HierarchyBuilder scope_b("root");
  const NodeId c = scope_b.add(0, "n0_0");
  scope_b.add_many(c, "n1_", fanout);
  const Hierarchy scope = scope_b.finish();

  Trace whole = make_synthetic_trace(full, 40.0, 0x5E55);
  whole.seal();
  const auto all = static_cast<ResourceId>(whole.resource_count());
  const TimeNs horizon = seconds(22.0);
  SlidingWindowOptions opt;
  opt.aggregation.max_lanes = lanes;

  struct Spec {
    TimeGrid window;
    std::vector<double> ps;
    const Hierarchy* hierarchy;
    ResourceId scope_resources;
  };
  const std::vector<Spec> specs = {
      {TimeGrid(0, seconds(20.0), 20), {0.25, 0.5, 0.75}, nullptr, 0},
      {TimeGrid(seconds(4.0), seconds(20.0), 16), {0.0, 0.37, 1.0}, nullptr,
       0},
      {TimeGrid(0, seconds(16.0), 16), {0.6, 0.2}, &scope, fanout},
  };

  // Sharded side: one facade, one manager, N sessions.
  TraceSplit shared_split = split_trace_at(whole, horizon);
  shared_split.initial.seal();
  SessionManager manager(
      full, make_sharded(full, shards, *shared_split.initial.store()));
  ASSERT_NE(manager.sharded_store(), nullptr);
  ASSERT_EQ(manager.sharded_store()->shard_count(), shards);
  for (const Spec& spec : specs) {
    SessionSpec s;
    s.window = spec.window;
    s.ps = spec.ps;
    s.hierarchy = spec.hierarchy;
    s.options = opt;
    manager.add_session(s);
  }
  ASSERT_NO_THROW(manager.audit());

  // Private side: every session owns an exclusive copy of its events.
  std::vector<std::unique_ptr<SlidingWindowSession>> private_sessions;
  std::vector<ResourceId> private_scope;
  for (const Spec& spec : specs) {
    const ResourceId n = spec.scope_resources > 0 ? spec.scope_resources : all;
    TraceSplit ps = split_trace_at(whole, horizon, n);
    const Hierarchy& sh = spec.hierarchy != nullptr ? *spec.hierarchy : full;
    private_sessions.push_back(std::make_unique<SlidingWindowSession>(
        sh, std::move(ps.initial), spec.window, spec.ps, opt));
    private_scope.push_back(n);
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_results_equal(manager.session(i).results(),
                         private_sessions[i]->results(),
                         "initial session " + std::to_string(i));
  }

  TraceSplit stream = split_trace_at(whole, horizon);
  std::size_t next = 0;
  const std::array<std::int32_t, 3> slides = {1, 2, 2};
  TimeNs delivered_to = horizon;
  for (std::size_t round = 0; round < slides.size(); ++round) {
    delivered_to += seconds(3.0);
    std::vector<EventRecord> batch;
    for (; next < stream.future.size() &&
           stream.future[next].second.begin < delivered_to;
         ++next) {
      const auto& [r, s] = stream.future[next];
      batch.push_back({r, s.state, s.begin, s.end});
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (r < private_scope[i]) {
          private_sessions[i]->append(r, s.state, s.begin, s.end);
        }
      }
    }
    manager.ingest(batch);  // the facade's bucketed parallel append
    manager.slide_all(slides[round]);
    ASSERT_NO_THROW(manager.audit()) << "round " << round;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      private_sessions[i]->slide(slides[round]);
      const std::string ctx = "S=" + std::to_string(shards) + " round " +
                              std::to_string(round) + " session " +
                              std::to_string(i);
      expect_results_equal(manager.session(i).results(),
                           private_sessions[i]->results(), ctx);
    }
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_results_equal(
        manager.session(i).results(),
        manager.session(i).run_from_scratch(DpKernel::kReference),
        "final session " + std::to_string(i) + " vs kReference");
    expect_results_equal(
        manager.session(i).results(),
        manager.session(i).run_from_scratch(DpKernel::kCachedSolo),
        "final session " + std::to_string(i) + " vs kCachedSolo");
  }
}

TEST(ShardedManager, LockstepOracleS1W4) { run_sharded_lockstep(1, 4); }
TEST(ShardedManager, LockstepOracleS2W1) { run_sharded_lockstep(2, 1); }
TEST(ShardedManager, LockstepOracleS3W4) { run_sharded_lockstep(3, 4); }
TEST(ShardedManager, LockstepOracleS4W4) { run_sharded_lockstep(4, 4); }
TEST(ShardedManager, LockstepOracleS7W1) { run_sharded_lockstep(7, 1); }

TEST(ShardedManager, MemoryBudgetSplitHoldsGlobalCapEveryRound) {
  // The satellite fix: set_memory_budget over shards must keep the ONE
  // global cap holding after every round, with the per-shard split
  // proportional to resident bytes and never summing past the budget.
  const Hierarchy h = make_balanced_hierarchy(2, 4);
  Trace whole = make_synthetic_trace(h, 40.0, 0x5B11);
  whole.seal();
  const TimeNs horizon = seconds(22.0);
  const std::string spill = "test_shard_budget.spill";
  const std::size_t shards = 4;
  for (std::size_t k = 0; k < shards; ++k) {
    std::remove((spill + ".s" + std::to_string(k)).c_str());
  }

  const auto make_manager = [&](std::size_t budget_divisor) {
    TraceSplit split = split_trace_at(whole, horizon);
    split.initial.seal();
    auto manager = std::make_unique<SessionManager>(
        h, make_sharded(h, shards, *split.initial.store()));
    if (budget_divisor != 0) {
      manager->set_memory_budget(manager->store_bytes() / budget_divisor,
                                 spill);
    }
    for (int i = 0; i < 2; ++i) {
      SessionSpec spec;
      spec.window =
          TimeGrid(seconds(2.0 * i), seconds(2.0 * i + 16.0), 16 + 4 * i);
      spec.ps = {0.3, 0.7};
      manager->add_session(spec);
    }
    return manager;
  };

  auto resident = make_manager(0);
  auto budgeted = make_manager(4);
  const std::size_t budget = budgeted->memory_budget();
  ASSERT_GT(budget, 0u);
  EXPECT_LE(budgeted->resident_chunk_bytes(), budget);

  TraceSplit stream = split_trace_at(whole, horizon);
  std::size_t next = 0;
  for (int round = 0; round < 4; ++round) {
    const TimeNs frontier = horizon + seconds(3.0 * (round + 1));
    std::vector<EventRecord> batch;
    for (; next < stream.future.size() &&
           stream.future[next].second.begin < frontier;
         ++next) {
      const auto& [r, s] = stream.future[next];
      batch.push_back({r, s.state, s.begin, s.end});
    }
    resident->ingest(batch);
    budgeted->ingest(batch);
    resident->slide_all(1);
    budgeted->slide_all(1);
    // The global cap holds over the *sum* of shard residents...
    EXPECT_LE(budgeted->resident_chunk_bytes(), budget) << "round " << round;
    // ...and the split accounting backs it: floor shares never sum past
    // the budget they enforced.
    const auto split_shares = budgeted->sharded_store()->last_spill_split();
    ASSERT_EQ(split_shares.size(), shards) << "round " << round;
    ASSERT_NO_THROW(budgeted->audit()) << "round " << round;
    for (std::size_t i = 0; i < budgeted->session_count(); ++i) {
      expect_results_equal(budgeted->session(i).results(),
                           resident->session(i).results(),
                           "round " + std::to_string(round) + " session " +
                               std::to_string(i));
    }
  }
  EXPECT_GT(budgeted->sharded_store()->spilled_chunk_bytes(), 0u);
  for (std::size_t i = 0; i < budgeted->session_count(); ++i) {
    expect_results_equal(
        budgeted->session(i).results(),
        budgeted->session(i).run_from_scratch(DpKernel::kReference),
        "final budgeted session " + std::to_string(i));
  }
  budgeted.reset();
  resident.reset();
  for (std::size_t k = 0; k < shards; ++k) {
    std::remove((spill + ".s" + std::to_string(k)).c_str());
  }
}

TEST(ShardedManager, PipelineAffinityBitIdenticalToSynchronousRounds) {
  // The staged pipeline over a sharded manager (parse-shard -> store-shard
  // affinity) must match the synchronous ingest_round path bit for bit.
  const Hierarchy h = make_balanced_hierarchy(2, 4);
  Trace whole = make_synthetic_trace(h, 36.0, 0xF00D);
  whole.seal();
  const TimeNs horizon = seconds(20.0);
  const std::size_t shards = 3;

  const auto make_manager = [&] {
    TraceSplit split = split_trace_at(whole, horizon);
    split.initial.seal();
    auto manager = std::make_unique<SessionManager>(
        h, make_sharded(h, shards, *split.initial.store()));
    SessionSpec spec;
    spec.window = TimeGrid(0, seconds(18.0), 18);
    spec.ps = {0.3, 0.7};
    manager->add_session(spec);
    return manager;
  };

  auto sync_mgr = make_manager();
  auto piped_mgr = make_manager();
  IngestPipelineOptions popt;
  popt.parse_workers = 4;
  IngestPipeline pipeline(*piped_mgr, popt);

  TraceSplit stream = split_trace_at(whole, horizon);
  std::size_t next_a = 0;
  std::size_t next_b = 0;
  for (int round = 0; round < 3; ++round) {
    const TimeNs frontier = horizon + seconds(4.0 * (round + 1));
    std::vector<EventRecord> batch;
    for (; next_a < stream.future.size() &&
           stream.future[next_a].second.begin < frontier;
         ++next_a) {
      const auto& [r, s] = stream.future[next_a];
      batch.push_back({r, s.state, s.begin, s.end});
    }
    for (; next_b < stream.future.size() &&
           stream.future[next_b].second.begin < frontier;
         ++next_b) {
      const auto& [r, s] = stream.future[next_b];
      sync_mgr->append(r, s.state, s.begin, s.end);
    }
    pipeline.submit_records(std::move(batch));
    pipeline.advance_watermark(frontier);
    pipeline.wait_until_advanced(frontier);
    sync_mgr->ingest_round(frontier);
    expect_results_equal(piped_mgr->session(0).results(),
                         sync_mgr->session(0).results(),
                         "round " + std::to_string(round));
  }
  pipeline.close();
  ASSERT_NO_THROW(piped_mgr->audit());
}

TEST(ShardedManager, RejectsMismatchedHierarchy) {
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  const Hierarchy other = make_balanced_hierarchy(2, 3);
  auto sharded = std::make_shared<ShardedTraceStore>(
      h, std::make_shared<ShardPlan>(h, 2));
  EXPECT_THROW(SessionManager(other, std::move(sharded)), InvalidArgument);
  EXPECT_THROW(SessionManager(h, std::shared_ptr<ShardedTraceStore>{}),
               InvalidArgument);
}

}  // namespace
}  // namespace stagg
