// IngestPipeline suite: the staged parse -> seal -> advance pipeline must
// be *bit-identical* at every sealed watermark to the synchronous
// append + advance_to loop (which is itself pinned to the kReference /
// kCachedSolo oracles), and a throttled advance worker must throttle the
// producer through bounded queues — no drops, no per-resource reorders,
// no unbounded depth.
#include "core/ingest_pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/aggregator.hpp"
#include "core/session_manager.hpp"
#include "hierarchy/hierarchy.hpp"
#include "trace/trace.hpp"
#include "workload/stream_split.hpp"
#include "workload/synthetic.hpp"

namespace stagg {
namespace {

Trace make_synthetic_trace(const Hierarchy& hierarchy, double span_s,
                           std::uint64_t seed) {
  const auto programmer = [span_s](LeafId leaf) {
    ResourceProgram p;
    const double split = span_s * 0.5;
    p.phases.push_back(
        {0.0, split,
         StatePattern{{{"compute", 0.05, 0.35}, {"send", 0.02, 0.3}}}});
    p.phases.push_back(
        {split, span_s,
         StatePattern{{{"compute", 0.04, 0.25},
                       {"wait", leaf % 2 == 0 ? 0.05 : 0.02, 0.45},
                       {"send", 0.02, 0.25}}}});
    return p;
  };
  return generate_trace(hierarchy, programmer, seed);
}

/// Comparable fingerprint of one AggregationResult (the bit-identity
/// fields the whole library pins against its oracles).
struct ResultKey {
  double p = 0;
  double optimal_pic = 0;
  std::uint64_t signature = 0;
  double gain = 0;
  double loss = 0;

  bool operator==(const ResultKey&) const = default;
};

std::vector<ResultKey> keys_of(const std::vector<AggregationResult>& rs) {
  std::vector<ResultKey> keys;
  keys.reserve(rs.size());
  for (const AggregationResult& r : rs) {
    keys.push_back({r.p, r.optimal_pic, r.partition.signature(),
                    r.measures.gain, r.measures.loss});
  }
  return keys;
}

/// Per-watermark snapshot of every session's results.
struct Snapshot {
  TimeNs watermark = 0;
  std::vector<std::vector<ResultKey>> sessions;

  bool operator==(const Snapshot&) const = default;
};

Snapshot snapshot_of(const SessionManager& manager, TimeNs wm) {
  Snapshot snap;
  snap.watermark = wm;
  for (std::size_t i = 0; i < manager.session_count(); ++i) {
    snap.sessions.push_back(keys_of(manager.session(i).results()));
  }
  return snap;
}

struct Fixture {
  Hierarchy hierarchy;
  Trace whole;
  TimeNs horizon = 0;

  explicit Fixture(std::uint64_t seed, double span_s = 26.0)
      : hierarchy(make_balanced_hierarchy(2, 3)),
        whole(make_synthetic_trace(hierarchy, span_s, seed)),
        horizon(seconds(10.0)) {
    whole.seal();
  }

  std::unique_ptr<SessionManager> make_manager(std::size_t lanes) {
    TraceSplit split = split_trace_at(whole, horizon);
    split.initial.seal();
    auto manager =
        std::make_unique<SessionManager>(hierarchy, split.initial.store());
    SlidingWindowOptions opt;
    opt.aggregation.max_lanes = lanes;
    SessionSpec a;
    a.window = TimeGrid(0, seconds(8.0), 16);
    a.ps = {0.25, 0.75};
    a.options = opt;
    manager->add_session(a);
    SessionSpec b;
    b.window = TimeGrid(seconds(1.0), seconds(9.0), 8);
    b.ps = {0.5};
    b.options = opt;
    manager->add_session(b);
    return manager;
  }

  /// The future stream, bucketed into rounds by frontier; round k holds
  /// the events with begin in [frontier(k-1), frontier(k)).
  std::vector<std::pair<TimeNs, std::vector<EventRecord>>> rounds(
      TimeNs step, TimeNs last) {
    TraceSplit split = split_trace_at(whole, horizon);
    std::vector<std::pair<TimeNs, std::vector<EventRecord>>> out;
    std::size_t next = 0;
    for (TimeNs frontier = horizon + step; frontier <= last;
         frontier += step) {
      std::vector<EventRecord> records;
      for (; next < split.future.size() &&
             split.future[next].second.begin < frontier;
           ++next) {
        const auto& [r, s] = split.future[next];
        records.push_back(EventRecord{r, s.state, s.begin, s.end});
      }
      out.emplace_back(frontier, std::move(records));
    }
    return out;
  }
};

/// Runs the synchronous reference loop and snapshots every frontier.
std::vector<Snapshot> run_sync_oracle(
    SessionManager& sync,
    const std::vector<std::pair<TimeNs, std::vector<EventRecord>>>& rounds) {
  std::vector<Snapshot> snaps;
  for (const auto& [frontier, records] : rounds) {
    for (const EventRecord& rec : records) {
      sync.append(rec.resource, rec.state, rec.begin, rec.end);
    }
    sync.advance_to(frontier);
    snaps.push_back(snapshot_of(sync, frontier));
  }
  return snaps;
}

/// The acceptance drill: same stream, same frontiers, one synchronous
/// manager vs one pipelined manager — snapshots at every watermark must
/// match bit for bit, under both single-lane and 4-lane DP.
void run_pipeline_oracle(std::size_t lanes, std::size_t parse_workers) {
  Fixture fx(0x1D5E + lanes);
  auto sync = fx.make_manager(lanes);
  auto piped = fx.make_manager(lanes);
  const auto rounds = fx.rounds(seconds(2.0), seconds(24.0));
  ASSERT_GE(rounds.size(), 5u);
  const std::vector<Snapshot> sync_snaps = run_sync_oracle(*sync, rounds);

  std::vector<Snapshot> pipe_snaps;
  {
    IngestPipelineOptions opt;
    opt.parse_workers = parse_workers;
    opt.on_advance = [&](TimeNs wm) {
      pipe_snaps.push_back(snapshot_of(*piped, wm));
    };
    IngestPipeline pipeline(*piped, opt);
    for (const auto& [frontier, records] : rounds) {
      pipeline.submit_records(records);
      pipeline.advance_watermark(frontier);
    }
    pipeline.wait_until_advanced(rounds.back().first);
    pipeline.close();

    const IngestPipelineStats stats = pipeline.stats();
    std::uint64_t submitted = 0;
    for (const auto& [frontier, records] : rounds) {
      submitted += records.size();
    }
    EXPECT_EQ(stats.records_parsed, submitted);
    EXPECT_EQ(stats.records_sealed, submitted);
    EXPECT_EQ(stats.rounds_advanced, rounds.size());
    EXPECT_EQ(stats.advanced_watermark, rounds.back().first);
  }

  ASSERT_EQ(pipe_snaps.size(), sync_snaps.size());
  for (std::size_t k = 0; k < sync_snaps.size(); ++k) {
    EXPECT_EQ(pipe_snaps[k].watermark, sync_snaps[k].watermark)
        << "round " << k;
    EXPECT_EQ(pipe_snaps[k], sync_snaps[k])
        << "pipelined results diverged from the synchronous path at "
           "watermark "
        << sync_snaps[k].watermark << " (round " << k << ")";
  }
  // And both agree with the from-scratch reference oracle at the end.
  for (std::size_t i = 0; i < piped->session_count(); ++i) {
    EXPECT_EQ(keys_of(piped->session(i).results()),
              keys_of(piped->session(i).run_from_scratch(
                  DpKernel::kReference)))
        << "final session " << i << " vs kReference";
  }
}

TEST(IngestPipeline, BitIdenticalToSynchronousPathW1) {
  run_pipeline_oracle(/*lanes=*/1, /*parse_workers=*/4);
}

TEST(IngestPipeline, BitIdenticalToSynchronousPathW4) {
  run_pipeline_oracle(/*lanes=*/4, /*parse_workers=*/4);
}

TEST(IngestPipeline, SingleParseWorkerDegenerateCase) {
  run_pipeline_oracle(/*lanes=*/4, /*parse_workers=*/1);
}

TEST(IngestPipeline, CsvTextPathMatchesRecordPath) {
  Fixture fx(0xCAFE);
  auto sync = fx.make_manager(4);
  auto piped = fx.make_manager(4);
  const auto rounds = fx.rounds(seconds(3.0), seconds(22.0));
  const std::vector<Snapshot> sync_snaps = run_sync_oracle(*sync, rounds);

  std::vector<Snapshot> pipe_snaps;
  IngestPipelineOptions opt;
  opt.parse_workers = 3;
  opt.text_format = TextTraceFormat::kCsv;
  opt.on_advance = [&](TimeNs wm) {
    pipe_snaps.push_back(snapshot_of(*piped, wm));
  };
  IngestPipeline pipeline(*piped, opt);
  const TraceStore& store = piped->store();
  for (const auto& [frontier, records] : rounds) {
    std::string text = "# round up to " + std::to_string(frontier) + "\n";
    for (const EventRecord& rec : records) {
      text += "STATE," + store.resource_path(rec.resource) + "," +
              store.states().name(rec.state) + "," +
              std::to_string(rec.begin) + "," + std::to_string(rec.end) +
              "\n";
    }
    pipeline.submit_text(text);
    pipeline.advance_watermark(frontier);
  }
  pipeline.close();

  ASSERT_EQ(pipe_snaps.size(), sync_snaps.size());
  for (std::size_t k = 0; k < sync_snaps.size(); ++k) {
    EXPECT_EQ(pipe_snaps[k], sync_snaps[k]) << "round " << k;
  }
}

TEST(IngestPipeline, BackpressureBoundsDepthWithoutDropsOrReorders) {
  // A deliberately slow advance worker with tiny queues: the producer
  // must get throttled (blocked pushes observed), depth must never pass
  // the configured capacities, and — the no-drop/no-reorder property —
  // the final state must still be bit-identical to the synchronous loop.
  Fixture fx(0xB10C);
  auto sync = fx.make_manager(1);
  auto piped = fx.make_manager(1);
  const auto rounds = fx.rounds(seconds(0.5), seconds(24.0));
  ASSERT_GE(rounds.size(), 20u);
  (void)run_sync_oracle(*sync, rounds);

  IngestPipelineOptions opt;
  opt.parse_workers = 2;
  opt.shard_queue_capacity = 2;
  opt.batch_queue_capacity = 2;
  opt.watermark_queue_capacity = 1;
  opt.max_batch_records = 32;
  opt.on_advance = [](TimeNs) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  IngestPipeline pipeline(*piped, opt);
  std::uint64_t submitted = 0;
  for (const auto& [frontier, records] : rounds) {
    // Split each round into several submissions so shard queues see
    // steady small jobs rather than one blob per round.
    std::size_t i = 0;
    while (i < records.size()) {
      const std::size_t n = std::min<std::size_t>(96, records.size() - i);
      pipeline.submit_records(std::vector<EventRecord>(
          records.begin() + static_cast<std::ptrdiff_t>(i),
          records.begin() + static_cast<std::ptrdiff_t>(i + n)));
      i += n;
    }
    submitted += records.size();
    pipeline.advance_watermark(frontier);
  }
  pipeline.close();

  const IngestPipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.records_sealed, submitted) << "no event may be dropped";
  EXPECT_EQ(stats.rounds_advanced, rounds.size());
  std::uint64_t blocked = stats.batch_queue.blocked_pushes +
                          stats.watermark_queue.blocked_pushes;
  for (const BoundedQueueStats& q : stats.shard_queues) {
    EXPECT_LE(q.high_water, q.capacity) << "shard queue depth unbounded";
    blocked += q.blocked_pushes;
  }
  EXPECT_LE(stats.batch_queue.high_water, stats.batch_queue.capacity);
  EXPECT_LE(stats.watermark_queue.high_water,
            stats.watermark_queue.capacity);
  EXPECT_GT(blocked, 0u)
      << "a throttled consumer must block some producer push";

  // Bit-identity after the storm — covers drop and reorder alike (a
  // reorder within a resource would change the sealed interval sequence
  // and with it some window's partition).
  for (std::size_t i = 0; i < sync->session_count(); ++i) {
    EXPECT_EQ(keys_of(piped->session(i).results()),
              keys_of(sync->session(i).results()))
        << "session " << i;
  }
}

TEST(IngestPipeline, RandomizedRoundSizesStayIdentical) {
  // Fuzz the batching: random per-submission sizes compared against the
  // synchronous loop at every watermark.
  Fixture fx(0xF22);
  auto sync = fx.make_manager(4);
  auto piped = fx.make_manager(4);
  const auto rounds = fx.rounds(seconds(2.0), seconds(24.0));
  const std::vector<Snapshot> sync_snaps = run_sync_oracle(*sync, rounds);
  std::mt19937_64 rng(0xDEAD5EED);

  std::vector<Snapshot> pipe_snaps;
  IngestPipelineOptions opt;
  opt.parse_workers = 4;
  opt.max_batch_records = 64;
  opt.on_advance = [&](TimeNs wm) {
    pipe_snaps.push_back(snapshot_of(*piped, wm));
  };
  IngestPipeline pipeline(*piped, opt);
  for (const auto& [frontier, records] : rounds) {
    std::size_t i = 0;
    while (i < records.size()) {
      const std::size_t n = std::min<std::size_t>(
          1 + rng() % 200, records.size() - i);
      pipeline.submit_records(std::vector<EventRecord>(
          records.begin() + static_cast<std::ptrdiff_t>(i),
          records.begin() + static_cast<std::ptrdiff_t>(i + n)));
      i += n;
    }
    pipeline.advance_watermark(frontier);
  }
  pipeline.close();

  ASSERT_EQ(pipe_snaps.size(), sync_snaps.size());
  for (std::size_t k = 0; k < sync_snaps.size(); ++k) {
    EXPECT_EQ(pipe_snaps[k], sync_snaps[k]) << "round " << k;
  }
}

TEST(IngestPipeline, UnknownNamesFailTheWholePipeline) {
  Fixture fx(0xE44);
  auto piped = fx.make_manager(1);
  IngestPipelineOptions opt;
  opt.parse_workers = 2;
  IngestPipeline pipeline(*piped, opt);
  try {
    // Any of these may observe the failure first, depending on when the
    // parse worker hits the bad record — all of them must surface it.
    pipeline.submit_text("STATE,no/such/resource,compute,0,5\n");
    pipeline.advance_watermark(fx.horizon + seconds(1.0));
    pipeline.wait_until_advanced(fx.horizon + seconds(1.0));
    FAIL() << "pipeline must fail on an unknown resource";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown resource"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(pipeline.close(), InvalidArgument);
}

TEST(IngestPipeline, RejectsMisuse) {
  Fixture fx(0xE45);
  auto piped = fx.make_manager(1);
  {
    IngestPipelineOptions opt;
    opt.parse_workers = 0;
    EXPECT_THROW(IngestPipeline(*piped, opt), InvalidArgument);
  }
  IngestPipeline pipeline(*piped, {});
  pipeline.advance_watermark(fx.horizon + seconds(2.0));
  EXPECT_THROW(pipeline.advance_watermark(fx.horizon + seconds(1.0)),
               InvalidArgument)
      << "watermark frontiers must be non-decreasing";
  pipeline.close();
  EXPECT_THROW(pipeline.submit_records({EventRecord{0, 0, 0, 1}}),
               InvalidArgument);
  EXPECT_THROW(pipeline.advance_watermark(fx.horizon + seconds(3.0)),
               InvalidArgument);
}

}  // namespace
}  // namespace stagg
