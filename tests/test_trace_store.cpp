// TraceStore / TraceView suite: the immutable chunked substrate and its
// zero-copy window/scope selection.
//
// The load-bearing properties:
//   * Layout independence — however the same interval multiset is
//     partitioned into sealed chunks (streaming seals, compaction,
//     eviction, copies), the merged per-resource sequence and every model
//     fold built from it are bit-identical to a freshly sorted
//     single-owner trace.
//   * Fence pruning is an optimization, never a semantic — a view over
//     [t0, t1) folds exactly what a whole-trace build with that window
//     folds.
//   * IO equivalence — write -> read, write -> stream-fold, and
//     chunked-store ingest of the same events produce bit-identical
//     models (including the empty trace, zero-duration events, window
//     overrides, and evict_before mid-stream).
#include "trace/trace_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/aggregator.hpp"
#include "hierarchy/hierarchy.hpp"
#include "model/builder.hpp"
#include "trace/binary_io.hpp"
#include "trace/trace.hpp"
#include "trace/trace_view.hpp"

namespace stagg {
namespace {

/// Temp-file path helper (tests run in the build directory).
std::string temp_path(const std::string& name) {
  return "test_trace_store_" + name + ".stgt";
}

void expect_models_equal(const MicroscopicModel& a, const MicroscopicModel& b,
                         const std::string& context) {
  ASSERT_EQ(a.resource_count(), b.resource_count()) << context;
  ASSERT_EQ(a.slice_count(), b.slice_count()) << context;
  ASSERT_EQ(a.state_count(), b.state_count()) << context;
  const auto ra = a.raw();
  const auto rb = b.raw();
  ASSERT_EQ(ra.size(), rb.size()) << context;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i], rb[i]) << context << " cell " << i;
  }
}

/// Random trace with edge-heavy timing: events on slice edges, zero
/// durations, duplicates.
Trace make_random_trace(const Hierarchy& h, std::uint64_t seed,
                        TimeNs span, int events_per_resource) {
  SplitMix64 mix(seed);
  Trace t;
  const StateId states[] = {t.states().intern("a"), t.states().intern("b"),
                            t.states().intern("c")};
  for (LeafId leaf = 0; leaf < static_cast<LeafId>(h.leaf_count()); ++leaf) {
    const ResourceId r = t.add_resource(h.path(h.leaf_node(leaf)));
    for (int k = 0; k < events_per_resource; ++k) {
      const TimeNs b = static_cast<TimeNs>(mix.next() % span);
      TimeNs d = static_cast<TimeNs>(mix.next() % (span / 16));
      if (mix.next() % 8 == 0) d = 0;  // zero-duration (instantaneous call)
      t.add_state(r, states[mix.next() % 3], b, b + d);
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// Chunk mechanics.
// ---------------------------------------------------------------------------

TEST(TraceStore, SealAcrossRoundsBuildsChunksWithFences) {
  TraceStore store;
  const ResourceId r = store.add_resource("r");
  const StateId x = store.states().intern("s");
  store.add_state(r, x, 100, 200);
  store.add_state(r, x, 0, 50);
  store.seal_chunk();
  ASSERT_EQ(store.chunks(r).size(), 1u);
  EXPECT_EQ(store.chunks(r)[0]->min_begin(), 0);
  EXPECT_EQ(store.chunks(r)[0]->min_end(), 50);
  EXPECT_EQ(store.chunks(r)[0]->max_end(), 200);
  EXPECT_TRUE(store.sealed());

  store.add_state(r, x, 300, 400);
  EXPECT_FALSE(store.sealed());
  store.seal_chunk();
  ASSERT_EQ(store.chunks(r).size(), 2u);
  EXPECT_EQ(store.begin(), 0);
  EXPECT_EQ(store.end(), 400);
  EXPECT_EQ(store.state_count(), 3u);

  // Idempotent: a clean re-seal creates no chunk.
  store.seal_chunk();
  EXPECT_EQ(store.chunks(r).size(), 2u);
}

TEST(TraceStore, MergedRowsAreLayoutIndependent) {
  // The same multiset sealed in one round vs many rounds materializes to
  // the same sequence.
  SplitMix64 mix(7);
  Trace incremental;
  Trace batch;
  const ResourceId ri = incremental.add_resource("r");
  const ResourceId rb = batch.add_resource("r");
  (void)incremental.states().intern("s");
  (void)batch.states().intern("s");
  for (int round = 0; round < 12; ++round) {
    for (int k = 0; k < 17; ++k) {
      const auto b = static_cast<TimeNs>(mix.next() % 500);
      const auto d = static_cast<TimeNs>(mix.next() % 40);
      incremental.add_state(ri, StateId{0}, b, b + d);
      batch.add_state(rb, StateId{0}, b, b + d);
    }
    incremental.seal();
  }
  incremental.seal();
  batch.seal();
  EXPECT_GT(incremental.store()->chunks(ri).size(), 1u);
  const auto a = incremental.intervals(ri);
  const auto e = batch.intervals(rb);
  ASSERT_EQ(a.size(), e.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], e[i]) << i;
}

TEST(TraceStore, CompactionBoundsChunkCountAndPreservesRows) {
  Trace many;
  Trace once;
  const ResourceId rm = many.add_resource("r");
  const ResourceId ro = once.add_resource("r");
  (void)many.states().intern("s");
  (void)once.states().intern("s");
  SplitMix64 mix(11);
  const int rounds = 3 * static_cast<int>(TraceStore::kCompactionThreshold);
  for (int round = 0; round < rounds; ++round) {
    const auto b = static_cast<TimeNs>(mix.next() % 10000);
    many.add_state(rm, StateId{0}, b, b + 5);
    once.add_state(ro, StateId{0}, b, b + 5);
    many.seal();  // one chunk per round, compacted past the threshold
  }
  once.seal();
  EXPECT_LE(many.store()->chunks(rm).size(),
            TraceStore::kCompactionThreshold + 1);
  const auto a = many.intervals(rm);
  const auto e = once.intervals(ro);
  ASSERT_EQ(a.size(), e.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], e[i]) << i;
}

TEST(TraceStore, CopySharesChunksButMutatesIndependently) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  const StateId x = t.states().intern("s");
  t.add_state(r, x, 0, 10);
  t.add_state(r, x, 20, 30);
  t.seal();

  Trace copy = t;
  // The sealed chunk is shared by pointer, not duplicated.
  ASSERT_EQ(copy.store()->chunks(r).size(), 1u);
  EXPECT_EQ(copy.store()->chunks(r)[0].get(), t.store()->chunks(r)[0].get());

  copy.add_state(r, x, 40, 50);
  copy.seal();
  copy.erase_before(15);
  copy.seal();
  EXPECT_EQ(copy.state_count(), 2u);  // [20,30) and [40,50)
  EXPECT_EQ(t.state_count(), 2u);     // original untouched: [0,10), [20,30)
  EXPECT_EQ(t.intervals(r)[0].begin, 0);
}

TEST(TraceStore, EvictBeforeDropsOnlyWholeDeadChunks) {
  TraceStore store;
  const ResourceId r = store.add_resource("r");
  const StateId x = store.states().intern("s");
  store.add_state(r, x, 0, 10);
  store.add_state(r, x, 10, 20);
  store.seal_chunk();  // chunk A: max_end 20
  store.add_state(r, x, 15, 40);
  store.add_state(r, x, 50, 60);
  store.seal_chunk();  // chunk B: straddles any cutoff in (15, 40]
  ASSERT_EQ(store.chunks(r).size(), 2u);

  store.evict_before(20);
  // A is provably dead (max_end <= 20) and unlinked; B straddles and is
  // kept whole — including its [15, 40) interval.
  ASSERT_EQ(store.chunks(r).size(), 1u);
  EXPECT_EQ(store.state_count(), 2u);
  EXPECT_EQ(store.chunks(r)[0]->min_begin(), 15);

  // Exact erase (the Trace facade contract) rewrites straddlers.
  store.erase_before_exact(55);
  ASSERT_EQ(store.chunks(r).size(), 1u);
  EXPECT_EQ(store.state_count(), 1u);
  EXPECT_EQ(store.chunks(r)[0]->min_begin(), 50);
}

TEST(TraceStore, CompactionRespectsEvictionHorizonUnderSlidingIngest) {
  // A long-running sliding ingest whose chunks carry long straddling
  // intervals, so dozens stay fence-alive at once and compaction runs
  // regularly.  Merged chunks must let go of intervals below the
  // eviction horizon — retained memory tracks the live window plus the
  // straddle span, never everything ever ingested.
  TraceStore store;
  const ResourceId r = store.add_resource("r");
  const StateId x = store.states().intern("s");
  const TimeNs dt = 10;
  const TimeNs straddle = 40 * dt;  // keeps ~44 chunks fence-alive
  const TimeNs window = 4 * dt;
  const int rounds = 16 * static_cast<int>(TraceStore::kCompactionThreshold);
  for (int round = 0; round < rounds; ++round) {
    const TimeNs t = dt * round;
    store.add_state(r, x, t, t + dt / 2);    // dead a few rounds later
    store.add_state(r, x, t, t + straddle);  // pins the chunk's fence
    store.seal_chunk();
    store.evict_before(t - window);
  }
  // Alive: ~(straddle + window)/dt straddlers + the short tail of the
  // window, with compaction slack — far below the 2 * rounds ingested.
  const auto alive_bound = static_cast<std::uint64_t>(
      2 * ((straddle + window) / dt) + 4 * TraceStore::kCompactionThreshold);
  EXPECT_LE(store.state_count(), alive_bound);
  EXPECT_LT(store.state_count(), static_cast<std::uint64_t>(rounds));
  EXPECT_LE(store.chunks(r).size(), TraceStore::kCompactionThreshold + 1);
}

TEST(TraceStore, EraseBeforeIsPointInTimeNotRetroactive) {
  // erase_before (the facade contract) must not install a sticky horizon:
  // an old interval appended *after* the erase survives any amount of
  // later sealing and compaction.
  Trace t;
  const ResourceId r = t.add_resource("r");
  const StateId x = t.states().intern("s");
  t.add_state(r, x, 0, 50);
  t.add_state(r, x, 200, 300);
  t.seal();
  t.erase_before(100);
  EXPECT_EQ(t.state_count(), 1u);

  t.add_state(r, x, 10, 50);  // late-arriving event below the old cutoff
  t.seal();
  // Force many seal rounds so compaction definitely runs.
  for (int round = 0;
       round < 3 * static_cast<int>(TraceStore::kCompactionThreshold);
       ++round) {
    t.add_state(r, x, 400 + round, 400 + round + 1);
    t.seal();
  }
  bool found = false;
  for (const auto& s : t.intervals(r)) {
    found = found || (s.begin == 10 && s.end == 50);
  }
  EXPECT_TRUE(found) << "late-appended [10,50) was retroactively erased";
}

TEST(TraceStore, OutstandingViewsSurviveEvictionAndCompaction) {
  auto store = std::make_shared<TraceStore>();
  const ResourceId r = store->add_resource("r");
  const StateId x = store->states().intern("s");
  store->add_state(r, x, 0, 10);
  store->seal_chunk();
  store->set_window(0, 100);
  const TraceView view(store, 0, 100);
  ASSERT_EQ(view.selected_count(), 1u);

  store->evict_before(50);  // unlinks the only chunk
  EXPECT_EQ(store->state_count(), 0u);
  // The view's snapshot still reads the unlinked chunk.
  std::size_t seen = 0;
  view.for_each(0, [&](const StateInterval& s) {
    EXPECT_EQ(s.begin, 0);
    EXPECT_EQ(s.end, 10);
    ++seen;
  });
  EXPECT_EQ(seen, 1u);
}

// ---------------------------------------------------------------------------
// View selection folds exactly like whole-trace builds.
// ---------------------------------------------------------------------------

TEST(TraceView, WindowSelectionFoldsBitIdenticalToWholeTraceBuild) {
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  Trace trace = make_random_trace(h, 0xAB, seconds(30.0), 120);
  trace.seal();
  // Force a multi-chunk layout of the same multiset.
  Trace chunked;
  for (const auto& name : trace.states().names()) {
    (void)chunked.states().intern(name);
  }
  SplitMix64 mix(3);
  for (ResourceId r = 0; r < static_cast<ResourceId>(trace.resource_count());
       ++r) {
    chunked.add_resource(trace.resource_path(r));
    int n = 0;
    for (const auto& s : trace.intervals(r)) {
      chunked.add_state(r, s.state, s.begin, s.end);
      if (++n % 25 == 0) chunked.seal();  // several sealed runs per lane
    }
  }
  chunked.set_window(trace.begin(), trace.end());
  chunked.seal();

  for (const auto& [t0, t1] : std::vector<std::pair<TimeNs, TimeNs>>{
           {seconds(5.0), seconds(17.0)},
           {0, seconds(30.0)},
           {seconds(29.0), seconds(31.0)},
       }) {
    ModelBuildOptions opt;
    opt.slice_count = 24;
    opt.window_begin = t0;
    opt.window_end = t1;
    MicroscopicModel whole = build_model(trace, h, opt);
    const TraceView view(chunked.store(), t0, t1);
    EXPECT_LE(view.selected_count(), trace.state_count());
    MicroscopicModel pruned = build_model(view, h, opt);
    expect_models_equal(whole, pruned,
                        "window [" + std::to_string(t0) + ", " +
                            std::to_string(t1) + ")");
  }
}

TEST(TraceView, ScopedViewMatchesPrivateSubTrace) {
  const Hierarchy full = make_balanced_hierarchy(2, 3);  // 9 leaves
  // Scope: first cluster only (leaves 0..2).
  HierarchyBuilder b("root");
  const NodeId c = b.add(0, "n0_0");
  b.add_many(c, "n1_", 3);
  const Hierarchy sub = b.finish();

  Trace trace = make_random_trace(full, 0xCD, seconds(20.0), 80);
  trace.seal();

  // Private sub-trace holding only the scoped resources (all states
  // interned so |X| matches).
  Trace private_sub;
  for (const auto& name : trace.states().names()) {
    (void)private_sub.states().intern(name);
  }
  std::vector<ResourceId> scope;
  for (ResourceId r = 0; r < 3; ++r) {
    private_sub.add_resource(trace.resource_path(r));
    for (const auto& s : trace.intervals(r)) {
      private_sub.add_state(r, s.state, s.begin, s.end);
    }
    scope.push_back(r);
  }
  private_sub.set_window(trace.begin(), trace.end());
  private_sub.seal();

  ModelBuildOptions opt;
  opt.slice_count = 16;
  opt.window_begin = seconds(2.0);
  opt.window_end = seconds(18.0);
  MicroscopicModel expected = build_model(private_sub, sub, opt);
  const TraceView view(trace.store(), opt.window_begin, opt.window_end,
                       scope);
  ASSERT_EQ(view.resource_count(), 3u);
  MicroscopicModel got = build_model(view, sub, opt);
  expect_models_equal(expected, got, "scoped view");
}

TEST(TraceView, RequiresSealedTails) {
  auto store = std::make_shared<TraceStore>();
  const ResourceId r = store->add_resource("r");
  const StateId x = store->states().intern("s");
  store->add_state(r, x, 0, 10);
  EXPECT_THROW(TraceView(store, 0, 10), InvalidArgument);
  store->seal_chunk();
  EXPECT_NO_THROW(TraceView(store, 0, 10));
}

// ---------------------------------------------------------------------------
// IO equivalence property: write -> read, write -> stream, chunked-store
// ingest are bit-identical.
// ---------------------------------------------------------------------------

TEST(TraceStoreIo, ReadStreamAndChunkedIngestAreBitIdentical) {
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  Trace trace = make_random_trace(h, 0xEF, seconds(25.0), 150);
  trace.seal();
  const std::string path = temp_path("property");
  write_binary_trace(trace, path);

  ModelBuildOptions opt;
  opt.slice_count = 30;

  Trace read = read_binary_trace(path);
  MicroscopicModel from_read = build_model(read, h, opt);
  MicroscopicModel from_stream = build_model_streaming(path, h, opt);
  expect_models_equal(from_read, from_stream, "read vs stream");

  // Tiny chunk budget: the ingest seals many chunks per resource and
  // exercises compaction — the fold must not notice.
  const auto store = read_binary_trace_store(path, /*chunk_records=*/64);
  EXPECT_EQ(store->state_count(), trace.state_count());
  MicroscopicModel from_store = build_model(TraceView(store), h, opt);
  expect_models_equal(from_read, from_store, "read vs chunked store");

  std::remove(path.c_str());
}

TEST(TraceStoreIo, EmptyTraceRoundTripsThroughStoreIngest) {
  Trace empty;
  (void)empty.states().intern("s");  // states table, zero records
  empty.add_resource("r");
  empty.set_window(0, seconds(1.0));
  empty.seal();
  const std::string path = temp_path("empty");
  write_binary_trace(empty, path);

  const auto store = read_binary_trace_store(path);
  EXPECT_EQ(store->state_count(), 0u);
  EXPECT_EQ(store->resource_count(), 1u);
  EXPECT_EQ(store->begin(), 0);
  EXPECT_EQ(store->end(), seconds(1.0));
  const TraceView view(store);
  EXPECT_EQ(view.selected_count(), 0u);

  Trace read = read_binary_trace(path);
  EXPECT_EQ(read.state_count(), 0u);
  EXPECT_EQ(read.end(), seconds(1.0));
  std::remove(path.c_str());
}

TEST(TraceStoreIo, WindowOverrideSurvivesStoreIngest) {
  const Hierarchy h = make_balanced_hierarchy(1, 2);
  Trace trace = make_random_trace(h, 0x11, seconds(10.0), 40);
  trace.set_window(-seconds(1.0), seconds(12.0));  // wider than the data
  trace.seal();
  const std::string path = temp_path("window");
  write_binary_trace(trace, path);

  const auto store = read_binary_trace_store(path, /*chunk_records=*/32);
  EXPECT_EQ(store->begin(), -seconds(1.0));
  EXPECT_EQ(store->end(), seconds(12.0));

  ModelBuildOptions opt;
  opt.slice_count = 26;
  Trace read = read_binary_trace(path);
  expect_models_equal(build_model(read, h, opt),
                      build_model(TraceView(store), h, opt),
                      "override window");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Backend polymorphism: spilled (file-backed) chunks are bit-identical to
// resident ones through every reader, mutation and layout change.
// ---------------------------------------------------------------------------

std::string spill_path(const std::string& name) {
  return "test_trace_store_" + name + ".spill";
}

/// Collects the streamed interval sequence of every view resource.
std::vector<std::vector<StateInterval>> stream_all(const TraceView& view) {
  std::vector<std::vector<StateInterval>> rows(view.resource_count());
  for (std::size_t r = 0; r < view.resource_count(); ++r) {
    view.for_each(r, [&rows, r](const StateInterval& s) {
      rows[r].push_back(s);
    });
  }
  return rows;
}

void expect_aggregations_equal(const MicroscopicModel& a,
                               const MicroscopicModel& b, std::size_t lanes,
                               const std::string& context) {
  AggregationOptions opt;
  opt.max_lanes = lanes;
  const std::vector<double> ps = {0.0, 0.25, 0.5, 0.75, 1.0};
  SpatiotemporalAggregator agg_a(a, opt);
  SpatiotemporalAggregator agg_b(b, opt);
  const auto ra = agg_a.run_many(ps);
  const auto rb = agg_b.run_many(ps);
  ASSERT_EQ(ra.size(), rb.size()) << context;
  for (std::size_t k = 0; k < ra.size(); ++k) {
    EXPECT_EQ(ra[k].optimal_pic, rb[k].optimal_pic)
        << context << " W=" << lanes << " p=" << ps[k];
    EXPECT_EQ(ra[k].partition.signature(), rb[k].partition.signature())
        << context << " W=" << lanes << " p=" << ps[k];
  }
}

/// Multi-chunk store of the given trace's events (several sealed runs per
/// lane so spill decisions have real choices).
Trace make_chunked_copy(const Trace& trace) {
  Trace chunked;
  for (const auto& name : trace.states().names()) {
    (void)chunked.states().intern(name);
  }
  for (ResourceId r = 0; r < static_cast<ResourceId>(trace.resource_count());
       ++r) {
    chunked.add_resource(trace.resource_path(r));
    int n = 0;
    for (const auto& s : trace.intervals(r)) {
      chunked.add_state(r, s.state, s.begin, s.end);
      if (++n % 25 == 0) chunked.seal();
    }
  }
  chunked.set_window(trace.begin(), trace.end());
  chunked.seal();
  return chunked;
}

TEST(TraceStoreSpill, SpillPinStreamBitIdenticalToResident) {
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  Trace resident = make_random_trace(h, 0x51, seconds(25.0), 140);
  resident.seal();
  Trace chunked = make_chunked_copy(resident);
  const std::string spill = spill_path("property");
  std::remove(spill.c_str());
  chunked.store()->enable_spill(spill);

  ModelBuildOptions opt;
  opt.slice_count = 24;
  const MicroscopicModel want = build_model(resident, h, opt);

  // Budget 0: everything sealed leaves anonymous memory.
  const std::size_t total = chunked.store()->store_bytes();
  (void)chunked.store()->spill_cold(0);
  EXPECT_EQ(chunked.store()->resident_chunk_bytes(), 0u);
  EXPECT_GE(chunked.store()->spilled_chunk_bytes(), total / 2);
  EXPECT_EQ(chunked.state_count(), resident.state_count());

  const TraceView view(chunked.store());
  EXPECT_GT(view.spilled_run_count(), 0u);
  const MicroscopicModel spilled = build_model(view, h, opt);
  expect_models_equal(want, spilled, "fully spilled store");
  // The PR 4 layout-independence oracle, now across storage backends:
  // identical folds must aggregate identically at every lane width.
  expect_aggregations_equal(want, spilled, /*lanes=*/1, "spilled");
  expect_aggregations_equal(want, spilled, /*lanes=*/4, "spilled");

  // Pin everything back and fold again: backend swaps never touch data.
  const std::size_t pinned = chunked.store()->pin_all();
  EXPECT_GT(pinned, 0u);
  EXPECT_EQ(chunked.store()->spilled_chunk_bytes(), 0u);
  const MicroscopicModel repinned =
      build_model(TraceView(chunked.store()), h, opt);
  expect_models_equal(want, repinned, "spill -> pin round trip");
  expect_aggregations_equal(want, repinned, /*lanes=*/4, "repinned");

  std::remove(spill.c_str());
}

TEST(TraceStoreSpill, PartialBudgetRespectsColdFirstOrderAndBudget) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  const StateId x = t.states().intern("s");
  for (int round = 0; round < 6; ++round) {
    for (int k = 0; k < 8; ++k) {
      const TimeNs b = 100 * round + k;
      t.add_state(r, x, b, b + 5);
    }
    t.seal();
  }
  const std::string spill = spill_path("budget");
  std::remove(spill.c_str());
  t.store()->enable_spill(spill);
  const std::size_t total = t.store()->resident_chunk_bytes();
  ASSERT_EQ(t.store()->chunks(r).size(), 6u);

  const std::size_t spilled_chunks = t.store()->spill_cold(total / 2);
  EXPECT_LE(t.store()->resident_chunk_bytes(), total / 2);
  EXPECT_EQ(spilled_chunks, 3u);
  // Coldest (smallest fence max-end) chunks went first: the oldest rounds
  // are file-backed, the newest stay resident.
  const auto chunks = t.store()->chunks(r);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i]->resident(), i >= 3) << "chunk " << i;
  }
  // Idempotent under the same budget.
  EXPECT_EQ(t.store()->spill_cold(total / 2), 0u);
  std::remove(spill.c_str());
}

TEST(TraceStoreSpill, MidStreamSpillUnderOpenViewIsInvisible) {
  const Hierarchy h = make_balanced_hierarchy(1, 3);
  Trace trace = make_random_trace(h, 0x52, seconds(10.0), 60);
  trace.seal();
  Trace chunked = make_chunked_copy(trace);
  const std::string spill = spill_path("midstream");
  std::remove(spill.c_str());
  chunked.store()->enable_spill(spill);

  const TraceView before(chunked.store());
  const auto want = stream_all(before);

  // Spill the whole store while `before` is mid-stream: the view pinned
  // its chunks by reference and must not notice.
  bool spilled_mid_stream = false;
  std::vector<std::vector<StateInterval>> got(before.resource_count());
  for (std::size_t r = 0; r < before.resource_count(); ++r) {
    before.for_each(r, [&](const StateInterval& s) {
      if (!spilled_mid_stream) {
        (void)chunked.store()->spill_cold(0);
        spilled_mid_stream = true;
      }
      got[r].push_back(s);
    });
  }
  ASSERT_TRUE(spilled_mid_stream);
  EXPECT_EQ(got, want);

  // A fresh view over the now-spilled store streams the same sequence —
  // even after the spill file is unlinked (mapped pages stay alive) and
  // after the store pins chunks back mid-lifetime.
  const TraceView after(chunked.store());
  EXPECT_GT(after.spilled_run_count(), 0u);
  std::remove(spill.c_str());
  EXPECT_EQ(stream_all(after), want);
  (void)chunked.store()->pin_all();
  EXPECT_EQ(stream_all(after), want);
}

TEST(TraceStoreSpill, SpillThenEvictBeforePreservesSuffixWindows) {
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  Trace trace = make_random_trace(h, 0x53, seconds(20.0), 100);
  trace.seal();
  Trace chunked = make_chunked_copy(trace);
  const std::string spill = spill_path("evict");
  std::remove(spill.c_str());
  chunked.store()->enable_spill(spill);
  (void)chunked.store()->spill_cold(0);

  const TimeNs cutoff = seconds(9.0);
  const auto before = chunked.state_count();
  chunked.store()->evict_before(cutoff);
  EXPECT_LT(chunked.state_count(), before)
      << "fence eviction must unlink dead spilled chunks too";

  ModelBuildOptions opt;
  opt.slice_count = 22;
  opt.window_begin = cutoff;
  opt.window_end = seconds(20.0);
  expect_models_equal(
      build_model(trace, h, opt),
      build_model(TraceView(chunked.store(), cutoff, seconds(20.0)), h, opt),
      "post-evict suffix window over spilled store");
  std::remove(spill.c_str());
}

TEST(TraceStoreSpill, CompactionPinsSpilledChunksAndPreservesRows) {
  // Regression (satellite): size-tier compaction across a *mixed*
  // resident/spilled lane must pin file-backed members before merging —
  // and the merged rows must equal a never-spilled single-seal store.
  Trace mixed;
  Trace once;
  const ResourceId rm = mixed.add_resource("r");
  const ResourceId ro = once.add_resource("r");
  (void)mixed.states().intern("s");
  (void)once.states().intern("s");
  const std::string spill = spill_path("compaction");
  std::remove(spill.c_str());
  mixed.store()->enable_spill(spill);

  SplitMix64 mix(0x54);
  const int rounds = 3 * static_cast<int>(TraceStore::kCompactionThreshold);
  for (int round = 0; round < rounds; ++round) {
    for (int k = 0; k < 4; ++k) {
      const auto b = static_cast<TimeNs>(mix.next() % 10000);
      mixed.add_state(rm, StateId{0}, b, b + 7);
      once.add_state(ro, StateId{0}, b, b + 7);
    }
    mixed.seal();  // one chunk per round; compaction past the threshold
    // Keep roughly half of every lane file-backed so each compaction
    // merges across spilled chunks.
    (void)mixed.store()->spill_cold(mixed.store()->resident_chunk_bytes() /
                                    2);
  }
  once.seal();
  EXPECT_LE(mixed.store()->chunks(rm).size(),
            TraceStore::kCompactionThreshold + 1);
  EXPECT_GT(mixed.store()->spilled_chunk_bytes(), 0u);
  const auto a = mixed.intervals(rm);
  const auto e = once.intervals(ro);
  ASSERT_EQ(a.size(), e.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], e[i]) << i;
  std::remove(spill.c_str());
}

// ---------------------------------------------------------------------------
// Chunk files: zero-copy open, loud rejection of truncation/corruption.
// ---------------------------------------------------------------------------

TEST(TraceStoreIo, ChunkFileReopensZeroCopyAndFoldsBitIdentical) {
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  Trace trace = make_random_trace(h, 0x61, seconds(25.0), 150);
  trace.seal();
  Trace chunked = make_chunked_copy(trace);
  const std::string path = temp_path("chunkfile");
  const std::uint64_t bytes = write_chunk_file(*chunked.store(), path);
  EXPECT_GT(bytes, 0u);
  ASSERT_TRUE(is_chunk_file(path));

  // read_binary_trace_store sniffs the magic and takes the mmap path:
  // nothing is rehydrated, the store starts fully file-backed.
  const auto store = read_binary_trace_store(path);
  EXPECT_EQ(store->state_count(), trace.state_count());
  EXPECT_EQ(store->resident_chunk_bytes(), 0u);
  EXPECT_GT(store->spilled_chunk_bytes(), 0u);
  EXPECT_EQ(store->begin(), trace.begin());
  EXPECT_EQ(store->end(), trace.end());

  ModelBuildOptions opt;
  opt.slice_count = 30;
  const MicroscopicModel want = build_model(trace, h, opt);
  const MicroscopicModel mapped = build_model(TraceView(store), h, opt);
  expect_models_equal(want, mapped, "mmapped chunk file");
  expect_aggregations_equal(want, mapped, /*lanes=*/1, "mmapped chunk file");
  expect_aggregations_equal(want, mapped, /*lanes=*/4, "mmapped chunk file");

  // The Trace facade reader sniffs too.
  Trace reread = read_binary_trace(path);
  EXPECT_EQ(reread.state_count(), trace.state_count());
  expect_models_equal(want, build_model(reread, h, opt),
                      "chunk file through the facade reader");
  std::remove(path.c_str());
}

TEST(TraceStoreIo, ChunkFileRejectsTruncationAndCorruptionWithOffsets) {
  // One resource, one state, one 3-interval chunk: a fixed layout whose
  // offsets the corruption below can target deterministically.
  Trace t;
  const ResourceId r = t.add_resource("r");
  const StateId x = t.states().intern("s");
  t.add_state(r, x, 0, 10);
  t.add_state(r, x, 5, 25);
  t.add_state(r, x, 20, 30);
  t.seal();
  const std::string path = temp_path("corrupt");
  write_chunk_file(*t.store(), path);

  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 60u);

  const auto write_bytes_to = [&](const std::string& p,
                                  const std::vector<char>& data) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  };
  const auto expect_throws_with = [&](const std::string& p,
                                      const std::string& needle) {
    try {
      (void)read_binary_trace_store(p);
      FAIL() << "expected TraceFormatError mentioning '" << needle << "'";
    } catch (const TraceFormatError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(needle), std::string::npos) << what;
      EXPECT_NE(what.find("offset"), std::string::npos) << what;
    }
  };

  // Truncated payload: drop the trailing 12 bytes of the only chunk.
  std::vector<char> truncated(bytes.begin(), bytes.end() - 12);
  write_bytes_to(path, truncated);
  expect_throws_with(path, "truncated chunk");

  // Bit flip inside the state column (bytes.size()-4 is record padding for
  // a 3-entry chunk; -5 is the last state byte): checksum must trip.
  std::vector<char> corrupt = bytes;
  corrupt[corrupt.size() - 5] ^= 0x40;
  write_bytes_to(path, corrupt);
  expect_throws_with(path, "checksum mismatch");

  // And the pristine bytes must still open cleanly.
  write_bytes_to(path, bytes);
  EXPECT_NO_THROW((void)read_binary_trace_store(path));
  std::remove(path.c_str());
}

TEST(TraceStoreIo, ChunkFileRewriteOverItsOwnMappingIsSafe) {
  // Writing a chunk file over the very file the store's chunks are mapped
  // from must not truncate the pages mid-read (write-to-temp + rename).
  Trace t;
  const ResourceId r = t.add_resource("r");
  const StateId x = t.states().intern("s");
  for (int k = 0; k < 32; ++k) t.add_state(r, x, k * 10, k * 10 + 5);
  t.seal();
  const std::string path = temp_path("self_rewrite");
  write_chunk_file(*t.store(), path);

  const auto mapped = read_binary_trace_store(path);
  ASSERT_EQ(mapped->resident_chunk_bytes(), 0u);
  const std::uint64_t rewritten = write_chunk_file(*mapped, path);
  EXPECT_GT(rewritten, 0u);
  // The mapped store still reads its (pre-rename) pages, and the new file
  // reopens to the same content.
  EXPECT_EQ(mapped->state_count(), 32u);
  const auto reopened = read_binary_trace_store(path);
  EXPECT_EQ(reopened->state_count(), 32u);
  std::remove(path.c_str());
}

TEST(TraceStoreSpill, SpillRefusesForeignOrMisalignedFiles) {
  Trace t;
  const ResourceId r = t.add_resource("r");
  const StateId x = t.states().intern("s");
  t.add_state(r, x, 0, 10);
  t.seal();
  const std::string foreign = spill_path("foreign");
  {
    std::ofstream out(foreign, std::ios::binary | std::ios::trunc);
    out << "definitely not a spill file";
  }
  t.store()->enable_spill(foreign);
  EXPECT_THROW((void)t.store()->spill_cold(0), IoError);
  std::remove(foreign.c_str());
}

// ---------------------------------------------------------------------------
// Compressed backend: encoded chunks are bit-identical to raw ones through
// every reader, backend mix, mutation and file round trip.
// ---------------------------------------------------------------------------

/// Multi-chunk copy of the trace sealed under a compression policy set
/// *before* ingest (the seal-time encode path, as opposed to the
/// set_compression re-encode sweep).
Trace make_compressed_copy(const Trace& trace) {
  Trace out;
  for (const auto& name : trace.states().names()) {
    (void)out.states().intern(name);
  }
  out.store()->set_compression(ChunkCompression::kAuto);
  for (ResourceId r = 0; r < static_cast<ResourceId>(trace.resource_count());
       ++r) {
    out.add_resource(trace.resource_path(r));
    int n = 0;
    for (const auto& s : trace.intervals(r)) {
      out.add_state(r, s.state, s.begin, s.end);
      if (++n % 25 == 0) out.seal();
    }
  }
  out.set_window(trace.begin(), trace.end());
  out.seal();
  return out;
}

std::size_t count_chunks(const TraceStore& store, bool addressable,
                         bool resident) {
  std::size_t n = 0;
  for (ResourceId r = 0; r < static_cast<ResourceId>(store.resource_count());
       ++r) {
    for (const TraceChunkPtr& c : store.chunks(r)) {
      if (c->addressable() == addressable && c->resident() == resident) ++n;
    }
  }
  return n;
}

TEST(TraceStoreCompress, AutoPolicyShrinksStoreAndFoldsBitIdentical) {
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  Trace resident = make_random_trace(h, 0x71, seconds(25.0), 140);
  resident.seal();
  ModelBuildOptions opt;
  opt.slice_count = 24;
  const MicroscopicModel want = build_model(resident, h, opt);

  // Raw multi-chunk twin for the byte comparison.
  Trace raw = make_chunked_copy(resident);
  const std::size_t raw_bytes = raw.store()->store_bytes();

  // Seal-time path: the policy encodes every chunk as it seals.
  Trace sealed = make_compressed_copy(resident);
  EXPECT_EQ(sealed.store()->compression(), ChunkCompression::kAuto);
  EXPECT_LT(sealed.store()->store_bytes(), raw_bytes);
  EXPECT_GT(count_chunks(*sealed.store(), /*addressable=*/false,
                         /*resident=*/true),
            0u);
  const TraceView view(sealed.store());
  EXPECT_GT(view.compressed_run_count(), 0u);
  EXPECT_GT(view.cursor_scratch_bytes(), 0u);
  // The cursor scratch is bounded: fixed decoder state per run, far from
  // a decompressed copy of the store.
  EXPECT_LT(view.cursor_scratch_bytes(), raw_bytes / 4);
  const MicroscopicModel compressed = build_model(view, h, opt);
  expect_models_equal(want, compressed, "seal-time compressed store");
  expect_aggregations_equal(want, compressed, /*lanes=*/1, "compressed");
  expect_aggregations_equal(want, compressed, /*lanes=*/4, "compressed");

  // Re-encode sweep: set_compression(kAuto) on already-sealed raw chunks
  // rewrites them in place, shrinking the store without touching results.
  raw.store()->set_compression(ChunkCompression::kAuto);
  EXPECT_LT(raw.store()->store_bytes(), raw_bytes);
  expect_models_equal(want, build_model(TraceView(raw.store()), h, opt),
                      "re-encoded store");
  // Dropping back to kNone stops future encoding but never rewrites what
  // is already sealed.
  const std::size_t encoded_bytes = raw.store()->store_bytes();
  raw.store()->set_compression(ChunkCompression::kNone);
  EXPECT_EQ(raw.store()->store_bytes(), encoded_bytes);
}

TEST(TraceStoreCompress, MixedBackendStoreFoldsBitIdenticalAtW1AndW4) {
  // All three payload backends in one store — resident raw, mapped raw,
  // compressed (resident and mapped) — folded through one view against
  // the PR 4/5 oracles at both lane widths.
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  Trace resident = make_random_trace(h, 0x72, seconds(25.0), 140);
  resident.seal();
  Trace chunked = make_chunked_copy(resident);
  const std::string spill = spill_path("mixed");
  std::remove(spill.c_str());
  chunked.store()->enable_spill(spill);

  // Half the raw chunks to the file, then compress what stayed resident.
  (void)chunked.store()->spill_cold(chunked.store()->store_bytes() / 2);
  ASSERT_GT(count_chunks(*chunked.store(), /*addressable=*/true,
                         /*resident=*/false),
            0u);
  chunked.store()->set_compression(ChunkCompression::kAuto);
  ASSERT_GT(count_chunks(*chunked.store(), /*addressable=*/false,
                         /*resident=*/true),
            0u);
  // Spilling again writes compressed records: mapped compressed chunks.
  (void)chunked.store()->spill_cold(
      chunked.store()->resident_chunk_bytes() / 2);
  ASSERT_GT(count_chunks(*chunked.store(), /*addressable=*/false,
                         /*resident=*/false),
            0u);

  ModelBuildOptions opt;
  opt.slice_count = 24;
  const MicroscopicModel want = build_model(resident, h, opt);
  const TraceView view(chunked.store());
  EXPECT_GT(view.spilled_run_count(), 0u);
  EXPECT_GT(view.compressed_run_count(), 0u);
  const MicroscopicModel mixed = build_model(view, h, opt);
  expect_models_equal(want, mixed, "mixed-backend store");
  expect_aggregations_equal(want, mixed, /*lanes=*/1, "mixed backends");
  expect_aggregations_equal(want, mixed, /*lanes=*/4, "mixed backends");
  std::remove(spill.c_str());
}

TEST(TraceStoreCompress, MidStreamCompressAndSpillUnderOpenViewIsInvisible) {
  const Hierarchy h = make_balanced_hierarchy(1, 3);
  Trace trace = make_random_trace(h, 0x73, seconds(10.0), 60);
  trace.seal();
  Trace chunked = make_chunked_copy(trace);
  const std::string spill = spill_path("midcompress");
  std::remove(spill.c_str());
  chunked.store()->enable_spill(spill);

  const TraceView before(chunked.store());
  const auto want = stream_all(before);

  // Re-encode the whole store AND spill it while `before` is mid-stream:
  // the view pinned its chunks by shared pointer and must not notice.
  bool mutated_mid_stream = false;
  std::vector<std::vector<StateInterval>> got(before.resource_count());
  for (std::size_t r = 0; r < before.resource_count(); ++r) {
    before.for_each(r, [&](const StateInterval& s) {
      if (!mutated_mid_stream) {
        chunked.store()->set_compression(ChunkCompression::kAuto);
        (void)chunked.store()->spill_cold(0);
        mutated_mid_stream = true;
      }
      got[r].push_back(s);
    });
  }
  ASSERT_TRUE(mutated_mid_stream);
  EXPECT_EQ(got, want);

  // A fresh view streams the compressed records from the file; the
  // spilled accounting counts *encoded* bytes, so the file-backed side is
  // smaller than the raw columns it replaced.
  const TraceView after(chunked.store());
  EXPECT_GT(after.compressed_run_count(), 0u);
  EXPECT_EQ(stream_all(after), want);
  EXPECT_EQ(chunked.store()->resident_chunk_bytes(), 0u);
  EXPECT_LT(chunked.store()->spilled_chunk_bytes(),
            trace.store()->store_bytes());

  // Pinning back keeps chunks compressed (compressed-resident copies) and
  // bit-identical.
  (void)chunked.store()->pin_all();
  EXPECT_EQ(chunked.store()->spilled_chunk_bytes(), 0u);
  EXPECT_GT(count_chunks(*chunked.store(), /*addressable=*/false,
                         /*resident=*/true),
            0u);
  EXPECT_EQ(stream_all(TraceView(chunked.store())), want);
  std::remove(spill.c_str());
}

TEST(TraceStoreCompress, MixedBackendCompactionPreservesRows) {
  // Size-tier compaction over lanes mixing raw-mapped, compressed-resident
  // and compressed-mapped members: the cursor-based merge must reproduce a
  // never-spilled never-compressed single-seal store exactly.
  Trace mixed;
  Trace once;
  const ResourceId rm = mixed.add_resource("r");
  const ResourceId ro = once.add_resource("r");
  (void)mixed.states().intern("s");
  (void)once.states().intern("s");
  const std::string spill = spill_path("mixed_compaction");
  std::remove(spill.c_str());
  mixed.store()->enable_spill(spill);

  SplitMix64 mix(0x74);
  const int rounds = 3 * static_cast<int>(TraceStore::kCompactionThreshold);
  for (int round = 0; round < rounds; ++round) {
    // Raw chunks for the first tier, compressed ones from then on.
    if (round == static_cast<int>(TraceStore::kCompactionThreshold)) {
      mixed.store()->set_compression(ChunkCompression::kAuto);
    }
    for (int k = 0; k < 4; ++k) {
      const auto b = static_cast<TimeNs>(mix.next() % 10000);
      mixed.add_state(rm, StateId{0}, b, b + 7);
      once.add_state(ro, StateId{0}, b, b + 7);
    }
    mixed.seal();
    (void)mixed.store()->spill_cold(mixed.store()->resident_chunk_bytes() /
                                    2);
  }
  once.seal();
  EXPECT_LE(mixed.store()->chunks(rm).size(),
            TraceStore::kCompactionThreshold + 1);
  const auto a = mixed.intervals(rm);
  const auto e = once.intervals(ro);
  ASSERT_EQ(a.size(), e.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], e[i]) << i;
  std::remove(spill.c_str());
}

TEST(TraceStoreSpill, SpillFileCompactionBoundsChurnGrowth) {
  // Churn regression (satellite): seal/spill/evict cycles keep appending
  // records and killing old ones.  Without compaction the spill file
  // grows without bound; with it, dead bytes never exceed live bytes and
  // the file stays within a small multiple of the live payload.
  Trace t;
  const ResourceId r = t.add_resource("r");
  const StateId x = t.states().intern("s");
  const std::string spill = spill_path("churn");
  std::remove(spill.c_str());
  t.store()->enable_spill(spill);

  const auto file_size = [&]() -> std::size_t {
    std::ifstream in(spill, std::ios::binary | std::ios::ate);
    return in ? static_cast<std::size_t>(in.tellg()) : 0;
  };

  SplitMix64 mix(0x75);
  std::vector<StateInterval> added;
  std::size_t max_file = 0;
  for (int round = 0; round < 120; ++round) {
    const TimeNs base = round * 1000;
    for (int k = 0; k < 25; ++k) {
      const auto b = base + static_cast<TimeNs>(mix.next() % 1000);
      t.add_state(r, x, b, b + 40);
      added.push_back({b, b + 40, x});
    }
    t.seal();
    (void)t.store()->spill_cold(0);
    // A trailing 8-round window: everything older dies, so most of the
    // file's records are garbage within a few rounds.
    if (round >= 8) t.store()->evict_before((round - 8) * 1000);

    EXPECT_LE(t.store()->spill_dead_bytes(), t.store()->spill_live_bytes())
        << "round " << round
        << ": compaction must run before dead bytes overtake live bytes";
    // live + dead + magic/padding slack bounds the file.
    EXPECT_LE(file_size(), 2 * t.store()->spill_live_bytes() + 4096)
        << "round " << round;
    max_file = std::max(max_file, file_size());
  }
  ASSERT_GT(t.store()->spill_live_bytes(), 0u);
  // The whole churn wrote ~120 rounds of records; the file never held
  // more than a small multiple of one round's live set.
  EXPECT_LT(max_file, 8 * t.store()->spill_live_bytes() + 4096);

  // Eviction drops only whole dead chunks, so survivors may reach behind
  // the horizon — but everything at or past it must be present exactly.
  const TimeNs horizon = (119 - 8) * 1000;
  std::vector<StateInterval> expected;
  for (const auto& s : added) {
    if (s.begin >= horizon) expected.push_back(s);
  }
  std::sort(expected.begin(), expected.end(), interval_key_less);
  std::vector<StateInterval> got;
  for (const auto& s : t.intervals(r)) {
    if (s.begin >= horizon) got.push_back(s);
  }
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << i;
  }
  std::remove(spill.c_str());
}

TEST(TraceStoreIo, CompressedChunkFileRoundTripsAndRejectsCorruption) {
  // A compression-enabled store writes v2 records that keep the encoded
  // sections; reopening streams them zero-copy from the mapping, and any
  // tampering is rejected with the record's file offset.
  Trace t;
  const ResourceId r = t.add_resource("r");
  const StateId x = t.states().intern("s");
  t.store()->set_compression(ChunkCompression::kAuto);
  TimeNs at = 0;
  for (int k = 0; k < 40; ++k) {
    t.add_state(r, x, at, at + 250);
    at += 250;
  }
  t.seal();
  ASSERT_GT(count_chunks(*t.store(), /*addressable=*/false,
                         /*resident=*/true),
            0u);
  const std::string path = temp_path("compressed_chunkfile");
  write_chunk_file(*t.store(), path);
  ASSERT_TRUE(is_chunk_file(path));

  const auto reopened = read_binary_trace_store(path);
  EXPECT_EQ(reopened->state_count(), 40u);
  // The record stays encoded on disk and maps back as a compressed chunk:
  // nothing resident, and the file-backed bytes are the encoded ones.
  EXPECT_EQ(reopened->resident_chunk_bytes(), 0u);
  EXPECT_GT(reopened->spilled_chunk_bytes(), 0u);
  EXPECT_LT(reopened->spilled_chunk_bytes(), 40u * 20u);
  EXPECT_EQ(stream_all(TraceView(reopened)), stream_all(TraceView(t.store())));

  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  // Fixed layout: 48-byte file header, "r" + "s" tables (10 bytes) padded
  // to 64, then the 72-byte record header — the encoded begin section
  // starts at 136.
  ASSERT_GT(bytes.size(), 140u);

  const auto write_bytes_to = [&](const std::string& p,
                                  const std::vector<char>& data) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  };
  const auto expect_throws_with = [&](const std::string& p,
                                      const std::string& needle) {
    try {
      (void)read_binary_trace_store(p);
      FAIL() << "expected TraceFormatError mentioning '" << needle << "'";
    } catch (const TraceFormatError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(needle), std::string::npos) << what;
      EXPECT_NE(what.find("offset"), std::string::npos) << what;
    }
  };

  // Truncated encoded payload.
  std::vector<char> truncated(bytes.begin(), bytes.end() - 12);
  write_bytes_to(path, truncated);
  expect_throws_with(path, "truncated chunk");

  // Bit flip inside the encoded begin section: checksum must trip.
  std::vector<char> corrupt = bytes;
  corrupt[136] ^= 0x40;
  write_bytes_to(path, corrupt);
  expect_throws_with(path, "checksum mismatch");

  // Invalid codec tag (end column claiming the begin-only gap codec; byte
  // 69 is the record header's end-codec tag).
  std::vector<char> bad_codec = bytes;
  bad_codec[69] = 4;
  write_bytes_to(path, bad_codec);
  expect_throws_with(path, "invalid chunk codec tags");

  // Pristine bytes still open and fold identically.
  write_bytes_to(path, bytes);
  EXPECT_EQ(stream_all(TraceView(read_binary_trace_store(path))),
            stream_all(TraceView(t.store())));
  std::remove(path.c_str());
}

TEST(TraceStoreIo, ChunkFileV1StillOpensZeroCopy) {
  // Back-compat: a v1 chunk file (raw columns, 40-byte record headers)
  // synthesized byte-for-byte must keep opening through the same reader,
  // fully file-backed.
  std::vector<std::uint8_t> bytes;
  const auto append_pod = [&](const auto& v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof v);
  };
  const auto append_string = [&](const std::string& s) {
    append_pod(static_cast<std::uint32_t>(s.size()));
    bytes.insert(bytes.end(), s.begin(), s.end());
  };
  const char magic[8] = {'S', 'T', 'G', 'C', 'H', 'K', '0', '1'};
  bytes.insert(bytes.end(), magic, magic + 8);
  append_pod(std::uint64_t{1});  // resources
  append_pod(std::uint64_t{1});  // states
  append_pod(TimeNs{0});         // window begin
  append_pod(TimeNs{30});        // window end
  append_pod(std::uint64_t{1});  // chunk count
  append_string("r");
  append_string("s");
  while (bytes.size() % 8 != 0) bytes.push_back(0);

  const TimeNs begins[3] = {0, 5, 20};
  const TimeNs ends[3] = {10, 25, 30};
  const StateId states[3] = {0, 0, 0};
  std::uint64_t checksum = 1469598103934665603ull;
  const auto fnv = [&](const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      checksum ^= p[i];
      checksum *= 1099511628211ull;
    }
  };
  fnv(begins, sizeof begins);
  fnv(ends, sizeof ends);
  fnv(states, sizeof states);

  // v1 record header: u32 resource | pad | u64 count | i64 min_end |
  // i64 max_end | u64 checksum = 40 bytes, then raw columns padded to 8.
  append_pod(std::uint32_t{0});
  append_pod(std::uint32_t{0});
  append_pod(std::uint64_t{3});
  append_pod(TimeNs{10});
  append_pod(TimeNs{30});
  append_pod(checksum);
  for (const TimeNs b : begins) append_pod(b);
  for (const TimeNs e : ends) append_pod(e);
  for (const StateId s : states) append_pod(s);
  append_pod(std::uint32_t{0});  // state-column pad to 8

  const std::string path = temp_path("v1_compat");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  ASSERT_TRUE(is_chunk_file(path));
  const auto store = read_binary_trace_store(path);
  EXPECT_EQ(store->state_count(), 3u);
  EXPECT_EQ(store->resident_chunk_bytes(), 0u);
  EXPECT_GT(store->spilled_chunk_bytes(), 0u);
  EXPECT_EQ(store->begin(), 0);
  EXPECT_EQ(store->end(), 30);
  const auto rows = stream_all(TraceView(store));
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][0], (StateInterval{0, 10, 0}));
  EXPECT_EQ(rows[0][1], (StateInterval{5, 25, 0}));
  EXPECT_EQ(rows[0][2], (StateInterval{20, 30, 0}));
  std::remove(path.c_str());
}

TEST(TraceStoreIo, EvictBeforeMidStreamPreservesSuffixWindows) {
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  Trace trace = make_random_trace(h, 0x22, seconds(20.0), 120);
  trace.seal();
  const std::string path = temp_path("evict");
  write_binary_trace(trace, path);

  const auto store = read_binary_trace_store(path, /*chunk_records=*/64);
  const TimeNs cutoff = seconds(8.0);
  store->evict_before(cutoff);

  // Any window at or past the cutoff folds bit-identically to the
  // unevicted trace.
  ModelBuildOptions opt;
  opt.slice_count = 18;
  opt.window_begin = cutoff;
  opt.window_end = seconds(20.0);
  Trace read = read_binary_trace(path);
  expect_models_equal(
      build_model(read, h, opt),
      build_model(TraceView(store, opt.window_begin, opt.window_end), h, opt),
      "post-evict suffix window");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stagg
