#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/criteria.hpp"
#include "analysis/disruption.hpp"
#include "analysis/phases.hpp"
#include "analysis/profile.hpp"
#include "analysis/report.hpp"
#include "core/aggregator.hpp"
#include "model/builder.hpp"
#include "workload/nas_cg.hpp"
#include "workload/scenarios.hpp"

namespace stagg {
namespace {

/// Shared scaled case-A pipeline (one-time setup, reused across tests).
struct CaseAPipeline {
  GeneratedScenario scenario;
  MicroscopicModel model;
  std::optional<SpatiotemporalAggregator> aggregator;
  AggregationResult result;

  CaseAPipeline() : scenario(generate_scenario(scenario_a(), 1.0 / 64.0)) {
    model = build_model(scenario.trace, *scenario.hierarchy,
                        {.slice_count = 30});
    aggregator.emplace(model);
    result = aggregator->run(0.25);
  }
};

CaseAPipeline& case_a() {
  static CaseAPipeline p;
  return p;
}

TEST(Phases, CaseARecoversInitAndComputation) {
  auto& p = case_a();
  const auto phases = detect_phases(p.result, p.aggregator->cube());
  ASSERT_GE(phases.size(), 2u);
  // First phase: MPI_Init, ending near 1.6 s (slice-quantized).
  EXPECT_EQ(phases[0].mode_name, "MPI_Init");
  EXPECT_NEAR(phases[0].end_s, 1.6, 9.5 / 30.0 + 1e-9);
  // Phases tile the window.
  EXPECT_DOUBLE_EQ(phases.front().begin_s, 0.0);
  EXPECT_NEAR(phases.back().end_s, 9.5, 1e-9);
  for (std::size_t k = 1; k < phases.size(); ++k) {
    EXPECT_DOUBLE_EQ(phases[k].begin_s, phases[k - 1].end_s);
  }
}

TEST(Phases, CutVotesPeakAtInitBoundary) {
  auto& p = case_a();
  const auto votes = cut_votes(p.result, p.aggregator->cube());
  // The init -> transition boundary (slice ~5 of 30) must be a global cut.
  const SliceId init_slice = static_cast<SliceId>(1.6 / 9.5 * 30) + 1;
  EXPECT_GT(votes[static_cast<std::size_t>(init_slice)], 0.9);
}

TEST(Disruption, CaseAFindsThePerturbedProcesses) {
  auto& p = case_a();
  CgWorkloadOptions opt;
  opt.event_scale = 1.0 / 64.0;
  const auto injected = cg_perturbed_leaves(*p.scenario.hierarchy, opt);
  ASSERT_EQ(injected.size(), 26u);

  // The paper's analyst slides p toward accuracy to expose the anomaly;
  // at a fine aggregation level all impacted rows carry deviating cuts.
  const auto fine = p.aggregator->run(0.1);
  const auto found =
      detect_disruptions(fine, p.aggregator->cube(), {.group_depth = 1});
  std::set<LeafId> found_set;
  for (const auto& d : found) found_set.insert(d.leaf);

  // The detector must recover a large majority of the injected set without
  // drowning it in false positives.
  std::size_t hits = 0;
  for (const LeafId s : injected) hits += found_set.count(s);
  EXPECT_GE(hits, injected.size() * 7 / 10)
      << "found " << hits << " of " << injected.size();
  EXPECT_LE(found.size(), injected.size() * 2);
}

TEST(Disruption, DeviationTimeNearInjectedPerturbation) {
  auto& p = case_a();
  const auto found =
      detect_disruptions(p.result, p.aggregator->cube(), {.group_depth = 1});
  ASSERT_FALSE(found.empty());
  // Paper: perturbation around 3 s.
  std::size_t near_3s = 0;
  for (const auto& d : found) {
    if (d.first_deviation_s > 2.0 && d.first_deviation_s < 4.5) ++near_3s;
  }
  EXPECT_GE(near_3s, found.size() / 2);
}

TEST(Disruption, CleanTraceHasFewDeviations) {
  GeneratedScenario clean = generate_scenario(scenario_a(), 1.0 / 64.0);
  // Regenerate without perturbation.
  CgWorkloadOptions opt;
  opt.event_scale = 1.0 / 64.0;
  opt.perturbed_processes = 0;
  Trace trace = generate_cg_trace(*clean.hierarchy, opt);
  trace.set_window(0, seconds(9.5));
  const MicroscopicModel model =
      build_model(trace, *clean.hierarchy, {.slice_count = 30});
  SpatiotemporalAggregator agg(model);
  const auto result = agg.run(0.25);
  const auto found = detect_disruptions(result, agg.cube(), {.group_depth = 1});
  EXPECT_LE(found.size(), 6u);  // mostly noise-free
}

TEST(Profile, SeparatesWaitRoleFromSendRole) {
  auto& p = case_a();
  const TaskProfile profile =
      cluster_task_profile(p.scenario.trace, {.clusters = 2});
  ASSERT_EQ(profile.clusters.size(), 2u);
  // CG puts 8 wait-dedicated processes (core 0 of each machine) apart from
  // the 56 send-dominated ones.
  const auto big = profile.clusters[0].members.size();
  const auto small = profile.clusters[1].members.size();
  EXPECT_EQ(big + small, 64u);
  EXPECT_EQ(small, 8u);
  // The small cluster is the wait-heavy one.
  const StateId wait = *p.scenario.trace.states().find("MPI_Wait");
  EXPECT_GT(profile.clusters[1].mean_durations[static_cast<std::size_t>(wait)],
            profile.clusters[0].mean_durations[static_cast<std::size_t>(wait)]);
}

TEST(Profile, FormatShowsClusters) {
  auto& p = case_a();
  const TaskProfile profile =
      cluster_task_profile(p.scenario.trace, {.clusters = 2});
  const std::string s = format_profile(profile, p.scenario.trace);
  EXPECT_NE(s.find("cluster 0"), std::string::npos);
  EXPECT_NE(s.find("MPI_"), std::string::npos);
}

TEST(Criteria, PaperTableHasEightRows) {
  const auto rows = paper_table1();
  ASSERT_EQ(rows.size(), 8u);
  // Our technique (Ocelotl row 6 extended) carries both M marks in the
  // spatiotemporal version; the transcription keeps the paper's marks for
  // the 1-D timeline (M1 unmet).
  EXPECT_EQ(rows[5].marks[6], CriterionMark::kNo);
  // Pixel-guided Gantt fails G5/G6.
  EXPECT_EQ(rows[0].marks[4], CriterionMark::kNo);
  EXPECT_EQ(rows[0].marks[5], CriterionMark::kNo);
}

TEST(Criteria, MeasuredChecks) {
  MeasuredCriteria m;
  m.entity_budget = 100;
  m.entities_drawn = 50;
  m.entities_subpixel = 0;
  EXPECT_EQ(measured_entity_budget(m), CriterionMark::kBoth);
  m.entities_subpixel = 10;
  EXPECT_EQ(measured_entity_budget(m), CriterionMark::kNo);

  m.shows_time_axis = true;
  EXPECT_EQ(measured_m1(m), CriterionMark::kTimeOnly);
  m.shows_space_axis = true;
  EXPECT_EQ(measured_m1(m), CriterionMark::kBoth);

  m.reduction_simultaneous = true;
  m.aggregates_carry_data = true;
  EXPECT_EQ(measured_m2(m), CriterionMark::kBoth);
}

TEST(Criteria, SymbolsAreDistinct) {
  std::set<std::string> symbols = {
      to_symbol(CriterionMark::kNo), to_symbol(CriterionMark::kTimeOnly),
      to_symbol(CriterionMark::kSpaceOnly), to_symbol(CriterionMark::kBoth)};
  EXPECT_EQ(symbols.size(), 4u);
}

TEST(Report, EndToEndFormatting) {
  auto& p = case_a();
  const AnalysisReport report =
      analyze(p.scenario.trace, p.result, p.aggregator->cube());
  const std::string s = format_report(report);
  EXPECT_NE(s.find("## Trace"), std::string::npos);
  EXPECT_NE(s.find("## Phases"), std::string::npos);
  EXPECT_NE(s.find("MPI_Init"), std::string::npos);
  EXPECT_NE(s.find("## Disrupted resources"), std::string::npos);
}

}  // namespace
}  // namespace stagg
