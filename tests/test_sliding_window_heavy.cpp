// Heavy splice-equivalence suite (ctest label `heavy`): the bench-scale
// configuration — 64 leaves, |T| = 96 — driven through long random
// append/slide/extend/contract sequences with from-scratch oracle checks
// at every step.  The fast variant of this property test lives in
// test_sliding_window.cpp; this one exists to hammer the relocation and
// dirty-sweep paths at a size where off-by-one-row bugs cannot hide in
// tiny triangles.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/sliding_window.hpp"
#include "hierarchy/hierarchy.hpp"
#include "trace/trace.hpp"
#include "workload/synthetic.hpp"

namespace stagg {
namespace {

void expect_results_equal(const std::vector<AggregationResult>& got,
                          const std::vector<AggregationResult>& want,
                          const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t k = 0; k < got.size(); ++k) {
    EXPECT_EQ(got[k].optimal_pic, want[k].optimal_pic)
        << context << " k=" << k << " p=" << got[k].p;
    EXPECT_EQ(got[k].partition.signature(), want[k].partition.signature())
        << context << " k=" << k << " p=" << got[k].p;
    EXPECT_EQ(got[k].measures.gain, want[k].measures.gain)
        << context << " k=" << k;
    EXPECT_EQ(got[k].measures.loss, want[k].measures.loss)
        << context << " k=" << k;
  }
}

TEST(SlidingWindowHeavy, BenchScaleRandomOpsStayBitIdentical) {
  const Hierarchy h = make_balanced_hierarchy(3, 4);  // 64 leaves, 85 nodes
  const auto programmer = [](LeafId leaf) {
    ResourceProgram p;
    p.phases.push_back(
        {0.0, 400.0,
         StatePattern{{{"compute", 0.2, 0.3},
                       {"wait", leaf % 4 == 0 ? 0.3 : 0.05, 0.5},
                       {"send", 0.1, 0.4}}}});
    return p;
  };
  Trace full = generate_trace(h, programmer, 0xD051);
  full.seal();

  // Split into the initial window and a future stream ordered by begin.
  const TimeNs horizon0 = seconds(96.0);
  Trace initial;
  for (const auto& name : full.states().names()) {
    (void)initial.states().intern(name);
  }
  std::vector<std::pair<ResourceId, StateInterval>> future;
  for (ResourceId r = 0; r < static_cast<ResourceId>(full.resource_count());
       ++r) {
    initial.add_resource(full.resource_path(r));
    for (const auto& s : full.intervals(r)) {
      if (s.begin < horizon0) {
        initial.add_state(r, s.state, s.begin, s.end);
      } else {
        future.emplace_back(r, s);
      }
    }
  }
  std::sort(future.begin(), future.end(), [](const auto& a, const auto& b) {
    if (a.second.begin != b.second.begin) {
      return a.second.begin < b.second.begin;
    }
    if (a.first != b.first) return a.first < b.first;
    return a.second.end < b.second.end;
  });

  SlidingWindowOptions opt;
  opt.aggregation.max_lanes = 4;
  SlidingWindowSession session(h, std::move(initial),
                               TimeGrid(0, horizon0, 96),
                               {0.05, 0.3, 0.6, 0.95}, opt);
  expect_results_equal(session.results(),
                       session.run_from_scratch(DpKernel::kReference),
                       "initial");

  Rng rng(0xBEEF);
  std::size_t next = 0;
  for (int op = 0; op < 80; ++op) {
    const auto t = session.window().slice_count();
    TimeGrid grid = session.window();
    const int kind = static_cast<int>(rng.uniform_int(0, 9));
    if (kind <= 5) {
      grid = grid.advanced(static_cast<std::int32_t>(rng.uniform_int(1, 8)));
    } else if (kind <= 7 && t < 128) {
      grid = grid.extended(static_cast<std::int32_t>(rng.uniform_int(1, 12)));
    } else if (kind == 8 && t > 56) {
      grid =
          grid.contracted(static_cast<std::int32_t>(rng.uniform_int(1, 12)));
    }
    while (next < future.size() && future[next].second.begin < grid.end()) {
      const auto& [r, s] = future[next];
      session.append(r, s.state, s.begin, s.end);
      ++next;
    }
    const TimeNs dt = session.window().uniform_dt_ns();
    const auto shift =
        static_cast<std::int32_t>((grid.begin() - session.window().begin()) / dt);
    if (shift > 0) {
      session.slide(shift);
    } else if (grid.slice_count() > t) {
      session.extend(grid.slice_count() - t);
    } else if (grid.slice_count() < t) {
      session.contract(t - grid.slice_count());
    } else {
      session.refresh();
    }
    const std::string ctx = "op=" + std::to_string(op);
    expect_results_equal(session.results(),
                         session.run_from_scratch(DpKernel::kCachedSolo),
                         ctx + "/solo");
    if (op % 16 == 7) {
      expect_results_equal(session.results(),
                           session.run_from_scratch(DpKernel::kReference),
                           ctx + "/reference");
    }
    ASSERT_FALSE(::testing::Test::HasFatalFailure()) << ctx;
  }
}

}  // namespace
}  // namespace stagg
