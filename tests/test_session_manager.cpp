// SessionManager suite: N concurrent sliding-window sessions over ONE
// shared immutable TraceStore must be *bit-identical* — at every advance,
// at every lane width — to N sessions each owning a private copy of the
// trace, and to the kReference / kCachedSolo from-scratch oracles.
//
// The sessions deliberately differ in window placement, slice count,
// probe set and hierarchy scope, and the store is mutated under them
// (central ingest, sealing, fence eviction) while they advance in
// parallel on the shared pool.
#include "core/session_manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/aggregator.hpp"
#include "hierarchy/hierarchy.hpp"
#include "trace/trace.hpp"
#include "workload/stream_split.hpp"
#include "workload/synthetic.hpp"

namespace stagg {
namespace {

void expect_results_equal(const std::vector<AggregationResult>& got,
                          const std::vector<AggregationResult>& want,
                          const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t k = 0; k < got.size(); ++k) {
    EXPECT_EQ(got[k].p, want[k].p) << context << " k=" << k;
    EXPECT_EQ(got[k].optimal_pic, want[k].optimal_pic)
        << context << " k=" << k << " p=" << got[k].p;
    EXPECT_EQ(got[k].partition.signature(), want[k].partition.signature())
        << context << " k=" << k << " p=" << got[k].p;
    EXPECT_EQ(got[k].measures.gain, want[k].measures.gain)
        << context << " k=" << k;
    EXPECT_EQ(got[k].measures.loss, want[k].measures.loss)
        << context << " k=" << k;
  }
}

Trace make_synthetic_trace(const Hierarchy& hierarchy, double span_s,
                           std::uint64_t seed) {
  const auto programmer = [span_s](LeafId leaf) {
    ResourceProgram p;
    const double split = span_s * 0.45;
    p.phases.push_back(
        {0.0, split,
         StatePattern{{{"compute", 0.04, 0.3}, {"send", 0.02, 0.4}}}});
    p.phases.push_back(
        {split, span_s,
         StatePattern{{{"compute", 0.05, 0.2},
                       {"wait", leaf % 3 == 0 ? 0.06 : 0.015, 0.5},
                       {"send", 0.02, 0.3}}}});
    return p;
  };
  return generate_trace(hierarchy, programmer, seed);
}

/// Sub-hierarchy covering the first cluster (leaves 0..fanout-1) of a
/// make_balanced_hierarchy(2, fanout) platform, with identical leaf paths.
Hierarchy make_first_cluster_scope(std::int32_t fanout) {
  HierarchyBuilder b("root");
  const NodeId c = b.add(0, "n0_0");
  b.add_many(c, "n1_", fanout);
  return b.finish();
}

struct OracleSpec {
  TimeGrid window;
  std::vector<double> ps;
  const Hierarchy* hierarchy = nullptr;  ///< nullptr = full platform
  ResourceId scope_resources = 0;        ///< 0 = all resources
};

/// The acceptance drill: N shared-store sessions under one manager vs N
/// private-copy sessions, advanced in lockstep with live ingest, compared
/// bit-identically at every step and against the reference oracles.
void run_lockstep_oracle(std::size_t lanes) {
  const std::int32_t fanout = 4;
  const Hierarchy full = make_balanced_hierarchy(2, fanout);  // 16 leaves
  const Hierarchy scope = make_first_cluster_scope(fanout);   // 4 leaves
  const double span_s = 40.0;
  Trace whole = make_synthetic_trace(full, span_s, 0x5E55);
  whole.seal();
  const auto all = static_cast<ResourceId>(whole.resource_count());

  const TimeNs horizon = seconds(22.0);
  SlidingWindowOptions opt;
  opt.aggregation.max_lanes = lanes;

  const std::vector<OracleSpec> specs = {
      {TimeGrid(0, seconds(20.0), 20), {0.25, 0.5, 0.75}, nullptr, 0},
      {TimeGrid(0, seconds(18.0), 36), {0.5}, nullptr, 0},
      {TimeGrid(seconds(4.0), seconds(20.0), 16), {0.0, 0.37, 1.0}, nullptr,
       0},
      {TimeGrid(0, seconds(16.0), 16), {0.6, 0.2}, &scope, fanout},
  };

  // Shared side: one store, one manager, N sessions.
  TraceSplit shared_split = split_trace_at(whole, horizon);
  shared_split.initial.seal();
  SessionManager manager(full, shared_split.initial.store());
  for (const OracleSpec& spec : specs) {
    SessionSpec s;
    s.window = spec.window;
    s.ps = spec.ps;
    s.hierarchy = spec.hierarchy;
    s.options = opt;
    manager.add_session(s);
  }
  ASSERT_EQ(manager.session_count(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(manager.session(i).store_ptr().get(), &manager.store())
        << "session " << i << " must read the shared store";
  }

  // Private side: every session owns an exclusive copy of its events.
  std::vector<std::unique_ptr<SlidingWindowSession>> private_sessions;
  std::vector<ResourceId> private_scope;  // resource count per session
  for (const OracleSpec& spec : specs) {
    const ResourceId n = spec.scope_resources > 0 ? spec.scope_resources : all;
    TraceSplit ps = split_trace_at(whole, horizon, n);
    const Hierarchy& h = spec.hierarchy != nullptr ? *spec.hierarchy : full;
    private_sessions.push_back(std::make_unique<SlidingWindowSession>(
        h, std::move(ps.initial), spec.window, spec.ps, opt));
    private_scope.push_back(n);
  }

  // Initial windows must already agree.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_results_equal(manager.session(i).results(),
                         private_sessions[i]->results(),
                         "initial session " + std::to_string(i));
  }

  // Lockstep: deliver the stream in bursts, slide everyone, compare.
  TraceSplit stream = split_trace_at(whole, horizon);
  std::size_t next = 0;
  const std::array<std::int32_t, 4> slides = {1, 2, 1, 3};
  TimeNs delivered_to = horizon;
  for (std::size_t round = 0; round < slides.size(); ++round) {
    delivered_to += seconds(3.0);
    for (; next < stream.future.size() &&
           stream.future[next].second.begin < delivered_to;
         ++next) {
      const auto& [r, s] = stream.future[next];
      manager.append(r, s.state, s.begin, s.end);
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (r < private_scope[i]) {
          private_sessions[i]->append(r, s.state, s.begin, s.end);
        }
      }
    }
    manager.slide_all(slides[round]);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      private_sessions[i]->slide(slides[round]);
      const std::string ctx =
          "round " + std::to_string(round) + " session " + std::to_string(i);
      expect_results_equal(manager.session(i).results(),
                           private_sessions[i]->results(), ctx);
      expect_results_equal(manager.session(i).results(),
                           manager.session(i).run_from_scratch(
                               DpKernel::kCachedSolo),
                           ctx + " vs kCachedSolo");
    }
  }

  // Final cross-check against the primary reference oracle.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_results_equal(
        manager.session(i).results(),
        manager.session(i).run_from_scratch(DpKernel::kReference),
        "final session " + std::to_string(i) + " vs kReference");
  }
}

TEST(SessionManager, SharedStoreBitIdenticalToPrivateCopiesW1) {
  run_lockstep_oracle(/*lanes=*/1);
}

TEST(SessionManager, SharedStoreBitIdenticalToPrivateCopiesW4) {
  run_lockstep_oracle(/*lanes=*/4);
}

TEST(SessionManager, AdvanceToPacesDifferentSliceWidthsFromOneStream) {
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  Trace whole = make_synthetic_trace(h, 30.0, 0xA11);
  whole.seal();
  TraceSplit split = split_trace_at(whole, seconds(13.0));
  split.initial.seal();

  SessionManager manager(h, split.initial.store());
  SessionSpec fast;  // 0.5 s slices
  fast.window = TimeGrid(0, seconds(12.0), 24);
  fast.ps = {0.5};
  SessionSpec slow;  // 2 s slices
  slow.window = TimeGrid(0, seconds(12.0), 6);
  slow.ps = {0.25, 0.75};
  manager.add_session(fast);
  manager.add_session(slow);

  std::size_t next = 0;
  for (TimeNs frontier = seconds(15.0); frontier <= seconds(21.0);
       frontier += seconds(3.0)) {
    for (; next < split.future.size() &&
           split.future[next].second.begin < frontier;
         ++next) {
      const auto& [r, s] = split.future[next];
      manager.append(r, s.state, s.begin, s.end);
    }
    manager.advance_to(frontier);
    // Both windows end within one slice of the frontier and stay exact.
    for (std::size_t i = 0; i < manager.session_count(); ++i) {
      const TimeGrid& w = manager.session(i).window();
      EXPECT_LE(w.end(), frontier) << "session " << i;
      EXPECT_GT(w.end() + w.uniform_dt_ns(), frontier) << "session " << i;
      expect_results_equal(
          manager.session(i).results(),
          manager.session(i).run_from_scratch(DpKernel::kReference),
          "frontier " + std::to_string(frontier) + " session " +
              std::to_string(i));
    }
  }
}

TEST(SessionManager, CentralEvictionKeepsEverySessionExact) {
  // Sessions with very different lags: eviction must respect the slowest.
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  Trace whole = make_synthetic_trace(h, 36.0, 0xE71C);
  whole.seal();
  TraceSplit split = split_trace_at(whole, seconds(17.0));
  split.initial.seal();

  SessionManager manager(h, split.initial.store());
  SessionSpec shortw;
  shortw.window = TimeGrid(seconds(12.0), seconds(16.0), 8);
  shortw.ps = {0.5};
  SessionSpec longw;
  longw.window = TimeGrid(0, seconds(16.0), 16);
  longw.ps = {0.5};
  manager.add_session(shortw);
  manager.add_session(longw);

  const std::size_t chunks_before = manager.store().state_count();
  std::size_t next = 0;
  for (int round = 0; round < 4; ++round) {
    const TimeNs frontier =
        manager.session(0).window().end() + seconds(1.0);
    for (; next < split.future.size() &&
           split.future[next].second.begin < frontier;
         ++next) {
      const auto& [r, s] = split.future[next];
      manager.append(r, s.state, s.begin, s.end);
    }
    manager.slide_all(2);
    for (std::size_t i = 0; i < manager.session_count(); ++i) {
      expect_results_equal(
          manager.session(i).results(),
          manager.session(i).run_from_scratch(DpKernel::kCachedSolo),
          "round " + std::to_string(round) + " session " +
              std::to_string(i));
    }
  }
  // Eviction happened below the long window's begin only — the store
  // never grew past "everything the slowest session can still read".
  EXPECT_GT(manager.store().state_count(), 0u);
  (void)chunks_before;
}

TEST(SessionManager, LateSessionBehindEvictionHorizonIsRejected) {
  // After eviction has moved the horizon forward, a session whose window
  // reaches back past it must be rejected loudly — it would silently
  // aggregate over unlinked chunks otherwise.
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  Trace whole = make_synthetic_trace(h, 30.0, 0x99);
  whole.seal();
  TraceSplit split = split_trace_at(whole, seconds(14.0));
  split.initial.seal();

  SessionManager manager(h, split.initial.store());
  SessionSpec spec;
  spec.window = TimeGrid(seconds(4.0), seconds(12.0), 8);
  spec.ps = {0.5};
  manager.add_session(spec);
  std::size_t next = 0;
  for (int round = 0; round < 3; ++round) {
    const TimeNs frontier = manager.session(0).window().end() + seconds(1.0);
    for (; next < split.future.size() &&
           split.future[next].second.begin < frontier;
         ++next) {
      const auto& [r, s] = split.future[next];
      manager.append(r, s.state, s.begin, s.end);
    }
    manager.slide_all(1);
  }
  ASSERT_GT(manager.store().evict_horizon(), 0);

  SessionSpec late;
  late.window = TimeGrid(0, seconds(8.0), 8);  // reaches before the horizon
  late.ps = {0.5};
  EXPECT_THROW(manager.add_session(late), InvalidArgument);

  // At or past the horizon a late session is fine — and exact.
  SessionSpec ok;
  const TimeNs begin = manager.session(0).window().begin();
  ok.window = TimeGrid(begin, begin + seconds(6.0), 6);
  ok.ps = {0.5};
  const std::size_t id = manager.add_session(ok);
  expect_results_equal(
      manager.session(id).results(),
      manager.session(id).run_from_scratch(DpKernel::kReference),
      "late session at the horizon");
}

TEST(SessionManager, MemoryBudgetSpillsColdChunksBitIdentically) {
  // A budgeted manager must hold resident chunk bytes at or under the
  // budget after every advance while producing, round for round, the same
  // bits as an unbudgeted manager over the same stream.
  const Hierarchy h = make_balanced_hierarchy(2, 4);
  Trace whole = make_synthetic_trace(h, 40.0, 0x5B11);
  whole.seal();
  const TimeNs horizon = seconds(22.0);
  const std::string spill = "test_session_manager_budget.spill";
  std::remove(spill.c_str());

  const auto make_manager = [&](std::size_t budget_divisor) {
    TraceSplit split = split_trace_at(whole, horizon);
    split.initial.seal();
    auto manager =
        std::make_unique<SessionManager>(h, split.initial.store());
    if (budget_divisor != 0) {
      manager->set_memory_budget(
          manager->store().store_bytes() / budget_divisor, spill);
    }
    const std::array<std::int32_t, 3> slice_counts = {16, 20, 32};
    for (int i = 0; i < 3; ++i) {
      SessionSpec spec;
      spec.window = TimeGrid(seconds(2.0 * i), seconds(2.0 * i + 16.0),
                             slice_counts[static_cast<std::size_t>(i)]);
      spec.ps = {0.3, 0.7};
      manager->add_session(spec);
    }
    return manager;
  };

  auto resident = make_manager(0);
  auto budgeted = make_manager(4);  // a quarter of the initial chunk bytes
  const std::size_t budget = budgeted->memory_budget();
  ASSERT_GT(budget, 0u);
  EXPECT_LE(budgeted->resident_chunk_bytes(), budget);
  EXPECT_GT(budgeted->store().spilled_chunk_bytes(), 0u);

  TraceSplit stream = split_trace_at(whole, horizon);
  std::size_t next_a = 0;
  std::size_t next_b = 0;
  for (int round = 0; round < 5; ++round) {
    const TimeNs frontier = horizon + seconds(3.0 * (round + 1));
    for (; next_a < stream.future.size() &&
           stream.future[next_a].second.begin < frontier;
         ++next_a) {
      const auto& [r, s] = stream.future[next_a];
      resident->append(r, s.state, s.begin, s.end);
    }
    for (; next_b < stream.future.size() &&
           stream.future[next_b].second.begin < frontier;
         ++next_b) {
      const auto& [r, s] = stream.future[next_b];
      budgeted->append(r, s.state, s.begin, s.end);
    }
    resident->slide_all(1);
    budgeted->slide_all(1);
    EXPECT_LE(budgeted->resident_chunk_bytes(), budget)
        << "round " << round;
    for (std::size_t i = 0; i < budgeted->session_count(); ++i) {
      expect_results_equal(budgeted->session(i).results(),
                           resident->session(i).results(),
                           "round " + std::to_string(round) + " session " +
                               std::to_string(i));
    }
  }
  // And against the from-scratch reference oracle at the end.
  for (std::size_t i = 0; i < budgeted->session_count(); ++i) {
    expect_results_equal(
        budgeted->session(i).results(),
        budgeted->session(i).run_from_scratch(DpKernel::kReference),
        "final budgeted session " + std::to_string(i));
  }
  budgeted.reset();
  resident.reset();
  std::remove(spill.c_str());
}

TEST(SessionManager, MemoryBudgetRequiresSpillFile) {
  const Hierarchy h = make_balanced_hierarchy(1, 3);
  Trace whole = make_synthetic_trace(h, 10.0, 0x5B12);
  whole.seal();
  SessionManager manager(h, whole.store());
  EXPECT_THROW(manager.set_memory_budget(1024), InvalidArgument);
  // Per-session budgets are an exclusive-store knob: a shared attach with
  // one set must be rejected (the manager owns the shared memory policy).
  auto session_store = std::make_shared<TraceStore>(*whole.store());
  session_store->seal_chunk();
  SlidingWindowOptions opt;
  opt.memory_budget_bytes = 1024;
  opt.spill_path = "test_session_manager_unused.spill";
  EXPECT_THROW(SlidingWindowSession(h, session_store,
                                    TimeGrid(0, seconds(8.0), 8), {0.5}, opt,
                                    StoreOwnership::kShared),
               InvalidArgument);
}

TEST(SessionManager, SharedSessionsRejectDirectIngest) {
  const Hierarchy h = make_balanced_hierarchy(1, 3);
  Trace whole = make_synthetic_trace(h, 10.0, 0x77);
  whole.seal();
  SessionManager manager(h, whole.store());
  SessionSpec spec;
  spec.window = TimeGrid(0, seconds(8.0), 8);
  spec.ps = {0.5};
  manager.add_session(spec);
  EXPECT_THROW(
      manager.session(0).append(0, StateId{0}, seconds(8.5), seconds(8.6)),
      InvalidArgument);
  EXPECT_THROW(manager.append(0, "no-such-state", 0, 1), InvalidArgument);
  EXPECT_THROW(manager.append(0, StateId{99}, 0, 1), InvalidArgument);
}

TEST(SessionManager, CentralCompressionKeepsEverySessionBitIdentical) {
  // The shared store's codec policy lives on the manager: enabling it
  // shrinks the shared payload once for all sessions and never changes
  // any session's results — through re-encoding of sealed history, live
  // ingest, central sealing/eviction and the from-scratch oracle.
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  Trace whole = make_synthetic_trace(h, 30.0, 0xC0DE);
  whole.seal();
  const TimeNs horizon = seconds(18.0);

  const auto make_manager = [&] {
    TraceSplit split = split_trace_at(whole, horizon);
    split.initial.seal();
    auto manager = std::make_unique<SessionManager>(h, split.initial.store());
    SessionSpec a;
    a.window = TimeGrid(0, seconds(16.0), 16);
    a.ps = {0.25, 0.75};
    manager->add_session(a);
    SessionSpec b;
    b.window = TimeGrid(seconds(2.0), seconds(14.0), 24);
    b.ps = {0.5};
    manager->add_session(b);
    return manager;
  };

  auto plain = make_manager();
  auto compressed = make_manager();
  const std::size_t raw_bytes = compressed->store_bytes();
  compressed->set_compression(ChunkCompression::kAuto);
  EXPECT_EQ(compressed->compression(), ChunkCompression::kAuto);
  EXPECT_LT(compressed->store_bytes(), raw_bytes)
      << "central re-encoding must shrink the shared sealed payload";
  // A session spec carrying the exclusive-store knob is accepted but the
  // policy stays central (the spec's field is overridden, not obeyed).
  SessionSpec late;
  late.window = TimeGrid(seconds(4.0), seconds(16.0), 12);
  late.ps = {0.5};
  late.options.compression = ChunkCompression::kAuto;
  plain->add_session(late);
  compressed->add_session(late);
  EXPECT_EQ(plain->compression(), ChunkCompression::kNone);

  for (std::size_t i = 0; i < plain->session_count(); ++i) {
    expect_results_equal(compressed->session(i).results(),
                         plain->session(i).results(),
                         "initial session " + std::to_string(i));
  }

  // Lockstep live ingest: encoded chunks seal under both managers' feet.
  TraceSplit stream = split_trace_at(whole, horizon);
  std::size_t next = 0;
  TimeNs delivered_to = horizon;
  for (int round = 0; round < 3; ++round) {
    delivered_to += seconds(3.0);
    for (; next < stream.future.size() &&
           stream.future[next].second.begin < delivered_to;
         ++next) {
      const auto& [r, s] = stream.future[next];
      plain->append(r, s.state, s.begin, s.end);
      compressed->append(r, s.state, s.begin, s.end);
    }
    plain->slide_all(2);
    compressed->slide_all(2);
    for (std::size_t i = 0; i < plain->session_count(); ++i) {
      expect_results_equal(
          compressed->session(i).results(), plain->session(i).results(),
          "round " + std::to_string(round) + " session " + std::to_string(i));
    }
  }
  for (std::size_t i = 0; i < plain->session_count(); ++i) {
    expect_results_equal(
        compressed->session(i).results(),
        compressed->session(i).run_from_scratch(DpKernel::kReference),
        "final session " + std::to_string(i) + " vs kReference");
  }
  EXPECT_LT(compressed->store_bytes(), plain->store_bytes());
}

TEST(SessionManager, WatermarkGatesAdvancesOverSealedDataOnly) {
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  Trace whole = make_synthetic_trace(h, 24.0, 0x3A7E);
  whole.seal();
  TraceSplit split = split_trace_at(whole, seconds(11.0));
  split.initial.seal();
  SessionManager manager(h, split.initial.store());
  // A freshly attached store is a complete sealed prefix.
  EXPECT_EQ(manager.watermark(), manager.store().end());

  SessionSpec spec;
  spec.window = TimeGrid(0, seconds(10.0), 10);
  spec.ps = {0.5};
  manager.add_session(spec);

  // Advancing past the watermark is a contract violation, not a refresh.
  EXPECT_THROW(manager.advance_to_watermark(manager.watermark() + 1),
               InvalidArgument);

  // Stage the stream, then seal: the watermark is the seal's promise.
  std::size_t next = 0;
  const TimeNs frontier = seconds(14.0);
  for (; next < split.future.size() &&
         split.future[next].second.begin < frontier;
       ++next) {
    const auto& [r, s] = split.future[next];
    manager.append(r, s.state, s.begin, s.end);
  }
  const TimeNs wm = manager.seal_staged(frontier);
  EXPECT_EQ(wm, frontier);
  EXPECT_EQ(manager.watermark(), frontier);
  // Monotone: a lower frontier never lowers the watermark.
  EXPECT_EQ(manager.seal_staged(frontier - seconds(2.0)), frontier);

  manager.advance_to_watermark(frontier);
  const TimeGrid& w = manager.session(0).window();
  EXPECT_LE(w.end(), frontier);
  EXPECT_GT(w.end() + w.uniform_dt_ns(), frontier);
  expect_results_equal(
      manager.session(0).results(),
      manager.session(0).run_from_scratch(DpKernel::kReference),
      "after advance_to_watermark");
}

TEST(SessionManager, IngestRoundMatchesAppendAdvancePath) {
  // The staged entry points (ingest + ingest_round) and the historical
  // append + advance_to loop are shims over the same stage functions —
  // prove it bit for bit, round for round.
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  Trace whole = make_synthetic_trace(h, 28.0, 0x16E5);
  whole.seal();
  const TimeNs horizon = seconds(12.0);

  const auto make_manager = [&] {
    TraceSplit split = split_trace_at(whole, horizon);
    split.initial.seal();
    auto manager = std::make_unique<SessionManager>(h, split.initial.store());
    SessionSpec spec;
    spec.window = TimeGrid(0, seconds(10.0), 20);
    spec.ps = {0.3, 0.7};
    manager->add_session(spec);
    return manager;
  };
  auto classic = make_manager();
  auto staged = make_manager();

  TraceSplit stream = split_trace_at(whole, horizon);
  std::size_t next = 0;
  for (TimeNs frontier = seconds(15.0); frontier <= seconds(24.0);
       frontier += seconds(3.0)) {
    std::vector<EventRecord> batch;
    for (; next < stream.future.size() &&
           stream.future[next].second.begin < frontier;
         ++next) {
      const auto& [r, s] = stream.future[next];
      classic->append(r, s.state, s.begin, s.end);
      batch.push_back(EventRecord{r, s.state, s.begin, s.end});
    }
    classic->advance_to(frontier);
    staged->ingest(batch);
    staged->ingest_round(frontier);
    EXPECT_EQ(staged->watermark(), classic->watermark());
    expect_results_equal(staged->session(0).results(),
                         classic->session(0).results(),
                         "frontier " + std::to_string(frontier));
  }
  expect_results_equal(
      staged->session(0).results(),
      staged->session(0).run_from_scratch(DpKernel::kReference),
      "final staged manager vs kReference");
}

TEST(SessionManager, ScopedSessionRequiresMatchingLeaves) {
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  Trace whole = make_synthetic_trace(h, 10.0, 0x88);
  whole.seal();
  SessionManager manager(h, whole.store());
  HierarchyBuilder b("root");
  const NodeId c = b.add(0, "nope");
  b.add_many(c, "x", 2);
  const Hierarchy bad = b.finish();
  SessionSpec spec;
  spec.window = TimeGrid(0, seconds(8.0), 8);
  spec.ps = {0.5};
  spec.hierarchy = &bad;
  EXPECT_THROW(manager.add_session(spec), DimensionError);
}

}  // namespace
}  // namespace stagg
