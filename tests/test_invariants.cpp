// Symmetry and invariance properties of the aggregation (parameterized
// property tests).  These pin down semantics the paper implies but never
// states: the criterion is additive over states, blind to state identity,
// covariant with time reversal and with sibling permutations, and
// insensitive to uniform time rescaling.
//
// The AuditLayer section below is different in kind: it drives the
// contract/audit subsystem (TraceStore::audit, DataCube::audit,
// MeasureCache::audit, SessionManager::audit — see common/contract.hpp)
// through randomized seal/spill/compact/slide/pipeline histories, and
// proves the audits actually *reject* deliberately corrupted state.  The
// audit() methods are compiled in every build, so these tests run with or
// without -DSTAGG_AUDIT=ON.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "core/aggregator.hpp"
#include "core/cube.hpp"
#include "core/ingest_pipeline.hpp"
#include "core/measure_cache.hpp"
#include "core/session_manager.hpp"
#include "hierarchy/hierarchy.hpp"
#include "model/builder.hpp"
#include "trace/trace.hpp"
#include "trace/trace_store.hpp"
#include "workload/fixtures.hpp"
#include "workload/stream_split.hpp"
#include "workload/synthetic.hpp"

namespace stagg {
namespace {

/// Copies a model with the state axis permuted: perm[x] = new index of x.
OwnedModel permute_states(const OwnedModel& src,
                          const std::vector<StateId>& perm) {
  OwnedModel out;
  out.hierarchy = std::make_unique<Hierarchy>(*src.hierarchy);
  StateRegistry states;
  std::vector<std::string> names(perm.size());
  for (StateId x = 0; x < static_cast<StateId>(perm.size()); ++x) {
    names[static_cast<std::size_t>(perm[static_cast<std::size_t>(x)])] =
        src.model.states().name(x);
  }
  for (const auto& n : names) states.intern(n);
  out.model =
      MicroscopicModel(out.hierarchy.get(), src.model.grid(), states);
  for (LeafId s = 0; s < src.model.resource_count(); ++s) {
    for (SliceId t = 0; t < src.model.slice_count(); ++t) {
      for (StateId x = 0; x < src.model.state_count(); ++x) {
        out.model.set_duration(s, t,
                               perm[static_cast<std::size_t>(x)],
                               src.model.duration(s, t, x));
      }
    }
  }
  return out;
}

/// Copies a model with time reversed (slice t -> T-1-t).
OwnedModel reverse_time(const OwnedModel& src) {
  OwnedModel out;
  out.hierarchy = std::make_unique<Hierarchy>(*src.hierarchy);
  StateRegistry states = src.model.states();
  out.model =
      MicroscopicModel(out.hierarchy.get(), src.model.grid(), states);
  const SliceId last = src.model.slice_count() - 1;
  for (LeafId s = 0; s < src.model.resource_count(); ++s) {
    for (SliceId t = 0; t <= last; ++t) {
      for (StateId x = 0; x < src.model.state_count(); ++x) {
        out.model.set_duration(s, last - t, x, src.model.duration(s, t, x));
      }
    }
  }
  return out;
}

class InvariantTest : public ::testing::TestWithParam<int> {
 protected:
  OwnedModel make() const {
    return make_random_model({.levels = 2,
                              .fanout = 3,
                              .slices = 10,
                              .states = 3,
                              .block_slices = 3,
                              .block_leaves = 2,
                              .idle_fraction = 0.1,
                              .seed = static_cast<std::uint64_t>(GetParam())});
  }
};

TEST_P(InvariantTest, StateRelabelingPreservesOptimum) {
  const OwnedModel a = make();
  const OwnedModel b = permute_states(a, {2, 0, 1});
  SpatiotemporalAggregator agg_a(a.model);
  SpatiotemporalAggregator agg_b(b.model);
  for (const double p : {0.2, 0.5, 0.8}) {
    const auto ra = agg_a.run(p);
    const auto rb = agg_b.run(p);
    EXPECT_NEAR(ra.optimal_pic, rb.optimal_pic, 1e-9);
    EXPECT_EQ(ra.partition.signature(), rb.partition.signature());
  }
}

TEST_P(InvariantTest, AllZeroExtraStateIsNeutral) {
  const OwnedModel a = make();
  // Rebuild with one extra, never-used state.
  OwnedModel b;
  b.hierarchy = std::make_unique<Hierarchy>(*a.hierarchy);
  StateRegistry states = a.model.states();
  states.intern("phantom_state");
  b.model = MicroscopicModel(b.hierarchy.get(), a.model.grid(), states);
  for (LeafId s = 0; s < a.model.resource_count(); ++s) {
    for (SliceId t = 0; t < a.model.slice_count(); ++t) {
      for (StateId x = 0; x < a.model.state_count(); ++x) {
        b.model.set_duration(s, t, x, a.model.duration(s, t, x));
      }
    }
  }
  SpatiotemporalAggregator agg_a(a.model);
  SpatiotemporalAggregator agg_b(b.model);
  const auto ra = agg_a.run(0.5);
  const auto rb = agg_b.run(0.5);
  EXPECT_NEAR(ra.optimal_pic, rb.optimal_pic, 1e-9);
  EXPECT_EQ(ra.partition.signature(), rb.partition.signature());
}

TEST_P(InvariantTest, TimeReversalMirrorsThePartition) {
  const OwnedModel a = make();
  const OwnedModel b = reverse_time(a);
  SpatiotemporalAggregator agg_a(a.model);
  SpatiotemporalAggregator agg_b(b.model);
  const double p = 0.4;
  const auto ra = agg_a.run(p);
  const auto rb = agg_b.run(p);
  EXPECT_NEAR(ra.optimal_pic, rb.optimal_pic, 1e-9);
  // Mirror ra's areas and compare as sets.
  const SliceId last = a.model.slice_count() - 1;
  Partition mirrored;
  for (const auto& area : ra.partition.areas()) {
    mirrored.add(area.node, last - area.time.j, last - area.time.i);
  }
  EXPECT_EQ(mirrored.signature(), rb.partition.signature());
}

TEST_P(InvariantTest, MeasuresAreTimeUnitInvariant) {
  // Rescaling the window (and durations) by any factor leaves proportions,
  // hence gain/loss, unchanged.  Build the same logical trace at two time
  // scales and compare the cubes.
  const Hierarchy h = make_flat_hierarchy(3);
  const auto build = [&](double unit) {
    Trace t;
    for (std::size_t s = 0; s < 3; ++s) {
      t.add_resource(h.path(h.leaf_node(static_cast<LeafId>(s))));
    }
    const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
    Rng rng(seed);
    for (ResourceId r = 0; r < 3; ++r) {
      double cursor = 0.0;
      while (cursor < 8.0) {
        const double dur = rng.uniform(0.05, 0.4);
        t.add_state(r, rng.chance(0.5) ? "a" : "b",
                    seconds(cursor * unit),
                    seconds(std::min(cursor + dur, 8.0) * unit));
        cursor += dur + rng.uniform(0.0, 0.1);
      }
    }
    t.set_window(0, seconds(8.0 * unit));
    return build_model(t, h, {.slice_count = 8});
  };
  const MicroscopicModel m1 = build(1.0);
  const MicroscopicModel m5 = build(5.0);
  const DataCube c1(m1), c5(m5);
  for (SliceId i = 0; i < 8; ++i) {
    for (SliceId j = i; j < 8; ++j) {
      const auto a = c1.measures(h.root(), i, j);
      const auto b = c5.measures(h.root(), i, j);
      EXPECT_NEAR(a.gain, b.gain, 1e-6);
      EXPECT_NEAR(a.loss, b.loss, 1e-6);
    }
  }
}

TEST_P(InvariantTest, PicIsAdditiveOverStates) {
  const OwnedModel a = make();
  const DataCube cube(a.model);
  const Hierarchy& h = *a.hierarchy;
  for (NodeId n = 0; n < static_cast<NodeId>(h.node_count()); n += 2) {
    const AreaMeasures whole = cube.measures(n, 2, 7);
    AreaMeasures by_state;
    for (StateId x = 0; x < a.model.state_count(); ++x) {
      by_state += cube.state_measures(n, 2, 7, x);
    }
    EXPECT_NEAR(whole.gain, by_state.gain, 1e-9);
    EXPECT_NEAR(whole.loss, by_state.loss, 1e-9);
  }
}

TEST_P(InvariantTest, PicIsAdditiveOverPartitionParts) {
  const OwnedModel a = make();
  SpatiotemporalAggregator agg(a.model);
  const auto r = agg.run(0.35);
  AreaMeasures sum;
  for (const auto& area : r.partition.areas()) {
    sum += agg.cube().measures(area.node, area.time.i, area.time.j);
  }
  EXPECT_NEAR(pic(0.35, sum.gain, sum.loss), r.optimal_pic, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantTest,
                         ::testing::Values(101, 202, 303, 404, 505));

// --- Audit layer ------------------------------------------------------------

/// Scratch file path for spill-enabled store histories.
std::string audit_scratch(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("stagg_audit_") + tag + ".spill"))
      .string();
}

/// Drives one TraceStore through a randomized append/seal/evict/spill/
/// compact/compress history, auditing after every mutation.  The audit is
/// the assertion: any internal inconsistency (broken fences, unsorted
/// columns, horizon leak, spill-byte drift) throws ContractError and fails
/// the test loudly.
void run_random_store_history(std::uint64_t seed, bool spill) {
  Rng rng(seed);
  TraceStore store;
  const ResourceId resources = 3;
  for (ResourceId r = 0; r < resources; ++r) {
    store.add_resource("res/" + std::to_string(r));
  }
  const StateId states = 3;
  for (StateId x = 0; x < states; ++x) {
    store.states().intern("state_" + std::to_string(x));
  }
  std::string spill_path;
  if (spill) {
    spill_path = audit_scratch(("hist" + std::to_string(seed)).c_str());
    std::remove(spill_path.c_str());
    store.enable_spill(spill_path);
    store.audit();
  }
  TimeNs cursor = 0;
  for (int step = 0; step < 120; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    if (op <= 4) {
      // Append a small batch; occasionally backdated (still >= horizon
      // history is irrelevant — stale intervals are legal in tails).
      const int n = static_cast<int>(rng.uniform_int(1, 40));
      for (int i = 0; i < n; ++i) {
        const auto r = static_cast<ResourceId>(rng.uniform_int(0, 2));
        const auto x = static_cast<StateId>(rng.uniform_int(0, 2));
        const TimeNs begin =
            rng.chance(0.2) ? rng.uniform_int(0, cursor + 1)  // backdated
                            : cursor + rng.uniform_int(0, 50);
        const TimeNs end = begin + rng.uniform_int(1, 200);
        store.add_state(r, x, begin, end);
        cursor = std::max(cursor, end);
      }
    } else if (op == 5) {
      store.seal_chunk();
    } else if (op == 6) {
      store.seal_chunk();
      store.evict_before(rng.uniform_int(0, cursor + 1));
    } else if (op == 7) {
      store.seal_chunk();
      store.erase_before_exact(rng.uniform_int(0, cursor + 1));
    } else if (op == 8 && spill) {
      store.seal_chunk();
      store.spill_cold(static_cast<std::size_t>(rng.uniform_int(0, 4096)));
      if (rng.chance(0.3)) store.pin_all();
    } else if (op == 9) {
      store.set_compression(rng.chance(0.5) ? ChunkCompression::kAuto
                                            : ChunkCompression::kNone);
    }
    store.audit();
  }
  store.seal_chunk();
  store.audit();
  if (spill) std::remove(spill_path.c_str());
}

TEST(AuditLayer, RandomizedStoreHistoriesPassAudit) {
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    run_random_store_history(seed, /*spill=*/false);
  }
}

TEST(AuditLayer, RandomizedSpillingStoreHistoriesPassAudit) {
  for (const std::uint64_t seed : {55u, 66u}) {
    run_random_store_history(seed, /*spill=*/true);
  }
}

TEST(AuditLayer, AuditRejectsUnsortedAdoptedChunk) {
  TraceStore store;
  store.add_resource("res/0");
  store.states().intern("a");
  // The trusting column ctor + adopt_chunk is the only door for unsorted
  // data (binary_io validates before using it); audit() must slam it.  In
  // audit builds seal_chunk() audits on its own and throws right there,
  // so the whole sequence sits inside the EXPECT_THROW.
  EXPECT_THROW(
      {
        store.adopt_chunk(0, std::make_shared<const TraceChunk>(
                                 std::vector<TimeNs>{100, 0},
                                 std::vector<TimeNs>{200, 50},
                                 std::vector<StateId>{0, 0}));
        store.seal_chunk();
        store.audit();
      },
      ContractError);
}

TEST(AuditLayer, AuditRejectsOutOfRangeStateId) {
  TraceStore store;
  store.add_resource("res/0");
  store.states().intern("a");
  EXPECT_THROW(
      {
        store.adopt_chunk(
            0, std::make_shared<const TraceChunk>(
                   std::vector<TimeNs>{0}, std::vector<TimeNs>{10},
                   std::vector<StateId>{7}));  // only state 0 exists
        store.seal_chunk();
        store.audit();
      },
      ContractError);
}

TEST(AuditLayer, AuditRejectsIntervalWithEndBeforeBegin) {
  TraceStore store;
  store.add_resource("res/0");
  store.states().intern("a");
  EXPECT_THROW(
      {
        store.adopt_chunk(0, std::make_shared<const TraceChunk>(
                                 std::vector<TimeNs>{100},
                                 std::vector<TimeNs>{40},
                                 std::vector<StateId>{0}));
        store.seal_chunk();
        store.audit();
      },
      ContractError);
}

TEST(AuditLayer, CubeAndMeasureCacheAuditsHoldOnRandomModels) {
  for (const std::uint64_t seed : {7u, 8u}) {
    const OwnedModel m = make_random_model({.levels = 2,
                                            .fanout = 3,
                                            .slices = 8,
                                            .states = 3,
                                            .block_slices = 2,
                                            .block_leaves = 2,
                                            .idle_fraction = 0.1,
                                            .seed = seed});
    const DataCube cube(m.model);
    cube.audit();
    MeasureCache cache;
    cache.audit(cube);  // not built: must be a no-op
    cache.build(cube);
    cache.audit(cube);
  }
}

TEST(AuditLayer, MeasureCacheAuditRejectsMismatchedCube) {
  const OwnedModel a = make_random_model({.levels = 2,
                                          .fanout = 3,
                                          .slices = 8,
                                          .states = 3,
                                          .block_slices = 2,
                                          .block_leaves = 2,
                                          .idle_fraction = 0.1,
                                          .seed = 1u});
  const OwnedModel b = make_random_model({.levels = 2,
                                          .fanout = 3,
                                          .slices = 8,
                                          .states = 3,
                                          .block_slices = 2,
                                          .block_leaves = 2,
                                          .idle_fraction = 0.1,
                                          .seed = 2u});
  const DataCube cube_a(a.model);
  const DataCube cube_b(b.model);
  MeasureCache cache;
  cache.build(cube_a);
  cache.audit(cube_a);
  // A cache claiming to mirror a cube it was not built from is exactly the
  // staleness bug the audit exists to catch.
  EXPECT_THROW(cache.audit(cube_b), ContractError);
}

/// One SessionManager fixture: balanced hierarchy, synthetic trace split
/// at a horizon, two overlapping sliding windows.
struct AuditFixture {
  Hierarchy hierarchy = make_balanced_hierarchy(2, 3);
  Trace whole;
  TimeNs horizon = seconds(8.0);

  explicit AuditFixture(std::uint64_t seed) {
    const auto programmer = [](LeafId leaf) {
      ResourceProgram p;
      p.phases.push_back({0.0, 20.0,
                          StatePattern{{{"compute", 0.05, 0.3},
                                        {"wait", leaf % 2 == 0 ? 0.04 : 0.02,
                                         0.4},
                                        {"send", 0.02, 0.3}}}});
      return p;
    };
    whole = generate_trace(hierarchy, programmer, seed);
    whole.seal();
  }

  std::unique_ptr<SessionManager> make_manager(std::size_t lanes) {
    TraceSplit split = split_trace_at(whole, horizon);
    split.initial.seal();
    auto manager =
        std::make_unique<SessionManager>(hierarchy, split.initial.store());
    SlidingWindowOptions opt;
    opt.aggregation.max_lanes = lanes;
    SessionSpec a;
    a.window = TimeGrid(0, seconds(6.0), 12);
    a.ps = {0.3, 0.7};
    a.options = opt;
    manager->add_session(a);
    SessionSpec b;
    b.window = TimeGrid(seconds(1.0), seconds(7.0), 6);
    b.ps = {0.5};
    b.options = opt;
    manager->add_session(b);
    return manager;
  }

  std::vector<std::pair<TimeNs, std::vector<EventRecord>>> rounds(
      TimeNs step, TimeNs last) {
    TraceSplit split = split_trace_at(whole, horizon);
    std::vector<std::pair<TimeNs, std::vector<EventRecord>>> out;
    std::size_t next = 0;
    for (TimeNs frontier = horizon + step; frontier <= last;
         frontier += step) {
      std::vector<EventRecord> records;
      for (; next < split.future.size() &&
             split.future[next].second.begin < frontier;
           ++next) {
        const auto& [r, s] = split.future[next];
        records.push_back(EventRecord{r, s.state, s.begin, s.end});
      }
      out.emplace_back(frontier, std::move(records));
    }
    return out;
  }
};

void run_manager_audit_history(std::size_t lanes) {
  AuditFixture fx(0xA0D1 + lanes);
  auto manager = fx.make_manager(lanes);
  manager->audit();
  std::size_t appended = 0;
  for (const auto& [frontier, records] : fx.rounds(seconds(2.0),
                                                   seconds(18.0))) {
    for (const EventRecord& rec : records) {
      manager->append(rec.resource, rec.state, rec.begin, rec.end);
      ++appended;
    }
    manager->advance_to(frontier);
    manager->audit();
  }
  ASSERT_GT(appended, 100u) << "history must actually carry events";
}

TEST(AuditLayer, SessionManagerSlideHistoryPassesAuditW1) {
  run_manager_audit_history(1);
}

TEST(AuditLayer, SessionManagerSlideHistoryPassesAuditW4) {
  run_manager_audit_history(4);
}

void run_pipeline_audit_history(std::size_t lanes) {
  AuditFixture fx(0xB0B + lanes);
  auto manager = fx.make_manager(lanes);
  const auto rounds = fx.rounds(seconds(2.0), seconds(18.0));
  ASSERT_GE(rounds.size(), 3u);
  {
    IngestPipelineOptions opt;
    opt.parse_workers = 2;
    IngestPipeline pipeline(*manager, opt);
    for (const auto& [frontier, records] : rounds) {
      pipeline.submit_records(records);
      pipeline.advance_watermark(frontier);
    }
    pipeline.wait_until_advanced(rounds.back().first);
    pipeline.close();
  }
  // The pipeline is quiesced: the shared store and sessions must audit
  // clean after the staged parse/seal/advance history.
  manager->audit();
}

TEST(AuditLayer, PipelineHistoryPassesAuditW1) {
  run_pipeline_audit_history(1);
}

TEST(AuditLayer, PipelineHistoryPassesAuditW4) {
  run_pipeline_audit_history(4);
}

}  // namespace
}  // namespace stagg
