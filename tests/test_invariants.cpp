// Symmetry and invariance properties of the aggregation (parameterized
// property tests).  These pin down semantics the paper implies but never
// states: the criterion is additive over states, blind to state identity,
// covariant with time reversal and with sibling permutations, and
// insensitive to uniform time rescaling.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/aggregator.hpp"
#include "model/builder.hpp"
#include "workload/fixtures.hpp"

namespace stagg {
namespace {

/// Copies a model with the state axis permuted: perm[x] = new index of x.
OwnedModel permute_states(const OwnedModel& src,
                          const std::vector<StateId>& perm) {
  OwnedModel out;
  out.hierarchy = std::make_unique<Hierarchy>(*src.hierarchy);
  StateRegistry states;
  std::vector<std::string> names(perm.size());
  for (StateId x = 0; x < static_cast<StateId>(perm.size()); ++x) {
    names[static_cast<std::size_t>(perm[static_cast<std::size_t>(x)])] =
        src.model.states().name(x);
  }
  for (const auto& n : names) states.intern(n);
  out.model =
      MicroscopicModel(out.hierarchy.get(), src.model.grid(), states);
  for (LeafId s = 0; s < src.model.resource_count(); ++s) {
    for (SliceId t = 0; t < src.model.slice_count(); ++t) {
      for (StateId x = 0; x < src.model.state_count(); ++x) {
        out.model.set_duration(s, t,
                               perm[static_cast<std::size_t>(x)],
                               src.model.duration(s, t, x));
      }
    }
  }
  return out;
}

/// Copies a model with time reversed (slice t -> T-1-t).
OwnedModel reverse_time(const OwnedModel& src) {
  OwnedModel out;
  out.hierarchy = std::make_unique<Hierarchy>(*src.hierarchy);
  StateRegistry states = src.model.states();
  out.model =
      MicroscopicModel(out.hierarchy.get(), src.model.grid(), states);
  const SliceId last = src.model.slice_count() - 1;
  for (LeafId s = 0; s < src.model.resource_count(); ++s) {
    for (SliceId t = 0; t <= last; ++t) {
      for (StateId x = 0; x < src.model.state_count(); ++x) {
        out.model.set_duration(s, last - t, x, src.model.duration(s, t, x));
      }
    }
  }
  return out;
}

class InvariantTest : public ::testing::TestWithParam<int> {
 protected:
  OwnedModel make() const {
    return make_random_model({.levels = 2,
                              .fanout = 3,
                              .slices = 10,
                              .states = 3,
                              .block_slices = 3,
                              .block_leaves = 2,
                              .idle_fraction = 0.1,
                              .seed = static_cast<std::uint64_t>(GetParam())});
  }
};

TEST_P(InvariantTest, StateRelabelingPreservesOptimum) {
  const OwnedModel a = make();
  const OwnedModel b = permute_states(a, {2, 0, 1});
  SpatiotemporalAggregator agg_a(a.model);
  SpatiotemporalAggregator agg_b(b.model);
  for (const double p : {0.2, 0.5, 0.8}) {
    const auto ra = agg_a.run(p);
    const auto rb = agg_b.run(p);
    EXPECT_NEAR(ra.optimal_pic, rb.optimal_pic, 1e-9);
    EXPECT_EQ(ra.partition.signature(), rb.partition.signature());
  }
}

TEST_P(InvariantTest, AllZeroExtraStateIsNeutral) {
  const OwnedModel a = make();
  // Rebuild with one extra, never-used state.
  OwnedModel b;
  b.hierarchy = std::make_unique<Hierarchy>(*a.hierarchy);
  StateRegistry states = a.model.states();
  states.intern("phantom_state");
  b.model = MicroscopicModel(b.hierarchy.get(), a.model.grid(), states);
  for (LeafId s = 0; s < a.model.resource_count(); ++s) {
    for (SliceId t = 0; t < a.model.slice_count(); ++t) {
      for (StateId x = 0; x < a.model.state_count(); ++x) {
        b.model.set_duration(s, t, x, a.model.duration(s, t, x));
      }
    }
  }
  SpatiotemporalAggregator agg_a(a.model);
  SpatiotemporalAggregator agg_b(b.model);
  const auto ra = agg_a.run(0.5);
  const auto rb = agg_b.run(0.5);
  EXPECT_NEAR(ra.optimal_pic, rb.optimal_pic, 1e-9);
  EXPECT_EQ(ra.partition.signature(), rb.partition.signature());
}

TEST_P(InvariantTest, TimeReversalMirrorsThePartition) {
  const OwnedModel a = make();
  const OwnedModel b = reverse_time(a);
  SpatiotemporalAggregator agg_a(a.model);
  SpatiotemporalAggregator agg_b(b.model);
  const double p = 0.4;
  const auto ra = agg_a.run(p);
  const auto rb = agg_b.run(p);
  EXPECT_NEAR(ra.optimal_pic, rb.optimal_pic, 1e-9);
  // Mirror ra's areas and compare as sets.
  const SliceId last = a.model.slice_count() - 1;
  Partition mirrored;
  for (const auto& area : ra.partition.areas()) {
    mirrored.add(area.node, last - area.time.j, last - area.time.i);
  }
  EXPECT_EQ(mirrored.signature(), rb.partition.signature());
}

TEST_P(InvariantTest, MeasuresAreTimeUnitInvariant) {
  // Rescaling the window (and durations) by any factor leaves proportions,
  // hence gain/loss, unchanged.  Build the same logical trace at two time
  // scales and compare the cubes.
  const Hierarchy h = make_flat_hierarchy(3);
  const auto build = [&](double unit) {
    Trace t;
    for (std::size_t s = 0; s < 3; ++s) {
      t.add_resource(h.path(h.leaf_node(static_cast<LeafId>(s))));
    }
    const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
    Rng rng(seed);
    for (ResourceId r = 0; r < 3; ++r) {
      double cursor = 0.0;
      while (cursor < 8.0) {
        const double dur = rng.uniform(0.05, 0.4);
        t.add_state(r, rng.chance(0.5) ? "a" : "b",
                    seconds(cursor * unit),
                    seconds(std::min(cursor + dur, 8.0) * unit));
        cursor += dur + rng.uniform(0.0, 0.1);
      }
    }
    t.set_window(0, seconds(8.0 * unit));
    return build_model(t, h, {.slice_count = 8});
  };
  const MicroscopicModel m1 = build(1.0);
  const MicroscopicModel m5 = build(5.0);
  const DataCube c1(m1), c5(m5);
  for (SliceId i = 0; i < 8; ++i) {
    for (SliceId j = i; j < 8; ++j) {
      const auto a = c1.measures(h.root(), i, j);
      const auto b = c5.measures(h.root(), i, j);
      EXPECT_NEAR(a.gain, b.gain, 1e-6);
      EXPECT_NEAR(a.loss, b.loss, 1e-6);
    }
  }
}

TEST_P(InvariantTest, PicIsAdditiveOverStates) {
  const OwnedModel a = make();
  const DataCube cube(a.model);
  const Hierarchy& h = *a.hierarchy;
  for (NodeId n = 0; n < static_cast<NodeId>(h.node_count()); n += 2) {
    const AreaMeasures whole = cube.measures(n, 2, 7);
    AreaMeasures by_state;
    for (StateId x = 0; x < a.model.state_count(); ++x) {
      by_state += cube.state_measures(n, 2, 7, x);
    }
    EXPECT_NEAR(whole.gain, by_state.gain, 1e-9);
    EXPECT_NEAR(whole.loss, by_state.loss, 1e-9);
  }
}

TEST_P(InvariantTest, PicIsAdditiveOverPartitionParts) {
  const OwnedModel a = make();
  SpatiotemporalAggregator agg(a.model);
  const auto r = agg.run(0.35);
  AreaMeasures sum;
  for (const auto& area : r.partition.areas()) {
    sum += agg.cube().measures(area.node, area.time.i, area.time.j);
  }
  EXPECT_NEAR(pic(0.35, sum.gain, sum.loss), r.optimal_pic, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace stagg
