// Splice-equivalence and hardening suite for the incremental
// re-aggregation subsystem (SlidingWindowSession + run_incremental).
//
// The contract is *exactness*: after any sequence of append / slide /
// extend / contract / refresh operations, the session's results are
// bit-identical (EXPECT_EQ on doubles, identical partitions) to a
// from-scratch run_many over the same window — verified against the
// kReference and kCachedSolo oracles and across lane widths 1/4/8.  The
// boundary tests pin the half-open edge convention: an event's mass lands
// in exactly one slice partition, never twice, never zero-plus-twice.
#include "core/sliding_window.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/aggregator.hpp"
#include "core/measure_cache.hpp"
#include "hierarchy/platform.hpp"
#include "model/builder.hpp"
#include "workload/fixtures.hpp"
#include "workload/nas_lu.hpp"
#include "workload/synthetic.hpp"

namespace stagg {
namespace {

void expect_results_equal(const std::vector<AggregationResult>& got,
                          const std::vector<AggregationResult>& want,
                          const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t k = 0; k < got.size(); ++k) {
    EXPECT_EQ(got[k].p, want[k].p) << context << " k=" << k;
    EXPECT_EQ(got[k].optimal_pic, want[k].optimal_pic)
        << context << " k=" << k << " p=" << got[k].p;
    EXPECT_EQ(got[k].partition.signature(), want[k].partition.signature())
        << context << " k=" << k << " p=" << got[k].p;
    EXPECT_TRUE(got[k].partition == want[k].partition)
        << context << " k=" << k;
    EXPECT_EQ(got[k].measures.gain, want[k].measures.gain)
        << context << " k=" << k;
    EXPECT_EQ(got[k].measures.loss, want[k].measures.loss)
        << context << " k=" << k;
  }
}

/// A time-ordered stream of (resource, interval) events feeding a session:
/// the test driver delivers every event whose begin precedes the window
/// horizon before each advance, like a live ingest frontier would.
struct EventStream {
  std::vector<std::pair<ResourceId, StateInterval>> events;
  std::size_t next = 0;

  static EventStream from_trace(const Trace& trace, TimeNs horizon,
                                Trace& initial) {
    EventStream stream;
    for (const auto& name : trace.states().names()) {
      (void)initial.states().intern(name);
    }
    for (ResourceId r = 0;
         r < static_cast<ResourceId>(trace.resource_count()); ++r) {
      initial.add_resource(trace.resource_path(r));
      for (const auto& s : trace.intervals(r)) {
        if (s.begin < horizon) {
          initial.add_state(r, s.state, s.begin, s.end);
        } else {
          stream.events.emplace_back(r, s);
        }
      }
    }
    std::sort(stream.events.begin(), stream.events.end(),
              [](const auto& a, const auto& b) {
                if (a.second.begin != b.second.begin) {
                  return a.second.begin < b.second.begin;
                }
                if (a.first != b.first) return a.first < b.first;
                return a.second.end < b.second.end;
              });
    return stream;
  }

  void deliver_until(SlidingWindowSession& session, TimeNs horizon) {
    while (next < events.size() && events[next].second.begin < horizon) {
      const auto& [r, s] = events[next];
      session.append(r, s.state, s.begin, s.end);
      ++next;
    }
  }
};

Trace make_synthetic_trace(const Hierarchy& hierarchy, double span_s,
                           std::uint64_t seed) {
  const auto programmer = [span_s](LeafId leaf) {
    ResourceProgram p;
    const double phase_split = span_s * 0.4;
    p.phases.push_back(
        {0.0, phase_split,
         StatePattern{{{"compute", 0.04, 0.3}, {"send", 0.02, 0.4}}}});
    p.phases.push_back(
        {phase_split, span_s,
         StatePattern{{{"compute", 0.05, 0.2},
                       {"wait", leaf % 3 == 0 ? 0.06 : 0.015, 0.5},
                       {"send", 0.02, 0.3}}}});
    return p;
  };
  return generate_trace(hierarchy, programmer, seed);
}

// ---------------------------------------------------------------------------
// Static equivalence: an untouched session is a plain run_many.
// ---------------------------------------------------------------------------

TEST(SlidingWindow, InitialResultsMatchBatchRunMany) {
  const Hierarchy h = make_balanced_hierarchy(2, 4);
  Trace trace = make_synthetic_trace(h, 40.0, 11);
  const TimeGrid window(0, seconds(32.0), 32);
  const std::vector<double> ps = {0.0, 0.3, 0.55, 0.8, 1.0};
  SlidingWindowSession session(h, std::move(trace), window, ps);
  expect_results_equal(session.results(),
                       session.run_from_scratch(DpKernel::kCachedWavefront),
                       "initial/wavefront");
  expect_results_equal(session.results(),
                       session.run_from_scratch(DpKernel::kReference),
                       "initial/reference");
}

TEST(SlidingWindow, RepeatedRunWithoutChangesIsIdenticalAndCheap) {
  // A refresh with nothing staged recomputes no column (the retained
  // extraction path); the results must still be bit-identical.
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  Trace trace = make_synthetic_trace(h, 30.0, 23);
  SlidingWindowSession session(h, std::move(trace),
                               TimeGrid(0, seconds(24.0), 24), {0.25, 0.75});
  const auto first = session.results();
  EXPECT_EQ(session.pending_dirty_slice(), 24);  // clean retained state
  const auto& second = session.refresh();
  expect_results_equal(second, first, "refresh-noop");
}

// ---------------------------------------------------------------------------
// Half-open edge convention: boundary events land exactly once.
// ---------------------------------------------------------------------------

class EdgeConvention : public ::testing::Test {
 protected:
  void SetUp() override {
    hierarchy_ = make_flat_hierarchy(2);
    trace_.add_resource(hierarchy_.path(hierarchy_.leaves()[0]));
    trace_.add_resource(hierarchy_.path(hierarchy_.leaves()[1]));
    (void)trace_.states().intern("busy");
    // Baseline activity so the model is not degenerate.
    trace_.add_state(0, StateId{0}, 0, seconds(10.0));
  }
  Hierarchy hierarchy_;
  Trace trace_;
};

TEST_F(EdgeConvention, EventExactlyAtWindowEndContributesNothingUntilExtend) {
  SlidingWindowSession session(hierarchy_, std::move(trace_),
                               TimeGrid(0, seconds(10.0), 10), {0.5});
  const double mass_before = session.model().total_mass();
  // A state entered exactly at the window end: by [begin, end) it overlaps
  // the window nowhere — the old-suffix partition must not count it.
  session.append(ResourceId{1}, StateId{0}, seconds(10.0), seconds(11.0));
  session.refresh();
  EXPECT_EQ(session.model().total_mass(), mass_before);
  expect_results_equal(session.results(),
                       session.run_from_scratch(DpKernel::kReference),
                       "at-window-end/refresh");
  // Extending makes it visible — entirely inside the new suffix, exactly
  // once: total mass grows by exactly the 1 s the event spans.
  session.extend(1);
  EXPECT_DOUBLE_EQ(session.model().total_mass(), mass_before + 1.0);
  expect_results_equal(session.results(),
                       session.run_from_scratch(DpKernel::kReference),
                       "at-window-end/extend");
}

TEST_F(EdgeConvention, ZeroDurationEventAtWindowEndIsInert) {
  SlidingWindowSession session(hierarchy_, std::move(trace_),
                               TimeGrid(0, seconds(10.0), 10), {0.5});
  const auto baseline = session.results();
  const double mass_before = session.model().total_mass();
  session.append(ResourceId{1}, StateId{0}, seconds(10.0), seconds(10.0));
  session.refresh();
  EXPECT_EQ(session.model().total_mass(), mass_before);
  expect_results_equal(session.results(), baseline, "zero-duration");
  session.extend(1);
  EXPECT_EQ(session.model().total_mass(), mass_before);
}

TEST_F(EdgeConvention, EventStartingOnSliceEdgeFoldsIntoOneSliceOnly) {
  SlidingWindowSession session(hierarchy_, std::move(trace_),
                               TimeGrid(0, seconds(10.0), 10), {0.5});
  // [7 s, 7.5 s) starts exactly on the slice 6|7 edge: slice 6 must see
  // none of it, slice 7 all of it.
  session.append(ResourceId{1}, StateId{0}, seconds(7.0), seconds(7.5));
  session.refresh();
  EXPECT_EQ(session.model().duration(LeafId{1}, 6, 0), 0.0);
  EXPECT_DOUBLE_EQ(session.model().duration(LeafId{1}, 7, 0), 0.5);
  // And one *ending* exactly on the 8|9 edge: slice 9 sees none of it.
  session.append(ResourceId{1}, StateId{0}, seconds(8.5), seconds(9.0));
  session.refresh();
  EXPECT_DOUBLE_EQ(session.model().duration(LeafId{1}, 8, 0), 0.5);
  EXPECT_EQ(session.model().duration(LeafId{1}, 9, 0), 0.0);
  expect_results_equal(session.results(),
                       session.run_from_scratch(DpKernel::kReference),
                       "slice-edge");
}

TEST_F(EdgeConvention, SlideDropsExactlyTheLeadingSlices) {
  SlidingWindowSession session(hierarchy_, std::move(trace_),
                               TimeGrid(0, seconds(10.0), 10), {0.5});
  // An event straddling the slide boundary: after slide(2) only its part
  // in [2 s, 10 s) + the appended tail remains.
  session.slide(2);
  EXPECT_EQ(session.window().begin(), seconds(2.0));
  EXPECT_EQ(session.window().end(), seconds(12.0));
  // leaf 0 was busy over [0, 10 s): 8 s survive the slide.
  EXPECT_DOUBLE_EQ(session.model().total_mass(), 8.0);
  expect_results_equal(session.results(),
                       session.run_from_scratch(DpKernel::kReference),
                       "slide-clip");
}

// ---------------------------------------------------------------------------
// Randomized splice property: 200 random ops, synthetic + NAS-LU, W 1/4/8.
// ---------------------------------------------------------------------------

struct PropertyRunStats {
  int ops = 0;
  int reference_checks = 0;
};

PropertyRunStats drive_random_ops(SlidingWindowSession& session,
                                  EventStream& stream, Rng& rng, int op_count,
                                  const std::string& tag) {
  PropertyRunStats stats;
  const TimeNs dt = session.window().uniform_dt_ns();
  for (int op = 0; op < op_count; ++op) {
    const auto t = session.window().slice_count();
    TimeGrid next = session.window();
    const int kind = static_cast<int>(rng.uniform_int(0, 9));
    if (kind <= 4) {
      next = next.advanced(static_cast<std::int32_t>(rng.uniform_int(1, 3)));
    } else if (kind <= 6 && t < 56) {
      next = next.extended(static_cast<std::int32_t>(rng.uniform_int(1, 2)));
    } else if (kind == 7 && t > 20) {
      next = next.contracted(static_cast<std::int32_t>(rng.uniform_int(1, 2)));
    }  // kind 8, 9 (and guarded cases): refresh over the same window
    // Occasionally inject a hand-made boundary event: exactly on the next
    // window's end, on a slice edge, or reaching back into the clean
    // prefix (a correct-but-slow full-dirty advance).
    if (rng.chance(0.3)) {
      const auto r = static_cast<ResourceId>(rng.uniform_int(
          0, static_cast<std::int64_t>(session.trace().resource_count()) - 1));
      const TimeNs end = next.end();
      TimeNs b = 0;
      TimeNs e = 0;
      switch (rng.uniform_int(0, 3)) {
        case 0: b = end; e = end + dt; break;                  // at window end
        case 1: b = end - dt; e = end - dt / 2; break;         // on slice edge
        case 2: b = end - dt / 3; e = end + dt / 3; break;     // straddling
        default:                                               // reaching back
          b = next.begin() + (next.end() - next.begin()) / 2;
          e = b + dt / 4;
          break;
      }
      session.append(r, StateId{0}, b, e);
    }
    stream.deliver_until(session, next.end());
    const std::int32_t shift = static_cast<std::int32_t>(
        (next.begin() - session.window().begin()) / dt);
    if (shift > 0) {
      session.slide(shift);
    } else if (next.slice_count() > t) {
      session.extend(next.slice_count() - t);
    } else if (next.slice_count() < t) {
      session.contract(t - next.slice_count());
    } else {
      session.refresh();
    }
    ++stats.ops;
    const std::string context = tag + " op=" + std::to_string(op);
    expect_results_equal(session.results(),
                         session.run_from_scratch(DpKernel::kCachedSolo),
                         context + "/solo");
    if (op % 7 == 3) {
      ++stats.reference_checks;
      expect_results_equal(session.results(),
                           session.run_from_scratch(DpKernel::kReference),
                           context + "/reference");
    }
    if (::testing::Test::HasFatalFailure()) break;
  }
  return stats;
}

TEST(SlidingWindowProperty, RandomOpsBitIdenticalAcrossLaneWidths) {
  const Hierarchy h = make_balanced_hierarchy(2, 4);  // 16 leaves
  const Trace full = [&] {
    Trace t = make_synthetic_trace(h, 150.0, 20260729);
    t.seal();
    return t;
  }();
  int total_ops = 0;
  for (const std::size_t width : {std::size_t{1}, std::size_t{4},
                                  std::size_t{8}}) {
    Trace initial;
    Trace source = full;  // reset the stream per width
    EventStream stream = EventStream::from_trace(source, seconds(32.0),
                                                 initial);
    SlidingWindowOptions opt;
    opt.aggregation.max_lanes = width;
    const std::vector<double> ps = {0.0, 0.2, 0.45, 0.45, 0.7, 1.0};
    SlidingWindowSession session(h, std::move(initial),
                                 TimeGrid(0, seconds(32.0), 32), ps, opt);
    Rng rng(977, width);
    const PropertyRunStats stats =
        drive_random_ops(session, stream, rng, 50,
                         "synthetic W=" + std::to_string(width));
    total_ops += stats.ops;
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
  }
  EXPECT_EQ(total_ops, 150);
}

TEST(SlidingWindowProperty, NasLuWorkloadRandomOps) {
  const PlatformSpec platform = grid5000_nancy().scaled_to(48);
  const Hierarchy h = platform.build_hierarchy();
  LuWorkloadOptions lu;
  lu.event_scale = 1.0 / 256.0;
  lu.span_s = 65.0;
  const Trace full = [&] {
    Trace t = generate_lu_trace(h, platform, lu);
    t.seal();
    return t;
  }();
  Trace initial;
  Trace source = full;
  // 26 s window, 40 slices: dt = 0.65 s (integer ns), covers the
  // heterogeneous Allreduce / rupture structure as the window slides.
  EventStream stream = EventStream::from_trace(source, seconds(26.0),
                                               initial);
  SlidingWindowOptions opt;
  opt.aggregation.max_lanes = 4;
  SlidingWindowSession session(h, std::move(initial),
                               TimeGrid(0, seconds(26.0), 40),
                               {0.1, 0.4, 0.6, 0.9}, opt);
  Rng rng(31337);
  const PropertyRunStats stats =
      drive_random_ops(session, stream, rng, 50, "nas-lu");
  EXPECT_EQ(stats.ops, 50);
}

// ---------------------------------------------------------------------------
// Working-set / arena guards across window changes (ASan-covered).
// ---------------------------------------------------------------------------

TEST(SlidingWindow, WorkingSetAccountingTracksPostAdvanceWindow) {
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  Trace trace = make_synthetic_trace(h, 80.0, 5);
  SlidingWindowOptions opt;
  opt.aggregation.max_lanes = 4;
  const std::vector<double> ps = {0.1, 0.5, 0.9};
  SlidingWindowSession session(h, std::move(trace),
                               TimeGrid(0, seconds(30.0), 30), ps, opt);
  const SpatiotemporalAggregator& agg = session.aggregator();
  const std::size_t nodes = h.node_count();

  const auto retained_bytes = [&](std::int32_t slices) {
    // One 3-lane wave: pIC (8) + count (4) + cut (4) bytes per cell/lane.
    return nodes * TriangularIndex(slices).size() * ps.size() *
           (sizeof(double) + 2 * sizeof(std::int32_t));
  };
  const std::size_t ws30 = agg.working_set_bytes(3);
  EXPECT_EQ(agg.incremental_state_bytes(), retained_bytes(30));
  EXPECT_EQ(agg.measure_cache().memory_bytes(),
            MeasureCache::estimate_bytes(nodes, 30));

  session.extend(10);  // |T| = 40
  EXPECT_EQ(agg.incremental_state_bytes(), retained_bytes(40));
  EXPECT_EQ(agg.measure_cache().memory_bytes(),
            MeasureCache::estimate_bytes(nodes, 40));
  EXPECT_GT(agg.working_set_bytes(3), ws30);

  session.contract(15);  // |T| = 25: shrink must release cell spans
  EXPECT_EQ(agg.incremental_state_bytes(), retained_bytes(25));
  EXPECT_EQ(agg.measure_cache().memory_bytes(),
            MeasureCache::estimate_bytes(nodes, 25));
  EXPECT_LT(agg.working_set_bytes(3), ws30);

  // The estimate must agree with a fresh aggregator of the same shape at
  // the post-advance |T| — no stale-lane or stale-|T| accounting.
  expect_results_equal(session.results(),
                       session.run_from_scratch(DpKernel::kCachedWavefront),
                       "post-contract");
  session.slide(3);
  expect_results_equal(session.results(),
                       session.run_from_scratch(DpKernel::kReference),
                       "post-contract-slide");
}

TEST(SlidingWindow, ShrinkGrowShrinkCyclesStayExact) {
  // Exercises the relocation paths hard (ASan hunts dangling spans): grow
  // far beyond the start size, shrink far below it, slide in between.
  const Hierarchy h = make_balanced_hierarchy(3, 2);
  Trace trace = make_synthetic_trace(h, 90.0, 404);
  SlidingWindowOptions opt;
  opt.aggregation.max_lanes = 2;
  SlidingWindowSession session(h, std::move(trace),
                               TimeGrid(0, seconds(24.0), 24),
                               {0.15, 0.5, 0.85}, opt);
  const std::int32_t grows[] = {20, -30, 8, -4, 16, -20};
  for (const std::int32_t delta : grows) {
    if (delta > 0) {
      session.extend(delta);
    } else {
      session.contract(-delta);
    }
    session.slide(2);
    expect_results_equal(session.results(),
                         session.run_from_scratch(DpKernel::kCachedSolo),
                         "cycle delta=" + std::to_string(delta));
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
  }
}

// ---------------------------------------------------------------------------
// Session/API validation.
// ---------------------------------------------------------------------------

TEST(SlidingWindow, RejectsUnsupportedConfigurations) {
  const Hierarchy h = make_flat_hierarchy(2);
  const auto make_trace = [&] {
    Trace t;
    t.add_resource(h.path(h.leaves()[0]));
    t.add_resource(h.path(h.leaves()[1]));
    (void)t.states().intern("s");
    t.add_state(0, StateId{0}, 0, seconds(5.0));
    return t;
  };
  {
    SlidingWindowOptions opt;
    opt.aggregation.kernel = DpKernel::kReference;
    EXPECT_THROW(SlidingWindowSession(h, make_trace(),
                                      TimeGrid(0, seconds(10.0), 10), {0.5},
                                      opt),
                 InvalidArgument);
  }
  {
    SlidingWindowOptions opt;
    opt.aggregation.normalize = true;
    EXPECT_THROW(SlidingWindowSession(h, make_trace(),
                                      TimeGrid(0, seconds(10.0), 10), {0.5},
                                      opt),
                 InvalidArgument);
  }
  {
    SlidingWindowOptions opt;
    opt.aggregation.memory_budget_bytes = 1024;  // absurdly small
    EXPECT_THROW(SlidingWindowSession(h, make_trace(),
                                      TimeGrid(0, seconds(10.0), 10), {0.5},
                                      opt),
                 BudgetError);
  }
  // Non-uniform dt: derived windows could drift, rejected up front.
  EXPECT_THROW(
      SlidingWindowSession(h, make_trace(), TimeGrid(0, 1000000007, 10),
                           {0.5}),
      InvalidArgument);
  {
    SlidingWindowOptions opt;
    opt.compression = ChunkCompression::kAuto;
    // Compression is an exclusive-store knob: attaching to a shared store
    // with a session-level policy must be rejected (the SessionManager
    // owns the shared codec policy).
    Trace shared = make_trace();
    shared.seal();
    EXPECT_THROW(SlidingWindowSession(h, shared.store(),
                                      TimeGrid(0, seconds(10.0), 10), {0.5},
                                      opt, StoreOwnership::kShared),
                 InvalidArgument);
  }
  // Unknown states cannot be appended mid-session (|X| is fixed).
  SlidingWindowSession session(h, make_trace(), TimeGrid(0, seconds(10.0), 10),
                               {0.5});
  EXPECT_THROW(session.append(0, StateId{7}, 0, 1), InvalidArgument);
  EXPECT_THROW(session.append(0, "unregistered", 0, 1), InvalidArgument);
  EXPECT_THROW(session.slide(-1), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Chunk compression plumbing: the codec policy is invisible to results.
// ---------------------------------------------------------------------------

TEST(SlidingWindow, CompressionPolicyKeepsEveryAdvanceBitIdentical) {
  // Twin sessions over the same event stream, one with seal-time chunk
  // compression: every advance must agree bit-exactly with the plain twin
  // and with the kReference from-scratch oracle, while the compressed
  // store holds fewer payload bytes.
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  Trace whole = make_synthetic_trace(h, 36.0, 0xC0DEC);
  whole.seal();
  const TimeNs horizon = seconds(22.0);
  const TimeGrid window(0, seconds(20.0), 20);
  const std::vector<double> ps = {0.25, 0.5, 0.75};

  Trace plain_initial;
  EventStream plain_stream =
      EventStream::from_trace(whole, horizon, plain_initial);
  Trace compressed_initial;
  EventStream compressed_stream =
      EventStream::from_trace(whole, horizon, compressed_initial);

  SlidingWindowOptions plain_opt;
  SlidingWindowOptions compressed_opt;
  compressed_opt.compression = ChunkCompression::kAuto;
  SlidingWindowSession plain(h, std::move(plain_initial), window, ps,
                             plain_opt);
  SlidingWindowSession compressed(h, std::move(compressed_initial), window,
                                  ps, compressed_opt);
  EXPECT_EQ(compressed.store().compression(), ChunkCompression::kAuto);
  EXPECT_LT(compressed.store().store_bytes(), plain.store().store_bytes())
      << "the codec policy must shrink the sealed payload";
  expect_results_equal(compressed.results(), plain.results(), "initial");

  TimeNs delivered_to = horizon;
  for (int round = 0; round < 4; ++round) {
    delivered_to += seconds(3.0);
    plain_stream.deliver_until(plain, delivered_to);
    compressed_stream.deliver_until(compressed, delivered_to);
    plain.slide(3);
    compressed.slide(3);
    const std::string ctx = "round " + std::to_string(round);
    expect_results_equal(compressed.results(), plain.results(), ctx);
    expect_results_equal(compressed.results(),
                         compressed.run_from_scratch(DpKernel::kReference),
                         ctx + " vs kReference");
  }
  EXPECT_LT(compressed.store().store_bytes(), plain.store().store_bytes());
}

TEST(SlidingWindow, CompressionComposesWithMemoryBudget) {
  // Budget + compression: the budget counts encoded bytes, spilled
  // records stay compressed, and results stay bit-identical to an
  // unconstrained plain session.
  const Hierarchy h = make_balanced_hierarchy(2, 3);
  Trace whole = make_synthetic_trace(h, 30.0, 0xB5D6E7);
  whole.seal();
  const TimeNs horizon = seconds(18.0);
  const TimeGrid window(0, seconds(16.0), 16);
  const std::vector<double> ps = {0.5};
  const std::string spill = "test_sliding_window_compress.spill";
  std::remove(spill.c_str());

  Trace plain_initial;
  EventStream plain_stream =
      EventStream::from_trace(whole, horizon, plain_initial);
  Trace tight_initial;
  EventStream tight_stream =
      EventStream::from_trace(whole, horizon, tight_initial);

  SlidingWindowSession plain(h, std::move(plain_initial), window, ps, {});
  SlidingWindowOptions opt;
  opt.compression = ChunkCompression::kAuto;
  opt.memory_budget_bytes = plain.store().store_bytes() / 8;
  opt.spill_path = spill;
  SlidingWindowSession tight(h, std::move(tight_initial), window, ps, opt);
  EXPECT_LE(tight.store().resident_chunk_bytes(), opt.memory_budget_bytes);
  expect_results_equal(tight.results(), plain.results(), "initial");

  TimeNs delivered_to = horizon;
  for (int round = 0; round < 3; ++round) {
    delivered_to += seconds(3.0);
    plain_stream.deliver_until(plain, delivered_to);
    tight_stream.deliver_until(tight, delivered_to);
    plain.slide(3);
    tight.slide(3);
    EXPECT_LE(tight.store().resident_chunk_bytes(), opt.memory_budget_bytes)
        << "round " << round;
    expect_results_equal(tight.results(), plain.results(),
                         "round " + std::to_string(round));
  }
  EXPECT_GT(tight.store().spilled_chunk_bytes(), 0u);
  std::remove(spill.c_str());
}

}  // namespace
}  // namespace stagg
