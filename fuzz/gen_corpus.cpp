// Seed-corpus generator: produces one small valid-ish input set per fuzz
// harness from the library's OWN writers, so the fuzzers start from inputs
// that reach deep into the decoders (mutating a valid STGC v2 record finds
// checksum/fence/codec bugs that random bytes never would).
//
//   gen_corpus <corpus-root>
//
// writes <corpus-root>/{text_decoder,stgt_decoder,columns_decoder,
// chunk_file}/seed_*.bin.  Deterministic: re-running overwrites the same
// files byte-identically, so the committed corpus never churns.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "trace/binary_io.hpp"
#include "trace/compression.hpp"
#include "trace/trace.hpp"
#include "trace/trace_store.hpp"

namespace {

namespace fs = std::filesystem;

void write_bytes(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "gen_corpus: cannot write %s\n", path.c_str());
    std::exit(1);
  }
}

void write_text(const fs::path& path, std::uint8_t selector,
                const std::string& text) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(text.size() + 1);
  bytes.push_back(selector);  // harness: bit 0 = format, rest = chunking
  bytes.insert(bytes.end(), text.begin(), text.end());
  write_bytes(path, bytes);
}

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void append_u16(std::vector<std::uint8_t>& out, std::size_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xffU));
  out.push_back(static_cast<std::uint8_t>((v >> 8U) & 0xffU));
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xffU));
  }
}

void append_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((u >> (8 * i)) & 0xffU));
  }
}

/// A small two-resource trace with enough interval variety (gaps, equal
/// keys, long/short durations) to light up every codec family.
stagg::Trace sample_trace(stagg::ChunkCompression compression) {
  stagg::Trace trace;
  trace.store()->set_compression(compression);
  const auto r0 = trace.add_resource("node/cpu0");
  const auto r1 = trace.add_resource("node/cpu1");
  const auto run = trace.states().intern("Running");
  const auto idle = trace.states().intern("Idle");
  stagg::TimeNs t = 0;
  for (int i = 0; i < 40; ++i) {
    const stagg::TimeNs dur = 100 + 37 * (i % 5);
    trace.add_state(r0, (i % 3) != 0 ? run : idle, t, t + dur);
    trace.add_state(r1, (i % 2) != 0 ? idle : run, t + 13, t + 13 + dur);
    t += dur + (i % 7 == 0 ? 50 : 0);  // occasional gap
  }
  trace.seal();
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const fs::path root(argv[1]);
  for (const char* sub :
       {"text_decoder", "stgt_decoder", "columns_decoder", "chunk_file"}) {
    fs::create_directories(root / sub);
  }

  // --- text_decoder: CSV (selector even) and pj_dump (selector odd) -------
  const std::string csv =
      "# stagg-trace-csv\n"
      "# window,0,6000\n"
      "STATE,node/cpu0,Running,0,100\n"
      "STATE,node/cpu0,Idle,100,250\n"
      "STATE,node/cpu1,Running,40,400\n";
  const std::string paje =
      "State, node/cpu0, STATE, 0.000000, 0.000100, 0.000100, 0, Running\n"
      "Variable, node/cpu0, POWER, 0.0, 1.0, 42\n"
      "State, node/cpu1, STATE, 0.000040, 0.000400, 0.000360, 0, Idle\n";
  write_text(root / "text_decoder/seed_csv.bin", 0x10, csv);
  write_text(root / "text_decoder/seed_csv_tiny_chunks.bin", 0x02, csv);
  write_text(root / "text_decoder/seed_paje.bin", 0x11, paje);

  // --- stgt_decoder: header byte triple + valid 24-byte records -----------
  {
    std::vector<std::uint8_t> bytes;
    bytes.push_back(0x03);  // resources = 4
    bytes.push_back(0x03);  // states = 4
    bytes.push_back(0x08);  // feed chunk = 9 (straddles records)
    for (std::uint32_t i = 0; i < 8; ++i) {
      append_u32(bytes, i % 4);                       // resource
      append_u32(bytes, (i + 1) % 4);                 // state
      append_i64(bytes, 100 * i);                     // begin
      append_i64(bytes, 100 * i + 60 + 7 * (i % 3));  // end
    }
    write_bytes(root / "stgt_decoder/seed_records.bin", bytes);
  }

  // --- columns_decoder: harness header + real encoded sections ------------
  {
    std::vector<stagg::TimeNs> begins;
    std::vector<stagg::TimeNs> ends;
    std::vector<stagg::StateId> states;
    for (int i = 0; i < 96; ++i) {
      begins.push_back(100 * i);
      ends.push_back(100 * i + 90);
      states.push_back(static_cast<stagg::StateId>(i % 3));
    }
    const stagg::EncodedColumns enc =
        stagg::encode_columns(begins, ends, states);
    std::vector<std::uint8_t> bytes;
    bytes.push_back(stagg::time_codec_tag(enc.begin_codec));
    bytes.push_back(stagg::time_codec_tag(enc.end_codec));
    bytes.push_back(stagg::state_codec_tag(enc.state_codec));
    append_u16(bytes, static_cast<std::size_t>(enc.count));
    append_u16(bytes, static_cast<std::size_t>(enc.begin_bytes));
    append_u16(bytes, static_cast<std::size_t>(enc.end_bytes));
    bytes.insert(bytes.end(), enc.bytes.begin(), enc.bytes.end());
    write_bytes(root / "columns_decoder/seed_encoded.bin", bytes);
  }

  // --- chunk_file: real STGT + STGC v2 files (raw and compressed) ---------
  {
    stagg::Trace trace = sample_trace(stagg::ChunkCompression::kNone);
    const fs::path tmp = fs::temp_directory_path() / "stagg_gen_corpus.bin";
    stagg::write_binary_trace(trace, tmp.string());
    write_bytes(root / "chunk_file/seed_stgt.bin", read_file(tmp));

    stagg::write_chunk_file(*trace.store(), tmp.string());
    write_bytes(root / "chunk_file/seed_stgc_raw.bin", read_file(tmp));

    stagg::Trace compressed = sample_trace(stagg::ChunkCompression::kAuto);
    stagg::write_chunk_file(*compressed.store(), tmp.string());
    write_bytes(root / "chunk_file/seed_stgc_compressed.bin",
                read_file(tmp));
    fs::remove(tmp);
  }

  std::printf("gen_corpus: seeds written under %s\n", root.c_str());
  return 0;
}
