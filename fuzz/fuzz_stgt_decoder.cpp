// Fuzz harness: StgtRecordDecoder over the fixed 24-byte record grammar.
//
// Contract under test: any byte stream fed in any chunking either decodes
// or throws TraceFormatError naming the absolute file offset — out-of-range
// resource/state ids and end < begin must be rejected, a partial trailing
// record must fail finish(), and a record straddling feeds must decode
// exactly like a contiguous one.  The three leading bytes pick the id
// ranges and the feed-chunk size.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/error.hpp"
#include "trace/stream_decode.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 3) return 0;
  const std::uint64_t resources = 1 + (data[0] & 0x0fU);
  const std::uint64_t states = 1 + (data[1] & 0x0fU);
  const std::size_t chunk = 1 + data[2] % 64;
  const std::span<const std::uint8_t> bytes(data + 3, size - 3);
  stagg::StgtRecordDecoder decoder(resources, states, "fuzz");
  std::uint64_t sum = 0;
  const auto sink = [&sum](const stagg::StgtRecord& rec) {
    sum += static_cast<std::uint64_t>(rec.resource) +
           static_cast<std::uint64_t>(rec.interval.state);
  };
  try {
    for (std::size_t pos = 0; pos < bytes.size(); pos += chunk) {
      decoder.feed(bytes.subspan(pos, std::min(chunk, bytes.size() - pos)),
                   sink);
    }
    decoder.finish();
  } catch (const stagg::TraceFormatError&) {
    // Malformed input rejected loudly — the documented contract.
  }
  return 0;
}
