// Corpus replay driver: a plain main() that runs LLVMFuzzerTestOneInput
// over every file passed on the command line (directories are walked
// recursively, in sorted order for determinism).  This is what makes the
// fuzz contracts first-class tests: every build — GCC, sanitizers, audit —
// links each harness against this driver and replays the committed corpus
// under ctest, no libFuzzer (Clang-only) required.  Nonexistent paths are
// skipped with a note so fresh regression directories need no placeholder
// files.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "replay: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus file or directory>...\n",
                 argv[0]);
    return 2;
  }
  std::vector<fs::path> files;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg(argv[i]);
    if (fs::is_directory(arg)) {
      for (const auto& entry : fs::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(arg)) {
      files.push_back(arg);
    } else {
      std::fprintf(stderr, "replay: skipping missing path %s\n", argv[i]);
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    const auto bytes = read_file(file);
    // A crash or unexpected exception here fails the ctest run with the
    // offending input named — exactly what a regression corpus is for.
    std::fprintf(stderr, "replay: %s (%zu bytes)\n", file.c_str(),
                 bytes.size());
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  }
  std::printf("replayed %zu inputs\n", files.size());
  return 0;
}
