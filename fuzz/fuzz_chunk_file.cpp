// Fuzz harness: the on-disk open paths — STGT traces, STGC chunk files
// (v1 + v2) and, through the same record validator, STGSPL spill records.
//
// Contract under test: opening ANY byte blob as a trace/chunk file either
// succeeds (and then every chunk streams cleanly — open validated it) or
// throws a stagg::Error naming the offending file offset.  Crashes,
// unbounded allocations from attacker-controlled counts, and accepted-but-
// corrupt stores are findings.
//
// The open APIs take paths, so each input round-trips through a scratch
// file (libFuzzer is single-process; the fixed per-PID name cannot race).
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/error.hpp"
#include "trace/binary_io.hpp"
#include "trace/trace_store.hpp"

namespace {

const std::string& scratch_path() {
  static const std::string path = "/tmp/stagg_fuzz_chunk_" +
                                  std::to_string(::getpid()) + ".bin";
  return path;
}

void write_scratch(const std::uint8_t* data, std::size_t size) {
  std::FILE* f = std::fopen(scratch_path().c_str(), "wb");
  if (f == nullptr) __builtin_trap();
  if (size != 0 && std::fwrite(data, 1, size, f) != size) __builtin_trap();
  std::fclose(f);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  write_scratch(data, size);
  try {
    const auto store = stagg::read_binary_trace_store(scratch_path(), 256);
    // Open validated every record; streaming the chunks back (the exact
    // reader path sessions use) must therefore never throw.
    std::vector<stagg::StateInterval> row;
    for (std::size_t r = 0; r < store->resource_count(); ++r) {
      store->materialize(static_cast<stagg::ResourceId>(r), row);
    }
    store->audit();
  } catch (const stagg::Error&) {
    // Truncation/corruption rejected loudly — the documented contract.
  }
  return 0;
}
