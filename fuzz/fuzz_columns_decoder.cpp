// Fuzz harness: ColumnsDecoder over adversarial encoded column sections.
//
// Contract under test: whatever the codec tags, declared count and section
// bytes, streaming decode either yields `count` intervals and verifies the
// sections drained exactly, or throws TraceFormatError — truncated varints,
// dictionary/run inconsistencies, out-of-range dictionary ids and trailing
// garbage are all loud failures, never crashes or silent truncation.
//
// Input layout: 9 header bytes — begin codec | end codec | state codec |
// u16 count | u16 begin-section length | u16 end-section length — then the
// payload the section lengths carve up (clamped to what is present; the
// state section takes the remainder).
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/error.hpp"
#include "trace/compression.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 9) return 0;
  const auto u16 = [data](std::size_t at) {
    return static_cast<std::size_t>(data[at]) |
           (static_cast<std::size_t>(data[at + 1]) << 8U);
  };
  stagg::ColumnsCoding coding;
  coding.begin_codec = static_cast<stagg::TimeCodec>(data[0]);
  coding.end_codec = static_cast<stagg::TimeCodec>(data[1]);
  coding.state_codec = static_cast<stagg::StateCodec>(data[2]);
  coding.count = u16(3);
  const std::span<const std::uint8_t> payload(data + 9, size - 9);
  const std::size_t begin_len = std::min(u16(5), payload.size());
  const std::size_t end_len = std::min(u16(7), payload.size() - begin_len);
  coding.begin_section = payload.subspan(0, begin_len);
  coding.end_section = payload.subspan(begin_len, end_len);
  coding.state_section = payload.subspan(begin_len + end_len);
  try {
    stagg::ColumnsDecoder decoder(coding);
    stagg::StateInterval out;
    std::uint64_t produced = 0;
    while (decoder.next(out)) ++produced;
    // A clean decode must deliver exactly the declared count.
    if (produced != coding.count) __builtin_trap();
  } catch (const stagg::TraceFormatError&) {
    // Malformed sections rejected loudly — the documented contract.
  }
  return 0;
}
