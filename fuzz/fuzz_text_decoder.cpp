// Fuzz harness: TextTraceDecoder over both line grammars (CSV + pj_dump).
//
// Contract under test: ANY byte stream either decodes cleanly or throws
// TraceFormatError naming the offending line — never a crash, hang, or a
// silent misparse that corrupts downstream state.  The first input byte
// selects the grammar and a feed-chunk size, so the fuzzer also explores
// the resumable carry path (records straddling feed boundaries must decode
// exactly like whole-line feeds).
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/error.hpp"
#include "trace/stream_decode.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::uint8_t sel = data[0];
  const auto format = (sel & 1U) != 0 ? stagg::TextTraceFormat::kPaje
                                      : stagg::TextTraceFormat::kCsv;
  const std::size_t chunk = 1 + (sel >> 1U);
  const std::string_view text(reinterpret_cast<const char*>(data + 1),
                              size - 1);
  stagg::TextTraceDecoder decoder(format, "fuzz");
  std::uint64_t records = 0;
  const auto sink = [&records](const stagg::DecodedTextRecord& rec) {
    // Touch every field so a decoder handing out dangling views faults
    // under ASan instead of passing silently.
    records += rec.resource.size() + rec.state.size() +
               static_cast<std::uint64_t>(rec.end >= rec.begin);
  };
  try {
    for (std::size_t pos = 0; pos < text.size(); pos += chunk) {
      decoder.feed(text.substr(pos, chunk), sink);
    }
    decoder.finish(sink);
  } catch (const stagg::TraceFormatError&) {
    // Malformed input rejected loudly — the documented contract.
  }
  return 0;
}
