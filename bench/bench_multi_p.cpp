// Bench: measure cache + lane-batched wavefront DP kernel on multi-p runs.
//
// The intended workflow (Ocelotl-style exploration, find_significant_levels)
// evaluates *many* trade-off parameters over the same trace.  The original
// kernel recomputed every cell's O(|X|) log2-heavy measures on each run(p);
// the cached kernel pays that measure pass once — O(|S|·|T|²·|X|) — after
// which each probe is a pure multiply-add DP; the lane-batched run_many
// additionally pushes waves of up to 8 probes through a *single* DP sweep,
// paying the pass over the measure cache and the DP matrices once per wave
// instead of once per probe.  This bench measures:
//   - a single run(p) with each kernel (cold cache vs per-cell recompute);
//   - a 32-probe p-sweep three ways: repeated seed-style run(p) on the
//     reference kernel, a cached-kernel run(p) loop (the PR 1 kernel —
//     one solo DP sweep per probe, per-probe trajectory), and one
//     lane-batched run_many call (the headline comparison);
//   - the cache-build vs per-p kernel split of the batched sweep and the
//     additional lane speedup over the solo cached kernel;
// and asserts all strategies produce bit-identical pIC and identical
// partitions on every probe.  With --json (or in --smoke CI mode) it emits
// a BENCH_multi_p.json trajectory file: one record per probe with the
// cumulative wall time of both per-probe strategies.
#include <algorithm>
#include <cfloat>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/bench_info.hpp"
#include "common/cli.hpp"
#include "common/stopwatch.hpp"
#include "core/aggregator.hpp"
#include "workload/fixtures.hpp"

namespace stagg {
namespace {

struct SweepTiming {
  std::vector<double> cumulative_s;  ///< after each probe
  double total_s = 0.0;
};

SweepTiming sweep(SpatiotemporalAggregator& agg, std::span<const double> ps,
                  std::vector<AggregationResult>& out) {
  SweepTiming t;
  t.cumulative_s.reserve(ps.size());
  Stopwatch watch;
  out.reserve(ps.size());
  for (const double p : ps) {
    out.push_back(agg.run(p));
    t.cumulative_s.push_back(watch.seconds());
  }
  t.total_s = watch.seconds();
  return t;
}

int run(int argc, const char* const* argv) {
  Cli cli("bench_multi_p",
          "single-run and 32-probe p-sweep throughput: cached wavefront "
          "kernel vs seed-style per-cell recomputation");
  cli.option("levels", "3", "hierarchy depth of the random model");
  cli.option("fanout", "4", "children per node");
  cli.option("slices", "48", "number of time slices |T|");
  cli.option("states", "6", "number of states |X|");
  cli.option("probes", "32", "number of p values in the sweep");
  cli.option("lanes", "4", "lane width of the batched sweep (1-8)");
  cli.option("reps", "3", "repetitions per strategy; fastest is reported");
  cli.option("json", "", "write a JSON trajectory file to this path");
  cli.flag("smoke", "small model + BENCH_multi_p.json (CI mode)");
  if (!cli.parse(argc, argv)) return 1;

  const bool smoke = cli.get_flag("smoke");
  RandomModelOptions shape{
      .levels = static_cast<std::int32_t>(cli.get_int("levels")),
      .fanout = static_cast<std::int32_t>(cli.get_int("fanout")),
      .slices = static_cast<std::int32_t>(cli.get_int("slices")),
      .states = static_cast<std::int32_t>(cli.get_int("states")),
      .block_slices = 3,
      .block_leaves = 2,
      .seed = 42,
  };
  if (smoke) {
    shape.levels = 2;
    shape.fanout = 3;
    shape.slices = 24;
    shape.states = 4;
  }
  std::string json_path = cli.get("json");
  if (smoke && json_path.empty()) json_path = "BENCH_multi_p.json";

  const std::int64_t probes_arg = cli.get_int("probes");
  if (probes_arg < 2) {
    std::fprintf(stderr, "error: --probes must be >= 2, got %lld\n",
                 static_cast<long long>(probes_arg));
    return 1;
  }
  const auto n_probes = static_cast<std::size_t>(probes_arg);
  std::vector<double> ps;
  ps.reserve(n_probes);
  for (std::size_t k = 0; k < n_probes; ++k) {
    ps.push_back(static_cast<double>(k) /
                 static_cast<double>(n_probes - 1));
  }

  std::printf("=== Multi-p sweep: measure cache + wavefront kernel ===\n\n");
  const OwnedModel om = make_random_model(shape);
  std::printf("model: |S| = %zu leaves (%zu nodes), |T| = %d, |X| = %d, "
              "%zu probes\n\n",
              om.hierarchy->leaf_count(), om.hierarchy->node_count(),
              shape.slices, shape.states, n_probes);

  // Every strategy runs `reps` times on a fresh aggregator (so each rep
  // pays its own one-time cache build, like a real exploration session)
  // and the fastest rep is reported — single-shot wall times on a busy
  // host swing by 10-20%.
  const auto reps = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("reps")));

  // Before: the original formulation — every run(p) recomputes each cell's
  // measures from the cube and frees its DP buffers afterwards.
  std::vector<AggregationResult> ref_results;
  SweepTiming ref_t;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    AggregationOptions ref_opt;
    ref_opt.kernel = DpKernel::kReference;
    SpatiotemporalAggregator reference(om.model, ref_opt);
    std::vector<AggregationResult> results;
    const SweepTiming t = sweep(reference, ps, results);
    if (rep == 0 || t.total_s < ref_t.total_s) {
      ref_t = t;
      ref_results = std::move(results);
    }
  }

  // After (a): the PR 1 cached kernel (DpKernel::kCachedSolo — one solo DP
  // sweep per probe, per-cut epsilon evaluation) driven probe-by-probe
  // through run(p); the first probe pays the one-time measure-cache
  // build.  This sweep provides the per-probe trajectory and the baseline
  // the lane batching is measured against.
  std::vector<AggregationResult> warm_results;
  SweepTiming cached_t;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    AggregationOptions solo_opt;
    solo_opt.kernel = DpKernel::kCachedSolo;
    SpatiotemporalAggregator cached(om.model, solo_opt);
    std::vector<AggregationResult> results;
    const SweepTiming t = sweep(cached, ps, results);
    if (rep == 0 || t.total_s < cached_t.total_s) {
      cached_t = t;
      warm_results = std::move(results);
    }
  }

  // After (b): the lane-batched API — one run_many call for the whole
  // sweep (what find_significant_levels issues per wave), waves of
  // `lanes` probes sharing each DP sweep.
  const auto lane_width = static_cast<std::size_t>(
      std::clamp<std::int64_t>(cli.get_int("lanes"), 1,
                               static_cast<std::int64_t>(kMaxDpLanes)));
  std::vector<AggregationResult> batch_results;
  double batched_s = 0.0;
  double cache_build_s = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    AggregationOptions lane_opt;
    lane_opt.max_lanes = lane_width;
    SpatiotemporalAggregator batched(om.model, lane_opt);
    Stopwatch batch_watch;
    std::vector<AggregationResult> results = batched.run_many(ps);
    const double total_s = batch_watch.seconds();
    if (rep == 0 || total_s < batched_s) {
      batched_s = total_s;
      cache_build_s = batched.cache_build_seconds();
      batch_results = std::move(results);
    }
  }

  // Equivalence on every probe (bit-identical pIC, identical partitions)
  // across all three strategies.
  bool equivalent = true;
  for (std::size_t k = 0; k < ps.size(); ++k) {
    equivalent = equivalent &&
                 ref_results[k].optimal_pic == warm_results[k].optimal_pic &&
                 ref_results[k].partition.signature() ==
                     warm_results[k].partition.signature() &&
                 ref_results[k].optimal_pic == batch_results[k].optimal_pic &&
                 ref_results[k].partition.signature() ==
                     batch_results[k].partition.signature();
  }

  const double single_ref = ref_t.cumulative_s.front();
  const double single_cached = cached_t.cumulative_s.front();
  const double per_p_kernel_s =
      (batched_s - cache_build_s) / static_cast<double>(n_probes);
  const double speedup = ref_t.total_s / std::max(batched_s, 1e-12);
  // Additional win of the lane batching alone: the PR 1 solo cached
  // kernel's sweep vs the lane-batched sweep — both pay the same one-time
  // cache build, so this isolates the lane-batched scan's effect.
  const double lane_speedup = cached_t.total_s / std::max(batched_s, 1e-12);

  std::printf("single run(p=0)     : reference %s | cached (incl. cache "
              "build) %s\n",
              format_seconds(single_ref).c_str(),
              format_seconds(single_cached).c_str());
  std::printf("%zu-probe sweep     : reference %s | PR1 solo cached loop %s | "
              "run_many (W=%zu) %s  =>  %.2fx vs reference\n",
              n_probes, format_seconds(ref_t.total_s).c_str(),
              format_seconds(cached_t.total_s).c_str(), lane_width,
              format_seconds(batched_s).c_str(), speedup);
  std::printf("lane batching       : %.2fx additional over the PR 1 solo "
              "cached kernel (%zu probes per DP sweep)\n",
              lane_speedup, lane_width);
  std::printf("run_many split      : cache build %s (once) + %s per probe\n",
              format_seconds(cache_build_s).c_str(),
              format_seconds(per_p_kernel_s).c_str());
  std::printf("equivalence         : %s\n\n",
              equivalent ? "bit-identical pIC + identical partitions"
                         : "MISMATCH (BUG)");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"multi_p\",\n";
    out << bench_info_json();
    out << "  \"model\": {\"leaves\": " << om.hierarchy->leaf_count()
        << ", \"nodes\": " << om.hierarchy->node_count()
        << ", \"slices\": " << shape.slices
        << ", \"states\": " << shape.states << "},\n";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", speedup);
    char lane_buf[64];
    std::snprintf(lane_buf, sizeof lane_buf, "%.17g", lane_speedup);
    out << "  \"probes\": " << n_probes << ",\n";
    out << "  \"lane_width\": " << lane_width << ",\n";
    out << "  \"reps\": " << reps << ",\n";
    out << "  \"reference_sweep_s\": " << ref_t.total_s << ",\n";
    out << "  \"cached_sweep_s\": " << cached_t.total_s << ",\n";
    out << "  \"run_many_sweep_s\": " << batched_s << ",\n";
    out << "  \"cache_build_s\": " << cache_build_s << ",\n";
    out << "  \"per_p_kernel_s\": " << per_p_kernel_s << ",\n";
    out << "  \"speedup\": " << buf << ",\n";
    out << "  \"lane_speedup\": " << lane_buf << ",\n";
    out << "  \"equivalent\": " << (equivalent ? "true" : "false") << ",\n";
    out << "  \"trajectory\": [\n";
    for (std::size_t k = 0; k < ps.size(); ++k) {
      out << "    {\"p\": " << ps[k]
          << ", \"reference_cum_s\": " << ref_t.cumulative_s[k]
          << ", \"cached_cum_s\": " << cached_t.cumulative_s[k] << "}"
          << (k + 1 < ps.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("trajectory written to %s\n", json_path.c_str());
  }

  return equivalent ? 0 : 2;
}

}  // namespace
}  // namespace stagg

int main(int argc, char** argv) { return stagg::run(argc, argv); }
