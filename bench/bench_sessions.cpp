// Bench: N concurrent sliding-window sessions over ONE shared immutable
// TraceStore (SessionManager) vs N sessions each owning a private copy of
// the trace.
//
// The multi-view workflow of the paper — one analyst, several windows,
// slice counts and trade-off probes over the same execution — used to pay
// one full trace copy per view.  The shared store pays the event bytes
// once: sessions read sealed chunks through zero-copy TraceViews, the
// manager ingests/seals/evicts centrally, and advances fan out over the
// shared pool (help-while-waiting keeps the sessions' inner DP waves
// composable with the outer per-session parallelism).
//
// Protocol: a synthetic MPI-ish stream drives N sessions with staggered
// windows and probe sets.  Each measured round delivers the next event
// burst and advances everyone by one slice — once through the manager
// (shared store), once through N private sessions fed the same events —
// timing both, asserting bit-identical results per session per round, and
// comparing retained trace bytes.  The acceptance bar: shared trace bytes
// <= 1.2/N of the private total for N >= 4.  --smoke emits
// BENCH_sessions.json for CI trend tracking.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bench_info.hpp"
#include "common/cli.hpp"
#include "common/stopwatch.hpp"
#include "core/session_manager.hpp"
#include "hierarchy/hierarchy.hpp"
#include "workload/stream_split.hpp"
#include "workload/synthetic.hpp"

namespace stagg {
namespace {

bool results_equal(const std::vector<AggregationResult>& a,
                   const std::vector<AggregationResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k].optimal_pic != b[k].optimal_pic ||
        a[k].partition.signature() != b[k].partition.signature() ||
        a[k].measures.gain != b[k].measures.gain ||
        a[k].measures.loss != b[k].measures.loss) {
      return false;
    }
  }
  return true;
}

int run(int argc, const char* const* argv) {
  Cli cli("bench_sessions",
          "N concurrent sliding-window sessions sharing one immutable "
          "TraceStore vs N private trace copies: memory and aggregate "
          "advance throughput");
  cli.option("levels", "3", "hierarchy depth of the balanced platform");
  cli.option("fanout", "4", "children per node (leaves = fanout^levels)");
  cli.option("sessions", "6", "number of concurrent sessions N");
  cli.option("slices", "64", "base window slice count |T|");
  cli.option("states", "5", "number of states |X|");
  cli.option("lanes", "4", "lane width of the DP waves (1-8)");
  cli.option("rounds", "", "measured advance rounds (default 12, smoke 8)");
  cli.option("json", "", "write a JSON summary to this path");
  cli.flag("smoke", "reduced model + BENCH_sessions.json (CI mode)");
  if (!cli.parse(argc, argv)) return 1;

  const bool smoke = cli.get_flag("smoke");
  std::int32_t levels = static_cast<std::int32_t>(cli.get_int("levels"));
  std::int32_t fanout = static_cast<std::int32_t>(cli.get_int("fanout"));
  std::int32_t slices = static_cast<std::int32_t>(cli.get_int("slices"));
  std::int32_t states = static_cast<std::int32_t>(cli.get_int("states"));
  auto n_sessions =
      static_cast<std::size_t>(std::max<std::int64_t>(
          2, cli.get_int("sessions")));
  if (smoke) {
    levels = 2;
    fanout = 4;
    slices = 48;
    states = 4;
    n_sessions = std::max<std::size_t>(n_sessions, 4);
  }
  // An explicit --rounds wins even under --smoke (the sanitize CI job
  // shortens the smoke run with it).
  const int rounds =
      cli.get("rounds").empty()
          ? (smoke ? 8 : 12)
          : static_cast<int>(std::max<std::int64_t>(2, cli.get_int("rounds")));
  std::string json_path = cli.get("json");
  if (smoke && json_path.empty()) json_path = "BENCH_sessions.json";

  const Hierarchy h = make_balanced_hierarchy(levels, fanout);
  const TimeNs dt = seconds(1.0);
  const double span_s = to_seconds(dt * (slices + rounds + 8));

  const auto programmer = [&](LeafId leaf) {
    ResourceProgram p;
    StatePattern pattern;
    for (std::int32_t x = 0; x < states; ++x) {
      const double mean = 0.02 + 0.015 * ((leaf + x) % 4);
      pattern.elements.push_back({"state" + std::to_string(x), mean, 0.35});
    }
    p.phases.push_back({0.0, span_s, std::move(pattern)});
    return p;
  };
  Trace whole = generate_trace(h, programmer, 0x5E5510);
  whole.seal();

  // Session specs: staggered windows (same 1 s slice width so one stream
  // paces everyone), varied |T| and probe sets.
  struct Spec {
    TimeGrid window;
    std::vector<double> ps;
  };
  std::vector<Spec> specs;
  TimeNs max_end = 0;
  for (std::size_t i = 0; i < n_sessions; ++i) {
    const auto t = static_cast<std::int32_t>(
        std::max<std::int32_t>(8, slices - 8 * static_cast<std::int32_t>(
                                               i % 3)));
    const TimeNs begin = dt * static_cast<TimeNs>(i % 4);
    const TimeGrid window(begin, begin + dt * t, t);
    std::vector<double> ps;
    for (std::size_t k = 0; k <= i % 3 + 1; ++k) {
      ps.push_back(static_cast<double>(k + i) /
                   static_cast<double>(i % 3 + n_sessions));
    }
    specs.push_back({window, std::move(ps)});
    max_end = std::max(max_end, window.end());
  }

  SlidingWindowOptions opt;
  opt.aggregation.max_lanes = static_cast<std::size_t>(
      std::clamp<std::int64_t>(cli.get_int("lanes"), 1,
                               static_cast<std::int64_t>(kMaxDpLanes)));

  std::printf("=== Shared-store multi-session aggregation ===\n\n");
  std::printf(
      "model: |S| = %zu leaves, base |T| = %d, |X| = %d, N = %zu sessions, "
      "W = %zu, %d rounds\n\n",
      h.leaf_count(), slices, states, n_sessions, opt.aggregation.max_lanes,
      rounds);

  // Split the trace at the initial horizon; future events feed both
  // sides.  Private sessions each get a fresh split so their stores share
  // no chunks (honest per-copy byte accounting).
  const TimeNs horizon = max_end + dt;
  const auto make_initial = [&]() -> Trace {
    return split_trace_at(whole, horizon).initial;
  };
  const std::vector<std::pair<ResourceId, StateInterval>> future =
      split_trace_at(whole, horizon).future;

  // ---- Shared side: one store, one manager. -------------------------------
  Stopwatch shared_setup;
  Trace shared_initial = make_initial();
  shared_initial.seal();
  SessionManager manager(h, shared_initial.store());
  for (const Spec& spec : specs) {
    SessionSpec s;
    s.window = spec.window;
    s.ps = spec.ps;
    s.options = opt;
    manager.add_session(s);
  }
  const double shared_setup_s = shared_setup.seconds();

  // ---- Private side: N exclusive sessions, each with its own copy of the
  // events (fresh stores: no chunk sharing).
  Stopwatch private_setup;
  std::vector<std::unique_ptr<SlidingWindowSession>> private_sessions;
  for (const Spec& spec : specs) {
    private_sessions.push_back(std::make_unique<SlidingWindowSession>(
        h, make_initial(), spec.window, spec.ps, opt));
  }
  const double private_setup_s = private_setup.seconds();

  // ---- Lockstep rounds. ---------------------------------------------------
  std::size_t next_shared = 0;
  std::size_t next_private = 0;
  double shared_s = 0.0;
  double private_s = 0.0;
  std::size_t shared_bytes_peak = 0;
  std::size_t private_bytes_peak = 0;
  bool equivalent = true;
  TimeNs frontier = horizon;
  for (int round = 0; round < rounds; ++round) {
    frontier += dt;
    {
      Stopwatch w;
      for (; next_shared < future.size() &&
             future[next_shared].second.begin < frontier;
           ++next_shared) {
        const auto& [r, s] = future[next_shared];
        manager.append(r, s.state, s.begin, s.end);
      }
      manager.slide_all(1);
      shared_s += w.seconds();
    }
    {
      Stopwatch w;
      for (; next_private < future.size() &&
             future[next_private].second.begin < frontier;
           ++next_private) {
        const auto& [r, s] = future[next_private];
        for (auto& session : private_sessions) {
          session->append(r, s.state, s.begin, s.end);
        }
      }
      for (auto& session : private_sessions) session->slide(1);
      private_s += w.seconds();
    }
    std::size_t private_bytes = 0;
    for (const auto& session : private_sessions) {
      private_bytes += session->store().store_bytes();
    }
    shared_bytes_peak = std::max(shared_bytes_peak, manager.store_bytes());
    private_bytes_peak = std::max(private_bytes_peak, private_bytes);
    for (std::size_t i = 0; i < n_sessions; ++i) {
      equivalent = equivalent && results_equal(manager.session(i).results(),
                                               private_sessions[i]->results());
    }
  }

  const double total_advances =
      static_cast<double>(n_sessions) * static_cast<double>(rounds);
  const double shared_rate = total_advances / std::max(shared_s, 1e-12);
  const double private_rate = total_advances / std::max(private_s, 1e-12);
  const double bytes_ratio =
      static_cast<double>(shared_bytes_peak) /
      static_cast<double>(std::max<std::size_t>(1, private_bytes_peak));
  const double share_bar = 1.2 / static_cast<double>(n_sessions);
  const bool meets_share_bar = bytes_ratio <= share_bar;

  std::printf("setup               : shared %s | private %s\n",
              format_seconds(shared_setup_s).c_str(),
              format_seconds(private_setup_s).c_str());
  std::printf("trace bytes (peak)  : shared %.2f MiB | private %.2f MiB  "
              "=>  ratio %.3f (bar <= %.3f for N = %zu)  [%s]\n",
              shared_bytes_peak / 1048576.0, private_bytes_peak / 1048576.0,
              bytes_ratio, share_bar, n_sessions,
              meets_share_bar ? "ok" : "MISS");
  std::printf("advance throughput  : shared %.1f slides/s | private %.1f "
              "slides/s  =>  %.2fx\n",
              shared_rate, private_rate,
              shared_rate / std::max(private_rate, 1e-12));
  std::printf("equivalence         : %s\n\n",
              equivalent ? "bit-identical on every round"
                         : "MISMATCH (BUG)");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    char buf[64];
    out << "{\n  \"bench\": \"sessions\",\n";
    out << bench_info_json();
    out << "  \"model\": {\"leaves\": " << h.leaf_count()
        << ", \"base_slices\": " << slices << ", \"states\": " << states
        << "},\n";
    out << "  \"sessions\": " << n_sessions << ",\n";
    out << "  \"lane_width\": " << opt.aggregation.max_lanes << ",\n";
    out << "  \"rounds\": " << rounds << ",\n";
    out << "  \"shared_trace_bytes\": " << shared_bytes_peak << ",\n";
    out << "  \"private_trace_bytes_total\": " << private_bytes_peak
        << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", bytes_ratio);
    out << "  \"bytes_ratio\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", share_bar);
    out << "  \"bytes_ratio_bar\": " << buf << ",\n";
    out << "  \"meets_share_bar\": " << (meets_share_bar ? "true" : "false")
        << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", shared_rate);
    out << "  \"shared_slides_per_s\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", private_rate);
    out << "  \"private_slides_per_s\": " << buf << ",\n";
    out << "  \"equivalent\": " << (equivalent ? "true" : "false") << "\n";
    out << "}\n";
    std::printf("summary written to %s\n", json_path.c_str());
  }

  return equivalent && meets_share_bar ? 0 : 2;
}

}  // namespace
}  // namespace stagg

int main(int argc, char** argv) { return stagg::run(argc, argv); }
