// Ablation: the complexity claims of §III-E — O(|S| |T|^3) time and
// O(|S| |T|^2) space for the spatiotemporal DP, O(|T|^2) for the temporal
// DP and O(|S|) for the spatial sweep.
//
// google-benchmark sweeps |S| and |T| on random block-structured models;
// the final reporters fit empirical log-log slopes (expected ~1 in |S|,
// ~3 in |T| for the full algorithm; the cube build is ~linear in both).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/math.hpp"
#include "core/aggregator.hpp"
#include "core/measure_cache.hpp"
#include "core/spatial.hpp"
#include "core/temporal.hpp"
#include "workload/fixtures.hpp"

namespace stagg {
namespace {

OwnedModel model_for(std::int32_t leaves_pow2, std::int32_t slices) {
  return make_random_model({.levels = leaves_pow2,
                            .fanout = 2,
                            .slices = slices,
                            .states = 2,
                            .block_slices = 3,
                            .block_leaves = 2,
                            .seed = 1234});
}

// Warm cached kernel: the measure cache is built on the first run, so the
// steady-state iterations measure the per-p multiply-add DP — the
// O(|S|·|T|³) term paid per probe of a sweep.  The one-time cache build
// (O(|S|·|T|²·|X|)) is reported as a counter for the split.
void BM_SpatiotemporalDP_vsT(benchmark::State& state) {
  const auto slices = static_cast<std::int32_t>(state.range(0));
  const OwnedModel om = model_for(5, slices);  // |S| = 32
  AggregationOptions opt;
  opt.parallel = false;  // measure the algorithm, not the pool
  SpatiotemporalAggregator agg(om.model, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg.run(0.4));
  }
  state.SetComplexityN(slices);
  state.counters["bytes"] = static_cast<double>(agg.working_set_bytes());
  state.counters["cache_build_s"] = agg.cache_build_seconds();
}
BENCHMARK(BM_SpatiotemporalDP_vsT)
    ->RangeMultiplier(2)
    ->Range(8, 96)
    ->Complexity(benchmark::oNCubed);

// The original per-cell-recomputation kernel at the same sizes — the
// "before" of the measure-cache split (compare against the warm cached
// iterations of BM_SpatiotemporalDP_vsT).
void BM_ReferenceDP_vsT(benchmark::State& state) {
  const auto slices = static_cast<std::int32_t>(state.range(0));
  const OwnedModel om = model_for(5, slices);  // |S| = 32
  AggregationOptions opt;
  opt.parallel = false;
  opt.kernel = DpKernel::kReference;
  SpatiotemporalAggregator agg(om.model, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg.run(0.4));
  }
  state.SetComplexityN(slices);
}
BENCHMARK(BM_ReferenceDP_vsT)
    ->RangeMultiplier(2)
    ->Range(8, 96)
    ->Complexity(benchmark::oNCubed);

// The one-time p-independent measure pass in isolation: O(|S|·|T|²·|X|),
// i.e. quadratic in |T|.
void BM_MeasureCacheBuild_vsT(benchmark::State& state) {
  const auto slices = static_cast<std::int32_t>(state.range(0));
  const OwnedModel om = model_for(5, slices);
  const DataCube cube(om.model);
  for (auto _ : state) {
    MeasureCache cache;
    cache.build(cube, /*parallel=*/false);
    benchmark::DoNotOptimize(cache.memory_bytes());
  }
  state.SetComplexityN(slices);
  state.counters["bytes"] = static_cast<double>(
      MeasureCache::estimate_bytes(om.hierarchy->node_count(), slices));
}
BENCHMARK(BM_MeasureCacheBuild_vsT)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity(benchmark::oNSquared);

void BM_SpatiotemporalDP_vsS(benchmark::State& state) {
  const auto levels = static_cast<std::int32_t>(state.range(0));
  const OwnedModel om = model_for(levels, 24);  // |S| = 2^levels
  AggregationOptions opt;
  opt.parallel = false;
  SpatiotemporalAggregator agg(om.model, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg.run(0.4));
  }
  state.SetComplexityN(1 << levels);
}
BENCHMARK(BM_SpatiotemporalDP_vsS)
    ->DenseRange(3, 9, 1)
    ->Complexity(benchmark::oN);

void BM_CubeBuild(benchmark::State& state) {
  const auto slices = static_cast<std::int32_t>(state.range(0));
  const OwnedModel om = model_for(6, slices);
  for (auto _ : state) {
    DataCube cube(om.model);
    benchmark::DoNotOptimize(cube.memory_bytes());
  }
  state.SetComplexityN(slices);
}
BENCHMARK(BM_CubeBuild)->RangeMultiplier(2)->Range(8, 128)->Complexity(
    benchmark::oN);

void BM_TemporalDP(benchmark::State& state) {
  const auto slices = static_cast<std::int32_t>(state.range(0));
  const OwnedModel om = model_for(4, slices);
  const DataCube cube(om.model);
  const auto seq = SequenceAggregator::spatially_aggregated(cube);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq.run(0.4));
  }
  state.SetComplexityN(slices);
}
BENCHMARK(BM_TemporalDP)->RangeMultiplier(2)->Range(16, 512)->Complexity(
    benchmark::oNSquared);

void BM_SpatialSweep(benchmark::State& state) {
  const auto levels = static_cast<std::int32_t>(state.range(0));
  const OwnedModel om = model_for(levels, 8);
  const DataCube cube(om.model);
  const auto agg = HierarchyAggregator::temporally_aggregated(cube);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg.run(0.4));
  }
  state.SetComplexityN(1 << levels);
}
BENCHMARK(BM_SpatialSweep)->DenseRange(4, 12, 1)->Complexity(benchmark::oN);

// Memory shape: the DP working set must be quadratic in |T|, linear in the
// node count (O(|S| |T|^2), §III-E).
void BM_MemoryEstimate(benchmark::State& state) {
  const auto slices = static_cast<std::int32_t>(state.range(0));
  std::vector<double> xs, ys;
  for (std::int32_t t = 8; t <= slices; t *= 2) {
    xs.push_back(t);
    ys.push_back(static_cast<double>(
        SpatiotemporalAggregator::estimate_bytes(1000, t)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(loglog_slope(xs, ys));
  }
  state.counters["T_exponent"] = loglog_slope(xs, ys);  // expected ~2
}
BENCHMARK(BM_MemoryEstimate)->Arg(256);

}  // namespace
}  // namespace stagg
