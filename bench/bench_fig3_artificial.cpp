// Reproduces Figure 3: aggregation and visualization of the artificial
// trace (12 resources, 20 microscopic time periods, 2 states).
//
//   3.a  the microscopic model (240 areas);
//   3.b  a non-optimal uniform aggregation (3 clusters x 4 periods);
//   3.c  the optimal spatial x temporal Cartesian product;
//   3.d  an optimal spatiotemporal aggregation (paper: 56 areas);
//   3.e  a higher-level spatiotemporal aggregation (paper: 15 areas);
//   3.f  visual aggregation of 3.d (paper: 21 data + 7 visual aggregates).
//
// The bench prints, for each sub-figure, the area count and the measured
// gain/loss/pIC, plus the significant-p levels whose counts bracket the
// paper's 56 and 15.
#include <cstdio>

#include "common/table.hpp"
#include "core/aggregator.hpp"
#include "core/baselines.hpp"
#include "core/dichotomy.hpp"
#include "viz/ascii_view.hpp"
#include "viz/spatiotemporal_view.hpp"
#include "workload/fixtures.hpp"

namespace stagg {
namespace {

void add_row(TextTable& t, const char* fig, const char* what,
             const AggregationResult& r) {
  char gain[32], loss[32], picv[32];
  std::snprintf(gain, sizeof gain, "%.2f", r.measures.gain);
  std::snprintf(loss, sizeof loss, "%.2f", r.measures.loss);
  std::snprintf(picv, sizeof picv, "%.2f",
                pic(r.p, r.measures.gain, r.measures.loss));
  t.add_row({fig, what, std::to_string(r.partition.size()), gain, loss,
             picv});
}

int run() {
  std::printf("=== Figure 3: the artificial 12x20 trace ===\n\n");
  OwnedModel om = make_figure3_model();
  om.model.validate();
  SpatiotemporalAggregator agg(om.model);
  const DataCube& cube = agg.cube();
  const double p_d = 0.35;  // fine level (Fig. 3.d)
  const double p_e = 0.75;  // coarse level (Fig. 3.e)

  TextTable table({"fig", "partition", "areas", "gain", "loss", "pIC(p)"});

  // 3.a microscopic.
  const auto micro = agg.evaluate(make_microscopic_partition(*om.hierarchy, 20),
                                  p_d);
  add_row(table, "3.a", "microscopic model", micro);

  // 3.b uniform 3 clusters x 4 periods (paper: "non-optimal").
  const auto uniform =
      agg.evaluate(make_uniform_partition(*om.hierarchy, 20, 1, 4), p_d);
  add_row(table, "3.b", "uniform 3x4 grid", uniform);

  // 3.c Cartesian product of the unidimensional optima.
  const auto cart = cartesian_aggregation(cube, p_d);
  const auto cart_eval = agg.evaluate(cart.partition, p_d);
  add_row(table, "3.c", "spatial x temporal product", cart_eval);

  // 3.d optimal spatiotemporal at p_d.
  const AggregationResult fine = agg.run(p_d);
  add_row(table, "3.d", "spatiotemporal optimum (p_d)", fine);

  // 3.e optimal spatiotemporal at p_e > p_d.
  const AggregationResult coarse = agg.run(p_e);
  add_row(table, "3.e", "spatiotemporal optimum (p_e)", coarse);

  std::printf("%s\n", table.str().c_str());
  std::printf("paper counts: 3.d = 56 areas, 3.e = 15 areas (its hand-drawn "
              "example);\nour trace realizes the same *patterns* with its own "
              "optimal counts.\n\n");

  // 3.f visual aggregation of 3.d under a tight pixel budget.
  ViewOptions view;
  view.height_px = 36.0;   // 12 rows -> 3 px rows
  view.min_row_px = 7.0;   // leaves are sub-threshold, clusters visible
  view.draw_axis = false;
  const ViewLayout layout = layout_overview(fine, cube, view);
  std::printf("Fig 3.f: visual aggregation of 3.d (paper: 21 data + 7 "
              "visual aggregates)\n"
              "  data aggregates drawn : %zu\n"
              "  visual aggregates     : %zu (diagonal %zu, cross %zu)\n"
              "  hidden data aggregates: %zu\n\n",
              layout.stats.data_aggregates, layout.stats.visual_aggregates,
              layout.stats.diagonal_marks, layout.stats.cross_marks,
              layout.stats.hidden_aggregates);

  save_overview(fine, cube, "fig3d_spatiotemporal.svg", {});
  save_overview(coarse, cube, "fig3e_higher_level.svg", {});
  std::printf("SVGs written: fig3d_spatiotemporal.svg, "
              "fig3e_higher_level.svg\n\n");

  // Dominance: §III-D's argument quantified at both levels.
  for (const double p : {p_d, p_e}) {
    const auto st = agg.run(p);
    const auto c = cartesian_aggregation(cube, p);
    const auto ce = agg.evaluate(c.partition, p);
    const auto ue =
        agg.evaluate(make_uniform_partition(*om.hierarchy, 20, 1, 4), p);
    std::printf("p=%.2f: pIC spatiotemporal=%.3f  >  cartesian=%.3f  >  "
                "uniform=%.3f\n",
                p, st.optimal_pic, ce.optimal_pic, ue.optimal_pic);
  }

  // Significant levels (the slider of §I).
  const DichotomyResult levels = find_significant_levels(agg);
  std::printf("\nsignificant aggregation levels (%zu found, %zu DP runs):\n",
              levels.levels.size(), levels.runs);
  for (const auto& level : levels.levels) {
    std::printf("  p in [%.3f, %.3f]: %zu areas, %s\n", level.p_min,
                level.p_max, level.result.partition.size(),
                format_quality(level.result.quality).c_str());
  }

  std::printf("\nASCII of 3.d (uppercase = aggregated, '|' = temporal cut):\n");
  std::printf("%s", render_ascii(fine, cube, {}).c_str());
  return 0;
}

}  // namespace
}  // namespace stagg

int main() { return stagg::run(); }
