// Reproduces Table I: spatiotemporal scalability techniques vs the
// Elmqvist-Fekete criteria (G1-G6) and the paper's criteria (M1-M2).
//
// The paper's table is qualitative; this bench re-prints its marks and
// *measures* what can be measured on the techniques implemented in this
// library, using case A as the common workload:
//   - pixel-guided Gantt (Vampir/Paraver row): entity budget G1 fails in
//     time (sub-pixel objects), holds in space;
//   - Ocelotl timeline (row 6): G1 holds, M1 fails (no spatial axis);
//   - task profile (row 7): M1 fails (no time axis);
//   - treemap (row 8): M1 fails (no time axis);
//   - our spatiotemporal overview: all measured criteria hold.
#include <cstdio>

#include "analysis/criteria.hpp"
#include "analysis/profile.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/aggregator.hpp"
#include "core/baselines.hpp"
#include "model/builder.hpp"
#include "viz/gantt.hpp"
#include "viz/spatiotemporal_view.hpp"
#include "workload/scenarios.hpp"

namespace stagg {
namespace {

std::string mark_row(const std::array<CriterionMark, kCriterionCount>& marks) {
  std::string s;
  for (const auto m : marks) {
    s += to_symbol(m);
    s += ' ';
  }
  return s;
}

int run() {
  const double scale = env_double("STAGG_SCALE", 1.0 / 64.0);

  std::printf("=== Table I: scalability techniques vs G/M criteria ===\n");
  std::printf("legend: . = both dimensions, * = time only, o = space only\n\n");

  TextTable paper({"visualization", "technique (tools)",
                   "G1 G2 G3 G4 G5 G6 M1 M2"});
  for (const auto& row : paper_table1()) {
    paper.add_row({row.visualization, row.technique + " (" + row.tools + ")",
                   mark_row(row.marks)});
  }
  std::printf("paper marks (transcribed):\n%s\n", paper.str().c_str());

  // ---- measured checks on the implemented techniques ---------------------
  GeneratedScenario g = generate_scenario(scenario_a(), scale);
  const MicroscopicModel model =
      build_model(g.trace, *g.hierarchy, {.slice_count = 30});
  SpatiotemporalAggregator agg(model);
  const AggregationResult r = agg.run(0.4);

  TextTable measured({"technique", "entities", "sub-px", "G1", "M1", "M2"});

  // 1. Pixel-guided Gantt chart (the Fig. 2 pathology).
  {
    GanttOptions opt;
    opt.object_budget = 0;
    const GanttStats st = gantt_stats(g.trace, opt);
    MeasuredCriteria mc;
    mc.entities_drawn = st.objects_total;
    mc.entity_budget = 10'000;  // a generous legibility budget
    mc.entities_subpixel = st.objects_subpixel;
    mc.shows_time_axis = true;
    mc.shows_space_axis = true;
    mc.aggregates_carry_data = false;
    mc.reduction_simultaneous = false;
    measured.add_row({"Gantt, pixel-guided", std::to_string(st.objects_total),
                      std::to_string(st.objects_subpixel),
                      to_symbol(measured_entity_budget(mc)),
                      to_symbol(measured_m1(mc)), to_symbol(measured_m2(mc))});
  }

  // 2. Ocelotl 1-D timeline: few entities but no spatial axis.
  {
    const auto temporal =
        SequenceAggregator::spatially_aggregated(agg.cube()).run(0.4);
    MeasuredCriteria mc;
    mc.entities_drawn = temporal.intervals.size();
    mc.entity_budget = 10'000;
    mc.shows_time_axis = true;
    mc.shows_space_axis = false;
    mc.aggregates_carry_data = true;
    mc.reduction_simultaneous = true;  // space is *used*, not shown (M2)
    measured.add_row({"Timeline, info aggregation",
                      std::to_string(temporal.intervals.size()), "0",
                      to_symbol(measured_entity_budget(mc)),
                      to_symbol(measured_m1(mc)), to_symbol(measured_m2(mc))});
  }

  // 3. Vampir-style task profile: clusters, time integrated away.
  {
    const TaskProfile profile =
        cluster_task_profile(g.trace, {.clusters = 4});
    MeasuredCriteria mc;
    mc.entities_drawn = profile.clusters.size();
    mc.entity_budget = 10'000;
    mc.shows_time_axis = false;
    mc.shows_space_axis = true;
    mc.aggregates_carry_data = true;
    mc.reduction_simultaneous = true;
    measured.add_row({"Task profile, clustering",
                      std::to_string(profile.clusters.size()), "0",
                      to_symbol(measured_entity_budget(mc)),
                      to_symbol(measured_m1(mc)), to_symbol(measured_m2(mc))});
  }

  // 4. Viva-style treemap: spatial aggregation, time integrated away.
  {
    const auto spatial =
        HierarchyAggregator::temporally_aggregated(agg.cube()).run(0.4);
    MeasuredCriteria mc;
    mc.entities_drawn = spatial.parts.size();
    mc.entity_budget = 10'000;
    mc.shows_time_axis = false;
    mc.shows_space_axis = true;
    mc.aggregates_carry_data = true;
    mc.reduction_simultaneous = true;
    measured.add_row({"Treemap, hierarchical agg.",
                      std::to_string(spatial.parts.size()), "0",
                      to_symbol(measured_entity_budget(mc)),
                      to_symbol(measured_m1(mc)), to_symbol(measured_m2(mc))});
  }

  // 5. Our spatiotemporal overview (this paper's contribution).
  {
    ViewOptions opt;
    opt.min_row_px = 3.0;
    const ViewLayout layout = layout_overview(r, agg.cube(), opt);
    MeasuredCriteria mc;
    mc.entities_drawn =
        layout.stats.data_aggregates + layout.stats.visual_aggregates;
    mc.entity_budget = 10'000;
    mc.shows_time_axis = true;
    mc.shows_space_axis = true;
    mc.aggregates_carry_data = true;   // mode + alpha per tile
    mc.reduction_simultaneous = true;  // single spatiotemporal optimization
    measured.add_row({"Spatiotemporal overview (ours)",
                      std::to_string(mc.entities_drawn), "0",
                      to_symbol(measured_entity_budget(mc)),
                      to_symbol(measured_m1(mc)), to_symbol(measured_m2(mc))});
  }

  std::printf("measured on case A (scale %g):\n%s\n", scale,
              measured.str().c_str());
  std::printf(
      "reproduced shape: only the spatiotemporal overview satisfies G1, M1\n"
      "and M2 simultaneously; the pixel-guided Gantt blows the entity\n"
      "budget with sub-pixel objects; the timeline/profile/treemap each\n"
      "drop one dimension (M1).\n");
  return 0;
}

}  // namespace
}  // namespace stagg

int main() { return stagg::run(); }
