// Bench: the SIMD kernel layer (common/simd.hpp) against its scalar twins
// on the three vectorized hot paths.
//
//   dp_fold      — run_many at lane width W = 4 with AggregationOptions::
//                  use_simd on vs off: the vectorized per-cell multiply-add
//                  + tie-break screen against the always-compiled scalar
//                  instantiation, over a wide-|X| churn model.
//   cache_build  — DataCube::measures_column_into (the f64x4 across-|X|
//                  column kernel feeding MeasureCache::build) vs
//                  measures_column_reference_into over every (node, column)
//                  of the same cube.
//   codec rows   — the trace/codec_kernels.hpp pre-pass kernels
//                  (delta+zigzag, dictionary indices, fence min/max)
//                  against their codec::ref twins on synthetic columns.
//
// Every comparison is gated bit-identical: the wrappers batch independent
// lanes/columns and never reorder an accumulation chain, so SIMD-on and
// SIMD-off must produce byte-equal results (the tests/test_simd.cpp
// contract, re-checked here at bench scale).  Acceptance bar: dp_fold and
// cache_build >= 1.5x — active only when the build actually compiled a
// vector level (simd::kEnabled); a scalar-forced build (STAGG_SIMD=OFF)
// reports the ratios (~1.0x) with the bar waived, like BENCH_shard's
// thread-count waiver.  --smoke emits BENCH_simd.json for CI.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/bench_info.hpp"
#include "common/cli.hpp"
#include "common/simd.hpp"
#include "common/stopwatch.hpp"
#include "core/aggregator.hpp"
#include "hierarchy/hierarchy.hpp"
#include "model/builder.hpp"
#include "trace/codec_kernels.hpp"
#include "workload/synthetic.hpp"

namespace stagg {
namespace {

bool results_equal(const std::vector<AggregationResult>& a,
                   const std::vector<AggregationResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k].optimal_pic != b[k].optimal_pic ||
        a[k].partition.signature() != b[k].partition.signature() ||
        a[k].measures.gain != b[k].measures.gain ||
        a[k].measures.loss != b[k].measures.loss) {
      return false;
    }
  }
  return true;
}

/// Best-of-rounds wall time of `fn` (the usual bench idiom: the minimum
/// filters scheduler noise on short kernels).
template <class Fn>
double best_of(int rounds, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < rounds; ++r) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.seconds());
  }
  return best;
}

struct CodecRow {
  const char* kernel;
  double simd_s = 0.0;
  double scalar_s = 0.0;
  [[nodiscard]] double speedup() const {
    return scalar_s / std::max(simd_s, 1e-12);
  }
};

int run(int argc, const char* const* argv) {
  Cli cli("bench_simd",
          "vectorized DP fold, measure-cache column kernel and codec "
          "pre-pass vs their scalar twins, gated bit-identical");
  cli.option("slices", "", "window slice count |T| (default 48, smoke 28)");
  cli.option("states", "", "churn state count |X| (default 64, min 16)");
  cli.option("rounds", "", "timing rounds, best-of (default 9, smoke 7)");
  cli.option("json", "", "write a JSON summary to this path");
  cli.flag("smoke", "reduced model + BENCH_simd.json (CI mode)");
  if (!cli.parse(argc, argv)) return 1;

  const bool smoke = cli.get_flag("smoke");
  const auto slices = static_cast<std::int32_t>(
      cli.get("slices").empty()
          ? (smoke ? 28 : 48)
          : std::max<std::int64_t>(8, cli.get_int("slices")));
  const auto states = static_cast<std::int32_t>(
      cli.get("states").empty()
          ? 64
          : std::max<std::int64_t>(16, cli.get_int("states")));
  // The kernels are sub-millisecond, so extra rounds are nearly free —
  // smoke keeps the same best-of depth as the full run to stay stable on
  // noisy shared CI hosts (a cold best-of-3 can dip under the bar).
  const int rounds = cli.get("rounds").empty()
                         ? (smoke ? 7 : 9)
                         : static_cast<int>(std::max<std::int64_t>(
                               1, cli.get_int("rounds")));
  std::string json_path = cli.get("json");
  if (smoke && json_path.empty()) json_path = "BENCH_simd.json";

  // The bar only binds when the build compiled a vector level: in a
  // scalar-forced build both settings of use_simd run the same scalar
  // code and the ratio is noise around 1.0x.
  const bool bar_active = simd::kEnabled;
  const double speedup_bar = 1.5;

  std::printf("=== SIMD kernel layer: vectorized kernels vs scalar twins "
              "===\n\n");
  std::printf("dispatch level: %s%s, |T| = %d, |X| = %d, best of %d\n\n",
              simd::level_name(), bar_active ? "" : " (bar waived)", slices,
              states, rounds);

  // Wide-|X| churn workload: 16 leaves x `states` states keeps the
  // across-|X| loops wide with a non-multiple-of-4 tail when |X| % 4 != 0.
  const Hierarchy h = make_balanced_hierarchy(2, 4);
  const double span_s = smoke ? 1.5 : 4.0;
  Trace trace = generate_trace(h, make_churn_programmer(states, span_s),
                               0x51D0);
  ModelBuildOptions build;
  build.slice_count = slices;
  const MicroscopicModel model = build_model(trace, h, build);

  bool identical = true;

  // ---- dp_fold: W = 4 lane wave, use_simd on vs off --------------------
  const std::vector<double> ps = {0.1, 0.35, 0.6, 0.85};
  double dp_simd_s = 0.0;
  double dp_scalar_s = 0.0;
  {
    const auto time_dp = [&](bool use_simd,
                             std::vector<AggregationResult>& out) {
      AggregationOptions opt;
      opt.max_lanes = 4;
      opt.use_simd = use_simd;
      SpatiotemporalAggregator agg(model, opt);
      out = agg.run_many(ps);  // pays the measure-cache build once
      return best_of(rounds, [&] { out = agg.run_many(ps); });
    };
    std::vector<AggregationResult> r_simd;
    std::vector<AggregationResult> r_scalar;
    dp_simd_s = time_dp(true, r_simd);
    dp_scalar_s = time_dp(false, r_scalar);
    identical = identical && results_equal(r_simd, r_scalar);

    // The scalar twin is itself pinned to the reference kernel by the
    // equivalence suite; re-check the whole chain here at bench scale.
    AggregationOptions ref_opt;
    ref_opt.kernel = DpKernel::kReference;
    SpatiotemporalAggregator ref_agg(model, ref_opt);
    identical = identical && results_equal(ref_agg.run_many(ps), r_simd);
  }
  const double dp_speedup = dp_scalar_s / std::max(dp_simd_s, 1e-12);
  std::printf("dp_fold      (W = 4): simd %8.2f ms, scalar %8.2f ms -> "
              "%.2fx\n",
              dp_simd_s * 1e3, dp_scalar_s * 1e3, dp_speedup);

  // ---- cache_build: the f64x4 column kernel vs the reference twin ------
  double cache_simd_s = 0.0;
  double cache_scalar_s = 0.0;
  {
    const DataCube cube(model);
    const std::size_t node_count = h.node_count();
    std::vector<AreaMeasures> col(static_cast<std::size_t>(slices));
    std::vector<AreaMeasures> ref_col(static_cast<std::size_t>(slices));
    const auto sweep = [&](auto&& kernel, std::vector<AreaMeasures>& buf) {
      for (std::size_t node = 0; node < node_count; ++node) {
        for (SliceId j = 0; j < slices; ++j) {
          kernel(static_cast<NodeId>(node), j,
                 std::span<AreaMeasures>(buf.data(),
                                         static_cast<std::size_t>(j) + 1));
        }
      }
    };
    cache_simd_s = best_of(rounds, [&] {
      sweep([&](NodeId n, SliceId j,
                std::span<AreaMeasures> out) {
        cube.measures_column_into(n, j, out);
      }, col);
    });
    cache_scalar_s = best_of(rounds, [&] {
      sweep([&](NodeId n, SliceId j,
                std::span<AreaMeasures> out) {
        cube.measures_column_reference_into(n, j, out);
      }, ref_col);
    });
    // Bit-identity of the full last column per node (the sweeps above end
    // on column |T|-1, so both buffers hold it).
    for (std::size_t k = 0; k < col.size(); ++k) {
      identical = identical && col[k].gain == ref_col[k].gain &&
                  col[k].loss == ref_col[k].loss;
    }
  }
  const double cache_speedup = cache_scalar_s / std::max(cache_simd_s, 1e-12);
  std::printf("cache_build  (|X| = %d): simd %8.2f ms, scalar %8.2f ms -> "
              "%.2fx\n",
              states, cache_simd_s * 1e3, cache_scalar_s * 1e3,
              cache_speedup);

  // ---- codec rows: pre-pass kernels vs codec::ref twins.  No bar: at
  // -O3 with -march=native the ref twins themselves auto-vectorize, so
  // these ratios hover near 1x — encode_columns wins by computing each
  // candidate stream once (measure and encode share the arrays), not by
  // beating the autovectorizer per element. -----------------------------
  std::vector<CodecRow> codec_rows;
  {
    const std::size_t n = smoke ? (std::size_t{1} << 15) : (std::size_t{1} << 17);
    std::vector<std::int64_t> col_begin(n);
    std::vector<std::int32_t> col_state(n);
    std::int64_t t = 5'000'000;
    for (std::size_t i = 0; i < n; ++i) {
      t += 200 + static_cast<std::int64_t>((i * 733) % 411);
      col_begin[i] = t;
      col_state[i] = static_cast<std::int32_t>((i * 7) % 64) * 3 + 1;
    }
    std::vector<std::int32_t> dict(64);
    for (std::size_t d = 0; d < dict.size(); ++d) {
      dict[d] = static_cast<std::int32_t>(d) * 3 + 1;
    }
    simd::AlignedVec<std::uint64_t> out_a(n);
    simd::AlignedVec<std::uint64_t> out_b(n);
    simd::AlignedVec<std::int32_t> idx_a(n);
    simd::AlignedVec<std::int32_t> idx_b(n);
    const int codec_rounds = rounds * 3;

    CodecRow delta_row{"delta_zigzag"};
    delta_row.simd_s = best_of(codec_rounds, [&] {
      codec::delta_column(col_begin.data(), n, out_a.data());
      codec::zigzag_u64(out_a.data(), n);
    });
    delta_row.scalar_s = best_of(codec_rounds, [&] {
      codec::ref::delta_column(col_begin.data(), n, out_b.data());
      codec::ref::zigzag_u64(out_b.data(), n);
    });
    identical = identical &&
                std::equal(out_a.begin(), out_a.end(), out_b.begin());
    codec_rows.push_back(delta_row);

    CodecRow dict_row{"dict_indices"};
    dict_row.simd_s = best_of(codec_rounds, [&] {
      codec::dict_indices(col_state.data(), n, dict.data(), dict.size(),
                          idx_a.data());
    });
    dict_row.scalar_s = best_of(codec_rounds, [&] {
      codec::ref::dict_indices(col_state.data(), n, dict.data(), dict.size(),
                               idx_b.data());
    });
    identical = identical &&
                std::equal(idx_a.begin(), idx_a.end(), idx_b.begin());
    codec_rows.push_back(dict_row);

    CodecRow minmax_row{"minmax_fences"};
    std::int64_t lo_a = 0;
    std::int64_t hi_a = 0;
    std::int64_t lo_b = 0;
    std::int64_t hi_b = 0;
    minmax_row.simd_s = best_of(codec_rounds, [&] {
      codec::minmax_i64(col_begin.data(), n, lo_a, hi_a);
    });
    minmax_row.scalar_s = best_of(codec_rounds, [&] {
      codec::ref::minmax_i64(col_begin.data(), n, lo_b, hi_b);
    });
    identical = identical && lo_a == lo_b && hi_a == hi_b;
    codec_rows.push_back(minmax_row);

    for (const CodecRow& row : codec_rows) {
      std::printf("codec %-14s: simd %8.3f ms, scalar %8.3f ms -> %.2fx\n",
                  row.kernel, row.simd_s * 1e3, row.scalar_s * 1e3,
                  row.speedup());
    }
  }

  const bool meets_dp_bar = !bar_active || dp_speedup >= speedup_bar;
  const bool meets_cache_bar = !bar_active || cache_speedup >= speedup_bar;
  if (bar_active) {
    std::printf("\ndp_fold %.2fx, cache_build %.2fx  (bar >= %.1fx)  [%s]\n",
                dp_speedup, cache_speedup,
                speedup_bar,
                meets_dp_bar && meets_cache_bar ? "ok" : "MISS");
  } else {
    std::printf("\ndp_fold %.2fx, cache_build %.2fx  (bar >= %.1fx waived: "
                "scalar-forced build)\n",
                dp_speedup, cache_speedup, speedup_bar);
  }
  std::printf("equivalence  : %s\n",
              identical ? "bit-identical across every kernel pair"
                        : "MISMATCH (BUG)");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    char buf[64];
    const auto put = [&](const char* key, double v, const char* tail) {
      std::snprintf(buf, sizeof buf, "%.6g", v);
      out << "  \"" << key << "\": " << buf << tail;
    };
    out << "{\n  \"bench\": \"simd\",\n";
    out << bench_info_json();
    out << "  \"slices\": " << slices << ",\n";
    out << "  \"states\": " << states << ",\n";
    out << "  \"lanes\": 4,\n";
    put("dp_fold_simd_s", dp_simd_s, ",\n");
    put("dp_fold_scalar_s", dp_scalar_s, ",\n");
    put("dp_fold_speedup", dp_speedup, ",\n");
    put("cache_build_simd_s", cache_simd_s, ",\n");
    put("cache_build_scalar_s", cache_scalar_s, ",\n");
    put("cache_build_speedup", cache_speedup, ",\n");
    out << "  \"codec\": [\n";
    for (std::size_t k = 0; k < codec_rows.size(); ++k) {
      const CodecRow& row = codec_rows[k];
      out << "    {\"kernel\": \"" << row.kernel << "\", \"simd_s\": ";
      std::snprintf(buf, sizeof buf, "%.6g", row.simd_s);
      out << buf << ", \"scalar_s\": ";
      std::snprintf(buf, sizeof buf, "%.6g", row.scalar_s);
      out << buf << ", \"speedup\": ";
      std::snprintf(buf, sizeof buf, "%.6g", row.speedup());
      out << buf << "}" << (k + 1 < codec_rows.size() ? ",\n" : "\n");
    }
    out << "  ],\n";
    put("speedup_bar", speedup_bar, ",\n");
    out << "  \"speedup_bar_active\": " << (bar_active ? "true" : "false")
        << ",\n";
    out << "  \"meets_dp_fold_bar\": " << (meets_dp_bar ? "true" : "false")
        << ",\n";
    out << "  \"meets_cache_build_bar\": "
        << (meets_cache_bar ? "true" : "false") << ",\n";
    out << "  \"bit_identical\": " << (identical ? "true" : "false")
        << "\n}\n";
    std::printf("summary written to %s\n", json_path.c_str());
  }

  return identical && meets_dp_bar && meets_cache_bar ? 0 : 2;
}

}  // namespace
}  // namespace stagg

int main(int argc, char** argv) { return stagg::run(argc, argv); }
