// Reproduces Figure 1: the Ocelotl overview of NAS-CG, class C, 64
// processes on the Grid'5000 Rennes site (Table II case A).
//
// The paper reads off the figure: an MPI_Init aggregate (0 - 1.6 s), two
// spatially-aggregated transition periods, a computation phase where one
// process per 8-core machine is dedicated to MPI_Wait while the others run
// MPI_Send, and a perturbation around 3e9 ns disrupting the temporal
// aggregation of 26 processes.  This bench regenerates the workload, runs
// the spatiotemporal aggregation, emits the SVG, and prints the detected
// structure next to the paper's reading.
#include <cstdio>

#include "analysis/disruption.hpp"
#include "analysis/phases.hpp"
#include "common/cli.hpp"
#include "common/stopwatch.hpp"
#include "core/aggregator.hpp"
#include "core/dichotomy.hpp"
#include "model/builder.hpp"
#include "viz/ascii_view.hpp"
#include "viz/spatiotemporal_view.hpp"
#include "workload/nas_cg.hpp"
#include "workload/scenarios.hpp"

namespace stagg {
namespace {

int run() {
  const double scale = env_double("STAGG_SCALE", 1.0 / 32.0);

  std::printf("=== Figure 1: spatiotemporal overview of case A (CG-C, 64p) "
              "===\n\n");
  GeneratedScenario g = generate_scenario(scenario_a(), scale);
  const MicroscopicModel model =
      build_model(g.trace, *g.hierarchy, {.slice_count = 30});
  SpatiotemporalAggregator agg(model);

  // The analyst slides p among significant values; pick a mid level that
  // keeps the phase structure while exposing the perturbation.
  const AggregationResult fine = agg.run(0.1);
  const AggregationResult mid = agg.run(0.25);

  const ViewStats stats =
      save_overview(mid, agg.cube(), "fig1_overview_cg.svg", {});
  std::printf("SVG written to fig1_overview_cg.svg (%zu data aggregates, "
              "%zu visual aggregates)\n\n",
              stats.data_aggregates, stats.visual_aggregates);

  std::printf("detected phases (paper: init 0-1.6s; transition 1.6-1.9, "
              "1.9-2.2; computation 2.2-9.5):\n%s\n",
              format_phases(detect_phases(mid, agg.cube())).c_str());

  const auto disruptions =
      detect_disruptions(fine, agg.cube(), {.group_depth = 1});
  CgWorkloadOptions cg_opt;
  cg_opt.event_scale = scale;
  const auto injected = cg_perturbed_leaves(*g.hierarchy, cg_opt);
  std::size_t hits = 0;
  for (const auto& d : disruptions) {
    for (const LeafId s : injected) {
      if (d.leaf == s) {
        ++hits;
        break;
      }
    }
  }
  std::printf("perturbation (paper: around 3e9 ns, 26 processes):\n"
              "  injected processes : %zu\n"
              "  detected deviating : %zu (of which %zu injected)\n",
              injected.size(), disruptions.size(), hits);
  if (!disruptions.empty()) {
    std::printf("  first deviation at : %.2f s\n\n",
                disruptions.front().first_deviation_s);
    std::printf("disrupted process list (paper: \"a detailed list of those "
                "who significantly are\"):\n%s\n",
                format_disruptions(disruptions).c_str());
  }

  std::printf("overview (mode letters; '|' = temporal cut; first machine):\n");
  AsciiOptions ascii;
  ascii.max_rows = 8;
  std::printf("%s\n", render_ascii(mid, agg.cube(), ascii).c_str());

  std::printf("quality at p=0.25: %s\n", format_quality(mid.quality).c_str());
  return 0;
}

}  // namespace
}  // namespace stagg

int main() { return stagg::run(); }
