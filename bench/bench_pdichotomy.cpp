// Ablation: the significant-p dichotomy (§I "sliding the aggregation
// strength among a set of significant values"; §VI "instantaneous
// interaction to get the visualization at a given aggregation level").
//
// Measures, on the Fig. 3 trace and on scaled case A: how many distinct
// aggregation levels exist, how many DP runs the dichotomic search needs
// (vs the naive dense sweep), and how cheap a single DP re-run is compared
// to the cube build — the fact that makes the slider interactive.
#include <cstdio>

#include "common/cli.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "core/aggregator.hpp"
#include "core/dichotomy.hpp"
#include "model/builder.hpp"
#include "workload/fixtures.hpp"
#include "workload/scenarios.hpp"

namespace stagg {
namespace {

void study(const char* label, SpatiotemporalAggregator& agg) {
  Stopwatch watch;
  const DichotomyResult levels =
      find_significant_levels(agg, {.epsilon = 1e-3, .max_runs = 512});
  const double search_s = watch.seconds();
  // One-time p-independent measure pass vs the pure multiply-add DP probes
  // (the search batches every bisection wave through run_many, so the cache
  // is built exactly once, on the first wave, and each wave's probes are
  // evaluated in lanes of up to max_lanes parameters per DP sweep).
  const double cache_s = agg.cache_build_seconds();
  const double per_p_s =
      (search_s - cache_s) / static_cast<double>(std::max<std::size_t>(
                                 levels.runs, 1));
  const std::size_t lanes = agg.options().max_lanes;

  // Dense sweep cost for the same resolution.
  const std::size_t dense_runs = static_cast<std::size_t>(1.0 / 1e-3) + 1;

  watch.restart();
  (void)agg.run(0.5);
  const double one_run_s = watch.seconds();

  std::printf("%s\n", label);
  std::printf("  significant levels : %zu\n", levels.levels.size());
  std::printf("  DP runs (dichotomy): %zu  vs dense sweep: %zu (%.0fx "
              "fewer)\n",
              levels.runs, dense_runs,
              static_cast<double>(dense_runs) /
                  static_cast<double>(levels.runs));
  std::printf("  search time        : %s = measure cache %s (once) + %s "
              "per probe (waves of <= %zu DP lanes)\n",
              format_seconds(search_s).c_str(),
              format_seconds(cache_s).c_str(),
              format_seconds(per_p_s).c_str(), lanes);
  std::printf("  one warm DP re-run : %s\n",
              format_seconds(one_run_s).c_str());
  TextTable t({"p range", "areas", "reduction", "loss"});
  for (const auto& level : levels.levels) {
    char range[48], red[16], loss[16];
    std::snprintf(range, sizeof range, "[%.3f, %.3f]", level.p_min,
                  level.p_max);
    std::snprintf(red, sizeof red, "%.1f%%",
                  level.result.quality.complexity_reduction() * 100.0);
    std::snprintf(loss, sizeof loss, "%.1f%%",
                  level.result.quality.loss_fraction() * 100.0);
    t.add_row({range, std::to_string(level.result.partition.size()), red,
               loss});
  }
  std::printf("%s\n", t.str().c_str());
}

int run() {
  std::printf("=== Ablation: significant-p dichotomic search ===\n\n");

  OwnedModel fig3 = make_figure3_model();
  SpatiotemporalAggregator fig3_agg(fig3.model);
  study("Figure 3 artificial trace (12 x 20):", fig3_agg);

  const double scale = env_double("STAGG_SCALE", 1.0 / 64.0);
  GeneratedScenario g = generate_scenario(scenario_a(), scale);
  const MicroscopicModel model =
      build_model(g.trace, *g.hierarchy, {.slice_count = 30});
  Stopwatch cube_watch;
  SpatiotemporalAggregator agg(model);  // cube built here
  const double cube_s = cube_watch.seconds();
  std::printf("case A (64 x 30), cube build %s:\n",
              format_seconds(cube_s).c_str());
  study("", agg);

  std::printf("reproduced shape: a handful of significant levels cover the\n"
              "whole [0,1] range; each probe is a DP re-run on the shared\n"
              "p-independent cube, which is why interaction after the\n"
              "preprocess is 'instantaneous' (paper §VI).\n");
  return 0;
}

}  // namespace
}  // namespace stagg

int main() { return stagg::run(); }
