// Ablation: trace I/O throughput — the substrate behind Table II's "trace
// reading" row (the paper's dominant cost: 44 s - 2911 s).
//
// Measures binary write, binary read (materializing), binary streaming
// (the larger-than-memory path) and CSV read on scaled case A, reporting
// events/second so the full-size cost can be extrapolated.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "model/builder.hpp"
#include "trace/binary_io.hpp"
#include "trace/csv_io.hpp"
#include "workload/scenarios.hpp"

namespace stagg {
namespace {

namespace fs = std::filesystem;

struct Fixture {
  GeneratedScenario scenario;
  std::string bin_path;
  std::string csv_path;

  Fixture() : scenario(generate_scenario(scenario_a(), 1.0 / 64.0)) {
    const auto dir = fs::temp_directory_path() / "stagg_bench_io";
    fs::create_directories(dir);
    bin_path = (dir / "a.stgt").string();
    csv_path = (dir / "a.csv").string();
    write_binary_trace(scenario.trace, bin_path);
    write_csv_trace(scenario.trace, csv_path);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_BinaryWrite(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(write_binary_trace(f.scenario.trace, f.bin_path));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(
                              f.scenario.trace.event_count()));
}
BENCHMARK(BM_BinaryWrite);

void BM_BinaryRead(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    Trace t = read_binary_trace(f.bin_path);
    benchmark::DoNotOptimize(t.state_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(
                              f.scenario.trace.event_count()));
}
BENCHMARK(BM_BinaryRead);

void BM_BinaryStream(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    std::uint64_t n = 0;
    stream_binary_trace(f.bin_path,
                        [&](std::span<const TraceRecord> chunk) {
                          n += chunk.size();
                        });
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(
                              f.scenario.trace.event_count()));
}
BENCHMARK(BM_BinaryStream);

void BM_StreamingModelBuild(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    const MicroscopicModel m = build_model_streaming(
        f.bin_path, *f.scenario.hierarchy, {.slice_count = 30});
    benchmark::DoNotOptimize(m.total_mass());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(
                              f.scenario.trace.event_count()));
}
BENCHMARK(BM_StreamingModelBuild);

void BM_CsvRead(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    Trace t = read_csv_trace(f.csv_path);
    benchmark::DoNotOptimize(t.state_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(
                              f.scenario.trace.event_count()));
}
BENCHMARK(BM_CsvRead);

}  // namespace
}  // namespace stagg
