// Ablation: the preprocess substrate of Table II — microscopic-model
// construction and cube build — timed end to end, plus thread-pool
// scaling of the model build (parallel over resources).
//
// On single-core CI machines the scaling section degenerates to 1 thread;
// the bench still validates that the parallel path produces identical
// tensors (checksummed) at every pool size.
#include <benchmark/benchmark.h>

#include "common/thread_pool.hpp"
#include "core/cube.hpp"
#include "model/builder.hpp"
#include "workload/scenarios.hpp"

namespace stagg {
namespace {

/// One shared scaled case-A trace for all registrations.
GeneratedScenario& shared_scenario() {
  static GeneratedScenario g = generate_scenario(scenario_a(), 1.0 / 64.0);
  return g;
}

void BM_ModelBuild(benchmark::State& state) {
  auto& g = shared_scenario();
  for (auto _ : state) {
    const MicroscopicModel model =
        build_model(g.trace, *g.hierarchy, {.slice_count = 30});
    benchmark::DoNotOptimize(model.total_mass());
  }
  state.counters["events"] =
      static_cast<double>(g.trace.event_count());
}
BENCHMARK(BM_ModelBuild);

void BM_ModelBuildSliceCount(benchmark::State& state) {
  auto& g = shared_scenario();
  const auto slices = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    const MicroscopicModel model =
        build_model(g.trace, *g.hierarchy, {.slice_count = slices});
    benchmark::DoNotOptimize(model.total_mass());
  }
}
BENCHMARK(BM_ModelBuildSliceCount)->Arg(30)->Arg(120)->Arg(480);

void BM_CubeBuildCaseA(benchmark::State& state) {
  auto& g = shared_scenario();
  const MicroscopicModel model =
      build_model(g.trace, *g.hierarchy, {.slice_count = 30});
  for (auto _ : state) {
    DataCube cube(model);
    benchmark::DoNotOptimize(cube.memory_bytes());
  }
}
BENCHMARK(BM_CubeBuildCaseA);

void BM_ParallelForOverhead(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> out(n, 0.0);
  for (auto _ : state) {
    parallel_for(n, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelForOverhead)->Arg(64)->Arg(4096)->Arg(65536);

void BM_TraceSeal(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    GeneratedScenario g = generate_scenario(scenario_a(), 1.0 / 256.0);
    state.ResumeTiming();
    g.trace.seal();
    benchmark::DoNotOptimize(g.trace.state_count());
  }
}
BENCHMARK(BM_TraceSeal);

}  // namespace
}  // namespace stagg
