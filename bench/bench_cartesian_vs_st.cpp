// Ablation: "spatial-and-temporal is not spatiotemporal" (§III-D,
// Fig. 3.b/3.c/3.d).
//
// On a family of block-structured random traces and on the paper's
// workloads, compares the pIC, information loss and area count of:
//   - the uniform grid (Fig. 3.b),
//   - the Cartesian product of unidimensional optima (Fig. 3.c),
//   - the spatiotemporal optimum (Fig. 3.d),
// all evaluated under the same full spatiotemporal measures.  The optimum
// must dominate, strictly whenever the trace contains non-product
// patterns.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/aggregator.hpp"
#include "core/baselines.hpp"
#include "model/builder.hpp"
#include "workload/fixtures.hpp"
#include "workload/scenarios.hpp"

namespace stagg {
namespace {

void compare(const char* label, SpatiotemporalAggregator& agg,
             const Hierarchy& h, std::int32_t slices, double p,
             TextTable& table) {
  const auto st = agg.run(p);
  const auto cart = cartesian_aggregation(agg.cube(), p);
  const auto cart_eval = agg.evaluate(cart.partition, p);
  const auto uni_eval =
      agg.evaluate(make_uniform_partition(h, slices, 1, 4), p);

  const auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return std::string(buf);
  };
  table.add_row({label, "spatiotemporal", fmt(st.optimal_pic),
                 fmt(st.measures.loss), std::to_string(st.partition.size())});
  table.add_row({"", "cartesian (3.c)", fmt(cart_eval.optimal_pic),
                 fmt(cart_eval.measures.loss),
                 std::to_string(cart_eval.partition.size())});
  table.add_row({"", "uniform (3.b)", fmt(uni_eval.optimal_pic),
                 fmt(uni_eval.measures.loss),
                 std::to_string(uni_eval.partition.size())});
  table.add_rule();
}

int run() {
  const double p = 0.4;
  std::printf("=== Ablation: uniform vs Cartesian vs spatiotemporal ===\n"
              "all partitions scored with the full spatiotemporal measures "
              "at p=%.1f\n\n",
              p);
  TextTable table({"trace", "partition", "pIC", "loss", "areas"});

  // Structured random traces: blocks misaligned with the hierarchy force
  // non-product patterns.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const OwnedModel om = make_random_model({.levels = 2,
                                             .fanout = 4,
                                             .slices = 24,
                                             .states = 3,
                                             .block_slices = 5,
                                             .block_leaves = 3,
                                             .seed = seed});
    SpatiotemporalAggregator agg(om.model);
    char label[32];
    std::snprintf(label, sizeof label, "random#%llu (16x24)",
                  static_cast<unsigned long long>(seed));
    compare(label, agg, *om.hierarchy, 24, p, table);
  }

  // Figure 3 artificial trace.
  {
    OwnedModel om = make_figure3_model();
    SpatiotemporalAggregator agg(om.model);
    compare("figure3 (12x20)", agg, *om.hierarchy, 20, p, table);
  }

  // Case A workload.
  {
    const double scale = env_double("STAGG_SCALE", 1.0 / 64.0);
    GeneratedScenario g = generate_scenario(scenario_a(), scale);
    const MicroscopicModel model =
        build_model(g.trace, *g.hierarchy, {.slice_count = 30});
    SpatiotemporalAggregator agg(model);
    compare("case A (64x30)", agg, *g.hierarchy, 30, p, table);
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "reproduced shape: the spatiotemporal optimum dominates both\n"
      "baselines everywhere, strictly on traces whose patterns are not\n"
      "Cartesian products (§III-D).  Note how the Cartesian baseline can\n"
      "even fall below the uniform grid: averaging each dimension first\n"
      "destroys the information the other one needs — the paper's\n"
      "\"spatial-and-temporal is not spatiotemporal\" argument.\n");
  return 0;
}

}  // namespace
}  // namespace stagg

int main() { return stagg::run(); }
