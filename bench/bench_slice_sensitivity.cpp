// Ablation: sensitivity to the microscopic slice count |T|.
//
// The paper fixes |T| = 30 for every Table II scenario without discussing
// the choice.  This bench varies |T| on case A and measures what the
// analyst actually cares about: does the perturbation stay detectable, how
// does the model/DP cost grow (O(|S||T|^3) looms), and how stable the
// detected phase boundaries are — quantifying the resolution/cost
// trade-off behind the paper's default.
#include <cstdio>

#include "analysis/disruption.hpp"
#include "analysis/phases.hpp"
#include "common/cli.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "core/aggregator.hpp"
#include "model/builder.hpp"
#include "workload/nas_cg.hpp"
#include "workload/scenarios.hpp"

namespace stagg {
namespace {

int run() {
  const double scale = env_double("STAGG_SCALE", 1.0 / 32.0);
  std::printf("=== Ablation: microscopic slice count |T| (paper: 30) ===\n\n");

  GeneratedScenario g = generate_scenario(scenario_a(), scale);
  CgWorkloadOptions cg_opt;
  cg_opt.event_scale = scale;
  const auto injected = cg_perturbed_leaves(*g.hierarchy, cg_opt);

  TextTable table({"|T|", "model", "DP run", "areas", "phases",
                   "perturbed found", "init end (s)"});
  for (const std::int32_t slices : {10, 15, 30, 60, 120, 240}) {
    Stopwatch model_watch;
    const MicroscopicModel model =
        build_model(g.trace, *g.hierarchy, {.slice_count = slices});
    const double model_s = model_watch.seconds();

    SpatiotemporalAggregator agg(model);
    Stopwatch dp_watch;
    const AggregationResult fine = agg.run(0.1);
    const double dp_s = dp_watch.seconds();

    const auto phases = detect_phases(fine, agg.cube());
    const auto found =
        detect_disruptions(fine, agg.cube(), {.group_depth = 1});
    std::size_t hits = 0;
    for (const auto& d : found) {
      for (const LeafId s : injected) {
        if (d.leaf == s) {
          ++hits;
          break;
        }
      }
    }

    char hit_str[32], init_str[16];
    std::snprintf(hit_str, sizeof hit_str, "%zu/%zu", hits, injected.size());
    std::snprintf(init_str, sizeof init_str, "%.2f",
                  phases.empty() ? 0.0 : phases[0].end_s);
    table.add_row({std::to_string(slices), format_seconds(model_s),
                   format_seconds(dp_s),
                   std::to_string(fine.partition.size()),
                   std::to_string(phases.size()), hit_str, init_str});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "reading: |T| = 30 (the paper's default) already recovers the init\n"
      "boundary to within one slice and the full perturbed-process list;\n"
      "finer grids sharpen boundaries at cubic DP cost, coarser grids\n"
      "start missing the 0.45 s perturbation window.\n");
  return 0;
}

}  // namespace
}  // namespace stagg

int main() { return stagg::run(); }
