// Reproduces Figure 4: the overview of NAS-LU, class C, 700 processes on
// the Nancy site (Table II case C).
//
// The paper reads off the figure: MPI_Init until 17.5 s, a spatially
// heterogeneous MPI_Allreduce period, then a computation phase where the
// aggregation separates the three clusters — Graphene homogeneous,
// Graphite spatially heterogeneous (10 GbE), Griffon homogeneous except a
// strong rupture at 34.5 s caused by hidden machines on shared switches.
#include <cstdio>

#include "analysis/disruption.hpp"
#include "analysis/phases.hpp"
#include "common/cli.hpp"
#include "core/aggregator.hpp"
#include "model/builder.hpp"
#include "viz/spatiotemporal_view.hpp"
#include "workload/scenarios.hpp"

namespace stagg {
namespace {

/// Fraction of a cluster's leaf rows whose temporal partition deviates from
/// the cluster majority (spatial-heterogeneity indicator).
double heterogeneity(const AggregationResult& r, const DataCube& cube,
                     NodeId cluster) {
  const auto ds = detect_disruptions(r, cube, {.group_depth = 1});
  const auto& node = cube.hierarchy().node(cluster);
  std::size_t in_cluster = 0;
  for (const auto& d : ds) {
    if (d.leaf >= node.first_leaf &&
        d.leaf < node.first_leaf + node.leaf_count) {
      ++in_cluster;
    }
  }
  return static_cast<double>(in_cluster) / node.leaf_count;
}

/// Mean temporal-cut count per leaf row within a cluster.
double cuts_per_row(const AggregationResult& r, const Hierarchy& h,
                    NodeId cluster) {
  const auto& node = h.node(cluster);
  std::size_t cuts = 0;
  for (LeafId s = node.first_leaf; s < node.first_leaf + node.leaf_count;
       ++s) {
    cuts += r.partition.row_of_leaf(h, s).size() - 1;
  }
  return static_cast<double>(cuts) / node.leaf_count;
}

/// Mean spatial grouping of a cluster's rows: average resource count of the
/// areas covering each leaf (cell-weighted).  A homogeneous cluster is
/// covered by wide cluster-level areas (value near its size); a spatially
/// heterogeneous one decays to per-process areas (value near 1) — the
/// paper's reading of Graphite ("the nodes are all spatially separated").
double mean_area_width(const AggregationResult& r, const Hierarchy& h,
                       NodeId cluster, SliceId from_slice) {
  const auto& node = h.node(cluster);
  double weighted = 0.0, cells = 0.0;
  for (LeafId s = node.first_leaf; s < node.first_leaf + node.leaf_count;
       ++s) {
    for (const auto& a : r.partition.row_of_leaf(h, s)) {
      if (a.time.j < from_slice) continue;  // skip init/Allreduce areas
      const double len = a.time.j - std::max(a.time.i, from_slice) + 1;
      weighted += len * h.node(a.node).leaf_count;
      cells += len;
    }
  }
  return cells > 0.0 ? weighted / cells : 0.0;
}

int run() {
  const double scale = env_double("STAGG_SCALE", 1.0 / 256.0);

  std::printf("=== Figure 4: overview of case C (LU-C, 700p, Nancy) ===\n\n");
  GeneratedScenario g = generate_scenario(scenario_c(), scale);
  std::printf("trace: %llu events over %zu processes, 3 clusters\n",
              static_cast<unsigned long long>(g.trace.event_count()),
              g.trace.resource_count());

  const MicroscopicModel model =
      build_model(g.trace, *g.hierarchy, {.slice_count = 30});
  SpatiotemporalAggregator agg(model);
  const AggregationResult r = agg.run(0.15);

  const ViewStats vs = save_overview(r, agg.cube(), "fig4_overview_lu.svg",
                                     {.min_row_px = 2.0});
  std::printf("SVG written to fig4_overview_lu.svg (%zu data + %zu visual "
              "aggregates; diagonal %zu, cross %zu)\n\n",
              vs.data_aggregates, vs.visual_aggregates, vs.diagonal_marks,
              vs.cross_marks);

  std::printf("detected phases (paper: init 0-17.5s, Allreduce to ~20s, "
              "computation to 65s):\n%s\n",
              format_phases(detect_phases(r, agg.cube(),
                                          {.quorum = 0.5}))
                  .c_str());

  const Hierarchy& h = *g.hierarchy;
  std::printf("per-cluster behaviour (paper: SA Graphene homogeneous, SB "
              "Graphite heterogeneous, SC Griffon rupture at 34.5 s):\n");
  // Restrict the width metric to the computation phase (slice of 20 s on).
  const SliceId comp_slice = static_cast<SliceId>(20.0 / 65.0 * 30.0) + 1;
  for (const NodeId cluster : h.nodes_at_depth(1)) {
    std::printf("  %-10s rows=%4d  deviating-rows=%5.1f%%  cuts/row=%.2f  "
                "mean-area-width=%.1f resources\n",
                h.node(cluster).name.c_str(), h.node(cluster).leaf_count,
                heterogeneity(r, agg.cube(), cluster) * 100.0,
                cuts_per_row(r, h, cluster),
                mean_area_width(r, h, cluster, comp_slice));
  }
  std::printf("  (computation-phase area widths: a homogeneous cluster is "
              "covered by wide areas;\n   Graphite's spatial heterogeneity "
              "shows as near-1 width — \"nodes all spatially separated\")\n");

  // The rupture: griffon rows must cut around slice 34.5/65*30 ~ 16.
  const NodeId griffon = h.find("nancy/griffon");
  const auto votes = cut_votes(r, agg.cube());
  const SliceId rupture_slice =
      static_cast<SliceId>(34.5 / 65.0 * 30.0);
  std::printf("\nrupture check (paper: strong rupture at 34.5 s in Griffon "
              "only):\n  global cut votes near slice %d: ",
              rupture_slice);
  for (SliceId t = rupture_slice - 1; t <= rupture_slice + 2; ++t) {
    std::printf("%d:%.2f ", t, votes[static_cast<std::size_t>(t)]);
  }
  std::printf("\n");
  if (griffon != kNoNode) {
    // Count griffon rows cutting in the rupture window.
    const auto& node = h.node(griffon);
    std::size_t cutting = 0;
    for (LeafId s = node.first_leaf; s < node.first_leaf + node.leaf_count;
         ++s) {
      for (const auto& a : r.partition.row_of_leaf(h, s)) {
        if (a.time.i >= rupture_slice - 1 && a.time.i <= rupture_slice + 2) {
          ++cutting;
          break;
        }
      }
    }
    std::printf("  griffon rows with a cut in the rupture window: %zu / %d\n",
                cutting, node.leaf_count);
  }

  std::printf("\nquality at p=0.15: %s\n", format_quality(r.quality).c_str());
  return 0;
}

}  // namespace
}  // namespace stagg

int main() { return stagg::run(); }
