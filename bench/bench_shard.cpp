// Bench: sharded engine (ShardedTraceStore + partitioned DataCube fold +
// per-shard MeasureCache schedule) vs the single-store manager over the
// same workloads.
//
// Each configuration attaches one sliding-window session to a
// SessionManager — monolithic, or spanning S ∈ {2, 4, 8} resource shards —
// and pays the same two costs the sharding tentpole targets: the initial
// cache build (model + cube fold + measure cache + first DP sweep, timed
// by add_session) and a series of live advance rounds (ingest + seal +
// refold + incremental DP, timed by slide_all).  Workloads: a >= 256-leaf
// balanced synthetic platform and the paper's NAS-LU behavioural model
// (heterogeneous clusters, scripted rupture).
//
// Results are gated bit-identical across every shard count (the oracle of
// tests/test_shard.cpp re-checked at bench scale).  Acceptance bar:
// sharded cache build + advance >= 1.5x the single store at S = 4 — active
// on >= 6 hardware threads (per-shard work must actually parallelize),
// reported-but-waived below that, like BENCH_ingest's pipeline bar.
//
// The SIMD-rider measurement times the DP sweep of the same sharded model
// at lane widths 4 and 8 (the transposed, lane-interleaved count layout
// makes the tie-break scan width-scalable) and reports where wider lanes
// win.  --smoke emits BENCH_shard.json for CI.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/bench_info.hpp"
#include "common/cli.hpp"
#include "common/stopwatch.hpp"
#include "core/session_manager.hpp"
#include "hierarchy/hierarchy.hpp"
#include "hierarchy/platform.hpp"
#include "hierarchy/shard_plan.hpp"
#include "model/builder.hpp"
#include "trace/sharded_store.hpp"
#include "trace/stream_decode.hpp"
#include "trace/trace_view.hpp"
#include "workload/nas_lu.hpp"
#include "workload/stream_split.hpp"
#include "workload/synthetic.hpp"

namespace stagg {
namespace {

bool results_equal(const std::vector<AggregationResult>& a,
                   const std::vector<AggregationResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k].optimal_pic != b[k].optimal_pic ||
        a[k].partition.signature() != b[k].partition.signature() ||
        a[k].measures.gain != b[k].measures.gain ||
        a[k].measures.loss != b[k].measures.loss) {
      return false;
    }
  }
  return true;
}

struct Workload {
  std::string name;
  Hierarchy hierarchy;
  Trace whole;
};

/// One manager configuration measured end to end.
struct ConfigTiming {
  std::size_t shards = 0;  ///< 0 = monolithic single store
  double build_s = 0.0;    ///< add_session: model + cube + cache + first DP
  double advance_s = 0.0;  ///< all ingest + slide rounds
  double cache_build_s = 0.0;  ///< the measure-cache share of build_s
  /// Per-round results retained for the cross-config identity gate.
  std::vector<std::vector<AggregationResult>> rounds;
  [[nodiscard]] double total_s() const { return build_s + advance_s; }
};

ConfigTiming run_config(const Workload& w, std::size_t shards, TimeNs horizon,
                        const TimeGrid& window, const std::vector<double>& ps,
                        int rounds, TimeNs round_dt) {
  ConfigTiming t;
  t.shards = shards;

  TraceSplit split = split_trace_at(w.whole, horizon);
  split.initial.seal();
  std::unique_ptr<SessionManager> manager;
  if (shards == 0) {
    manager = std::make_unique<SessionManager>(w.hierarchy,
                                               split.initial.store());
  } else {
    manager = std::make_unique<SessionManager>(
        w.hierarchy,
        std::make_shared<ShardedTraceStore>(
            w.hierarchy, std::make_shared<ShardPlan>(w.hierarchy, shards),
            *split.initial.store()));
  }

  SessionSpec spec;
  spec.window = window;
  spec.ps = ps;
  {
    Stopwatch sw;
    manager->add_session(spec);
    t.build_s = sw.seconds();
  }
  t.cache_build_s = manager->session(0).aggregator().cache_build_seconds();
  t.rounds.push_back(manager->session(0).results());

  TraceSplit stream = split_trace_at(w.whole, horizon);
  std::size_t next = 0;
  Stopwatch sw;
  for (int round = 0; round < rounds; ++round) {
    const TimeNs frontier = horizon + round_dt * (round + 1);
    std::vector<EventRecord> batch;
    for (; next < stream.future.size() &&
           stream.future[next].second.begin < frontier;
         ++next) {
      const auto& [r, s] = stream.future[next];
      batch.push_back({r, s.state, s.begin, s.end});
    }
    manager->ingest(batch);
    manager->slide_all(1);
    t.rounds.push_back(manager->session(0).results());
  }
  t.advance_s = sw.seconds();
  return t;
}

int run(int argc, const char* const* argv) {
  Cli cli("bench_shard",
          "sharded engine (per-shard stores + partitioned DP fold) vs the "
          "single-store manager: cache build + advance wall time over a "
          "256-leaf synthetic platform and the NAS-LU workload, gated "
          "bit-identical at every shard count");
  cli.option("slices", "", "window slice count |T| (default 32, smoke 24)");
  cli.option("rounds", "", "live advance rounds (default 8, smoke 4)");
  cli.option("mean-ms", "", "synthetic mean state duration in ms "
                            "(default 1.0, smoke 4.0)");
  cli.option("lu-cores", "", "NAS-LU platform cores (default 120, smoke 48)");
  cli.option("lu-event-div", "", "NAS-LU event divisor vs the paper's full "
                                 "scale (default 64, smoke 256)");
  cli.option("json", "", "write a JSON summary to this path");
  cli.flag("smoke", "reduced model + BENCH_shard.json (CI mode)");
  if (!cli.parse(argc, argv)) return 1;

  const bool smoke = cli.get_flag("smoke");
  const auto slices = static_cast<std::int32_t>(
      cli.get("slices").empty() ? (smoke ? 24 : 32)
                                : std::max<std::int64_t>(
                                      8, cli.get_int("slices")));
  const int rounds = cli.get("rounds").empty()
                         ? (smoke ? 4 : 8)
                         : static_cast<int>(std::max<std::int64_t>(
                               2, cli.get_int("rounds")));
  const double mean_ms =
      cli.get("mean-ms").empty()
          ? (smoke ? 4.0 : 1.0)
          : std::max(0.05, cli.get_double("mean-ms"));
  const auto lu_cores = static_cast<std::int32_t>(
      cli.get("lu-cores").empty() ? (smoke ? 48 : 120)
                                  : std::max<std::int64_t>(
                                        8, cli.get_int("lu-cores")));
  const double lu_event_div =
      cli.get("lu-event-div").empty()
          ? (smoke ? 256.0 : 64.0)
          : static_cast<double>(
                std::max<std::int64_t>(1, cli.get_int("lu-event-div")));
  std::string json_path = cli.get("json");
  if (smoke && json_path.empty()) json_path = "BENCH_shard.json";

  const std::vector<std::size_t> shard_counts = {2, 4, 8};
  const std::vector<double> ps = {0.25, 0.5, 0.75};
  const TimeNs dt = seconds(0.5);
  const TimeGrid window(0, dt * slices, slices);
  const TimeNs horizon = window.end() + dt;

  std::vector<Workload> workloads;
  {
    // >= 256-leaf synthetic platform: 4 levels x fanout 4.
    Workload w;
    w.name = "synthetic256";
    w.hierarchy = make_balanced_hierarchy(4, 4);
    const double span_s = to_seconds(horizon + dt * (rounds + 2));
    const auto programmer = [&](LeafId leaf) {
      ResourceProgram p;
      StatePattern pattern;
      for (std::int32_t x = 0; x < 4; ++x) {
        const double mean =
            mean_ms * 1e-3 *
            (1.0 + 0.5 * static_cast<double>((leaf + x) % 3));
        pattern.elements.push_back({"state" + std::to_string(x), mean, 0.35});
      }
      p.phases.push_back({0.0, span_s, std::move(pattern)});
      return p;
    };
    w.whole = generate_trace(w.hierarchy, programmer, 0x5A4D);
    w.whole.seal();
    workloads.push_back(std::move(w));
  }
  {
    // NAS-LU over the paper's Nancy platform (case C), scaled down.
    Workload w;
    w.name = "nas_lu";
    const PlatformSpec platform = grid5000_nancy().scaled_to(lu_cores);
    w.hierarchy = platform.build_hierarchy();
    LuWorkloadOptions opt;
    opt.event_scale = 1.0 / lu_event_div;
    w.whole = generate_lu_trace(w.hierarchy, platform, opt);
    w.whole.seal();
    workloads.push_back(std::move(w));
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // The 1.5x bar needs the per-shard seal/fold/cache tasks of S = 4 plus
  // the session's own DP parallelism to actually overlap.
  const bool bar_active = hw >= 6;
  const double speedup_bar = 1.5;

  std::printf("=== Sharded engine: per-shard stores + partitioned DP fold "
              "===\n\n");
  std::printf("|T| = %d, %d advance rounds, %u hardware threads\n\n", slices,
              rounds, hw);

  bool all_identical = true;
  double min_s4_speedup = 1e300;
  struct WorkloadReport {
    std::string name;
    std::size_t leaves = 0;
    std::uint64_t events = 0;
    ConfigTiming mono;
    std::vector<ConfigTiming> sharded;
  };
  std::vector<WorkloadReport> reports;

  for (const Workload& w : workloads) {
    WorkloadReport rep;
    rep.name = w.name;
    rep.leaves = w.hierarchy.leaf_count();
    rep.events = w.whole.store()->state_count();
    std::printf("--- %s: %zu leaves, %.2f M events ---\n", w.name.c_str(),
                rep.leaves, static_cast<double>(rep.events) / 1e6);

    rep.mono = run_config(w, 0, horizon, window, ps, rounds, dt);
    std::printf("  single store : build %7.1f ms + advance %7.1f ms = "
                "%7.1f ms\n",
                rep.mono.build_s * 1e3, rep.mono.advance_s * 1e3,
                rep.mono.total_s() * 1e3);
    for (const std::size_t s : shard_counts) {
      ConfigTiming t = run_config(w, s, horizon, window, ps, rounds, dt);
      const double speedup = rep.mono.total_s() / std::max(t.total_s(), 1e-12);
      bool identical = t.rounds.size() == rep.mono.rounds.size();
      for (std::size_t k = 0; identical && k < t.rounds.size(); ++k) {
        identical = results_equal(t.rounds[k], rep.mono.rounds[k]);
      }
      all_identical = all_identical && identical;
      if (s == 4) min_s4_speedup = std::min(min_s4_speedup, speedup);
      std::printf("  S = %zu shards: build %7.1f ms + advance %7.1f ms = "
                  "%7.1f ms  (%.2fx)  [%s]\n",
                  s, t.build_s * 1e3, t.advance_s * 1e3, t.total_s() * 1e3,
                  speedup, identical ? "bit-identical" : "MISMATCH (BUG)");
      rep.sharded.push_back(std::move(t));
    }
    std::printf("\n");
    reports.push_back(std::move(rep));
  }

  // ---- SIMD rider: DP sweep at lane widths 4 vs 8 over the sharded model.
  // The lane-interleaved count mirror makes the tie-break scan a
  // contiguous W-wide pass; this measures whether W = 8 pays off here.
  double lanes4_s = 0.0;
  double lanes8_s = 0.0;
  {
    const Workload& w = workloads.front();
    const ShardPlan plan(w.hierarchy, 4);
    auto store = std::make_shared<TraceStore>(*w.whole.store());
    store->seal_chunk();
    ModelBuildOptions build;
    build.slice_count = slices;
    build.window_begin = window.begin();
    build.window_end = window.end();
    const MicroscopicModel model = build_model(
        TraceView(store, window.begin(), window.end()), w.hierarchy, build);
    const std::vector<double> wide_ps = {0.0,  0.15, 0.3,  0.45,
                                         0.55, 0.7,  0.85, 1.0};
    const auto time_lanes = [&](std::size_t lanes) {
      AggregationOptions opt;
      opt.shard_plan = &plan;
      opt.max_lanes = lanes;
      SpatiotemporalAggregator agg(model, opt);
      (void)agg.run_many(wide_ps);  // pay the cache build outside the timer
      Stopwatch sw;
      const auto results = agg.run_many(wide_ps);
      const double elapsed = sw.seconds();
      return std::make_pair(elapsed, results);
    };
    auto [t4, r4] = time_lanes(4);
    auto [t8, r8] = time_lanes(8);
    lanes4_s = t4;
    lanes8_s = t8;
    all_identical = all_identical && results_equal(r4, r8);
    std::printf("lane width (8 probes, S = 4 plan): W = 4 %.1f ms, W = 8 "
                "%.1f ms -> %s\n",
                lanes4_s * 1e3, lanes8_s * 1e3,
                lanes8_s < lanes4_s ? "wider lanes win here"
                                    : "W = 4 stays the default");
  }

  const bool meets_bar = !bar_active || min_s4_speedup >= speedup_bar;
  if (bar_active) {
    std::printf("\nS = 4 speedup: %.2fx  (bar >= %.1fx)  [%s]\n",
                min_s4_speedup, speedup_bar, meets_bar ? "ok" : "MISS");
  } else {
    std::printf("\nS = 4 speedup: %.2fx  (bar >= %.1fx waived: %u hardware "
                "threads < 6 cannot parallelize the per-shard work)\n",
                min_s4_speedup, speedup_bar, hw);
  }
  std::printf("equivalence  : %s\n",
              all_identical ? "bit-identical at every shard count"
                            : "MISMATCH (BUG)");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    char buf[64];
    out << "{\n  \"bench\": \"shard\",\n";
    out << bench_info_json();
    out << "  \"slices\": " << slices << ",\n";
    out << "  \"rounds\": " << rounds << ",\n";
    out << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const WorkloadReport& rep = reports[i];
      out << "    {\n      \"name\": \"" << rep.name << "\",\n";
      out << "      \"leaves\": " << rep.leaves << ",\n";
      out << "      \"events\": " << rep.events << ",\n";
      std::snprintf(buf, sizeof buf, "%.6g", rep.mono.total_s());
      out << "      \"single_store_s\": " << buf << ",\n";
      std::snprintf(buf, sizeof buf, "%.6g", rep.mono.cache_build_s);
      out << "      \"single_store_cache_build_s\": " << buf << ",\n";
      out << "      \"sharded\": [\n";
      for (std::size_t k = 0; k < rep.sharded.size(); ++k) {
        const ConfigTiming& t = rep.sharded[k];
        out << "        {\"shards\": " << t.shards << ", \"total_s\": ";
        std::snprintf(buf, sizeof buf, "%.6g", t.total_s());
        out << buf << ", \"cache_build_s\": ";
        std::snprintf(buf, sizeof buf, "%.6g", t.cache_build_s);
        out << buf << ", \"speedup\": ";
        std::snprintf(buf, sizeof buf, "%.6g",
                      rep.mono.total_s() / std::max(t.total_s(), 1e-12));
        out << buf << "}";
        out << (k + 1 < rep.sharded.size() ? ",\n" : "\n");
      }
      out << "      ]\n    }" << (i + 1 < reports.size() ? ",\n" : "\n");
    }
    out << "  ],\n";
    std::snprintf(buf, sizeof buf, "%.6g", min_s4_speedup);
    out << "  \"s4_speedup\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", speedup_bar);
    out << "  \"s4_speedup_bar\": " << buf << ",\n";
    out << "  \"s4_speedup_bar_active\": " << (bar_active ? "true" : "false")
        << ",\n";
    out << "  \"meets_s4_speedup_bar\": " << (meets_bar ? "true" : "false")
        << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", lanes4_s);
    out << "  \"dp_lanes4_s\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", lanes8_s);
    out << "  \"dp_lanes8_s\": " << buf << ",\n";
    out << "  \"wider_lanes_win\": "
        << (lanes8_s < lanes4_s ? "true" : "false") << ",\n";
    out << "  \"bit_identical\": " << (all_identical ? "true" : "false")
        << "\n}\n";
    std::printf("summary written to %s\n", json_path.c_str());
  }

  return all_identical && meets_bar ? 0 : 2;
}

}  // namespace
}  // namespace stagg

int main(int argc, char** argv) { return stagg::run(argc, argv); }
