// Bench: staged parse -> seal -> advance ingest pipeline (IngestPipeline)
// vs the synchronous decode + ingest + advance loop over the same CSV
// event stream.
//
// The synchronous baseline does everything on one thread per round:
// decode the round's text, ingest the records, seal, advance the
// sessions.  The pipeline decodes the round across P parse shards while
// the seal worker appends earlier batches and the advance worker runs the
// sessions over already-sealed watermarks — so parse, seal and advance
// overlap across rounds, connected by bounded queues.
//
// Measured: sustained events/s from arrival (text handed to the ingest
// path) to advanced (sessions updated at the round's sealed watermark),
// plus per-round arrival->result latency (p50/p99).  Results are checked
// bit-identical between both paths, and a short throttled run (advance
// worker slowed artificially) asserts the backpressure property: queue
// depth stays at or under the configured capacities while producers
// block.  Acceptance bar: pipelined throughput >= 1.5x the synchronous
// loop at 4 parse shards.  --smoke emits BENCH_ingest.json for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/bench_info.hpp"
#include "common/cli.hpp"
#include "common/stopwatch.hpp"
#include "core/ingest_pipeline.hpp"
#include "core/session_manager.hpp"
#include "hierarchy/hierarchy.hpp"
#include "trace/stream_decode.hpp"
#include "workload/stream_split.hpp"
#include "workload/synthetic.hpp"

namespace stagg {
namespace {

bool results_equal(const std::vector<AggregationResult>& a,
                   const std::vector<AggregationResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k].optimal_pic != b[k].optimal_pic ||
        a[k].partition.signature() != b[k].partition.signature() ||
        a[k].measures.gain != b[k].measures.gain ||
        a[k].measures.loss != b[k].measures.loss) {
      return false;
    }
  }
  return true;
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

struct RoundText {
  TimeNs frontier = 0;
  std::string text;
  std::uint64_t events = 0;
};

int run(int argc, const char* const* argv) {
  Cli cli("bench_ingest",
          "staged parse -> seal -> advance ingest pipeline vs the "
          "synchronous decode + ingest + advance loop: sustained events/s "
          "and arrival->result latency over one CSV event stream");
  cli.option("levels", "2", "hierarchy depth of the balanced platform");
  cli.option("fanout", "4", "children per node (leaves = fanout^levels)");
  cli.option("states", "4", "number of states |X|");
  cli.option("slices", "32", "window slice count |T|");
  cli.option("shards", "4", "parse workers / text shards P");
  cli.option("rounds", "", "measured ingest rounds (default 16, smoke 10)");
  // 0.3 ms mean durations make decode the dominant stage (~65% of the
  // synchronous cost), which is the regime the pipeline is built for.
  cli.option("mean-ms", "0.3", "mean state duration in ms (event-rate knob)");
  cli.option("lanes", "4", "lane width of the DP waves (1-8)");
  cli.option("json", "", "write a JSON summary to this path");
  cli.flag("smoke", "reduced model + BENCH_ingest.json (CI mode)");
  if (!cli.parse(argc, argv)) return 1;

  const bool smoke = cli.get_flag("smoke");
  std::int32_t levels = static_cast<std::int32_t>(cli.get_int("levels"));
  std::int32_t fanout = static_cast<std::int32_t>(cli.get_int("fanout"));
  std::int32_t states = static_cast<std::int32_t>(cli.get_int("states"));
  std::int32_t slices = static_cast<std::int32_t>(cli.get_int("slices"));
  const auto shards = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("shards")));
  if (smoke) {
    levels = 2;
    fanout = 4;
    states = 4;
    slices = 32;
  }
  const int rounds =
      cli.get("rounds").empty()
          ? (smoke ? 10 : 16)
          : static_cast<int>(std::max<std::int64_t>(2, cli.get_int("rounds")));
  const double mean_ms = std::max(0.05, cli.get_double("mean-ms"));
  std::string json_path = cli.get("json");
  if (smoke && json_path.empty()) json_path = "BENCH_ingest.json";

  const Hierarchy h = make_balanced_hierarchy(levels, fanout);
  const TimeNs dt = seconds(0.5);

  SlidingWindowOptions opt;
  opt.aggregation.max_lanes = static_cast<std::size_t>(
      std::clamp<std::int64_t>(cli.get_int("lanes"), 1,
                               static_cast<std::int64_t>(kMaxDpLanes)));

  // Two staggered sessions paced by one stream (the live-analysis shape).
  const TimeGrid window_a(0, dt * slices, slices);
  const TimeGrid window_b(dt, dt + dt * (slices * 3 / 4), slices * 3 / 4);
  const TimeNs horizon = std::max(window_a.end(), window_b.end()) + dt;
  const double span_s = to_seconds(horizon + dt * (rounds + 2));

  const auto programmer = [&](LeafId leaf) {
    ResourceProgram p;
    StatePattern pattern;
    for (std::int32_t x = 0; x < states; ++x) {
      const double mean =
          mean_ms * 1e-3 * (1.0 + 0.5 * static_cast<double>((leaf + x) % 3));
      pattern.elements.push_back({"state" + std::to_string(x), mean, 0.35});
    }
    p.phases.push_back({0.0, span_s, std::move(pattern)});
    return p;
  };
  Trace whole = generate_trace(h, programmer, 0x117E57);
  whole.seal();

  const auto make_manager = [&] {
    TraceSplit split = split_trace_at(whole, horizon);
    split.initial.seal();
    auto manager = std::make_unique<SessionManager>(h, split.initial.store());
    SessionSpec a;
    a.window = window_a;
    a.ps = {0.25, 0.75};
    a.options = opt;
    manager->add_session(a);
    SessionSpec b;
    b.window = window_b;
    b.ps = {0.5};
    b.options = opt;
    manager->add_session(b);
    return manager;
  };

  // Pre-render the stream as per-round CSV text so both paths pay decode,
  // not rendering.
  std::vector<RoundText> stream;
  std::uint64_t total_events = 0;
  {
    TraceSplit split = split_trace_at(whole, horizon);
    std::size_t next = 0;
    for (int round = 0; round < rounds; ++round) {
      RoundText rt;
      rt.frontier = horizon + dt * (round + 1);
      for (; next < split.future.size() &&
             split.future[next].second.begin < rt.frontier;
           ++next) {
        const auto& [r, s] = split.future[next];
        rt.text += "STATE," + whole.resource_path(r) + "," +
                   whole.states().name(s.state) + "," +
                   std::to_string(s.begin) + "," + std::to_string(s.end) +
                   "\n";
        ++rt.events;
      }
      total_events += rt.events;
      stream.push_back(std::move(rt));
    }
  }

  std::printf("=== Staged ingest pipeline (parse -> seal -> advance) ===\n\n");
  std::printf(
      "model: |S| = %zu leaves, |T| = %d, |X| = %d, W = %zu, P = %zu parse "
      "shards, %d rounds, %.2f M events\n\n",
      h.leaf_count(), slices, states, opt.aggregation.max_lanes, shards,
      rounds, static_cast<double>(total_events) / 1e6);

  // ---- Synchronous loop: decode + ingest + ingest_round per round. --------
  auto sync = make_manager();
  std::vector<double> sync_latencies_ms;
  double sync_s = 0.0;
  {
    // Same resolution tables the pipeline's parse workers use.
    const TraceStore& store = sync->store();
    Stopwatch total;
    for (const RoundText& rt : stream) {
      Stopwatch w;
      std::vector<EventRecord> records;
      records.reserve(rt.events);
      TextTraceDecoder decoder(TextTraceFormat::kCsv, "<bench>");
      const DecodedTextSink sink = [&](const DecodedTextRecord& rec) {
        EventRecord ev;
        ev.resource = store.find_resource(rec.resource);
        ev.state = *store.states().find(rec.state);
        ev.begin = rec.begin;
        ev.end = rec.end;
        records.push_back(ev);
      };
      decoder.feed(rt.text, sink);
      decoder.finish(sink);
      sync->ingest(records);
      sync->ingest_round(rt.frontier);
      sync_latencies_ms.push_back(w.seconds() * 1e3);
    }
    sync_s = total.seconds();
  }
  const double sync_rate =
      static_cast<double>(total_events) / std::max(sync_s, 1e-12);

  // ---- Pipelined: submit text, barrier per round, overlap everything. -----
  auto piped = make_manager();
  std::vector<double> pipe_latencies_ms;
  double pipe_s = 0.0;
  IngestPipelineStats pipe_stats;
  {
    using Clock = std::chrono::steady_clock;
    std::vector<Clock::time_point> arrivals(stream.size());
    std::vector<Clock::time_point> completions(stream.size());
    std::size_t completed = 0;
    IngestPipelineOptions popt;
    popt.parse_workers = shards;
    popt.on_advance = [&](TimeNs) {
      completions[completed++] = Clock::now();
    };
    IngestPipeline pipeline(*piped, popt);
    Stopwatch total;
    for (std::size_t k = 0; k < stream.size(); ++k) {
      arrivals[k] = Clock::now();
      pipeline.submit_text(stream[k].text);
      pipeline.advance_watermark(stream[k].frontier);
    }
    pipeline.wait_until_advanced(stream.back().frontier);
    pipe_s = total.seconds();
    pipeline.close();
    pipe_stats = pipeline.stats();
    for (std::size_t k = 0; k < stream.size(); ++k) {
      pipe_latencies_ms.push_back(
          std::chrono::duration<double>(completions[k] - arrivals[k])
              .count() *
          1e3);
    }
  }
  const double pipe_rate =
      static_cast<double>(total_events) / std::max(pipe_s, 1e-12);
  const double speedup = pipe_rate / std::max(sync_rate, 1e-12);
  // The 1.5x bar assumes the stages can actually overlap: P parse shards
  // plus the seal and advance workers need their own hardware threads.
  // On smaller machines the bar is waived (reported, never silently
  // passed) and the run still gates on bit-identity and backpressure.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const bool bar_active = hw >= shards + 2;
  const double speedup_bar = 1.5;
  const bool meets_speedup_bar = !bar_active || speedup >= speedup_bar;

  bool equivalent = piped->watermark() == sync->watermark();
  for (std::size_t i = 0; i < sync->session_count(); ++i) {
    equivalent = equivalent && results_equal(piped->session(i).results(),
                                             sync->session(i).results());
  }

  // ---- Throttled run: backpressure must bound depth, not drop. ------------
  std::uint64_t throttled_blocked = 0;
  bool depth_bounded = true;
  std::uint64_t throttled_sealed = 0;
  std::uint64_t throttled_submitted = 0;
  {
    auto throttled = make_manager();
    IngestPipelineOptions popt;
    popt.parse_workers = shards;
    popt.shard_queue_capacity = 2;
    popt.batch_queue_capacity = 4;
    popt.watermark_queue_capacity = 1;
    popt.max_batch_records = 256;
    popt.on_advance = [](TimeNs) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    };
    IngestPipeline pipeline(*throttled, popt);
    const int throttle_rounds = std::min<int>(rounds, 8);
    for (int k = 0; k < throttle_rounds; ++k) {
      pipeline.submit_text(stream[static_cast<std::size_t>(k)].text);
      pipeline.advance_watermark(
          stream[static_cast<std::size_t>(k)].frontier);
      throttled_submitted += stream[static_cast<std::size_t>(k)].events;
    }
    pipeline.close();
    const IngestPipelineStats st = pipeline.stats();
    throttled_sealed = st.records_sealed;
    throttled_blocked = st.batch_queue.blocked_pushes +
                        st.watermark_queue.blocked_pushes;
    depth_bounded = st.batch_queue.high_water <= st.batch_queue.capacity &&
                    st.watermark_queue.high_water <=
                        st.watermark_queue.capacity;
    for (const BoundedQueueStats& q : st.shard_queues) {
      throttled_blocked += q.blocked_pushes;
      depth_bounded = depth_bounded && q.high_water <= q.capacity;
    }
    depth_bounded = depth_bounded && throttled_sealed == throttled_submitted;
  }

  std::printf("synchronous loop    : %8.0f kev/s  (p50 %6.2f ms, p99 %6.2f "
              "ms per round)\n",
              sync_rate / 1e3, percentile(sync_latencies_ms, 0.5),
              percentile(sync_latencies_ms, 0.99));
  std::printf("pipelined (P = %zu)  : %8.0f kev/s  (p50 %6.2f ms, p99 %6.2f "
              "ms arrival->result)\n",
              shards, pipe_rate / 1e3, percentile(pipe_latencies_ms, 0.5),
              percentile(pipe_latencies_ms, 0.99));
  if (bar_active) {
    std::printf("speedup             : %.2fx  (bar >= %.1fx at %zu shards)  "
                "[%s]\n",
                speedup, speedup_bar, shards,
                meets_speedup_bar ? "ok" : "MISS");
  } else {
    std::printf("speedup             : %.2fx  (bar >= %.1fx waived: %u "
                "hardware threads cannot overlap %zu parse shards + seal + "
                "advance)\n",
                speedup, speedup_bar, hw, shards);
  }
  std::printf("batch queue         : high water %zu / %zu, %llu blocked "
              "pushes in measured run\n",
              pipe_stats.batch_queue.high_water,
              pipe_stats.batch_queue.capacity,
              static_cast<unsigned long long>(
                  pipe_stats.batch_queue.blocked_pushes));
  std::printf("throttled consumer  : depth bounded %s, %llu blocked pushes, "
              "%llu/%llu events sealed\n",
              depth_bounded ? "yes" : "NO (BUG)",
              static_cast<unsigned long long>(throttled_blocked),
              static_cast<unsigned long long>(throttled_sealed),
              static_cast<unsigned long long>(throttled_submitted));
  std::printf("equivalence         : %s\n\n",
              equivalent ? "bit-identical to the synchronous loop"
                         : "MISMATCH (BUG)");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    char buf[64];
    out << "{\n  \"bench\": \"ingest\",\n";
    out << bench_info_json();
    out << "  \"model\": {\"leaves\": " << h.leaf_count()
        << ", \"slices\": " << slices << ", \"states\": " << states
        << "},\n";
    out << "  \"rounds\": " << rounds << ",\n";
    out << "  \"events\": " << total_events << ",\n";
    out << "  \"parse_shards\": " << shards << ",\n";
    out << "  \"lane_width\": " << opt.aggregation.max_lanes << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", sync_rate);
    out << "  \"sync_events_per_s\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", pipe_rate);
    out << "  \"pipelined_events_per_s\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", speedup);
    out << "  \"speedup\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", speedup_bar);
    out << "  \"speedup_bar\": " << buf << ",\n";
    out << "  \"speedup_bar_active\": " << (bar_active ? "true" : "false")
        << ",\n";
    out << "  \"meets_speedup_bar\": "
        << (meets_speedup_bar ? "true" : "false") << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g",
                  percentile(sync_latencies_ms, 0.5));
    out << "  \"sync_latency_p50_ms\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g",
                  percentile(sync_latencies_ms, 0.99));
    out << "  \"sync_latency_p99_ms\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g",
                  percentile(pipe_latencies_ms, 0.5));
    out << "  \"pipelined_latency_p50_ms\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g",
                  percentile(pipe_latencies_ms, 0.99));
    out << "  \"pipelined_latency_p99_ms\": " << buf << ",\n";
    out << "  \"batch_queue_high_water\": "
        << pipe_stats.batch_queue.high_water << ",\n";
    out << "  \"batch_queue_capacity\": "
        << pipe_stats.batch_queue.capacity << ",\n";
    out << "  \"throttled_blocked_pushes\": " << throttled_blocked << ",\n";
    out << "  \"depth_bounded\": " << (depth_bounded ? "true" : "false")
        << ",\n";
    out << "  \"bit_identical\": " << (equivalent ? "true" : "false")
        << "\n";
    out << "}\n";
    std::printf("summary written to %s\n", json_path.c_str());
  }

  return equivalent && meets_speedup_bar && depth_bounded ? 0 : 2;
}

}  // namespace
}  // namespace stagg

int main(int argc, char** argv) { return stagg::run(argc, argv); }
