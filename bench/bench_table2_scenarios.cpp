// Reproduces Table II: scenario descriptions (event count, trace size) and
// the three pipeline timings (trace reading, microscopic description,
// aggregation) for cases A-D.
//
// The paper ran full-size traces (3.8M - 218M events); by default this
// bench scales the event rate to 1/64 so it completes in minutes on a
// laptop, and prints the paper's numbers next to the measured ones.  Set
// STAGG_SCALE=1 for full-size runs (needs ~10 GB of disk and patience —
// the paper's own preprocess took 50 min for case C).
#include <cstdio>
#include <filesystem>
#include <string>

#include "common/cli.hpp"
#include "common/stopwatch.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/aggregator.hpp"
#include "model/builder.hpp"
#include "trace/binary_io.hpp"
#include "workload/scenarios.hpp"

namespace stagg {
namespace {

namespace fs = std::filesystem;

struct Measured {
  std::uint64_t events = 0;
  std::uint64_t trace_bytes = 0;
  double read_s = 0.0;
  double micro_s = 0.0;
  double agg_s = 0.0;
  std::size_t areas = 0;
};

Measured run_scenario(const ScenarioSpec& spec, double scale,
                      const std::string& trace_path) {
  Measured m;

  std::fprintf(stderr, "[table2] generating case %s at scale %g ...\n",
               spec.id.c_str(), scale);
  GeneratedScenario g = generate_scenario(spec, scale);
  m.events = g.trace.event_count();
  m.trace_bytes = write_binary_trace(g.trace, trace_path);

  // 1. Trace reading (file -> in-memory trace), as the paper's first row.
  Stopwatch read_watch;
  Trace loaded = read_binary_trace(trace_path);
  m.read_s = read_watch.seconds();

  // 2. Microscopic description: build d_x(s,t) on 30 slices (paper §V).
  Stopwatch micro_watch;
  const MicroscopicModel model =
      build_model(loaded, *g.hierarchy, {.slice_count = 30});
  m.micro_s = micro_watch.seconds();

  // 3. Aggregation: cube + DP at one representative p.
  Stopwatch agg_watch;
  SpatiotemporalAggregator agg(model);
  const AggregationResult r = agg.run(0.5);
  m.agg_s = agg_watch.seconds();
  m.areas = r.partition.size();

  fs::remove(trace_path);
  return m;
}

int run() {
  const double scale = env_double("STAGG_SCALE", 1.0 / 64.0);
  const auto dir = fs::temp_directory_path() / "stagg_table2";
  fs::create_directories(dir);

  std::printf(
      "=== Table II: scenarios description and execution times ===\n"
      "paper hardware: Xeon E3-1225v3, 32 GB; our run: event-rate scale %g\n"
      "(events and sizes scale with it; paper columns are full-size)\n\n",
      scale);

  TextTable table({"case", "app", "procs", "metric", "paper", "measured"});
  for (const ScenarioSpec& spec : all_scenarios()) {
    const std::string path = (dir / ("case" + spec.id + ".stgt")).string();
    const Measured m = run_scenario(spec, scale, path);

    const auto row = [&](const std::string& metric, const std::string& paper,
                         const std::string& measured) {
      table.add_row({spec.id, spec.application, std::to_string(spec.processes),
                     metric, paper, measured});
    };
    row("events", with_thousands(static_cast<long long>(spec.paper.events)),
        with_thousands(static_cast<long long>(m.events)));
    row("trace size",
        format_bytes(static_cast<unsigned long long>(spec.paper.trace_mb *
                                                     1e6)),
        format_bytes(m.trace_bytes));
    row("trace reading", format_seconds(spec.paper.read_s),
        format_seconds(m.read_s));
    row("microscopic descr.", format_seconds(spec.paper.microscopic_s),
        format_seconds(m.micro_s));
    row("aggregation", format_seconds(spec.paper.aggregation_s),
        format_seconds(m.agg_s));
    table.add_rule();

    std::fprintf(stderr, "[table2] case %s done (%zu areas at p=0.5)\n",
                 spec.id.c_str(), m.areas);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "shape checks reproduced from the paper:\n"
      "  - aggregation is orders of magnitude cheaper than trace reading\n"
      "    and microscopic description at every scale;\n"
      "  - costs grow with the event count (cases C/D >> B >> A).\n");
  fs::remove_all(dir);
  return 0;
}

}  // namespace
}  // namespace stagg

int main() { return stagg::run(); }
