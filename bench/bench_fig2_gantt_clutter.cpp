// Reproduces Figure 2: the Gantt chart of case A collapses even on a
// temporal subset (1/7) of the trace.
//
// The paper shows the clutter visually; this bench quantifies it: number
// of graphical objects vs available pixels, fraction of sub-pixel objects,
// overdraw per pixel column — for the full trace and for the 1/7 subset
// the figure uses — and contrasts it with the aggregated overview's entity
// count on the same workload.
#include <cstdio>

#include "common/cli.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/aggregator.hpp"
#include "model/builder.hpp"
#include "viz/gantt.hpp"
#include "viz/spatiotemporal_view.hpp"
#include "workload/scenarios.hpp"

namespace stagg {
namespace {

void print_stats(const char* label, const GanttStats& st, double width) {
  std::printf("%-22s objects=%s  sub-pixel=%s (%.1f%%)  "
              "mean/px-col=%.1f  max/px-col=%.0f  mean-width=%.3fpx\n",
              label,
              with_thousands(static_cast<long long>(st.objects_total)).c_str(),
              with_thousands(static_cast<long long>(st.objects_subpixel))
                  .c_str(),
              st.subpixel_fraction() * 100.0, st.mean_objects_per_column,
              st.max_objects_per_column, st.mean_object_width_px);
  (void)width;
}

int run() {
  const double scale = env_double("STAGG_SCALE", 1.0 / 32.0);

  std::printf("=== Figure 2: Gantt chart clutter on case A ===\n");
  std::printf("canvas: 1600 x 800 px (a typical full-screen window)\n\n");

  GeneratedScenario g = generate_scenario(scenario_a(), scale);

  GanttOptions full;
  full.object_budget = 0;
  const GanttStats full_stats = gantt_stats(g.trace, full);
  print_stats("full trace:", full_stats, full.width_px);

  // The figure draws 1/7 of the trace and is still cluttered; take the
  // subset inside the computation phase (after 2.2 s) as the paper does —
  // a window inside MPI_Init would trivially show 64 solid bars.
  GanttOptions seventh = full;
  seventh.window_begin = g.trace.end() * 4 / 10;
  seventh.window_end = seventh.window_begin + g.trace.end() / 7;
  const GanttStats seventh_stats = gantt_stats(g.trace, seventh);
  print_stats("1/7 subset (Fig. 2):", seventh_stats, seventh.width_px);
  // At the paper's full event rate every object is 1/scale narrower.
  std::printf("%-22s objects~%s  mean-width~%.3fpx (sub-pixel)\n",
              "  at full scale:",
              with_thousands(static_cast<long long>(
                  static_cast<double>(seventh_stats.objects_total) / scale))
                  .c_str(),
              seventh_stats.mean_object_width_px * scale);

  // Render the subset (budgeted) so the artifact exists on disk.
  GanttOptions rendered = seventh;
  rendered.object_budget = 50'000;
  const GanttRendering rendering = render_gantt(g.trace, rendered);
  rendering.svg.save("fig2_gantt_subset.svg");
  std::printf("\nSVG written to fig2_gantt_subset.svg (%s rects drawn, %s "
              "dropped by the object budget)\n",
              with_thousands(static_cast<long long>(
                                 rendering.stats.objects_drawn))
                  .c_str(),
              with_thousands(static_cast<long long>(
                                 rendering.stats.objects_dropped))
                  .c_str());

  // Contrast: the aggregated overview of the same trace.
  const MicroscopicModel model =
      build_model(g.trace, *g.hierarchy, {.slice_count = 30});
  SpatiotemporalAggregator agg(model);
  const AggregationResult r = agg.run(0.25);
  std::printf("\naggregated overview of the same trace: %zu entities "
              "(%.1f%% complexity reduction) — every one legible\n",
              r.partition.size(),
              r.quality.complexity_reduction() * 100.0);

  std::printf("\nreproduced shape: even at 1/7 of the trace the Gantt needs\n"
              "orders of magnitude more objects than pixels columns, with\n"
              "most objects under one pixel — the paper's Fig. 2 argument.\n");
  return 0;
}

}  // namespace
}  // namespace stagg

int main() { return stagg::run(); }
