// Ablation: the intractability argument of §III-E — the exponential
// partition search spaces |H(S)| and |I(T)| against the polynomial number
// of DP cells Algorithm 1 actually evaluates, for the paper's scenarios
// and for worst-case binary hierarchies.
#include <cstdio>

#include "common/table.hpp"
#include "core/brute_force.hpp"
#include "core/counting.hpp"
#include "workload/scenarios.hpp"

namespace stagg {
namespace {

std::string count_str(const PartitionCount& c) {
  char buf[64];
  if (c.saturated || c.exact > (1ull << 53)) {
    std::snprintf(buf, sizeof buf, "2^%.1f", c.log2_value);
  } else {
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(c.exact));
  }
  return buf;
}

int run() {
  std::printf("=== Ablation: search-space sizes vs DP work (§III-E) ===\n\n");

  TextTable table({"hierarchy", "|S| leaves", "nodes", "|H(S)|",
                   "|I(T)| (T=30)", "DP cells (T=30)"});
  const auto add = [&](const char* name, const Hierarchy& h) {
    table.add_row({name, std::to_string(h.leaf_count()),
                   std::to_string(h.node_count()),
                   count_str(count_hierarchy_partitions(h)),
                   count_str(count_interval_partitions(30)),
                   std::to_string(count_dp_cells(h, 30))});
  };

  for (const ScenarioSpec& spec : all_scenarios()) {
    const Hierarchy h = spec.platform.build_hierarchy(spec.processes);
    add(("case " + spec.id + " (" + spec.site + ")").c_str(), h);
  }
  for (const std::int32_t levels : {6, 10, 14}) {
    const Hierarchy h = make_balanced_hierarchy(levels, 2);
    char name[32];
    std::snprintf(name, sizeof name, "binary depth %d", levels);
    add(name, h);
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("worst-case growth base per hierarchy node "
              "(paper: c ~ 1.229): %.4f\n\n",
              binary_tree_growth_base(16));

  // Ground the counts: exhaustive enumeration on small grids agrees with
  // the closed forms, then explodes.
  std::printf("exhaustive enumeration (the algorithm Algorithm 1 replaces):\n");
  const Hierarchy tiny = make_balanced_hierarchy(2, 2);
  for (const std::int32_t slices : {2, 3, 4}) {
    const auto all = enumerate_partitions(tiny, slices);
    std::printf("  4 leaves (binary) x T=%d: %zu distinct partitions, "
                "DP cells: %llu\n",
                slices, all.size(),
                static_cast<unsigned long long>(count_dp_cells(tiny, slices)));
  }
  std::printf("\nreproduced shape: the DP's polynomial cell count replaces a\n"
              "search space that is already astronomical at Table II sizes\n"
              "(case C: ~2^97 spatial partitions times 2^29 temporal ones,\n"
              "before counting the non-product spatiotemporal patterns).\n");
  return 0;
}

}  // namespace
}  // namespace stagg

int main() { return stagg::run(); }
