// Bench: memory-budgeted SessionManager — cold chunks spilled to an
// mmapped file — vs the same N-session run fully resident.
//
// The acceptance shape of the storage-backend layer: with a budget of 25%
// of the all-resident sealed chunk bytes (a trace ~4x the budget), a
// 4-session manager must (a) hold resident chunk bytes at or under the
// budget after *every* round, (b) produce bit-identical results to the
// all-resident run on every round, and (c) keep aggregate advance
// throughput within 1.3x of all-resident (the mmap page-ins ride the page
// cache; streaming a spilled chunk is a sequential scan either way).
//
// Protocol: a synthetic stream drives N staggered sessions.  The
// all-resident manager runs the full ingest+slide schedule first and
// records per-round results and timings; the budgeted manager then
// replays the identical schedule under the cap, and a third leg replays
// it under the cap *with chunk compression* (ChunkCompression::kAuto) —
// the encoded chunks must also hold the budget, stay bit-identical, and
// keep the same <= 1.3x slowdown bar while reporting bytes/interval and
// the achieved compression ratio.  --smoke emits BENCH_spill.json for CI
// trend tracking; exit is non-zero on any violated bar.
#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bench_info.hpp"
#include "common/cli.hpp"
#include "common/stopwatch.hpp"
#include "core/session_manager.hpp"
#include "hierarchy/hierarchy.hpp"
#include "workload/stream_split.hpp"
#include "workload/synthetic.hpp"

namespace stagg {
namespace {

bool results_equal(const std::vector<AggregationResult>& a,
                   const std::vector<AggregationResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k].optimal_pic != b[k].optimal_pic ||
        a[k].partition.signature() != b[k].partition.signature() ||
        a[k].measures.gain != b[k].measures.gain ||
        a[k].measures.loss != b[k].measures.loss) {
      return false;
    }
  }
  return true;
}

struct Spec {
  TimeGrid window;
  std::vector<double> ps;
};

struct RunStats {
  double advance_seconds = 0.0;
  std::size_t resident_chunk_peak = 0;
  std::size_t store_bytes_peak = 0;
  std::size_t store_bytes_final = 0;
  std::size_t intervals_final = 0;
  /// results[round][session]
  std::vector<std::vector<std::vector<AggregationResult>>> results;

  [[nodiscard]] double bytes_per_interval() const noexcept {
    return static_cast<double>(store_bytes_final) /
           static_cast<double>(std::max<std::size_t>(1, intervals_final));
  }
};

int run(int argc, const char* const* argv) {
  Cli cli("bench_spill",
          "memory-budgeted shared-store sessions (on-disk chunk spill, "
          "mmap read-back) vs the same run fully resident");
  cli.option("levels", "2", "hierarchy depth of the balanced platform");
  cli.option("fanout", "4", "children per node (leaves = fanout^levels)");
  cli.option("sessions", "4", "number of concurrent sessions N");
  cli.option("slices", "64", "base window slice count |T|");
  cli.option("states", "5", "number of states |X|");
  cli.option("lanes", "4", "lane width of the DP waves (1-8)");
  cli.option("rounds", "", "measured advance rounds (default 12, smoke 8)");
  cli.option("budget-pct", "25", "resident budget as % of all-resident bytes");
  cli.option("json", "", "write a JSON summary to this path");
  cli.flag("smoke", "reduced model + BENCH_spill.json (CI mode)");
  if (!cli.parse(argc, argv)) return 1;

  const bool smoke = cli.get_flag("smoke");
  std::int32_t levels = static_cast<std::int32_t>(cli.get_int("levels"));
  std::int32_t fanout = static_cast<std::int32_t>(cli.get_int("fanout"));
  std::int32_t slices = static_cast<std::int32_t>(cli.get_int("slices"));
  std::int32_t states = static_cast<std::int32_t>(cli.get_int("states"));
  const auto n_sessions = static_cast<std::size_t>(
      std::max<std::int64_t>(2, cli.get_int("sessions")));
  const double budget_pct = std::clamp<double>(
      static_cast<double>(cli.get_int("budget-pct")), 1.0, 100.0);
  if (smoke) {
    levels = 2;
    fanout = 4;
    slices = 48;
    states = 4;
  }
  const int rounds =
      cli.get("rounds").empty()
          ? (smoke ? 8 : 12)
          : static_cast<int>(std::max<std::int64_t>(2, cli.get_int("rounds")));
  std::string json_path = cli.get("json");
  if (smoke && json_path.empty()) json_path = "BENCH_spill.json";
  const std::string spill_path = "bench_spill.chunks";

  const Hierarchy h = make_balanced_hierarchy(levels, fanout);
  const TimeNs dt = seconds(1.0);
  const double span_s = to_seconds(dt * (slices + rounds + 8));

  const auto programmer = [&](LeafId leaf) {
    ResourceProgram p;
    StatePattern pattern;
    for (std::int32_t x = 0; x < states; ++x) {
      const double mean = 0.02 + 0.015 * ((leaf + x) % 4);
      pattern.elements.push_back({"state" + std::to_string(x), mean, 0.35});
    }
    p.phases.push_back({0.0, span_s, std::move(pattern)});
    return p;
  };
  Trace whole = generate_trace(h, programmer, 0x5B111);
  whole.seal();

  // Session specs: staggered windows, varied |T| and probe sets (same 1 s
  // slice width so one stream paces everyone).
  std::vector<Spec> specs;
  TimeNs max_end = 0;
  for (std::size_t i = 0; i < n_sessions; ++i) {
    const auto t = static_cast<std::int32_t>(std::max<std::int32_t>(
        8, slices - 8 * static_cast<std::int32_t>(i % 3)));
    const TimeNs begin = dt * static_cast<TimeNs>(i % 4);
    const TimeGrid window(begin, begin + dt * t, t);
    std::vector<double> ps;
    for (std::size_t k = 0; k <= i % 3 + 1; ++k) {
      ps.push_back(static_cast<double>(k + i) /
                   static_cast<double>(i % 3 + n_sessions));
    }
    specs.push_back({window, std::move(ps)});
    max_end = std::max(max_end, window.end());
  }

  SlidingWindowOptions opt;
  opt.aggregation.max_lanes = static_cast<std::size_t>(
      std::clamp<std::int64_t>(cli.get_int("lanes"), 1,
                               static_cast<std::int64_t>(kMaxDpLanes)));

  std::printf("=== Memory-budgeted spill vs all-resident sessions ===\n\n");
  std::printf(
      "model: |S| = %zu leaves, base |T| = %d, |X| = %d, N = %zu sessions, "
      "W = %zu, %d rounds, budget %.0f%%\n\n",
      h.leaf_count(), slices, states, n_sessions, opt.aggregation.max_lanes,
      rounds, budget_pct);

  const TimeNs horizon = max_end + dt;
  const std::vector<std::pair<ResourceId, StateInterval>> future =
      split_trace_at(whole, horizon).future;

  // One schedule, replayed three times: budget_bytes == 0 means
  // all-resident; the compression policy is applied before any session
  // attaches so even the initial runs fold from encoded chunks.
  const auto run_schedule = [&](std::size_t budget_bytes,
                                ChunkCompression compression) -> RunStats {
    Trace initial = split_trace_at(whole, horizon).initial;
    initial.seal();
    SessionManager manager(h, initial.store());
    // Compression first: the initial chunks re-encode while still
    // resident, so the budget spill that follows writes encoded records
    // (spilling raw first would pin the bulk of the trace as raw-mapped —
    // set_compression never rewrites already-spilled chunks).
    if (compression != ChunkCompression::kNone) {
      manager.set_compression(compression);
    }
    if (budget_bytes != 0) {
      std::remove(spill_path.c_str());
      manager.set_memory_budget(budget_bytes, spill_path);
    }
    for (const Spec& spec : specs) {
      SessionSpec s;
      s.window = spec.window;
      s.ps = spec.ps;
      s.options = opt;
      manager.add_session(s);
    }
    RunStats stats;
    std::size_t next = 0;
    TimeNs frontier = horizon;
    for (int round = 0; round < rounds; ++round) {
      frontier += dt;
      Stopwatch w;
      for (; next < future.size() && future[next].second.begin < frontier;
           ++next) {
        const auto& [r, s] = future[next];
        manager.append(r, s.state, s.begin, s.end);
      }
      manager.slide_all(1);
      stats.advance_seconds += w.seconds();
      stats.resident_chunk_peak = std::max(stats.resident_chunk_peak,
                                           manager.resident_chunk_bytes());
      stats.store_bytes_peak =
          std::max(stats.store_bytes_peak, manager.store_bytes());
      auto& round_results = stats.results.emplace_back();
      for (std::size_t i = 0; i < n_sessions; ++i) {
        round_results.push_back(manager.session(i).results());
      }
    }
    stats.store_bytes_final = manager.store_bytes();
    stats.intervals_final =
        static_cast<std::size_t>(manager.store().state_count());
    return stats;
  };

  const RunStats resident = run_schedule(0, ChunkCompression::kNone);
  const auto budget = static_cast<std::size_t>(
      static_cast<double>(resident.resident_chunk_peak) * budget_pct / 100.0);
  const RunStats budgeted = run_schedule(budget, ChunkCompression::kNone);
  const RunStats compressed = run_schedule(budget, ChunkCompression::kAuto);
  std::remove(spill_path.c_str());

  bool equivalent = true;
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < n_sessions; ++i) {
      const auto& oracle = resident.results[static_cast<std::size_t>(round)][i];
      equivalent =
          equivalent &&
          results_equal(oracle,
                        budgeted.results[static_cast<std::size_t>(round)][i]) &&
          results_equal(
              oracle, compressed.results[static_cast<std::size_t>(round)][i]);
    }
  }
  const bool within_budget = budgeted.resident_chunk_peak <= budget &&
                             compressed.resident_chunk_peak <= budget;
  const double trace_over_budget =
      static_cast<double>(resident.resident_chunk_peak) /
      static_cast<double>(std::max<std::size_t>(1, budget));
  const double total_advances =
      static_cast<double>(n_sessions) * static_cast<double>(rounds);
  const double resident_rate =
      total_advances / std::max(resident.advance_seconds, 1e-12);
  const double budgeted_rate =
      total_advances / std::max(budgeted.advance_seconds, 1e-12);
  const double compressed_rate =
      total_advances / std::max(compressed.advance_seconds, 1e-12);
  const double slowdown = resident_rate / std::max(budgeted_rate, 1e-12);
  const double compressed_slowdown =
      resident_rate / std::max(compressed_rate, 1e-12);
  const double slowdown_bar = 1.3;
  const bool meets_throughput_bar =
      slowdown <= slowdown_bar && compressed_slowdown <= slowdown_bar;
  const double compression_ratio =
      resident.bytes_per_interval() /
      std::max(compressed.bytes_per_interval(), 1e-12);

  std::printf("trace chunk bytes    : %.2f MiB (peak, all-resident) = %.2fx "
              "the budget\n",
              resident.resident_chunk_peak / 1048576.0, trace_over_budget);
  std::printf("resident under budget: %.2f MiB peak vs %.2f MiB budget  "
              "[%s]\n",
              budgeted.resident_chunk_peak / 1048576.0, budget / 1048576.0,
              within_budget ? "ok" : "MISS");
  std::printf("advance throughput   : resident %.1f slides/s | budgeted "
              "%.1f slides/s (%.2fx) | budgeted+compressed %.1f slides/s "
              "(%.2fx)  (bar <= %.1fx)  [%s]\n",
              resident_rate, budgeted_rate, slowdown, compressed_rate,
              compressed_slowdown, slowdown_bar,
              meets_throughput_bar ? "ok" : "MISS");
  std::printf("bytes per interval   : raw %.2f B | compressed %.2f B  =>  "
              "%.2fx compression\n",
              resident.bytes_per_interval(), compressed.bytes_per_interval(),
              compression_ratio);
  std::printf("equivalence          : %s\n\n",
              equivalent ? "bit-identical on every round"
                         : "MISMATCH (BUG)");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    char buf[64];
    out << "{\n  \"bench\": \"spill\",\n";
    out << bench_info_json();
    out << "  \"model\": {\"leaves\": " << h.leaf_count()
        << ", \"base_slices\": " << slices << ", \"states\": " << states
        << "},\n";
    out << "  \"sessions\": " << n_sessions << ",\n";
    out << "  \"lane_width\": " << opt.aggregation.max_lanes << ",\n";
    out << "  \"rounds\": " << rounds << ",\n";
    out << "  \"budget_bytes\": " << budget << ",\n";
    out << "  \"resident_chunk_bytes_all_resident\": "
        << resident.resident_chunk_peak << ",\n";
    out << "  \"resident_chunk_bytes_budgeted_peak\": "
        << budgeted.resident_chunk_peak << ",\n";
    out << "  \"resident_chunk_bytes_compressed_peak\": "
        << compressed.resident_chunk_peak << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", trace_over_budget);
    out << "  \"trace_over_budget\": " << buf << ",\n";
    out << "  \"within_budget_every_round\": "
        << (within_budget ? "true" : "false") << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", resident_rate);
    out << "  \"resident_slides_per_s\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", budgeted_rate);
    out << "  \"budgeted_slides_per_s\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", compressed_rate);
    out << "  \"compressed_slides_per_s\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", slowdown);
    out << "  \"slowdown\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", compressed_slowdown);
    out << "  \"compressed_slowdown\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", slowdown_bar);
    out << "  \"slowdown_bar\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", resident.bytes_per_interval());
    out << "  \"raw_bytes_per_interval\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", compressed.bytes_per_interval());
    out << "  \"compressed_bytes_per_interval\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", compression_ratio);
    out << "  \"compression_ratio\": " << buf << ",\n";
    out << "  \"equivalent\": " << (equivalent ? "true" : "false") << "\n";
    out << "}\n";
    std::printf("summary written to %s\n", json_path.c_str());
  }

  return equivalent && within_budget && meets_throughput_bar ? 0 : 2;
}

}  // namespace
}  // namespace stagg

int main(int argc, char** argv) { return stagg::run(argc, argv); }
