// Bench: incremental sliding-window re-aggregation vs from-scratch runs.
//
// A production monitoring session re-aggregates a moving window every few
// seconds; between two advances only a small time suffix of the window
// changed.  The batch path pays the full pipeline each time — model fold,
// cube, O(|S|·|T|²·|X|) measure pass, O(|S|·|T|³) DP sweep.  The
// incremental session (SlidingWindowSession + run_incremental) relocates
// every translation-invariant structure by column shift and recomputes
// only the cells whose triangle column intersects the dirty suffix, so
// its cost scales with the dirty fraction, not the window.
//
// Protocol: a 64-leaf synthetic MPI trace streams into a |T| = 96 session;
// for each dirty fraction (slide distance k => k/|T| dirty columns) the
// bench alternates
//   - an incremental advance: deliver staged events + session.slide(k),
//   - a from-scratch oracle over the very same new window: model fold +
//     aggregator construction + run_many (what a non-incremental service
//     would execute),
// timing both and asserting bit-identical results on every advance.  The
// headline number is the speedup at <= 10% dirty columns; the acceptance
// bar is >= 5x.  --smoke runs a reduced configuration and emits
// BENCH_incremental.json for CI trend tracking.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/bench_info.hpp"
#include "common/cli.hpp"
#include "common/stopwatch.hpp"
#include "core/sliding_window.hpp"
#include "hierarchy/hierarchy.hpp"
#include "model/builder.hpp"
#include "workload/synthetic.hpp"

namespace stagg {
namespace {

struct FractionResult {
  std::int32_t dirty_slices = 0;
  double dirty_fraction = 0.0;
  int advances = 0;
  double incremental_s = 0.0;  ///< mean per advance
  double scratch_s = 0.0;      ///< mean per advance
  double speedup = 0.0;
  bool equivalent = true;
};

bool results_equal(const std::vector<AggregationResult>& a,
                   const std::vector<AggregationResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k].optimal_pic != b[k].optimal_pic ||
        a[k].partition.signature() != b[k].partition.signature() ||
        a[k].measures.gain != b[k].measures.gain ||
        a[k].measures.loss != b[k].measures.loss) {
      return false;
    }
  }
  return true;
}

int run(int argc, const char* const* argv) {
  Cli cli("bench_incremental",
          "sliding-window incremental re-aggregation vs from-scratch "
          "run_many at several dirty-column fractions");
  cli.option("levels", "3", "hierarchy depth of the balanced platform");
  cli.option("fanout", "4", "children per node (leaves = fanout^levels)");
  cli.option("slices", "96", "window slice count |T|");
  cli.option("states", "6", "number of states |X|");
  cli.option("probes", "4", "number of p values per advance");
  cli.option("lanes", "4", "lane width of the DP waves (1-8)");
  cli.option("reps", "6", "advances measured per dirty fraction");
  cli.option("json", "", "write a JSON summary to this path");
  cli.flag("smoke", "reduced model + BENCH_incremental.json (CI mode)");
  if (!cli.parse(argc, argv)) return 1;

  const bool smoke = cli.get_flag("smoke");
  std::int32_t levels = static_cast<std::int32_t>(cli.get_int("levels"));
  std::int32_t fanout = static_cast<std::int32_t>(cli.get_int("fanout"));
  std::int32_t slices = static_cast<std::int32_t>(cli.get_int("slices"));
  std::int32_t states = static_cast<std::int32_t>(cli.get_int("states"));
  if (smoke) {
    levels = 2;
    fanout = 4;
    slices = 48;
    states = 4;
  }
  std::string json_path = cli.get("json");
  if (smoke && json_path.empty()) json_path = "BENCH_incremental.json";
  const auto reps = static_cast<int>(std::max<std::int64_t>(
      1, cli.get_int("reps")));
  const auto n_probes = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("probes")));

  const Hierarchy h = make_balanced_hierarchy(levels, fanout);
  const TimeNs dt = seconds(1.0);
  const TimeNs window_span = dt * slices;

  // Dirty fractions: ~1%, ~5% and the <= 10% acceptance point.
  const std::vector<std::int32_t> dirty_slices = {
      std::max(1, slices / 96), std::max(1, slices / 20),
      std::max(1, slices / 10 - 1)};
  // Stream span: warmup + all measured advances, with slack.
  std::int32_t total_slide = 4;
  for (const std::int32_t k : dirty_slices) total_slide += k * reps;
  const double span_s = to_seconds(window_span + dt * (total_slide + 8));

  // Synthetic MPI-ish workload cycling `states` states with heterogeneous
  // means so the aggregation has real structure at every window.
  const auto programmer = [&](LeafId leaf) {
    ResourceProgram p;
    StatePattern pattern;
    for (std::int32_t x = 0; x < states; ++x) {
      const double mean = 0.02 + 0.015 * ((leaf + x) % 4);
      pattern.elements.push_back(
          {"state" + std::to_string(x), mean, 0.35});
    }
    p.phases.push_back({0.0, span_s, std::move(pattern)});
    return p;
  };
  Trace full = generate_trace(h, programmer, 0xC0FFEE);
  full.seal();

  // Initial window trace + time-ordered future stream.
  Trace initial;
  for (const auto& name : full.states().names()) {
    (void)initial.states().intern(name);
  }
  std::vector<std::pair<ResourceId, StateInterval>> future;
  for (ResourceId r = 0; r < static_cast<ResourceId>(full.resource_count());
       ++r) {
    initial.add_resource(full.resource_path(r));
    for (const auto& s : full.intervals(r)) {
      if (s.begin < window_span) {
        initial.add_state(r, s.state, s.begin, s.end);
      } else {
        future.emplace_back(r, s);
      }
    }
  }
  std::sort(future.begin(), future.end(), [](const auto& a, const auto& b) {
    if (a.second.begin != b.second.begin) {
      return a.second.begin < b.second.begin;
    }
    if (a.first != b.first) return a.first < b.first;
    return a.second.end < b.second.end;
  });

  std::vector<double> ps;
  for (std::size_t k = 0; k < n_probes; ++k) {
    ps.push_back(n_probes == 1
                     ? 0.5
                     : static_cast<double>(k) /
                           static_cast<double>(n_probes - 1));
  }

  SlidingWindowOptions opt;
  opt.aggregation.max_lanes = static_cast<std::size_t>(
      std::clamp<std::int64_t>(cli.get_int("lanes"), 1,
                               static_cast<std::int64_t>(kMaxDpLanes)));

  std::printf("=== Incremental sliding-window re-aggregation ===\n\n");
  std::printf("model: |S| = %zu leaves (%zu nodes), |T| = %d, |X| = %d, "
              "%zu probes, W = %zu, %d advances per fraction\n\n",
              h.leaf_count(), h.node_count(), slices, states, ps.size(),
              opt.aggregation.max_lanes, reps);

  Stopwatch setup_watch;
  SlidingWindowSession session(h, std::move(initial),
                               TimeGrid(0, window_span, slices), ps, opt);
  const double initial_s = setup_watch.seconds();
  std::printf("initial window      : %s (full build + retained first run)\n",
              format_seconds(initial_s).c_str());

  std::size_t next = 0;
  const auto deliver = [&](TimeNs horizon) {
    while (next < future.size() && future[next].second.begin < horizon) {
      const auto& [r, s] = future[next];
      session.append(r, s.state, s.begin, s.end);
      ++next;
    }
  };
  const auto scratch_run = [&]() -> std::pair<double, bool> {
    // What a non-incremental service pays for the same window: fold the
    // retained trace into a fresh model, build a fresh aggregator (cube)
    // and sweep all probes (measure cache + DP).
    Trace copy = session.trace();
    ModelBuildOptions build;
    build.slice_count = session.window().slice_count();
    build.match_by_path = true;
    build.window_begin = session.window().begin();
    build.window_end = session.window().end();
    Stopwatch watch;
    const MicroscopicModel fresh = build_model(copy, h, build);
    SpatiotemporalAggregator agg(fresh, opt.aggregation);
    const std::vector<AggregationResult> results = agg.run_many(ps);
    const double elapsed = watch.seconds();
    return {elapsed, results_equal(results, session.results())};
  };

  // Warmup: a few advances so pools, caches and the retained state reach
  // steady state before timing.
  for (int k = 0; k < 4; ++k) {
    deliver(session.window().end() + dt);
    session.slide(1);
  }

  std::vector<FractionResult> fractions;
  for (const std::int32_t k : dirty_slices) {
    FractionResult f;
    f.dirty_slices = k;
    f.dirty_fraction =
        static_cast<double>(k) / static_cast<double>(slices);
    for (int rep = 0; rep < reps; ++rep) {
      deliver(session.window().end() + dt * k);
      Stopwatch inc_watch;
      session.slide(k);
      f.incremental_s += inc_watch.seconds();
      const auto [scratch_s, equal] = scratch_run();
      f.scratch_s += scratch_s;
      f.equivalent = f.equivalent && equal;
      ++f.advances;
    }
    f.incremental_s /= f.advances;
    f.scratch_s /= f.advances;
    f.speedup = f.scratch_s / std::max(f.incremental_s, 1e-12);
    fractions.push_back(f);
    std::printf("dirty %5.1f%% (k=%2d): incremental %s | from-scratch %s  "
                "=>  %5.2fx  [%s]\n",
                100.0 * f.dirty_fraction, f.dirty_slices,
                format_seconds(f.incremental_s).c_str(),
                format_seconds(f.scratch_s).c_str(), f.speedup,
                f.equivalent ? "bit-identical" : "MISMATCH (BUG)");
  }

  bool all_equivalent = true;
  double best_speedup_le_10pct = 0.0;
  for (const FractionResult& f : fractions) {
    all_equivalent = all_equivalent && f.equivalent;
    if (f.dirty_fraction <= 0.10 + 1e-9) {
      best_speedup_le_10pct = std::max(best_speedup_le_10pct, f.speedup);
    }
  }
  // The tracked acceptance metric is pinned to the *middle* dirty fraction
  // (~5% of columns), not the best point: gating on the max would let a
  // regression in the realistic 4-8% range hide behind a fast 1% point.
  const FractionResult& bar = fractions[fractions.size() / 2];
  std::printf("\nheadline            : %.2fx at %.1f%% dirty columns "
              "(bar: >= 5x; best at <= 10%%: %.2fx)\n",
              bar.speedup, 100.0 * bar.dirty_fraction,
              best_speedup_le_10pct);
  std::printf("equivalence         : %s\n\n",
              all_equivalent ? "bit-identical on every advance"
                             : "MISMATCH (BUG)");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"incremental\",\n";
    out << bench_info_json();
    out << "  \"model\": {\"leaves\": " << h.leaf_count()
        << ", \"nodes\": " << h.node_count() << ", \"slices\": " << slices
        << ", \"states\": " << states << "},\n";
    out << "  \"probes\": " << ps.size() << ",\n";
    out << "  \"lane_width\": " << opt.aggregation.max_lanes << ",\n";
    out << "  \"advances_per_fraction\": " << reps << ",\n";
    out << "  \"initial_build_s\": " << initial_s << ",\n";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", bar.speedup);
    out << "  \"bar_dirty_fraction\": " << bar.dirty_fraction << ",\n";
    out << "  \"bar_speedup\": " << buf << ",\n";
    out << "  \"meets_5x_bar\": " << (bar.speedup >= 5.0 ? "true" : "false")
        << ",\n";
    std::snprintf(buf, sizeof buf, "%.17g", best_speedup_le_10pct);
    out << "  \"best_speedup_le_10pct_dirty\": " << buf << ",\n";
    out << "  \"equivalent\": " << (all_equivalent ? "true" : "false")
        << ",\n";
    out << "  \"fractions\": [\n";
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      const FractionResult& f = fractions[i];
      out << "    {\"dirty_slices\": " << f.dirty_slices
          << ", \"dirty_fraction\": " << f.dirty_fraction
          << ", \"advances\": " << f.advances
          << ", \"incremental_s\": " << f.incremental_s
          << ", \"scratch_s\": " << f.scratch_s
          << ", \"speedup\": " << f.speedup
          << ", \"equivalent\": " << (f.equivalent ? "true" : "false") << "}"
          << (i + 1 < fractions.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("summary written to %s\n", json_path.c_str());
  }

  return all_equivalent ? 0 : 2;
}

}  // namespace
}  // namespace stagg

int main(int argc, char** argv) { return stagg::run(argc, argv); }
