// Bench: chunk-payload compression — encoded size, bytes/interval and
// encode/decode throughput of ChunkCompression::kAuto across four
// workloads:
//
//   * nas_lu    — the paper's §V-B LU trace (Nancy platform, three
//                 clusters, rupture enabled): near-gapless per-core
//                 timelines with a small cycling state alphabet, the
//                 shape the gap + dictionary codecs are built for;
//   * nas_cg    — the §V-A CG trace (Rennes parapide) with its scripted
//                 perturbation;
//   * synthetic — the balanced-platform generator that paces bench_spill;
//   * churn     — a synthetic worst case: a large state alphabet with
//                 high-jitter sub-millisecond states, so dictionary runs
//                 collapse to length 1 and the time columns carry wide
//                 deltas.
//
// For each workload the store is materialized once raw (the oracle), the
// sealed chunks are re-encoded in place (set_compression — this is the
// timed encode pass), and every resource is materialized again from the
// encoded chunks (the timed decode pass) and compared row-for-row against
// the oracle.  Bars: decoded rows bit-identical everywhere, and the
// NAS-LU compression ratio >= 3x raw (20 B/interval).  --smoke emits
// BENCH_compress.json for CI trend tracking; exit is non-zero on any
// violated bar.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/bench_info.hpp"
#include "common/cli.hpp"
#include "common/stopwatch.hpp"
#include "hierarchy/hierarchy.hpp"
#include "hierarchy/platform.hpp"
#include "trace/trace.hpp"
#include "workload/nas_cg.hpp"
#include "workload/nas_lu.hpp"
#include "workload/synthetic.hpp"

namespace stagg {
namespace {

/// Raw columnar footprint of one interval (two TimeNs + one StateId).
constexpr double kRawBytesPerInterval =
    static_cast<double>(sizeof(TimeNs) * 2 + sizeof(StateId));

struct WorkloadReport {
  std::string name;
  std::size_t intervals = 0;
  std::size_t raw_bytes = 0;
  std::size_t encoded_bytes = 0;
  double encode_seconds = 0.0;
  double decode_seconds = 0.0;
  bool identical = false;

  [[nodiscard]] double bytes_per_interval() const noexcept {
    return static_cast<double>(encoded_bytes) /
           static_cast<double>(std::max<std::size_t>(1, intervals));
  }
  [[nodiscard]] double ratio() const noexcept {
    return kRawBytesPerInterval / std::max(bytes_per_interval(), 1e-12);
  }
  [[nodiscard]] double encode_mps() const noexcept {
    return static_cast<double>(intervals) / 1e6 /
           std::max(encode_seconds, 1e-12);
  }
  [[nodiscard]] double decode_mps() const noexcept {
    return static_cast<double>(intervals) / 1e6 /
           std::max(decode_seconds, 1e-12);
  }
};

WorkloadReport measure(std::string name, Trace trace) {
  trace.seal();
  const std::shared_ptr<TraceStore>& store = trace.store();
  WorkloadReport rep;
  rep.name = std::move(name);
  rep.intervals = static_cast<std::size_t>(store->state_count());
  rep.raw_bytes = store->store_bytes();

  // Raw oracle rows, before any chunk is re-encoded.
  std::vector<std::vector<StateInterval>> oracle(store->resource_count());
  for (std::size_t r = 0; r < oracle.size(); ++r) {
    store->materialize(static_cast<ResourceId>(r), oracle[r]);
  }

  Stopwatch encode;
  store->set_compression(ChunkCompression::kAuto);
  rep.encode_seconds = encode.seconds();
  rep.encoded_bytes = store->store_bytes();

  bool identical = true;
  std::vector<StateInterval> rows;
  Stopwatch decode;
  for (std::size_t r = 0; r < oracle.size(); ++r) {
    store->materialize(static_cast<ResourceId>(r), rows);
    if (rows.size() != oracle[r].size()) {
      identical = false;
      continue;
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
      identical = identical && rows[i].begin == oracle[r][i].begin &&
                  rows[i].end == oracle[r][i].end &&
                  rows[i].state == oracle[r][i].state;
    }
  }
  rep.decode_seconds = decode.seconds();
  rep.identical = identical;
  return rep;
}

int run(int argc, const char* const* argv) {
  Cli cli("bench_compress",
          "chunk-payload compression ratio, bytes/interval and "
          "encode/decode throughput on NAS LU/CG, synthetic and "
          "high-churn workloads");
  cli.option("cores", "", "NAS platform scale in cores (default 120, "
                          "smoke 48)");
  cli.option("event-div", "", "event-count divisor vs the paper's full "
                              "scale (default 64, smoke 256)");
  cli.option("json", "", "write a JSON summary to this path");
  cli.flag("smoke", "reduced model + BENCH_compress.json (CI mode)");
  if (!cli.parse(argc, argv)) return 1;

  const bool smoke = cli.get_flag("smoke");
  const auto cores = static_cast<std::int32_t>(
      cli.get("cores").empty() ? (smoke ? 48 : 120)
                               : std::max<std::int64_t>(8,
                                                        cli.get_int("cores")));
  const double event_div =
      cli.get("event-div").empty()
          ? (smoke ? 256.0 : 64.0)
          : static_cast<double>(std::max<std::int64_t>(
                1, cli.get_int("event-div")));
  std::string json_path = cli.get("json");
  if (smoke && json_path.empty()) json_path = "BENCH_compress.json";

  std::printf("=== Chunk compression across workloads ===\n\n");
  std::printf("model: %d NAS cores, event divisor %.0f\n\n", cores,
              event_div);

  std::vector<WorkloadReport> reports;

  {
    const PlatformSpec platform = grid5000_nancy().scaled_to(cores);
    const Hierarchy h = platform.build_hierarchy();
    LuWorkloadOptions opt;
    opt.event_scale = 1.0 / event_div;
    reports.push_back(measure("nas_lu", generate_lu_trace(h, platform, opt)));
  }
  {
    const Hierarchy h = grid5000_rennes_parapide().build_hierarchy();
    CgWorkloadOptions opt;
    opt.event_scale = 1.0 / event_div;
    reports.push_back(measure("nas_cg", generate_cg_trace(h, opt)));
  }
  {
    const Hierarchy h = make_balanced_hierarchy(2, 4);
    const double span_s = smoke ? 30.0 : 90.0;
    const auto programmer = [&](LeafId leaf) {
      ResourceProgram p;
      StatePattern pattern;
      for (std::int32_t x = 0; x < 5; ++x) {
        const double mean = 0.02 + 0.015 * ((leaf + x) % 4);
        pattern.elements.push_back({"state" + std::to_string(x), mean, 0.35});
      }
      p.phases.push_back({0.0, span_s, std::move(pattern)});
      return p;
    };
    reports.push_back(
        measure("synthetic", generate_trace(h, programmer, 0x5B111)));
  }
  {
    // Worst case: 64 states drawn near-uniformly at sub-millisecond
    // durations with heavy jitter — dictionary runs of length ~1 and
    // noisy time deltas.
    const Hierarchy h = make_balanced_hierarchy(2, 4);
    const double span_s = smoke ? 2.0 : 6.0;
    reports.push_back(measure(
        "churn",
        generate_trace(h, make_churn_programmer(64, span_s), 0xC0DEC)));
  }

  const double lu_ratio_bar = 3.0;
  bool all_identical = true;
  double lu_ratio = 0.0;
  for (const WorkloadReport& rep : reports) {
    all_identical = all_identical && rep.identical;
    if (rep.name == "nas_lu") lu_ratio = rep.ratio();
    std::printf(
        "%-9s : %9zu intervals | %6.2f -> %5.2f B/interval (%.2fx) | "
        "encode %6.1f Mint/s | decode %6.1f Mint/s | %s\n",
        rep.name.c_str(), rep.intervals,
        static_cast<double>(rep.raw_bytes) /
            static_cast<double>(std::max<std::size_t>(1, rep.intervals)),
        rep.bytes_per_interval(), rep.ratio(), rep.encode_mps(),
        rep.decode_mps(),
        rep.identical ? "bit-identical" : "MISMATCH (BUG)");
  }
  const bool meets_ratio_bar = lu_ratio >= lu_ratio_bar;
  std::printf("\nnas_lu compression ratio: %.2fx (bar >= %.1fx)  [%s]\n\n",
              lu_ratio, lu_ratio_bar, meets_ratio_bar ? "ok" : "MISS");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    char buf[64];
    out << "{\n  \"bench\": \"compress\",\n";
    out << bench_info_json();
    out << "  \"cores\": " << cores << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", event_div);
    out << "  \"event_div\": " << buf << ",\n";
    out << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const WorkloadReport& rep = reports[i];
      out << "    {\"name\": \"" << rep.name << "\", ";
      out << "\"intervals\": " << rep.intervals << ", ";
      out << "\"raw_bytes\": " << rep.raw_bytes << ", ";
      out << "\"encoded_bytes\": " << rep.encoded_bytes << ", ";
      std::snprintf(buf, sizeof buf, "%.6g", rep.bytes_per_interval());
      out << "\"bytes_per_interval\": " << buf << ", ";
      std::snprintf(buf, sizeof buf, "%.6g", rep.ratio());
      out << "\"ratio\": " << buf << ", ";
      std::snprintf(buf, sizeof buf, "%.6g", rep.encode_mps());
      out << "\"encode_mintervals_per_s\": " << buf << ", ";
      std::snprintf(buf, sizeof buf, "%.6g", rep.decode_mps());
      out << "\"decode_mintervals_per_s\": " << buf << ", ";
      out << "\"identical\": " << (rep.identical ? "true" : "false") << "}"
          << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    std::snprintf(buf, sizeof buf, "%.6g", lu_ratio);
    out << "  \"nas_lu_ratio\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", lu_ratio_bar);
    out << "  \"nas_lu_ratio_bar\": " << buf << ",\n";
    out << "  \"identical\": " << (all_identical ? "true" : "false") << "\n";
    out << "}\n";
    std::printf("summary written to %s\n", json_path.c_str());
  }

  return all_identical && meets_ratio_bar ? 0 : 2;
}

}  // namespace
}  // namespace stagg

int main(int argc, char** argv) { return stagg::run(argc, argv); }
