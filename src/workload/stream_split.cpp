#include "workload/stream_split.hpp"

#include <algorithm>

namespace stagg {

TraceSplit split_trace_at(const Trace& full, TimeNs horizon,
                          ResourceId resource_limit) {
  TraceSplit out;
  const auto resources =
      resource_limit == kInvalidResource
          ? static_cast<ResourceId>(full.resource_count())
          : resource_limit;
  for (const auto& name : full.states().names()) {
    (void)out.initial.states().intern(name);
  }
  for (ResourceId r = 0; r < resources; ++r) {
    out.initial.add_resource(full.resource_path(r));
    for (const auto& s : full.intervals(r)) {
      if (s.begin < horizon) {
        out.initial.add_state(r, s.state, s.begin, s.end);
      } else {
        out.future.emplace_back(r, s);
      }
    }
  }
  std::sort(out.future.begin(), out.future.end(),
            [](const auto& a, const auto& b) {
              if (a.second.begin != b.second.begin) {
                return a.second.begin < b.second.begin;
              }
              if (a.first != b.first) return a.first < b.first;
              return a.second.end < b.second.end;
            });
  return out;
}

}  // namespace stagg
