// Replay harness for live-session demos, benches and oracle tests: splits
// a recorded trace into the prefix already "ingested" before a horizon and
// the time-ordered stream of future events to deliver while windows slide.
#pragma once

#include <utility>
#include <vector>

#include "trace/event.hpp"
#include "trace/trace.hpp"

namespace stagg {

/// A recorded trace split at a replay horizon.
struct TraceSplit {
  /// Fresh trace holding every event with begin < horizon (all state
  /// names interned, so |X| matches the source even for unused states).
  Trace initial;
  /// Events with begin >= horizon, ordered by (begin, resource, end) —
  /// the deterministic delivery order of a live ingest frontier.
  std::vector<std::pair<ResourceId, StateInterval>> future;
};

/// Splits the first `resource_limit` resources of sealed `full` at
/// `horizon` (kInvalidResource = all resources).  The split's initial
/// trace registers resources in source order, so ids coincide with the
/// source's.
[[nodiscard]] TraceSplit split_trace_at(const Trace& full, TimeNs horizon,
                                        ResourceId resource_limit =
                                            kInvalidResource);

}  // namespace stagg
