// Deterministic model fixtures: the Figure 3 artificial trace and random
// microscopic models for property tests and scaling benches.
#pragma once

#include <cstdint>
#include <memory>

#include "model/microscopic_model.hpp"

namespace stagg {

/// A model that owns its hierarchy (MicroscopicModel only references one).
struct OwnedModel {
  std::unique_ptr<Hierarchy> hierarchy;
  MicroscopicModel model;
};

/// The artificial trace of paper Fig. 3.a: 12 resources in three 4-leaf
/// clusters (SA, SB, SC), 20 microscopic time periods, 2 states, crafted to
/// contain the spatiotemporal patterns the figure describes:
///   T(1,2)  homogeneous in time, heterogeneous in space;
///   T(3,5)  heterogeneous in space except cluster SA;
///   T(6,7)  homogeneous at the cluster level;
///   T(8)    fully homogeneous;
///   T(9,20) SA homogeneous in space / heterogeneous in time, SB homogeneous
///           in both, SC mixed imbrications.
/// (1-based indices as in the paper; the model is 0-based.)
[[nodiscard]] OwnedModel make_figure3_model();

/// Random model over a balanced hierarchy: i.i.d. proportions, optionally
/// smoothed into homogeneous blocks (block_slices/block_leaves > 1) so
/// aggregation has structure to find.
struct RandomModelOptions {
  std::int32_t levels = 2;
  std::int32_t fanout = 4;   ///< leaves = fanout^levels
  std::int32_t slices = 16;
  std::int32_t states = 2;
  std::int32_t block_slices = 1;
  std::int32_t block_leaves = 1;
  double idle_fraction = 0.0;  ///< probability a cell is left empty
  std::uint64_t seed = 7;
};
[[nodiscard]] OwnedModel make_random_model(const RandomModelOptions& options);

/// Tiny hand-checkable model: |S|=2 (flat), |T|=2, |X|=1; leaf 0 busy in
/// slice 0 only, leaf 1 busy in both.  Used by unit tests of the measures.
[[nodiscard]] OwnedModel make_tiny_model();

}  // namespace stagg
