// Behavioural model of the NAS-LU runs of paper §V-B (Table II cases C, D,
// Figure 4).
//
// Structure reproduced from the paper's reading of Figure 4:
//   * initialization: MPI_Init from 0 s to 17.5 s;
//   * a spatially-heterogeneous MPI_Allreduce period (17.5-20 s);
//   * computation (20 s - end) whose behaviour depends on the *cluster*:
//       - Infiniband clusters with small machines (Graphene): homogeneous
//         Recv/Compute/Send cycling, identical everywhere;
//       - Ethernet clusters (Graphite): spatially heterogeneous — each
//         process draws a persistent bias toward long irregular MPI_Wait /
//         MPI_Send (slow 10 GbE network);
//       - the remaining Infiniband cluster (Griffon): homogeneous, plus a
//         rupture at 34.5 s where two machines block in MPI_Wait and two in
//         MPI_Send (the hidden-machine switch-concurrency anomaly).
#pragma once

#include <cstdint>

#include "hierarchy/hierarchy.hpp"
#include "hierarchy/platform.hpp"
#include "trace/trace.hpp"

namespace stagg {

struct LuWorkloadOptions {
  double span_s = 65.0;
  double init_end_s = 17.5;
  double allreduce_end_s = 20.0;
  /// Mean computation-state duration; 0.11 ms reproduces case C's ~218M
  /// events at full scale.
  double base_state_s = 0.11e-3;
  double event_scale = 1.0;
  /// Rupture (paper: 34.5 s, Griffon only).  blocked_machines machines are
  /// hit, alternating Wait/Send blocking; 0 disables.
  double rupture_begin_s = 34.5;
  double rupture_span_s = 2.5;
  std::int32_t blocked_machines = 4;
  std::uint64_t seed = 1337;
};

/// Generates the LU trace over a platform.  Cluster roles are derived from
/// the PlatformSpec interconnects, so the same generator covers case C
/// (Nancy) and case D (Rennes triple, which has no Ethernet cluster and no
/// scripted rupture when blocked_machines = 0).
[[nodiscard]] Trace generate_lu_trace(const Hierarchy& hierarchy,
                                      const PlatformSpec& platform,
                                      const LuWorkloadOptions& options = {});

}  // namespace stagg
