#include "workload/nas_cg.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/rng.hpp"
#include "workload/synthetic.hpp"

namespace stagg {
namespace {

/// Machines are the parents of leaves (core level); the machine-local index
/// of a leaf decides its role (core 0 = wait-dedicated).
std::int32_t machine_local_index(const Hierarchy& h, LeafId leaf) {
  const NodeId node = h.leaf_node(leaf);
  const NodeId machine = h.node(node).parent;
  return leaf - h.node(machine).first_leaf;
}

}  // namespace

std::vector<LeafId> cg_perturbed_leaves(const Hierarchy& hierarchy,
                                        const CgWorkloadOptions& options) {
  // Deterministic spread: walk leaves with a stride derived from the seed
  // so the same options always flag the same processes.
  std::vector<LeafId> out;
  const std::int32_t n = static_cast<std::int32_t>(hierarchy.leaf_count());
  const std::int32_t want = std::min(options.perturbed_processes, n);
  if (want <= 0) return out;
  SplitMix64 mix(options.seed);
  const std::int32_t offset = static_cast<std::int32_t>(mix.next() % n);
  // A stride coprime with n visits every leaf exactly once.
  std::int32_t stride = 1 + static_cast<std::int32_t>(mix.next() % n);
  while (std::gcd(stride, n) != 1) ++stride;
  LeafId cur = offset;
  for (std::int32_t k = 0; k < want; ++k) {
    out.push_back(cur % n);
    cur = (cur + stride) % n;
  }
  std::sort(out.begin(), out.end());
  return out;
}

Trace generate_cg_trace(const Hierarchy& hierarchy,
                        const CgWorkloadOptions& options) {
  const double dur = options.base_state_s / options.event_scale;
  const auto perturbed_vec = cg_perturbed_leaves(hierarchy, options);
  const std::unordered_set<LeafId> perturbed(perturbed_vec.begin(),
                                             perturbed_vec.end());

  // Perturbation window: "around 3 s, never at the same moment" — jitter
  // the center by up to +/-10% of the span with the scenario seed.
  Rng pert_rng(options.seed, 0xC61D);
  const double center =
      options.perturbation_center_s +
      pert_rng.uniform(-0.1, 0.1) * options.perturbation_span_s * 2.0;
  const double pert_begin = center - options.perturbation_span_s / 2.0;
  const double pert_end = center + options.perturbation_span_s / 2.0;

  const auto programmer = [&](LeafId leaf) {
    ResourceProgram prog;
    // Initialization + the two uniform transition periods.
    prog.phases.push_back(
        {0.0, options.init_end_s, StatePattern::solid("MPI_Init")});
    prog.phases.push_back({options.init_end_s, options.transition_mid_s,
                           StatePattern{{{"MPI_Recv", 12 * dur, 0.25},
                                         {"Compute", 4 * dur, 0.25}}}});
    prog.phases.push_back({options.transition_mid_s, options.transition_end_s,
                           StatePattern{{{"MPI_Send", 12 * dur, 0.25},
                                         {"Compute", 4 * dur, 0.25}}}});

    // Computation: per-machine role split.
    const bool wait_role = machine_local_index(hierarchy, leaf) == 0;
    StatePattern comp;
    if (wait_role) {
      comp.elements = {{"MPI_Wait", 3.0 * dur, 0.3},
                       {"Compute", 1.0 * dur, 0.3}};
    } else {
      comp.elements = {{"MPI_Send", 2.4 * dur, 0.3},
                       {"Compute", 1.2 * dur, 0.3},
                       {"MPI_Recv", 0.4 * dur, 0.3}};
    }
    prog.phases.push_back({options.transition_end_s, options.span_s, comp});

    if (perturbed.contains(leaf) && options.perturbation_factor > 1.0) {
      prog.perturbations.push_back({pert_begin, pert_end,
                                    options.perturbation_factor,
                                    {"MPI_Send", "MPI_Wait"}});
    }
    return prog;
  };

  return generate_trace(hierarchy, programmer, options.seed);
}

}  // namespace stagg
