// Behavioural model of the NAS-CG runs of paper §V-A (Table II cases A, B).
//
// Structure reproduced from the paper's reading of Figure 1:
//   * initialization: every process in MPI_Init from 0 s to 1.6 s;
//   * transition: two spatially-uniform periods (1.6-1.9 s mostly MPI_Recv,
//     1.9-2.2 s mostly MPI_Send);
//   * computation (2.2 s - end): on every 8-core machine one process is
//     dedicated to MPI_Wait while the others mainly run MPI_Send;
//   * a network-concurrency perturbation around 3 s stretching the
//     MPI_Send/MPI_Wait calls of a subset of processes (26 of 64 in the
//     paper) — occasional, never at the same trace position, so the start
//     time is seed-dependent around 3 s.
#pragma once

#include <cstdint>

#include "hierarchy/hierarchy.hpp"
#include "trace/trace.hpp"

namespace stagg {

struct CgWorkloadOptions {
  double span_s = 9.5;            ///< end of the trace (case A duration)
  double init_end_s = 1.6;
  double transition_mid_s = 1.9;
  double transition_end_s = 2.2;
  /// Mean duration of computation-phase states; controls the event count
  /// (smaller = more events).  0.245 ms reproduces case A's ~3.8M events.
  double base_state_s = 0.245e-3;
  /// Events scale factor: multiplies base_state_s by 1/scale (scale 0.5 =
  /// half the events).  The Table II bench drives this.
  double event_scale = 1.0;
  /// Perturbation (paper: around 3 s, touching 26 processes).  Set
  /// perturbed_processes = 0 to disable.
  double perturbation_center_s = 3.0;
  double perturbation_span_s = 0.45;
  double perturbation_factor = 8.0;
  std::int32_t perturbed_processes = 26;
  std::uint64_t seed = 42;
};

/// Generates the CG trace over the given platform hierarchy (site/cluster/
/// machine/core).  Wait-dedicated process: core 0 of each machine.
[[nodiscard]] Trace generate_cg_trace(const Hierarchy& hierarchy,
                                      const CgWorkloadOptions& options = {});

/// The leaves stretched by the perturbation, deterministically spread over
/// the machines (round-robin), matching `perturbed_processes`.
[[nodiscard]] std::vector<LeafId> cg_perturbed_leaves(
    const Hierarchy& hierarchy, const CgWorkloadOptions& options = {});

}  // namespace stagg
