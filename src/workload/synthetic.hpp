// Phase-based synthetic MPI trace generation — the library's stand-in for
// Score-P traces of real NAS runs on Grid'5000 (see DESIGN.md,
// "Substitutions").
//
// A workload is a list of per-resource *phases*; within a phase the
// resource cycles through a pattern of states whose durations are drawn
// from per-element lognormal-ish jittered means.  Every resource has its
// own deterministic RNG stream derived from (seed, resource), so traces
// are reproducible and generation order-independent.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hierarchy/hierarchy.hpp"
#include "trace/trace.hpp"

namespace stagg {

/// One element of a cyclic state pattern.
struct PatternElement {
  std::string state;
  double mean_s = 1e-3;   ///< mean state duration in seconds
  double jitter = 0.2;    ///< relative stddev of the duration
};

/// A cyclic pattern: the resource loops over the elements in order.
struct StatePattern {
  std::vector<PatternElement> elements;

  /// Convenience: pattern of one state filling the whole phase.
  [[nodiscard]] static StatePattern solid(std::string state);
};

/// A phase: a pattern active over [begin_s, end_s).
struct Phase {
  double begin_s = 0.0;
  double end_s = 0.0;
  StatePattern pattern;
};

/// A time-bounded multiplier on state durations — used to inject the
/// paper's network-concurrency perturbations: inside [begin_s, end_s),
/// durations of states matching `states` (empty = all) are multiplied by
/// `factor` (> 1 stretches states, i.e. slows the resource down).
struct Perturbation {
  double begin_s = 0.0;
  double end_s = 0.0;
  double factor = 1.0;
  std::vector<std::string> states;

  [[nodiscard]] bool applies_to(const std::string& state) const;
};

/// Per-resource generation program.
struct ResourceProgram {
  std::vector<Phase> phases;
  std::vector<Perturbation> perturbations;
};

/// Generates the states of one resource into `trace`.  `solid` phases emit
/// exactly one state; cyclic phases emit states until the phase ends (the
/// final state is clipped to the phase boundary).
void generate_resource(Trace& trace, ResourceId resource,
                       const ResourceProgram& program, std::uint64_t seed,
                       std::uint64_t stream);

/// Drives generation for a whole hierarchy: `programmer(leaf)` returns the
/// program of each leaf; resources are registered under their hierarchy
/// path, in leaf order.
[[nodiscard]] Trace generate_trace(
    const Hierarchy& hierarchy,
    const std::function<ResourceProgram(LeafId)>& programmer,
    std::uint64_t seed);

/// Programmer for a wide-|X| "churn" workload: every leaf cycles through
/// `states` distinct states ("churn0".."churnN") at sub-millisecond,
/// heavily jittered durations — dictionary runs of length ~1 and noisy
/// time deltas.  The codec worst case (bench_compress) and the across-|X|
/// kernel stress (bench_simd) share this generator; states >= 64 keeps
/// the per-slice state loops wide enough to exercise the f64x4 column
/// kernels with meaningful tails.  Per-element means cycle over 7 steps
/// of base_mean_s/4 so adjacent states differ, like the historical
/// inline programmer.
[[nodiscard]] std::function<ResourceProgram(LeafId)> make_churn_programmer(
    std::int32_t states, double span_s, double base_mean_s = 0.2e-3,
    double jitter = 0.9);

}  // namespace stagg
