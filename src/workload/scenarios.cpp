#include "workload/scenarios.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "workload/nas_cg.hpp"
#include "workload/nas_lu.hpp"

// GCC 12 emits a -Wrestrict false positive (PR105329) on the short-string
// literal assignments of the scenario_* constructors once surrounding code
// is inlined; the reported sizes (~2^63 bytes) are the impossible non-SSO
// branch.  Scoped to those functions via pop below.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

namespace stagg {

ScenarioSpec scenario_a() {
  ScenarioSpec s;
  s.id = "A";
  s.application = "CG, class C";
  s.site = "Rennes";
  s.platform = grid5000_rennes_parapide();
  s.processes = 64;
  s.span_s = 9.5;
  s.paper = {3'838'144, 136.9, 44.0, 4.0, 0.5};
  return s;
}

ScenarioSpec scenario_b() {
  ScenarioSpec s;
  s.id = "B";
  s.application = "CG, class C";
  s.site = "Grenoble";
  s.platform = grid5000_grenoble();
  s.processes = 512;
  s.span_s = 6.0;
  s.paper = {49'149'440, 1800.0, 613.0, 55.0, 0.5};
  return s;
}

ScenarioSpec scenario_c() {
  ScenarioSpec s;
  s.id = "C";
  s.application = "LU, class C";
  s.site = "Nancy";
  s.platform = grid5000_nancy();
  s.processes = 700;
  s.span_s = 65.0;
  s.paper = {218'457'456, 8300.0, 2911.0, 244.0, 2.0};
  return s;
}

ScenarioSpec scenario_d() {
  ScenarioSpec s;
  s.id = "D";
  s.application = "LU, class B";
  s.site = "Rennes";
  s.platform = grid5000_rennes_triple();
  s.processes = 900;
  s.span_s = 50.0;
  s.paper = {177'376'729, 6700.0, 2091.0, 196.0, 2.0};
  return s;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

std::vector<ScenarioSpec> all_scenarios() {
  return {scenario_a(), scenario_b(), scenario_c(), scenario_d()};
}

GeneratedScenario generate_scenario(const ScenarioSpec& spec, double scale,
                                    std::uint64_t seed) {
  if (scale <= 0.0) throw InvalidArgument("scenario scale must be positive");

  GeneratedScenario out;
  out.spec = spec;
  out.hierarchy = std::make_unique<Hierarchy>(
      spec.platform.build_hierarchy(spec.processes));

  if (starts_with(spec.application, "CG")) {
    CgWorkloadOptions opt;
    opt.span_s = spec.span_s;
    opt.event_scale = scale;
    opt.seed = seed;
    // Case B carries no scripted perturbation (used for timing only).
    if (spec.id == "B") opt.perturbed_processes = 0;
    // Calibrated so scale = 1.0 lands near the paper's event counts.
    opt.base_state_s = spec.id == "A" ? 0.175e-3 : 0.059e-3;
    out.trace = generate_cg_trace(*out.hierarchy, opt);
  } else if (starts_with(spec.application, "LU")) {
    LuWorkloadOptions opt;
    opt.span_s = spec.span_s;
    opt.event_scale = scale;
    opt.seed = seed;
    if (spec.id == "D") {
      opt.blocked_machines = 0;  // no scripted rupture in case D
      opt.base_state_s = 0.230e-3;
    } else {
      opt.base_state_s = 0.200e-3;
    }
    out.trace = generate_lu_trace(*out.hierarchy, spec.platform, opt);
  } else {
    throw InvalidArgument("unknown application '" + spec.application + "'");
  }
  // Pin the analysis window to the scripted span (the last states may end
  // slightly past it because patterns clip at phase boundaries only).
  out.trace.set_window(0, seconds(spec.span_s));
  return out;
}

}  // namespace stagg
