#include "workload/nas_lu.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "workload/synthetic.hpp"

namespace stagg {
namespace {

struct ClusterRole {
  bool ethernet = false;   ///< Graphite-like: spatially heterogeneous
  bool rupture = false;    ///< Griffon-like: carries the 34.5 s anomaly
};

}  // namespace

Trace generate_lu_trace(const Hierarchy& hierarchy,
                        const PlatformSpec& platform,
                        const LuWorkloadOptions& options) {
  const double dur = options.base_state_s / options.event_scale;

  // Map hierarchy clusters (depth 1) onto platform specs by name; the
  // rupture goes to the *last* Infiniband cluster (Griffon in case C).
  const auto clusters = hierarchy.nodes_at_depth(1);
  std::vector<ClusterRole> roles(clusters.size());
  std::int32_t last_ib = -1;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    const auto& name = hierarchy.node(clusters[c]).name;
    const auto spec =
        std::find_if(platform.clusters.begin(), platform.clusters.end(),
                     [&](const ClusterSpec& s) { return s.name == name; });
    if (spec == platform.clusters.end()) {
      throw InvalidArgument("hierarchy cluster '" + name +
                            "' missing from platform spec");
    }
    roles[c].ethernet = spec->interconnect == Interconnect::kEthernet10G;
    if (!roles[c].ethernet) last_ib = static_cast<std::int32_t>(c);
  }
  if (options.blocked_machines > 0 && last_ib >= 0) {
    roles[static_cast<std::size_t>(last_ib)].rupture = true;
  }

  // Leaf -> (cluster index, machine node).
  const auto cluster_of = [&](LeafId leaf) {
    const NodeId node = hierarchy.leaf_node(leaf);
    const NodeId machine = hierarchy.node(node).parent;
    const NodeId cluster = hierarchy.node(machine).parent;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      if (clusters[c] == cluster) return std::make_pair(c, machine);
    }
    throw InvalidArgument("leaf outside any depth-1 cluster");
  };

  const auto programmer = [&](LeafId leaf) {
    const auto [c, machine] = cluster_of(leaf);
    const ClusterRole role = roles[c];
    Rng rng(options.seed, 0x10000000ULL + static_cast<std::uint64_t>(leaf));

    ResourceProgram prog;
    prog.phases.push_back(
        {0.0, options.init_end_s, StatePattern::solid("MPI_Init")});

    // Spatially-heterogeneous Allreduce period: the Allreduce share varies
    // per process (0.35..0.95), visible as spatial structure.
    const double all_share = rng.uniform(0.35, 0.95);
    prog.phases.push_back(
        {options.init_end_s, options.allreduce_end_s,
         StatePattern{{{"MPI_Allreduce", 40 * dur * all_share, 0.3},
                       {"Compute", 40 * dur * (1.0 - all_share), 0.3}}}});

    // Computation phase, by cluster role.
    StatePattern comp;
    if (role.ethernet) {
      // Persistent per-process bias: irregular long waits and sends.
      const double wait_bias = rng.uniform(0.5, 4.0);
      const double send_bias = rng.uniform(0.5, 3.0);
      comp.elements = {{"MPI_Wait", 2.5 * dur * wait_bias, 0.9},
                       {"MPI_Send", 2.0 * dur * send_bias, 0.9},
                       {"Compute", 1.5 * dur, 0.4}};
    } else {
      comp.elements = {{"MPI_Recv", 1.2 * dur, 0.25},
                       {"Compute", 2.0 * dur, 0.25},
                       {"MPI_Send", 0.8 * dur, 0.25}};
    }
    prog.phases.push_back({options.allreduce_end_s, options.span_s, comp});

    // Rupture: first `blocked_machines` machines of the rupture cluster —
    // even machine index blocks in MPI_Wait, odd in MPI_Send.
    if (role.rupture) {
      const auto& cluster_node = hierarchy.node(clusters[c]);
      const auto& machines = cluster_node.children;
      const auto it = std::find(machines.begin(), machines.end(), machine);
      const auto machine_idx =
          static_cast<std::int32_t>(it - machines.begin());
      if (machine_idx < options.blocked_machines) {
        const char* blocked_state =
            machine_idx % 2 == 0 ? "MPI_Wait" : "MPI_Send";
        prog.perturbations.push_back(
            {options.rupture_begin_s,
             options.rupture_begin_s + options.rupture_span_s,
             /*factor=*/40.0,
             {blocked_state}});
      } else {
        // The concurrency on the shared switches mildly touches the whole
        // cluster (the paper sees the rupture across Griffon).
        prog.perturbations.push_back(
            {options.rupture_begin_s,
             options.rupture_begin_s + options.rupture_span_s,
             /*factor=*/6.0,
             {"MPI_Send", "MPI_Recv"}});
      }
    }
    return prog;
  };

  return generate_trace(hierarchy, programmer, options.seed);
}

}  // namespace stagg
