// Table II scenario presets (paper §V).
//
// Each scenario bundles the platform, the workload generator and the
// paper's reported numbers, so the Table II bench can print "paper vs
// measured" rows.  `scale` shrinks the event rate (and nothing else): the
// spatiotemporal structure — phases, perturbations, heterogeneity — is
// preserved, only the microscopic event density drops.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "hierarchy/hierarchy.hpp"
#include "hierarchy/platform.hpp"
#include "trace/trace.hpp"

namespace stagg {

/// Paper-reported numbers of one Table II column.
struct PaperNumbers {
  std::uint64_t events = 0;
  double trace_mb = 0.0;
  double read_s = 0.0;
  double microscopic_s = 0.0;
  double aggregation_s = 0.0;
};

/// One scenario of Table II.
struct ScenarioSpec {
  std::string id;           ///< "A".."D"
  std::string application;  ///< "CG, class C" / "LU, class B"
  std::string site;
  PlatformSpec platform;
  std::int32_t processes = 0;  ///< cores used (Table II row 2)
  double span_s = 0.0;
  PaperNumbers paper;
};

[[nodiscard]] ScenarioSpec scenario_a();  ///< CG-C, 64p, Rennes/parapide
[[nodiscard]] ScenarioSpec scenario_b();  ///< CG-C, 512p, Grenoble
[[nodiscard]] ScenarioSpec scenario_c();  ///< LU-C, 700p, Nancy
[[nodiscard]] ScenarioSpec scenario_d();  ///< LU-B, 900p, Rennes triple

[[nodiscard]] std::vector<ScenarioSpec> all_scenarios();

/// A generated scenario: the hierarchy owns the spatial structure the trace
/// paths refer to.
struct GeneratedScenario {
  ScenarioSpec spec;
  std::unique_ptr<Hierarchy> hierarchy;
  Trace trace;
};

/// Generates the scenario's trace at the given event-rate scale (1.0 =
/// paper-sized, 1/32 = default bench size).  Deterministic in `seed`.
[[nodiscard]] GeneratedScenario generate_scenario(const ScenarioSpec& spec,
                                                  double scale = 1.0,
                                                  std::uint64_t seed = 42);

}  // namespace stagg
