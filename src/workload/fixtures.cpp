#include "workload/fixtures.hpp"

#include "common/rng.hpp"

namespace stagg {
namespace {

/// Fills (leaf, slice) with a two-state split: rho1 = v, rho2 = 1 - v
/// (slices of 1 s, as in Fig. 3 where intensity encodes rho1).
void set_split(MicroscopicModel& m, LeafId s, SliceId t, double v) {
  m.set_duration(s, t, 0, v);
  m.set_duration(s, t, 1, 1.0 - v);
}

}  // namespace

OwnedModel make_figure3_model() {
  HierarchyBuilder b("S");
  const NodeId sa = b.add(0, "SA");
  const NodeId sb = b.add(0, "SB");
  const NodeId sc = b.add(0, "SC");
  b.add_many(sa, "s", 4);
  b.add_many(sb, "s", 4);
  b.add_many(sc, "s", 4);

  OwnedModel out;
  out.hierarchy = std::make_unique<Hierarchy>(b.finish());

  StateRegistry states;
  states.intern("state1");
  states.intern("state2");
  const TimeGrid grid(0, seconds(20.0), 20);
  out.model = MicroscopicModel(out.hierarchy.get(), grid, states);
  MicroscopicModel& m = out.model;

  // Leaves 0-3 = SA, 4-7 = SB, 8-11 = SC (DFS order).
  for (LeafId s = 0; s < 12; ++s) {
    // T(1,2) -> slices 0-1: constant in time, one value per resource.
    for (SliceId t = 0; t <= 1; ++t) {
      set_split(m, s, t, static_cast<double>(s) / 11.0);
    }
    // T(3,5) -> slices 2-4: SA homogeneous (0.8), others per-resource.
    for (SliceId t = 2; t <= 4; ++t) {
      const double v = s < 4 ? 0.8 : 0.05 + 0.9 * ((s * 7) % 12) / 11.0;
      set_split(m, s, t, v);
    }
    // T(6,7) -> slices 5-6: homogeneous per cluster.
    for (SliceId t = 5; t <= 6; ++t) {
      const double v = s < 4 ? 0.2 : (s < 8 ? 0.6 : 0.9);
      set_split(m, s, t, v);
    }
    // T(8) -> slice 7: fully homogeneous.
    set_split(m, s, 7, 0.5);
    // T(9,20) -> slices 8-19.
    for (SliceId t = 8; t <= 19; ++t) {
      double v;
      if (s < 4) {
        // SA: spatially homogeneous, three temporal regimes.
        v = t <= 11 ? 0.2 : (t <= 15 ? 0.7 : 0.4);
      } else if (s < 8) {
        // SB: homogeneous in space and time.
        v = 0.55;
      } else if (s < 10) {
        // SC, first half: one temporal cut shared by both resources.
        v = t <= 13 ? 0.3 : 0.8;
      } else if (s == 10) {
        v = t <= 10 ? 0.9 : 0.15;
      } else {
        v = t <= 16 ? 0.5 : 1.0;
      }
      set_split(m, s, t, v);
    }
  }
  return out;
}

OwnedModel make_random_model(const RandomModelOptions& o) {
  OwnedModel out;
  out.hierarchy = std::make_unique<Hierarchy>(
      make_balanced_hierarchy(o.levels, o.fanout));
  StateRegistry states;
  for (std::int32_t x = 0; x < o.states; ++x) {
    states.intern("state" + std::to_string(x));
  }
  const TimeGrid grid(0, seconds(static_cast<double>(o.slices)), o.slices);
  out.model = MicroscopicModel(out.hierarchy.get(), grid, states);

  const auto n_s = static_cast<std::int32_t>(out.hierarchy->leaf_count());
  Rng rng(o.seed);
  // Draw one composition per block; copy it across the block's cells.
  for (std::int32_t s0 = 0; s0 < n_s; s0 += o.block_leaves) {
    for (std::int32_t t0 = 0; t0 < o.slices; t0 += o.block_slices) {
      std::vector<double> w(static_cast<std::size_t>(o.states));
      const bool idle = rng.chance(o.idle_fraction);
      double total = 0.0;
      for (auto& v : w) {
        v = rng.uniform();
        total += v;
      }
      const double busy = idle ? 0.0 : rng.uniform(0.2, 1.0);
      for (auto& v : w) v = total > 0.0 ? v / total * busy : 0.0;

      for (std::int32_t s = s0; s < std::min(n_s, s0 + o.block_leaves); ++s) {
        for (std::int32_t t = t0; t < std::min(o.slices, t0 + o.block_slices);
             ++t) {
          const double dur = grid.slice_duration_s(t);
          for (std::int32_t x = 0; x < o.states; ++x) {
            out.model.set_duration(s, t, x,
                                   w[static_cast<std::size_t>(x)] * dur);
          }
        }
      }
    }
  }
  return out;
}

OwnedModel make_tiny_model() {
  OwnedModel out;
  out.hierarchy = std::make_unique<Hierarchy>(make_flat_hierarchy(2));
  StateRegistry states;
  states.intern("busy");
  const TimeGrid grid(0, seconds(2.0), 2);
  out.model = MicroscopicModel(out.hierarchy.get(), grid, states);
  out.model.set_duration(0, 0, 0, 1.0);  // leaf 0 busy in slice 0 only
  out.model.set_duration(1, 0, 0, 1.0);  // leaf 1 busy in both slices
  out.model.set_duration(1, 1, 0, 1.0);
  return out;
}

}  // namespace stagg
