#include "workload/synthetic.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace stagg {

StatePattern StatePattern::solid(std::string state) {
  StatePattern p;
  p.elements.push_back({std::move(state), 0.0, 0.0});
  return p;
}

bool Perturbation::applies_to(const std::string& state) const {
  if (states.empty()) return true;
  return std::find(states.begin(), states.end(), state) != states.end();
}

void generate_resource(Trace& trace, ResourceId resource,
                       const ResourceProgram& program, std::uint64_t seed,
                       std::uint64_t stream) {
  Rng rng(seed, stream);
  for (const auto& phase : program.phases) {
    if (phase.end_s <= phase.begin_s) {
      throw InvalidArgument("phase with non-positive span");
    }
    if (phase.pattern.elements.empty()) continue;  // idle phase

    // Solid phase: one state covering the span.
    if (phase.pattern.elements.size() == 1 &&
        phase.pattern.elements[0].mean_s <= 0.0) {
      trace.add_state(resource, phase.pattern.elements[0].state,
                      seconds(phase.begin_s), seconds(phase.end_s));
      continue;
    }

    double t = phase.begin_s;
    std::size_t k = 0;
    while (t < phase.end_s) {
      const auto& el = phase.pattern.elements[k % phase.pattern.elements.size()];
      ++k;
      double dur = el.mean_s;
      if (el.jitter > 0.0) {
        dur = std::max(el.mean_s * 0.05,
                       rng.normal(el.mean_s, el.mean_s * el.jitter));
      }
      // Perturbations stretch matching states inside their window.
      for (const auto& pert : program.perturbations) {
        if (t >= pert.begin_s && t < pert.end_s && pert.applies_to(el.state)) {
          dur *= pert.factor;
        }
      }
      const double end = std::min(t + dur, phase.end_s);
      if (end > t) {
        trace.add_state(resource, el.state, seconds(t), seconds(end));
      }
      t += dur;
    }
  }
}

Trace generate_trace(const Hierarchy& hierarchy,
                     const std::function<ResourceProgram(LeafId)>& programmer,
                     std::uint64_t seed) {
  Trace trace;
  for (std::size_t s = 0; s < hierarchy.leaf_count(); ++s) {
    trace.add_resource(
        hierarchy.path(hierarchy.leaf_node(static_cast<LeafId>(s))));
  }
  for (std::size_t s = 0; s < hierarchy.leaf_count(); ++s) {
    const auto program = programmer(static_cast<LeafId>(s));
    generate_resource(trace, static_cast<ResourceId>(s), program, seed, s);
  }
  trace.seal();
  return trace;
}

std::function<ResourceProgram(LeafId)> make_churn_programmer(
    std::int32_t states, double span_s, double base_mean_s, double jitter) {
  return [states, span_s, base_mean_s, jitter](LeafId leaf) {
    ResourceProgram p;
    StatePattern pattern;
    for (std::int32_t x = 0; x < states; ++x) {
      const double mean =
          base_mean_s + 0.25 * base_mean_s * static_cast<double>((leaf + x) % 7);
      pattern.elements.push_back(
          {"churn" + std::to_string(x), mean, jitter});
    }
    p.phases.push_back({0.0, span_s, std::move(pattern)});
    return p;
  };
}

}  // namespace stagg
