#include "model/microscopic_model.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/error.hpp"
#include "common/math.hpp"

namespace stagg {

MicroscopicModel::MicroscopicModel(const Hierarchy* hierarchy, TimeGrid grid,
                                   StateRegistry states)
    : hier_(hierarchy),
      grid_(grid),
      states_(std::move(states)),
      n_s_(static_cast<std::int32_t>(hierarchy->leaf_count())),
      n_t_(grid.slice_count()),
      n_x_(static_cast<std::int32_t>(states_.size())) {
  if (hier_ == nullptr || hier_->empty()) {
    throw InvalidArgument("MicroscopicModel: empty hierarchy");
  }
  if (n_x_ < 1) {
    throw InvalidArgument("MicroscopicModel: at least one state required");
  }
  data_.assign(static_cast<std::size_t>(n_s_) * n_t_ * n_x_, 0.0);
}

void MicroscopicModel::reshape_window(const TimeGrid& new_grid,
                                      std::int32_t src_shift) {
  if (src_shift < 0) {
    throw InvalidArgument("reshape_window: negative source shift");
  }
  if (src_shift == 0 && new_grid == grid_) return;  // identity (refresh)
  const std::int32_t new_t = new_grid.slice_count();
  const std::size_t col = static_cast<std::size_t>(n_x_);
  std::vector<double> next(
      static_cast<std::size_t>(n_s_) * static_cast<std::size_t>(new_t) * col,
      0.0);
  const SliceId copy_end = std::min<SliceId>(new_t, n_t_ - src_shift);
  if (copy_end > 0) {
    for (LeafId s = 0; s < n_s_; ++s) {
      const double* src =
          data_.data() + (static_cast<std::size_t>(s) * n_t_ + src_shift) * col;
      double* dst = next.data() + static_cast<std::size_t>(s) * new_t * col;
      std::memcpy(dst, src,
                  static_cast<std::size_t>(copy_end) * col * sizeof(double));
    }
  }
  data_ = std::move(next);
  grid_ = new_grid;
  n_t_ = new_t;
}

void MicroscopicModel::zero_slices(SliceId first_dirty) noexcept {
  if (first_dirty < 0) first_dirty = 0;
  const std::size_t col = static_cast<std::size_t>(n_x_);
  for (LeafId s = 0; s < n_s_; ++s) {
    if (first_dirty >= n_t_) break;
    double* base =
        data_.data() + (static_cast<std::size_t>(s) * n_t_ + first_dirty) * col;
    std::fill(base, base + static_cast<std::size_t>(n_t_ - first_dirty) * col,
              0.0);
  }
}

double MicroscopicModel::total_mass() const noexcept {
  KahanSum sum;
  for (double v : data_) sum.add(v);
  return sum.value();
}

void MicroscopicModel::validate() const {
  if (hier_ == nullptr) throw DimensionError("model has no hierarchy");
  if (static_cast<std::size_t>(n_s_) != hier_->leaf_count()) {
    throw DimensionError("leaf count mismatch");
  }
  if (data_.size() != static_cast<std::size_t>(n_s_) * n_t_ * n_x_) {
    throw DimensionError("tensor size mismatch");
  }
  for (LeafId s = 0; s < n_s_; ++s) {
    for (SliceId t = 0; t < n_t_; ++t) {
      double in_slice = 0.0;
      for (StateId x = 0; x < n_x_; ++x) {
        const double d = duration(s, t, x);
        if (d < 0.0) {
          throw DimensionError("negative duration at s=" + std::to_string(s) +
                               " t=" + std::to_string(t));
        }
        in_slice += d;
      }
      const double cap = grid_.slice_duration_s(t) * (1.0 + 1e-6) + 1e-9;
      if (in_slice > cap) {
        throw DimensionError(
            "states of resource " + std::to_string(s) + " overlap in slice " +
            std::to_string(t) + ": " + std::to_string(in_slice) + "s > " +
            std::to_string(grid_.slice_duration_s(t)) + "s");
      }
    }
  }
}

}  // namespace stagg
