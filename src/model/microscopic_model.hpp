// The trace microscopic model (paper §III-A): the tridimensional dataset
// d_x(s, t) — time spent (seconds) in state x by resource (leaf) s during
// time slice t — attached to a platform Hierarchy and a TimeGrid.
//
// Storage is a flat leaf-major tensor: index(s, t, x) = (s*|T| + t)*|X| + x,
// so the per-subtree contiguous leaf ranges of the hierarchy give every
// aggregation algorithm zero-copy views.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hierarchy/hierarchy.hpp"
#include "model/time_grid.hpp"
#include "trace/state_registry.hpp"

namespace stagg {

/// Microscopic description of a trace.  Immutable after build for batch
/// analyses; sliding-window sessions additionally use reshape_window /
/// zero_slices to maintain the tensor in place as the window moves.
class MicroscopicModel {
 public:
  MicroscopicModel() = default;

  /// Creates a zeroed model over the given dimensions.  The hierarchy is
  /// referenced, not owned; it must outlive the model.
  MicroscopicModel(const Hierarchy* hierarchy, TimeGrid grid,
                   StateRegistry states);

  [[nodiscard]] const Hierarchy& hierarchy() const noexcept { return *hier_; }
  [[nodiscard]] const TimeGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] const StateRegistry& states() const noexcept { return states_; }

  [[nodiscard]] std::int32_t resource_count() const noexcept { return n_s_; }
  [[nodiscard]] std::int32_t slice_count() const noexcept { return n_t_; }
  [[nodiscard]] std::int32_t state_count() const noexcept { return n_x_; }

  /// d_x(s,t): seconds spent in state x by leaf s during slice t.
  [[nodiscard]] double duration(LeafId s, SliceId t, StateId x) const noexcept {
    return data_[index(s, t, x)];
  }

  /// rho_x(s,t) = d_x(s,t) / d(t): proportion of slice t spent in state x.
  [[nodiscard]] double proportion(LeafId s, SliceId t, StateId x) const noexcept {
    return duration(s, t, x) / grid_.slice_duration_s(t);
  }

  /// Mutable accumulation (builder API).
  void add_duration(LeafId s, SliceId t, StateId x, double seconds) noexcept {
    data_[index(s, t, x)] += seconds;
  }

  /// Direct assignment; used by hand-crafted fixtures (Fig. 3 trace).
  void set_duration(LeafId s, SliceId t, StateId x, double seconds) noexcept {
    data_[index(s, t, x)] = seconds;
  }

  /// Row of |X| durations for (s, t).
  [[nodiscard]] std::span<const double> durations_at(LeafId s,
                                                     SliceId t) const noexcept {
    return {data_.data() + index(s, t, 0), static_cast<std::size_t>(n_x_)};
  }

  /// Full flat tensor (leaf-major); tests use it for mass checks.
  [[nodiscard]] std::span<const double> raw() const noexcept {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] std::span<double> raw_mutable() noexcept {
    return {data_.data(), data_.size()};
  }

  /// Window maintenance for sliding sessions: re-layouts the tensor for a
  /// changed grid.  New slice column t takes the *bit-exact* contents of
  /// old column t + src_shift; columns with no old counterpart are zeroed
  /// (the caller re-folds the affected suffix from the trace).  The new
  /// grid must cover the same hierarchy and states.
  void reshape_window(const TimeGrid& new_grid, std::int32_t src_shift);

  /// Zeroes every duration cell of slices >= first_dirty — the first step
  /// of a suffix re-fold.
  void zero_slices(SliceId first_dirty) noexcept;

  /// Total traced seconds in the model (sum of the tensor).
  [[nodiscard]] double total_mass() const noexcept;

  /// Throws DimensionError if the dimensions are inconsistent with the
  /// hierarchy, or if any d_x(s,t) exceeds the slice duration beyond
  /// tolerance (states of one resource may not overlap).
  void validate() const;

 private:
  [[nodiscard]] std::size_t index(LeafId s, SliceId t, StateId x) const noexcept {
    return (static_cast<std::size_t>(s) * static_cast<std::size_t>(n_t_) +
            static_cast<std::size_t>(t)) *
               static_cast<std::size_t>(n_x_) +
           static_cast<std::size_t>(x);
  }

  const Hierarchy* hier_ = nullptr;
  TimeGrid grid_;
  StateRegistry states_;
  std::int32_t n_s_ = 0;
  std::int32_t n_t_ = 0;
  std::int32_t n_x_ = 0;
  std::vector<double> data_;
};

}  // namespace stagg
