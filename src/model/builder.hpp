// Builds the microscopic model from a trace (Table II "microscopic
// description" step).
//
// Each state interval is clipped against the slices it overlaps and its
// overlap durations accumulated into d_x(s,t).  The fold consumes a
// TraceView — a zero-copy chunk-cursor selection of a shared TraceStore —
// so any number of concurrent model builds (different windows, slice
// counts, hierarchy scopes) read the same immutable chunks without copying
// the event data.  The build is parallel over resources (each leaf owns a
// disjoint tensor stripe, so no synchronization is needed) and is also
// available in streaming form, fed by stream_binary_trace, for traces
// larger than memory.  The Trace& overloads are compatibility shims that
// seal the facade and fold through a full-window view.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hierarchy/hierarchy.hpp"
#include "model/microscopic_model.hpp"
#include "trace/binary_io.hpp"
#include "trace/trace.hpp"
#include "trace/trace_view.hpp"

namespace stagg {

/// Options of the model build.
struct ModelBuildOptions {
  std::int32_t slice_count = 30;  ///< |T|; the paper uses 30 everywhere.
  /// Match trace resources to hierarchy leaves by path (true) or by index
  /// order (false).  Path matching tolerates permuted traces.
  bool match_by_path = true;
  /// Restrict the model window; {0,0} means "use the trace window".
  TimeNs window_begin = 0;
  TimeNs window_end = 0;
};

/// Builds d_x(s,t) from a trace view: the grid covers the view's window
/// (or the explicit options window — the view must cover it) and every
/// selected interval is folded through the chunk cursors in sorted order.
/// Throws DimensionError when a view resource cannot be mapped onto a
/// hierarchy leaf.
[[nodiscard]] MicroscopicModel build_model(const TraceView& view,
                                           const Hierarchy& hierarchy,
                                           const ModelBuildOptions& options = {});

/// Compatibility shim: seals `trace` and folds a full-window view of its
/// store.  Bit-identical to the view overload.
[[nodiscard]] MicroscopicModel build_model(Trace& trace,
                                           const Hierarchy& hierarchy,
                                           const ModelBuildOptions& options = {});

/// Streaming build straight from a binary trace file: reads the header,
/// maps resources, and folds record chunks into the tensor without ever
/// materializing the trace.  Reports the same result as read + build.
[[nodiscard]] MicroscopicModel build_model_streaming(
    const std::string& trace_path, const Hierarchy& hierarchy,
    const ModelBuildOptions& options = {});

/// Re-folds the view into the slice columns t >= first_dirty of an
/// existing model (zeroing them first) — the ingest step of a
/// sliding-window session after the window moved or events were appended.
/// Intervals are clipped half-open against the model window, and
/// contributions to each (leaf, slice, state) cell accumulate in the same
/// per-resource sorted interval order as build_model, so the refolded
/// columns are bit-identical to the corresponding columns of a fresh
/// build over the same window.
void refold_suffix(MicroscopicModel& model, const TraceView& view,
                   const Hierarchy& hierarchy, SliceId first_dirty,
                   bool match_by_path = true);

/// Compatibility shim over a window-matched view of `trace`'s store.
void refold_suffix(MicroscopicModel& model, Trace& trace,
                   const Hierarchy& hierarchy, SliceId first_dirty,
                   bool match_by_path = true);

namespace detail {
/// Maps trace resource ids to hierarchy leaves.  Exposed for tests.
[[nodiscard]] std::vector<LeafId> map_resources(
    const std::vector<std::string>& resource_paths, const Hierarchy& hierarchy,
    bool match_by_path);
}  // namespace detail

}  // namespace stagg
