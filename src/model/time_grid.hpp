// The temporal dimension of the trace model (paper §III-A(2)).
//
// The raw continuous trace time is divided into |T| regular time periods
// ("slices"); events are associated with the periods they are active in.
// The paper uses 30 slices for every Table II scenario; the library supports
// any count.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/event.hpp"

namespace stagg {

/// Index of a time slice in [0, slice_count).
using SliceId = std::int32_t;

/// Uniform slicing of a window [begin, end) into `count` slices.
class TimeGrid {
 public:
  TimeGrid() = default;

  /// Throws InvalidArgument when count < 1 or end <= begin.
  TimeGrid(TimeNs begin, TimeNs end, std::int32_t count);

  [[nodiscard]] TimeNs begin() const noexcept { return begin_; }
  [[nodiscard]] TimeNs end() const noexcept { return end_; }
  [[nodiscard]] std::int32_t slice_count() const noexcept { return count_; }

  /// Slice boundaries: slice t covers [slice_begin(t), slice_end(t)).
  /// Boundaries are computed multiplicatively so they are exact and the last
  /// slice ends exactly at end() (no cumulative rounding drift).
  [[nodiscard]] TimeNs slice_begin(SliceId t) const noexcept {
    return begin_ + span_ * t / count_;
  }
  [[nodiscard]] TimeNs slice_end(SliceId t) const noexcept {
    return begin_ + span_ * (t + 1) / count_;
  }
  /// d(t): duration of slice t in seconds.
  [[nodiscard]] double slice_duration_s(SliceId t) const noexcept {
    return to_seconds(slice_end(t) - slice_begin(t));
  }

  /// Slice containing timestamp `time` (clamped to [0, count)).
  [[nodiscard]] SliceId slice_of(TimeNs time) const noexcept;

  /// Overlap in seconds between [a, b) and slice t.
  [[nodiscard]] double overlap_s(TimeNs a, TimeNs b, SliceId t) const noexcept;

  /// Total duration of the interval of slices [i, j] in seconds.
  [[nodiscard]] double interval_duration_s(SliceId i, SliceId j) const noexcept {
    return to_seconds(slice_end(j) - slice_begin(i));
  }

  friend bool operator==(const TimeGrid&, const TimeGrid&) = default;

 private:
  TimeNs begin_ = 0;
  TimeNs end_ = 0;
  TimeNs span_ = 0;
  std::int32_t count_ = 0;
};

}  // namespace stagg
