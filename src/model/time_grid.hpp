// The temporal dimension of the trace model (paper §III-A(2)).
//
// The raw continuous trace time is divided into |T| regular time periods
// ("slices"); events are associated with the periods they are active in.
// The paper uses 30 slices for every Table II scenario; the library supports
// any count.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/event.hpp"

namespace stagg {

/// Index of a time slice in [0, slice_count).
using SliceId = std::int32_t;

/// Uniform slicing of a window [begin, end) into `count` slices.
class TimeGrid {
 public:
  TimeGrid() = default;

  /// Throws InvalidArgument when count < 1 or end <= begin.
  TimeGrid(TimeNs begin, TimeNs end, std::int32_t count);

  [[nodiscard]] TimeNs begin() const noexcept { return begin_; }
  [[nodiscard]] TimeNs end() const noexcept { return end_; }
  [[nodiscard]] std::int32_t slice_count() const noexcept { return count_; }

  /// Slice boundaries: slice t covers [slice_begin(t), slice_end(t)).
  /// Boundaries are computed multiplicatively so they are exact and the last
  /// slice ends exactly at end() (no cumulative rounding drift).
  [[nodiscard]] TimeNs slice_begin(SliceId t) const noexcept {
    return begin_ + span_ * t / count_;
  }
  [[nodiscard]] TimeNs slice_end(SliceId t) const noexcept {
    return begin_ + span_ * (t + 1) / count_;
  }
  /// d(t): duration of slice t in seconds.
  [[nodiscard]] double slice_duration_s(SliceId t) const noexcept {
    return to_seconds(slice_end(t) - slice_begin(t));
  }

  /// Slice containing timestamp `time` (clamped to [0, count)): the unique
  /// t with slice_begin(t) <= time < slice_end(t).  Timestamps exactly on a
  /// slice edge belong to the slice *starting* there (half-open convention);
  /// time >= end() clamps to the last slice.
  [[nodiscard]] SliceId slice_of(TimeNs time) const noexcept;

  /// Exact slice width in ns when all slices are equal (span divisible by
  /// the count), 0 otherwise.  The window-derivation helpers below require
  /// a uniform width: it is what makes a derived grid's slice edges
  /// bit-identical to a fresh grid over the same span (every edge is
  /// begin + t * dt recomputed from the origin, never accumulated).
  [[nodiscard]] TimeNs uniform_dt_ns() const noexcept {
    return count_ > 0 && span_ % count_ == 0 ? span_ / count_ : 0;
  }

  /// Window slid forward by `slices` whole slices (same count, same dt):
  /// [begin + k*dt, end + k*dt).  Throws InvalidArgument unless the grid
  /// has a uniform dt.  Negative k slides backward.
  [[nodiscard]] TimeGrid advanced(std::int32_t slices) const;
  /// Window extended by `slices` new trailing slices (count grows):
  /// [begin, end + k*dt).  Existing slice edges are preserved exactly.
  /// Throws InvalidArgument when dt is not uniform or `slices` is
  /// negative (use contracted() to shrink).
  [[nodiscard]] TimeGrid extended(std::int32_t slices) const;
  /// Window contracted by `slices` trailing slices (count shrinks):
  /// [begin, end - k*dt).  Throws InvalidArgument unless dt is uniform,
  /// or when fewer than one slice would remain.
  [[nodiscard]] TimeGrid contracted(std::int32_t slices) const;

  /// Overlap in seconds between [a, b) and slice t.
  [[nodiscard]] double overlap_s(TimeNs a, TimeNs b, SliceId t) const noexcept;

  /// Total duration of the interval of slices [i, j] in seconds.
  [[nodiscard]] double interval_duration_s(SliceId i, SliceId j) const noexcept {
    return to_seconds(slice_end(j) - slice_begin(i));
  }

  friend bool operator==(const TimeGrid&, const TimeGrid&) = default;

 private:
  TimeNs begin_ = 0;
  TimeNs end_ = 0;
  TimeNs span_ = 0;
  std::int32_t count_ = 0;
};

}  // namespace stagg
