#include "model/time_grid.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace stagg {

TimeGrid::TimeGrid(TimeNs begin, TimeNs end, std::int32_t count)
    : begin_(begin), end_(end), span_(end - begin), count_(count) {
  if (count < 1) throw InvalidArgument("TimeGrid: slice count must be >= 1");
  if (end <= begin) throw InvalidArgument("TimeGrid: empty window");
}

SliceId TimeGrid::slice_of(TimeNs time) const noexcept {
  if (time < begin_) return 0;
  if (time >= end_) return count_ - 1;
  // Integer computation mirroring slice_begin (128-bit safe via long double
  // avoided: span_ * count fits i64 for realistic traces, but guard anyway).
  auto idx = std::clamp<SliceId>(
      static_cast<SliceId>(static_cast<__int128>(time - begin_) * count_ /
                           span_),
      0, count_ - 1);
  // When span % count != 0 the floor above can land one slice off for
  // timestamps exactly on (or within the rounding slack of) a slice edge —
  // e.g. span 10, count 3: slice_begin(1) = 3 but 3*3/10 floors to 0.
  // Nudge onto the unique slice with slice_begin <= time < slice_end.
  while (idx + 1 < count_ && time >= slice_end(idx)) ++idx;
  while (idx > 0 && time < slice_begin(idx)) --idx;
  return idx;
}

double TimeGrid::overlap_s(TimeNs a, TimeNs b, SliceId t) const noexcept {
  const TimeNs lo = std::max(a, slice_begin(t));
  const TimeNs hi = std::min(b, slice_end(t));
  return hi > lo ? to_seconds(hi - lo) : 0.0;
}

namespace {

TimeNs require_uniform_dt(const TimeGrid& g, const char* op) {
  const TimeNs dt = g.uniform_dt_ns();
  if (dt == 0) {
    throw InvalidArgument(std::string("TimeGrid::") + op +
                          ": window span must be divisible by the slice "
                          "count (uniform dt) so derived slice edges stay "
                          "exact");
  }
  return dt;
}

}  // namespace

TimeGrid TimeGrid::advanced(std::int32_t slices) const {
  const TimeNs dt = require_uniform_dt(*this, "advanced");
  const TimeNs shift = dt * slices;
  return TimeGrid(begin_ + shift, end_ + shift, count_);
}

TimeGrid TimeGrid::extended(std::int32_t slices) const {
  if (slices < 0) {
    throw InvalidArgument("TimeGrid::extended: negative slice delta");
  }
  const TimeNs dt = require_uniform_dt(*this, "extended");
  return TimeGrid(begin_, end_ + dt * slices, count_ + slices);
}

TimeGrid TimeGrid::contracted(std::int32_t slices) const {
  const TimeNs dt = require_uniform_dt(*this, "contracted");
  if (slices < 0 || slices >= count_) {
    throw InvalidArgument(
        "TimeGrid::contracted: must leave at least one slice");
  }
  return TimeGrid(begin_, end_ - dt * slices, count_ - slices);
}

}  // namespace stagg
