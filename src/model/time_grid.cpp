#include "model/time_grid.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace stagg {

TimeGrid::TimeGrid(TimeNs begin, TimeNs end, std::int32_t count)
    : begin_(begin), end_(end), span_(end - begin), count_(count) {
  if (count < 1) throw InvalidArgument("TimeGrid: slice count must be >= 1");
  if (end <= begin) throw InvalidArgument("TimeGrid: empty window");
}

SliceId TimeGrid::slice_of(TimeNs time) const noexcept {
  if (time <= begin_) return 0;
  if (time >= end_) return count_ - 1;
  // Integer computation mirroring slice_begin (128-bit safe via long double
  // avoided: span_ * count fits i64 for realistic traces, but guard anyway).
  const auto idx = static_cast<SliceId>(
      static_cast<__int128>(time - begin_) * count_ / span_);
  return std::clamp<SliceId>(idx, 0, count_ - 1);
}

double TimeGrid::overlap_s(TimeNs a, TimeNs b, SliceId t) const noexcept {
  const TimeNs lo = std::max(a, slice_begin(t));
  const TimeNs hi = std::min(b, slice_end(t));
  return hi > lo ? to_seconds(hi - lo) : 0.0;
}

}  // namespace stagg
