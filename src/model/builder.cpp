#include "model/builder.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace stagg {

namespace detail {

std::vector<LeafId> map_resources(const std::vector<std::string>& paths,
                                  const Hierarchy& hierarchy,
                                  bool match_by_path) {
  if (paths.size() != hierarchy.leaf_count()) {
    throw DimensionError("trace has " + std::to_string(paths.size()) +
                         " resources but hierarchy has " +
                         std::to_string(hierarchy.leaf_count()) + " leaves");
  }
  std::vector<LeafId> map(paths.size());
  if (!match_by_path) {
    for (std::size_t i = 0; i < paths.size(); ++i) {
      map[i] = static_cast<LeafId>(i);
    }
    return map;
  }
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const NodeId node = hierarchy.find(paths[i]);
    if (node == kNoNode || !hierarchy.is_leaf(node)) {
      throw DimensionError("trace resource '" + paths[i] +
                           "' is not a hierarchy leaf");
    }
    map[i] = hierarchy.node(node).first_leaf;
  }
  // The mapping must be a bijection.
  std::vector<LeafId> sorted = map;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != static_cast<LeafId>(i)) {
      throw DimensionError("trace resources do not cover hierarchy leaves");
    }
  }
  return map;
}

namespace {

/// Folds one interval into the tensor: distributes [begin,end) over the
/// slices it overlaps, restricted to slices >= min_slice (0 = all).  The
/// half-open convention keeps edge events unambiguous: an interval ending
/// exactly on a slice edge contributes nothing past the edge, one starting
/// exactly on it contributes nothing before, and a zero-duration interval
/// contributes nowhere.
inline void fold_interval(MicroscopicModel& model, const TimeGrid& grid,
                          LeafId leaf, const StateInterval& s,
                          SliceId min_slice = 0) {
  const TimeNs lo = std::max(s.begin, grid.begin());
  const TimeNs hi = std::min(s.end, grid.end());
  if (hi <= lo) return;
  const SliceId first = std::max(grid.slice_of(lo), min_slice);
  const SliceId last = grid.slice_of(hi - 1);
  for (SliceId t = first; t <= last; ++t) {
    const double overlap = grid.overlap_s(lo, hi, t);
    if (overlap > 0.0) model.add_duration(leaf, t, s.state, overlap);
  }
}

TimeGrid make_grid(TimeNs trace_begin, TimeNs trace_end,
                   const ModelBuildOptions& options) {
  TimeNs begin = options.window_begin;
  TimeNs end = options.window_end;
  if (begin == 0 && end == 0) {
    begin = trace_begin;
    end = trace_end;
  }
  if (end <= begin) {
    throw InvalidArgument("model window is empty; trace has no events?");
  }
  return TimeGrid(begin, end, options.slice_count);
}

/// Effective model window of a Trace compatibility shim (explicit options
/// window, else the sealed trace window).
std::pair<TimeNs, TimeNs> effective_window(const Trace& trace,
                                           const ModelBuildOptions& options) {
  if (options.window_begin == 0 && options.window_end == 0) {
    return {trace.begin(), trace.end()};
  }
  return {options.window_begin, options.window_end};
}

}  // namespace
}  // namespace detail

MicroscopicModel build_model(const TraceView& view, const Hierarchy& hierarchy,
                             const ModelBuildOptions& options) {
  const auto map = detail::map_resources(view.resource_paths(), hierarchy,
                                         options.match_by_path);
  const TimeGrid grid = detail::make_grid(view.begin(), view.end(), options);
  MicroscopicModel model(&hierarchy, grid, view.states());

  // Parallel over view resources: leaf stripes are disjoint by bijection.
  parallel_for(
      view.resource_count(),
      [&](std::size_t r) {
        const LeafId leaf = map[r];
        view.for_each(r, [&](const StateInterval& s) {
          detail::fold_interval(model, grid, leaf, s);
        });
      },
      /*grain=*/1);
  return model;
}

MicroscopicModel build_model(Trace& trace, const Hierarchy& hierarchy,
                             const ModelBuildOptions& options) {
  trace.seal();
  // A degenerate window still builds the (empty) view first so the error
  // order of the original code is preserved: resource-mapping problems
  // throw DimensionError before make_grid rejects the window.
  const auto [begin, end] = detail::effective_window(trace, options);
  return build_model(trace.view(begin, std::max(begin, end)), hierarchy,
                     options);
}

void refold_suffix(MicroscopicModel& model, const TraceView& view,
                   const Hierarchy& hierarchy, SliceId first_dirty,
                   bool match_by_path) {
  first_dirty = std::clamp<SliceId>(first_dirty, 0, model.slice_count());
  if (first_dirty >= model.slice_count()) return;  // nothing dirty: no-op
  const auto map =
      detail::map_resources(view.resource_paths(), hierarchy, match_by_path);
  const TimeGrid& grid = model.grid();
  model.zero_slices(first_dirty);
  // Skipping intervals that end at or before the dirty region is pure
  // pruning: fold_interval would contribute nothing there anyway.
  const TimeNs dirty_begin = grid.slice_begin(first_dirty);
  parallel_for(
      view.resource_count(),
      [&](std::size_t r) {
        const LeafId leaf = map[r];
        view.for_each(r, [&](const StateInterval& s) {
          if (s.end <= dirty_begin) return;
          detail::fold_interval(model, grid, leaf, s, first_dirty);
        });
      },
      /*grain=*/1);
}

void refold_suffix(MicroscopicModel& model, Trace& trace,
                   const Hierarchy& hierarchy, SliceId first_dirty,
                   bool match_by_path) {
  trace.seal();
  refold_suffix(model,
                trace.view(model.grid().begin(), model.grid().end()),
                hierarchy, first_dirty, match_by_path);
}

MicroscopicModel build_model_streaming(const std::string& trace_path,
                                       const Hierarchy& hierarchy,
                                       const ModelBuildOptions& options) {
  const TraceFileInfo info = read_binary_trace_info(trace_path);
  const auto map = detail::map_resources(info.resource_paths, hierarchy,
                                         options.match_by_path);
  const TimeGrid grid =
      detail::make_grid(info.window_begin, info.window_end, options);
  MicroscopicModel model(&hierarchy, grid, info.states);

  stream_binary_trace(trace_path, [&](std::span<const TraceRecord> chunk) {
    for (const auto& rec : chunk) {
      detail::fold_interval(model, grid,
                            map[static_cast<std::size_t>(rec.resource)],
                            rec.interval);
    }
  });
  return model;
}

}  // namespace stagg
