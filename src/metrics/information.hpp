// Information-theoretic measures of the aggregation trade-off (paper §III-C).
//
// For a macroscopic area (S_k, T_(i,j)) and a state x, with
//   rho_agg = aggregated proportion (Eq. 1)
//   sum_rho = sum of microscopic proportions rho_x(s,t) over the area
//   sum_rho_log = sum of rho_x(s,t) * log2 rho_x(s,t) over the area
// the measures are
//   loss_x = sum_rho_log - sum_rho * log2(rho_agg)          (Eq. 2, KL form)
//   gain_x = rho_agg * log2(rho_agg) - sum_rho_log          (Eq. 3, entropy)
//   pIC_x  = p * gain_x - (1 - p) * loss_x                  (Eq. 4)
// pIC is additive over the parts of a partition and over states.
#pragma once

#include <cstdint>

#include "common/math.hpp"

namespace stagg {

/// Per-state additive sums describing one spatiotemporal area.  All three
/// fields are additive over sub-areas, which is what the DataCube's
/// per-slice accumulation exploits.
struct StateAreaSums {
  double sum_d = 0.0;        ///< seconds spent in the state over the area
  double sum_rho = 0.0;      ///< sum of microscopic proportions
  double sum_rho_log = 0.0;  ///< sum of rho * log2(rho)

  StateAreaSums& operator+=(const StateAreaSums& o) noexcept {
    sum_d += o.sum_d;
    sum_rho += o.sum_rho;
    sum_rho_log += o.sum_rho_log;
    return *this;
  }
};

/// Gain and loss of an area, summed over states.
struct AreaMeasures {
  double gain = 0.0;
  double loss = 0.0;

  AreaMeasures& operator+=(const AreaMeasures& o) noexcept {
    gain += o.gain;
    loss += o.loss;
    return *this;
  }
};

/// Aggregated proportion rho_x(S_k, T_(i,j)) (Eq. 1): total state seconds
/// divided by the resource count times the interval duration.
[[nodiscard]] inline double aggregated_proportion(
    double sum_d, double leaf_count, double interval_duration_s) noexcept {
  const double denom = leaf_count * interval_duration_s;
  return denom > 0.0 ? sum_d / denom : 0.0;
}

/// Rounding-noise floor of loss/gain over an area of `cells` microscopic
/// cells.  The measures subtract accumulated sums whose ulp-level errors
/// are amplified by sum_rho (up to `cells`); on an exactly homogeneous area
/// the analytic value is 0 but the computed one can reach ~cells * 1e-13.
/// Snapping values below the floor to zero keeps homogeneous areas exact
/// ties so the aggregation's coarsest-tie rule applies (information below
/// 1e-12 bit per cell is meaningless anyway).
[[nodiscard]] inline double measure_noise_floor(double cells) noexcept {
  return 1e-12 * cells + 1e-14;
}

/// Information loss of one state over one area (Eq. 2).  Zero when the area
/// is homogeneous (all microscopic proportions equal) or empty.
/// `cells` (when > 0) enables the rounding-noise snap-to-zero.
[[nodiscard]] inline double state_loss(const StateAreaSums& s, double rho_agg,
                                       double cells = 0.0) noexcept {
  if (rho_agg <= 0.0) return 0.0;  // then every rho is 0, loss is 0
  const double loss = s.sum_rho_log - s.sum_rho * safe_log2(rho_agg);
  if (cells > 0.0 && std::abs(loss) < measure_noise_floor(cells)) return 0.0;
  return loss;
}

/// Data-reduction gain of one state over one area (Eq. 3).
[[nodiscard]] inline double state_gain(const StateAreaSums& s, double rho_agg,
                                       double cells = 0.0) noexcept {
  const double gain = xlog2x(rho_agg) - s.sum_rho_log;
  if (cells > 0.0 && std::abs(gain) < measure_noise_floor(cells)) return 0.0;
  return gain;
}

/// Parametrized Information Criterion (Eq. 4).
[[nodiscard]] inline double pic(double p, double gain, double loss) noexcept {
  return p * gain - (1.0 - p) * loss;
}

[[nodiscard]] inline double pic(double p, const AreaMeasures& m) noexcept {
  return pic(p, m.gain, m.loss);
}

}  // namespace stagg
