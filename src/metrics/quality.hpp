// Partition quality indicators shown to the analyst (criteria G5/G6: the
// tool reports how far a representation is from the microscopic model).
#pragma once

#include <cstddef>
#include <string>

namespace stagg {

/// Normalized quality of a chosen partition, as Ocelotl displays it next to
/// the aggregation-strength slider.
struct PartitionQuality {
  std::size_t area_count = 0;        ///< |P|
  std::size_t microscopic_count = 0; ///< |S| * |T|
  double gain = 0.0;                 ///< total gain of the partition
  double loss = 0.0;                 ///< total loss of the partition
  double max_gain = 0.0;             ///< gain of the full aggregation
  double max_loss = 0.0;             ///< loss of the full aggregation

  /// Complexity reduction in [0,1]: 1 - |P| / |S x T|.
  [[nodiscard]] double complexity_reduction() const noexcept {
    return microscopic_count == 0
               ? 0.0
               : 1.0 - static_cast<double>(area_count) /
                           static_cast<double>(microscopic_count);
  }
  /// Fraction of the maximal gain achieved, in [0,1] when max_gain > 0.
  [[nodiscard]] double gain_fraction() const noexcept {
    return max_gain != 0.0 ? gain / max_gain : 0.0;
  }
  /// Fraction of the maximal loss incurred, in [0,1] when max_loss > 0.
  [[nodiscard]] double loss_fraction() const noexcept {
    return max_loss != 0.0 ? loss / max_loss : 0.0;
  }
};

/// One-line rendering: "areas=56/240 reduction=76.7% loss=12.3%".
[[nodiscard]] std::string format_quality(const PartitionQuality& q);

}  // namespace stagg
