#include "metrics/quality.hpp"

#include <cstdio>

namespace stagg {

std::string format_quality(const PartitionQuality& q) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "areas=%zu/%zu reduction=%.1f%% gain=%.1f%% loss=%.1f%%",
                q.area_count, q.microscopic_count,
                q.complexity_reduction() * 100.0, q.gain_fraction() * 100.0,
                q.loss_fraction() * 100.0);
  return buf;
}

}  // namespace stagg
