// Hierarchy-and-order-consistent partitions of S x T (paper §III-B).
//
// A partition is a set of macroscopic areas (S_k, T_(i,j)) — each the
// Cartesian product of a hierarchy node and a slice interval — that are
// pairwise disjoint and cover S x T.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/interval.hpp"
#include "hierarchy/hierarchy.hpp"

namespace stagg {

/// One macroscopic spatiotemporal area.
struct Area {
  NodeId node = kNoNode;
  TimeInterval time;

  friend constexpr bool operator==(const Area&, const Area&) = default;
};

/// An (unvalidated) set of areas with canonicalization, counting and
/// hashing utilities.  Validation against a hierarchy checks the
/// disjoint-and-covering property by painting the S x T grid.
class Partition {
 public:
  Partition() = default;
  explicit Partition(std::vector<Area> areas) : areas_(std::move(areas)) {}

  void add(NodeId node, SliceId i, SliceId j) {
    areas_.push_back({node, {i, j}});
  }

  [[nodiscard]] const std::vector<Area>& areas() const noexcept {
    return areas_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return areas_.size(); }
  [[nodiscard]] bool empty() const noexcept { return areas_.empty(); }

  /// Sorts areas by (first_leaf, node depth, interval); makes signatures
  /// and equality canonical.
  void canonicalize(const Hierarchy& h);

  /// True when the areas are pairwise disjoint and cover all |S| x |T|
  /// microscopic cells of the given dimensions.
  [[nodiscard]] bool is_valid(const Hierarchy& h, std::int32_t slices) const;

  /// Order-insensitive 64-bit hash (FNV over sorted area triples); used by
  /// the dichotomic p-search to detect partition changes.
  [[nodiscard]] std::uint64_t signature() const;

  /// Number of distinct temporal cut positions used by any area (phase
  /// boundary candidates).
  [[nodiscard]] std::vector<SliceId> temporal_cut_slices() const;

  /// Areas covering a given leaf, in time order.
  [[nodiscard]] std::vector<Area> row_of_leaf(const Hierarchy& h,
                                              LeafId leaf) const;

  /// Human-readable dump ("node-path [i..j]" per line) for tests/debugging.
  [[nodiscard]] std::string to_string(const Hierarchy& h) const;

  friend bool operator==(const Partition& a, const Partition& b) {
    return a.areas_ == b.areas_;
  }

 private:
  std::vector<Area> areas_;
};

}  // namespace stagg
