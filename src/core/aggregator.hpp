// The spatiotemporal aggregation algorithm (paper §III-E, Algorithm 1).
//
// Exact dynamic program over the tree of packed upper-triangular matrices:
// for every hierarchy node S_k and slice interval T_(i,j) it computes
//   pIC[i,j]  — the criterion of an *optimal* partition of (S_k, T_(i,j))
//   cut[i,j]  — the first step of a cut sequence realizing it:
//                 cut == j        the area itself is an aggregate ("no cut")
//                 cut == -1       spatial cut into the children of S_k
//                 cut in [i, j)   temporal cut between slices cut and cut+1
// Children are processed before parents (post-order); sibling subtrees are
// independent and processed in parallel, level by level.  Complexity:
// O(|S|·|T|^3) time, O(|S|·|T|^2) space, as derived in the paper.
//
// Tie-breaking: when an aggregate and a cut have equal pIC, the aggregate
// wins (strict '>' in Algorithm 1), so the coarsest optimal partition is
// returned — e.g. at p = 0 a fully homogeneous trace collapses to one area
// even though the microscopic partition is equally optimal.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cube.hpp"
#include "core/partition.hpp"
#include "metrics/quality.hpp"

namespace stagg {

/// Knobs of the spatiotemporal aggregation.
struct AggregationOptions {
  /// Upper bound on the DP working set (pIC + cut triangular matrices).
  std::size_t memory_budget_bytes = std::size_t{6} << 30;
  /// Process sibling subtrees on the shared thread pool.
  bool parallel = true;
  /// Normalize gain and loss by their full-aggregation (root area) values
  /// before the trade-off, making p scales comparable across traces — the
  /// behaviour of the Ocelotl tool.  Off reproduces Eq. 4 verbatim.
  bool normalize = false;
};

/// Output of one aggregation run.
struct AggregationResult {
  double p = 0.0;
  Partition partition;
  /// pIC of the optimal partition (root cell of the DP), in the same
  /// normalization as the run.
  double optimal_pic = 0.0;
  /// Raw (unnormalized) gain/loss summed over the chosen areas.
  AreaMeasures measures;
  PartitionQuality quality;
};

/// Reusable aggregator: builds the DataCube once; run(p) executes the DP.
class SpatiotemporalAggregator {
 public:
  explicit SpatiotemporalAggregator(const MicroscopicModel& model,
                                    AggregationOptions options = {});

  /// Runs Algorithm 1 for a given trade-off parameter p in [0, 1].
  /// Throws InvalidArgument on out-of-range p, BudgetError when the DP
  /// working set would exceed the memory budget.
  [[nodiscard]] AggregationResult run(double p);

  [[nodiscard]] const DataCube& cube() const noexcept { return cube_; }
  [[nodiscard]] const MicroscopicModel& model() const noexcept {
    return cube_.model();
  }

  /// Bytes the DP working set will allocate (pIC doubles + cut int32s for
  /// every node) — the paper's O(|S|·|T|^2) term.
  [[nodiscard]] static std::size_t estimate_bytes(std::size_t node_count,
                                                  std::int32_t slices);

  /// Evaluates an arbitrary partition against this model: raw gain/loss
  /// sums and normalized quality.  Used to score baseline partitions
  /// (uniform, Cartesian) with identical measures.
  [[nodiscard]] AggregationResult evaluate(const Partition& partition,
                                           double p) const;

 private:
  void compute_node(NodeId node, double p, double gain_scale,
                    double loss_scale);
  void extract_partition(Partition& out) const;

  const MicroscopicModel* model_;
  AggregationOptions options_;
  DataCube cube_;
  TriangularIndex tri_;
  std::vector<std::vector<NodeId>> levels_;  ///< nodes grouped by depth
  std::vector<std::vector<double>> pic_;     ///< per-node packed pIC
  std::vector<std::vector<std::int32_t>> cut_;  ///< per-node packed cuts
  /// Area count of the optimal sub-partition per cell; used only as the
  /// tie-breaker that keeps equal-pIC partitions maximally coarse.
  std::vector<std::vector<std::int32_t>> cnt_;
};

}  // namespace stagg
