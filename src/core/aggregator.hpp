// The spatiotemporal aggregation algorithm (paper §III-E, Algorithm 1).
//
// Exact dynamic program over the tree of packed upper-triangular matrices:
// for every hierarchy node S_k and slice interval T_(i,j) it computes
//   pIC[i,j]  — the criterion of an *optimal* partition of (S_k, T_(i,j))
//   cut[i,j]  — the first step of a cut sequence realizing it:
//                 cut == j        the area itself is an aggregate ("no cut")
//                 cut == -1       spatial cut into the children of S_k
//                 cut in [i, j)   temporal cut between slices cut and cut+1
// Children are processed before parents (post-order); sibling subtrees are
// independent and processed in parallel, level by level.  Inside a level
// with a single node (notably the root, whose DP would otherwise run
// serially), cells are swept by anti-diagonals: all intervals of equal
// length j - i are mutually independent, so each wavefront is a parallel_for.
//
// Complexity: the p-independent gain/loss of every cell is computed once
// into a MeasureCache — O(|S|·|T|²·|X|), shared by all subsequent runs —
// after which each run(p) is a pure multiply-add DP, O(|S|·|T|³) time and
// O(|S|·|T|²) space as derived in the paper.  A p-sweep therefore pays the
// measure pass once; use run_many() (or find_significant_levels, which is
// built on it) to amortize the cache build and the DP arena across probes:
//
//   SpatiotemporalAggregator agg(model);
//   const double ps[] = {0.0, 0.25, 0.5, 0.75, 1.0};
//   std::vector<AggregationResult> sweep = agg.run_many(ps);
//
// The DP buffers are pooled and reused between runs (no per-run
// allocation); the kernel keeps a column-major mirror of each node's pIC
// matrix so the temporal-cut right operand pIC(c+1, j) is read contiguously.
//
// Tie-breaking: when an aggregate and a cut have equal pIC, the aggregate
// wins (strict '>' in Algorithm 1), so the coarsest optimal partition is
// returned — e.g. at p = 0 a fully homogeneous trace collapses to one area
// even though the microscopic partition is equally optimal.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/cube.hpp"
#include "core/measure_cache.hpp"
#include "core/partition.hpp"
#include "metrics/quality.hpp"

namespace stagg {

/// DP kernel selection.  kCachedWavefront is the production kernel
/// (MeasureCache + wavefront + pooled buffers); kReference recomputes every
/// cell's measures from the cube and frees its buffers after each run — the
/// original per-cell formulation, kept as the equivalence-test oracle and
/// the "before" baseline of bench_multi_p.  Both produce bit-identical
/// pIC values and identical partitions.
enum class DpKernel : std::uint8_t { kCachedWavefront, kReference };

/// Knobs of the spatiotemporal aggregation.
struct AggregationOptions {
  /// Upper bound on the peak working set: the pooled DP matrices of two
  /// adjacent levels + cut matrices + the p-independent MeasureCache.
  std::size_t memory_budget_bytes = std::size_t{6} << 30;
  /// Process sibling subtrees (and single-node levels' wavefronts) on the
  /// shared thread pool.
  bool parallel = true;
  /// Normalize gain and loss by their full-aggregation (root area) values
  /// before the trade-off, making p scales comparable across traces — the
  /// behaviour of the Ocelotl tool.  Off reproduces Eq. 4 verbatim.
  bool normalize = false;
  /// DP kernel; see DpKernel.
  DpKernel kernel = DpKernel::kCachedWavefront;
};

/// Output of one aggregation run.
struct AggregationResult {
  double p = 0.0;
  Partition partition;
  /// pIC of the optimal partition (root cell of the DP), in the same
  /// normalization as the run.
  double optimal_pic = 0.0;
  /// Raw (unnormalized) gain/loss summed over the chosen areas.
  AreaMeasures measures;
  PartitionQuality quality;
};

/// Reusable aggregator: builds the DataCube once; the measure cache is
/// built lazily on the first cached-kernel run; run(p) executes the DP.
class SpatiotemporalAggregator {
 public:
  explicit SpatiotemporalAggregator(const MicroscopicModel& model,
                                    AggregationOptions options = {});

  /// Runs Algorithm 1 for a given trade-off parameter p in [0, 1].
  /// Throws InvalidArgument on out-of-range p, BudgetError when the peak
  /// working set would exceed the memory budget.
  [[nodiscard]] AggregationResult run(double p);

  /// Batched sweep: one result per parameter, in order.  Equivalent to
  /// calling run() per element but validates every p and checks the budget
  /// up front, and shares the measure cache and the DP buffer arena across
  /// all probes — the intended API for dichotomic level searches and
  /// Ocelotl-style exploration.
  [[nodiscard]] std::vector<AggregationResult> run_many(
      std::span<const double> ps);

  [[nodiscard]] const DataCube& cube() const noexcept { return cube_; }
  [[nodiscard]] const MicroscopicModel& model() const noexcept {
    return cube_.model();
  }

  /// The p-independent (gain, loss) cache; built() is false until the
  /// first cached-kernel run.
  [[nodiscard]] const MeasureCache& measure_cache() const noexcept {
    return cache_;
  }
  /// Wall seconds the (one-time) measure-cache build took; 0 until built.
  [[nodiscard]] double cache_build_seconds() const noexcept {
    return cache_build_seconds_;
  }

  /// Conservative upper bound on the cached kernel's working set for
  /// `node_count` nodes over `slices` slices: per packed triangular cell,
  /// pIC (double) + column-major mirror (double) + cut + count (int32) +
  /// the cached (gain, loss) pair (2 doubles) — 40 bytes/cell.  The
  /// instance working_set_bytes() is tighter (it knows the level shape).
  [[nodiscard]] static std::size_t estimate_bytes(std::size_t node_count,
                                                  std::int32_t slices);

  /// Precise peak working set of this aggregator's next run: cut matrices
  /// for all nodes + the measure cache + pooled pIC/count matrices of the
  /// two widest adjacent levels + the mirror of the widest level (cached
  /// kernel), or the whole-tree pIC/cut/count set (reference kernel).
  [[nodiscard]] std::size_t working_set_bytes() const noexcept;

  /// Evaluates an arbitrary partition against this model: raw gain/loss
  /// sums and normalized quality.  Used to score baseline partitions
  /// (uniform, Cartesian) with identical measures.  Reads the measure
  /// cache when built, the cube otherwise — bit-identical either way.
  [[nodiscard]] AggregationResult evaluate(const Partition& partition,
                                           double p) const;

 private:
  /// Pointers and parameters of one node's DP scan (cached kernel).
  struct NodeScan {
    const AreaMeasures* meas = nullptr;     ///< cached (gain, loss) cells
    double* pic = nullptr;                  ///< row-major pIC
    double* mirror = nullptr;               ///< column-major pIC mirror
    std::int32_t* cnt = nullptr;
    std::int32_t* cut = nullptr;
    const double* const* child_pic = nullptr;
    const std::int32_t* const* child_cnt = nullptr;
    std::size_t n_children = 0;
    double p = 0.0;
    double gain_scale = 1.0;
    double loss_scale = 1.0;
  };

  /// Offset of column j in the packed column-major triangle: cells
  /// (0..j, j) are contiguous at [col_offset(j), col_offset(j) + j].
  [[nodiscard]] static constexpr std::size_t col_offset(SliceId j) noexcept {
    const auto jj = static_cast<std::size_t>(j);
    return jj * (jj + 1) / 2;
  }

  void ensure_measure_cache();
  void check_p(double p) const;
  void check_budget() const;
  [[nodiscard]] AreaMeasures area_measures(NodeId node, SliceId i,
                                           SliceId j) const noexcept;
  void fill_quality(AggregationResult& result) const;

  AggregationResult run_cached(double p);
  AggregationResult run_reference(double p);

  void compute_cell(const NodeScan& scan, SliceId i, SliceId j) const noexcept;
  void compute_node_cached(NodeId node, const NodeScan& scan, bool wavefront);
  void compute_node_reference(NodeId node, double p, double gain_scale,
                              double loss_scale);
  [[nodiscard]] NodeScan make_scan(NodeId node, double p, double gain_scale,
                                   double loss_scale,
                                   std::vector<const double*>& child_pic,
                                   std::vector<const std::int32_t*>& child_cnt);
  void extract_partition(Partition& out) const;

  // Fixed-size buffer pool: every pIC/mirror/count matrix has tri_.size()
  // cells, so released buffers are recycled verbatim — the arena survives
  // across runs, bounding live pIC/count buffers to two adjacent levels
  // while eliminating the per-run allocation churn of the original code.
  [[nodiscard]] std::vector<double> acquire_dbl();
  [[nodiscard]] std::vector<std::int32_t> acquire_i32();
  void release(std::vector<double>&& buf);
  void release(std::vector<std::int32_t>&& buf);

  const MicroscopicModel* model_;
  AggregationOptions options_;
  DataCube cube_;
  TriangularIndex tri_;
  std::vector<std::vector<NodeId>> levels_;  ///< nodes grouped by depth
  MeasureCache cache_;                       ///< p-independent (gain, loss)
  double cache_build_seconds_ = 0.0;
  std::vector<std::vector<double>> pic_;     ///< per-node packed pIC
  std::vector<std::vector<double>> mirror_;  ///< column-major pIC mirrors
  std::vector<std::vector<std::int32_t>> cut_;  ///< per-node packed cuts
  /// Area count of the optimal sub-partition per cell; used only as the
  /// tie-breaker that keeps equal-pIC partitions maximally coarse.
  std::vector<std::vector<std::int32_t>> cnt_;
  std::vector<std::vector<double>> dbl_pool_;
  std::vector<std::vector<std::int32_t>> i32_pool_;
};

}  // namespace stagg
