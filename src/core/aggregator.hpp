// The spatiotemporal aggregation algorithm (paper §III-E, Algorithm 1).
//
// Exact dynamic program over the tree of packed upper-triangular matrices:
// for every hierarchy node S_k and slice interval T_(i,j) it computes
//   pIC[i,j]  — the criterion of an *optimal* partition of (S_k, T_(i,j))
//   cut[i,j]  — the first step of a cut sequence realizing it:
//                 cut == j        the area itself is an aggregate ("no cut")
//                 cut == -1       spatial cut into the children of S_k
//                 cut in [i, j)   temporal cut between slices cut and cut+1
// Children are processed before parents (post-order); sibling subtrees are
// independent and processed in parallel, level by level.  Inside a level
// with a single node (notably the root, whose DP would otherwise run
// serially), cells are swept by anti-diagonals: all intervals of equal
// length j - i are mutually independent, so each wavefront is a parallel_for.
//
// Complexity: the p-independent gain/loss of every cell is computed once
// into a MeasureCache — O(|S|·|T|²·|X|), shared by all subsequent runs —
// after which each run(p) is a pure multiply-add DP, O(|S|·|T|³) time and
// O(|S|·|T|²) space as derived in the paper.  A p-sweep therefore pays the
// measure pass once; use run_many() (or find_significant_levels, which is
// built on it) to amortize the cache build and the DP arena across probes:
//
//   SpatiotemporalAggregator agg(model);
//   const double ps[] = {0.0, 0.25, 0.5, 0.75, 1.0};
//   std::vector<AggregationResult> sweep = agg.run_many(ps);
//
// Lane batching: run_many() additionally groups its probes into *lanes* —
// waves of up to kMaxDpLanes (8, default 4) parameters evaluated by a
// single DP sweep.  Every DP matrix (pIC, its column-major mirror, cut,
// count and its mirror) gains a lane dimension, stored cell-major with the
// W lane values of one cell adjacent (`pic[cell * W + lane]`), so the
// per-cell kernel is a fixed-width loop
//   best[lane] = p[lane] * gain - (1 - p[lane]) * loss        (no-cut term)
//   v[lane]    = left_pic[lane] + right_pic[lane]             (temporal cut)
// over W contiguous doubles: one pass over the shared p-independent
// (gain, loss) cell and the cut-candidate streams feeds W independent
// per-lane compare chains (superscalar-parallel, with a conservative
// per-lane challenge threshold keeping the epsilon tie-break arithmetic
// off the hot path) where the solo kernel re-walked the streams and
// re-derived the epsilon bounds once per probe.
//
// Bit-identity guarantee: each lane performs exactly the reference kernel's
// arithmetic (same expressions, same operand order, same epsilon-guarded
// tie-breaking; the threshold screen provably never drops a state-changing
// candidate), so every lane of every wave is bit-identical in pIC and
// identical in partition to a solo DpKernel::kReference run at that p —
// regardless of lane width, wave grouping, duplicate parameters, or arena
// reuse.  tests/test_measure_cache.cpp asserts this with EXPECT_EQ on
// doubles across W ∈ {1, 4, 8} and the solo kernel.
//
// The DP buffers are pooled and reused between runs and waves (no per-run
// allocation); the kernel keeps a column-major mirror of each node's pIC
// matrix so the temporal-cut right operand pIC(c+1, j) is read contiguously.
//
// Tie-breaking: when an aggregate and a cut have equal pIC, the aggregate
// wins (strict '>' in Algorithm 1), so the coarsest optimal partition is
// returned — e.g. at p = 0 a fully homogeneous trace collapses to one area
// even though the microscopic partition is equally optimal.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/simd.hpp"
#include "core/cube.hpp"
#include "core/measure_cache.hpp"
#include "core/partition.hpp"
#include "metrics/quality.hpp"

namespace stagg {

/// DP kernel selection.  kCachedWavefront is the production kernel
/// (MeasureCache + lane batching + threshold-filtered scan + wavefront +
/// pooled buffers).  kCachedSolo is the previous generation (measure
/// cache + wavefront, one probe per DP sweep, per-cut epsilon evaluation —
/// the PR 1 kernel), kept as the lane-batching bench baseline and a fast
/// second equivalence oracle.  kReference recomputes every cell's measures
/// from the cube and frees its buffers after each run — the original
/// per-cell formulation and the primary equivalence-test oracle.  All
/// three produce bit-identical pIC values and identical partitions.
enum class DpKernel : std::uint8_t {
  kCachedWavefront,
  kCachedSolo,
  kReference,
};

/// Hard upper bound on the lane width of one DP wave: 8 doubles = one
/// 64-byte cache line of per-lane state per cell, and a trip count short
/// enough for full unrolling at every instantiated width.
inline constexpr std::size_t kMaxDpLanes = 8;

/// Knobs of the spatiotemporal aggregation.
struct AggregationOptions {
  /// Upper bound on the peak working set: the pooled DP matrices of two
  /// adjacent levels + cut matrices + the p-independent MeasureCache,
  /// at the lane width the run will use.
  std::size_t memory_budget_bytes = std::size_t{6} << 30;
  /// Process sibling subtrees (and single-node levels' wavefronts) on the
  /// shared thread pool.
  bool parallel = true;
  /// Normalize gain and loss by their full-aggregation (root area) values
  /// before the trade-off, making p scales comparable across traces — the
  /// behaviour of the Ocelotl tool.  Off reproduces Eq. 4 verbatim.
  bool normalize = false;
  /// DP kernel; see DpKernel.
  DpKernel kernel = DpKernel::kCachedWavefront;
  /// Lane-width cap for run_many(): probes are evaluated in waves of
  /// min(max_lanes, kMaxDpLanes, probes left).  1 reproduces a solo
  /// per-probe sweep; results are bit-identical at any width.  The default
  /// of 4 is the measured sweet spot — the per-lane state of wider waves
  /// spills out of registers and gives the win back.
  std::size_t max_lanes = 4;
  /// Run the lane-batched DP's per-cell kernel through the simd.hpp vector
  /// wrappers at lane widths divisible by 4 (the no-cut multiply-add, the
  /// spatial child fold, the temporal candidate screen, and the cell
  /// writeback each batch 4 lanes per vector op).  The wrappers only ever
  /// vectorize ACROSS independent lanes — no accumulation chain is
  /// reordered — so results are bit-identical to the scalar twin at every
  /// width; `false` forces the scalar twin (the bench_simd baseline).  On
  /// scalar-only builds (STAGG_SIMD=OFF) both settings execute scalar code.
  bool use_simd = true;
  /// Resource-shard partition (hierarchy/shard_plan.hpp): when set (and
  /// built for this aggregator's hierarchy), the DataCube's bottom-up fold
  /// runs per shard with a serial spine pass, and the MeasureCache build
  /// schedules per shard.  Values are bit-identical with or without a
  /// plan; the plan must outlive the aggregator (the ShardedTraceStore
  /// owns it in the session stack).  nullptr = monolithic fold.
  const ShardPlan* shard_plan = nullptr;
};

/// Output of one aggregation run.
struct AggregationResult {
  double p = 0.0;
  Partition partition;
  /// pIC of the optimal partition (root cell of the DP), in the same
  /// normalization as the run.
  double optimal_pic = 0.0;
  /// Raw (unnormalized) gain/loss summed over the chosen areas.
  AreaMeasures measures;
  PartitionQuality quality;
};

/// Reusable aggregator: builds the DataCube once; the measure cache is
/// built lazily on the first cached-kernel run; run(p) executes the DP.
class SpatiotemporalAggregator {
 public:
  explicit SpatiotemporalAggregator(const MicroscopicModel& model,
                                    AggregationOptions options = {});

  /// Runs Algorithm 1 for a given trade-off parameter p in [0, 1].
  /// Throws InvalidArgument on out-of-range p, BudgetError when the peak
  /// working set would exceed the memory budget.
  [[nodiscard]] AggregationResult run(double p);

  /// Batched sweep: one result per parameter, in order.  Equivalent to
  /// calling run() per element but validates every p and checks the budget
  /// up front, shares the measure cache and the DP buffer arena across all
  /// probes, and evaluates the probes in lanes of up to
  /// options.max_lanes per DP sweep — the intended API for dichotomic level
  /// searches and Ocelotl-style exploration.
  [[nodiscard]] std::vector<AggregationResult> run_many(
      std::span<const double> ps);

  [[nodiscard]] const DataCube& cube() const noexcept { return cube_; }
  [[nodiscard]] const MicroscopicModel& model() const noexcept {
    return cube_.model();
  }
  [[nodiscard]] const AggregationOptions& options() const noexcept {
    return options_;
  }

  /// The p-independent (gain, loss) cache; built() is false until the
  /// first cached-kernel run.
  [[nodiscard]] const MeasureCache& measure_cache() const noexcept {
    return cache_;
  }
  /// Wall seconds the (one-time) measure-cache build took; 0 until built.
  [[nodiscard]] double cache_build_seconds() const noexcept {
    return cache_build_seconds_;
  }

  /// Conservative upper bound on the cached kernel's working set for
  /// `node_count` nodes over `slices` slices at lane width `lanes`: per
  /// packed triangular cell, per lane pIC (double) + column-major pIC and
  /// count mirrors (double + int32) + cut + count (int32) — 28
  /// bytes/cell/lane — plus the shared cached (gain, loss) pair (2
  /// doubles) — 16 bytes/cell.  The instance working_set_bytes() is
  /// tighter (it knows the level shape).
  [[nodiscard]] static std::size_t estimate_bytes(std::size_t node_count,
                                                  std::int32_t slices,
                                                  std::size_t lanes = 1);

  /// Precise peak working set of this aggregator's next run at lane width
  /// `lanes`: cut matrices for all nodes + the measure cache + pooled
  /// pIC/count matrices of the two widest adjacent levels + the mirror of
  /// the widest level (cached kernel; the per-cell DP state scales with
  /// `lanes`, the measure cache does not), or the whole-tree pIC/cut/count
  /// set (reference kernel, lane-oblivious).
  [[nodiscard]] std::size_t working_set_bytes(
      std::size_t lanes = 1) const noexcept;

  /// Evaluates an arbitrary partition against this model: raw gain/loss
  /// sums and normalized quality.  Used to score baseline partitions
  /// (uniform, Cartesian) with identical measures.  Reads the measure
  /// cache when built, the cube otherwise — bit-identical either way.
  [[nodiscard]] AggregationResult evaluate(const Partition& partition,
                                           double p) const;

  // -------------------------------------------------------------------------
  // Incremental re-aggregation (sliding-window sessions).
  //
  // Contract: the referenced model's window was mutated in place so that
  //   * `dropped_front` leading slices were dropped (column c of the new
  //     window held column c + dropped_front of the old one, bit-exactly),
  //   * every per-slice column >= `first_dirty` (new indexing) may differ,
  //     every column before it is bit-identical,
  // and |T| may have changed (extension/contraction).  apply_window_update
  // then splices all derived state: the cube's per-slice columns are
  // remapped and the dirty suffix recomputed, the measure cache's triangle
  // is relocated (new cell (i,j) = old cell (i+k, j+k), exact under the
  // translation-invariant convention of cube.hpp) and its dirty columns
  // refilled, and the retained DP matrices of an active incremental
  // session are remapped the same way.
  //
  // run_incremental(ps) then re-runs the DP **only over cells whose column
  // is dirty** — the dirty-column invariant: a DP cell (i, j) depends
  // solely on measures and sub-cells inside [i, j], so every cell with
  // j < first_dirty is provably bit-identical to its previous value and is
  // restored from the retained checkpoint instead of recomputed.  Results
  // are bit-identical to a from-scratch run_many(ps) on the new window at
  // any lane width.  The retained state (pIC + cut + count for every node,
  // per wave) is what working_set accounting charges via
  // incremental_state_bytes(); it always reflects the post-advance |T|.
  //
  // Requires a cached kernel (kReference has no retained form) and
  // normalize == false (the root normalization scales change with every
  // window update, which would dirty every cell).
  // -------------------------------------------------------------------------

  /// Splices cube, measure cache and retained DP state after an in-place
  /// model-window mutation; see the contract above.  Cheap (proportional
  /// to the dirty suffix plus one relocation pass); performs no DP run.
  void apply_window_update(std::int32_t dropped_front, SliceId first_dirty);

  /// Batched sweep reusing the previous sweep's DP state: recomputes only
  /// dirty columns (everything, on the first call or when `ps`/the lane
  /// width change) and returns one result per parameter — bit-identical to
  /// run_many(ps) on the current window.  Throws InvalidArgument on the
  /// reference kernel or normalize == true; BudgetError when working set +
  /// retained state exceed the budget.
  [[nodiscard]] std::vector<AggregationResult> run_incremental(
      std::span<const double> ps);

  /// True between the first run_incremental() and reset_incremental().
  [[nodiscard]] bool incremental_active() const noexcept {
    return inc_ != nullptr && inc_->valid;
  }
  /// Releases the retained per-wave DP state (the next run_incremental
  /// recomputes everything).
  void reset_incremental() noexcept { inc_.reset(); }
  /// Bytes held by the retained incremental DP state (pIC + count + cut
  /// per cell per lane, every node, every wave) at the current |T|.
  [[nodiscard]] std::size_t incremental_state_bytes() const noexcept;

 private:
  /// Pointers and parameters of one node's DP sweep over one wave of W
  /// lanes (cached kernel).  The shared (gain, loss) triangle is read once
  /// per cell for all lanes; every per-lane matrix is cell-major with the
  /// W lane values of a cell adjacent.
  struct LaneScan {
    const AreaMeasures* meas = nullptr;     ///< shared (gain, loss) cells
    double* pic = nullptr;                  ///< row-major pIC, lane-interleaved
    double* mirror = nullptr;               ///< column-major pIC mirror
    std::int32_t* cnt = nullptr;
    std::int32_t* cnt_mirror = nullptr;     ///< column-major count mirror
    std::int32_t* cut = nullptr;
    const double* const* child_pic = nullptr;
    const std::int32_t* const* child_cnt = nullptr;
    std::size_t n_children = 0;
    const double* p = nullptr;              ///< W trade-off parameters
    std::size_t lanes = 1;                  ///< W, in [1, kMaxDpLanes]
    double gain_scale = 1.0;
    double loss_scale = 1.0;
  };

  /// Offset of column j in the packed column-major triangle: cells
  /// (0..j, j) are contiguous at [col_offset(j), col_offset(j) + j].
  [[nodiscard]] static constexpr std::size_t col_offset(SliceId j) noexcept {
    const auto jj = static_cast<std::size_t>(j);
    return jj * (jj + 1) / 2;
  }

  /// Retained DP matrices of one lane wave (incremental sessions): the
  /// row-major pIC/count/cut triangles of every node.  The column-major
  /// mirrors are *not* retained — a dirty column's mirror entries are
  /// always rewritten before they are read, so mirrors live in the pooled
  /// arena only while a level is being swept.
  struct WaveDpState {
    std::size_t lanes = 0;
    std::vector<simd::AlignedVec<double>> pic;        ///< per node
    std::vector<simd::AlignedVec<std::int32_t>> cnt;  ///< per node
    std::vector<simd::AlignedVec<std::int32_t>> cut;  ///< per node
  };
  struct IncrementalDp {
    std::vector<double> ps;           ///< session probe list, wave-ordered
    std::size_t width = 1;            ///< full-wave lane width
    std::vector<WaveDpState> waves;
    bool valid = false;
  };

  void ensure_measure_cache();
  void check_p(double p) const;
  void check_budget(std::size_t lanes) const;
  [[nodiscard]] std::size_t lane_width(std::size_t probe_count) const noexcept;
  [[nodiscard]] AreaMeasures area_measures(NodeId node, SliceId i,
                                           SliceId j) const noexcept;
  void fill_quality(AggregationResult& result) const;

  AggregationResult run_cached(double p);
  AggregationResult run_reference(double p);
  /// One DP sweep for ps.size() (<= kMaxDpLanes) parameters; appends one
  /// result per lane, in order.
  void run_wave(std::span<const double> ps,
                std::vector<AggregationResult>& out);
  /// One retained DP sweep over cells with j >= first_dirty, splicing the
  /// unchanged prefix from `state`; appends one result per lane.
  void run_wave_incremental(std::span<const double> ps, WaveDpState& state,
                            SliceId first_dirty,
                            std::vector<AggregationResult>& out);
  /// Assembles one AggregationResult per lane from the member DP matrices
  /// (shared tail of run_wave and run_wave_incremental).
  void extract_wave_results(std::span<const double> ps,
                            std::vector<AggregationResult>& out);
  /// Sweeps one level's nodes over the cells with j >= first_dirty:
  /// sibling subtrees in parallel, or (thin levels, notably the root)
  /// anti-diagonal wavefronts on the caller thread — the shared scheduling
  /// of run_wave and run_wave_incremental.
  void sweep_level(std::span<const NodeId> nodes, std::span<const double> ps,
                   double gain_scale, double loss_scale, SliceId first_dirty);

  /// Filtered = false drops the conservative challenge-threshold screen
  /// and evaluates the reference predicate at every cut — the kCachedSolo
  /// (PR 1) formulation.  Vec = true (lane widths divisible by 4 only,
  /// selected by options_.use_simd) routes the across-lane batches — the
  /// no-cut multiply-add, the spatial child fold, the temporal screen and
  /// the writeback — through the simd.hpp wrappers; Vec = false is the
  /// always-instantiated scalar twin, bit-identical by the across-chains
  /// vectorization rule.
  template <int W, bool Filtered, bool Vec>
  void compute_cell_lanes(const LaneScan& scan, SliceId i,
                          SliceId j) const noexcept;
  /// Sweeps the cells with j >= first_dirty (0 = the full triangle) in a
  /// dependency-respecting order; `wavefront` parallelizes anti-diagonals.
  template <int W, bool Filtered, bool Vec>
  void compute_node_lanes_w(const LaneScan& scan, bool wavefront,
                            SliceId first_dirty);
  void compute_node_lanes(const LaneScan& scan, bool wavefront,
                          SliceId first_dirty = 0);
  void compute_node_reference(NodeId node, double p, double gain_scale,
                              double loss_scale);
  [[nodiscard]] LaneScan make_scan(NodeId node, std::span<const double> ps,
                                   double gain_scale, double loss_scale,
                                   std::vector<const double*>& child_pic,
                                   std::vector<const std::int32_t*>& child_cnt);
  void extract_partition(Partition& out, std::size_t lane,
                         std::size_t lanes) const;

  // Buffer pool: pIC/mirror/count matrices hold tri_.size() * W cells, so a
  // released buffer is recycled with at most a cheap resize when the lane
  // width changes between waves — the arena survives across runs, bounding
  // live pIC/count buffers to two adjacent levels while eliminating the
  // per-run allocation churn of the original code.  All pooled buffers are
  // 64-byte aligned (simd::AlignedVec): with the cell-major lane
  // interleave, a W = 4 cell's f64x4 load is 32-byte aligned and a W = 8
  // cell's per-lane state is exactly one cache line — vector accesses
  // never split a line.
  [[nodiscard]] simd::AlignedVec<double> acquire_dbl(std::size_t n);
  [[nodiscard]] simd::AlignedVec<std::int32_t> acquire_i32(std::size_t n);
  void release(simd::AlignedVec<double>&& buf);
  void release(simd::AlignedVec<std::int32_t>&& buf);

  const MicroscopicModel* model_;
  AggregationOptions options_;
  DataCube cube_;
  TriangularIndex tri_;
  std::vector<std::vector<NodeId>> levels_;  ///< nodes grouped by depth
  MeasureCache cache_;                       ///< p-independent (gain, loss)
  double cache_build_seconds_ = 0.0;
  std::vector<simd::AlignedVec<double>> pic_;  ///< per-node packed pIC
  /// Column-major pIC mirrors.
  std::vector<simd::AlignedVec<double>> mirror_;
  /// Column-major mirrors of cnt_, so the tie-breaker's right operand
  /// count(c+1, j) is a contiguous read like the pIC mirror's.
  std::vector<simd::AlignedVec<std::int32_t>> cmirror_;
  /// Per-node packed cuts.
  std::vector<simd::AlignedVec<std::int32_t>> cut_;
  /// Area count of the optimal sub-partition per cell; used only as the
  /// tie-breaker that keeps equal-pIC partitions maximally coarse.
  std::vector<simd::AlignedVec<std::int32_t>> cnt_;
  std::vector<simd::AlignedVec<double>> dbl_pool_;
  std::vector<simd::AlignedVec<std::int32_t>> i32_pool_;
  std::unique_ptr<IncrementalDp> inc_;  ///< retained per-wave DP state
  /// First column whose DP state is stale relative to the retained
  /// checkpoint; tri_.slices() when clean.  Maintained by
  /// apply_window_update, reset by run_incremental.
  SliceId inc_dirty_ = 0;
};

}  // namespace stagg
