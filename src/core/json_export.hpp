// JSON export of aggregation results, for downstream tooling (web
// front-ends, notebooks) — the library's machine-readable counterpart of
// the SVG overview.
//
// Schema (stable, versioned):
// {
//   "format": "stagg-aggregation", "version": 1,
//   "p": 0.25,
//   "dimensions": {"resources": 64, "slices": 30, "states": ["MPI_Init", ...]},
//   "window": {"begin_s": 0.0, "end_s": 9.5},
//   "quality": {"areas": 86, "microscopic": 1920, "gain": ..., "loss": ...,
//               "max_gain": ..., "max_loss": ...},
//   "areas": [
//     {"node": "rennes/parapide", "first_leaf": 0, "resources": 64,
//      "slice_begin": 0, "slice_end": 4, "begin_s": 0.0, "end_s": 1.58,
//      "mode": "MPI_Init", "alpha": 1.0, "proportions": [1.0, 0, ...],
//      "gain": ..., "loss": ...}, ...
//   ]
// }
#pragma once

#include <iosfwd>
#include <string>

#include "core/aggregator.hpp"

namespace stagg {

/// Serializes a result (with per-area details from the cube) to JSON.
[[nodiscard]] std::string export_json(const AggregationResult& result,
                                      const DataCube& cube);

/// Writes the JSON document to a file; throws IoError.
void export_json_file(const AggregationResult& result, const DataCube& cube,
                      const std::string& path);

/// Escapes a string for inclusion in a JSON document.
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace stagg
