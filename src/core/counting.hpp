// Search-space combinatorics (paper §III-E, "Algebraic Structure of the
// Partition Sets"): the number of hierarchy-consistent and order-consistent
// partitions grows exponentially — |I(T)| = 2^(|T|-1) and |H(S)| = Θ(c^|S|)
// with c ~ 1.229 for complete binary trees — which is why the brute-force
// search is intractable and the O(|S||T|^3) DP matters.
//
// Counts are returned both exactly (saturating at the uint64 limit) and as
// log2, so the Table-style bench can print the astronomical full-scale
// numbers next to the DP's polynomial cell counts.
#pragma once

#include <cstdint>

#include "hierarchy/hierarchy.hpp"

namespace stagg {

/// An exact-until-saturated count with its log2.
struct PartitionCount {
  std::uint64_t exact = 0;   ///< saturates at uint64 max
  bool saturated = false;
  double log2_value = 0.0;

  [[nodiscard]] static PartitionCount one() { return {1, false, 0.0}; }
};

/// Number of order-consistent partitions of |T| slices: 2^(|T|-1).
[[nodiscard]] PartitionCount count_interval_partitions(std::int32_t slices);

/// Number of hierarchy-consistent partitions of the resource set:
/// f(leaf) = 1, f(node) = 1 + prod over children of f(child).
[[nodiscard]] PartitionCount count_hierarchy_partitions(
    const Hierarchy& hierarchy);

/// Number of DP cells Algorithm 1 evaluates: node_count * |T|(|T|+1)/2 —
/// the polynomial the exponential search space collapses to.
[[nodiscard]] std::uint64_t count_dp_cells(const Hierarchy& hierarchy,
                                           std::int32_t slices);

/// Base of the hierarchy-count growth for a complete binary tree with
/// `levels` levels, measured per tree *node*: tends to ~1.2259 — the
/// paper's "c ~ 1.229 worst case scenario (complete binary tree)".
[[nodiscard]] double binary_tree_growth_base(std::int32_t levels);

}  // namespace stagg
