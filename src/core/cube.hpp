// DataCube: the aggregation algorithms' input (paper §III-E "Data Input").
//
// For every hierarchy node S_k, state x and slice t the cube holds the
// leaf-additive sums
//   sum_d(S_k, t, x)       = sum over leaves of d_x(s,t)
//   sum_rho(S_k, t, x)     = sum over leaves of rho_x(s,t)
//   sum_rho_log(S_k, t, x) = sum over leaves of rho_x(s,t) log2 rho_x(s,t)
// stored as prefix sums over t, so the three interval sums of any area
// (S_k, T_(i,j)) — exactly the intermediary data listed by the paper — are
// O(1) per state.  The cube is computed in O(|S| |T| |X|) bottom-up and is
// p-independent: every aggregation run (any algorithm, any p) shares it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/interval.hpp"
#include "metrics/information.hpp"
#include "model/microscopic_model.hpp"

namespace stagg {

class DataCube {
 public:
  /// Builds the cube from a microscopic model (parallel over leaves, then a
  /// sequential bottom-up merge over internal nodes).
  explicit DataCube(const MicroscopicModel& model);

  [[nodiscard]] const MicroscopicModel& model() const noexcept {
    return *model_;
  }
  [[nodiscard]] const Hierarchy& hierarchy() const noexcept {
    return model_->hierarchy();
  }
  [[nodiscard]] std::int32_t slice_count() const noexcept { return n_t_; }
  [[nodiscard]] std::int32_t state_count() const noexcept { return n_x_; }

  /// Total duration (seconds) of slices [i, j].
  [[nodiscard]] double interval_duration_s(SliceId i, SliceId j) const noexcept {
    return dur_prefix_[static_cast<std::size_t>(j) + 1] -
           dur_prefix_[static_cast<std::size_t>(i)];
  }

  /// Additive sums of state x over area (node, T_(i,j)).
  [[nodiscard]] StateAreaSums sums(NodeId node, SliceId i, SliceId j,
                                   StateId x) const noexcept {
    const double* base = node_base(node, x);
    return StateAreaSums{
        base[3 * (static_cast<std::size_t>(j) + 1) + 0] -
            base[3 * static_cast<std::size_t>(i) + 0],
        base[3 * (static_cast<std::size_t>(j) + 1) + 1] -
            base[3 * static_cast<std::size_t>(i) + 1],
        base[3 * (static_cast<std::size_t>(j) + 1) + 2] -
            base[3 * static_cast<std::size_t>(i) + 2],
    };
  }

  /// rho_x(S_k, T_(i,j)) per Eq. 1.
  [[nodiscard]] double aggregated_proportion(NodeId node, SliceId i, SliceId j,
                                             StateId x) const noexcept {
    const auto s = sums(node, i, j, x);
    return stagg::aggregated_proportion(
        s.sum_d, static_cast<double>(hierarchy().node(node).leaf_count),
        interval_duration_s(i, j));
  }

  /// Gain and loss of the area, summed over all states (Eq. 2 + 3).
  [[nodiscard]] AreaMeasures measures(NodeId node, SliceId i,
                                      SliceId j) const noexcept;

  /// Bulk variant: fills `out[j - i] = measures(node, i, j)` for every
  /// j in [i, |T|) — one packed triangular row per call.  States are the
  /// outer loop so each prefix stripe is streamed once; the per-cell
  /// accumulation order is identical to measures(), so the results are
  /// bit-identical.  This is the MeasureCache builder's hot path.
  /// `out.size()` must be exactly |T| - i.
  void measures_into(NodeId node, SliceId i,
                     std::span<AreaMeasures> out) const noexcept;

  /// Gain/loss of the area for one state.
  [[nodiscard]] AreaMeasures state_measures(NodeId node, SliceId i, SliceId j,
                                            StateId x) const noexcept;

  /// Measures of the full aggregation (root, whole window); the
  /// normalization reference of PartitionQuality.
  [[nodiscard]] AreaMeasures root_measures() const {
    return measures(hierarchy().root(), 0, n_t_ - 1);
  }

  /// Mode state of an area: argmax_x rho_x, with its proportion and the sum
  /// of all state proportions (used by the visualization's alpha channel).
  struct Mode {
    StateId state = kNoState;
    double proportion = 0.0;
    double proportion_sum = 0.0;
  };
  [[nodiscard]] Mode mode(NodeId node, SliceId i, SliceId j) const noexcept;

  /// Estimated bytes held by the cube.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return data_.size() * sizeof(double) + dur_prefix_.size() * sizeof(double);
  }

 private:
  // Layout: per node, per state, (n_t_+1) triplets {sum_d, sum_rho,
  // sum_rho_log} of prefix values.  node stride = n_x_ * (n_t_+1) * 3.
  [[nodiscard]] const double* node_base(NodeId node, StateId x) const noexcept {
    return data_.data() +
           (static_cast<std::size_t>(node) * static_cast<std::size_t>(n_x_) +
            static_cast<std::size_t>(x)) *
               (static_cast<std::size_t>(n_t_) + 1) * 3;
  }
  [[nodiscard]] double* node_base_mut(NodeId node, StateId x) noexcept {
    return const_cast<double*>(node_base(node, x));
  }

  const MicroscopicModel* model_;
  std::int32_t n_t_ = 0;
  std::int32_t n_x_ = 0;
  std::vector<double> data_;
  std::vector<double> dur_prefix_;  ///< prefix sums of d(t), size n_t_+1
};

}  // namespace stagg
