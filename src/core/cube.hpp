// DataCube: the aggregation algorithms' input (paper §III-E "Data Input").
//
// For every hierarchy node S_k, state x and slice t the cube holds the
// leaf-additive per-slice sums
//   sum_d(S_k, t, x)       = sum over leaves of d_x(s,t)
//   sum_rho(S_k, t, x)     = sum over leaves of rho_x(s,t)
//   sum_rho_log(S_k, t, x) = sum over leaves of rho_x(s,t) log2 rho_x(s,t)
// — exactly the intermediary data listed by the paper.  The cube is computed
// in O(|S| |T| |X|) bottom-up and is p-independent: every aggregation run
// (any algorithm, any p) shares it.
//
// Translation-invariant accumulation contract (what the incremental
// re-aggregation subsystem rests on): the cube stores *per-slice* triplets,
// and every interval sum over T_(i,j) is accumulated per state from slice j
// DOWN to slice i, with the interval duration taken exactly from the
// integer time grid.  A cell's value is therefore a pure function of the
// per-slice data inside its interval — independent of the window it is
// embedded in — so
//   * sliding the window by k slices maps cell (i, j) of the new window to
//     cell (i+k, j+k) of the old one *bit-identically* (uniform-dt grids),
//   * appending or rewriting a time suffix leaves every cell with j below
//     the first dirty slice bit-identical, and
//   * the cells of one triangle column j are produced by a single
//     descending accumulation (measures_column_into) in O(1) amortized per
//     cell — the unit of incremental recomputation.
// Each slice column is independent of every other (no cross-slice prefix),
// which is what makes recompute_slices / reshape_slices exact.
#pragma once

#include <cstdint>
#include <span>

#include "common/simd.hpp"
#include "core/interval.hpp"
#include "metrics/information.hpp"
#include "model/microscopic_model.hpp"

namespace stagg {

class ShardPlan;

class DataCube {
 public:
  /// Builds the cube from a microscopic model (parallel over leaves, then a
  /// per-slice bottom-up merge over internal nodes).  With a shard plan
  /// (hierarchy/shard_plan.hpp) the internal-node merge is partitioned:
  /// each shard folds its owned subtree bottom-up in parallel, then a
  /// serial pass folds the per-shard partials up the spine.  Per-node
  /// operations and child order are unchanged, so the partitioned fold is
  /// bit-identical to the serial one at every shard count.  A plan built
  /// for a different hierarchy (a scoped session) is ignored.
  explicit DataCube(const MicroscopicModel& model,
                    const ShardPlan* plan = nullptr);

  [[nodiscard]] const MicroscopicModel& model() const noexcept {
    return *model_;
  }
  [[nodiscard]] const Hierarchy& hierarchy() const noexcept {
    return model_->hierarchy();
  }
  [[nodiscard]] std::int32_t slice_count() const noexcept { return n_t_; }
  [[nodiscard]] std::int32_t state_count() const noexcept { return n_x_; }

  /// Total duration (seconds) of slices [i, j]: the exact integer span of
  /// the grid converted once — bit-identical for any two windows whose
  /// slices [i, j] cover intervals of equal width.
  [[nodiscard]] double interval_duration_s(SliceId i, SliceId j) const noexcept {
    return model_->grid().interval_duration_s(i, j);
  }

  /// Additive sums of state x over area (node, T_(i,j)), accumulated in the
  /// canonical descending-slice order (t = j down to i).
  [[nodiscard]] StateAreaSums sums(NodeId node, SliceId i, SliceId j,
                                   StateId x) const noexcept {
    const std::size_t row = static_cast<std::size_t>(n_x_);
    const double* pd = plane(node, kSumD) + static_cast<std::size_t>(x);
    const double* pr = plane(node, kSumRho) + static_cast<std::size_t>(x);
    const double* pl = plane(node, kSumRhoLog) + static_cast<std::size_t>(x);
    StateAreaSums s;
    for (SliceId t = j; t >= i; --t) {
      const std::size_t off = static_cast<std::size_t>(t) * row;
      s.sum_d += pd[off];
      s.sum_rho += pr[off];
      s.sum_rho_log += pl[off];
    }
    return s;
  }

  /// rho_x(S_k, T_(i,j)) per Eq. 1.
  [[nodiscard]] double aggregated_proportion(NodeId node, SliceId i, SliceId j,
                                             StateId x) const noexcept {
    const auto s = sums(node, i, j, x);
    return stagg::aggregated_proportion(
        s.sum_d, static_cast<double>(hierarchy().node(node).leaf_count),
        interval_duration_s(i, j));
  }

  /// Gain and loss of the area, summed over all states (Eq. 2 + 3).
  [[nodiscard]] AreaMeasures measures(NodeId node, SliceId i,
                                      SliceId j) const noexcept;

  /// Bulk variant: fills `out[i] = measures(node, i, j)` for every
  /// i in [0, j] — one triangle *column* per call, produced by a single
  /// descending accumulation per state (O(1) amortized per cell, same
  /// per-cell operation order as measures(), so results are bit-identical).
  /// This is the MeasureCache builder's hot path and the unit of dirty-
  /// column recomputation.  `out.size()` must be exactly j + 1.
  void measures_column_into(NodeId node, SliceId j,
                            std::span<AreaMeasures> out) const noexcept;

  /// Scalar twin of measures_column_into: the original per-state descending
  /// accumulation (x outer, i inner), one state_area_measures call per
  /// cell, no vector wrappers and no shared log2.  This is the equivalence
  /// oracle for the vectorized column kernel — MeasureCache::audit and
  /// tests/test_simd.cpp pin measures_column_into against it bit-for-bit —
  /// and the timing baseline bench_simd reports speedup against.
  void measures_column_reference_into(NodeId node, SliceId j,
                                      std::span<AreaMeasures> out)
      const noexcept;

  /// Gain/loss of the area for one state.
  [[nodiscard]] AreaMeasures state_measures(NodeId node, SliceId i, SliceId j,
                                            StateId x) const noexcept;

  /// Measures of the full aggregation (root, whole window); the
  /// normalization reference of PartitionQuality.
  [[nodiscard]] AreaMeasures root_measures() const {
    return measures(hierarchy().root(), 0, n_t_ - 1);
  }

  /// Mode state of an area: argmax_x rho_x, with its proportion and the sum
  /// of all state proportions (used by the visualization's alpha channel).
  struct Mode {
    StateId state = kNoState;
    double proportion = 0.0;
    double proportion_sum = 0.0;
  };
  [[nodiscard]] Mode mode(NodeId node, SliceId i, SliceId j) const noexcept;

  // -------------------------------------------------------------------------
  // Incremental window maintenance (the model must be updated *first*; the
  // session layer orders the calls).
  // -------------------------------------------------------------------------

  /// Re-layouts the per-slice columns for a changed window: new column t
  /// takes the bit-exact contents of old column t + src_shift (columns
  /// falling outside the old window are zeroed and must be recomputed via
  /// recompute_slices).  Handles slides (src_shift = dropped leading
  /// slices), extensions and contractions (new_count != old count).
  /// `new_count` must equal the (already updated) model's slice count.
  void reshape_slices(std::int32_t new_count, std::int32_t src_shift);

  /// Recomputes every per-slice column t >= first_dirty from the model:
  /// parallel leaf fill, then the same per-slice bottom-up child merge (in
  /// child order) as the full build — fresh and incremental columns are
  /// bit-identical by construction.
  void recompute_slices(SliceId first_dirty, bool parallel = true);

  /// Structural audit: throws ContractError (common/contract.hpp) when the
  /// cube violates its own accumulation contract — shape out of step with
  /// the model (slice/state counts, node stride), a non-finite entry, or an
  /// internal node whose per-slice triplets are not the bit-exact child-
  /// order sum of its children's (the leaf-additivity the whole incremental
  /// subsystem rests on).  O(|S| |T| |X|); called at stage boundaries by
  /// STAGG_AUDIT in audit builds, callable directly by tests in any build.
  void audit() const;

  /// Estimated bytes held by the cube.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return data_.size() * sizeof(double);
  }

 private:
  // Layout: per node, three PLANES {sum_d, sum_rho, sum_rho_log}, each an
  // n_t_ x n_x_ row-major matrix (slice rows, states contiguous).  Plane
  // stride = n_t_ * n_x_, node stride = 3 * n_t_ * n_x_.  States being
  // adjacent is what lets the column kernel and the bottom-up merge run
  // f64x4 loads across the |X| dimension (independent per-state chains)
  // without touching any chain's accumulation order.
  static constexpr std::size_t kSumD = 0;
  static constexpr std::size_t kSumRho = 1;
  static constexpr std::size_t kSumRhoLog = 2;

  [[nodiscard]] std::size_t plane_stride() const noexcept {
    return static_cast<std::size_t>(n_t_) * static_cast<std::size_t>(n_x_);
  }
  [[nodiscard]] const double* plane(NodeId node, std::size_t p) const noexcept {
    return data_.data() +
           (static_cast<std::size_t>(node) * 3 + p) * plane_stride();
  }
  [[nodiscard]] double* plane_mut(NodeId node, std::size_t p) noexcept {
    return const_cast<double*>(plane(node, p));
  }

  /// One internal-node accumulation pass restricted to `nodes` (a
  /// post-order-consistent subset) over slice columns [first_dirty, n_t_).
  void accumulate_nodes(std::span<const NodeId> nodes, SliceId first_dirty);

  const MicroscopicModel* model_;
  /// Subtree partition driving the parallel fold; nullptr = serial merge.
  const ShardPlan* plan_ = nullptr;
  std::int32_t n_t_ = 0;
  std::int32_t n_x_ = 0;
  /// 64-byte aligned so f64x4 plane accesses never split a cache line.
  simd::AlignedVec<double> data_;
};

}  // namespace stagg
