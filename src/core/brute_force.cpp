#include "core/brute_force.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/error.hpp"

namespace stagg {
namespace {

/// Memoized list of sub-partitions of one area (node, [i, j]).  A
/// sub-partition is a vector of areas.  The expansion mirrors the cut
/// grammar: no cut | spatial cut | temporal cut at each c.
class Enumerator {
 public:
  Enumerator(const Hierarchy& h, std::int32_t slices, std::size_t limit)
      : h_(h), n_t_(slices), limit_(limit) {}

  std::vector<std::vector<Area>> expand(NodeId node, SliceId i, SliceId j) {
    const auto key = std::make_tuple(node, i, j);
    if (const auto it = memo_.find(key); it != memo_.end()) return it->second;

    std::vector<std::vector<Area>> results;
    std::unordered_set<std::uint64_t> seen;
    const auto push = [&](std::vector<Area> areas) {
      Partition p(areas);
      const std::uint64_t sig = p.signature();
      if (seen.insert(sig).second) {
        results.push_back(std::move(areas));
        if (results.size() > limit_) {
          throw BudgetError("brute-force enumeration exceeds limit");
        }
      }
    };

    // No cut.
    push({Area{node, {i, j}}});

    // Spatial cut: Cartesian product of children expansions on [i, j].
    const auto& children = h_.node(node).children;
    if (!children.empty()) {
      std::vector<std::vector<Area>> acc = {{}};
      for (NodeId c : children) {
        const auto subs = expand(c, i, j);
        std::vector<std::vector<Area>> next;
        next.reserve(acc.size() * subs.size());
        for (const auto& prefix : acc) {
          for (const auto& sub : subs) {
            auto merged = prefix;
            merged.insert(merged.end(), sub.begin(), sub.end());
            next.push_back(std::move(merged));
          }
        }
        acc = std::move(next);
        if (acc.size() > limit_) {
          throw BudgetError("brute-force enumeration exceeds limit");
        }
      }
      for (auto& areas : acc) push(std::move(areas));
    }

    // Temporal cuts.  To avoid re-deriving the same partition through
    // different cut orders, only split off the *first* interval [i, c] as an
    // undivided-in-time block (its own expansion restricted to no-time-cut
    // is handled by recursion on [i,c] with further temporal cuts forbidden
    // at top level): enumerate c, expand [i,c] fully and [c+1,j] fully, then
    // dedupe by signature (the `seen` set makes double-counting harmless).
    for (SliceId c = i; c < j; ++c) {
      const auto left = expand(node, i, c);
      const auto right = expand(node, c + 1, j);
      for (const auto& l : left) {
        for (const auto& r : right) {
          auto merged = l;
          merged.insert(merged.end(), r.begin(), r.end());
          push(std::move(merged));
        }
      }
    }

    memo_[key] = results;
    return results;
  }

 private:
  const Hierarchy& h_;
  std::int32_t n_t_;
  std::size_t limit_;
  std::map<std::tuple<NodeId, SliceId, SliceId>,
           std::vector<std::vector<Area>>>
      memo_;
};

}  // namespace

std::vector<Partition> enumerate_partitions(const Hierarchy& hierarchy,
                                            std::int32_t slices,
                                            std::size_t limit) {
  Enumerator e(hierarchy, slices, limit);
  const auto raw = e.expand(hierarchy.root(), 0, slices - 1);
  std::vector<Partition> out;
  out.reserve(raw.size());
  for (const auto& areas : raw) {
    Partition p(areas);
    p.canonicalize(hierarchy);
    out.push_back(std::move(p));
  }
  return out;
}

AreaMeasures naive_area_measures(const MicroscopicModel& model,
                                 const Area& area) {
  const Hierarchy& h = model.hierarchy();
  const auto& n = h.node(area.node);

  AreaMeasures m;
  for (StateId x = 0; x < model.state_count(); ++x) {
    // Eq. 1: rho_agg = (1/|Sk|) * sum_s (sum_t d / sum_t d(t)).
    double sum_d = 0.0;
    double interval_dur = 0.0;
    for (SliceId t = area.time.i; t <= area.time.j; ++t) {
      interval_dur += model.grid().slice_duration_s(t);
    }
    double sum_rho = 0.0, sum_rholog = 0.0;
    for (LeafId s = n.first_leaf; s < n.first_leaf + n.leaf_count; ++s) {
      for (SliceId t = area.time.i; t <= area.time.j; ++t) {
        const double d = model.duration(s, t, x);
        sum_d += d;
        const double rho = d / model.grid().slice_duration_s(t);
        sum_rho += rho;
        sum_rholog += xlog2x(rho);
      }
    }
    const double rho_agg =
        sum_d / (static_cast<double>(n.leaf_count) * interval_dur);
    // Eq. 3 then Eq. 2.
    m.gain += xlog2x(rho_agg) - sum_rholog;
    if (rho_agg > 0.0) {
      m.loss += sum_rholog - sum_rho * safe_log2(rho_agg);
    }
  }
  return m;
}

double naive_partition_pic(const MicroscopicModel& model,
                           const Partition& partition, double p) {
  double total = 0.0;
  for (const auto& a : partition.areas()) {
    const AreaMeasures m = naive_area_measures(model, a);
    total += pic(p, m.gain, m.loss);
  }
  return total;
}

BruteForceResult brute_force_optimum(const MicroscopicModel& model, double p,
                                     std::size_t limit) {
  const auto all =
      enumerate_partitions(model.hierarchy(), model.slice_count(), limit);
  BruteForceResult best;
  best.partitions_examined = all.size();
  best.optimal_pic = -std::numeric_limits<double>::infinity();
  for (const auto& partition : all) {
    const double v = naive_partition_pic(model, partition, p);
    if (v > best.optimal_pic) {
      best.optimal_pic = v;
      best.partition = partition;
    }
  }
  return best;
}

}  // namespace stagg
