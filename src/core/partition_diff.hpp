// Structural comparison of two partitions of the same S x T grid.
//
// Used by the dichotomic search's analysis (what changed between two
// aggregation levels?) and by the disruption narrative (which rows moved
// when the perturbation appeared?).  Two views of the difference:
//   - the *area-set* view: Jaccard similarity of the area sets;
//   - the *co-clustering* view: the fraction of microscopic cells whose
//     owning areas cover the same cell sets in both partitions (Rand-like,
//     computed per cell without the quadratic pair enumeration).
#pragma once

#include <cstdint>
#include <vector>

#include "core/partition.hpp"

namespace stagg {

struct PartitionDiff {
  std::size_t common_areas = 0;    ///< identical (node, interval) areas
  std::size_t only_in_a = 0;
  std::size_t only_in_b = 0;
  /// |A ∩ B| / |A ∪ B| over area sets.
  double area_jaccard = 0.0;
  /// Fraction of microscopic cells covered by an identical area in both.
  double cell_agreement = 0.0;
  /// Leaves whose row (sequence of areas) differs between the partitions.
  std::vector<LeafId> differing_leaves;

  [[nodiscard]] bool identical() const noexcept {
    return only_in_a == 0 && only_in_b == 0;
  }
};

/// Compares two partitions over the same hierarchy and slice count.
/// Throws DimensionError when either partition is invalid for the grid.
[[nodiscard]] PartitionDiff diff_partitions(const Hierarchy& hierarchy,
                                            std::int32_t slices,
                                            const Partition& a,
                                            const Partition& b);

}  // namespace stagg
