// Exhaustive test oracle for Algorithm 1 (tests only; exponential).
//
// Enumerates every hierarchy-and-order-consistent partition of S x T by
// expanding all cut sequences, deduplicates them, and evaluates each one
// directly from the microscopic model with the plain Eq. 1/2/3 sums — no
// cube, no prefix sums, no DP — so it is an independent implementation of
// the measures as well as of the optimization.
#pragma once

#include <cstdint>
#include <vector>

#include "core/partition.hpp"
#include "metrics/information.hpp"
#include "model/microscopic_model.hpp"

namespace stagg {

/// All distinct hierarchy-and-order-consistent partitions of the |S| x |T|
/// grid.  Throws BudgetError when the count would exceed `limit`.
[[nodiscard]] std::vector<Partition> enumerate_partitions(
    const Hierarchy& hierarchy, std::int32_t slices,
    std::size_t limit = 2'000'000);

/// Gain/loss of one area computed directly from the microscopic tensor
/// (naive double loop over (s, t) cells, Eq. 1-3).
[[nodiscard]] AreaMeasures naive_area_measures(const MicroscopicModel& model,
                                               const Area& area);

/// pIC of a whole partition via naive_area_measures.
[[nodiscard]] double naive_partition_pic(const MicroscopicModel& model,
                                         const Partition& partition, double p);

/// Exhaustive optimum: the best partition and its pIC.
struct BruteForceResult {
  Partition partition;
  double optimal_pic = 0.0;
  std::size_t partitions_examined = 0;
};
[[nodiscard]] BruteForceResult brute_force_optimum(
    const MicroscopicModel& model, double p, std::size_t limit = 2'000'000);

}  // namespace stagg
