// Time intervals T_(i,j) and packed upper-triangular indexing.
//
// The DP state of Algorithm 1 is one value per (i <= j) pair; the tree of
// "upper triangular matrices" of the paper is stored as one packed array of
// |T|(|T|+1)/2 cells per node.
#pragma once

#include <cassert>
#include <cstdint>

#include "model/time_grid.hpp"

namespace stagg {

/// Inclusive slice interval T_(i,j), i <= j.
struct TimeInterval {
  SliceId i = 0;
  SliceId j = 0;

  [[nodiscard]] constexpr std::int32_t length() const noexcept {
    return j - i + 1;
  }
  friend constexpr bool operator==(const TimeInterval&,
                                   const TimeInterval&) = default;
  friend constexpr auto operator<=>(const TimeInterval& a,
                                    const TimeInterval& b) noexcept {
    if (a.i != b.i) return a.i <=> b.i;
    return a.j <=> b.j;
  }
};

/// Packed storage for one value per interval (i <= j) over `t` slices.
/// Cells of a fixed i are contiguous: index(i,j) = row_offset(i) + (j - i),
/// which keeps the DP's inner j-loop cache-friendly.
class TriangularIndex {
 public:
  TriangularIndex() = default;
  explicit constexpr TriangularIndex(std::int32_t slices) noexcept
      : t_(slices) {}

  [[nodiscard]] constexpr std::int32_t slices() const noexcept { return t_; }

  /// Number of packed cells: t(t+1)/2.
  [[nodiscard]] constexpr std::size_t size() const noexcept {
    const auto n = static_cast<std::size_t>(t_);
    return n * (n + 1) / 2;
  }

  /// Offset of row i (cells [i,i..t-1]); rows are stored i ascending.
  [[nodiscard]] constexpr std::size_t row_offset(SliceId i) const noexcept {
    // Row k has t-k cells; offset(i) = sum_{k<i} (t-k) = i*t - i(i-1)/2.
    const auto ii = static_cast<std::size_t>(i);
    const auto tt = static_cast<std::size_t>(t_);
    return ii * tt - ii * (ii - 1) / 2;
  }

  [[nodiscard]] constexpr std::size_t operator()(SliceId i,
                                                 SliceId j) const noexcept {
    assert(0 <= i && i <= j && j < t_);
    return row_offset(i) + static_cast<std::size_t>(j - i);
  }

 private:
  std::int32_t t_ = 0;
};

}  // namespace stagg
