#include "core/aggregator.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "core/triangular_relocate.hpp"

namespace stagg {
namespace {

/// Smallest double greater than finite x (inline bit increment;
/// std::nextafter is a libm call, too slow for per-cell use).
inline double next_up(double x) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof bits);
  if (x >= 0.0) {
    if (bits == 0x8000000000000000ull) bits = 0;  // -0.0 -> +0.0
    ++bits;
  } else {
    --bits;
  }
  std::memcpy(&x, &bits, sizeof bits);
  return x;
}

/// Conservative per-lane challenge threshold: every temporal-cut candidate
/// v that can change lane state (best, cut, count) satisfies
/// v >= challenge_threshold(best, best_count); candidates below it are
/// skipped without evaluating the reference predicate at all, which is
/// what makes the hot scan a bare add-and-compare.
///
/// Soundness: the reference kernel accepts iff
///   v > best + eps  ||  (v >= best - eps && count < best_count),
///   eps = 1e-12 + 1e-12 * max(|best|, |v|).
/// - While best_count <= 2 the count tie-break can never fire (any cut's
///   area count is >= 2), so a state change needs v > best + eps > best,
///   i.e. v >= next_up(best) — exact, no epsilon analysis needed.
/// - Otherwise any accepting v is within relative ~1e-12 of best (the
///   |v|-dependent eps term matters only when |v| ~ |best|; solving
///   v >= best - 1e-12*(1 + max(|best|,|v|)) for v in every sign case
///   bounds v >= best - 2.1e-12 - 1.1e-12*|best|).  The 4e-12
///   coefficients leave a ~2x margin that swallows every rounding error
///   of both this expression and the reference predicate's.
/// The threshold only rises when (best, best_count) tighten, so a value
/// screened out once can never become a challenger later in the scan.
inline double challenge_threshold(double best,
                                  std::int32_t best_count) noexcept {
  if (best_count <= 2) return next_up(best);
  return best - (4e-12 + 4e-12 * std::abs(best));
}

}  // namespace

SpatiotemporalAggregator::SpatiotemporalAggregator(
    const MicroscopicModel& model, AggregationOptions options)
    : model_(&model),
      options_(options),
      cube_(model, options.shard_plan),
      tri_(model.slice_count()) {
  options_.max_lanes = std::clamp<std::size_t>(options_.max_lanes, 1,
                                               kMaxDpLanes);
  const Hierarchy& h = model.hierarchy();
  levels_.resize(static_cast<std::size_t>(h.max_depth()) + 1);
  for (NodeId id = 0; id < static_cast<NodeId>(h.node_count()); ++id) {
    levels_[static_cast<std::size_t>(h.node(id).depth)].push_back(id);
  }
  pic_.resize(h.node_count());
  mirror_.resize(h.node_count());
  cmirror_.resize(h.node_count());
  cut_.resize(h.node_count());
  cnt_.resize(h.node_count());
}

std::size_t SpatiotemporalAggregator::estimate_bytes(std::size_t node_count,
                                                     std::int32_t slices,
                                                     std::size_t lanes) {
  const TriangularIndex tri(slices);
  // Per cell: per lane pIC (double) + column-major pIC mirror (double) +
  // column-major count mirror + cut + count (int32), plus the lane-shared
  // cached (gain, loss) pair.
  return node_count * tri.size() *
         (lanes * (2 * sizeof(double) + 3 * sizeof(std::int32_t)) +
          sizeof(AreaMeasures));
}

std::size_t SpatiotemporalAggregator::working_set_bytes(
    std::size_t lanes) const noexcept {
  const std::size_t cells = tri_.size();
  const std::size_t node_count = model_->hierarchy().node_count();
  if (options_.kernel == DpKernel::kReference) {
    // The original formulation: pIC + cut + count for every node (the
    // reference kernel never lanes).
    return node_count * cells * (sizeof(double) + 2 * sizeof(std::int32_t));
  }
  // pIC + count matrices live for two adjacent levels at a time (the arena
  // recycles grandchildren buffers); the column-major pIC and count
  // mirrors only for the level being computed; cut matrices for all
  // nodes.  All of these carry one value per lane; the shared measure
  // cache does not.
  std::size_t peak_per_cell = 0;
  for (std::size_t d = 0; d < levels_.size(); ++d) {
    const std::size_t two =
        levels_[d].size() + (d + 1 < levels_.size() ? levels_[d + 1].size() : 0);
    peak_per_cell = std::max(
        peak_per_cell,
        two * (sizeof(double) + sizeof(std::int32_t)) +
            levels_[d].size() * (sizeof(double) + sizeof(std::int32_t)));
  }
  return cells * lanes * (node_count * sizeof(std::int32_t) + peak_per_cell) +
         MeasureCache::estimate_bytes(node_count, tri_.slices());
}

void SpatiotemporalAggregator::check_p(double p) const {
  // Negated-range form so NaN (every comparison false) is rejected too.
  if (!(p >= 0.0 && p <= 1.0)) {
    throw InvalidArgument("aggregation parameter p must be in [0,1], got " +
                          std::to_string(p));
  }
}

void SpatiotemporalAggregator::check_budget(std::size_t lanes) const {
  const std::size_t need = working_set_bytes(lanes);
  if (need > options_.memory_budget_bytes) {
    throw BudgetError("DP working set needs " + std::to_string(need) +
                      " bytes > budget " +
                      std::to_string(options_.memory_budget_bytes) +
                      "; reduce |T|, the lane width, or raise the budget");
  }
}

std::size_t SpatiotemporalAggregator::lane_width(
    std::size_t probe_count) const noexcept {
  if (options_.kernel == DpKernel::kCachedSolo) return 1;
  return std::min({options_.max_lanes, kMaxDpLanes,
                   std::max<std::size_t>(probe_count, 1)});
}

void SpatiotemporalAggregator::ensure_measure_cache() {
  if (cache_.built()) return;
  Stopwatch watch;
  cache_.build(cube_, options_.parallel, options_.shard_plan);
  cache_build_seconds_ = watch.seconds();
}

AreaMeasures SpatiotemporalAggregator::area_measures(
    NodeId node, SliceId i, SliceId j) const noexcept {
  return cache_.built() ? cache_.at(node, i, j) : cube_.measures(node, i, j);
}

void SpatiotemporalAggregator::fill_quality(AggregationResult& result) const {
  const Hierarchy& h = model_->hierarchy();
  const AreaMeasures root = area_measures(h.root(), 0, tri_.slices() - 1);
  result.quality.area_count = result.partition.size();
  result.quality.microscopic_count =
      h.leaf_count() * static_cast<std::size_t>(tri_.slices());
  result.quality.gain = result.measures.gain;
  result.quality.loss = result.measures.loss;
  result.quality.max_gain = root.gain;
  result.quality.max_loss = root.loss;
}

// ---------------------------------------------------------------------------
// Buffer arena.
// ---------------------------------------------------------------------------

simd::AlignedVec<double> SpatiotemporalAggregator::acquire_dbl(
    std::size_t n) {
  if (!dbl_pool_.empty()) {
    simd::AlignedVec<double> buf = std::move(dbl_pool_.back());
    dbl_pool_.pop_back();
    buf.resize(n);
    return buf;
  }
  return simd::AlignedVec<double>(n);
}

simd::AlignedVec<std::int32_t> SpatiotemporalAggregator::acquire_i32(
    std::size_t n) {
  if (!i32_pool_.empty()) {
    simd::AlignedVec<std::int32_t> buf = std::move(i32_pool_.back());
    i32_pool_.pop_back();
    buf.resize(n);
    return buf;
  }
  return simd::AlignedVec<std::int32_t>(n);
}

void SpatiotemporalAggregator::release(simd::AlignedVec<double>&& buf) {
  // Moved-from (already released) vectors are empty; only pool live ones.
  if (!buf.empty()) dbl_pool_.push_back(std::move(buf));
}

void SpatiotemporalAggregator::release(simd::AlignedVec<std::int32_t>&& buf) {
  if (!buf.empty()) i32_pool_.push_back(std::move(buf));
}

// ---------------------------------------------------------------------------
// Cached lane kernel.
// ---------------------------------------------------------------------------

SpatiotemporalAggregator::LaneScan SpatiotemporalAggregator::make_scan(
    NodeId node, std::span<const double> ps, double gain_scale,
    double loss_scale, std::vector<const double*>& child_pic,
    std::vector<const std::int32_t*>& child_cnt) {
  const auto& children = model_->hierarchy().node(node).children;
  child_pic.clear();
  child_cnt.clear();
  child_pic.reserve(children.size());
  child_cnt.reserve(children.size());
  for (NodeId c : children) {
    child_pic.push_back(pic_[static_cast<std::size_t>(c)].data());
    child_cnt.push_back(cnt_[static_cast<std::size_t>(c)].data());
  }
  LaneScan scan;
  scan.meas = cache_.node_data(node);
  scan.pic = pic_[static_cast<std::size_t>(node)].data();
  scan.mirror = mirror_[static_cast<std::size_t>(node)].data();
  scan.cnt = cnt_[static_cast<std::size_t>(node)].data();
  scan.cnt_mirror = cmirror_[static_cast<std::size_t>(node)].data();
  scan.cut = cut_[static_cast<std::size_t>(node)].data();
  scan.child_pic = child_pic.data();
  scan.child_cnt = child_cnt.data();
  scan.n_children = children.size();
  scan.p = ps.data();
  scan.lanes = ps.size();
  scan.gain_scale = gain_scale;
  scan.loss_scale = loss_scale;
  return scan;
}

template <int W, bool Filtered, bool Vec>
void SpatiotemporalAggregator::compute_cell_lanes(const LaneScan& scan,
                                                  SliceId i,
                                                  SliceId j) const noexcept {
  // Vec only instantiates meaningfully at widths divisible by 4; the
  // dispatcher never selects it otherwise.  Every Vec block below batches
  // the SAME elementwise operations in the same per-lane order as its
  // scalar twin — lanes are independent, no accumulation chain is
  // reordered, and the build forbids FP contraction — so the two
  // instantiations are bit-identical (pinned by tests/test_simd.cpp).
  constexpr bool kVec = Vec && W % 4 == 0;
  const std::size_t row = tri_.row_offset(i);
  const std::size_t cell = row + static_cast<std::size_t>(j - i);

  // "No cut": the area itself is one aggregate (Eq. 4) — a multiply-add of
  // every lane's p over the one cached p-independent (gain, loss) pair.
  // The expression (operand order included) is the reference kernel's, so
  // each lane stays bit-identical to a solo run at its p.
  const AreaMeasures& m = scan.meas[cell];
  double best[W];
  std::int32_t best_cut[W];
  std::int32_t best_count[W];
  if constexpr (kVec) {
    const simd::f64x4 one = simd::f64x4::broadcast(1.0);
    const simd::f64x4 g = simd::f64x4::broadcast(m.gain);
    const simd::f64x4 gs = simd::f64x4::broadcast(scan.gain_scale);
    const simd::f64x4 l = simd::f64x4::broadcast(m.loss);
    const simd::f64x4 ls = simd::f64x4::broadcast(scan.loss_scale);
    for (int w = 0; w < W; w += 4) {
      const simd::f64x4 pv = simd::f64x4::load(scan.p + w);
      (pv * g * gs - (one - pv) * l * ls).store(best + w);
    }
  } else {
    for (int w = 0; w < W; ++w) {
      best[w] = scan.p[w] * m.gain * scan.gain_scale -
                (1.0 - scan.p[w]) * m.loss * scan.loss_scale;
    }
  }
  for (int w = 0; w < W; ++w) {
    best_cut[w] = j;
    best_count[w] = 1;
  }

  // Ties (within accumulated rounding noise) are broken toward the
  // *smallest area count*, so among equally-optimal partitions the
  // coarsest representation is returned — a homogeneous phase stays one
  // aggregate instead of fragmenting into equal-pIC slices.  The
  // acceptance logic is the reference kernel's challenge, restructured so
  // the common path is a lane-parallel compare.

  // Spatial cut: partition into the children over the same interval.  The
  // children's per-lane optima sit adjacent in memory, so the sum is a
  // contiguous W-wide accumulation per child.
  if (scan.n_children != 0) {
    double sum[W];
    std::int32_t count[W];
    for (int w = 0; w < W; ++w) {
      sum[w] = 0.0;
      count[w] = 0;
    }
    for (std::size_t k = 0; k < scan.n_children; ++k) {
      const double* cp = scan.child_pic[k] + cell * W;
      const std::int32_t* cc = scan.child_cnt[k] + cell * W;
      if constexpr (kVec) {
        // Child-order accumulation per lane is unchanged — the vector add
        // batches the W independent per-lane chains, it does not reorder
        // any one of them.
        for (int w = 0; w < W; w += 4) {
          (simd::f64x4::load(sum + w) + simd::f64x4::load(cp + w))
              .store(sum + w);
          (simd::i32x4::load(count + w) + simd::i32x4::load(cc + w))
              .store(count + w);
        }
      } else {
        for (int w = 0; w < W; ++w) {
          sum[w] += cp[w];
          count[w] += cc[w];
        }
      }
    }
    for (int w = 0; w < W; ++w) {
      const double eps =
          1e-12 + 1e-12 * std::max(std::abs(best[w]), std::abs(sum[w]));
      if (sum[w] > best[w] + eps ||
          (sum[w] >= best[w] - eps && count[w] < best_count[w])) {
        best[w] = std::max(best[w], sum[w]);
        best_cut[w] = -1;
        best_count[w] = count[w];
      }
    }
  }

  // Temporal cuts: split [i,j] into [i,c] + [c+1,j].  The left operand
  // pIC(i, c) is row-contiguous, the right operand pIC(c+1, j) is read from
  // the column-major mirror where column j is contiguous — with the lane
  // interleave both are flat W-wide streams.
  //
  // Threshold scan (Filtered, the production kernel): each lane keeps the
  // conservative challenge_threshold of its current (best, count) state,
  // so the hot loop over cut positions is a bare add-and-compare per lane
  // with no epsilon arithmetic at all; only cuts at or above a lane's
  // threshold evaluate the reference kernel's exact accept-and-tie-break
  // logic (same cut order, same operations — bit-identical), and the
  // threshold is conservative, so no state-changing candidate is ever
  // screened out.  The W lanes' independent compare chains are what the
  // batching buys: one pass over the streams feeds W superscalar-parallel
  // per-lane pipelines, where the solo kernel re-walked the streams per
  // probe.  With Filtered = false (kCachedSolo, the PR 1 formulation)
  // every cut evaluates the reference challenge directly.
  double thr[Filtered ? W : 1];
  if constexpr (Filtered) {
    for (int w = 0; w < W; ++w) {
      thr[w] = challenge_threshold(best[w], best_count[w]);
    }
  }
  const double* left = scan.pic + row * W;
  const double* right =
      scan.mirror + (col_offset(j) + static_cast<std::size_t>(i) + 1) * W;
  const std::int32_t* left_cnt = scan.cnt + row * W;
  const std::int32_t* right_cnt =
      scan.cnt_mirror + (col_offset(j) + static_cast<std::size_t>(i) + 1) * W;
  const std::int32_t len = j - i;

  // Exact reference challenge of cut i+k against lane w's state.
  const auto challenge = [&](std::int32_t k, int w, double v) {
    const double eps =
        1e-12 + 1e-12 * std::max(std::abs(best[w]), std::abs(v));
    const bool strict = v > best[w] + eps;
    if (!strict && !(v >= best[w] - eps)) return;
    const std::int32_t count = left_cnt[static_cast<std::size_t>(k) * W + w] +
                               right_cnt[static_cast<std::size_t>(k) * W + w];
    if (strict || count < best_count[w]) {
      best[w] = std::max(best[w], v);
      best_cut[w] = i + k;
      best_count[w] = count;
      if constexpr (Filtered) {
        thr[w] = challenge_threshold(best[w], best_count[w]);
      }
    }
  };

  for (std::int32_t k = 0; k < len; ++k) {
    if constexpr (Filtered) {
      // Branch-free W-wide screen: candidate values and threshold
      // comparisons for the whole wave are computed before any lane's
      // challenge runs (the adds and compares vectorize over the
      // lane-interleaved pIC and transposed count streams); only a wave
      // with at least one passing lane enters the scalar challenge path.
      // A lane's challenge can only move its own threshold, and the
      // original scalar loop also compared lane w against thr[w] as it
      // stood *before* cut k's challenges — so hoisting the compares
      // never changes which cuts are evaluated, and results stay
      // bit-identical.
      double v[W];
      int any_pass = 0;
      if constexpr (kVec) {
        // The screen adds are per-lane (independent chains) and the >=
        // mask matches the scalar compare exactly (ordered, quiet-NaN
        // false), so pass/fail decisions are identical; passing lanes
        // still run the scalar challenge below in lane order.
        for (int w = 0; w < W; w += 4) {
          const simd::f64x4 vv =
              simd::f64x4::load(left + static_cast<std::size_t>(k) * W + w) +
              simd::f64x4::load(right + static_cast<std::size_t>(k) * W + w);
          vv.store(v + w);
          any_pass |= vv.ge_mask(simd::f64x4::load(thr + w));
        }
      } else {
        for (int w = 0; w < W; ++w) {
          v[w] = left[static_cast<std::size_t>(k) * W + w] +
                 right[static_cast<std::size_t>(k) * W + w];
          any_pass |= static_cast<int>(v[w] >= thr[w]);
        }
      }
      if (any_pass != 0) {
        for (int w = 0; w < W; ++w) {
          if (v[w] >= thr[w]) challenge(k, w, v[w]);
        }
      }
    } else {
      for (int w = 0; w < W; ++w) {
        const double v = left[static_cast<std::size_t>(k) * W + w] +
                         right[static_cast<std::size_t>(k) * W + w];
        challenge(k, w, v);
      }
    }
  }

  double* out_pic = scan.pic + cell * W;
  double* out_mirror =
      scan.mirror + (col_offset(j) + static_cast<std::size_t>(i)) * W;
  std::int32_t* out_cut = scan.cut + cell * W;
  std::int32_t* out_cnt = scan.cnt + cell * W;
  std::int32_t* out_cmirror =
      scan.cnt_mirror + (col_offset(j) + static_cast<std::size_t>(i)) * W;
  if constexpr (kVec) {
    for (int w = 0; w < W; w += 4) {
      const simd::f64x4 b = simd::f64x4::load(best + w);
      b.store(out_pic + w);
      b.store(out_mirror + w);
      simd::i32x4::load(best_cut + w).store(out_cut + w);
      const simd::i32x4 c = simd::i32x4::load(best_count + w);
      c.store(out_cnt + w);
      c.store(out_cmirror + w);
    }
  } else {
    for (int w = 0; w < W; ++w) {
      out_pic[w] = best[w];
      out_mirror[w] = best[w];
      out_cut[w] = best_cut[w];
      out_cnt[w] = best_count[w];
      out_cmirror[w] = best_count[w];
    }
  }
}

template <int W, bool Filtered, bool Vec>
void SpatiotemporalAggregator::compute_node_lanes_w(const LaneScan& scan,
                                                    bool wavefront,
                                                    SliceId first_dirty) {
  const SliceId n_t = tri_.slices();
  if (!wavefront) {
    // i descending / j ascending: a cell (i, j) reads (i, c) with c < j
    // (this row, already swept — or a retained clean column) and (c+1, j)
    // with c+1 > i (deeper rows, already swept).  Restricting j to the
    // dirty columns therefore preserves every dependency: clean cells are
    // read, never written.
    for (SliceId i = n_t - 1; i >= 0; --i) {
      for (SliceId j = std::max(i, first_dirty); j < n_t; ++j) {
        compute_cell_lanes<W, Filtered, Vec>(scan, i, j);
      }
    }
    return;
  }
  // Wavefront sweep: all cells of equal interval length j - i are mutually
  // independent (a cell only reads strictly shorter intervals), so each
  // anti-diagonal is one parallel_for.  Used for single-node levels —
  // notably the root — whose DP otherwise runs entirely serially.  Lane
  // values of one cell are always computed by one task, so the schedule
  // cannot affect results.  Dirty sweeps clip each anti-diagonal to the
  // cells with j = i + len >= first_dirty.
  for (SliceId i = std::max<SliceId>(0, first_dirty); i < n_t; ++i) {
    compute_cell_lanes<W, Filtered, Vec>(scan, i, i);
  }
  const std::size_t threads =
      std::max<std::size_t>(1, ThreadPool::shared().size());
  for (SliceId len = 1; len < n_t; ++len) {
    const SliceId i_lo = std::max<SliceId>(0, first_dirty - len);
    if (i_lo >= n_t - len) continue;
    const std::size_t n = static_cast<std::size_t>(n_t - len - i_lo);
    const std::size_t grain = std::max<std::size_t>(16, n / (4 * threads));
    parallel_for(
        n,
        [&](std::size_t k) {
          const auto i = static_cast<SliceId>(i_lo + static_cast<SliceId>(k));
          compute_cell_lanes<W, Filtered, Vec>(scan, i, i + len);
        },
        grain);
  }
}

void SpatiotemporalAggregator::compute_node_lanes(const LaneScan& scan,
                                                  bool wavefront,
                                                  SliceId first_dirty) {
  // One instantiation per width keeps the per-cell lane loops at a
  // compile-time trip count the optimizer can unroll.  kCachedSolo (the
  // PR 1 kernel) always runs width 1, unfiltered.
  if (options_.kernel == DpKernel::kCachedSolo) {
    compute_node_lanes_w<1, false, false>(scan, wavefront, first_dirty);
    return;
  }
  // Vector instantiations exist only at the widths divisible by the f64x4
  // lane count; use_simd = false (or a scalar-forced build, where the
  // wrappers alias their scalar twins) routes those widths to the scalar
  // twin — the baseline bench_simd measures against.
  const bool vec = options_.use_simd;
  switch (scan.lanes) {
    case 1: compute_node_lanes_w<1, true, false>(scan, wavefront, first_dirty); break;
    case 2: compute_node_lanes_w<2, true, false>(scan, wavefront, first_dirty); break;
    case 3: compute_node_lanes_w<3, true, false>(scan, wavefront, first_dirty); break;
    case 4:
      if (vec) compute_node_lanes_w<4, true, true>(scan, wavefront, first_dirty);
      else compute_node_lanes_w<4, true, false>(scan, wavefront, first_dirty);
      break;
    case 5: compute_node_lanes_w<5, true, false>(scan, wavefront, first_dirty); break;
    case 6: compute_node_lanes_w<6, true, false>(scan, wavefront, first_dirty); break;
    case 7: compute_node_lanes_w<7, true, false>(scan, wavefront, first_dirty); break;
    case 8:
      if (vec) compute_node_lanes_w<8, true, true>(scan, wavefront, first_dirty);
      else compute_node_lanes_w<8, true, false>(scan, wavefront, first_dirty);
      break;
    default: break;  // unreachable: lane_width clamps to kMaxDpLanes
  }
}

void SpatiotemporalAggregator::run_wave(std::span<const double> ps,
                                        std::vector<AggregationResult>& out) {
  const Hierarchy& h = model_->hierarchy();
  const std::size_t lanes = ps.size();
  const std::size_t lane_cells = tri_.size() * lanes;

  double gain_scale = 1.0;
  double loss_scale = 1.0;
  if (options_.normalize) {
    const AreaMeasures root = area_measures(h.root(), 0, tri_.slices() - 1);
    if (root.gain > 0.0) gain_scale = 1.0 / root.gain;
    if (root.loss > 0.0) loss_scale = 1.0 / root.loss;
  }

  // Level-synchronous bottom-up sweep: all nodes of one depth are mutually
  // independent, and their children (depth+1) are complete.
  for (std::size_t d = levels_.size(); d-- > 0;) {
    const auto& nodes = levels_[d];
    // Grandchildren pIC/count matrices are no longer read (level d+1 is
    // complete); recycle them *before* acquiring this level's buffers so at
    // no point more than two adjacent levels hold live DP matrices — the
    // invariant working_set_bytes() charges for.
    if (d + 2 < levels_.size()) {
      for (NodeId n : levels_[d + 2]) {
        release(std::move(pic_[static_cast<std::size_t>(n)]));
        release(std::move(cnt_[static_cast<std::size_t>(n)]));
      }
    }
    for (NodeId n : nodes) {
      const auto idx = static_cast<std::size_t>(n);
      pic_[idx] = acquire_dbl(lane_cells);
      mirror_[idx] = acquire_dbl(lane_cells);
      cnt_[idx] = acquire_i32(lane_cells);
      cmirror_[idx] = acquire_i32(lane_cells);
      if (cut_[idx].size() != lane_cells) cut_[idx].resize(lane_cells);
    }
    sweep_level(nodes, ps, gain_scale, loss_scale, /*first_dirty=*/0);
    // The mirrors are only read by the node's own temporal scans.
    for (NodeId n : nodes) {
      release(std::move(mirror_[static_cast<std::size_t>(n)]));
      release(std::move(cmirror_[static_cast<std::size_t>(n)]));
    }
  }

  extract_wave_results(ps, out);

  // Return the last two levels' buffers to the arena; nothing is freed, so
  // the next wave (same |T| and width) allocates nothing.
  for (auto& buf : pic_) release(std::move(buf));
  for (auto& buf : cnt_) release(std::move(buf));
}

void SpatiotemporalAggregator::sweep_level(std::span<const NodeId> nodes,
                                           std::span<const double> ps,
                                           double gain_scale,
                                           double loss_scale,
                                           SliceId first_dirty) {
  if (options_.parallel && nodes.size() > 1) {
    parallel_for(
        nodes.size(),
        [&](std::size_t k) {
          std::vector<const double*> child_pic;
          std::vector<const std::int32_t*> child_cnt;
          const LaneScan scan = make_scan(nodes[k], ps, gain_scale,
                                          loss_scale, child_pic, child_cnt);
          compute_node_lanes(scan, /*wavefront=*/false, first_dirty);
        },
        /*grain=*/1);
  } else {
    // A thin level (typically the single root node) cannot use sibling
    // parallelism; sweep its anti-diagonals in parallel instead.  The
    // wavefront runs on the caller thread, so it never nests pool waits.
    std::vector<const double*> child_pic;
    std::vector<const std::int32_t*> child_cnt;
    for (NodeId n : nodes) {
      const LaneScan scan =
          make_scan(n, ps, gain_scale, loss_scale, child_pic, child_cnt);
      compute_node_lanes(scan, /*wavefront=*/options_.parallel, first_dirty);
    }
  }
}

void SpatiotemporalAggregator::extract_wave_results(
    std::span<const double> ps, std::vector<AggregationResult>& out) {
  const Hierarchy& h = model_->hierarchy();
  const std::size_t lanes = ps.size();
  const std::size_t root_cell = tri_(0, tri_.slices() - 1);
  const auto root_idx = static_cast<std::size_t>(h.root());
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    AggregationResult result;
    result.p = ps[lane];
    result.optimal_pic = pic_[root_idx][root_cell * lanes + lane];
    extract_partition(result.partition, lane, lanes);
    result.partition.canonicalize(h);
    for (const auto& a : result.partition.areas()) {
      result.measures += area_measures(a.node, a.time.i, a.time.j);
    }
    fill_quality(result);
    out.push_back(std::move(result));
  }
}

AggregationResult SpatiotemporalAggregator::run_cached(double p) {
  std::vector<AggregationResult> out;
  out.reserve(1);
  run_wave({&p, 1}, out);
  return std::move(out.front());
}

// ---------------------------------------------------------------------------
// Incremental re-aggregation: window splicing + dirty-column DP sweeps.
// ---------------------------------------------------------------------------

void SpatiotemporalAggregator::apply_window_update(std::int32_t dropped_front,
                                                   SliceId first_dirty) {
  const std::int32_t old_t = tri_.slices();
  const std::int32_t new_t = model_->slice_count();
  if (dropped_front < 0 || dropped_front > old_t) {
    throw InvalidArgument("apply_window_update: invalid dropped_front");
  }
  // Cells whose column has no old counterpart (appended slices) are dirty
  // regardless of what the caller reports; so are all columns at or past
  // the first changed model column.
  const SliceId fresh_from =
      std::max<SliceId>(0, old_t - dropped_front);
  const SliceId dirty =
      std::clamp<SliceId>(std::min(first_dirty, fresh_from), 0, new_t);

  cube_.reshape_slices(new_t, dropped_front);
  cube_.recompute_slices(dirty, options_.parallel);

  const TriangularIndex new_tri(new_t);
  if (cache_.built()) {
    cache_.reshape(new_t, dropped_front);
    cache_.update(cube_, dirty, options_.parallel, options_.shard_plan);
  }

  if (inc_ && inc_->valid) {
    // Relocate every wave's retained row-major matrices; the column-major
    // mirrors are not retained (see WaveDpState).
    for (WaveDpState& wave : inc_->waves) {
      for (auto& buf : wave.pic) {
        reshape_packed_triangles(buf, tri_, new_tri, dropped_front,
                                 wave.lanes, 1);
      }
      for (auto& buf : wave.cnt) {
        reshape_packed_triangles(buf, tri_, new_tri, dropped_front,
                                 wave.lanes, 1);
      }
      for (auto& buf : wave.cut) {
        reshape_packed_triangles(buf, tri_, new_tri, dropped_front,
                                 wave.lanes, 1);
        // pIC and count are coordinate-free, but cut values are *absolute
        // slice indices* (cut == j marks an aggregate, cut in [i, j) a
        // temporal split position): a dropped prefix shifts them all.
        // Dirty cells are about to be recomputed anyway; -1 (spatial cut)
        // is preserved.
        if (dropped_front > 0) {
          for (auto& c : buf) {
            if (c >= 0) c -= dropped_front;
          }
        }
      }
    }
    // Prior staleness shifts with the window; combine with this update.
    const SliceId prior = std::clamp<SliceId>(
        inc_dirty_ - dropped_front, 0, new_t);
    inc_dirty_ = std::min(prior, dirty);
  } else {
    inc_dirty_ = 0;
  }
  tri_ = new_tri;
}

std::size_t SpatiotemporalAggregator::incremental_state_bytes()
    const noexcept {
  if (!inc_) return 0;
  std::size_t bytes = 0;
  for (const WaveDpState& wave : inc_->waves) {
    for (const auto& buf : wave.pic) bytes += buf.size() * sizeof(double);
    for (const auto& buf : wave.cnt) bytes += buf.size() * sizeof(std::int32_t);
    for (const auto& buf : wave.cut) bytes += buf.size() * sizeof(std::int32_t);
  }
  return bytes;
}

void SpatiotemporalAggregator::run_wave_incremental(
    std::span<const double> ps, WaveDpState& state, SliceId first_dirty,
    std::vector<AggregationResult>& out) {
  const Hierarchy& h = model_->hierarchy();
  const std::size_t lanes = ps.size();
  const std::size_t lane_cells = tri_.size() * lanes;
  const std::size_t node_count = h.node_count();

  state.lanes = lanes;
  state.pic.resize(node_count);
  state.cnt.resize(node_count);
  state.cut.resize(node_count);
  // Adopt the retained buffers into the member slots the scan builders
  // read; vectors move by pointer swap.  Fresh (empty) buffers are sized
  // here — their cells are all covered by a first_dirty == 0 sweep.
  for (std::size_t n = 0; n < node_count; ++n) {
    pic_[n] = std::move(state.pic[n]);
    cnt_[n] = std::move(state.cnt[n]);
    cut_[n] = std::move(state.cut[n]);
    if (pic_[n].size() != lane_cells) pic_[n].resize(lane_cells);
    if (cnt_[n].size() != lane_cells) cnt_[n].resize(lane_cells);
    if (cut_[n].size() != lane_cells) cut_[n].resize(lane_cells);
  }

  if (first_dirty < tri_.slices()) {
    for (std::size_t d = levels_.size(); d-- > 0;) {
      const auto& nodes = levels_[d];
      for (NodeId n : nodes) {
        const auto idx = static_cast<std::size_t>(n);
        mirror_[idx] = acquire_dbl(lane_cells);
        cmirror_[idx] = acquire_i32(lane_cells);
      }
      sweep_level(nodes, ps, /*gain_scale=*/1.0, /*loss_scale=*/1.0,
                  first_dirty);
      for (NodeId n : nodes) {
        release(std::move(mirror_[static_cast<std::size_t>(n)]));
        release(std::move(cmirror_[static_cast<std::size_t>(n)]));
      }
    }
  }

  extract_wave_results(ps, out);

  // Return the matrices to the retained checkpoint for the next advance.
  for (std::size_t n = 0; n < node_count; ++n) {
    state.pic[n] = std::move(pic_[n]);
    state.cnt[n] = std::move(cnt_[n]);
    state.cut[n] = std::move(cut_[n]);
  }
}

std::vector<AggregationResult> SpatiotemporalAggregator::run_incremental(
    std::span<const double> ps) {
  for (const double p : ps) check_p(p);
  if (options_.kernel == DpKernel::kReference) {
    throw InvalidArgument(
        "run_incremental: the reference kernel has no retained form; use a "
        "cached kernel");
  }
  if (options_.normalize) {
    throw InvalidArgument(
        "run_incremental: normalization rescales every cell on each window "
        "update; incremental sessions require normalize = false");
  }
  std::vector<AggregationResult> results;
  if (ps.empty()) return results;
  const std::size_t width = lane_width(ps.size());
  const std::size_t waves = (ps.size() + width - 1) / width;
  // Budget: the sweep working set plus the retained checkpoint (pIC +
  // count + cut per cell per lane, every node, every wave).
  const std::size_t retained =
      waves * model_->hierarchy().node_count() * tri_.size() * width *
      (sizeof(double) + 2 * sizeof(std::int32_t));
  const std::size_t need = working_set_bytes(width) + retained;
  if (need > options_.memory_budget_bytes) {
    throw BudgetError("incremental DP working set + retained state need " +
                      std::to_string(need) + " bytes > budget " +
                      std::to_string(options_.memory_budget_bytes) +
                      "; reduce |T|, the lane width, or raise the budget");
  }
  ensure_measure_cache();

  const bool fresh =
      !inc_ || !inc_->valid || inc_->width != width ||
      inc_->ps.size() != ps.size() ||
      !std::equal(inc_->ps.begin(), inc_->ps.end(), ps.begin());
  if (fresh) {
    inc_ = std::make_unique<IncrementalDp>();
    inc_->ps.assign(ps.begin(), ps.end());
    inc_->width = width;
    inc_->waves.resize(waves);
    inc_dirty_ = 0;
  }
  const SliceId first_dirty = fresh ? 0 : inc_dirty_;
  // Invalidate while waves are in flight: if a sweep throws (allocation
  // failure past the budget check, cancellation), the retained buffers are
  // partially moved out and must not be spliced from on a retry.
  inc_->valid = false;

  results.reserve(ps.size());
  for (std::size_t w = 0; w < waves; ++w) {
    const std::size_t offset = w * width;
    run_wave_incremental(
        ps.subspan(offset, std::min(width, ps.size() - offset)),
        inc_->waves[w], first_dirty, results);
  }
  inc_->valid = true;
  inc_dirty_ = tri_.slices();
  return results;
}

// ---------------------------------------------------------------------------
// Reference kernel: the original per-cell formulation (measures recomputed
// from the cube inside the innermost loop, buffers freed after the run).
// Kept as the equivalence-test oracle and the bench baseline.
// ---------------------------------------------------------------------------

void SpatiotemporalAggregator::compute_node_reference(NodeId node, double p,
                                                      double gain_scale,
                                                      double loss_scale) {
  const Hierarchy& h = model_->hierarchy();
  const auto& children = h.node(node).children;
  const SliceId n_t = tri_.slices();

  auto& pic_cells = pic_[static_cast<std::size_t>(node)];
  auto& cut_cells = cut_[static_cast<std::size_t>(node)];
  auto& cnt_cells = cnt_[static_cast<std::size_t>(node)];
  pic_cells.resize(tri_.size());
  cut_cells.resize(tri_.size());
  cnt_cells.resize(tri_.size());

  // Cache children cell arrays (computed at the deeper level already).
  std::vector<const double*> child_pic;
  std::vector<const std::int32_t*> child_cnt;
  child_pic.reserve(children.size());
  child_cnt.reserve(children.size());
  for (NodeId c : children) {
    child_pic.push_back(pic_[static_cast<std::size_t>(c)].data());
    child_cnt.push_back(cnt_[static_cast<std::size_t>(c)].data());
  }

  // Column-major sweep (j ascending, i descending): column j's measures
  // are produced by one descending per-state accumulation over the cube's
  // per-slice data — bit-identical to per-cell cube_.measures() calls (the
  // MeasureCache equivalence suite pins this), but O(|X|) amortized per
  // cell instead of O(|X| (j-i)), preserving the original formulation's
  // O(|S| |T|^2 |X|) measure cost.  The order is DP-valid: cell (i, j)
  // reads (i, c) with c < j (earlier columns) and (c+1, j) deeper in the
  // current column (already computed, i descends).
  std::vector<AreaMeasures> col(static_cast<std::size_t>(n_t));
  for (SliceId j = 0; j < n_t; ++j) {
    cube_.measures_column_into(
        node, j, std::span(col.data(), static_cast<std::size_t>(j) + 1));
    for (SliceId i = j; i >= 0; --i) {
      const std::size_t row = tri_.row_offset(i);
      const std::size_t cell = row + static_cast<std::size_t>(j - i);

      // "No cut": the area itself is one aggregate (Eq. 4).
      const AreaMeasures m = col[static_cast<std::size_t>(i)];
      double best = p * m.gain * gain_scale - (1.0 - p) * m.loss * loss_scale;
      std::int32_t best_cut = j;
      std::int32_t best_count = 1;

      const auto challenge = [&](double v, std::int32_t count,
                                 std::int32_t cut) {
        const double eps =
            1e-12 + 1e-12 * std::max(std::abs(best), std::abs(v));
        if (v > best + eps || (v >= best - eps && count < best_count)) {
          best = std::max(best, v);
          best_cut = cut;
          best_count = count;
        }
      };

      // Spatial cut: partition into the children over the same interval.
      if (!child_pic.empty()) {
        double sum = 0.0;
        std::int32_t count = 0;
        for (std::size_t k = 0; k < child_pic.size(); ++k) {
          sum += child_pic[k][cell];
          count += child_cnt[k][cell];
        }
        challenge(sum, count, -1);
      }

      // Temporal cuts: split [i,j] into [i,c] + [c+1,j]; both sub-cells are
      // already optimal (j ascending covers [i,c], i descending [c+1,j]).
      const double* my = pic_cells.data();
      const std::int32_t* my_cnt = cnt_cells.data();
      for (SliceId c = i; c < j; ++c) {
        const std::size_t left = row + static_cast<std::size_t>(c - i);
        const std::size_t right = tri_(c + 1, j);
        challenge(my[left] + my[right], my_cnt[left] + my_cnt[right], c);
      }

      pic_cells[cell] = best;
      cut_cells[cell] = best_cut;
      cnt_cells[cell] = best_count;
    }
  }
}

AggregationResult SpatiotemporalAggregator::run_reference(double p) {
  const Hierarchy& h = model_->hierarchy();

  double gain_scale = 1.0;
  double loss_scale = 1.0;
  if (options_.normalize) {
    const AreaMeasures root = cube_.root_measures();
    if (root.gain > 0.0) gain_scale = 1.0 / root.gain;
    if (root.loss > 0.0) loss_scale = 1.0 / root.loss;
  }

  for (auto level = levels_.rbegin(); level != levels_.rend(); ++level) {
    const auto& nodes = *level;
    if (options_.parallel && nodes.size() > 1) {
      parallel_for(
          nodes.size(),
          [&](std::size_t k) {
            compute_node_reference(nodes[k], p, gain_scale, loss_scale);
          },
          /*grain=*/1);
    } else {
      for (NodeId n : nodes) {
        compute_node_reference(n, p, gain_scale, loss_scale);
      }
    }
    const std::size_t depth =
        static_cast<std::size_t>(levels_.rend() - level - 1);
    if (depth + 2 <= levels_.size() - 1) {
      for (NodeId n : levels_[depth + 2]) {
        pic_[static_cast<std::size_t>(n)] = {};
        cnt_[static_cast<std::size_t>(n)] = {};
      }
    }
  }

  AggregationResult result;
  result.p = p;
  result.optimal_pic = pic_[static_cast<std::size_t>(h.root())]
                           [tri_(0, tri_.slices() - 1)];
  extract_partition(result.partition, /*lane=*/0, /*lanes=*/1);
  result.partition.canonicalize(h);
  for (const auto& a : result.partition.areas()) {
    result.measures += cube_.measures(a.node, a.time.i, a.time.j);
  }
  fill_quality(result);

  // Release the DP buffers (the original behaviour); the cube stays.
  for (auto& v : pic_) v = {};
  for (auto& v : cnt_) v = {};
  return result;
}

// ---------------------------------------------------------------------------
// Public entry points.
// ---------------------------------------------------------------------------

void SpatiotemporalAggregator::extract_partition(Partition& out,
                                                 std::size_t lane,
                                                 std::size_t lanes) const {
  const Hierarchy& h = model_->hierarchy();
  struct Item {
    NodeId node;
    SliceId i, j;
  };
  std::vector<Item> stack;
  stack.push_back({h.root(), 0, tri_.slices() - 1});
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    const std::int32_t cut =
        cut_[static_cast<std::size_t>(it.node)][tri_(it.i, it.j) * lanes +
                                                lane];
    if (cut == it.j) {
      out.add(it.node, it.i, it.j);
    } else if (cut == -1) {
      for (NodeId c : h.node(it.node).children) {
        stack.push_back({c, it.i, it.j});
      }
    } else {
      stack.push_back({it.node, it.i, static_cast<SliceId>(cut)});
      stack.push_back({it.node, static_cast<SliceId>(cut + 1), it.j});
    }
  }
}

AggregationResult SpatiotemporalAggregator::run(double p) {
  check_p(p);
  check_budget(/*lanes=*/1);
  if (options_.kernel == DpKernel::kReference) return run_reference(p);
  ensure_measure_cache();
  return run_cached(p);
}

std::vector<AggregationResult> SpatiotemporalAggregator::run_many(
    std::span<const double> ps) {
  for (const double p : ps) check_p(p);
  std::vector<AggregationResult> results;
  results.reserve(ps.size());
  if (options_.kernel == DpKernel::kReference) {
    check_budget(/*lanes=*/1);
    for (const double p : ps) results.push_back(run_reference(p));
    return results;
  }
  const std::size_t width = lane_width(ps.size());
  check_budget(width);
  ensure_measure_cache();
  // Waves of `width` lanes; the remainder wave uses its exact (possibly
  // odd) width — every width in [1, kMaxDpLanes] has an instantiation.
  for (std::size_t offset = 0; offset < ps.size(); offset += width) {
    run_wave(ps.subspan(offset, std::min(width, ps.size() - offset)),
             results);
  }
  return results;
}

AggregationResult SpatiotemporalAggregator::evaluate(
    const Partition& partition, double p) const {
  const Hierarchy& h = model_->hierarchy();
  AggregationResult result;
  result.p = p;
  result.partition = partition;
  result.partition.canonicalize(h);

  double gain_scale = 1.0;
  double loss_scale = 1.0;
  const AreaMeasures root = area_measures(h.root(), 0, tri_.slices() - 1);
  if (options_.normalize) {
    if (root.gain > 0.0) gain_scale = 1.0 / root.gain;
    if (root.loss > 0.0) loss_scale = 1.0 / root.loss;
  }

  for (const auto& a : partition.areas()) {
    result.measures += area_measures(a.node, a.time.i, a.time.j);
  }
  result.optimal_pic = p * result.measures.gain * gain_scale -
                       (1.0 - p) * result.measures.loss * loss_scale;
  fill_quality(result);
  return result;
}

}  // namespace stagg
