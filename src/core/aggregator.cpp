#include "core/aggregator.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace stagg {

SpatiotemporalAggregator::SpatiotemporalAggregator(
    const MicroscopicModel& model, AggregationOptions options)
    : model_(&model),
      options_(options),
      cube_(model),
      tri_(model.slice_count()) {
  const Hierarchy& h = model.hierarchy();
  levels_.resize(static_cast<std::size_t>(h.max_depth()) + 1);
  for (NodeId id = 0; id < static_cast<NodeId>(h.node_count()); ++id) {
    levels_[static_cast<std::size_t>(h.node(id).depth)].push_back(id);
  }
  pic_.resize(h.node_count());
  cut_.resize(h.node_count());
  cnt_.resize(h.node_count());
}

std::size_t SpatiotemporalAggregator::estimate_bytes(std::size_t node_count,
                                                     std::int32_t slices) {
  const TriangularIndex tri(slices);
  // pIC (double) + cut (int32) + count tie-breaker (int32) per cell.
  return node_count * tri.size() *
         (sizeof(double) + 2 * sizeof(std::int32_t));
}

void SpatiotemporalAggregator::compute_node(NodeId node, double p,
                                            double gain_scale,
                                            double loss_scale) {
  const Hierarchy& h = model_->hierarchy();
  const auto& children = h.node(node).children;
  const SliceId n_t = tri_.slices();

  auto& pic_cells = pic_[static_cast<std::size_t>(node)];
  auto& cut_cells = cut_[static_cast<std::size_t>(node)];
  auto& cnt_cells = cnt_[static_cast<std::size_t>(node)];
  pic_cells.resize(tri_.size());
  cut_cells.resize(tri_.size());
  cnt_cells.resize(tri_.size());

  // Cache children cell arrays (computed at the deeper level already).
  std::vector<const double*> child_pic;
  std::vector<const std::int32_t*> child_cnt;
  child_pic.reserve(children.size());
  child_cnt.reserve(children.size());
  for (NodeId c : children) {
    child_pic.push_back(pic_[static_cast<std::size_t>(c)].data());
    child_cnt.push_back(cnt_[static_cast<std::size_t>(c)].data());
  }

  for (SliceId i = n_t - 1; i >= 0; --i) {
    const std::size_t row = tri_.row_offset(i);
    for (SliceId j = i; j < n_t; ++j) {
      const std::size_t cell = row + static_cast<std::size_t>(j - i);

      // "No cut": the area itself is one aggregate (Eq. 4).
      const AreaMeasures m = cube_.measures(node, i, j);
      double best = p * m.gain * gain_scale - (1.0 - p) * m.loss * loss_scale;
      std::int32_t best_cut = j;
      std::int32_t best_count = 1;

      // Ties (within accumulated rounding noise) are broken toward the
      // *smallest area count*, so among equally-optimal partitions the
      // coarsest representation is returned — a homogeneous phase stays one
      // aggregate instead of fragmenting into equal-pIC slices.
      const auto challenge = [&](double v, std::int32_t count,
                                 std::int32_t cut) {
        const double eps =
            1e-12 + 1e-12 * std::max(std::abs(best), std::abs(v));
        if (v > best + eps || (v >= best - eps && count < best_count)) {
          best = std::max(best, v);
          best_cut = cut;
          best_count = count;
        }
      };

      // Spatial cut: partition into the children over the same interval.
      if (!child_pic.empty()) {
        double sum = 0.0;
        std::int32_t count = 0;
        for (std::size_t k = 0; k < child_pic.size(); ++k) {
          sum += child_pic[k][cell];
          count += child_cnt[k][cell];
        }
        challenge(sum, count, -1);
      }

      // Temporal cuts: split [i,j] into [i,c] + [c+1,j]; both sub-cells are
      // already optimal (j ascending covers [i,c], i descending [c+1,j]).
      const double* my = pic_cells.data();
      const std::int32_t* my_cnt = cnt_cells.data();
      for (SliceId c = i; c < j; ++c) {
        const std::size_t left = row + static_cast<std::size_t>(c - i);
        const std::size_t right = tri_(c + 1, j);
        challenge(my[left] + my[right], my_cnt[left] + my_cnt[right], c);
      }

      pic_cells[cell] = best;
      cut_cells[cell] = best_cut;
      cnt_cells[cell] = best_count;
    }
  }
}

void SpatiotemporalAggregator::extract_partition(Partition& out) const {
  const Hierarchy& h = model_->hierarchy();
  struct Item {
    NodeId node;
    SliceId i, j;
  };
  std::vector<Item> stack;
  stack.push_back({h.root(), 0, tri_.slices() - 1});
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    const std::int32_t cut =
        cut_[static_cast<std::size_t>(it.node)][tri_(it.i, it.j)];
    if (cut == it.j) {
      out.add(it.node, it.i, it.j);
    } else if (cut == -1) {
      for (NodeId c : h.node(it.node).children) {
        stack.push_back({c, it.i, it.j});
      }
    } else {
      stack.push_back({it.node, it.i, static_cast<SliceId>(cut)});
      stack.push_back({it.node, static_cast<SliceId>(cut + 1), it.j});
    }
  }
}

AggregationResult SpatiotemporalAggregator::run(double p) {
  if (p < 0.0 || p > 1.0) {
    throw InvalidArgument("aggregation parameter p must be in [0,1], got " +
                          std::to_string(p));
  }
  const Hierarchy& h = model_->hierarchy();
  const std::size_t need = estimate_bytes(h.node_count(), tri_.slices());
  if (need > options_.memory_budget_bytes) {
    throw BudgetError("DP working set needs " + std::to_string(need) +
                      " bytes > budget " +
                      std::to_string(options_.memory_budget_bytes) +
                      "; reduce |T| or raise the budget");
  }

  double gain_scale = 1.0;
  double loss_scale = 1.0;
  if (options_.normalize) {
    const AreaMeasures root = cube_.root_measures();
    if (root.gain > 0.0) gain_scale = 1.0 / root.gain;
    if (root.loss > 0.0) loss_scale = 1.0 / root.loss;
  }

  // Level-synchronous bottom-up sweep: all nodes of one depth are mutually
  // independent, and their children (depth+1) are complete.
  for (auto level = levels_.rbegin(); level != levels_.rend(); ++level) {
    const auto& nodes = *level;
    if (options_.parallel && nodes.size() > 1) {
      parallel_for(
          nodes.size(),
          [&](std::size_t k) { compute_node(nodes[k], p, gain_scale,
                                            loss_scale); },
          /*grain=*/1);
    } else {
      for (NodeId n : nodes) compute_node(n, p, gain_scale, loss_scale);
    }
    // Grandchildren pIC matrices are no longer read; release them to keep
    // the peak working set near two adjacent levels.
    const std::size_t depth =
        static_cast<std::size_t>(levels_.rend() - level - 1);
    if (depth + 2 <= levels_.size() - 1) {
      for (NodeId n : levels_[depth + 2]) {
        pic_[static_cast<std::size_t>(n)] = {};
        cnt_[static_cast<std::size_t>(n)] = {};
      }
    }
  }

  AggregationResult result;
  result.p = p;
  result.optimal_pic = pic_[static_cast<std::size_t>(h.root())]
                           [tri_(0, tri_.slices() - 1)];
  extract_partition(result.partition);
  result.partition.canonicalize(h);

  for (const auto& a : result.partition.areas()) {
    result.measures += cube_.measures(a.node, a.time.i, a.time.j);
  }
  const AreaMeasures root = cube_.root_measures();
  result.quality.area_count = result.partition.size();
  result.quality.microscopic_count =
      h.leaf_count() * static_cast<std::size_t>(tri_.slices());
  result.quality.gain = result.measures.gain;
  result.quality.loss = result.measures.loss;
  result.quality.max_gain = root.gain;
  result.quality.max_loss = root.loss;

  // Release the remaining DP buffers; the cube stays for further runs.
  for (auto& v : pic_) v = {};
  for (auto& v : cnt_) v = {};
  return result;
}

AggregationResult SpatiotemporalAggregator::evaluate(
    const Partition& partition, double p) const {
  const Hierarchy& h = model_->hierarchy();
  AggregationResult result;
  result.p = p;
  result.partition = partition;
  result.partition.canonicalize(h);

  double gain_scale = 1.0;
  double loss_scale = 1.0;
  const AreaMeasures root = cube_.root_measures();
  if (options_.normalize) {
    if (root.gain > 0.0) gain_scale = 1.0 / root.gain;
    if (root.loss > 0.0) loss_scale = 1.0 / root.loss;
  }

  for (const auto& a : partition.areas()) {
    result.measures += cube_.measures(a.node, a.time.i, a.time.j);
  }
  result.optimal_pic = p * result.measures.gain * gain_scale -
                       (1.0 - p) * result.measures.loss * loss_scale;
  result.quality.area_count = partition.size();
  result.quality.microscopic_count =
      h.leaf_count() * static_cast<std::size_t>(tri_.slices());
  result.quality.gain = result.measures.gain;
  result.quality.loss = result.measures.loss;
  result.quality.max_gain = root.gain;
  result.quality.max_loss = root.loss;
  return result;
}

}  // namespace stagg
