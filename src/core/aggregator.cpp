#include "core/aggregator.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"

namespace stagg {

SpatiotemporalAggregator::SpatiotemporalAggregator(
    const MicroscopicModel& model, AggregationOptions options)
    : model_(&model),
      options_(options),
      cube_(model),
      tri_(model.slice_count()) {
  const Hierarchy& h = model.hierarchy();
  levels_.resize(static_cast<std::size_t>(h.max_depth()) + 1);
  for (NodeId id = 0; id < static_cast<NodeId>(h.node_count()); ++id) {
    levels_[static_cast<std::size_t>(h.node(id).depth)].push_back(id);
  }
  pic_.resize(h.node_count());
  mirror_.resize(h.node_count());
  cut_.resize(h.node_count());
  cnt_.resize(h.node_count());
}

std::size_t SpatiotemporalAggregator::estimate_bytes(std::size_t node_count,
                                                     std::int32_t slices) {
  const TriangularIndex tri(slices);
  // Per cell: pIC (double) + column-major mirror (double) + cut + count
  // (int32) + the cached p-independent (gain, loss) pair (2 doubles).
  return node_count * tri.size() *
         (2 * sizeof(double) + 2 * sizeof(std::int32_t) +
          sizeof(AreaMeasures));
}

std::size_t SpatiotemporalAggregator::working_set_bytes() const noexcept {
  const std::size_t cells = tri_.size();
  const std::size_t node_count = model_->hierarchy().node_count();
  if (options_.kernel == DpKernel::kReference) {
    // The original formulation: pIC + cut + count for every node.
    return node_count * cells * (sizeof(double) + 2 * sizeof(std::int32_t));
  }
  // pIC + count matrices live for two adjacent levels at a time (the arena
  // recycles grandchildren buffers); the column-major mirror only for the
  // level being computed; cut matrices and the measure cache for all nodes.
  std::size_t peak_per_cell = 0;
  for (std::size_t d = 0; d < levels_.size(); ++d) {
    const std::size_t two =
        levels_[d].size() + (d + 1 < levels_.size() ? levels_[d + 1].size() : 0);
    peak_per_cell = std::max(
        peak_per_cell, two * (sizeof(double) + sizeof(std::int32_t)) +
                           levels_[d].size() * sizeof(double));
  }
  return cells * (node_count * sizeof(std::int32_t) + peak_per_cell) +
         MeasureCache::estimate_bytes(node_count, tri_.slices());
}

void SpatiotemporalAggregator::check_p(double p) const {
  // Negated-range form so NaN (every comparison false) is rejected too.
  if (!(p >= 0.0 && p <= 1.0)) {
    throw InvalidArgument("aggregation parameter p must be in [0,1], got " +
                          std::to_string(p));
  }
}

void SpatiotemporalAggregator::check_budget() const {
  const std::size_t need = working_set_bytes();
  if (need > options_.memory_budget_bytes) {
    throw BudgetError("DP working set needs " + std::to_string(need) +
                      " bytes > budget " +
                      std::to_string(options_.memory_budget_bytes) +
                      "; reduce |T| or raise the budget");
  }
}

void SpatiotemporalAggregator::ensure_measure_cache() {
  if (cache_.built()) return;
  Stopwatch watch;
  cache_.build(cube_, options_.parallel);
  cache_build_seconds_ = watch.seconds();
}

AreaMeasures SpatiotemporalAggregator::area_measures(
    NodeId node, SliceId i, SliceId j) const noexcept {
  return cache_.built() ? cache_.at(node, i, j) : cube_.measures(node, i, j);
}

void SpatiotemporalAggregator::fill_quality(AggregationResult& result) const {
  const Hierarchy& h = model_->hierarchy();
  const AreaMeasures root = area_measures(h.root(), 0, tri_.slices() - 1);
  result.quality.area_count = result.partition.size();
  result.quality.microscopic_count =
      h.leaf_count() * static_cast<std::size_t>(tri_.slices());
  result.quality.gain = result.measures.gain;
  result.quality.loss = result.measures.loss;
  result.quality.max_gain = root.gain;
  result.quality.max_loss = root.loss;
}

// ---------------------------------------------------------------------------
// Buffer arena.
// ---------------------------------------------------------------------------

std::vector<double> SpatiotemporalAggregator::acquire_dbl() {
  if (!dbl_pool_.empty()) {
    std::vector<double> buf = std::move(dbl_pool_.back());
    dbl_pool_.pop_back();
    return buf;
  }
  return std::vector<double>(tri_.size());
}

std::vector<std::int32_t> SpatiotemporalAggregator::acquire_i32() {
  if (!i32_pool_.empty()) {
    std::vector<std::int32_t> buf = std::move(i32_pool_.back());
    i32_pool_.pop_back();
    return buf;
  }
  return std::vector<std::int32_t>(tri_.size());
}

void SpatiotemporalAggregator::release(std::vector<double>&& buf) {
  if (buf.size() == tri_.size()) dbl_pool_.push_back(std::move(buf));
}

void SpatiotemporalAggregator::release(std::vector<std::int32_t>&& buf) {
  if (buf.size() == tri_.size()) i32_pool_.push_back(std::move(buf));
}

// ---------------------------------------------------------------------------
// Cached kernel.
// ---------------------------------------------------------------------------

SpatiotemporalAggregator::NodeScan SpatiotemporalAggregator::make_scan(
    NodeId node, double p, double gain_scale, double loss_scale,
    std::vector<const double*>& child_pic,
    std::vector<const std::int32_t*>& child_cnt) {
  const auto& children = model_->hierarchy().node(node).children;
  child_pic.clear();
  child_cnt.clear();
  child_pic.reserve(children.size());
  child_cnt.reserve(children.size());
  for (NodeId c : children) {
    child_pic.push_back(pic_[static_cast<std::size_t>(c)].data());
    child_cnt.push_back(cnt_[static_cast<std::size_t>(c)].data());
  }
  NodeScan scan;
  scan.meas = cache_.node_data(node);
  scan.pic = pic_[static_cast<std::size_t>(node)].data();
  scan.mirror = mirror_[static_cast<std::size_t>(node)].data();
  scan.cnt = cnt_[static_cast<std::size_t>(node)].data();
  scan.cut = cut_[static_cast<std::size_t>(node)].data();
  scan.child_pic = child_pic.data();
  scan.child_cnt = child_cnt.data();
  scan.n_children = children.size();
  scan.p = p;
  scan.gain_scale = gain_scale;
  scan.loss_scale = loss_scale;
  return scan;
}

void SpatiotemporalAggregator::compute_cell(const NodeScan& scan, SliceId i,
                                            SliceId j) const noexcept {
  const std::size_t row = tri_.row_offset(i);
  const std::size_t cell = row + static_cast<std::size_t>(j - i);

  // "No cut": the area itself is one aggregate (Eq. 4) — a multiply-add
  // over the cached p-independent (gain, loss) pair.
  const AreaMeasures& m = scan.meas[cell];
  double best = scan.p * m.gain * scan.gain_scale -
                (1.0 - scan.p) * m.loss * scan.loss_scale;
  std::int32_t best_cut = j;
  std::int32_t best_count = 1;

  // Ties (within accumulated rounding noise) are broken toward the
  // *smallest area count*, so among equally-optimal partitions the
  // coarsest representation is returned — a homogeneous phase stays one
  // aggregate instead of fragmenting into equal-pIC slices.  The
  // acceptance logic is the reference kernel's challenge, restructured so
  // the common path is a single compare.

  // Spatial cut: partition into the children over the same interval.
  if (scan.n_children != 0) {
    double sum = 0.0;
    std::int32_t count = 0;
    for (std::size_t k = 0; k < scan.n_children; ++k) {
      sum += scan.child_pic[k][cell];
      count += scan.child_cnt[k][cell];
    }
    const double eps = 1e-12 + 1e-12 * std::max(std::abs(best), std::abs(sum));
    if (sum > best + eps || (sum >= best - eps && count < best_count)) {
      best = std::max(best, sum);
      best_cut = -1;
      best_count = count;
    }
  }

  // Temporal cuts: split [i,j] into [i,c] + [c+1,j].  The left operand
  // pIC(i, c) is row-contiguous; the right operand pIC(c+1, j) is read from
  // the column-major mirror, where column j is contiguous — a flat scan
  // whose count lookups only happen on near-accepting candidates.
  const double* left = scan.pic + row;
  const double* right = scan.mirror + col_offset(j) + static_cast<std::size_t>(i) + 1;
  const std::int32_t* left_cnt = scan.cnt + row;
  const std::int32_t len = j - i;
  for (std::int32_t k = 0; k < len; ++k) {
    const double v = left[k] + right[k];
    const double eps = 1e-12 + 1e-12 * std::max(std::abs(best), std::abs(v));
    if (v >= best - eps) {
      const std::int32_t count =
          left_cnt[k] + scan.cnt[tri_(static_cast<SliceId>(i + k + 1), j)];
      if (v > best + eps || count < best_count) {
        best = std::max(best, v);
        best_cut = i + k;
        best_count = count;
      }
    }
  }

  scan.pic[cell] = best;
  scan.mirror[col_offset(j) + static_cast<std::size_t>(i)] = best;
  scan.cut[cell] = best_cut;
  scan.cnt[cell] = best_count;
}

void SpatiotemporalAggregator::compute_node_cached(NodeId node,
                                                   const NodeScan& scan,
                                                   bool wavefront) {
  (void)node;
  const SliceId n_t = tri_.slices();
  if (!wavefront) {
    for (SliceId i = n_t - 1; i >= 0; --i) {
      for (SliceId j = i; j < n_t; ++j) compute_cell(scan, i, j);
    }
    return;
  }
  // Wavefront sweep: all cells of equal interval length j - i are mutually
  // independent (a cell only reads strictly shorter intervals), so each
  // anti-diagonal is one parallel_for.  Used for single-node levels —
  // notably the root — whose DP otherwise runs entirely serially.
  for (SliceId i = 0; i < n_t; ++i) compute_cell(scan, i, i);
  const std::size_t threads = std::max<std::size_t>(1, ThreadPool::shared().size());
  for (SliceId len = 1; len < n_t; ++len) {
    const std::size_t n = static_cast<std::size_t>(n_t - len);
    const std::size_t grain = std::max<std::size_t>(16, n / (4 * threads));
    parallel_for(
        n,
        [&](std::size_t i) {
          compute_cell(scan, static_cast<SliceId>(i),
                       static_cast<SliceId>(i) + len);
        },
        grain);
  }
}

AggregationResult SpatiotemporalAggregator::run_cached(double p) {
  const Hierarchy& h = model_->hierarchy();

  double gain_scale = 1.0;
  double loss_scale = 1.0;
  if (options_.normalize) {
    const AreaMeasures root = area_measures(h.root(), 0, tri_.slices() - 1);
    if (root.gain > 0.0) gain_scale = 1.0 / root.gain;
    if (root.loss > 0.0) loss_scale = 1.0 / root.loss;
  }

  // Level-synchronous bottom-up sweep: all nodes of one depth are mutually
  // independent, and their children (depth+1) are complete.
  for (std::size_t d = levels_.size(); d-- > 0;) {
    const auto& nodes = levels_[d];
    // Grandchildren pIC/count matrices are no longer read (level d+1 is
    // complete); recycle them *before* acquiring this level's buffers so at
    // no point more than two adjacent levels hold live DP matrices — the
    // invariant working_set_bytes() charges for.
    if (d + 2 < levels_.size()) {
      for (NodeId n : levels_[d + 2]) {
        release(std::move(pic_[static_cast<std::size_t>(n)]));
        release(std::move(cnt_[static_cast<std::size_t>(n)]));
      }
    }
    for (NodeId n : nodes) {
      const auto idx = static_cast<std::size_t>(n);
      pic_[idx] = acquire_dbl();
      mirror_[idx] = acquire_dbl();
      cnt_[idx] = acquire_i32();
      if (cut_[idx].size() != tri_.size()) cut_[idx].resize(tri_.size());
    }
    if (options_.parallel && nodes.size() > 1) {
      parallel_for(
          nodes.size(),
          [&](std::size_t k) {
            std::vector<const double*> child_pic;
            std::vector<const std::int32_t*> child_cnt;
            const NodeScan scan =
                make_scan(nodes[k], p, gain_scale, loss_scale, child_pic,
                          child_cnt);
            compute_node_cached(nodes[k], scan, /*wavefront=*/false);
          },
          /*grain=*/1);
    } else {
      // A thin level (typically the single root node) cannot use sibling
      // parallelism; sweep its anti-diagonals in parallel instead.  The
      // wavefront runs on the caller thread, so it never nests pool waits.
      std::vector<const double*> child_pic;
      std::vector<const std::int32_t*> child_cnt;
      for (NodeId n : nodes) {
        const NodeScan scan =
            make_scan(n, p, gain_scale, loss_scale, child_pic, child_cnt);
        compute_node_cached(n, scan, /*wavefront=*/options_.parallel);
      }
    }
    // The mirror is only read by the node's own temporal scans.
    for (NodeId n : nodes) release(std::move(mirror_[static_cast<std::size_t>(n)]));
  }

  AggregationResult result;
  result.p = p;
  result.optimal_pic = pic_[static_cast<std::size_t>(h.root())]
                           [tri_(0, tri_.slices() - 1)];
  extract_partition(result.partition);
  result.partition.canonicalize(h);
  for (const auto& a : result.partition.areas()) {
    result.measures += area_measures(a.node, a.time.i, a.time.j);
  }
  fill_quality(result);

  // Return the last two levels' buffers to the arena; nothing is freed, so
  // the next run (same |T|) allocates nothing.
  for (auto& buf : pic_) release(std::move(buf));
  for (auto& buf : cnt_) release(std::move(buf));
  return result;
}

// ---------------------------------------------------------------------------
// Reference kernel: the original per-cell formulation (measures recomputed
// from the cube inside the innermost loop, buffers freed after the run).
// Kept as the equivalence-test oracle and the bench baseline.
// ---------------------------------------------------------------------------

void SpatiotemporalAggregator::compute_node_reference(NodeId node, double p,
                                                      double gain_scale,
                                                      double loss_scale) {
  const Hierarchy& h = model_->hierarchy();
  const auto& children = h.node(node).children;
  const SliceId n_t = tri_.slices();

  auto& pic_cells = pic_[static_cast<std::size_t>(node)];
  auto& cut_cells = cut_[static_cast<std::size_t>(node)];
  auto& cnt_cells = cnt_[static_cast<std::size_t>(node)];
  pic_cells.resize(tri_.size());
  cut_cells.resize(tri_.size());
  cnt_cells.resize(tri_.size());

  // Cache children cell arrays (computed at the deeper level already).
  std::vector<const double*> child_pic;
  std::vector<const std::int32_t*> child_cnt;
  child_pic.reserve(children.size());
  child_cnt.reserve(children.size());
  for (NodeId c : children) {
    child_pic.push_back(pic_[static_cast<std::size_t>(c)].data());
    child_cnt.push_back(cnt_[static_cast<std::size_t>(c)].data());
  }

  for (SliceId i = n_t - 1; i >= 0; --i) {
    const std::size_t row = tri_.row_offset(i);
    for (SliceId j = i; j < n_t; ++j) {
      const std::size_t cell = row + static_cast<std::size_t>(j - i);

      // "No cut": the area itself is one aggregate (Eq. 4).
      const AreaMeasures m = cube_.measures(node, i, j);
      double best = p * m.gain * gain_scale - (1.0 - p) * m.loss * loss_scale;
      std::int32_t best_cut = j;
      std::int32_t best_count = 1;

      const auto challenge = [&](double v, std::int32_t count,
                                 std::int32_t cut) {
        const double eps =
            1e-12 + 1e-12 * std::max(std::abs(best), std::abs(v));
        if (v > best + eps || (v >= best - eps && count < best_count)) {
          best = std::max(best, v);
          best_cut = cut;
          best_count = count;
        }
      };

      // Spatial cut: partition into the children over the same interval.
      if (!child_pic.empty()) {
        double sum = 0.0;
        std::int32_t count = 0;
        for (std::size_t k = 0; k < child_pic.size(); ++k) {
          sum += child_pic[k][cell];
          count += child_cnt[k][cell];
        }
        challenge(sum, count, -1);
      }

      // Temporal cuts: split [i,j] into [i,c] + [c+1,j]; both sub-cells are
      // already optimal (j ascending covers [i,c], i descending [c+1,j]).
      const double* my = pic_cells.data();
      const std::int32_t* my_cnt = cnt_cells.data();
      for (SliceId c = i; c < j; ++c) {
        const std::size_t left = row + static_cast<std::size_t>(c - i);
        const std::size_t right = tri_(c + 1, j);
        challenge(my[left] + my[right], my_cnt[left] + my_cnt[right], c);
      }

      pic_cells[cell] = best;
      cut_cells[cell] = best_cut;
      cnt_cells[cell] = best_count;
    }
  }
}

AggregationResult SpatiotemporalAggregator::run_reference(double p) {
  const Hierarchy& h = model_->hierarchy();

  double gain_scale = 1.0;
  double loss_scale = 1.0;
  if (options_.normalize) {
    const AreaMeasures root = cube_.root_measures();
    if (root.gain > 0.0) gain_scale = 1.0 / root.gain;
    if (root.loss > 0.0) loss_scale = 1.0 / root.loss;
  }

  for (auto level = levels_.rbegin(); level != levels_.rend(); ++level) {
    const auto& nodes = *level;
    if (options_.parallel && nodes.size() > 1) {
      parallel_for(
          nodes.size(),
          [&](std::size_t k) {
            compute_node_reference(nodes[k], p, gain_scale, loss_scale);
          },
          /*grain=*/1);
    } else {
      for (NodeId n : nodes) {
        compute_node_reference(n, p, gain_scale, loss_scale);
      }
    }
    const std::size_t depth =
        static_cast<std::size_t>(levels_.rend() - level - 1);
    if (depth + 2 <= levels_.size() - 1) {
      for (NodeId n : levels_[depth + 2]) {
        pic_[static_cast<std::size_t>(n)] = {};
        cnt_[static_cast<std::size_t>(n)] = {};
      }
    }
  }

  AggregationResult result;
  result.p = p;
  result.optimal_pic = pic_[static_cast<std::size_t>(h.root())]
                           [tri_(0, tri_.slices() - 1)];
  extract_partition(result.partition);
  result.partition.canonicalize(h);
  for (const auto& a : result.partition.areas()) {
    result.measures += cube_.measures(a.node, a.time.i, a.time.j);
  }
  fill_quality(result);

  // Release the DP buffers (the original behaviour); the cube stays.
  for (auto& v : pic_) v = {};
  for (auto& v : cnt_) v = {};
  return result;
}

// ---------------------------------------------------------------------------
// Public entry points.
// ---------------------------------------------------------------------------

void SpatiotemporalAggregator::extract_partition(Partition& out) const {
  const Hierarchy& h = model_->hierarchy();
  struct Item {
    NodeId node;
    SliceId i, j;
  };
  std::vector<Item> stack;
  stack.push_back({h.root(), 0, tri_.slices() - 1});
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    const std::int32_t cut =
        cut_[static_cast<std::size_t>(it.node)][tri_(it.i, it.j)];
    if (cut == it.j) {
      out.add(it.node, it.i, it.j);
    } else if (cut == -1) {
      for (NodeId c : h.node(it.node).children) {
        stack.push_back({c, it.i, it.j});
      }
    } else {
      stack.push_back({it.node, it.i, static_cast<SliceId>(cut)});
      stack.push_back({it.node, static_cast<SliceId>(cut + 1), it.j});
    }
  }
}

AggregationResult SpatiotemporalAggregator::run(double p) {
  check_p(p);
  check_budget();
  if (options_.kernel == DpKernel::kReference) return run_reference(p);
  ensure_measure_cache();
  return run_cached(p);
}

std::vector<AggregationResult> SpatiotemporalAggregator::run_many(
    std::span<const double> ps) {
  for (const double p : ps) check_p(p);
  check_budget();
  std::vector<AggregationResult> results;
  results.reserve(ps.size());
  if (options_.kernel == DpKernel::kReference) {
    for (const double p : ps) results.push_back(run_reference(p));
  } else {
    ensure_measure_cache();
    for (const double p : ps) results.push_back(run_cached(p));
  }
  return results;
}

AggregationResult SpatiotemporalAggregator::evaluate(
    const Partition& partition, double p) const {
  const Hierarchy& h = model_->hierarchy();
  AggregationResult result;
  result.p = p;
  result.partition = partition;
  result.partition.canonicalize(h);

  double gain_scale = 1.0;
  double loss_scale = 1.0;
  const AreaMeasures root = area_measures(h.root(), 0, tri_.slices() - 1);
  if (options_.normalize) {
    if (root.gain > 0.0) gain_scale = 1.0 / root.gain;
    if (root.loss > 0.0) loss_scale = 1.0 / root.loss;
  }

  for (const auto& a : partition.areas()) {
    result.measures += area_measures(a.node, a.time.i, a.time.j);
  }
  result.optimal_pic = p * result.measures.gain * gain_scale -
                       (1.0 - p) * result.measures.loss * loss_scale;
  fill_quality(result);
  return result;
}

}  // namespace stagg
