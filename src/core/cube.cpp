#include "core/cube.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <string>

#include "common/contract.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "hierarchy/shard_plan.hpp"

namespace stagg {

DataCube::DataCube(const MicroscopicModel& model, const ShardPlan* plan)
    : model_(&model),
      n_t_(model.slice_count()),
      n_x_(model.state_count()) {
  const Hierarchy& h = model.hierarchy();
  // A plan partitions one specific hierarchy; a cube over any other (a
  // scoped session's sub-hierarchy) falls back to the serial merge —
  // silently, because the fall-back is bit-identical by contract.
  if (plan != nullptr && plan->hierarchy() == &h) plan_ = plan;
  data_.assign(h.node_count() * 3 * plane_stride(), 0.0);
  recompute_slices(0);
}

void DataCube::recompute_slices(SliceId first_dirty, bool parallel) {
  const Hierarchy& h = model_->hierarchy();
  first_dirty = std::clamp<SliceId>(first_dirty, 0, n_t_);
  if (first_dirty >= n_t_) return;

  // Leaves first (parallel: disjoint output stripes).  Every slice column
  // is a pure per-slice function of the model — no cross-slice
  // accumulation — so recomputing a suffix of columns is exactly the
  // operation the full build performs on them.
  const auto& leaves = h.leaves();
  const std::size_t row = static_cast<std::size_t>(n_x_);
  const auto fill_leaf = [&](std::size_t li) {
    const LeafId s = static_cast<LeafId>(li);
    const NodeId node = leaves[li];
    double* pd = plane_mut(node, kSumD);
    double* pr = plane_mut(node, kSumRho);
    double* pl = plane_mut(node, kSumRhoLog);
    for (SliceId t = first_dirty; t < n_t_; ++t) {
      const double dt_s = model_->grid().slice_duration_s(t);
      const std::size_t off = static_cast<std::size_t>(t) * row;
      for (StateId x = 0; x < n_x_; ++x) {
        const double d = model_->duration(s, t, x);
        const double rho = d / dt_s;
        const std::size_t k = off + static_cast<std::size_t>(x);
        pd[k] = d;
        pr[k] = rho;
        pl[k] = xlog2x(rho);
      }
    }
  };
  if (parallel) {
    parallel_for(leaves.size(), fill_leaf, /*grain=*/8);
  } else {
    for (std::size_t li = 0; li < leaves.size(); ++li) fill_leaf(li);
  }

  // Internal nodes: children precede parents in post-order, so one pass
  // accumulates per-slice triplets bottom-up.  Children are merged in
  // child order per slice — the same addition order as the full build.
  //
  // With a shard plan the pass is partitioned: each shard folds its owned
  // nodes (a post-order-closed subtree set — an owned node's children are
  // owned by the same shard, so shard tasks touch disjoint node stripes
  // and read only within their shard), then a serial pass folds the spine,
  // whose children are all complete by the barrier.  Node visit operations
  // are identical, so the partial-fold result is bit-identical.
  if (plan_ != nullptr && parallel) {
    parallel_for(
        plan_->shard_count(),
        [&](std::size_t k) {
          accumulate_nodes(plan_->owned_nodes(k), first_dirty);
        },
        /*grain=*/1);
    accumulate_nodes(plan_->spine_nodes(), first_dirty);
  } else {
    accumulate_nodes(h.post_order(), first_dirty);
  }
  STAGG_AUDIT(audit());
}

void DataCube::accumulate_nodes(std::span<const NodeId> nodes,
                                SliceId first_dirty) {
  const Hierarchy& h = model_->hierarchy();
  // Per plane, the dirty region is the contiguous row suffix
  // [first_dirty * n_x, n_t * n_x).  Element k of that region is one
  // (slice, state) accumulation chain: chains are merged child-by-child in
  // child order exactly as before, and distinct k are independent, so the
  // f64x4 blocks below vectorize ACROSS chains without reordering any.
  const std::size_t row = static_cast<std::size_t>(n_x_);
  const std::size_t lo = static_cast<std::size_t>(first_dirty) * row;
  const std::size_t hi = static_cast<std::size_t>(n_t_) * row;
  const std::size_t vec_end = lo + ((hi - lo) / 4) * 4;
  for (NodeId id : nodes) {
    const auto& n = h.node(id);
    if (n.children.empty()) continue;
    for (std::size_t p = 0; p < 3; ++p) {
      double* dst = plane_mut(id, p);
      std::fill(dst + lo, dst + hi, 0.0);
    }
    for (NodeId child : n.children) {
      for (std::size_t p = 0; p < 3; ++p) {
        double* dst = plane_mut(id, p);
        const double* src = plane(child, p);
        std::size_t k = lo;
        for (; k < vec_end; k += 4) {
          (simd::f64x4::load(dst + k) + simd::f64x4::load(src + k))
              .store(dst + k);
        }
        for (; k < hi; ++k) dst[k] += src[k];
      }
    }
  }
}

void DataCube::audit() const {
  const auto fail = [](const std::string& what) {
    throw ContractError("DataCube::audit: " + what);
  };
  const Hierarchy& h = hierarchy();
  if (n_t_ != model_->slice_count() || n_x_ != model_->state_count()) {
    fail("cube shape " + std::to_string(n_x_) + "x" + std::to_string(n_t_) +
         " out of step with the model's " +
         std::to_string(model_->state_count()) + "x" +
         std::to_string(model_->slice_count()));
  }
  const std::size_t node_stride = 3 * plane_stride();
  if (data_.size() != h.node_count() * node_stride) {
    fail("storage holds " + std::to_string(data_.size()) +
         " doubles for " + std::to_string(h.node_count()) + " nodes of " +
         std::to_string(node_stride));
  }
  for (std::size_t k = 0; k < data_.size(); ++k) {
    if (!std::isfinite(data_[k])) {
      fail("non-finite entry at flat index " + std::to_string(k));
    }
  }
  // Leaf-additivity, bit-exact: the build merges children in child order
  // starting from zero, so re-summing in that order must reproduce every
  // internal entry to the last bit (this also cross-checks the vectorized
  // merge in accumulate_nodes against a plain scalar re-sum).
  for (std::size_t ni = 0; ni < h.node_count(); ++ni) {
    const NodeId id = static_cast<NodeId>(ni);
    const auto& n = h.node(id);
    if (n.children.empty()) continue;
    for (std::size_t p = 0; p < 3; ++p) {
      const double* parent = plane(id, p);
      for (std::size_t k = 0; k < plane_stride(); ++k) {
        double acc = 0.0;
        for (NodeId child : n.children) acc += plane(child, p)[k];
        if (parent[k] != acc) {
          fail("node " + std::to_string(id) + " plane " + std::to_string(p) +
               " entry " + std::to_string(k) +
               " is not the child-order sum of its children");
        }
      }
    }
  }
}

void DataCube::reshape_slices(std::int32_t new_count, std::int32_t src_shift) {
  if (new_count < 1) {
    throw InvalidArgument("DataCube::reshape_slices: empty window");
  }
  if (new_count != model_->slice_count()) {
    throw InvalidArgument(
        "DataCube::reshape_slices: model window must be updated first");
  }
  if (new_count == n_t_ && src_shift == 0) return;  // identity
  const Hierarchy& h = model_->hierarchy();
  // One stripe per (node, plane): an n_t x n_x row-major matrix whose
  // slice rows are contiguous, so the column overlap is one memcpy.
  const std::size_t row = static_cast<std::size_t>(n_x_);
  const std::size_t stripes = h.node_count() * 3;
  const std::size_t old_stride = static_cast<std::size_t>(n_t_) * row;
  const std::size_t new_stride = static_cast<std::size_t>(new_count) * row;
  simd::AlignedVec<double> next(stripes * new_stride, 0.0);
  // Column t of the new window held old column t + src_shift: copy the
  // overlap bit-exactly; columns with no old counterpart stay zero until
  // recompute_slices fills them.
  const SliceId copy_begin = std::max<SliceId>(0, -src_shift);
  const SliceId copy_end = std::min<SliceId>(new_count, n_t_ - src_shift);
  if (copy_begin < copy_end) {
    const std::size_t n = static_cast<std::size_t>(copy_end - copy_begin) * row;
    for (std::size_t stripe = 0; stripe < stripes; ++stripe) {
      std::memcpy(
          next.data() + stripe * new_stride +
              static_cast<std::size_t>(copy_begin) * row,
          data_.data() + stripe * old_stride +
              static_cast<std::size_t>(copy_begin + src_shift) * row,
          n * sizeof(double));
    }
  }
  data_ = std::move(next);
  n_t_ = new_count;
}

namespace {

// The per-state gain/loss of one area.  Every path that produces measures
// — state_measures, measures, the measures_column_into bulk fill — must
// perform the exact floating-point operations of this helper in the same
// order: the MeasureCache's bit-identity contract with direct
// recomputation rests on it.
inline AreaMeasures state_area_measures(const StateAreaSums& s, double leaves,
                                        double dur, double cells) noexcept {
  const double rho_agg = aggregated_proportion(s.sum_d, leaves, dur);
  return AreaMeasures{state_gain(s, rho_agg, cells),
                      state_loss(s, rho_agg, cells)};
}

// Fused variant computing log2(rho_agg) ONCE and feeding it to both
// measures.  Bit-identical to state_area_measures by construction:
// state_gain's xlog2x(rho_agg) is literally rho_agg * std::log2(rho_agg)
// for rho_agg > 0 and 0.0 otherwise, and state_loss's safe_log2(rho_agg)
// is the same std::log2(rho_agg) (the rho_agg <= 0 early-out makes its
// guarded branch unreachable) — so `lg` substitutes into both without
// changing a single operation.  The column kernel uses this to halve the
// transcendental cost per (slice, state) cell; MeasureCache::audit and
// tests/test_simd.cpp pin the equivalence against the unfused helper.
inline AreaMeasures state_area_measures_fused(const StateAreaSums& s,
                                              double leaves, double dur,
                                              double cells) noexcept {
  const double rho_agg = aggregated_proportion(s.sum_d, leaves, dur);
  const double floor = measure_noise_floor(cells);
  if (rho_agg <= 0.0) {
    double gain = 0.0 - s.sum_rho_log;
    if (cells > 0.0 && std::abs(gain) < floor) gain = 0.0;
    return AreaMeasures{gain, 0.0};
  }
  const double lg = std::log2(rho_agg);
  double gain = rho_agg * lg - s.sum_rho_log;
  double loss = s.sum_rho_log - s.sum_rho * lg;
  if (cells > 0.0 && std::abs(gain) < floor) gain = 0.0;
  if (cells > 0.0 && std::abs(loss) < floor) loss = 0.0;
  return AreaMeasures{gain, loss};
}

}  // namespace

AreaMeasures DataCube::state_measures(NodeId node, SliceId i, SliceId j,
                                      StateId x) const noexcept {
  const double leaves =
      static_cast<double>(hierarchy().node(node).leaf_count);
  return state_area_measures(sums(node, i, j, x), leaves,
                             interval_duration_s(i, j),
                             leaves * static_cast<double>(j - i + 1));
}

AreaMeasures DataCube::measures(NodeId node, SliceId i,
                                SliceId j) const noexcept {
  const double leaves =
      static_cast<double>(hierarchy().node(node).leaf_count);
  const double dur = interval_duration_s(i, j);
  const double cells = leaves * static_cast<double>(j - i + 1);
  AreaMeasures m;
  for (StateId x = 0; x < n_x_; ++x) {
    const AreaMeasures sm =
        state_area_measures(sums(node, i, j, x), leaves, dur, cells);
    m.gain += sm.gain;
    m.loss += sm.loss;
  }
  return m;
}

void DataCube::measures_column_into(NodeId node, SliceId j,
                                    std::span<AreaMeasures> out) const noexcept {
  assert(out.size() == static_cast<std::size_t>(j) + 1);
  const double leaves =
      static_cast<double>(hierarchy().node(node).leaf_count);
  const std::size_t row = static_cast<std::size_t>(n_x_);
  const double* pd = plane(node, kSumD);
  const double* pr = plane(node, kSumRho);
  const double* pl = plane(node, kSumRhoLog);
  const TimeGrid& grid = model_->grid();
  const TimeNs col_end = grid.slice_end(j);
  // Per-state running sums over the descending slice walk.  Each state's
  // chain keeps the canonical j-down-to-i addition order; the f64x4
  // blocks only batch INDEPENDENT state chains, so every chain is
  // bit-identical to the scalar twin below.  thread_local because the
  // MeasureCache build runs one column task per (node, j) across the pool.
  thread_local simd::AlignedVec<double> sd, sr, sl;
  sd.assign(row, 0.0);
  sr.assign(row, 0.0);
  sl.assign(row, 0.0);
  const std::size_t vec_end = (row / 4) * 4;
  for (SliceId i = j; i >= 0; --i) {
    const std::size_t off = static_cast<std::size_t>(i) * row;
    std::size_t x = 0;
    for (; x < vec_end; x += 4) {
      (simd::f64x4::load(sd.data() + x) + simd::f64x4::load(pd + off + x))
          .store(sd.data() + x);
      (simd::f64x4::load(sr.data() + x) + simd::f64x4::load(pr + off + x))
          .store(sr.data() + x);
      (simd::f64x4::load(sl.data() + x) + simd::f64x4::load(pl + off + x))
          .store(sl.data() + x);
    }
    for (; x < row; ++x) {
      sd[x] += pd[off + x];
      sr[x] += pr[off + x];
      sl[x] += pl[off + x];
    }
    const double dur = to_seconds(col_end - grid.slice_begin(i));
    const double cells = leaves * static_cast<double>(j - i + 1);
    AreaMeasures m;
    for (std::size_t xs = 0; xs < row; ++xs) {
      const AreaMeasures sm = state_area_measures_fused(
          StateAreaSums{sd[xs], sr[xs], sl[xs]}, leaves, dur, cells);
      m.gain += sm.gain;
      m.loss += sm.loss;
    }
    out[static_cast<std::size_t>(i)] = m;
  }
}

void DataCube::measures_column_reference_into(
    NodeId node, SliceId j, std::span<AreaMeasures> out) const noexcept {
  assert(out.size() == static_cast<std::size_t>(j) + 1);
  const double leaves =
      static_cast<double>(hierarchy().node(node).leaf_count);
  const std::size_t row = static_cast<std::size_t>(n_x_);
  const double* pd = plane(node, kSumD);
  const double* pr = plane(node, kSumRho);
  const double* pl = plane(node, kSumRhoLog);
  std::fill(out.begin(), out.end(), AreaMeasures{});
  const TimeGrid& grid = model_->grid();
  const TimeNs col_end = grid.slice_end(j);
  for (StateId x = 0; x < n_x_; ++x) {
    StateAreaSums s;
    for (SliceId i = j; i >= 0; --i) {
      const std::size_t k =
          static_cast<std::size_t>(i) * row + static_cast<std::size_t>(x);
      s.sum_d += pd[k];
      s.sum_rho += pr[k];
      s.sum_rho_log += pl[k];
      const double dur = to_seconds(col_end - grid.slice_begin(i));
      const double cells = leaves * static_cast<double>(j - i + 1);
      const AreaMeasures sm = state_area_measures(s, leaves, dur, cells);
      AreaMeasures& m = out[static_cast<std::size_t>(i)];
      m.gain += sm.gain;
      m.loss += sm.loss;
    }
  }
}

DataCube::Mode DataCube::mode(NodeId node, SliceId i, SliceId j) const noexcept {
  Mode best;
  const double leaf_count =
      static_cast<double>(hierarchy().node(node).leaf_count);
  const double dur = interval_duration_s(i, j);
  const std::size_t row = static_cast<std::size_t>(n_x_);
  const double* pd = plane(node, kSumD);
  for (StateId x = 0; x < n_x_; ++x) {
    double sum_d = 0.0;
    for (SliceId t = j; t >= i; --t) {
      sum_d += pd[static_cast<std::size_t>(t) * row +
                  static_cast<std::size_t>(x)];
    }
    const double rho = stagg::aggregated_proportion(sum_d, leaf_count, dur);
    best.proportion_sum += rho;
    if (rho > best.proportion) {
      best.proportion = rho;
      best.state = x;
    }
  }
  return best;
}

}  // namespace stagg
