#include "core/cube.hpp"

#include <algorithm>
#include <cassert>

#include "common/thread_pool.hpp"

namespace stagg {

DataCube::DataCube(const MicroscopicModel& model)
    : model_(&model),
      n_t_(model.slice_count()),
      n_x_(model.state_count()) {
  const Hierarchy& h = model.hierarchy();
  const std::size_t node_stride =
      static_cast<std::size_t>(n_x_) * (static_cast<std::size_t>(n_t_) + 1) * 3;
  data_.assign(h.node_count() * node_stride, 0.0);

  dur_prefix_.assign(static_cast<std::size_t>(n_t_) + 1, 0.0);
  for (SliceId t = 0; t < n_t_; ++t) {
    dur_prefix_[static_cast<std::size_t>(t) + 1] =
        dur_prefix_[static_cast<std::size_t>(t)] +
        model.grid().slice_duration_s(t);
  }

  // Leaves first (parallel: disjoint output stripes).  Values at slot t+1
  // hold the *per-slice* triplet; prefix accumulation follows.
  const auto& leaves = h.leaves();
  parallel_for(
      leaves.size(),
      [&](std::size_t li) {
        const LeafId s = static_cast<LeafId>(li);
        const NodeId node = leaves[li];
        for (StateId x = 0; x < n_x_; ++x) {
          double* base = node_base_mut(node, x);
          for (SliceId t = 0; t < n_t_; ++t) {
            const double d = model.duration(s, t, x);
            const double rho = d / model.grid().slice_duration_s(t);
            double* slot = base + 3 * (static_cast<std::size_t>(t) + 1);
            slot[0] = d;
            slot[1] = rho;
            slot[2] = xlog2x(rho);
          }
        }
      },
      /*grain=*/8);

  // Internal nodes: children precede parents in post-order, so one pass
  // accumulates per-slice triplets bottom-up.
  for (NodeId id : h.post_order()) {
    const auto& n = h.node(id);
    if (n.children.empty()) continue;
    for (NodeId child : n.children) {
      for (StateId x = 0; x < n_x_; ++x) {
        double* dst = node_base_mut(id, x);
        const double* src = node_base(child, x);
        for (std::size_t k = 3; k < (static_cast<std::size_t>(n_t_) + 1) * 3;
             ++k) {
          dst[k] += src[k];
        }
      }
    }
  }

  // Convert per-slice triplets into prefix sums (slot 0 stays zero).
  parallel_for(
      h.node_count(),
      [&](std::size_t node) {
        for (StateId x = 0; x < n_x_; ++x) {
          double* base = node_base_mut(static_cast<NodeId>(node), x);
          for (SliceId t = 0; t < n_t_; ++t) {
            double* cur = base + 3 * (static_cast<std::size_t>(t) + 1);
            const double* prev = base + 3 * static_cast<std::size_t>(t);
            cur[0] += prev[0];
            cur[1] += prev[1];
            cur[2] += prev[2];
          }
        }
      },
      /*grain=*/16);
}

namespace {

// The per-state gain/loss of one area.  Every path that produces measures
// — state_measures, measures, the measures_into bulk fill — must go
// through this one helper: the MeasureCache's bit-identity contract with
// direct recomputation rests on all of them performing the exact same
// floating-point operations in the same order.
inline AreaMeasures state_area_measures(const StateAreaSums& s, double leaves,
                                        double dur, double cells) noexcept {
  const double rho_agg = aggregated_proportion(s.sum_d, leaves, dur);
  return AreaMeasures{state_gain(s, rho_agg, cells),
                      state_loss(s, rho_agg, cells)};
}

}  // namespace

AreaMeasures DataCube::state_measures(NodeId node, SliceId i, SliceId j,
                                      StateId x) const noexcept {
  const double leaves =
      static_cast<double>(hierarchy().node(node).leaf_count);
  return state_area_measures(sums(node, i, j, x), leaves,
                             interval_duration_s(i, j),
                             leaves * static_cast<double>(j - i + 1));
}

AreaMeasures DataCube::measures(NodeId node, SliceId i,
                                SliceId j) const noexcept {
  const double leaves =
      static_cast<double>(hierarchy().node(node).leaf_count);
  const double dur = interval_duration_s(i, j);
  const double cells = leaves * static_cast<double>(j - i + 1);
  const std::size_t stride = (static_cast<std::size_t>(n_t_) + 1) * 3;
  const double* base = node_base(node, 0);
  AreaMeasures m;
  for (StateId x = 0; x < n_x_; ++x, base += stride) {
    const StateAreaSums s{
        base[3 * (static_cast<std::size_t>(j) + 1) + 0] -
            base[3 * static_cast<std::size_t>(i) + 0],
        base[3 * (static_cast<std::size_t>(j) + 1) + 1] -
            base[3 * static_cast<std::size_t>(i) + 1],
        base[3 * (static_cast<std::size_t>(j) + 1) + 2] -
            base[3 * static_cast<std::size_t>(i) + 2],
    };
    const AreaMeasures sm = state_area_measures(s, leaves, dur, cells);
    m.gain += sm.gain;
    m.loss += sm.loss;
  }
  return m;
}

void DataCube::measures_into(NodeId node, SliceId i,
                             std::span<AreaMeasures> out) const noexcept {
  assert(out.size() == static_cast<std::size_t>(n_t_ - i));
  const double leaves =
      static_cast<double>(hierarchy().node(node).leaf_count);
  const double dur_i = dur_prefix_[static_cast<std::size_t>(i)];
  const std::size_t stride = (static_cast<std::size_t>(n_t_) + 1) * 3;
  const double* base = node_base(node, 0);
  std::fill(out.begin(), out.end(), AreaMeasures{});
  for (StateId x = 0; x < n_x_; ++x, base += stride) {
    const double pref_d = base[3 * static_cast<std::size_t>(i) + 0];
    const double pref_rho = base[3 * static_cast<std::size_t>(i) + 1];
    const double pref_log = base[3 * static_cast<std::size_t>(i) + 2];
    for (SliceId j = i; j < n_t_; ++j) {
      const double* cur = base + 3 * (static_cast<std::size_t>(j) + 1);
      const StateAreaSums s{cur[0] - pref_d, cur[1] - pref_rho,
                            cur[2] - pref_log};
      const double dur = dur_prefix_[static_cast<std::size_t>(j) + 1] - dur_i;
      const double cells = leaves * static_cast<double>(j - i + 1);
      const AreaMeasures sm = state_area_measures(s, leaves, dur, cells);
      AreaMeasures& m = out[static_cast<std::size_t>(j - i)];
      m.gain += sm.gain;
      m.loss += sm.loss;
    }
  }
}

DataCube::Mode DataCube::mode(NodeId node, SliceId i, SliceId j) const noexcept {
  Mode best;
  const double leaf_count =
      static_cast<double>(hierarchy().node(node).leaf_count);
  const double dur = interval_duration_s(i, j);
  const std::size_t stride = (static_cast<std::size_t>(n_t_) + 1) * 3;
  const double* base = node_base(node, 0);
  for (StateId x = 0; x < n_x_; ++x, base += stride) {
    const double sum_d = base[3 * (static_cast<std::size_t>(j) + 1)] -
                         base[3 * static_cast<std::size_t>(i)];
    const double rho = stagg::aggregated_proportion(sum_d, leaf_count, dur);
    best.proportion_sum += rho;
    if (rho > best.proportion) {
      best.proportion = rho;
      best.state = x;
    }
  }
  return best;
}

}  // namespace stagg
