#include "core/cube.hpp"

#include "common/thread_pool.hpp"

namespace stagg {

DataCube::DataCube(const MicroscopicModel& model)
    : model_(&model),
      n_t_(model.slice_count()),
      n_x_(model.state_count()) {
  const Hierarchy& h = model.hierarchy();
  const std::size_t node_stride =
      static_cast<std::size_t>(n_x_) * (static_cast<std::size_t>(n_t_) + 1) * 3;
  data_.assign(h.node_count() * node_stride, 0.0);

  dur_prefix_.assign(static_cast<std::size_t>(n_t_) + 1, 0.0);
  for (SliceId t = 0; t < n_t_; ++t) {
    dur_prefix_[static_cast<std::size_t>(t) + 1] =
        dur_prefix_[static_cast<std::size_t>(t)] +
        model.grid().slice_duration_s(t);
  }

  // Leaves first (parallel: disjoint output stripes).  Values at slot t+1
  // hold the *per-slice* triplet; prefix accumulation follows.
  const auto& leaves = h.leaves();
  parallel_for(
      leaves.size(),
      [&](std::size_t li) {
        const LeafId s = static_cast<LeafId>(li);
        const NodeId node = leaves[li];
        for (StateId x = 0; x < n_x_; ++x) {
          double* base = node_base_mut(node, x);
          for (SliceId t = 0; t < n_t_; ++t) {
            const double d = model.duration(s, t, x);
            const double rho = d / model.grid().slice_duration_s(t);
            double* slot = base + 3 * (static_cast<std::size_t>(t) + 1);
            slot[0] = d;
            slot[1] = rho;
            slot[2] = xlog2x(rho);
          }
        }
      },
      /*grain=*/8);

  // Internal nodes: children precede parents in post-order, so one pass
  // accumulates per-slice triplets bottom-up.
  for (NodeId id : h.post_order()) {
    const auto& n = h.node(id);
    if (n.children.empty()) continue;
    for (NodeId child : n.children) {
      for (StateId x = 0; x < n_x_; ++x) {
        double* dst = node_base_mut(id, x);
        const double* src = node_base(child, x);
        for (std::size_t k = 3; k < (static_cast<std::size_t>(n_t_) + 1) * 3;
             ++k) {
          dst[k] += src[k];
        }
      }
    }
  }

  // Convert per-slice triplets into prefix sums (slot 0 stays zero).
  parallel_for(
      h.node_count(),
      [&](std::size_t node) {
        for (StateId x = 0; x < n_x_; ++x) {
          double* base = node_base_mut(static_cast<NodeId>(node), x);
          for (SliceId t = 0; t < n_t_; ++t) {
            double* cur = base + 3 * (static_cast<std::size_t>(t) + 1);
            const double* prev = base + 3 * static_cast<std::size_t>(t);
            cur[0] += prev[0];
            cur[1] += prev[1];
            cur[2] += prev[2];
          }
        }
      },
      /*grain=*/16);
}

AreaMeasures DataCube::state_measures(NodeId node, SliceId i, SliceId j,
                                      StateId x) const noexcept {
  const auto s = sums(node, i, j, x);
  const double leaves =
      static_cast<double>(hierarchy().node(node).leaf_count);
  const double rho_agg = stagg::aggregated_proportion(
      s.sum_d, leaves, interval_duration_s(i, j));
  const double cells = leaves * static_cast<double>(j - i + 1);
  return AreaMeasures{state_gain(s, rho_agg, cells),
                      state_loss(s, rho_agg, cells)};
}

AreaMeasures DataCube::measures(NodeId node, SliceId i,
                                SliceId j) const noexcept {
  AreaMeasures m;
  for (StateId x = 0; x < n_x_; ++x) {
    m += state_measures(node, i, j, x);
  }
  return m;
}

DataCube::Mode DataCube::mode(NodeId node, SliceId i, SliceId j) const noexcept {
  Mode best;
  const double leaf_count =
      static_cast<double>(hierarchy().node(node).leaf_count);
  const double dur = interval_duration_s(i, j);
  for (StateId x = 0; x < n_x_; ++x) {
    const auto s = sums(node, i, j, x);
    const double rho = stagg::aggregated_proportion(s.sum_d, leaf_count, dur);
    best.proportion_sum += rho;
    if (rho > best.proportion) {
      best.proportion = rho;
      best.state = x;
    }
  }
  return best;
}

}  // namespace stagg
