#include "core/dichotomy.hpp"

#include <algorithm>
#include <map>

namespace stagg {

DichotomyResult find_significant_levels(SpatiotemporalAggregator& aggregator,
                                        const DichotomyOptions& options) {
  DichotomyResult out;

  // Probe cache: p -> (signature, result).
  std::map<double, std::pair<std::uint64_t, AggregationResult>> probes;
  const auto probe = [&](double p) -> std::uint64_t {
    if (const auto it = probes.find(p); it != probes.end()) {
      return it->second.first;
    }
    AggregationResult r = aggregator.run(p);
    const std::uint64_t sig = r.partition.signature();
    probes.emplace(p, std::make_pair(sig, std::move(r)));
    ++out.runs;
    return sig;
  };

  // Recursive bisection (iterative stack to bound depth).
  struct Span {
    double lo, hi;
  };
  std::vector<Span> stack;
  probe(0.0);
  probe(1.0);
  stack.push_back({0.0, 1.0});
  while (!stack.empty() && out.runs < options.max_runs) {
    const Span s = stack.back();
    stack.pop_back();
    if (s.hi - s.lo <= options.epsilon) continue;
    const std::uint64_t sig_lo = probe(s.lo);
    const std::uint64_t sig_hi = probe(s.hi);
    if (sig_lo == sig_hi) continue;  // assume constant on the span
    const double mid = 0.5 * (s.lo + s.hi);
    probe(mid);
    stack.push_back({s.lo, mid});
    stack.push_back({mid, s.hi});
  }

  // Collapse consecutive probes with equal signatures into plateaus.
  AggregationLevel current;
  std::uint64_t current_sig = 0;
  bool has_current = false;
  for (auto& [p, entry] : probes) {
    auto& [sig, result] = entry;
    if (!has_current || sig != current_sig) {
      if (has_current) out.levels.push_back(std::move(current));
      current = AggregationLevel{p, p, std::move(result)};
      current_sig = sig;
      has_current = true;
    } else {
      current.p_max = p;
    }
  }
  if (has_current) out.levels.push_back(std::move(current));
  return out;
}

}  // namespace stagg
