#include "core/dichotomy.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

namespace stagg {

DichotomyResult find_significant_levels(SpatiotemporalAggregator& aggregator,
                                        const DichotomyOptions& options) {
  DichotomyResult out;

  // Probe cache: p -> (signature, result).
  std::map<double, std::pair<std::uint64_t, AggregationResult>> probes;

  // Runs one bisection wave as a single batch: the aggregator amortizes
  // its measure-cache build and DP buffer arena across all probes of the
  // search, and evaluates the wave in lanes of up to
  // AggregationOptions::max_lanes parameters per DP sweep
  // (SpatiotemporalAggregator::run_many).
  const auto probe_batch = [&](std::vector<double> ps) {
    std::erase_if(ps, [&](double p) { return probes.contains(p); });
    std::sort(ps.begin(), ps.end());
    ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
    // Truncate to the remaining run budget; `room` saturates at 0 so a
    // batch submitted at (or past) the cap cannot underflow the resize.
    const std::size_t room =
        options.max_runs > out.runs ? options.max_runs - out.runs : 0;
    if (ps.size() > room) ps.resize(room);
    if (ps.empty()) return;
    std::vector<AggregationResult> results = aggregator.run_many(ps);
    for (std::size_t k = 0; k < ps.size(); ++k) {
      const std::uint64_t sig = results[k].partition.signature();
      probes.emplace(ps[k], std::make_pair(sig, std::move(results[k])));
    }
    out.runs += ps.size();
  };
  const auto signature_at = [&](double p) { return probes.at(p).first; };

  // Breadth-first bisection: every wave probes all pending midpoints in one
  // batch.  The probe set matches the depth-first original — a span is
  // split iff its endpoints disagree and its gap exceeds epsilon.
  struct Span {
    double lo, hi;
  };
  probe_batch({0.0, 1.0});
  std::vector<Span> spans{{0.0, 1.0}};
  while (!spans.empty() && out.runs < options.max_runs) {
    std::vector<double> mids;
    std::vector<Span> splitting;
    for (const Span& s : spans) {
      if (s.hi - s.lo <= options.epsilon) continue;
      // A tight max_runs (< 2) can leave a span endpoint unprobed — the
      // initial {0, 1} batch itself gets truncated.  Such spans cannot be
      // compared; drop them and return the partial result instead of
      // hitting probes.at() below.
      if (!probes.contains(s.lo) || !probes.contains(s.hi)) continue;
      if (signature_at(s.lo) == signature_at(s.hi)) continue;
      mids.push_back(0.5 * (s.lo + s.hi));
      splitting.push_back(s);
    }
    if (mids.empty()) break;
    probe_batch(std::move(mids));
    spans.clear();
    for (const Span& s : splitting) {
      const double mid = 0.5 * (s.lo + s.hi);
      // Midpoints past the max_runs cap were not probed; drop their spans.
      if (!probes.contains(mid)) continue;
      spans.push_back({s.lo, mid});
      spans.push_back({mid, s.hi});
    }
  }

  // Collapse consecutive probes with equal signatures into plateaus.
  AggregationLevel current;
  std::uint64_t current_sig = 0;
  bool has_current = false;
  for (auto& [p, entry] : probes) {
    auto& [sig, result] = entry;
    if (!has_current || sig != current_sig) {
      if (has_current) out.levels.push_back(std::move(current));
      current = AggregationLevel{p, p, std::move(result)};
      current_sig = sig;
      has_current = true;
    } else {
      current.p_max = p;
    }
  }
  if (has_current) out.levels.push_back(std::move(current));
  return out;
}

}  // namespace stagg
