#include "core/spatial.hpp"

#include "common/error.hpp"

namespace stagg {

HierarchyAggregator::HierarchyAggregator(const Hierarchy* hierarchy,
                                         std::vector<double> leaf_values,
                                         std::int32_t state_count)
    : hier_(hierarchy), n_x_(state_count) {
  if (hier_ == nullptr || hier_->empty()) {
    throw InvalidArgument("HierarchyAggregator: empty hierarchy");
  }
  if (leaf_values.size() != hier_->leaf_count() * static_cast<std::size_t>(n_x_)) {
    throw InvalidArgument("HierarchyAggregator: leaf values size mismatch");
  }
  sum_w_.assign(hier_->node_count() * static_cast<std::size_t>(n_x_), 0.0);
  sum_wlog_.assign(hier_->node_count() * static_cast<std::size_t>(n_x_), 0.0);
  // Leaves, then bottom-up accumulation in post-order.
  for (std::size_t s = 0; s < hier_->leaf_count(); ++s) {
    const NodeId leaf = hier_->leaves()[s];
    for (StateId x = 0; x < n_x_; ++x) {
      const double w = leaf_values[s * static_cast<std::size_t>(n_x_) +
                                   static_cast<std::size_t>(x)];
      sum_w_[nidx(leaf, x)] = w;
      sum_wlog_[nidx(leaf, x)] = xlog2x(w);
    }
  }
  for (NodeId id : hier_->post_order()) {
    const auto& n = hier_->node(id);
    for (NodeId c : n.children) {
      for (StateId x = 0; x < n_x_; ++x) {
        sum_w_[nidx(id, x)] += sum_w_[nidx(c, x)];
        sum_wlog_[nidx(id, x)] += sum_wlog_[nidx(c, x)];
      }
    }
  }
}

HierarchyAggregator HierarchyAggregator::temporally_aggregated(
    const DataCube& cube) {
  const Hierarchy& h = cube.hierarchy();
  const std::int32_t n_x = cube.state_count();
  const SliceId last = cube.slice_count() - 1;
  std::vector<double> values(h.leaf_count() * static_cast<std::size_t>(n_x));
  for (std::size_t s = 0; s < h.leaf_count(); ++s) {
    const NodeId leaf = h.leaves()[s];
    for (StateId x = 0; x < n_x; ++x) {
      values[s * static_cast<std::size_t>(n_x) + static_cast<std::size_t>(x)] =
          cube.aggregated_proportion(leaf, 0, last, x);
    }
  }
  return HierarchyAggregator(&h, std::move(values), n_x);
}

AreaMeasures HierarchyAggregator::node_measures(NodeId node) const {
  AreaMeasures m;
  const double leaves = hier_->node(node).leaf_count;
  for (StateId x = 0; x < n_x_; ++x) {
    const StateAreaSums s{sum_w_[nidx(node, x)], sum_w_[nidx(node, x)],
                          sum_wlog_[nidx(node, x)]};
    const double w_agg = s.sum_d / leaves;
    m.gain += state_gain(s, w_agg, leaves);
    m.loss += state_loss(s, w_agg, leaves);
  }
  return m;
}

HierarchyAggregator::Result HierarchyAggregator::run(double p) const {
  if (p < 0.0 || p > 1.0) {
    throw InvalidArgument("HierarchyAggregator: p must be in [0,1]");
  }
  const std::size_t n_nodes = hier_->node_count();
  std::vector<double> opt(n_nodes, 0.0);
  std::vector<std::uint8_t> cut(n_nodes, 0);  // 1 = descend into children

  for (NodeId id : hier_->post_order()) {
    const auto& n = hier_->node(id);
    const AreaMeasures m = node_measures(id);
    double best = pic(p, m.gain, m.loss);
    std::uint8_t c = 0;
    if (!n.children.empty()) {
      double sum = 0.0;
      for (NodeId child : n.children) {
        sum += opt[static_cast<std::size_t>(child)];
      }
      // Strict with a noise margin: the aggregate wins ties so exactly
      // homogeneous subtrees stay merged.
      if (sum > best + 1e-12 + 1e-12 * std::max(std::abs(best),
                                                std::abs(sum))) {
        best = sum;
        c = 1;
      }
    }
    opt[static_cast<std::size_t>(id)] = best;
    cut[static_cast<std::size_t>(id)] = c;
  }

  Result result;
  result.p = p;
  result.optimal_pic = opt[static_cast<std::size_t>(hier_->root())];
  std::vector<NodeId> stack = {hier_->root()};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (cut[static_cast<std::size_t>(id)] == 1) {
      for (NodeId c : hier_->node(id).children) stack.push_back(c);
    } else {
      result.parts.push_back(id);
      result.measures += node_measures(id);
    }
  }
  return result;
}

}  // namespace stagg
