// IngestPipeline: the staged parse -> seal -> advance ingest pipeline over
// one SessionManager — live trace bytes stream in on the caller's thread
// and analysis results stream out of the advance worker, with every stage
// decoupled by bounded queues so a slow stage throttles (never drops) the
// stages upstream of it.
//
//   submit_text / submit_records            (caller thread)
//        |            ... P shard queues (SPSC, bounded) ...
//        v
//   parse workers  x P   — decode text shards / wrap record batches,
//        |                 resolve names against the frozen store tables
//        |            ... batch queue (MPSC, bounded) ...
//        v
//   seal worker    x 1   — the SOLE TraceStore write side: buffers batches
//        |                 and, at each watermark barrier, appends + seals
//        |                 them (SessionManager::ingest + seal_staged)
//        |            ... watermark queue (SPSC, bounded) ...
//        v
//   advance worker x 1   — SessionManager::advance_to_watermark(wm): the
//                          sessions advance only over sealed chunks
//
// Watermark barriers: advance_watermark(frontier) broadcasts a barrier
// token through every shard queue; each parse worker forwards a shard mark
// once it has parsed everything submitted before the barrier, and the seal
// worker seals + publishes the watermark only after all P marks arrived —
// so a published watermark really does cover every event submitted before
// it, regardless of cross-shard interleaving.  Chunks sort intervals by
// (begin, end, state) at seal, so the nondeterministic cross-shard append
// order leaves results bit-identical to the synchronous
// SessionManager::ingest_round path.
//
// Backpressure chain: a throttled advance worker fills the watermark
// queue, which blocks the seal worker, which fills the batch queue, which
// blocks the parse workers, which fill the shard queues, which block
// submit_*() — queue depths stay bounded by the configured capacities and
// nothing is dropped or reordered within a resource.
//
// Concurrency contract: the seal and advance workers interleave their
// SessionManager calls under one stage mutex (the manager's stage
// functions require external serialization); parse workers touch only
// frozen name tables and pipeline-owned state, so they run lock-free.
// While a pipeline is attached, the manager has ONE write side — the seal
// worker; callers must not invoke append()/slide_all()/... concurrently.
//
// A worker that throws (e.g. an unknown resource name) fails the whole
// pipeline: every queue closes so nothing blocks forever, and the first
// exception rethrows from the next submit_*/advance_watermark/
// wait_until_advanced/close call.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/bounded_queue.hpp"
#include "core/session_manager.hpp"
#include "trace/stream_decode.hpp"

namespace stagg {

struct IngestPipelineOptions {
  /// Parse workers / text shards per submission (>= 1).
  std::size_t parse_workers = 4;
  /// Per-shard input queue capacity (jobs).
  std::size_t shard_queue_capacity = 8;
  /// Parse -> seal queue capacity (batches + marks).
  std::size_t batch_queue_capacity = 32;
  /// Seal -> advance queue capacity (watermarks).
  std::size_t watermark_queue_capacity = 4;
  /// Parse workers cut decoded streams into batches of at most this many
  /// records, bounding queue memory and keeping the seal stage streaming.
  std::size_t max_batch_records = 4096;
  /// Text grammar for submit_text (CSV state lines or pj_dump).
  TextTraceFormat text_format = TextTraceFormat::kCsv;
  /// Called by the advance worker after every applied watermark, under
  /// the stage mutex — the callback may inspect the manager's sessions
  /// consistently, but must not call back into the pipeline or manager.
  std::function<void(TimeNs watermark)> on_advance;
};

/// Counters snapshot (monotone except queue depths; taken unlocked, so
/// concurrent snapshots are individually consistent per queue only).
struct IngestPipelineStats {
  std::vector<BoundedQueueStats> shard_queues;
  BoundedQueueStats batch_queue;
  BoundedQueueStats watermark_queue;
  std::uint64_t records_parsed = 0;
  std::uint64_t records_sealed = 0;
  std::uint64_t rounds_advanced = 0;
  TimeNs advanced_watermark = 0;
};

class IngestPipeline {
 public:
  /// Spawns the workers.  `manager` must outlive the pipeline, own a
  /// schema-complete store (every resource and state the stream will
  /// mention already registered — sessions pin |X| anyway), and receive
  /// no concurrent writes outside this pipeline.
  explicit IngestPipeline(SessionManager& manager,
                          IngestPipelineOptions options = {});
  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;
  /// close()s and joins; swallows a pending failure (call close() first
  /// to observe it).
  ~IngestPipeline();

  /// Splits `text` into up to P line-aligned shards and enqueues one per
  /// parse worker.  Blocks while shard queues are full (backpressure).
  void submit_text(std::string_view text);
  /// Enqueues pre-resolved records, split contiguously across the parse
  /// workers (order within a resource is preserved end to end).
  void submit_records(std::vector<EventRecord> records);
  /// Broadcasts a watermark barrier: once every record submitted before
  /// this call is parsed, the seal worker appends + seals them and the
  /// advance worker runs the sessions to `frontier`.  Frontiers must be
  /// non-decreasing per pipeline.
  void advance_watermark(TimeNs frontier);

  /// Last watermark the advance worker has fully applied.
  [[nodiscard]] TimeNs advanced() const;
  /// Blocks until advanced() >= wm (rethrows on pipeline failure).
  void wait_until_advanced(TimeNs wm);

  /// Closes the intake, drains every stage (a trailing partial round is
  /// sealed and advanced to the last requested frontier), joins the
  /// workers and rethrows the first worker failure, if any.  Idempotent;
  /// submissions after close() throw.
  void close();

  /// Rethrows the first worker exception, if any (does not close).
  void rethrow_if_failed();

  [[nodiscard]] IngestPipelineStats stats() const;
  [[nodiscard]] std::size_t parse_workers() const noexcept {
    return options_.parse_workers;
  }

 private:
  struct ShardJob;
  struct BatchMessage;

  void parse_worker(std::size_t shard);
  void seal_worker();
  void advance_worker();
  void decode_text_job(std::size_t shard, const std::string& text,
                       std::uint64_t& sequence);
  void push_batch(std::size_t shard, std::uint64_t& sequence,
                  std::vector<EventRecord>&& records);
  [[nodiscard]] ResourceId resolve_resource(std::string_view name) const;
  [[nodiscard]] StateId resolve_state(std::string_view name) const;
  void fail(std::exception_ptr ex) noexcept;
  void close_all_queues() noexcept;

  SessionManager& manager_;
  IngestPipelineOptions options_;
  /// Frozen name tables snapshot; parse workers read these lock-free.
  std::unordered_map<std::string, ResourceId> resource_ids_;
  std::unordered_map<std::string, StateId> state_ids_;

  std::vector<std::unique_ptr<BoundedQueue<ShardJob>>> shard_queues_;
  std::unique_ptr<BoundedQueue<BatchMessage>> batch_queue_;
  std::unique_ptr<BoundedQueue<TimeNs>> watermark_queue_;

  /// Serializes every SessionManager/TraceStore mutation or session read
  /// between the seal worker and the advance worker.
  std::mutex stage_mutex_;

  mutable std::mutex progress_mutex_;
  std::condition_variable progress_cv_;
  TimeNs advanced_watermark_;
  std::uint64_t rounds_advanced_ = 0;
  bool failed_ = false;
  std::exception_ptr failure_;

  std::atomic<std::uint64_t> records_parsed_{0};
  std::atomic<std::uint64_t> records_sealed_{0};
  /// Parse workers still draining; the last one out closes the batch queue.
  std::atomic<std::size_t> live_parsers_{0};
  /// Last frontier requested via advance_watermark (written by the — one —
  /// producer thread; the seal worker reads it for the trailing flush).
  std::atomic<TimeNs> requested_frontier_;
  bool intake_closed_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace stagg
