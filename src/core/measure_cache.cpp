#include "core/measure_cache.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/triangular_relocate.hpp"
#include "hierarchy/shard_plan.hpp"

namespace stagg {

namespace {

// Scatters one computed triangle column into the row-major packed layout.
// The column buffer holds cells (0..j, j); cell (i, j) lands at
// tri(i, j) = row_offset(i) + (j - i).
inline void scatter_column(AreaMeasures* node_cells, const TriangularIndex& tri,
                           SliceId j, std::span<const AreaMeasures> col) {
  for (SliceId i = 0; i <= j; ++i) {
    node_cells[tri(i, j)] = col[static_cast<std::size_t>(i)];
  }
}

}  // namespace

void MeasureCache::fill_columns(const DataCube& cube, SliceId first_dirty,
                                bool parallel, const ShardPlan* plan) {
  const std::size_t node_count = cube.hierarchy().node_count();
  const auto n_t = cube.slice_count();
  const auto dirty_cols = static_cast<std::size_t>(n_t - first_dirty);
  if (plan != nullptr && plan->hierarchy() != &cube.hierarchy()) {
    plan = nullptr;  // scoped-session cube; the flat schedule is identical
  }
  // Per-shard schedule: tasks walk a node order of shard 0's owned nodes,
  // then shard 1's, ..., then the spine, with one whole node per grain —
  // every worker stays inside one shard's cube stripes and seal-adjacent
  // cache lines.  The flat schedule keeps the historical (node-id, grain 4)
  // order.  Either way each (node, column) writes a disjoint cell set, so
  // scheduling never changes a value.
  std::vector<NodeId> order;
  if (plan != nullptr) {
    order.reserve(node_count);
    for (std::size_t k = 0; k < plan->shard_count(); ++k) {
      const auto owned = plan->owned_nodes(k);
      order.insert(order.end(), owned.begin(), owned.end());
    }
    const auto spine = plan->spine_nodes();
    order.insert(order.end(), spine.begin(), spine.end());
  }
  // One task per (node, dirty column j): columns write disjoint cell sets
  // and each is one descending accumulation over the cube's per-slice
  // data, so the fill parallelizes without synchronization and recomputing
  // a column is bit-identical to producing it in a full build.
  const std::size_t tasks = node_count * dirty_cols;
  const auto fill_col = [&](std::size_t task) {
    const std::size_t slot = task / dirty_cols;
    const auto node =
        plan != nullptr ? order[slot] : static_cast<NodeId>(slot);
    const auto j =
        static_cast<SliceId>(first_dirty + static_cast<SliceId>(task % dirty_cols));
    thread_local std::vector<AreaMeasures> col;
    col.resize(static_cast<std::size_t>(j) + 1);
    cube.measures_column_into(node, j, col);
    scatter_column(data_.data() + static_cast<std::size_t>(node) * tri_.size(),
                   tri_, j, col);
  };
  if (parallel && tasks > 1) {
    const std::size_t grain = plan != nullptr ? std::max<std::size_t>(
                                                    dirty_cols, 1)
                                              : 4;
    parallel_for(tasks, fill_col, grain);
  } else {
    for (std::size_t task = 0; task < tasks; ++task) fill_col(task);
  }
}

void MeasureCache::build(const DataCube& cube, bool parallel,
                         const ShardPlan* plan) {
  const std::size_t node_count = cube.hierarchy().node_count();
  tri_ = TriangularIndex(cube.slice_count());
  data_.resize(node_count * tri_.size());
  fill_columns(cube, 0, parallel, plan);
  STAGG_AUDIT(audit(cube));
}

void MeasureCache::reshape(std::int32_t new_slices, std::int32_t src_shift) {
  if (!built()) return;
  if (new_slices < 1 || src_shift < 0) {
    throw InvalidArgument("MeasureCache::reshape: invalid window delta");
  }
  // New cell (i, j) is old cell (i + k, j + k): with the translation-
  // invariant measure convention the values are bit-identical, so the
  // whole cache relocates in place (see triangular_relocate.hpp).  Cells
  // without an old counterpart hold unspecified values — the caller must
  // update() with first_dirty covering exactly those cells.
  const TriangularIndex new_tri(new_slices);
  reshape_packed_triangles(data_, tri_, new_tri, src_shift, /*lanes=*/1,
                           data_.size() / tri_.size());
  tri_ = new_tri;
}

void MeasureCache::update(const DataCube& cube, SliceId first_dirty,
                          bool parallel, const ShardPlan* plan) {
  if (!built()) return;
  if (cube.slice_count() != tri_.slices()) {
    throw InvalidArgument(
        "MeasureCache::update: reshape to the cube's slice count first");
  }
  first_dirty = std::clamp<SliceId>(first_dirty, 0, tri_.slices());
  if (first_dirty >= tri_.slices()) return;
  fill_columns(cube, first_dirty, parallel, plan);
  STAGG_AUDIT(audit(cube));
}

void MeasureCache::audit(const DataCube& cube) const {
  if (!built()) return;
  const auto fail = [](const std::string& what) {
    throw ContractError("MeasureCache::audit: " + what);
  };
  const std::size_t node_count = cube.hierarchy().node_count();
  if (tri_.slices() != cube.slice_count()) {
    fail("triangle spans " + std::to_string(tri_.slices()) +
         " slices but the cube holds " + std::to_string(cube.slice_count()));
  }
  if (data_.size() != node_count * tri_.size()) {
    fail("storage holds " + std::to_string(data_.size()) + " cells for " +
         std::to_string(node_count) + " nodes of " +
         std::to_string(tri_.size()));
  }
  // Recompute columns through the cube's SCALAR column twin
  // (measures_column_reference_into): the cube's accumulation contract
  // makes it bit-identical to the vectorized bulk fill the build uses, so
  // this doubles as a cross-check of the f64x4 column kernel on every
  // audited build.  Small triangles are rechecked in full; larger ones at
  // the first, middle and last columns per node (reshape relocation bugs
  // corrupt whole columns, not single cells).
  const SliceId slices = tri_.slices();
  std::vector<SliceId> cols;
  if (tri_.size() <= 4096) {
    for (SliceId j = 0; j < slices; ++j) cols.push_back(j);
  } else {
    cols = {0, static_cast<SliceId>(slices / 2),
            static_cast<SliceId>(slices - 1)};
  }
  std::vector<AreaMeasures> scratch;
  for (std::size_t ni = 0; ni < node_count; ++ni) {
    const NodeId node = static_cast<NodeId>(ni);
    for (const SliceId j : cols) {
      scratch.assign(static_cast<std::size_t>(j) + 1, AreaMeasures{});
      cube.measures_column_reference_into(node, j, scratch);
      for (SliceId i = 0; i <= j; ++i) {
        const AreaMeasures& got = at(node, i, j);
        const AreaMeasures& want = scratch[static_cast<std::size_t>(i)];
        if (got.gain != want.gain || got.loss != want.loss) {
          fail("node " + std::to_string(node) + " cell (" +
               std::to_string(i) + ", " + std::to_string(j) +
               ") is not bit-identical to the cube's recomputation");
        }
      }
    }
  }
}

}  // namespace stagg
