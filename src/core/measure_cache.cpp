#include "core/measure_cache.hpp"

#include "common/thread_pool.hpp"

namespace stagg {

void MeasureCache::build(const DataCube& cube, bool parallel) {
  const std::size_t node_count = cube.hierarchy().node_count();
  const auto n_t = cube.slice_count();
  tri_ = TriangularIndex(n_t);
  data_.resize(node_count * tri_.size());

  // One task per (node, row i): rows write disjoint output spans and read
  // one prefix stripe per state, so the build parallelizes without any
  // synchronization.  Row i holds n_t - i cells; tasks are enumerated
  // node-major so a grain block stays within one node's stripes.  The
  // spans written here are exactly what node_row() hands out later — the
  // contiguous per-row streams the lane-batched DP kernel reads.
  const std::size_t rows = node_count * static_cast<std::size_t>(n_t);
  const auto fill_row = [&](std::size_t task) {
    const auto node = static_cast<NodeId>(task / static_cast<std::size_t>(n_t));
    const auto i = static_cast<SliceId>(task % static_cast<std::size_t>(n_t));
    cube.measures_into(node, i,
                       {node_row_mut(node, i),
                        static_cast<std::size_t>(n_t - i)});
  };
  if (parallel && rows > 1) {
    parallel_for(rows, fill_row, /*grain=*/4);
  } else {
    for (std::size_t task = 0; task < rows; ++task) fill_row(task);
  }
}

}  // namespace stagg
