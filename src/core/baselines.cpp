#include "core/baselines.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace stagg {

Partition make_uniform_partition(const Hierarchy& hierarchy,
                                 std::int32_t slices, std::int32_t depth,
                                 std::int32_t k_intervals) {
  if (k_intervals < 1 || k_intervals > slices) {
    throw InvalidArgument("make_uniform_partition: need 1 <= k <= |T|");
  }
  if (depth < 0) {
    throw InvalidArgument("make_uniform_partition: depth >= 0");
  }

  // Spatial parts: an antichain at `depth` — every node whose depth equals
  // `depth`, plus leaves that sit above it.
  std::vector<NodeId> parts;
  std::vector<NodeId> stack = {hierarchy.root()};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    const auto& n = hierarchy.node(id);
    if (n.depth == depth || n.children.empty()) {
      parts.push_back(id);
    } else {
      for (NodeId c : n.children) stack.push_back(c);
    }
  }

  Partition out;
  for (std::int32_t b = 0; b < k_intervals; ++b) {
    const SliceId i = static_cast<SliceId>(
        static_cast<std::int64_t>(slices) * b / k_intervals);
    const SliceId j = static_cast<SliceId>(
        static_cast<std::int64_t>(slices) * (b + 1) / k_intervals - 1);
    if (j < i) continue;  // k > slices is rejected above, but stay safe
    for (NodeId part : parts) out.add(part, i, j);
  }
  out.canonicalize(hierarchy);
  return out;
}

Partition make_microscopic_partition(const Hierarchy& hierarchy,
                                     std::int32_t slices) {
  Partition out;
  for (NodeId leaf : hierarchy.leaves()) {
    for (SliceId t = 0; t < slices; ++t) out.add(leaf, t, t);
  }
  return out;
}

Partition make_full_partition(const Hierarchy& hierarchy,
                              std::int32_t slices) {
  Partition out;
  out.add(hierarchy.root(), 0, slices - 1);
  return out;
}

CartesianResult cartesian_aggregation(const DataCube& cube, double p) {
  CartesianResult result;
  result.spatial = HierarchyAggregator::temporally_aggregated(cube).run(p);
  result.temporal = SequenceAggregator::spatially_aggregated(cube).run(p);
  for (const NodeId node : result.spatial.parts) {
    for (const TimeInterval& iv : result.temporal.intervals) {
      result.partition.add(node, iv.i, iv.j);
    }
  }
  result.partition.canonicalize(cube.hierarchy());
  return result;
}

}  // namespace stagg
