// Baseline partitions the paper compares against (§III-B, §III-D):
//   - uniform grid (Fig. 3.b): a fixed hierarchy depth x k equal intervals;
//   - Cartesian product (Fig. 3.c): the product of the independent optimal
//     spatial partition (of S x {T}) and temporal partition (of {S} x T).
// Both live in H(S) x I(T), so the spatiotemporal optimum always dominates
// them on pIC — the property the paper's §III-D argues and our benches
// quantify.
#pragma once

#include <cstdint>

#include "core/cube.hpp"
#include "core/partition.hpp"
#include "core/spatial.hpp"
#include "core/temporal.hpp"

namespace stagg {

/// Uniform aggregation (Fig. 3.b): every hierarchy node at `depth` (leaves
/// shallower than `depth` stay themselves) crossed with ceil(|T|/k)-sized
/// intervals.  Throws InvalidArgument when k < 1 or depth < 0.
[[nodiscard]] Partition make_uniform_partition(const Hierarchy& hierarchy,
                                               std::int32_t slices,
                                               std::int32_t depth,
                                               std::int32_t k_intervals);

/// Fully microscopic partition: every (leaf, slice) cell.
[[nodiscard]] Partition make_microscopic_partition(const Hierarchy& hierarchy,
                                                   std::int32_t slices);

/// One-area partition: the root over the whole window.
[[nodiscard]] Partition make_full_partition(const Hierarchy& hierarchy,
                                            std::int32_t slices);

/// Result of the spatial x temporal combination.
struct CartesianResult {
  Partition partition;
  HierarchyAggregator::Result spatial;
  SequenceAggregator::Result temporal;
};

/// Fig. 3.c baseline: run both unidimensional algorithms at the same p and
/// take the product partition P(S) x P(T).
[[nodiscard]] CartesianResult cartesian_aggregation(const DataCube& cube,
                                                    double p);

}  // namespace stagg
