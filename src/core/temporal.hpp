// Temporal-only aggregation (paper §III-D; the Ocelotl timeline of refs
// [11], [12]): optimal order-consistent partition of a sequence dataset in
// O(|T|^2) by dynamic programming (Jackson et al. interval partitioning).
//
// Applied to the spatially-aggregated trace {S} x T, it is one half of the
// Cartesian-product baseline of Fig. 3.c; it is also a general time-series
// segmentation usable on its own.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cube.hpp"
#include "core/interval.hpp"
#include "metrics/information.hpp"

namespace stagg {

/// Optimal pIC partition of an ordered sequence of |T| individuals, each
/// carrying |X| non-negative proportions and a duration weight.
class SequenceAggregator {
 public:
  /// `values`: row-major |T| x |X| proportions; `durations`: d(t) in
  /// seconds (weights of the aggregation, Eq. 1).
  SequenceAggregator(std::vector<double> values,
                     std::vector<double> durations, std::int32_t state_count);

  /// Builds the sequence of the spatially-aggregated trace {S} x T from a
  /// cube: v_x(t) = rho_x(S, {t}).
  [[nodiscard]] static SequenceAggregator spatially_aggregated(
      const DataCube& cube);

  struct Result {
    double p = 0.0;
    std::vector<TimeInterval> intervals;  ///< ordered, covering [0, |T|)
    double optimal_pic = 0.0;
    AreaMeasures measures;  ///< raw gain/loss summed over intervals
  };

  /// O(|T|^2) DP; ties prefer the coarser split (fewer intervals).
  [[nodiscard]] Result run(double p) const;

  /// Gain/loss of one interval aggregate, summed over states.
  [[nodiscard]] AreaMeasures interval_measures(SliceId i, SliceId j) const;

  [[nodiscard]] std::int32_t length() const noexcept { return n_t_; }
  [[nodiscard]] std::int32_t state_count() const noexcept { return n_x_; }

 private:
  std::int32_t n_t_ = 0;
  std::int32_t n_x_ = 0;
  // Prefix sums per state over t of: v*d (mass), v, v log2 v, and of d.
  std::vector<double> pre_mass_, pre_v_, pre_vlog_, pre_d_;

  [[nodiscard]] std::size_t pidx(SliceId t, StateId x) const noexcept {
    return static_cast<std::size_t>(t) * static_cast<std::size_t>(n_x_) +
           static_cast<std::size_t>(x);
  }
};

}  // namespace stagg
