#include "core/partition_diff.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "common/error.hpp"

namespace stagg {
namespace {

using AreaKey = std::tuple<NodeId, SliceId, SliceId>;

std::set<AreaKey> area_set(const Partition& p) {
  std::set<AreaKey> out;
  for (const auto& a : p.areas()) {
    out.emplace(a.node, a.time.i, a.time.j);
  }
  return out;
}

/// Paints cell -> area index; -1 for uncovered (invalid input).
std::vector<std::int32_t> paint(const Hierarchy& h, std::int32_t slices,
                                const Partition& p) {
  std::vector<std::int32_t> owner(
      h.leaf_count() * static_cast<std::size_t>(slices), -1);
  const auto& areas = p.areas();
  for (std::size_t k = 0; k < areas.size(); ++k) {
    const auto& n = h.node(areas[k].node);
    for (LeafId s = n.first_leaf; s < n.first_leaf + n.leaf_count; ++s) {
      for (SliceId t = areas[k].time.i; t <= areas[k].time.j; ++t) {
        owner[static_cast<std::size_t>(s) * slices +
              static_cast<std::size_t>(t)] = static_cast<std::int32_t>(k);
      }
    }
  }
  return owner;
}

}  // namespace

PartitionDiff diff_partitions(const Hierarchy& hierarchy, std::int32_t slices,
                              const Partition& a, const Partition& b) {
  if (!a.is_valid(hierarchy, slices) || !b.is_valid(hierarchy, slices)) {
    throw DimensionError("diff_partitions: inputs must be valid partitions");
  }
  PartitionDiff diff;

  const auto sa = area_set(a);
  const auto sb = area_set(b);
  for (const auto& key : sa) {
    if (sb.count(key)) {
      ++diff.common_areas;
    } else {
      ++diff.only_in_a;
    }
  }
  diff.only_in_b = sb.size() - diff.common_areas;
  const std::size_t unions = sa.size() + sb.size() - diff.common_areas;
  diff.area_jaccard =
      unions == 0 ? 1.0
                  : static_cast<double>(diff.common_areas) /
                        static_cast<double>(unions);

  // Cell agreement: a cell agrees when its owning areas are the *same*
  // (node, interval) in both partitions.
  const auto oa = paint(hierarchy, slices, a);
  const auto ob = paint(hierarchy, slices, b);
  const auto& aa = a.areas();
  const auto& bb = b.areas();
  std::size_t agree = 0;
  std::vector<bool> leaf_differs(hierarchy.leaf_count(), false);
  for (std::size_t s = 0; s < hierarchy.leaf_count(); ++s) {
    for (SliceId t = 0; t < slices; ++t) {
      const std::size_t idx = s * static_cast<std::size_t>(slices) +
                              static_cast<std::size_t>(t);
      const auto& area_a = aa[static_cast<std::size_t>(oa[idx])];
      const auto& area_b = bb[static_cast<std::size_t>(ob[idx])];
      if (area_a == area_b) {
        ++agree;
      } else {
        leaf_differs[s] = true;
      }
    }
  }
  diff.cell_agreement = static_cast<double>(agree) /
                        static_cast<double>(oa.size());
  for (std::size_t s = 0; s < leaf_differs.size(); ++s) {
    if (leaf_differs[s]) {
      diff.differing_leaves.push_back(static_cast<LeafId>(s));
    }
  }
  return diff;
}

}  // namespace stagg
