#include "core/temporal.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace stagg {

SequenceAggregator::SequenceAggregator(std::vector<double> values,
                                       std::vector<double> durations,
                                       std::int32_t state_count)
    : n_t_(static_cast<std::int32_t>(durations.size())), n_x_(state_count) {
  if (n_t_ < 1 || n_x_ < 1) {
    throw InvalidArgument("SequenceAggregator: empty sequence");
  }
  if (values.size() != static_cast<std::size_t>(n_t_) * n_x_) {
    throw InvalidArgument("SequenceAggregator: values size mismatch");
  }
  const std::size_t stride = static_cast<std::size_t>(n_x_);
  pre_mass_.assign((static_cast<std::size_t>(n_t_) + 1) * stride, 0.0);
  pre_v_.assign((static_cast<std::size_t>(n_t_) + 1) * stride, 0.0);
  pre_vlog_.assign((static_cast<std::size_t>(n_t_) + 1) * stride, 0.0);
  pre_d_.assign(static_cast<std::size_t>(n_t_) + 1, 0.0);
  for (SliceId t = 0; t < n_t_; ++t) {
    pre_d_[static_cast<std::size_t>(t) + 1] =
        pre_d_[static_cast<std::size_t>(t)] +
        durations[static_cast<std::size_t>(t)];
    for (StateId x = 0; x < n_x_; ++x) {
      const double v = values[pidx(t, x)];
      const std::size_t cur = pidx(t + 1, x);
      const std::size_t prev = pidx(t, x);
      pre_mass_[cur] =
          pre_mass_[prev] + v * durations[static_cast<std::size_t>(t)];
      pre_v_[cur] = pre_v_[prev] + v;
      pre_vlog_[cur] = pre_vlog_[prev] + xlog2x(v);
    }
  }
}

SequenceAggregator SequenceAggregator::spatially_aggregated(
    const DataCube& cube) {
  const std::int32_t n_t = cube.slice_count();
  const std::int32_t n_x = cube.state_count();
  const NodeId root = cube.hierarchy().root();
  std::vector<double> values(static_cast<std::size_t>(n_t) * n_x);
  std::vector<double> durations(static_cast<std::size_t>(n_t));
  for (SliceId t = 0; t < n_t; ++t) {
    durations[static_cast<std::size_t>(t)] = cube.interval_duration_s(t, t);
    for (StateId x = 0; x < n_x; ++x) {
      values[static_cast<std::size_t>(t) * n_x + x] =
          cube.aggregated_proportion(root, t, t, x);
    }
  }
  return SequenceAggregator(std::move(values), std::move(durations), n_x);
}

AreaMeasures SequenceAggregator::interval_measures(SliceId i,
                                                   SliceId j) const {
  AreaMeasures m;
  const double dur = pre_d_[static_cast<std::size_t>(j) + 1] -
                     pre_d_[static_cast<std::size_t>(i)];
  const double cells = static_cast<double>(j - i + 1);
  for (StateId x = 0; x < n_x_; ++x) {
    const StateAreaSums s{
        pre_mass_[pidx(j + 1, x)] - pre_mass_[pidx(i, x)],
        pre_v_[pidx(j + 1, x)] - pre_v_[pidx(i, x)],
        pre_vlog_[pidx(j + 1, x)] - pre_vlog_[pidx(i, x)],
    };
    const double v_agg = dur > 0.0 ? s.sum_d / dur : 0.0;
    m.gain += state_gain(s, v_agg, cells);
    m.loss += state_loss(s, v_agg, cells);
  }
  return m;
}

SequenceAggregator::Result SequenceAggregator::run(double p) const {
  if (p < 0.0 || p > 1.0) {
    throw InvalidArgument("SequenceAggregator: p must be in [0,1]");
  }
  // opt[j+1] = best pIC of a partition of slices [0, j]; back[j+1] = start
  // of the last interval of that best partition.
  std::vector<double> opt(static_cast<std::size_t>(n_t_) + 1, 0.0);
  std::vector<SliceId> back(static_cast<std::size_t>(n_t_) + 1, 0);
  for (SliceId j = 0; j < n_t_; ++j) {
    double best = 0.0;
    SliceId best_i = 0;
    bool first = true;
    for (SliceId i = 0; i <= j; ++i) {
      const AreaMeasures m = interval_measures(i, j);
      const double v =
          opt[static_cast<std::size_t>(i)] + pic(p, m.gain, m.loss);
      // Strict with a noise margin: the smallest i (coarsest last
      // interval) wins ties, so homogeneous stretches stay merged.
      if (first ||
          v > best + 1e-12 + 1e-12 * std::max(std::abs(best), std::abs(v))) {
        best = v;
        best_i = i;
        first = false;
      }
    }
    opt[static_cast<std::size_t>(j) + 1] = best;
    back[static_cast<std::size_t>(j) + 1] = best_i;
  }

  Result result;
  result.p = p;
  result.optimal_pic = opt[static_cast<std::size_t>(n_t_)];
  for (SliceId j = n_t_ - 1; j >= 0;) {
    const SliceId i = back[static_cast<std::size_t>(j) + 1];
    result.intervals.push_back({i, j});
    result.measures += interval_measures(i, j);
    j = i - 1;
  }
  std::reverse(result.intervals.begin(), result.intervals.end());
  return result;
}

}  // namespace stagg
