// SessionManager: N concurrent sliding-window analyses over ONE immutable
// chunked TraceStore — the multi-view server shape of the paper's
// workflow, where an analyst probes the same execution at several windows,
// hierarchy scopes and trade-off parameters at once.
//
// The manager owns the single-writer side of the store: it ingests events
// into the mutable tails, seals them into immutable chunks before every
// advance, and evicts chunks no session can ever read again (fence
// eviction below the minimum window begin across sessions).  Sessions are
// pure readers: each holds its own model + retained DP state but selects
// the shared chunks through zero-copy TraceViews, so the trace bytes are
// paid once for all N sessions instead of once per session.
//
// Advances run the sessions in parallel on the shared thread pool; the
// pool's help-while-waiting parallel_for makes the sessions' inner DP
// parallelism compose with the outer per-session fan-out (no idle-worker
// deadlock, one pool for everything).
//
// Results are bit-identical to N sessions each owning a private copy of
// the trace: a view merges chunk cursors into the exact sorted interval
// sequence a single-owner trace folds, and each session's incremental DP
// is already bit-identical to its from-scratch oracle.
//
// Usage:
//   auto store = read_binary_trace_store("run.stgt");
//   SessionManager mgr(platform, store);
//   mgr.add_session({TimeGrid(0, seconds(60), 60), {0.25, 0.5}});
//   mgr.add_session({TimeGrid(0, seconds(120), 48), {0.5}, &cluster0});
//   mgr.append(resource, state, begin_ns, end_ns);   // live ingest
//   mgr.slide_all(4);                                // everyone advances
//   mgr.session(0).results();
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/sliding_window.hpp"
#include "hierarchy/hierarchy.hpp"
#include "trace/sharded_store.hpp"
#include "trace/stream_decode.hpp"
#include "trace/trace_store.hpp"

namespace stagg {

/// One session to attach to the shared store.
struct SessionSpec {
  /// Analysis window (uniform slice width required); windows and slice
  /// counts may differ freely between sessions.
  TimeGrid window;
  /// Trade-off probes swept on every advance.
  std::vector<double> ps;
  /// Hierarchy scope; nullptr selects the manager's default hierarchy.  A
  /// hierarchy whose leaves name a subset of store resources scopes the
  /// session to those resources.
  const Hierarchy* hierarchy = nullptr;
  /// Per-session knobs.  prune_trace and the memory budget fields are
  /// ignored: the manager evicts centrally below the minimum window begin
  /// across all sessions and owns the shared store's spill policy
  /// (set_memory_budget).
  SlidingWindowOptions options;
};

class SessionManager {
 public:
  /// Shares `store` (sealed, or with pending tails which are sealed here)
  /// between the sessions to come.  `hierarchy` is the default scope; it
  /// must outlive the manager, as must any per-spec hierarchy.
  SessionManager(const Hierarchy& hierarchy,
                 std::shared_ptr<TraceStore> store);

  /// Sharded mode: spans the S shards of `sharded` transparently — ingest
  /// routes per shard, sealing/eviction/compression fan out one task per
  /// shard, the memory budget splits across shards proportionally to
  /// their resident bytes (the global cap still holds exactly after every
  /// round), and sessions attach with global resource ids plus the
  /// store's ShardPlan for their aggregators.  Results are bit-identical
  /// to the same events in a single-store manager at every shard count.
  /// The store's hierarchy must be `hierarchy` (throws otherwise).
  SessionManager(const Hierarchy& hierarchy,
                 std::shared_ptr<ShardedTraceStore> sharded);

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Attaches a session and runs its initial window; returns its index.
  /// Events already staged via append() become visible to it (they are
  /// sealed first), but to *existing* sessions only at their next advance.
  std::size_t add_session(SessionSpec spec);

  [[nodiscard]] std::size_t session_count() const noexcept {
    return sessions_.size();
  }
  [[nodiscard]] SlidingWindowSession& session(std::size_t i) {
    return *sessions_[i];
  }
  [[nodiscard]] const SlidingWindowSession& session(std::size_t i) const {
    return *sessions_[i];
  }

  /// Stages one state occurrence into the shared store; it becomes
  /// visible to every session at its next advance.  The state must
  /// already be registered (sessions pin |X| at creation).
  void append(ResourceId resource, StateId state, TimeNs begin, TimeNs end);
  /// Convenience overload resolving an *existing* state by name.
  void append(ResourceId resource, std::string_view state_name, TimeNs begin,
              TimeNs end);

  /// Seals staged events, slides every session forward by `slices` of its
  /// *own* slice width (parallel over sessions), then evicts dead chunks.
  void slide_all(std::int32_t slices);

  /// Seals staged events and advances every session so its window end
  /// reaches as close to `frontier` as whole slices allow (sessions whose
  /// window already touches the frontier refresh in place) — the live
  /// ingest pattern where one event stream drives differently-paced
  /// windows.  Then evicts dead chunks.  Equivalent to ingest_round().
  void advance_to(TimeNs frontier);

  /// Seals staged events and re-aggregates every current window in place.
  void refresh_all();

  // --- Pipeline stage functions -------------------------------------------
  //
  // The staged ingest pipeline (core/ingest_pipeline.hpp) splits one
  // ingest round into the same three stages the synchronous entry points
  // above compose on the calling thread: bulk ingest (seal worker, the
  // sole TraceStore write side), seal_staged (publishes the sealed
  // watermark), and advance_to_watermark (session fan-out over data
  // guaranteed sealed).  All of these mutate manager or store state and
  // must be externally serialized — the pipeline interleaves its seal and
  // advance workers under one stage mutex; synchronous callers get the
  // serialization for free by staying on one thread.  Only the sessions'
  // inner DP work fans out onto the shared pool.

  /// Appends a batch of id-resolved records to the shared store (the seal
  /// stage's bulk ingest; same visibility semantics as append()).
  void ingest(std::span<const EventRecord> records);

  /// Seals everything staged into immutable chunks and raises the sealed
  /// watermark to `frontier` — the caller's promise that every event
  /// beginning before `frontier` has been ingested.  Monotone (a lower
  /// frontier never lowers the watermark); returns the new watermark.
  TimeNs seal_staged(TimeNs frontier);

  /// The sealed watermark: every event with begin < watermark() is sealed
  /// into immutable chunks and selectable by views.  Starts at the store
  /// end (a freshly attached recorded prefix is complete), raised by
  /// seal_staged().
  [[nodiscard]] TimeNs watermark() const noexcept { return watermark_; }

  /// Advances every session's window end toward `wm` exactly like
  /// advance_to(), but over *already sealed* data only: throws
  /// InvalidArgument when `wm` exceeds watermark(), and seals nothing —
  /// sessions advance only over data guaranteed immutable, which is what
  /// lets a pipeline run this stage while parse workers decode ahead.
  /// Evicts dead chunks and re-enforces the memory budget afterwards.
  void advance_to_watermark(TimeNs wm);

  /// One full synchronous ingest round on the calling thread:
  /// seal_staged(frontier) then advance_to_watermark(frontier).  This is
  /// the pipeline's parse->seal->advance composition collapsed to a
  /// single-threaded shim — advance_to() is an alias, so the historical
  /// entry points and the pipelined path share the exact same stage code
  /// (and stay bit-identical).
  void ingest_round(TimeNs frontier);

  /// The shared single store — or shard 0 of a sharded manager (whose
  /// registry mirrors the facade's; use the global accessors below for
  /// resources).
  [[nodiscard]] const TraceStore& store() const noexcept { return *store_; }
  [[nodiscard]] const std::shared_ptr<TraceStore>& store_ptr()
      const noexcept {
    return store_;
  }
  /// The sharded store when the manager spans one; null for the
  /// single-store ctor.
  [[nodiscard]] const std::shared_ptr<ShardedTraceStore>& sharded_store()
      const noexcept {
    return sharded_;
  }

  // Global name tables across either store mode — what pipelines freeze
  // their resolution maps from (store() would expose only shard 0's local
  // table under a sharded manager).
  [[nodiscard]] std::size_t resource_count() const noexcept {
    return sharded_ != nullptr ? sharded_->resource_count()
                               : store_->resource_count();
  }
  [[nodiscard]] const std::string& resource_path(ResourceId r) const {
    return sharded_ != nullptr ? sharded_->resource_path(r)
                               : store_->resource_path(r);
  }
  [[nodiscard]] const StateRegistry& states() const noexcept {
    return sharded_ != nullptr ? sharded_->states() : store_->states();
  }

  /// Payload bytes of the shared store — counted once, however many
  /// sessions read it.
  [[nodiscard]] std::size_t store_bytes() const noexcept {
    return sharded_ != nullptr ? sharded_->store_bytes()
                               : store_->store_bytes();
  }

  /// Caps the resident sealed-chunk bytes of the shared store.  When the
  /// budget is non-zero, every advance — after central sealing and fence
  /// eviction — spills the coldest chunks (ascending fence max-end: data
  /// at or just above the minimum live-window begin goes first) to the
  /// store's spill file and maps them back until
  /// store().resident_chunk_bytes() fits; the cap is also enforced right
  /// here and whenever a session attaches.  Sessions stream spilled chunks
  /// through the same view cursors, so results stay bit-identical to an
  /// all-resident run.  `spill_path` configures the store's spill file
  /// when it has none yet (required then); 0 disables the budget.
  void set_memory_budget(std::size_t budget_bytes,
                         const std::string& spill_path = {});
  [[nodiscard]] std::size_t memory_budget() const noexcept {
    return memory_budget_;
  }
  /// Resident (anonymous-heap) split of the shared sealed chunk bytes —
  /// the number the budget bounds (summed across shards when sharded);
  /// the rest is file-backed.
  [[nodiscard]] std::size_t resident_chunk_bytes() const noexcept {
    return sharded_ != nullptr ? sharded_->resident_chunk_bytes()
                               : store_->resident_chunk_bytes();
  }
  /// Earliest window begin across sessions (the eviction horizon); the
  /// store window begin when no session is attached.
  [[nodiscard]] TimeNs min_window_begin() const noexcept;

  /// Structural audit of the manager and its shared store: runs
  /// TraceStore::audit() and additionally checks the manager's own
  /// contracts — the eviction horizon never past the minimum live window
  /// begin (central eviction must not outrun the sessions), and unsealed
  /// tails only ever paired with a tracked staged frontier (a staged event
  /// the dirty accounting missed would stay invisible to every session).
  /// Throws ContractError on the first violation.  O(store data) — called
  /// at the seal/advance stage boundaries by STAGG_AUDIT in audit builds,
  /// callable directly by tests in any build.
  void audit() const;

  /// Sets the shared store's seal-time compression policy (kAuto keeps
  /// sealed chunks delta/dictionary-encoded whenever that shrinks them,
  /// and re-encodes what is already sealed; views streaming-decode, so
  /// session results never change).  Composes with set_memory_budget:
  /// the budget counts encoded bytes, so it retains 3-5x more shared
  /// trace before spilling.  Like the budget, this is the manager's knob
  /// — per-session SlidingWindowOptions::compression must stay kNone.
  void set_compression(ChunkCompression policy);
  [[nodiscard]] ChunkCompression compression() const noexcept {
    return sharded_ != nullptr ? sharded_->compression()
                               : store_->compression();
  }

 private:
  /// The advance stage: distributes the sealed dirty frontier, runs
  /// `advance` over the sessions in parallel, evicts dead chunks and
  /// re-enforces the memory budget.  Callers seal first.
  template <class Advance>
  void run_advance_stage(const Advance& advance);
  void enforce_memory_budget();

  const Hierarchy* hierarchy_;
  /// The single shared store — or, in sharded mode, shard 0 of sharded_
  /// (kept so registry reads need no branch; mutations always branch).
  std::shared_ptr<TraceStore> store_;
  /// Sharded mode: non-null when the manager spans a ShardedTraceStore.
  std::shared_ptr<ShardedTraceStore> sharded_;
  std::vector<std::unique_ptr<SlidingWindowSession>> sessions_;
  /// Min begin of events staged since the last seal (ingest dirty
  /// frontier distributed to sessions at the next advance).
  TimeNs staged_min_;
  /// Min begin of events sealed but not yet distributed to the sessions
  /// (accumulates across seal_staged calls between advances).
  TimeNs sealed_dirty_min_;
  /// The sealed watermark (see watermark()).
  TimeNs watermark_ = 0;
  /// Resident-chunk-byte cap enforced after every advance; 0 = unlimited.
  std::size_t memory_budget_ = 0;
};

}  // namespace stagg
