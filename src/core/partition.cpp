#include "core/partition.hpp"

#include <algorithm>
#include <sstream>

namespace stagg {

void Partition::canonicalize(const Hierarchy& h) {
  std::sort(areas_.begin(), areas_.end(), [&h](const Area& a, const Area& b) {
    const auto& na = h.node(a.node);
    const auto& nb = h.node(b.node);
    if (na.first_leaf != nb.first_leaf) return na.first_leaf < nb.first_leaf;
    if (a.time.i != b.time.i) return a.time.i < b.time.i;
    if (na.depth != nb.depth) return na.depth < nb.depth;
    return a.time.j < b.time.j;
  });
}

bool Partition::is_valid(const Hierarchy& h, std::int32_t slices) const {
  const std::size_t n_s = h.leaf_count();
  const std::size_t n_t = static_cast<std::size_t>(slices);
  std::vector<std::uint8_t> painted(n_s * n_t, 0);
  for (const auto& a : areas_) {
    if (a.node < 0 || a.node >= static_cast<NodeId>(h.node_count()))
      return false;
    if (a.time.i < 0 || a.time.j >= slices || a.time.i > a.time.j)
      return false;
    const auto& n = h.node(a.node);
    for (LeafId s = n.first_leaf; s < n.first_leaf + n.leaf_count; ++s) {
      for (SliceId t = a.time.i; t <= a.time.j; ++t) {
        auto& cell =
            painted[static_cast<std::size_t>(s) * n_t + static_cast<std::size_t>(t)];
        if (cell != 0) return false;  // overlap
        cell = 1;
      }
    }
  }
  return std::all_of(painted.begin(), painted.end(),
                     [](std::uint8_t c) { return c == 1; });
}

std::uint64_t Partition::signature() const {
  // FNV-1a over the sorted triples; sorting makes the hash order-invariant.
  std::vector<Area> sorted = areas_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Area& a, const Area& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.time < b.time;
            });
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](std::uint64_t v) {
    for (int k = 0; k < 8; ++k) {
      hash ^= (v >> (8 * k)) & 0xff;
      hash *= 0x100000001b3ULL;
    }
  };
  for (const auto& a : sorted) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.node)));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.time.i)));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.time.j)));
  }
  mix(sorted.size());
  return hash;
}

std::vector<SliceId> Partition::temporal_cut_slices() const {
  std::vector<SliceId> cuts;
  for (const auto& a : areas_) {
    if (a.time.i > 0) cuts.push_back(a.time.i);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return cuts;
}

std::vector<Area> Partition::row_of_leaf(const Hierarchy& h,
                                         LeafId leaf) const {
  std::vector<Area> row;
  for (const auto& a : areas_) {
    const auto& n = h.node(a.node);
    if (leaf >= n.first_leaf && leaf < n.first_leaf + n.leaf_count) {
      row.push_back(a);
    }
  }
  std::sort(row.begin(), row.end(), [](const Area& a, const Area& b) {
    return a.time.i < b.time.i;
  });
  return row;
}

std::string Partition::to_string(const Hierarchy& h) const {
  Partition copy = *this;
  copy.canonicalize(h);
  std::ostringstream os;
  for (const auto& a : copy.areas_) {
    os << h.path(a.node) << " [" << a.time.i << ".." << a.time.j << "]\n";
  }
  return os.str();
}

}  // namespace stagg
