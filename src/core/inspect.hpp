// Aggregate inspection — the interaction the paper's §VI announces as
// future work: "use interaction solutions to retrieve data such as the
// proportion of all the active states".
//
// Given a cube and a partition, every area can be expanded into its full
// state distribution, its measures and its screen semantics (mode, alpha),
// and the area under any (resource, time) probe can be looked up.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/cube.hpp"
#include "core/partition.hpp"

namespace stagg {

/// Everything the analyst can ask of one aggregate.
struct AreaDetail {
  Area area;
  std::string node_path;
  std::int32_t resources = 0;  ///< |S_k|
  double begin_s = 0.0;
  double end_s = 0.0;
  /// Aggregated proportion rho_x per state (Eq. 1) — "the proportion of
  /// all the active states" of §VI.
  std::vector<double> proportions;
  StateId mode = kNoState;
  double mode_share = 0.0;  ///< rho of the mode state
  double alpha = 0.0;       ///< mode / sum of proportions (§IV)
  AreaMeasures measures;    ///< gain and loss of this aggregate
};

/// Expands one area.
[[nodiscard]] AreaDetail inspect_area(const DataCube& cube, const Area& area);

/// Expands a whole partition (same order as partition.areas()).
[[nodiscard]] std::vector<AreaDetail> inspect_partition(
    const DataCube& cube, const Partition& partition);

/// The area of `partition` covering resource `leaf` at time `time_s`
/// (seconds since the window origin); nullopt when the probe is outside
/// the window.
[[nodiscard]] std::optional<AreaDetail> area_at(const DataCube& cube,
                                                const Partition& partition,
                                                LeafId leaf, double time_s);

/// Renders a detail as a short human block (used by the examples' "click"
/// emulation).
[[nodiscard]] std::string format_area_detail(const DataCube& cube,
                                             const AreaDetail& detail);

}  // namespace stagg
