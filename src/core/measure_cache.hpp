// MeasureCache: precomputed per-area (gain, loss) for every DP cell.
//
// The gain and loss of an area (S_k, T_(i,j)) (Eq. 2 + 3) do not depend on
// the trade-off parameter p — only the linear combination pIC (Eq. 4) does.
// The spatiotemporal DP, however, evaluates the "no cut" term of every one
// of the |S|·|T|(|T|+1)/2 cells on *every* run(p), and each evaluation is an
// O(|X|) loop with two log2-heavy information terms per state.  A p-sweep
// (dichotomic level search, Ocelotl-style slider) therefore pays the most
// expensive part of the kernel over and over for identical results.
//
// This cache pays it exactly once: one parallel O(|S|·|T|²·|X|) build fills
// a packed upper-triangular (gain, loss) matrix per hierarchy node — the
// same TriangularIndex layout as the DP matrices — after which every
// run(p), evaluate() and baseline scoring is a pure multiply-add over the
// cached pairs.  Cells are produced column by column by
// DataCube::measures_column_into with the exact per-state accumulation
// order of DataCube::measures, so cached and recomputed values are
// bit-identical (the equivalence suite asserts this).
//
// Incremental maintenance: because cell values are translation-invariant
// (see cube.hpp), a window change decomposes into reshape() — a pure
// relocation mapping new cell (i, j) to old cell (i + k, j + k) — plus
// update(first_dirty), which recomputes only the triangle columns whose
// interval intersects the changed time suffix.  Recomputation is
// column-anchored (one descending accumulation per column), so its cost is
// proportional to the number of dirty cells, not to |T|².
//
// Footprint: 2 doubles per cell = |S|·|T|(|T|+1)/2 · 16 bytes, folded into
// SpatiotemporalAggregator's memory-budget accounting.
//
// Layout contract (what the lane-batched DP kernel relies on): cells are
// node-major packed triangular rows, each cell one contiguous {gain, loss}
// pair of doubles with no padding — so the "no cut" term of a whole wave
// of p-lanes is fed by a single 16-byte load per cell, and a DP row scan
// streams the row's cells front to back.  The static_asserts below pin
// this down; node_row() exposes a row for such streaming reads.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>

#include "common/simd.hpp"
#include "core/cube.hpp"
#include "core/interval.hpp"

namespace stagg {

class ShardPlan;

static_assert(std::is_trivially_copyable_v<AreaMeasures> &&
                  sizeof(AreaMeasures) == 2 * sizeof(double),
              "MeasureCache cells must be bare {gain, loss} double pairs; "
              "the lane-batched DP reads them as one contiguous load");

class MeasureCache {
 public:
  MeasureCache() = default;

  /// Fills the cache from the cube: every (node, j) triangle column is an
  /// independent task, parallelized over the shared pool when `parallel`.
  /// With a shard plan the tasks are scheduled per shard — each shard's
  /// owned nodes fill as one contiguous node-per-task range (spine nodes
  /// last), keeping every worker inside one shard's cube stripes.  Cell
  /// values are untouched by the scheduling, so the per-shard build is
  /// bit-identical to the flat one.  A plan for a different hierarchy is
  /// ignored.
  void build(const DataCube& cube, bool parallel = true,
             const ShardPlan* plan = nullptr);

  /// Relocates the triangle for a changed window: new cell (i, j) takes the
  /// bit-exact value of old cell (i + src_shift, j + src_shift); cells with
  /// no old counterpart (appended columns) are left uninitialized and MUST
  /// be covered by the following update(first_dirty).  No-op when not
  /// built.
  void reshape(std::int32_t new_slices, std::int32_t src_shift);

  /// Recomputes every triangle column j >= first_dirty from the (already
  /// updated) cube — the cells whose interval intersects a changed time
  /// suffix.  Requires reshape() to the cube's slice count first; no-op
  /// when not built.
  void update(const DataCube& cube, SliceId first_dirty, bool parallel = true,
              const ShardPlan* plan = nullptr);

  [[nodiscard]] bool built() const noexcept { return !data_.empty(); }

  /// Structural audit against the cube the cache claims to mirror: throws
  /// ContractError (common/contract.hpp) when the triangle shape disagrees
  /// with the cube's slice count, the storage size disagrees with the
  /// node count, or a cached column is not bit-identical to the cube's
  /// recomputation (full recheck for small triangles; first/middle/last
  /// columns per node otherwise — reshape relocation bugs corrupt whole
  /// columns, not single cells).  No-op when not built.  Called at stage
  /// boundaries by STAGG_AUDIT in audit builds; callable directly by tests
  /// in any build.
  void audit(const DataCube& cube) const;

  /// Releases the storage (built() becomes false).
  void clear() noexcept {
    data_.clear();
    data_.shrink_to_fit();
  }

  [[nodiscard]] const TriangularIndex& tri() const noexcept { return tri_; }

  /// Packed triangular (gain, loss) matrix of one node; cell order is
  /// TriangularIndex (rows of fixed i, j ascending).
  [[nodiscard]] const AreaMeasures* node_data(NodeId node) const noexcept {
    return data_.data() + static_cast<std::size_t>(node) * tri_.size();
  }
  [[nodiscard]] std::span<const AreaMeasures> node_measures(
      NodeId node) const noexcept {
    return {node_data(node), tri_.size()};
  }

  /// Row i of one node's triangle: the |T| - i cells (i, i..|T|-1),
  /// contiguous in memory — the stream a DP row scan (any lane width)
  /// walks front to back.
  [[nodiscard]] std::span<const AreaMeasures> node_row(
      NodeId node, SliceId i) const noexcept {
    return {node_data(node) + tri_.row_offset(i),
            static_cast<std::size_t>(tri_.slices() - i)};
  }

  /// Cached measures of area (node, T_(i,j)); bit-identical to
  /// DataCube::measures(node, i, j).
  [[nodiscard]] const AreaMeasures& at(NodeId node, SliceId i,
                                       SliceId j) const noexcept {
    return node_data(node)[tri_(i, j)];
  }

  /// Bytes the cache for `node_count` nodes over `slices` slices occupies.
  [[nodiscard]] static std::size_t estimate_bytes(std::size_t node_count,
                                                  std::int32_t slices) {
    return node_count * TriangularIndex(slices).size() * sizeof(AreaMeasures);
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return data_.size() * sizeof(AreaMeasures);
  }

 private:
  /// Shared worker of build() and update(): computes and scatters every
  /// (node, column >= first_dirty) via DataCube::measures_column_into.
  void fill_columns(const DataCube& cube, SliceId first_dirty, bool parallel,
                    const ShardPlan* plan);

  TriangularIndex tri_;
  /// Node-major packed triangular rows; 64-byte aligned so the DP's
  /// 16-byte {gain, loss} loads and the f64x4 column writes never split a
  /// cache line.
  simd::AlignedVec<AreaMeasures> data_;
};

}  // namespace stagg
