#include "core/json_export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "core/inspect.hpp"

namespace stagg {
namespace {

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  out += buf;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string export_json(const AggregationResult& result,
                        const DataCube& cube) {
  const Hierarchy& h = cube.hierarchy();
  const TimeGrid& grid = cube.model().grid();

  std::string out;
  out.reserve(result.partition.size() * 200 + 512);
  out += "{\n\"format\": \"stagg-aggregation\",\n\"version\": 1,\n\"p\": ";
  append_double(out, result.p);

  out += ",\n\"dimensions\": {\"resources\": ";
  out += std::to_string(h.leaf_count());
  out += ", \"slices\": ";
  out += std::to_string(cube.slice_count());
  out += ", \"states\": [";
  for (StateId x = 0; x < cube.state_count(); ++x) {
    if (x) out += ", ";
    out += '"' + json_escape(cube.model().states().name(x)) + '"';
  }
  out += "]},\n\"window\": {\"begin_s\": ";
  append_double(out, to_seconds(grid.begin()));
  out += ", \"end_s\": ";
  append_double(out, to_seconds(grid.end()));

  const auto& q = result.quality;
  out += "},\n\"quality\": {\"areas\": ";
  out += std::to_string(q.area_count);
  out += ", \"microscopic\": ";
  out += std::to_string(q.microscopic_count);
  out += ", \"gain\": ";
  append_double(out, q.gain);
  out += ", \"loss\": ";
  append_double(out, q.loss);
  out += ", \"max_gain\": ";
  append_double(out, q.max_gain);
  out += ", \"max_loss\": ";
  append_double(out, q.max_loss);
  out += "},\n\"areas\": [\n";

  bool first = true;
  for (const auto& area : result.partition.areas()) {
    const AreaDetail d = inspect_area(cube, area);
    if (!first) out += ",\n";
    first = false;
    out += "{\"node\": \"" + json_escape(d.node_path) + "\", \"first_leaf\": ";
    out += std::to_string(h.node(area.node).first_leaf);
    out += ", \"resources\": ";
    out += std::to_string(d.resources);
    out += ", \"slice_begin\": ";
    out += std::to_string(area.time.i);
    out += ", \"slice_end\": ";
    out += std::to_string(area.time.j);
    out += ", \"begin_s\": ";
    append_double(out, d.begin_s);
    out += ", \"end_s\": ";
    append_double(out, d.end_s);
    out += ", \"mode\": ";
    if (d.mode == kNoState) {
      out += "null";
    } else {
      out += '"' + json_escape(cube.model().states().name(d.mode)) + '"';
    }
    out += ", \"alpha\": ";
    append_double(out, d.alpha);
    out += ", \"proportions\": [";
    for (std::size_t x = 0; x < d.proportions.size(); ++x) {
      if (x) out += ", ";
      append_double(out, d.proportions[x]);
    }
    out += "], \"gain\": ";
    append_double(out, d.measures.gain);
    out += ", \"loss\": ";
    append_double(out, d.measures.loss);
    out += "}";
  }
  out += "\n]\n}\n";
  return out;
}

void export_json_file(const AggregationResult& result, const DataCube& cube,
                      const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw IoError("cannot open '" + path + "' for writing");
  os << export_json(result, cube);
  if (!os) throw IoError("short write to '" + path + "'");
}

}  // namespace stagg
