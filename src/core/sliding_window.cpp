#include "core/sliding_window.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "model/builder.hpp"
#include "trace/sharded_store.hpp"

namespace stagg {

namespace {

TimeGrid make_initial_grid(const TimeGrid& window) {
  if (window.uniform_dt_ns() == 0) {
    throw InvalidArgument(
        "SlidingWindowSession: the window span must be divisible by the "
        "slice count (uniform dt) so derived windows stay exact");
  }
  return window;
}

/// Store resources backing the hierarchy's leaves, in leaf order; empty
/// when the hierarchy spans the whole store (full view — the classic
/// one-trace-one-analysis case).  Scoping is a *shared-store* feature: an
/// exclusive session keeps the historical contract that a hierarchy/trace
/// resource-count mismatch is an error (map_resources throws), never a
/// silent subset analysis.  A scoped session requires path matching: leaf
/// order has no meaning against a larger store.  Works against both store
/// shapes (TraceStore and the ShardedTraceStore facade — same resource
/// table contract, global ids).
template <class Store>
std::vector<ResourceId> compute_scope(const Hierarchy& hierarchy,
                                      const Store& store,
                                      bool match_by_path,
                                      StoreOwnership ownership) {
  if (hierarchy.leaf_count() == store.resource_count()) return {};
  if (ownership == StoreOwnership::kExclusive) return {};
  if (!match_by_path) {
    throw DimensionError(
        "session scope: a hierarchy covering a subset of store resources "
        "requires match_by_path");
  }
  std::vector<ResourceId> scope;
  scope.reserve(hierarchy.leaf_count());
  for (LeafId leaf = 0; leaf < static_cast<LeafId>(hierarchy.leaf_count());
       ++leaf) {
    const std::string path = hierarchy.path(hierarchy.leaf_node(leaf));
    const ResourceId r = store.find_resource(path);
    if (r == kInvalidResource) {
      throw DimensionError("session scope: hierarchy leaf '" + path +
                           "' is not a store resource");
    }
    scope.push_back(r);
  }
  return scope;
}

/// Sharded sessions default their aggregator to the store's ShardPlan
/// (partitioned cube fold + per-shard cache schedule; bit-identical to the
/// flat schedule by the cube/cache contracts).  Also the null check: it
/// must run before any member initializer dereferences the handle.
SlidingWindowOptions adopt_shard_plan(
    SlidingWindowOptions options,
    const std::shared_ptr<const ShardedTraceStore>& sharded) {
  if (!sharded) {
    throw InvalidArgument("SlidingWindowSession: null sharded trace store");
  }
  if (options.aggregation.shard_plan == nullptr) {
    options.aggregation.shard_plan = &sharded->plan();
  }
  return options;
}

}  // namespace

SlidingWindowSession::SlidingWindowSession(const Hierarchy& hierarchy,
                                           Trace trace, const TimeGrid& window,
                                           std::vector<double> ps,
                                           SlidingWindowOptions options)
    : SlidingWindowSession(hierarchy, trace.store(), window, std::move(ps),
                           options, StoreOwnership::kExclusive) {}

SlidingWindowSession::SlidingWindowSession(const Hierarchy& hierarchy,
                                           std::shared_ptr<TraceStore> store,
                                           const TimeGrid& window,
                                           std::vector<double> ps,
                                           SlidingWindowOptions options,
                                           StoreOwnership ownership)
    : hierarchy_(&hierarchy),
      options_(options),
      store_([&]() -> std::shared_ptr<TraceStore> {
        if (!store) {
          throw InvalidArgument("SlidingWindowSession: null trace store");
        }
        return std::move(store);
      }()),
      ownership_(ownership),
      scope_(compute_scope(hierarchy, *store_, options.match_by_path,
                           ownership)),
      scope_paths_([&]() -> std::shared_ptr<const std::vector<std::string>> {
        if (scope_.empty()) return nullptr;
        auto paths = std::make_shared<std::vector<std::string>>();
        paths->reserve(scope_.size());
        for (const ResourceId r : scope_) {
          paths->push_back(store_->resource_path(r));
        }
        return paths;
      }()),
      facade_(store_),
      model_([&]() -> MicroscopicModel {
        const TimeGrid grid = make_initial_grid(window);
        if (ownership_ == StoreOwnership::kExclusive) {
          if (options_.memory_budget_bytes != 0) {
            if (options_.spill_path.empty()) {
              throw InvalidArgument(
                  "SlidingWindowSession: memory_budget_bytes requires a "
                  "spill_path to write cold chunks to");
            }
            store_->enable_spill(options_.spill_path);
          }
          if (options_.compression != ChunkCompression::kNone) {
            store_->set_compression(options_.compression);
          }
          store_->set_window(grid.begin(), grid.end());
          store_->seal_chunk();
          enforce_memory_budget();
        } else {
          // Attach check: a shared store has one memory policy, owned by
          // the SessionManager — a per-session budget would let any one
          // session rewrite chunk backends under all the others.
          if (options_.memory_budget_bytes != 0) {
            throw InvalidArgument(
                "SlidingWindowSession: memory_budget_bytes is an "
                "exclusive-store knob; set the budget on the SessionManager "
                "for shared stores");
          }
          if (options_.compression != ChunkCompression::kNone) {
            throw InvalidArgument(
                "SlidingWindowSession: compression is an exclusive-store "
                "knob; set the policy on the SessionManager for shared "
                "stores");
          }
          if (!store_->tails_sealed()) {
            throw InvalidArgument(
                "SlidingWindowSession: shared store has unsealed events "
                "(seal_chunk() before attaching sessions)");
          }
          // A window reaching behind the eviction horizon would silently
          // aggregate over already-unlinked chunks and break the
          // bit-identity-with-a-private-copy contract.
          if (grid.begin() < store_->evict_horizon()) {
            throw InvalidArgument(
                "SlidingWindowSession: window begins at " +
                std::to_string(grid.begin()) +
                " ns, before the shared store's eviction horizon (" +
                std::to_string(store_->evict_horizon()) +
                " ns) — events there are already evicted");
          }
        }
        ModelBuildOptions build;
        build.slice_count = grid.slice_count();
        build.match_by_path = options_.match_by_path;
        build.window_begin = grid.begin();
        build.window_end = grid.end();
        return build_model(make_view(grid), hierarchy, build);
      }()),
      agg_(model_, options.aggregation),
      ps_(std::move(ps)) {
  results_ = agg_.run_incremental(ps_);
  dirty_from_ns_ = window.end();
}

SlidingWindowSession::SlidingWindowSession(
    const Hierarchy& hierarchy,
    std::shared_ptr<const ShardedTraceStore> sharded, const TimeGrid& window,
    std::vector<double> ps, SlidingWindowOptions options)
    : hierarchy_(&hierarchy),
      options_(adopt_shard_plan(std::move(options), sharded)),
      sharded_(std::move(sharded)),
      store_(sharded_->shard_ptr(0)),
      ownership_(StoreOwnership::kShared),
      scope_(compute_scope(hierarchy, *sharded_, options_.match_by_path,
                           StoreOwnership::kShared)),
      scope_paths_([&]() -> std::shared_ptr<const std::vector<std::string>> {
        if (scope_.empty()) return nullptr;
        auto paths = std::make_shared<std::vector<std::string>>();
        paths->reserve(scope_.size());
        for (const ResourceId r : scope_) {
          paths->push_back(sharded_->resource_path(r));
        }
        return paths;
      }()),
      facade_(store_),
      model_([&]() -> MicroscopicModel {
        const TimeGrid grid = make_initial_grid(window);
        // Same attach contract as the shared single-store ctor: one memory
        // and codec policy per shared store, owned by the manager.
        if (options_.memory_budget_bytes != 0) {
          throw InvalidArgument(
              "SlidingWindowSession: memory_budget_bytes is an "
              "exclusive-store knob; set the budget on the SessionManager "
              "for shared stores");
        }
        if (options_.compression != ChunkCompression::kNone) {
          throw InvalidArgument(
              "SlidingWindowSession: compression is an exclusive-store "
              "knob; set the policy on the SessionManager for shared "
              "stores");
        }
        if (!sharded_->tails_sealed()) {
          throw InvalidArgument(
              "SlidingWindowSession: shared store has unsealed events "
              "(seal_chunk() before attaching sessions)");
        }
        if (grid.begin() < sharded_->evict_horizon()) {
          throw InvalidArgument(
              "SlidingWindowSession: window begins at " +
              std::to_string(grid.begin()) +
              " ns, before the shared store's eviction horizon (" +
              std::to_string(sharded_->evict_horizon()) +
              " ns) — events there are already evicted");
        }
        ModelBuildOptions build;
        build.slice_count = grid.slice_count();
        build.match_by_path = options_.match_by_path;
        build.window_begin = grid.begin();
        build.window_end = grid.end();
        return build_model(make_view(grid), hierarchy, build);
      }()),
      agg_(model_, options_.aggregation),
      ps_(std::move(ps)) {
  results_ = agg_.run_incremental(ps_);
  dirty_from_ns_ = window.end();
}

TraceView SlidingWindowSession::make_view(const TimeGrid& grid) const {
  if (sharded_ != nullptr) {
    return TraceView(sharded_, grid.begin(), grid.end(), scope_,
                     scope_paths_);
  }
  return TraceView(store_, grid.begin(), grid.end(), scope_, scope_paths_);
}

void SlidingWindowSession::enforce_memory_budget() {
  if (options_.memory_budget_bytes == 0) return;
  (void)store_->spill_cold(options_.memory_budget_bytes);
}

void SlidingWindowSession::append(ResourceId resource, StateId state,
                                  TimeNs begin, TimeNs end) {
  if (ownership_ == StoreOwnership::kShared) {
    throw InvalidArgument(
        "SlidingWindowSession::append: shared-store sessions ingest through "
        "their SessionManager");
  }
  if (state < 0 ||
      static_cast<std::size_t>(state) >= store_->states().size()) {
    throw InvalidArgument(
        "SlidingWindowSession::append: unknown state id " +
        std::to_string(state) +
        " (new states require a new session: they change |X|)");
  }
  store_->add_state(resource, state, begin, end);
  dirty_from_ns_ = std::min(dirty_from_ns_, begin);
}

void SlidingWindowSession::append(ResourceId resource,
                                  std::string_view state_name, TimeNs begin,
                                  TimeNs end) {
  const auto id = store_->states().find(state_name);
  if (!id) {
    throw InvalidArgument(
        "SlidingWindowSession::append: unknown state '" +
        std::string(state_name) +
        "' (new states require a new session: they change |X|)");
  }
  append(resource, *id, begin, end);
}

void SlidingWindowSession::note_external_ingest(TimeNs earliest_begin) noexcept {
  dirty_from_ns_ = std::min(dirty_from_ns_, earliest_begin);
}

SliceId SlidingWindowSession::pending_dirty_slice() const noexcept {
  const TimeGrid& grid = model_.grid();
  if (dirty_from_ns_ >= grid.end()) return grid.slice_count();
  if (dirty_from_ns_ <= grid.begin()) return 0;
  return grid.slice_of(dirty_from_ns_);
}

const std::vector<AggregationResult>& SlidingWindowSession::advance_to(
    const TimeGrid& new_grid, std::int32_t dropped_front) {
  const std::int32_t old_t = model_.slice_count();
  dropped_front = std::min(dropped_front, old_t);

  // 1. Re-layout the tensor: surviving columns relocate bit-exactly.
  model_.reshape_window(new_grid, dropped_front);

  // 2. First dirty column of the new window: the earliest of (a) the first
  // column with no relocated counterpart (appended suffix) and (b) the
  // column holding the earliest staged-event timestamp.
  const auto new_t = new_grid.slice_count();
  const SliceId fresh_from =
      std::clamp<SliceId>(old_t - dropped_front, 0, new_t);
  SliceId staged_from = new_t;
  if (dirty_from_ns_ < new_grid.end()) {
    staged_from = dirty_from_ns_ <= new_grid.begin()
                      ? 0
                      : new_grid.slice_of(dirty_from_ns_);
  }
  const SliceId first_dirty = std::min(fresh_from, staged_from);

  // 3. Seal staged events into chunks and unlink chunks that can never
  // overlap the window again (exclusive stores; a SessionManager does both
  // centrally for shared stores), then re-fold the dirty suffix through a
  // fresh window view.
  if (ownership_ == StoreOwnership::kExclusive) {
    if (options_.prune_trace) store_->evict_before(new_grid.begin());
    store_->set_window(new_grid.begin(), new_grid.end());
    store_->seal_chunk();
    enforce_memory_budget();
  } else if (sharded_ != nullptr ? !sharded_->tails_sealed()
                                 : !store_->tails_sealed()) {
    throw InvalidArgument(
        "SlidingWindowSession: shared store advanced with unsealed events "
        "(the SessionManager seals before advancing)");
  }
  // The view needs only the chunks that can touch the dirty suffix:
  // selecting from the first dirty slice (not the window begin) lets the
  // chunk fences prune everything wholly behind it — intervals ending
  // before the suffix fold to nothing anyway, and for compressed chunks
  // fence pruning is what skips the stream-decode of cold blocks.
  const SliceId dirty_clamped = std::min(first_dirty, new_t);
  const TimeNs dirty_begin_ns = dirty_clamped >= new_t
                                    ? new_grid.end()
                                    : new_grid.slice_begin(dirty_clamped);
  const TraceView dirty_view =
      sharded_ != nullptr
          ? TraceView(sharded_, dirty_begin_ns, new_grid.end(), scope_,
                      scope_paths_)
          : TraceView(store_, dirty_begin_ns, new_grid.end(), scope_,
                      scope_paths_);
  refold_suffix(model_, dirty_view, *hierarchy_, first_dirty,
                options_.match_by_path);

  // 4. Splice every derived structure and re-run the DP over the dirty
  // columns only.
  agg_.apply_window_update(dropped_front, first_dirty);
  results_ = agg_.run_incremental(ps_);
  dirty_from_ns_ = new_grid.end();
  return results_;
}

const std::vector<AggregationResult>& SlidingWindowSession::slide(
    std::int32_t slices) {
  if (slices < 0) {
    throw InvalidArgument("SlidingWindowSession::slide: negative slide");
  }
  return advance_to(model_.grid().advanced(slices), slices);
}

const std::vector<AggregationResult>& SlidingWindowSession::extend(
    std::int32_t slices) {
  return advance_to(model_.grid().extended(slices), 0);
}

const std::vector<AggregationResult>& SlidingWindowSession::contract(
    std::int32_t slices) {
  return advance_to(model_.grid().contracted(slices), 0);
}

const std::vector<AggregationResult>& SlidingWindowSession::refresh() {
  return advance_to(model_.grid(), 0);
}

std::vector<AggregationResult> SlidingWindowSession::run_from_scratch(
    DpKernel kernel) const {
  // Sealed snapshot: shares the immutable chunks, seals any staged tail
  // (the original also folded staged-but-unadvanced events).  Sharded
  // sessions snapshot the whole facade — every shard, not just shard 0.
  const TimeGrid& grid = model_.grid();
  const TraceView view =
      sharded_ != nullptr
          ? TraceView(sharded_->snapshot(), grid.begin(), grid.end(), scope_,
                      scope_paths_)
          : [&] {
              auto snapshot = std::make_shared<TraceStore>(*store_);
              snapshot->seal_chunk();
              return TraceView(snapshot, grid.begin(), grid.end(), scope_,
                               scope_paths_);
            }();
  ModelBuildOptions build;
  build.slice_count = grid.slice_count();
  build.match_by_path = options_.match_by_path;
  build.window_begin = grid.begin();
  build.window_end = grid.end();
  const MicroscopicModel fresh = build_model(view, *hierarchy_, build);
  AggregationOptions opt = options_.aggregation;
  opt.kernel = kernel;
  SpatiotemporalAggregator agg(fresh, opt);
  return agg.run_many(ps_);
}

}  // namespace stagg
