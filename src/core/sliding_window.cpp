#include "core/sliding_window.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "model/builder.hpp"

namespace stagg {

namespace {

TimeGrid make_initial_grid(const TimeGrid& window) {
  if (window.uniform_dt_ns() == 0) {
    throw InvalidArgument(
        "SlidingWindowSession: the window span must be divisible by the "
        "slice count (uniform dt) so derived windows stay exact");
  }
  return window;
}

}  // namespace

SlidingWindowSession::SlidingWindowSession(const Hierarchy& hierarchy,
                                           Trace trace, const TimeGrid& window,
                                           std::vector<double> ps,
                                           SlidingWindowOptions options)
    : hierarchy_(&hierarchy),
      options_(options),
      trace_(std::move(trace)),
      model_([&]() -> MicroscopicModel {
        const TimeGrid grid = make_initial_grid(window);
        trace_.set_window(grid.begin(), grid.end());
        ModelBuildOptions build;
        build.slice_count = grid.slice_count();
        build.match_by_path = options_.match_by_path;
        build.window_begin = grid.begin();
        build.window_end = grid.end();
        return build_model(trace_, hierarchy, build);
      }()),
      agg_(model_, options.aggregation),
      ps_(std::move(ps)) {
  results_ = agg_.run_incremental(ps_);
  dirty_from_ns_ = window.end();
}

void SlidingWindowSession::append(ResourceId resource, StateId state,
                                  TimeNs begin, TimeNs end) {
  if (state < 0 || static_cast<std::size_t>(state) >= trace_.states().size()) {
    throw InvalidArgument(
        "SlidingWindowSession::append: unknown state id " +
        std::to_string(state) +
        " (new states require a new session: they change |X|)");
  }
  trace_.add_state(resource, state, begin, end);
  dirty_from_ns_ = std::min(dirty_from_ns_, begin);
}

void SlidingWindowSession::append(ResourceId resource,
                                  std::string_view state_name, TimeNs begin,
                                  TimeNs end) {
  const auto id = trace_.states().find(state_name);
  if (!id) {
    throw InvalidArgument(
        "SlidingWindowSession::append: unknown state '" +
        std::string(state_name) +
        "' (new states require a new session: they change |X|)");
  }
  append(resource, *id, begin, end);
}

SliceId SlidingWindowSession::pending_dirty_slice() const noexcept {
  const TimeGrid& grid = model_.grid();
  if (dirty_from_ns_ >= grid.end()) return grid.slice_count();
  if (dirty_from_ns_ <= grid.begin()) return 0;
  return grid.slice_of(dirty_from_ns_);
}

const std::vector<AggregationResult>& SlidingWindowSession::advance_to(
    const TimeGrid& new_grid, std::int32_t dropped_front) {
  const std::int32_t old_t = model_.slice_count();
  dropped_front = std::min(dropped_front, old_t);

  // 1. Re-layout the tensor: surviving columns relocate bit-exactly.
  model_.reshape_window(new_grid, dropped_front);

  // 2. First dirty column of the new window: the earliest of (a) the first
  // column with no relocated counterpart (appended suffix) and (b) the
  // column holding the earliest staged-event timestamp.
  const auto new_t = new_grid.slice_count();
  const SliceId fresh_from =
      std::clamp<SliceId>(old_t - dropped_front, 0, new_t);
  SliceId staged_from = new_t;
  if (dirty_from_ns_ < new_grid.end()) {
    staged_from = dirty_from_ns_ <= new_grid.begin()
                      ? 0
                      : new_grid.slice_of(dirty_from_ns_);
  }
  const SliceId first_dirty = std::min(fresh_from, staged_from);

  // 3. Prune intervals that can never overlap the window again, then
  // re-fold the dirty suffix from the retained trace.
  if (options_.prune_trace) trace_.erase_before(new_grid.begin());
  trace_.set_window(new_grid.begin(), new_grid.end());
  refold_suffix(model_, trace_, *hierarchy_, first_dirty,
                options_.match_by_path);

  // 4. Splice every derived structure and re-run the DP over the dirty
  // columns only.
  agg_.apply_window_update(dropped_front, first_dirty);
  results_ = agg_.run_incremental(ps_);
  dirty_from_ns_ = new_grid.end();
  return results_;
}

const std::vector<AggregationResult>& SlidingWindowSession::slide(
    std::int32_t slices) {
  if (slices < 0) {
    throw InvalidArgument("SlidingWindowSession::slide: negative slide");
  }
  return advance_to(model_.grid().advanced(slices), slices);
}

const std::vector<AggregationResult>& SlidingWindowSession::extend(
    std::int32_t slices) {
  return advance_to(model_.grid().extended(slices), 0);
}

const std::vector<AggregationResult>& SlidingWindowSession::contract(
    std::int32_t slices) {
  return advance_to(model_.grid().contracted(slices), 0);
}

const std::vector<AggregationResult>& SlidingWindowSession::refresh() {
  return advance_to(model_.grid(), 0);
}

std::vector<AggregationResult> SlidingWindowSession::run_from_scratch(
    DpKernel kernel) const {
  Trace copy = trace_;
  ModelBuildOptions build;
  build.slice_count = model_.slice_count();
  build.match_by_path = options_.match_by_path;
  build.window_begin = model_.grid().begin();
  build.window_end = model_.grid().end();
  const MicroscopicModel fresh = build_model(copy, *hierarchy_, build);
  AggregationOptions opt = options_.aggregation;
  opt.kernel = kernel;
  SpatiotemporalAggregator agg(fresh, opt);
  return agg.run_many(ps_);
}

}  // namespace stagg
