#include "core/counting.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace stagg {
namespace {

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

/// a * b with saturation.
std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b, bool& saturated) {
  if (a != 0 && b > kMax / a) {
    saturated = true;
    return kMax;
  }
  return a * b;
}

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b, bool& saturated) {
  if (b > kMax - a) {
    saturated = true;
    return kMax;
  }
  return a + b;
}

}  // namespace

PartitionCount count_interval_partitions(std::int32_t slices) {
  if (slices < 1) {
    throw InvalidArgument("count_interval_partitions: slices >= 1");
  }
  PartitionCount c;
  c.log2_value = static_cast<double>(slices - 1);
  if (slices - 1 < 64) {
    c.exact = std::uint64_t{1} << (slices - 1);
  } else {
    c.exact = kMax;
    c.saturated = true;
  }
  return c;
}

PartitionCount count_hierarchy_partitions(const Hierarchy& hierarchy) {
  // f(node) = 1 + prod f(children); log-space mirror for saturated counts.
  std::vector<std::uint64_t> exact(hierarchy.node_count(), 1);
  std::vector<double> log_f(hierarchy.node_count(), 0.0);
  bool saturated = false;
  for (const NodeId id : hierarchy.post_order()) {
    const auto& n = hierarchy.node(id);
    if (n.children.empty()) continue;
    std::uint64_t prod = 1;
    double log_prod = 0.0;
    for (const NodeId c : n.children) {
      prod = sat_mul(prod, exact[static_cast<std::size_t>(c)], saturated);
      log_prod += log_f[static_cast<std::size_t>(c)];
    }
    exact[static_cast<std::size_t>(id)] = sat_add(prod, 1, saturated);
    // log2(1 + 2^log_prod): accurate in both regimes.
    log_f[static_cast<std::size_t>(id)] =
        log_prod > 60.0 ? log_prod
                        : std::log2(1.0 + std::exp2(log_prod));
  }
  PartitionCount out;
  out.exact = exact[static_cast<std::size_t>(hierarchy.root())];
  out.saturated = saturated;
  out.log2_value = log_f[static_cast<std::size_t>(hierarchy.root())];
  return out;
}

std::uint64_t count_dp_cells(const Hierarchy& hierarchy,
                             std::int32_t slices) {
  const std::uint64_t tri = static_cast<std::uint64_t>(slices) *
                            (static_cast<std::uint64_t>(slices) + 1) / 2;
  return hierarchy.node_count() * tri;
}

double binary_tree_growth_base(std::int32_t levels) {
  const Hierarchy h = make_balanced_hierarchy(levels, 2);
  const PartitionCount c = count_hierarchy_partitions(h);
  // Per *node* (the paper's |S| counts the full hierarchy): the count of a
  // complete binary tree behaves as c^nodes with c ~ 1.2259 (equivalently
  // c^2 ~ 1.5028 per leaf).
  return std::exp2(c.log2_value / static_cast<double>(h.node_count()));
}

}  // namespace stagg
