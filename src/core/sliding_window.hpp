// SlidingWindowSession: incremental spatiotemporal aggregation over a
// moving time window of a live trace.
//
// The batch pipeline (trace -> model -> DataCube -> MeasureCache -> DP) is
// an offline, whole-trace analysis; this session turns it into a streaming
// one by exploiting the *dirty-column invariant*:
//
//   Every derived cell — a cube per-slice column, a cached (gain, loss)
//   triangle cell (i, j), a DP cell pIC/cut/count(i, j) — is a pure
//   function of the per-slice trace data inside its interval [i, j]
//   (translation-invariant accumulation, see cube.hpp).  When only a time
//   suffix of the window changes, every cell whose column j precedes the
//   first dirty slice is therefore *bit-identical* to its previous value
//   and is spliced from the retained state; only cells with j >= the first
//   dirty column are recomputed.  When the window slides by k slices, cell
//   (i, j) of the new window equals cell (i+k, j+k) of the old one and is
//   remapped by a pure relocation instead of recomputed.
//
// Since the multi-session refactor the session no longer owns a mutable
// event blob: it reads an immutable chunked TraceStore through zero-copy
// TraceViews (chunk-fence pruning selects the window, a merge cursor
// yields the sorted interval stream).  A session either *owns* its store
// exclusively (the classic single-analysis mode: it may append, seal and
// evict) or *shares* it with other sessions under a SessionManager, which
// then owns ingest, sealing and eviction — N sessions with different
// windows, slice counts, hierarchy scopes and probe sets read the same
// chunks, so the trace bytes are paid once, not N times.
//
// Half-open edge convention (shared with the trace readers and the model
// builder): a state occupies [begin, end).  An event whose end lies
// exactly on a slice edge or on the window end contributes nothing past
// it; one whose begin lies exactly on an edge contributes nothing before
// it; a zero-duration event contributes nowhere.  During append() the
// convention is what guarantees an event's mass lands in exactly one of
// the old-suffix / new-suffix partitions — never in both.
//
// Usage (exclusive store):
//   SlidingWindowSession session(hierarchy, std::move(trace),
//                                TimeGrid(t0, t0 + span, 96), {0.25, 0.5});
//   session.append(resource, state, begin_ns, end_ns);  // stage events
//   const auto& results = session.slide(4);  // drop 4 slices, append 4
//
// Windows must have a uniform slice width (span divisible by the count) so
// slice edges of derived windows stay exact; see TimeGrid::advanced.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/aggregator.hpp"
#include "model/microscopic_model.hpp"
#include "trace/trace.hpp"
#include "trace/trace_store.hpp"
#include "trace/trace_view.hpp"

namespace stagg {

class ShardedTraceStore;

/// Who may mutate the session's TraceStore.
enum class StoreOwnership : std::uint8_t {
  /// The session owns the store: append() stages events, every advance
  /// seals them and (optionally) evicts dead chunks.
  kExclusive,
  /// The store is shared with other sessions (a SessionManager owns
  /// ingest, sealing and eviction); append() throws, advances require the
  /// store to be sealed.
  kShared,
};

/// Knobs of a sliding-window session.
struct SlidingWindowOptions {
  /// Aggregation options of the retained DP; the kernel must be a cached
  /// one and normalize must stay false (run_incremental's requirements).
  AggregationOptions aggregation;
  /// Match trace resources to hierarchy leaves by path (see build_model).
  bool match_by_path = true;
  /// Evict chunks that can no longer overlap the window after a slide
  /// (bounds the session's trace memory; never affects results).
  /// Exclusive stores only — a SessionManager evicts centrally.
  bool prune_trace = true;
  /// Byte budget for the store's *resident* sealed chunk columns.  When
  /// non-zero, every advance additionally spills the coldest chunks to
  /// `spill_path` (required alongside) and maps them back on view
  /// selection — eviction bounds what is retained, the budget bounds what
  /// of it stays in anonymous memory.  Never affects results.  Exclusive
  /// stores only: shared-store sessions must leave this 0 (attach throws
  /// otherwise) — the SessionManager owns the shared memory policy.
  std::size_t memory_budget_bytes = 0;
  std::string spill_path;
  /// Seal-time chunk compression policy of the session's store (kAuto:
  /// sealed chunks keep delta/dictionary-encoded columns whenever that
  /// shrinks them; views streaming-decode them — never affects results).
  /// Composes with the budget: compressed chunks count their encoded
  /// bytes, so the same budget retains 3-5x more trace before spilling.
  /// Exclusive stores only — shared-store sessions must leave kNone
  /// (attach throws otherwise); set the policy on the SessionManager.
  ChunkCompression compression = ChunkCompression::kNone;
};

class SlidingWindowSession {
 public:
  /// Takes ownership of the initial trace's store and aggregates it over
  /// `window` (which must have a uniform slice width) for the probe
  /// parameters `ps`.  Results are available immediately via results().
  SlidingWindowSession(const Hierarchy& hierarchy, Trace trace,
                       const TimeGrid& window, std::vector<double> ps,
                       SlidingWindowOptions options = {});

  /// Aggregates over a store, exclusively owned or shared (see
  /// StoreOwnership).  With a shared store the hierarchy may *scope* the
  /// session to a subset of store resources: every hierarchy leaf path
  /// must name a store resource; other resources are outside the view.
  SlidingWindowSession(const Hierarchy& hierarchy,
                       std::shared_ptr<TraceStore> store,
                       const TimeGrid& window, std::vector<double> ps,
                       SlidingWindowOptions options = {},
                       StoreOwnership ownership = StoreOwnership::kExclusive);

  /// Aggregates over a sharded store — always shared (a SessionManager or
  /// test harness owns ingest, sealing and eviction).  Hierarchy scoping
  /// works as in the shared single-store ctor; every view routes each
  /// resource to its owning shard, so results are bit-identical to the
  /// same intervals held in one monolithic store.  Unless
  /// options.aggregation.shard_plan is already set, the session adopts the
  /// store's ShardPlan for its aggregator (partitioned cube fold and
  /// per-shard cache schedule).  store()/trace() resolve to shard 0.
  SlidingWindowSession(const Hierarchy& hierarchy,
                       std::shared_ptr<const ShardedTraceStore> sharded,
                       const TimeGrid& window, std::vector<double> ps,
                       SlidingWindowOptions options = {});

  SlidingWindowSession(const SlidingWindowSession&) = delete;
  SlidingWindowSession& operator=(const SlidingWindowSession&) = delete;

  /// Stages one state occurrence [begin, end); it becomes visible at the
  /// next slide/extend/contract/refresh.  The state must already be
  /// registered (a new state would change the model dimensions — start a
  /// new session for that).  Events may land anywhere, but only events
  /// confined to the window's time suffix keep the next advance
  /// incremental; an event reaching back dirties every column from its
  /// begin slice on.  Exclusive stores only — shared-store sessions
  /// ingest through their SessionManager.
  void append(ResourceId resource, StateId state, TimeNs begin, TimeNs end);
  /// Convenience overload resolving an *existing* state by name (throws
  /// InvalidArgument on unknown names instead of interning).
  void append(ResourceId resource, std::string_view state_name, TimeNs begin,
              TimeNs end);

  /// Tells a shared-store session that events were ingested into the
  /// store externally (by the SessionManager), the earliest beginning at
  /// `earliest_begin` — the next advance recomputes from that timestamp's
  /// column.  No-op for timestamps at or past the current window end.
  void note_external_ingest(TimeNs earliest_begin) noexcept;

  /// Slides the window forward by `slices` (fixed |T|): the leading
  /// `slices` columns are dropped, the surviving ones remapped by column
  /// shift, and only the appended suffix recomputed.
  const std::vector<AggregationResult>& slide(std::int32_t slices);
  /// Grows the window by `slices` new trailing slices (|T| increases).
  const std::vector<AggregationResult>& extend(std::int32_t slices);
  /// Shrinks the window by `slices` trailing slices (|T| decreases).  A
  /// pure truncation: no cell is recomputed unless staged events dirtied
  /// the surviving suffix.
  const std::vector<AggregationResult>& contract(std::int32_t slices);
  /// Re-aggregates the current window with the staged events folded in.
  const std::vector<AggregationResult>& refresh();

  /// Results of the latest advance, one per probe parameter, in order.
  [[nodiscard]] const std::vector<AggregationResult>& results() const noexcept {
    return results_;
  }
  [[nodiscard]] std::span<const double> probes() const noexcept { return ps_; }
  [[nodiscard]] const TimeGrid& window() const noexcept {
    return model_.grid();
  }
  [[nodiscard]] const MicroscopicModel& model() const noexcept {
    return model_;
  }
  /// Row-facade over the session's store (compatibility accessor; copying
  /// it yields an independent trace sharing the sealed chunks).
  [[nodiscard]] const Trace& trace() const noexcept { return facade_; }
  [[nodiscard]] const TraceStore& store() const noexcept { return *store_; }
  [[nodiscard]] const std::shared_ptr<TraceStore>& store_ptr() const noexcept {
    return store_;
  }
  [[nodiscard]] StoreOwnership ownership() const noexcept {
    return ownership_;
  }
  /// The sharded store this session reads, or null for single-store
  /// sessions (store() then returns the whole store, not a shard).
  [[nodiscard]] const std::shared_ptr<const ShardedTraceStore>&
  sharded_store_ptr() const noexcept {
    return sharded_;
  }
  /// Store resources this session reads (empty = all, in store order).
  [[nodiscard]] std::span<const ResourceId> scope() const noexcept {
    return scope_;
  }
  [[nodiscard]] const SpatiotemporalAggregator& aggregator() const noexcept {
    return agg_;
  }

  /// First dirty column the *next* advance would recompute from
  /// (slice_count() when the retained state is clean) — exposed for tests
  /// and instrumentation of the dirty-column invariant.
  [[nodiscard]] SliceId pending_dirty_slice() const noexcept;

  /// From-scratch oracle: builds a fresh model over the current window
  /// from a sealed snapshot of the store (same scope) and runs
  /// run_many(ps) on a fresh aggregator with the given kernel.  The
  /// splice tests assert bit-identity of results() against this at every
  /// step.
  [[nodiscard]] std::vector<AggregationResult> run_from_scratch(
      DpKernel kernel = DpKernel::kCachedWavefront) const;

 private:
  const std::vector<AggregationResult>& advance_to(const TimeGrid& new_grid,
                                                   std::int32_t dropped_front);
  [[nodiscard]] TraceView make_view(const TimeGrid& grid) const;
  /// Spills cold chunks down to options_.memory_budget_bytes (exclusive
  /// stores with a budget; no-op otherwise).
  void enforce_memory_budget();

  const Hierarchy* hierarchy_;
  SlidingWindowOptions options_;
  /// Sharded-store mode: non-null for sessions over a ShardedTraceStore;
  /// store_ then aliases shard 0 (its registry mirrors the facade's) and
  /// every view routes resources through the facade.
  std::shared_ptr<const ShardedTraceStore> sharded_;
  std::shared_ptr<TraceStore> store_;
  StoreOwnership ownership_ = StoreOwnership::kExclusive;
  /// Store resources backing the hierarchy's leaves; empty when the
  /// hierarchy covers the whole store (full view).
  std::vector<ResourceId> scope_;
  /// Their paths in scope order, computed once and shared with every view
  /// this session builds (one per advance); null for full views.
  std::shared_ptr<const std::vector<std::string>> scope_paths_;
  Trace facade_;
  MicroscopicModel model_;
  SpatiotemporalAggregator agg_;
  std::vector<double> ps_;
  std::vector<AggregationResult> results_;
  /// Earliest timestamp whose fold state is not yet reflected in the
  /// model: min begin of staged events, or the window end when only the
  /// not-yet-visible tail beyond the window is outstanding.
  TimeNs dirty_from_ns_ = 0;
};

}  // namespace stagg
