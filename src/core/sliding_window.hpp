// SlidingWindowSession: incremental spatiotemporal aggregation over a
// moving time window of a live trace.
//
// The batch pipeline (trace -> model -> DataCube -> MeasureCache -> DP) is
// an offline, whole-trace analysis; this session turns it into a streaming
// one by exploiting the *dirty-column invariant*:
//
//   Every derived cell — a cube per-slice column, a cached (gain, loss)
//   triangle cell (i, j), a DP cell pIC/cut/count(i, j) — is a pure
//   function of the per-slice trace data inside its interval [i, j]
//   (translation-invariant accumulation, see cube.hpp).  When only a time
//   suffix of the window changes, every cell whose column j precedes the
//   first dirty slice is therefore *bit-identical* to its previous value
//   and is spliced from the retained state; only cells with j >= the first
//   dirty column are recomputed.  When the window slides by k slices, cell
//   (i, j) of the new window equals cell (i+k, j+k) of the old one and is
//   remapped by a pure relocation instead of recomputed.
//
// The append-only shape mirrors time-series storage engines: closed slice
// columns are immutable; only the mutable tail (the dirty suffix) is ever
// rewritten.  Results after every operation are bit-identical to a
// from-scratch run_many() over the same window at any lane width — the
// splice property tests assert this against the kReference and kCachedSolo
// oracles.
//
// Half-open edge convention (shared with the trace readers and the model
// builder): a state occupies [begin, end).  An event whose end lies
// exactly on a slice edge or on the window end contributes nothing past
// it; one whose begin lies exactly on an edge contributes nothing before
// it; a zero-duration event contributes nowhere.  During append() the
// convention is what guarantees an event's mass lands in exactly one of
// the old-suffix / new-suffix partitions — never in both.
//
// Usage:
//   SlidingWindowSession session(hierarchy, std::move(trace),
//                                TimeGrid(t0, t0 + span, 96), {0.25, 0.5});
//   session.append(resource, state, begin_ns, end_ns);  // stage events
//   const auto& results = session.slide(4);  // drop 4 slices, append 4
//
// Windows must have a uniform slice width (span divisible by the count) so
// slice edges of derived windows stay exact; see TimeGrid::advanced.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/aggregator.hpp"
#include "model/microscopic_model.hpp"
#include "trace/trace.hpp"

namespace stagg {

/// Knobs of a sliding-window session.
struct SlidingWindowOptions {
  /// Aggregation options of the retained DP; the kernel must be a cached
  /// one and normalize must stay false (run_incremental's requirements).
  AggregationOptions aggregation;
  /// Match trace resources to hierarchy leaves by path (see build_model).
  bool match_by_path = true;
  /// Drop retained intervals that can no longer overlap the window after a
  /// slide (bounds the session's trace memory; never affects results).
  bool prune_trace = true;
};

class SlidingWindowSession {
 public:
  /// Takes ownership of the initial trace and aggregates it over `window`
  /// (which must have a uniform slice width) for the probe parameters
  /// `ps`.  Results are available immediately via results().
  SlidingWindowSession(const Hierarchy& hierarchy, Trace trace,
                       const TimeGrid& window, std::vector<double> ps,
                       SlidingWindowOptions options = {});

  SlidingWindowSession(const SlidingWindowSession&) = delete;
  SlidingWindowSession& operator=(const SlidingWindowSession&) = delete;

  /// Stages one state occurrence [begin, end); it becomes visible at the
  /// next slide/extend/contract/refresh.  The state must already be
  /// registered (a new state would change the model dimensions — start a
  /// new session for that).  Events may land anywhere, but only events
  /// confined to the window's time suffix keep the next advance
  /// incremental; an event reaching back dirties every column from its
  /// begin slice on.
  void append(ResourceId resource, StateId state, TimeNs begin, TimeNs end);
  /// Convenience overload resolving an *existing* state by name (throws
  /// InvalidArgument on unknown names instead of interning).
  void append(ResourceId resource, std::string_view state_name, TimeNs begin,
              TimeNs end);

  /// Slides the window forward by `slices` (fixed |T|): the leading
  /// `slices` columns are dropped, the surviving ones remapped by column
  /// shift, and only the appended suffix recomputed.
  const std::vector<AggregationResult>& slide(std::int32_t slices);
  /// Grows the window by `slices` new trailing slices (|T| increases).
  const std::vector<AggregationResult>& extend(std::int32_t slices);
  /// Shrinks the window by `slices` trailing slices (|T| decreases).  A
  /// pure truncation: no cell is recomputed unless staged events dirtied
  /// the surviving suffix.
  const std::vector<AggregationResult>& contract(std::int32_t slices);
  /// Re-aggregates the current window with the staged events folded in.
  const std::vector<AggregationResult>& refresh();

  /// Results of the latest advance, one per probe parameter, in order.
  [[nodiscard]] const std::vector<AggregationResult>& results() const noexcept {
    return results_;
  }
  [[nodiscard]] std::span<const double> probes() const noexcept { return ps_; }
  [[nodiscard]] const TimeGrid& window() const noexcept {
    return model_.grid();
  }
  [[nodiscard]] const MicroscopicModel& model() const noexcept {
    return model_;
  }
  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }
  [[nodiscard]] const SpatiotemporalAggregator& aggregator() const noexcept {
    return agg_;
  }

  /// First dirty column the *next* advance would recompute from
  /// (slice_count() when the retained state is clean) — exposed for tests
  /// and instrumentation of the dirty-column invariant.
  [[nodiscard]] SliceId pending_dirty_slice() const noexcept;

  /// From-scratch oracle: builds a fresh model over the current window
  /// from a copy of the retained trace and runs run_many(ps) on a fresh
  /// aggregator with the given kernel.  The splice tests assert
  /// bit-identity of results() against this at every step.
  [[nodiscard]] std::vector<AggregationResult> run_from_scratch(
      DpKernel kernel = DpKernel::kCachedWavefront) const;

 private:
  const std::vector<AggregationResult>& advance_to(const TimeGrid& new_grid,
                                                   std::int32_t dropped_front);

  const Hierarchy* hierarchy_;
  SlidingWindowOptions options_;
  Trace trace_;
  MicroscopicModel model_;
  SpatiotemporalAggregator agg_;
  std::vector<double> ps_;
  std::vector<AggregationResult> results_;
  /// Earliest timestamp whose fold state is not yet reflected in the
  /// model: min begin of staged events, or the window end when only the
  /// not-yet-visible tail beyond the window is outstanding.
  TimeNs dirty_from_ns_ = 0;
};

}  // namespace stagg
