// Significant aggregation strengths (paper §I: "the analyst can easily
// choose several levels of details by sliding the aggregation strength
// among a set of significant values").
//
// The optimal partition is a piecewise-constant function of p; the
// dichotomic search bisects [0, 1] breadth-first, comparing partition
// signatures at the endpoints, and returns the distinct plateaus with their
// parameter ranges.  Because the DataCube and the measure cache are
// p-independent, each probe costs only the multiply-add DP, not a model
// rebuild; every bisection wave is submitted as one
// SpatiotemporalAggregator::run_many batch, so the cache build and the DP
// buffer arena are paid once for the whole search, and the wave's probes
// are evaluated in SIMD-friendly lanes sharing one pass over the measure
// cache — this is what makes Ocelotl's slider "instantaneous" after the
// preprocess (paper §VI).
#pragma once

#include <cstdint>
#include <vector>

#include "core/aggregator.hpp"

namespace stagg {

/// One plateau of the p -> partition map.
struct AggregationLevel {
  double p_min = 0.0;       ///< first probed p showing this partition
  double p_max = 0.0;       ///< last probed p showing this partition
  AggregationResult result; ///< representative run (at p_min)
};

struct DichotomyOptions {
  double epsilon = 1e-3;       ///< stop bisecting below this p-gap
  /// Hard cap on DP executions.  Values below 2 cannot even probe both
  /// endpoints; the search then returns whatever partial result the budget
  /// allowed (max_runs == 1: the single p = 0 plateau; 0: no levels).
  std::size_t max_runs = 256;
};

struct DichotomyResult {
  std::vector<AggregationLevel> levels;  ///< sorted by p_min ascending
  std::size_t runs = 0;                  ///< DP executions performed
};

/// Finds the significant p plateaus of `aggregator` over [0, 1].
/// Note: plateaus narrower than epsilon between two probes with equal
/// signatures can be missed — the same trade-off the Ocelotl tool makes.
[[nodiscard]] DichotomyResult find_significant_levels(
    SpatiotemporalAggregator& aggregator, const DichotomyOptions& options = {});

}  // namespace stagg
