#include "core/ingest_pipeline.hpp"

#include <algorithm>
#include <iterator>
#include <limits>
#include <map>
#include <utility>

#include "common/contract.hpp"
#include "common/error.hpp"

namespace stagg {

/// One unit of work for a parse worker (per-shard SPSC queues).
struct IngestPipeline::ShardJob {
  enum class Kind : std::uint8_t { kText, kRecords, kBarrier };
  Kind kind = Kind::kText;
  std::string text;                   // kText: whole lines
  std::vector<EventRecord> records;   // kRecords: pre-resolved
  TimeNs frontier = 0;                // kBarrier
};

/// Parse -> seal message (MPSC queue): a decoded batch, or a shard's mark
/// that everything it was handed before a barrier has been forwarded.
struct IngestPipeline::BatchMessage {
  enum class Kind : std::uint8_t { kBatch, kMark };
  Kind kind = Kind::kBatch;
  EventBatch batch;    // kBatch
  std::size_t shard = 0;  // kMark
  TimeNs frontier = 0;    // kMark
};

IngestPipeline::IngestPipeline(SessionManager& manager,
                               IngestPipelineOptions options)
    : manager_(manager), options_(std::move(options)) {
  if (options_.parse_workers == 0) {
    throw InvalidArgument("IngestPipeline: parse_workers must be >= 1");
  }
  options_.max_batch_records = std::max<std::size_t>(
      1, options_.max_batch_records);
  // Freeze the name tables: parse workers resolve against pipeline-owned
  // maps, so they never touch the store while the seal worker appends.
  // The manager-level accessors yield *global* ids, identical for single
  // and sharded stores (a sharded manager's store() is only shard 0).
  resource_ids_.reserve(manager_.resource_count());
  for (std::size_t r = 0; r < manager_.resource_count(); ++r) {
    resource_ids_.emplace(manager_.resource_path(static_cast<ResourceId>(r)),
                          static_cast<ResourceId>(r));
  }
  const StateRegistry& states = manager_.states();
  state_ids_.reserve(states.size());
  for (std::size_t x = 0; x < states.size(); ++x) {
    state_ids_.emplace(states.name(static_cast<StateId>(x)),
                       static_cast<StateId>(x));
  }
  advanced_watermark_ = manager_.watermark();
  // The non-decreasing check constrains only the caller's own sequence;
  // a first frontier below the store's initial watermark is legal (the
  // advance stage just refreshes).
  requested_frontier_.store(std::numeric_limits<TimeNs>::lowest(),
                            std::memory_order_relaxed);

  shard_queues_.reserve(options_.parse_workers);
  for (std::size_t i = 0; i < options_.parse_workers; ++i) {
    shard_queues_.push_back(
        std::make_unique<BoundedQueue<ShardJob>>(
            options_.shard_queue_capacity));
  }
  batch_queue_ = std::make_unique<BoundedQueue<BatchMessage>>(
      options_.batch_queue_capacity);
  watermark_queue_ = std::make_unique<BoundedQueue<TimeNs>>(
      options_.watermark_queue_capacity);

  live_parsers_.store(options_.parse_workers, std::memory_order_relaxed);
  workers_.reserve(options_.parse_workers + 2);
  for (std::size_t i = 0; i < options_.parse_workers; ++i) {
    workers_.emplace_back([this, i] { parse_worker(i); });
  }
  workers_.emplace_back([this] { seal_worker(); });
  workers_.emplace_back([this] { advance_worker(); });
}

IngestPipeline::~IngestPipeline() {
  try {
    close();
  } catch (...) {
    // The destructor cannot report; close() first to observe failures.
  }
}

ResourceId IngestPipeline::resolve_resource(std::string_view name) const {
  // Transparent lookup would avoid the key copy; the maps are small and
  // the copy is short-string most of the time, so keep the simple shape.
  const auto it = resource_ids_.find(std::string(name));
  if (it == resource_ids_.end()) {
    throw InvalidArgument(
        "ingest pipeline: unknown resource '" + std::string(name) +
        "' (the pipeline requires a schema-complete store)");
  }
  return it->second;
}

StateId IngestPipeline::resolve_state(std::string_view name) const {
  const auto it = state_ids_.find(std::string(name));
  if (it == state_ids_.end()) {
    throw InvalidArgument(
        "ingest pipeline: unknown state '" + std::string(name) +
        "' (sessions pin |X|; the pipeline requires a schema-complete "
        "store)");
  }
  return it->second;
}

void IngestPipeline::push_batch(std::size_t shard, std::uint64_t& sequence,
                                std::vector<EventRecord>&& records) {
  if (records.empty()) return;
  BatchMessage msg;
  msg.kind = BatchMessage::Kind::kBatch;
  msg.batch.shard = shard;
  msg.batch.sequence = sequence++;
  msg.batch.min_begin = records.front().begin;
  msg.batch.max_end = records.front().end;
  for (const EventRecord& rec : records) {
    msg.batch.min_begin = std::min(msg.batch.min_begin, rec.begin);
    msg.batch.max_end = std::max(msg.batch.max_end, rec.end);
  }
  msg.batch.records = std::move(records);
  records_parsed_.fetch_add(msg.batch.records.size(),
                            std::memory_order_relaxed);
  // A false push means the pipeline failed and closed the queues; the
  // worker loop notices on its next pop.
  (void)batch_queue_->push(std::move(msg));
}

void IngestPipeline::decode_text_job(std::size_t shard,
                                     const std::string& text,
                                     std::uint64_t& sequence) {
  std::vector<EventRecord> pending;
  pending.reserve(options_.max_batch_records);
  TextTraceDecoder decoder(options_.text_format,
                           "<ingest shard " + std::to_string(shard) + ">");
  const DecodedTextSink sink = [&](const DecodedTextRecord& rec) {
    EventRecord ev;
    ev.resource = resolve_resource(rec.resource);
    ev.state = resolve_state(rec.state);
    ev.begin = rec.begin;
    ev.end = rec.end;
    pending.push_back(ev);
    if (pending.size() >= options_.max_batch_records) {
      push_batch(shard, sequence, std::move(pending));
      pending = {};
      pending.reserve(options_.max_batch_records);
    }
  };
  decoder.feed(text, sink);
  decoder.finish(sink);
  push_batch(shard, sequence, std::move(pending));
}

void IngestPipeline::parse_worker(std::size_t shard) {
  std::uint64_t sequence = 0;
  BoundedQueue<ShardJob>& queue = *shard_queues_[shard];
  while (auto job = queue.pop()) {
    try {
      switch (job->kind) {
        case ShardJob::Kind::kText:
          decode_text_job(shard, job->text, sequence);
          break;
        case ShardJob::Kind::kRecords:
          push_batch(shard, sequence, std::move(job->records));
          break;
        case ShardJob::Kind::kBarrier: {
          BatchMessage mark;
          mark.kind = BatchMessage::Kind::kMark;
          mark.shard = shard;
          mark.frontier = job->frontier;
          (void)batch_queue_->push(std::move(mark));
          break;
        }
      }
    } catch (...) {
      fail(std::current_exception());
      break;
    }
  }
  if (live_parsers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    batch_queue_->close();
  }
}

void IngestPipeline::seal_worker() {
  // Batches are staged per shard and appended to the store ONLY when
  // their round's barrier completes: per-producer FIFO order means a
  // shard's mark for frontier f follows exactly the batches it parsed
  // before f's barrier, so a sealed watermark covers precisely the
  // records submitted before it — never a racing shard's next round
  // (which would break bit-identity with the synchronous path) — and
  // the store's mutable tails are empty whenever the advance worker
  // holds the stage mutex.
  std::vector<std::vector<EventBatch>> staged(options_.parse_workers);
  struct Round {
    std::vector<EventBatch> batches;
    std::size_t marks = 0;
  };
  std::map<TimeNs, Round> rounds;

  const auto seal_round = [&](std::vector<EventBatch>& batches,
                              TimeNs frontier) {
    {
      std::lock_guard<std::mutex> lock(stage_mutex_);
      for (EventBatch& b : batches) {
        manager_.ingest(b.records);
        records_sealed_.fetch_add(b.records.size(),
                                  std::memory_order_relaxed);
      }
      manager_.seal_staged(frontier);
      // Every sealed record was popped off the batch queue, whose
      // push/pop ordering makes the parser's counter increment visible
      // here — sealing can trail parsing but never lead it.
      STAGG_ASSERT(records_sealed_.load(std::memory_order_relaxed) <=
                       records_parsed_.load(std::memory_order_relaxed),
                   "seal worker sealed more records than were parsed");
    }
    // Push OUTSIDE the stage mutex: the advance worker takes that mutex
    // after popping, so a blocking push while holding it would deadlock
    // the very backpressure it implements.
    (void)watermark_queue_->push(frontier);
  };

  bool ok = true;
  while (auto msg = batch_queue_->pop()) {
    try {
      if (msg->kind == BatchMessage::Kind::kBatch) {
        staged[msg->batch.shard].push_back(std::move(msg->batch));
        continue;
      }
      Round& round = rounds[msg->frontier];
      std::move(staged[msg->shard].begin(), staged[msg->shard].end(),
                std::back_inserter(round.batches));
      staged[msg->shard].clear();
      if (++round.marks < options_.parse_workers) continue;
      // Completion order is monotone in the frontier (per-producer FIFO),
      // so sealing on completion seals rounds in order.
      seal_round(round.batches, msg->frontier);
      rounds.erase(msg->frontier);
    } catch (...) {
      fail(std::current_exception());
      ok = false;
      break;
    }
  }
  if (ok) {
    // Intake closed mid-round: flush the trailing partial round so close()
    // loses nothing.  Any half-counted barriers fold in too (they can only
    // exist if intake closed between broadcasts, which close() prevents,
    // but be safe).
    try {
      std::vector<EventBatch> rest;
      for (auto& [frontier, round] : rounds) {
        std::move(round.batches.begin(), round.batches.end(),
                  std::back_inserter(rest));
      }
      rounds.clear();
      for (auto& shard_batches : staged) {
        std::move(shard_batches.begin(), shard_batches.end(),
                  std::back_inserter(rest));
        shard_batches.clear();
      }
      if (!rest.empty()) {
        seal_round(rest,
                   requested_frontier_.load(std::memory_order_relaxed));
      }
    } catch (...) {
      fail(std::current_exception());
    }
  }
  watermark_queue_->close();
}

void IngestPipeline::advance_worker() {
  while (auto wm = watermark_queue_->pop()) {
    try {
      {
        std::lock_guard<std::mutex> lock(stage_mutex_);
        // This thread is the sole writer of advanced_watermark_, so the
        // unlocked read is race-free; the seal worker publishes frontiers
        // in completion order, which is monotone per producer.
        STAGG_ASSERT(*wm >= advanced_watermark_,
                     "advance watermarks must be non-decreasing");
        // Advance never outruns seal: the manager rejects it too, but the
        // assert pins the pipeline-level contract at the stage boundary.
        STAGG_ASSERT(*wm <= manager_.watermark(),
                     "advance worker ahead of the sealed watermark");
        manager_.advance_to_watermark(*wm);
        if (options_.on_advance) options_.on_advance(*wm);
      }
      {
        std::lock_guard<std::mutex> lock(progress_mutex_);
        advanced_watermark_ = *wm;
        ++rounds_advanced_;
      }
      progress_cv_.notify_all();
    } catch (...) {
      fail(std::current_exception());
      return;
    }
  }
}

void IngestPipeline::fail(std::exception_ptr ex) noexcept {
  {
    std::lock_guard<std::mutex> lock(progress_mutex_);
    if (!failed_) {
      failed_ = true;
      failure_ = ex;
    }
  }
  // Unblock everything: closed queues drain, pushes return false.
  close_all_queues();
  progress_cv_.notify_all();
}

void IngestPipeline::close_all_queues() noexcept {
  for (auto& queue : shard_queues_) queue->close();
  batch_queue_->close();
  watermark_queue_->close();
}

void IngestPipeline::rethrow_if_failed() {
  std::lock_guard<std::mutex> lock(progress_mutex_);
  if (failed_) std::rethrow_exception(failure_);
}

void IngestPipeline::submit_text(std::string_view text) {
  rethrow_if_failed();
  if (intake_closed_) {
    throw InvalidArgument("IngestPipeline: submit after close()");
  }
  const auto shards = split_text_shards(text, options_.parse_workers);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    ShardJob job;
    job.kind = ShardJob::Kind::kText;
    job.text.assign(shards[i]);
    if (!shard_queues_[i]->push(std::move(job))) {
      rethrow_if_failed();
      throw InvalidArgument("IngestPipeline: submit after close()");
    }
  }
}

void IngestPipeline::submit_records(std::vector<EventRecord> records) {
  rethrow_if_failed();
  if (intake_closed_) {
    throw InvalidArgument("IngestPipeline: submit after close()");
  }
  if (records.empty()) return;
  const std::size_t total = records.size();
  const std::size_t shards = options_.parse_workers;
  const ShardedTraceStore* sharded = manager_.sharded_store().get();
  if (sharded != nullptr && shards > 1) {
    // Parse-shard -> store-shard affinity: group the batch by owning
    // store shard so each parse worker's batches hold one store shard's
    // records and the facade's bucketed append parallelizes S-wide with
    // no cross-shard scatter.  The grouping is a stable partition, so
    // per-resource order is preserved end to end (chunks re-sort at seal
    // anyway — results are bit-identical to the contiguous split).
    std::vector<std::vector<EventRecord>> groups(shards);
    for (const EventRecord& rec : records) {
      if (rec.resource < 0 ||
          static_cast<std::size_t>(rec.resource) >=
              sharded->resource_count()) {
        throw InvalidArgument(
            "ingest pipeline: record resource id " +
            std::to_string(rec.resource) +
            " is outside the frozen resource table");
      }
      groups[sharded->shard_of(rec.resource) % shards].push_back(rec);
    }
    for (std::size_t i = 0; i < shards; ++i) {
      if (groups[i].empty()) continue;
      ShardJob job;
      job.kind = ShardJob::Kind::kRecords;
      job.records = std::move(groups[i]);
      if (!shard_queues_[i]->push(std::move(job))) {
        rethrow_if_failed();
        throw InvalidArgument("IngestPipeline: submit after close()");
      }
    }
    return;
  }
  const std::size_t per = (total + shards - 1) / shards;
  for (std::size_t i = 0; i * per < total; ++i) {
    const std::size_t begin = i * per;
    const std::size_t end = std::min(total, begin + per);
    ShardJob job;
    job.kind = ShardJob::Kind::kRecords;
    if (begin == 0 && end == total) {
      job.records = std::move(records);
    } else {
      job.records.assign(records.begin() + static_cast<std::ptrdiff_t>(begin),
                         records.begin() + static_cast<std::ptrdiff_t>(end));
    }
    if (!shard_queues_[i]->push(std::move(job))) {
      rethrow_if_failed();
      throw InvalidArgument("IngestPipeline: submit after close()");
    }
  }
}

void IngestPipeline::advance_watermark(TimeNs frontier) {
  rethrow_if_failed();
  if (intake_closed_) {
    throw InvalidArgument("IngestPipeline: advance_watermark after close()");
  }
  if (frontier < requested_frontier_.load(std::memory_order_relaxed)) {
    throw InvalidArgument(
        "IngestPipeline: watermark frontiers must be non-decreasing");
  }
  requested_frontier_.store(frontier, std::memory_order_relaxed);
  for (auto& queue : shard_queues_) {
    ShardJob barrier;
    barrier.kind = ShardJob::Kind::kBarrier;
    barrier.frontier = frontier;
    if (!queue->push(std::move(barrier))) {
      rethrow_if_failed();
      throw InvalidArgument(
          "IngestPipeline: advance_watermark after close()");
    }
  }
}

TimeNs IngestPipeline::advanced() const {
  std::lock_guard<std::mutex> lock(progress_mutex_);
  return advanced_watermark_;
}

void IngestPipeline::wait_until_advanced(TimeNs wm) {
  std::unique_lock<std::mutex> lock(progress_mutex_);
  progress_cv_.wait(lock,
                    [&] { return failed_ || advanced_watermark_ >= wm; });
  if (failed_) std::rethrow_exception(failure_);
}

void IngestPipeline::close() {
  if (!intake_closed_) {
    intake_closed_ = true;
    for (auto& queue : shard_queues_) queue->close();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  rethrow_if_failed();
}

IngestPipelineStats IngestPipeline::stats() const {
  IngestPipelineStats out;
  out.shard_queues.reserve(shard_queues_.size());
  for (const auto& queue : shard_queues_) {
    out.shard_queues.push_back(queue->stats());
  }
  out.batch_queue = batch_queue_->stats();
  out.watermark_queue = watermark_queue_->stats();
  out.records_parsed = records_parsed_.load(std::memory_order_relaxed);
  out.records_sealed = records_sealed_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(progress_mutex_);
    out.rounds_advanced = rounds_advanced_;
    out.advanced_watermark = advanced_watermark_;
  }
  return out;
}

}  // namespace stagg
